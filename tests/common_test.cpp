// Unit tests for src/common: memory tracking with budget enforcement,
// tracked buffers, timers, tables, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/buffer.h"
#include "common/cli.h"
#include "common/fs.h"
#include "common/json.h"
#include "common/memory.h"
#include "common/random.h"
#include "common/table.h"
#include "common/timer.h"
#include "common/types.h"

namespace cs {
namespace {

TEST(MemoryTracker, AllocateReleaseBalance) {
  auto& t = MemoryTracker::instance();
  const std::size_t before = t.current();
  t.allocate(1024);
  EXPECT_EQ(t.current(), before + 1024);
  t.release(1024);
  EXPECT_EQ(t.current(), before);
}

TEST(MemoryTracker, PeakTracksHighWaterMark) {
  auto& t = MemoryTracker::instance();
  t.reset_peak();
  const std::size_t base = t.peak();
  t.allocate(4096);
  t.allocate(4096);
  EXPECT_GE(t.peak(), base + 8192);
  t.release(8192);
  EXPECT_GE(t.peak(), base + 8192);  // peak is sticky
  t.reset_peak();
  EXPECT_LT(t.peak(), base + 8192);
}

TEST(MemoryTracker, BudgetEnforced) {
  auto& t = MemoryTracker::instance();
  ScopedBudget budget(t.current() + 1000);
  EXPECT_THROW(t.allocate(2000), BudgetExceeded);
  // A failed allocation must not leave the counter inflated.
  EXPECT_NO_THROW(t.allocate(500));
  t.release(500);
}

TEST(MemoryTracker, BudgetExceptionCarriesSizes) {
  auto& t = MemoryTracker::instance();
  ScopedBudget budget(t.current() + 10);
  try {
    t.allocate(100);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.requested(), 100u);
    EXPECT_EQ(e.budget(), t.current() + 10);
  }
}

TEST(ScopedBudget, RestoresPreviousBudget) {
  auto& t = MemoryTracker::instance();
  const std::size_t before = t.budget();
  {
    ScopedBudget b(123456789);
    EXPECT_EQ(t.budget(), 123456789u);
  }
  EXPECT_EQ(t.budget(), before);
}

TEST(Buffer, TracksBytes) {
  auto& t = MemoryTracker::instance();
  const std::size_t before = t.current();
  {
    Buffer<double> buf(100);
    EXPECT_EQ(t.current(), before + 100 * sizeof(double));
    EXPECT_EQ(buf.size(), 100u);
    for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(buf[i], 0.0);
  }
  EXPECT_EQ(t.current(), before);
}

TEST(Buffer, MoveTransfersOwnership) {
  auto& t = MemoryTracker::instance();
  const std::size_t before = t.current();
  Buffer<int> a(10);
  a[3] = 7;
  Buffer<int> b(std::move(a));
  EXPECT_EQ(b[3], 7);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(t.current(), before + 10 * sizeof(int));
  b.clear();
  EXPECT_EQ(t.current(), before);
}

TEST(Buffer, CopyDuplicatesStorage) {
  auto& t = MemoryTracker::instance();
  const std::size_t before = t.current();
  Buffer<int> a(8);
  a[0] = 5;
  Buffer<int> b(a);
  EXPECT_EQ(b[0], 5);
  b[0] = 9;
  EXPECT_EQ(a[0], 5);
  EXPECT_EQ(t.current(), before + 2 * 8 * sizeof(int));
  a.clear();
  b.clear();
  EXPECT_EQ(t.current(), before);
}

TEST(Buffer, BudgetExceededLeavesBufferEmpty) {
  auto& t = MemoryTracker::instance();
  ScopedBudget budget(t.current() + 16);
  Buffer<double> buf;
  EXPECT_THROW(buf.reset(1000), BudgetExceeded);
  EXPECT_TRUE(buf.empty());
}

TEST(FormatBytes, HumanReadable) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1024), "1.00 KiB");
  EXPECT_EQ(format_bytes(3u * 1024 * 1024), "3.00 MiB");
  EXPECT_EQ(format_bytes(std::size_t{5} * 1024 * 1024 * 1024), "5.00 GiB");
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(PhaseTimes, AccumulatesByPhase) {
  PhaseTimes p;
  p.add("factor", 1.5);
  p.add("factor", 0.5);
  p.add("solve", 2.0);
  EXPECT_DOUBLE_EQ(p.get("factor"), 2.0);
  EXPECT_DOUBLE_EQ(p.get("solve"), 2.0);
  EXPECT_DOUBLE_EQ(p.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(p.total(), 4.0);
}

TEST(ScopedPhase, AddsOnDestruction) {
  PhaseTimes p;
  { ScopedPhase s(p, "work"); }
  EXPECT_GE(p.get("work"), 0.0);
  EXPECT_EQ(p.all().count("work"), 1u);
}

TEST(PhaseTimes, ConcurrentAddsFromManyThreadsSumExactly) {
  // The coupled driver's workers all report into one PhaseTimes; adds of
  // the same value commute exactly, so the hammered total is deterministic.
  PhaseTimes p;
  constexpr int kThreads = 8;
  constexpr int kAdds = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&p] {
      for (int i = 0; i < kAdds; ++i) {
        p.add("hammer", 0.001);
        p.add("other", 0.002);
      }
    });
  for (auto& w : workers) w.join();

  double expect_hammer = 0, expect_other = 0;
  for (int i = 0; i < kThreads * kAdds; ++i) {
    expect_hammer += 0.001;
    expect_other += 0.002;
  }
  EXPECT_DOUBLE_EQ(p.get("hammer"), expect_hammer);
  EXPECT_DOUBLE_EQ(p.get("other"), expect_other);
  EXPECT_EQ(p.all().size(), 2u);
}

TEST(PhaseTimes, OverlappingScopesMergeIntoWallTime) {
  // Concurrent ScopedPhase scopes of the same phase must merge into one
  // wall-clock interval (first begin -> last end), not sum per-thread: the
  // per-phase breakdown would otherwise exceed total_seconds when several
  // workers run the same phase at once.
  PhaseTimes p;
  constexpr int kThreads = 4;
  Timer wall;
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&p] {
        for (int i = 0; i < 50; ++i) {
          ScopedPhase s(p, "overlap");
          volatile double sink = 0;
          for (int k = 0; k < 20000; ++k) sink += k;
        }
      });
    for (auto& w : workers) w.join();
  }
  const double elapsed = wall.seconds();
  // Merged time can never exceed the wall time spanned by the scopes
  // (small slack for clock granularity) -- a per-thread sum would be
  // ~kThreads x larger on a multi-core machine.
  EXPECT_GT(p.get("overlap"), 0.0);
  EXPECT_LE(p.get("overlap"), elapsed + 0.05);
}

TEST(Fs, DefaultTmpDirRespectsTmpdirEnv) {
  const char* saved = std::getenv("TMPDIR");
  const std::string before = saved ? saved : "";
  ::setenv("TMPDIR", "/var/tmp///", 1);
  EXPECT_EQ(default_tmp_dir(), "/var/tmp");  // trailing slashes stripped
  ::unsetenv("TMPDIR");
  EXPECT_EQ(default_tmp_dir(), "/tmp");
  if (saved) ::setenv("TMPDIR", before.c_str(), 1);
}

TEST(Fs, ProbeWritableDirReportsReasons) {
  EXPECT_EQ(probe_writable_dir(::testing::TempDir()), "");
  EXPECT_FALSE(probe_writable_dir("").empty());
  EXPECT_FALSE(probe_writable_dir("/nonexistent/cs_probe").empty());
  EXPECT_FALSE(probe_writable_dir("/dev/null").empty());  // not a directory
}

TEST(Cli, ParsesFlagsInBothForms) {
  const char* argv[] = {"prog", "--n=100", "--eps", "1e-3", "--verbose"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.0), 1e-3);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_FALSE(args.has("missing"));
}

// A positional argument is a usage error with the same exit-2 contract as
// a malformed value — not an uncaught std::runtime_error abort.
TEST(CliDeathTest, PositionalArgumentIsUsageErrorNotAbort) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_EXIT(CliArgs(2, const_cast<char**>(argv)),
              testing::ExitedWithCode(2),
              "unexpected positional argument 'oops'");
}

// "--n 100 --n 200" silently taking the last value hides typos in long
// command lines; a repeated flag is rejected up front.
TEST(CliDeathTest, DuplicateFlagIsUsageError) {
  const char* argv[] = {"prog", "--n", "100", "--n=200"};
  EXPECT_EXIT(CliArgs(4, const_cast<char**>(argv)),
              testing::ExitedWithCode(2), "duplicate flag --n");
}

// A malformed numeric value must be a usage error naming the flag and a
// non-zero exit, not an uncaught std::invalid_argument abort.
TEST(CliDeathTest, MalformedDoubleIsUsageErrorNotAbort) {
  const char* argv[] = {"prog", "--eps=abc"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.get_double("eps", 0.0), testing::ExitedWithCode(2),
              "invalid value for --eps");
}

TEST(CliDeathTest, MalformedIntIsUsageErrorNotAbort) {
  const char* argv[] = {"prog", "--n=12x"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.get_int("n", 0), testing::ExitedWithCode(2),
              "invalid value for --n");
}

TEST(CliDeathTest, IntOverflowIsUsageError) {
  const char* argv[] = {"prog", "--n=999999999999999999999999"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.get_int("n", 0), testing::ExitedWithCode(2),
              "invalid value for --n");
}

TEST(Cli, RangeExpandsColonSyntaxIncludingStop) {
  const char* argv[] = {"prog", "--freqs=1.0:2.0:0.25"};
  CliArgs args(2, const_cast<char**>(argv));
  const std::vector<double> got = args.get_range("freqs", {});
  ASSERT_EQ(got.size(), 5u);
  EXPECT_DOUBLE_EQ(got.front(), 1.0);
  EXPECT_DOUBLE_EQ(got[2], 1.5);
  // The stop endpoint is included even when accumulated rounding lands
  // the last step a hair past it.
  EXPECT_DOUBLE_EQ(got.back(), 2.0);
}

TEST(Cli, RangeParsesCommaListAndFallback) {
  const char* argv[] = {"prog", "--freqs=0.5,1.5,2.5"};
  CliArgs args(2, const_cast<char**>(argv));
  const std::vector<double> got = args.get_range("freqs", {});
  ASSERT_EQ(got.size(), 3u);
  EXPECT_DOUBLE_EQ(got[1], 1.5);
  EXPECT_EQ(args.get_range("missing", {7.0}).size(), 1u);
}

TEST(CliDeathTest, MalformedRangeIsUsageErrorNotAbort) {
  const char* argv[] = {"prog", "--freqs=1.0:2.0", "--bad=1.0:2.0:x",
                        "--down=2.0:1.0:0.5", "--zero=1.0:2.0:0.0"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EXIT(args.get_range("freqs", {}), testing::ExitedWithCode(2),
              "invalid value for --freqs");
  EXPECT_EXIT(args.get_range("bad", {}), testing::ExitedWithCode(2),
              "invalid value for --bad");
  EXPECT_EXIT(args.get_range("down", {}), testing::ExitedWithCode(2),
              "invalid value for --down");
  EXPECT_EXIT(args.get_range("zero", {}), testing::ExitedWithCode(2),
              "invalid value for --zero");
}

TEST(Cli, WellFormedValuesStillParse) {
  const char* argv[] = {"prog", "--n=-3", "--eps=1e-6", "--ratio=0.5"};
  CliArgs args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 0), -3);
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.0), 1e-6);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.5);
}

TEST(JsonNumber, FiniteRoundTripsNonFiniteBecomesNull) {
  EXPECT_EQ(json::number(1.5), "1.5");
  EXPECT_EQ(json::number(0.0), "0");
  EXPECT_EQ(json::number(std::nan("")), "null");
  EXPECT_EQ(json::number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json::number(-std::numeric_limits<double>::infinity()), "null");
  // Full round-trip precision for finite values.
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(json::number(0.1), &v, &err)) << err;
  EXPECT_EQ(v.number, 0.1);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt_int(42), "42");
}

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ComplexScalarInRange) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto z = rng.scalar<complexd>();
    EXPECT_LE(std::abs(z.real()), 1.0);
    EXPECT_LE(std::abs(z.imag()), 1.0);
  }
}

TEST(Types, Abs2AndConj) {
  EXPECT_DOUBLE_EQ(abs2(3.0), 9.0);
  EXPECT_DOUBLE_EQ(abs2(complexd(3.0, 4.0)), 25.0);
  EXPECT_DOUBLE_EQ(conj_if(2.5), 2.5);
  EXPECT_EQ(conj_if(complexd(1.0, 2.0)), complexd(1.0, -2.0));
}

}  // namespace
}  // namespace cs
