// Fault-injection tests of the resilient solve engine: the failpoint
// framework itself (spec grammar, firing semantics, env arming), the
// OOC store's structured I/O errors, config validation, and — the core
// guarantee — that firing every registered failpoint under every strategy
// yields either success-after-recovery or a correctly coded SolveError,
// never a crash, deadlock or tracked-byte leak.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/json.h"
#include "common/memory.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/trace.h"
#include "coupled/coupled.h"
#include "coupled/report.h"
#include "hmat/hmatrix.h"
#include "sparsedirect/multifrontal.h"
#include "sparsedirect/ooc.h"

namespace cs {
namespace {

using coupled::Config;
using coupled::SolveStats;
using coupled::Strategy;

/// Arms the registry directly and guarantees cleanup even on test failure.
struct RegistryGuard {
  explicit RegistryGuard(const std::string& spec) {
    FailpointRegistry::instance().arm(spec);
  }
  ~RegistryGuard() { FailpointRegistry::instance().disarm_all(); }
};

TEST(FailpointSpec, CheckAcceptsEveryModeOnKnownSites) {
  EXPECT_EQ(FailpointRegistry::check(""), "");
  EXPECT_EQ(FailpointRegistry::check("ooc.write=once"), "");
  EXPECT_EQ(FailpointRegistry::check("ooc.write=hit:3"), "");
  EXPECT_EQ(FailpointRegistry::check("ooc.write=prob:0.5"), "");
  EXPECT_EQ(FailpointRegistry::check("ooc.write=prob:0.5:42"), "");
  EXPECT_EQ(FailpointRegistry::check("ooc.write=always"), "");
  EXPECT_EQ(FailpointRegistry::check("ooc.write=off"), "");
  EXPECT_EQ(
      FailpointRegistry::check("ooc.write=once, hldlt.pivot=hit:2; "
                               "aca.converge=always"),
      "");
}

TEST(FailpointSpec, CheckRejectsMalformedEntries) {
  EXPECT_NE(FailpointRegistry::check("nosuchsite=once"), "");
  EXPECT_NE(FailpointRegistry::check("ooc.write"), "");
  EXPECT_NE(FailpointRegistry::check("ooc.write=banana"), "");
  EXPECT_NE(FailpointRegistry::check("ooc.write=hit:0"), "");
  EXPECT_NE(FailpointRegistry::check("ooc.write=hit:x"), "");
  EXPECT_NE(FailpointRegistry::check("ooc.write=prob:0"), "");
  EXPECT_NE(FailpointRegistry::check("ooc.write=prob:1.5"), "");
  EXPECT_NE(FailpointRegistry::check("ooc.write=prob:0.5:"), "");
  EXPECT_THROW(FailpointRegistry::instance().arm("nosuchsite=once"),
               std::invalid_argument);
}

TEST(FailpointSemantics, OnceFiresExactlyOnFirstHit) {
  RegistryGuard guard("dense.factor=once");
  EXPECT_TRUE(failpoint("dense.factor"));
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(failpoint("dense.factor"));
  auto& reg = FailpointRegistry::instance();
  EXPECT_EQ(reg.hit_count("dense.factor"), 6);
  EXPECT_EQ(reg.fire_count("dense.factor"), 1);
  // Unarmed sites never fire, but still cheap to query.
  EXPECT_FALSE(failpoint("hlu.pivot"));
}

TEST(FailpointSemantics, NthFiresExactlyOnNthHit) {
  RegistryGuard guard("dense.factor=hit:3");
  EXPECT_FALSE(failpoint("dense.factor"));
  EXPECT_FALSE(failpoint("dense.factor"));
  EXPECT_TRUE(failpoint("dense.factor"));
  EXPECT_FALSE(failpoint("dense.factor"));
  EXPECT_EQ(FailpointRegistry::instance().fire_count("dense.factor"), 1);
}

TEST(FailpointSemantics, AlwaysFiresEveryHit) {
  RegistryGuard guard("dense.factor=always");
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(failpoint("dense.factor"));
}

TEST(FailpointSemantics, OffCountsHitsWithoutFiring) {
  RegistryGuard guard("dense.factor=off");
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(failpoint("dense.factor"));
  EXPECT_EQ(FailpointRegistry::instance().hit_count("dense.factor"), 4);
  EXPECT_EQ(FailpointRegistry::instance().fire_count("dense.factor"), 0);
}

TEST(FailpointSemantics, SeededProbabilityIsDeterministic) {
  auto sequence = [] {
    std::vector<bool> fired;
    RegistryGuard guard("dense.factor=prob:0.5:12345");
    for (int i = 0; i < 64; ++i) fired.push_back(failpoint("dense.factor"));
    return fired;
  };
  const auto a = sequence();
  const auto b = sequence();
  EXPECT_EQ(a, b);  // same seed, same per-site RNG, same firing pattern
  int fires = 0;
  for (const bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST(FailpointSemantics, DisarmAllResetsEverything) {
  FailpointRegistry::instance().arm("dense.factor=always");
  EXPECT_TRUE(FailpointRegistry::instance().any_armed());
  FailpointRegistry::instance().disarm_all();
  EXPECT_FALSE(FailpointRegistry::instance().any_armed());
  EXPECT_FALSE(failpoint("dense.factor"));
  EXPECT_EQ(FailpointRegistry::instance().hit_count("dense.factor"), 0);
}

TEST(ScopedFailpointsTest, ArmsSpecAndEnvAndDisarmsOnExit) {
  ASSERT_EQ(::setenv("CS_FAILPOINTS", "hlu.pivot=always", 1), 0);
  {
    ScopedFailpoints scoped("dense.factor=always");
    EXPECT_TRUE(scoped.armed_any());
    EXPECT_TRUE(failpoint("dense.factor"));  // from the spec
    EXPECT_TRUE(failpoint("hlu.pivot"));     // from the environment
  }
  EXPECT_FALSE(FailpointRegistry::instance().any_armed());
  ::unsetenv("CS_FAILPOINTS");
}

TEST(ScopedFailpointsTest, EmptyScopeLeavesExternalArmsAlone) {
  // A ScopedFailpoints that armed nothing must not disarm sites a test
  // (or an outer scope) armed directly on the registry.
  RegistryGuard guard("dense.factor=always");
  {
    ScopedFailpoints scoped("");
    EXPECT_FALSE(scoped.armed_any());
  }
  EXPECT_TRUE(FailpointRegistry::instance().any_armed());
  EXPECT_TRUE(failpoint("dense.factor"));
}

// ---------------------------------------------------------------------------
// OOC store error reporting
// ---------------------------------------------------------------------------

sparsedirect::TiledPanel<double> make_panel(index_t rows, index_t cols) {
  Rng rng(3);
  la::Matrix<double> P(rows, cols);
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i) P(i, j) = rng.uniform(-1, 1);
  return sparsedirect::TiledPanel<double>::from_dense(
      la::ConstMatrixView<double>(P.view()), false, 0, 0, 0, nullptr,
      nullptr);
}

TEST(OocErrors, InjectedWriteFailureIsTransientIoError) {
  sparsedirect::OocPanelStore<double> store;
  RegistryGuard guard("ooc.write=once");
  auto panel = make_panel(40, 12);
  try {
    store.spill(std::move(panel));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.site(), "ooc.write");
    EXPECT_EQ(e.errno_value(), EIO);
    EXPECT_TRUE(e.transient());
  }
}

TEST(OocErrors, InjectedDiskFullIsNotTransient) {
  sparsedirect::OocPanelStore<double> store;
  RegistryGuard guard("ooc.enospc=once");
  auto panel = make_panel(40, 12);
  try {
    store.spill(std::move(panel));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.errno_value(), ENOSPC);
    EXPECT_FALSE(e.transient());
  }
}

TEST(OocErrors, InjectedReadFailureIsIoError) {
  sparsedirect::OocPanelStore<double> store;
  auto handle = store.spill(make_panel(40, 12));
  ASSERT_TRUE(handle.valid());
  RegistryGuard guard("ooc.read=once");
  EXPECT_THROW(store.load(handle), IoError);
  // The injection is spent: the same handle loads fine afterwards.
  auto restored = store.load(handle);
  EXPECT_EQ(restored.rows(), 40);
}

TEST(OocErrors, SyncOnSpillRoundTrips) {
  sparsedirect::OocPanelStore<double> store("/tmp",
                                            /*sync_on_spill=*/true);
  auto handle = store.spill(make_panel(64, 16));
  ASSERT_TRUE(handle.valid());
  auto restored = store.load(handle);
  EXPECT_EQ(restored.rows(), 64);
  EXPECT_EQ(restored.cols(), 16);
}

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

const fembem::CoupledSystem<double>& tiny_system() {
  static auto sys =
      fembem::make_pipe_system<double>({.total_unknowns = 1600});
  return sys;
}

TEST(ConfigValidation, ReportsStructuredInternalError) {
  Config cfg;
  cfg.n_c = 0;
  auto stats = coupled::solve_coupled(tiny_system(), cfg);
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.error.code, ErrorCode::kInternal);
  EXPECT_EQ(stats.error.site, "config");
  EXPECT_NE(stats.error.detail.find("n_c"), std::string::npos);
}

TEST(ConfigValidation, CatchesEachInvalidField) {
  Config good;
  EXPECT_EQ(coupled::validate_config(good), "");
  auto bad = [](auto&& mutate) {
    Config c;
    mutate(c);
    return coupled::validate_config(c);
  };
  EXPECT_NE(bad([](Config& c) { c.n_c = 0; }), "");
  EXPECT_NE(bad([](Config& c) { c.n_b = 0; }), "");
  EXPECT_NE(bad([](Config& c) {
              c.strategy = Strategy::kMultiSolveCompressed;
              c.n_c = 64;
              c.n_S = 32;
            }),
            "");
  EXPECT_NE(bad([](Config& c) { c.eps = 0; }), "");
  EXPECT_NE(bad([](Config& c) { c.eta = -1; }), "");
  EXPECT_NE(bad([](Config& c) { c.hmat_leaf = 1; }), "");
  EXPECT_NE(bad([](Config& c) { c.rand_initial_rank = 0; }), "");
  EXPECT_NE(bad([](Config& c) { c.rand_max_rank_ratio = 0; }), "");
  EXPECT_NE(bad([](Config& c) { c.rand_max_rank_ratio = 1.5; }), "");
  EXPECT_NE(bad([](Config& c) { c.refine_iterations = -1; }), "");
  EXPECT_NE(bad([](Config& c) { c.num_threads = -1; }), "");
  EXPECT_NE(bad([](Config& c) { c.max_recovery_attempts = -1; }), "");
  EXPECT_NE(bad([](Config& c) {
              c.out_of_core = true;
              c.ooc_dir.clear();
            }),
            "");
  EXPECT_NE(bad([](Config& c) { c.failpoints = "nosuchsite=once"; }), "");
  // A huge n_c on the *non*-compressed multi-solve stays legal (the
  // solver clamps panels to n_BEM).
  EXPECT_EQ(bad([](Config& c) {
              c.strategy = Strategy::kMultiSolve;
              c.n_c = 100000;
            }),
            "");
}

// ---------------------------------------------------------------------------
// The core guarantee: every site x every strategy, no crash, no leak
// ---------------------------------------------------------------------------

TEST(FailpointSweep, EverySiteEveryStrategyRecoversOrReportsCleanly) {
  const auto& sys = tiny_system();
  const Strategy strategies[] = {
      Strategy::kBaselineCoupling,
      Strategy::kAdvancedCoupling,
      Strategy::kMultiSolve,
      Strategy::kMultiSolveCompressed,
      Strategy::kMultiFactorization,
      Strategy::kMultiFactorizationCompressed,
      Strategy::kMultiSolveRandomized,
  };
  for (const std::string& site : FailpointRegistry::known_sites()) {
    for (Strategy s : strategies) {
      Config cfg;
      cfg.strategy = s;
      cfg.n_c = 32;
      cfg.n_S = 64;
      cfg.n_b = 2;
      // Every site reachable somewhere in the sweep: OOC on so the spill
      // paths run, symmetric H-LDLT on so its pivot guard runs.
      cfg.out_of_core = true;
      cfg.hmat_symmetric_ldlt = true;
      cfg.failpoints = site + "=once";
      const std::size_t before = MemoryTracker::instance().current();
      auto stats = coupled::solve_coupled(sys, cfg);
      const std::string label =
          site + " x " + coupled::strategy_name(s);
      // Either the solve recovered (or never hit the site) and succeeded,
      // or it reports a structured classification — never a throw, never
      // an unclassified failure.
      if (stats.success) {
        EXPECT_TRUE(stats.error.ok()) << label;
        EXPECT_LT(stats.relative_error, 1e-1) << label;
      } else {
        EXPECT_NE(stats.error.code, ErrorCode::kNone) << label;
        EXPECT_FALSE(stats.failure.empty()) << label;
      }
      EXPECT_EQ(MemoryTracker::instance().current(), before)
          << label << ": tracked bytes leaked";
      EXPECT_FALSE(FailpointRegistry::instance().any_armed()) << label;
    }
  }
}

TEST(FailpointSweep, AlwaysModeStillNeverCrashes) {
  // "always" defeats retry-based recovery for most sites: the solve must
  // end in a structured error (or succeed via a non-retry fallback, e.g.
  // the in-core OOC fallback or the ACA dense fallback) without crashing
  // or leaking.
  const auto& sys = tiny_system();
  for (const std::string& site : FailpointRegistry::known_sites()) {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolveCompressed;
    cfg.n_c = 32;
    cfg.n_S = 64;
    cfg.out_of_core = true;
    cfg.hmat_symmetric_ldlt = true;
    cfg.failpoints = site + "=always";
    const std::size_t before = MemoryTracker::instance().current();
    auto stats = coupled::solve_coupled(sys, cfg);
    if (!stats.success) {
      EXPECT_NE(stats.error.code, ErrorCode::kNone) << site;
    }
    EXPECT_EQ(MemoryTracker::instance().current(), before) << site;
  }
}

// ---------------------------------------------------------------------------
// Exceptions keep their type and diagnostics through parallel regions
// ---------------------------------------------------------------------------

TEST(ParallelErrors, BudgetDiagnosticsSurviveParallelAssembly) {
  const auto& sys = tiny_system();
  hmat::ClusterTree tree(sys.surface_points(), 24);
  auto& tracker = MemoryTracker::instance();
  const std::size_t before = tracker.current();
  ScopedNumThreads threads(4);
  ScopedBudget budget(tracker.current() + 16 * 1024);
  try {
    auto H = hmat::HMatrix<double>::assemble(tree, tree, *sys.A_ss,
                                             hmat::HOptions{});
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    // The original exception type and its diagnostics crossed the
    // parallel leaf loop intact.
    EXPECT_GT(e.requested(), 0u);
    EXPECT_EQ(e.budget(), before + 16 * 1024);
    EXPECT_LE(e.in_use(), e.budget());
  }
  EXPECT_EQ(tracker.current(), before);
}

TEST(ParallelErrors, ParallelForCaptureRethrowsOriginalType) {
  try {
    parallel_for_capture(64, [](std::size_t i) {
      if (i == 13) throw IoError("ooc.read", "poisoned worker", EIO);
    });
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.site(), "ooc.read");
    EXPECT_EQ(e.errno_value(), EIO);
  }
}

TEST(ParallelErrors, InjectedFailureInParallelFrontsKeepsType) {
  // A failpoint firing inside the task-parallel multifrontal tree walk
  // must reach the caller as the original la::SingularMatrix.
  const auto& sys = tiny_system();
  RegistryGuard guard("mf.front_factor=once");
  sparsedirect::MultifrontalSolver<double> mf;
  sparsedirect::SolverOptions opt;
  opt.parallel_fronts = true;
  EXPECT_THROW(mf.factorize(sys.A_vv, opt), la::SingularMatrix);
}

// ---------------------------------------------------------------------------
// Report JSON carries the structured error and recovery trail
// ---------------------------------------------------------------------------

TEST(ReportJson, CarriesErrorAndRecoveryTrail) {
  const auto& sys = tiny_system();
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.n_c = 32;
  cfg.n_S = 64;
  cfg.hmat_symmetric_ldlt = true;
  cfg.failpoints = "hldlt.pivot=once";
  auto stats = coupled::solve_coupled(sys, cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  ASSERT_EQ(stats.recoveries.size(), 1u);
  const std::string json = coupled::stats_json(stats);
  EXPECT_NE(json.find("\"recoveries\""), std::string::npos);
  EXPECT_NE(json.find("hldlt_to_hlu"), std::string::npos);
  EXPECT_NE(json.find("\"attempts\":2"), std::string::npos);

  Config bad;
  bad.eps = -1;
  auto failed = coupled::solve_coupled(sys, bad);
  ASSERT_FALSE(failed.success);
  const std::string failed_json = coupled::stats_json(failed);
  EXPECT_NE(failed_json.find("\"error\""), std::string::npos);
  EXPECT_NE(failed_json.find("\"code\":\"internal\""), std::string::npos);
  EXPECT_NE(failed_json.find("\"site\":\"config\""), std::string::npos);
  const std::string cfg_json = coupled::config_json(cfg);
  EXPECT_NE(cfg_json.find("\"failpoints\""), std::string::npos);
  EXPECT_NE(cfg_json.find("\"auto_recover\":true"), std::string::npos);
}

// Non-finite stats (NaN relative_error from a failed run, inf compression
// ratio from a division by zero) must round-trip through the repo's own
// parser: they render as null, never as bare nan/inf (invalid JSON).
TEST(ReportJson, NonFiniteDoublesEmitNullNotBareNan) {
  SolveStats stats;
  stats.success = false;
  stats.failure = "synthetic failure";
  stats.relative_error = std::nan("");
  stats.schur_compression_ratio = std::numeric_limits<double>::infinity();
  stats.counters["weird"] = -std::numeric_limits<double>::infinity();
  stats.nrhs = 4;
  stats.refine_residuals = {1e-9, std::nan(""), 2e-9, 3e-9};

  const std::string text = coupled::stats_json(stats);
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;

  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(text, &doc, &err)) << err << "\n" << text;
  const json::Value* rel = doc.find("relative_error");
  ASSERT_NE(rel, nullptr);
  EXPECT_TRUE(rel->is_null());
  const json::Value* ratio = doc.find("schur_compression_ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_TRUE(ratio->is_null());
  const json::Value* nrhs = doc.find("nrhs");
  ASSERT_NE(nrhs, nullptr);
  EXPECT_EQ(nrhs->number, 4);
  const json::Value* res = doc.find("refine_residuals");
  ASSERT_NE(res, nullptr);
  ASSERT_EQ(res->array.size(), 4u);
  EXPECT_TRUE(res->array[1].is_null());
  EXPECT_DOUBLE_EQ(res->array[2].number, 2e-9);
}

// The trace exporter must apply the same rule: counter samples and span
// args with non-finite values still yield a parseable file.
TEST(ReportJson, TraceExportSurvivesNonFiniteValues) {
  auto& tracer = Tracer::instance();
  const bool was = tracer.enabled();
  tracer.set_enabled(true);
  {
    TraceSpan span("test", "nonfinite.span");
    span.arg("bad", std::nan(""));
    trace_counter("nonfinite.counter",
                  std::numeric_limits<double>::infinity());
  }
  const std::string text = tracer.to_json();
  tracer.set_enabled(was);

  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(text, &doc, &err)) << err;
}

}  // namespace
}  // namespace cs
