// Unit tests for the tiled BLR panel storage used by the multifrontal
// factor panels, and for the Rk truncation primitive.
#include <gtest/gtest.h>

#include "common/random.h"
#include "la/qr_svd.h"
#include "sparsedirect/blr.h"

namespace cs::sparsedirect {
namespace {

using la::ConstMatrixView;
using la::Matrix;
using la::rel_diff;

template <class T>
Matrix<T> random_matrix(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.scalar<T>();
  return a;
}

/// Smooth displacement kernel: each row block vs columns is low-rank.
Matrix<double> smooth_panel(index_t m, index_t n) {
  Matrix<double> p(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      p(i, j) = 1.0 / (3.0 + 0.7 * i + 1.3 * j);
  return p;
}

TEST(TiledPanel, UncompressedRoundTrip) {
  auto P = random_matrix<double>(100, 40, 1);
  offset_t ct = 0, dt = 0;
  auto tiled = TiledPanel<double>::from_dense(
      ConstMatrixView<double>(P.view()), /*compress=*/false, 1e-6, 16, 32,
      &ct, &dt);
  EXPECT_EQ(ct, 0);
  EXPECT_EQ(dt, 1);  // one dense tile covering everything
  EXPECT_EQ(tiled.rows(), 100);
  EXPECT_EQ(tiled.cols(), 40);
  EXPECT_EQ(tiled.stored_entries(), 4000);
}

TEST(TiledPanel, CompressedTilesApproximate) {
  auto P = smooth_panel(200, 60);
  offset_t ct = 0, dt = 0;
  auto tiled = TiledPanel<double>::from_dense(
      ConstMatrixView<double>(P.view()), /*compress=*/true, 1e-8, 16, 64,
      &ct, &dt);
  EXPECT_GT(ct, 0);
  EXPECT_LT(tiled.stored_entries(), 200 * 60);

  // mult agrees with the dense panel.
  auto X = random_matrix<double>(60, 5, 2);
  Matrix<double> Y(200, 5), Y_ref(200, 5);
  tiled.mult(ConstMatrixView<double>(X.view()), Y.view());
  la::gemm(1.0, P.view(), la::Op::kNoTrans, X.view(), la::Op::kNoTrans, 0.0,
           Y_ref.view());
  EXPECT_LT(rel_diff<double>(Y.view(), Y_ref.view()), 1e-6);

  // mult_trans agrees too.
  auto Z = random_matrix<double>(200, 3, 3);
  Matrix<double> W(60, 3), W_ref(60, 3);
  tiled.mult_trans(ConstMatrixView<double>(Z.view()), W.view());
  la::gemm(1.0, P.view(), la::Op::kTrans, Z.view(), la::Op::kNoTrans, 0.0,
           W_ref.view());
  EXPECT_LT(rel_diff<double>(W.view(), W_ref.view()), 1e-6);
}

TEST(TiledPanel, IncompressibleTilesStayDense) {
  auto P = random_matrix<double>(128, 64, 4);  // full rank noise
  offset_t ct = 0, dt = 0;
  auto tiled = TiledPanel<double>::from_dense(
      ConstMatrixView<double>(P.view()), true, 1e-10, 16, 64, &ct, &dt);
  EXPECT_EQ(ct, 0);
  EXPECT_EQ(tiled.stored_entries(), 128 * 64);
}

TEST(TiledPanel, EmptyPanel) {
  Matrix<double> P(0, 10);
  auto tiled = TiledPanel<double>::from_dense(
      ConstMatrixView<double>(P.view()), true, 1e-6, 16, 64, nullptr,
      nullptr);
  EXPECT_TRUE(tiled.empty());
  EXPECT_EQ(tiled.stored_entries(), 0);
}

TEST(TiledPanel, MinDimGuardsTinyTiles) {
  auto P = smooth_panel(100, 8);  // cols below min_dim
  offset_t ct = 0, dt = 0;
  auto tiled = TiledPanel<double>::from_dense(
      ConstMatrixView<double>(P.view()), true, 1e-4, 16, 32, &ct, &dt);
  EXPECT_EQ(ct, 0);  // nothing compressed: cols < min_dim
  EXPECT_GT(dt, 0);
}

template <class T>
class TruncateTypedTest : public ::testing::Test {};
using Scalars = ::testing::Types<double, complexd>;
TYPED_TEST_SUITE(TruncateTypedTest, Scalars);

TYPED_TEST(TruncateTypedTest, RedundantFactorsCollapse) {
  using T = TypeParam;
  // Build factors with duplicated columns: true rank is k/2.
  const index_t m = 60, n = 45, k = 10;
  auto U = random_matrix<T>(m, k, 5);
  auto V = random_matrix<T>(n, k, 6);
  for (index_t c = k / 2; c < k; ++c)
    for (index_t i = 0; i < m; ++i) U(i, c) = U(i, c - k / 2);
  la::RkFactors<T> rk;
  rk.U = U;
  rk.V = V;
  Matrix<T> ref(m, n);
  la::gemm(T{1}, U.view(), la::Op::kNoTrans, V.view(), la::Op::kTrans, T{0},
           ref.view());

  la::truncate_rk(rk, 1e-12);
  EXPECT_LE(rk.rank(), k / 2 + 1);
  Matrix<T> rec(m, n);
  la::gemm(T{1}, rk.U.view(), la::Op::kNoTrans, rk.V.view(), la::Op::kTrans,
           T{0}, rec.view());
  EXPECT_LT(rel_diff<T>(rec.view(), ref.view()), 1e-10);
}

TYPED_TEST(TruncateTypedTest, FatFactorsFallBackToDense) {
  using T = TypeParam;
  // rank parameter exceeds both dimensions: the materialize path.
  const index_t m = 6, n = 5, k = 12;
  la::RkFactors<T> rk;
  rk.U = random_matrix<T>(m, k, 7);
  rk.V = random_matrix<T>(n, k, 8);
  Matrix<T> ref(m, n);
  la::gemm(T{1}, rk.U.view(), la::Op::kNoTrans, rk.V.view(), la::Op::kTrans,
           T{0}, ref.view());
  la::truncate_rk(rk, 1e-12);
  EXPECT_LE(rk.rank(), std::min(m, n));
  Matrix<T> rec(m, n);
  la::gemm(T{1}, rk.U.view(), la::Op::kNoTrans, rk.V.view(), la::Op::kTrans,
           T{0}, rec.view());
  EXPECT_LT(rel_diff<T>(rec.view(), ref.view()), 1e-10);
}

TEST(Truncate, EpsControlsRank) {
  // Exponentially decaying singular values: looser eps -> smaller rank.
  const index_t n = 40;
  Matrix<double> U0(n, n), V0(n, n);
  Rng rng(9);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      U0(i, j) = rng.uniform(-1, 1) * std::pow(0.5, j);
      V0(i, j) = rng.uniform(-1, 1);
    }
  index_t prev_rank = -1;
  for (double eps : {1e-12, 1e-6, 1e-2}) {  // loosening eps shrinks rank
    la::RkFactors<double> rk;
    rk.U = U0;
    rk.V = V0;
    la::truncate_rk(rk, eps);
    if (prev_rank >= 0) EXPECT_LE(rk.rank(), prev_rank);
    prev_rank = rk.rank();
  }
  EXPECT_LT(prev_rank, n / 2);  // 1e-2 on 0.5^j decay: genuinely truncated
}

TEST(Truncate, ZeroRankIsNoop) {
  la::RkFactors<double> rk;
  rk.U = Matrix<double>(10, 0);
  rk.V = Matrix<double>(8, 0);
  la::truncate_rk(rk, 1e-6);
  EXPECT_EQ(rk.rank(), 0);
}

}  // namespace
}  // namespace cs::sparsedirect
