// Tests for the orthogonal factorization / low-rank compression kernels:
// Householder QR, one-sided Jacobi SVD, and rank-revealing QR compression.
#include <gtest/gtest.h>

#include "common/random.h"
#include "la/blas.h"
#include "la/qr_svd.h"

namespace cs::la {
namespace {

template <class T>
Matrix<T> random_matrix(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.scalar<T>();
  return a;
}

/// Exact-rank-k matrix: product of random factors.
template <class T>
Matrix<T> rank_k_matrix(index_t m, index_t n, index_t k, std::uint64_t seed) {
  const auto U = random_matrix<T>(m, k, seed);
  const auto V = random_matrix<T>(n, k, seed + 1);
  Matrix<T> A(m, n);
  gemm(T{1}, U.view(), Op::kNoTrans, V.view(), Op::kTrans, T{0}, A.view());
  return A;
}

template <class T>
class QrSvdTypedTest : public ::testing::Test {};
using Scalars = ::testing::Types<double, complexd>;
TYPED_TEST_SUITE(QrSvdTypedTest, Scalars);

TYPED_TEST(QrSvdTypedTest, QrReconstructsAndQIsUnitary) {
  using T = TypeParam;
  const index_t m = 20, k = 7;
  const auto A = random_matrix<T>(m, k, 1);
  Matrix<T> QR = A;
  std::vector<T> tau;
  householder_qr(QR.view(), tau);
  Matrix<T> Q = form_q_thin<T>(QR.view(), tau);

  // Q^H Q == I.
  for (index_t a = 0; a < k; ++a)
    for (index_t b = 0; b < k; ++b) {
      T acc{};
      for (index_t i = 0; i < m; ++i) acc += conj_if(Q(i, a)) * Q(i, b);
      EXPECT_NEAR(std::abs(acc - (a == b ? T{1} : T{0})), 0.0, 1e-12);
    }

  // Q R == A.
  Matrix<T> R(k, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i <= j; ++i) R(i, j) = QR(i, j);
  Matrix<T> rec(m, k);
  gemm(T{1}, Q.view(), Op::kNoTrans, R.view(), Op::kNoTrans, T{0}, rec.view());
  EXPECT_LT(rel_diff<T>(rec.view(), A.view()), 1e-12);
}

TYPED_TEST(QrSvdTypedTest, QrHandlesTriangularInput) {
  using T = TypeParam;
  // Already upper triangular input: reflectors should be trivial.
  Matrix<T> A(5, 3);
  A(0, 0) = T{2}; A(0, 1) = T{1}; A(1, 1) = T{3}; A(0, 2) = T{4};
  A(2, 2) = T{5};
  Matrix<T> QR = A;
  std::vector<T> tau;
  householder_qr(QR.view(), tau);
  Matrix<T> Q = form_q_thin<T>(QR.view(), tau);
  Matrix<T> R(3, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i <= j; ++i) R(i, j) = QR(i, j);
  Matrix<T> rec(5, 3);
  gemm(T{1}, Q.view(), Op::kNoTrans, R.view(), Op::kNoTrans, T{0}, rec.view());
  EXPECT_LT(rel_diff<T>(rec.view(), A.view()), 1e-12);
}

TYPED_TEST(QrSvdTypedTest, JacobiSvdReconstructs) {
  using T = TypeParam;
  const index_t m = 12, n = 8;
  const auto A = random_matrix<T>(m, n, 2);
  Matrix<T> U, V;
  std::vector<double> sigma;
  jacobi_svd<T>(A.view(), U, sigma, V);

  // Descending singular values.
  for (std::size_t i = 1; i < sigma.size(); ++i)
    EXPECT_GE(sigma[i - 1], sigma[i] - 1e-12);

  // A == U S V^H.
  Matrix<T> US(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      US(i, j) = U(i, j) * T{sigma[static_cast<std::size_t>(j)]};
  Matrix<T> rec(m, n);
  // rec = US * V^H: conjugate V then plain transpose.
  Matrix<T> Vc(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) Vc(i, j) = conj_if(V(i, j));
  gemm(T{1}, US.view(), Op::kNoTrans, Vc.view(), Op::kTrans, T{0}, rec.view());
  EXPECT_LT(rel_diff<T>(rec.view(), A.view()), 1e-10);
}

TEST(JacobiSvd, KnownSingularValues) {
  // diag(3, 2, 1) has singular values 3, 2, 1.
  Matrix<double> A(3, 3);
  A(0, 0) = 1.0; A(1, 1) = 3.0; A(2, 2) = 2.0;
  Matrix<double> U, V;
  std::vector<double> sigma;
  jacobi_svd<double>(A.view(), U, sigma, V);
  ASSERT_EQ(sigma.size(), 3u);
  EXPECT_NEAR(sigma[0], 3.0, 1e-12);
  EXPECT_NEAR(sigma[1], 2.0, 1e-12);
  EXPECT_NEAR(sigma[2], 1.0, 1e-12);
}

TYPED_TEST(QrSvdTypedTest, RrqrRecoversExactRank) {
  using T = TypeParam;
  const index_t m = 30, n = 24, k = 5;
  const auto A = rank_k_matrix<T>(m, n, k, 3);
  auto rk = rrqr_compress<T>(A.view(), 1e-12);
  EXPECT_LE(rk.rank(), k + 1);
  EXPECT_GE(rk.rank(), k);
  Matrix<T> rec(m, n);
  gemm(T{1}, rk.U.view(), Op::kNoTrans, rk.V.view(), Op::kTrans, T{0},
       rec.view());
  EXPECT_LT(rel_diff<T>(rec.view(), A.view()), 1e-10);
}

TYPED_TEST(QrSvdTypedTest, RrqrZeroMatrixGivesRankZero) {
  using T = TypeParam;
  Matrix<T> A(10, 8);
  auto rk = rrqr_compress<T>(A.view(), 1e-6);
  EXPECT_EQ(rk.rank(), 0);
}

TYPED_TEST(QrSvdTypedTest, RrqrRespectsMaxRank) {
  using T = TypeParam;
  const auto A = random_matrix<T>(16, 16, 5);
  auto rk = rrqr_compress<T>(A.view(), 1e-15, /*max_rank=*/3);
  EXPECT_LE(rk.rank(), 3);
}

// Property sweep: rrqr at accuracy eps must deliver relative Frobenius
// error below ~eps for smooth kernels of rapidly decaying rank.
class RrqrEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(RrqrEpsSweep, ErrorBelowEps) {
  const double eps = GetParam();
  const index_t m = 40, n = 35;
  // Smooth displacement kernel 1/(2 + i - j/2): numerically low rank.
  Matrix<double> A(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      A(i, j) = 1.0 / (2.0 + static_cast<double>(i) + static_cast<double>(j) / 2.0);
  auto rk = rrqr_compress<double>(A.view(), eps);
  Matrix<double> rec(m, n);
  gemm(1.0, rk.U.view(), Op::kNoTrans, rk.V.view(), Op::kTrans, 0.0,
       rec.view());
  EXPECT_LT(rel_diff<double>(rec.view(), A.view()), 4 * eps);
  EXPECT_LT(rk.rank(), std::min(m, n));  // genuinely compressed
}

INSTANTIATE_TEST_SUITE_P(Accuracies, RrqrEpsSweep,
                         ::testing::Values(1e-2, 1e-4, 1e-6, 1e-8, 1e-10));

}  // namespace
}  // namespace cs::la
