// Tests for the out-of-core factor storage: solves must be identical to
// in-core ones while the in-core factor footprint collapses, and every
// panel byte streamed back from disk is checksum-verified.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/serialize.h"
#include "sparsedirect/multifrontal.h"
#include "sparsedirect/ooc.h"

namespace cs::sparsedirect {
namespace {

using la::Matrix;
using la::rel_diff;
using sparse::Csr;
using sparse::Triplets;

Csr<double> laplacian3d(index_t g) {
  Triplets<double> t(g * g * g, g * g * g);
  auto id = [g](index_t i, index_t j, index_t k) {
    return i + g * (j + g * k);
  };
  for (index_t k = 0; k < g; ++k)
    for (index_t j = 0; j < g; ++j)
      for (index_t i = 0; i < g; ++i) {
        t.add(id(i, j, k), id(i, j, k), 6.1);
        if (i + 1 < g) { t.add(id(i, j, k), id(i + 1, j, k), -1.0);
                         t.add(id(i + 1, j, k), id(i, j, k), -1.0); }
        if (j + 1 < g) { t.add(id(i, j, k), id(i, j + 1, k), -1.0);
                         t.add(id(i, j + 1, k), id(i, j, k), -1.0); }
        if (k + 1 < g) { t.add(id(i, j, k), id(i, j, k + 1), -1.0);
                         t.add(id(i, j, k + 1), id(i, j, k), -1.0); }
      }
  return Csr<double>::from_triplets(t);
}

TEST(OocStore, PanelRoundTrip) {
  Rng rng(1);
  Matrix<double> P(120, 40);
  for (index_t j = 0; j < 40; ++j)
    for (index_t i = 0; i < 120; ++i) P(i, j) = rng.uniform(-1, 1);
  offset_t ct = 0, dt = 0;
  auto panel = TiledPanel<double>::from_dense(
      la::ConstMatrixView<double>(P.view()), true, 1e-6, 16, 48, &ct, &dt);

  OocPanelStore<double> store;
  auto handle = store.spill(std::move(panel));
  ASSERT_TRUE(handle.valid());
  EXPECT_GT(store.bytes_on_disk(), 0u);

  auto restored = store.load(handle);
  EXPECT_EQ(restored.rows(), 120);
  EXPECT_EQ(restored.cols(), 40);
  // Products through the restored panel match the original dense panel.
  Matrix<double> X(40, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 40; ++i) X(i, j) = rng.uniform(-1, 1);
  Matrix<double> Y(120, 3), Y_ref(120, 3);
  restored.mult(la::ConstMatrixView<double>(X.view()), Y.view());
  la::gemm(1.0, P.view(), la::Op::kNoTrans, X.view(), la::Op::kNoTrans, 0.0,
           Y_ref.view());
  EXPECT_LT(rel_diff<double>(Y.view(), Y_ref.view()), 1e-6);
}

TEST(OocStore, EmptyPanelHandleIsInvalid) {
  OocPanelStore<double> store;
  auto h = store.spill(TiledPanel<double>());
  EXPECT_FALSE(h.valid());
  auto restored = store.load(h);
  EXPECT_TRUE(restored.empty());
}

TEST(OocStore, MultiplePanelsIndependent) {
  OocPanelStore<double> store;
  std::vector<OocPanelStore<double>::Handle> handles;
  for (int p = 0; p < 4; ++p) {
    Matrix<double> P(30 + 10 * p, 20);
    for (index_t j = 0; j < 20; ++j)
      for (index_t i = 0; i < P.rows(); ++i) P(i, j) = p + 0.001 * (i + j);
    auto panel = TiledPanel<double>::from_dense(
        la::ConstMatrixView<double>(P.view()), false, 0, 0, 0, nullptr,
        nullptr);
    handles.push_back(store.spill(std::move(panel)));
  }
  // Read back out of order.
  for (int p = 3; p >= 0; --p) {
    auto restored = store.load(handles[static_cast<std::size_t>(p)]);
    EXPECT_EQ(restored.rows(), 30 + 10 * p);
    EXPECT_EQ(restored.tiles().front().dense(0, 0), static_cast<double>(p));
  }
}

TEST(Ooc, SolveMatchesInCore) {
  auto A = laplacian3d(10);
  const index_t n = A.rows();
  Rng rng(2);
  Matrix<double> B(n, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < n; ++i) B(i, j) = rng.uniform(-1, 1);

  MultifrontalSolver<double> in_core, ooc;
  SolverOptions base;
  in_core.factorize(A, base);
  SolverOptions oopt = base;
  oopt.out_of_core = true;
  ooc.factorize(A, oopt);
  EXPECT_GT(ooc.stats().ooc_bytes, 0u);

  Matrix<double> X1 = B, X2 = B;
  in_core.solve(X1.view());
  ooc.solve(X2.view());
  EXPECT_LT(rel_diff<double>(X2.view(), X1.view()), 1e-13);
}

TEST(Ooc, InCoreFactorFootprintCollapses) {
  auto A = laplacian3d(12);
  MultifrontalSolver<double> in_core, ooc;
  in_core.factorize(A, SolverOptions{});
  SolverOptions oopt;
  oopt.out_of_core = true;
  ooc.factorize(A, oopt);
  // Border panels dominate the factors; spilling them must cut the
  // in-core bytes by a large factor.
  EXPECT_LT(ooc.factor_bytes(), in_core.factor_bytes() / 2);
  EXPECT_GT(ooc.stats().ooc_bytes, 0u);
}

TEST(Ooc, WorksCombinedWithBlrAndSchur) {
  auto A = laplacian3d(10);
  MultifrontalSolver<double> mf;
  SolverOptions opt;
  opt.out_of_core = true;
  opt.compress = true;
  opt.blr_eps = 1e-6;
  opt.schur_size = 40;
  mf.factorize(A, opt);
  auto S = mf.take_schur();
  EXPECT_EQ(S.rows(), 40);
  // Interior solve still works with spilled panels.
  const index_t ne = A.rows() - 40;
  Matrix<double> b(ne, 1);
  b(0, 0) = 1.0;
  mf.solve(b.view());
  EXPECT_TRUE(std::isfinite(b(0, 0)));
}

TEST(OocStore, CorruptPanelChecksumIsDetectedOnLoad) {
  Rng rng(3);
  Matrix<double> P(80, 24);
  for (index_t j = 0; j < 24; ++j)
    for (index_t i = 0; i < 80; ++i) P(i, j) = rng.uniform(-1, 1);
  OocPanelStore<double> store;
  auto handle = store.spill(TiledPanel<double>::from_dense(
      la::ConstMatrixView<double>(P.view()), false, 0, 0, 0, nullptr,
      nullptr));
  ASSERT_TRUE(handle.valid());
  // A clean load passes the per-panel CRC32C trailer check...
  EXPECT_EQ(store.load(handle).rows(), 80);
  // ...and an injected corruption surfaces at the ooc.corrupt site, before
  // the panel can reach the solve path.
  ScopedFailpoints fp("ooc.corrupt=once");
  try {
    store.load(handle);
    FAIL() << "corrupt panel must throw";
  } catch (const IoError& e) {
    EXPECT_EQ(e.site(), "ooc.corrupt");
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(Ooc, SyncOnSpillStoreSurvivesCheckpointFsyncFailure) {
  // sync_on_spill makes every spill durable on its own; a later
  // *checkpoint* fsync failure must neither corrupt the live spill store
  // nor block a clean retry of the save.
  auto A = laplacian3d(10);
  const index_t n = A.rows();
  MultifrontalSolver<double> mf;
  SolverOptions opt;
  opt.out_of_core = true;
  opt.ooc_sync_on_spill = true;
  mf.factorize(A, opt);

  Matrix<double> B(n, 2);
  Rng rng(7);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) B(i, j) = rng.uniform(-1, 1);
  Matrix<double> X_ref = B;
  mf.solve(X_ref.view());

  const std::string path = ::testing::TempDir() + "cs_ooc_ckpt.bin";
  {
    // The save streams OOC panels through the writer, then the commit
    // record's fsync fails: the checkpoint is torn, the store is not.
    ScopedFailpoints fp("ckpt.fsync=once");
    serialize::Writer w(path);
    w.begin_section("mf");
    mf.save(w);
    w.end_section();
    EXPECT_THROW(w.commit(), IoError);
  }
  Matrix<double> X_after = B;
  mf.solve(X_after.view());
  EXPECT_LT(rel_diff<double>(X_after.view(), X_ref.view()), 1e-15);

  // Retry without the injection: the round trip restores a solver whose
  // factors live back out of core and solve identically.
  {
    serialize::Writer w(path);
    w.begin_section("mf");
    mf.save(w);
    w.end_section();
    EXPECT_GT(w.commit(), 0u);
  }
  serialize::Reader in(path);
  in.open_section("mf");
  MultifrontalSolver<double> restored;
  restored.load(in);
  EXPECT_GT(restored.stats().ooc_bytes, 0u);
  Matrix<double> X_restored = B;
  restored.solve(X_restored.view());
  EXPECT_LT(rel_diff<double>(X_restored.view(), X_ref.view()), 1e-15);
  std::remove(path.c_str());
}

TEST(Ooc, CheckpointEnospcCarriesTheSpillPathPhrasing) {
  // Writing a checkpoint to a full device must fail with the same
  // actionable "device is full" message the OOC spill path uses, flagged
  // non-transient (retrying will not help).
  if (!std::ifstream("/dev/full").good())
    GTEST_SKIP() << "/dev/full not available";
  try {
    serialize::Writer w("/dev/full");
    w.begin_section("blob");
    std::vector<char> big(1 << 22, 'x');
    w.write_bytes(big.data(), big.size());
    w.end_section();
    w.commit();
    FAIL() << "writing 4 MiB to /dev/full must report ENOSPC";
  } catch (const IoError& e) {
    EXPECT_EQ(e.site(), "ckpt.write");
    EXPECT_FALSE(e.transient());
    EXPECT_NE(std::string(e.what()).find("device is full (short write"),
              std::string::npos)
        << e.what();
  }
}

TEST(Ooc, UnsymmetricLuPath) {
  // Structurally symmetric, numerically unsymmetric system.
  auto A0 = laplacian3d(8);
  Triplets<double> t(A0.rows(), A0.cols());
  Rng rng(5);
  for (index_t r = 0; r < A0.rows(); ++r)
    for (offset_t k = A0.row_begin(r); k < A0.row_end(r); ++k)
      t.add(r, A0.col(k),
            A0.value(k) * (A0.col(k) == r ? 1.0 : rng.uniform(0.5, 1.5)));
  auto A = Csr<double>::from_triplets(t);

  const index_t n = A.rows();
  Matrix<double> X(n, 1);
  for (index_t i = 0; i < n; ++i) X(i, 0) = rng.uniform(-1, 1);
  Matrix<double> B(n, 1);
  A.spmm(1.0, X.view(), 0.0, B.view());

  MultifrontalSolver<double> mf;
  SolverOptions opt;
  opt.symmetric = false;
  opt.out_of_core = true;
  mf.factorize(A, opt);
  mf.solve(B.view());
  EXPECT_LT(rel_diff<double>(B.view(), X.view()), 1e-10);
}

}  // namespace
}  // namespace cs::sparsedirect
