// Unit and property tests for the dense linear algebra kernels (matrix
// containers, gemm/trsm, LDL^T, LU with partial pivoting, partial
// factorizations used by the multifrontal fronts).
#include <gtest/gtest.h>

#include <complex>

#include "common/random.h"
#include "la/blas.h"
#include "la/factor.h"
#include "la/matrix.h"

namespace cs::la {
namespace {

template <class T>
Matrix<T> random_matrix(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.scalar<T>();
  return a;
}

/// Symmetric strongly-regular matrix: random symmetric + diagonal shift.
template <class T>
Matrix<T> random_sym(index_t n, std::uint64_t seed) {
  auto a = random_matrix<T>(n, n, seed);
  Matrix<T> s(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) s(i, j) = a(i, j) + a(j, i);
  for (index_t i = 0; i < n; ++i) s(i, i) += T{static_cast<double>(2 * n)};
  return s;
}

template <class T>
Matrix<T> naive_mult(ConstMatrixView<T> A, ConstMatrixView<T> B) {
  Matrix<T> c(A.rows(), B.cols());
  for (index_t i = 0; i < A.rows(); ++i)
    for (index_t j = 0; j < B.cols(); ++j) {
      T acc{};
      for (index_t k = 0; k < A.cols(); ++k) acc += A(i, k) * B(k, j);
      c(i, j) = acc;
    }
  return c;
}

template <class T>
Matrix<T> transpose(ConstMatrixView<T> A) {
  Matrix<T> t(A.cols(), A.rows());
  for (index_t j = 0; j < A.cols(); ++j)
    for (index_t i = 0; i < A.rows(); ++i) t(j, i) = A(i, j);
  return t;
}

template <class T>
class LaTypedTest : public ::testing::Test {};

using Scalars = ::testing::Types<double, complexd>;
TYPED_TEST_SUITE(LaTypedTest, Scalars);

TEST(Matrix, ViewsAndBlocks) {
  Matrix<double> m(4, 3);
  m(2, 1) = 5.0;
  auto v = m.view();
  EXPECT_EQ(v(2, 1), 5.0);
  auto b = v.block(1, 1, 3, 2);
  EXPECT_EQ(b(1, 0), 5.0);
  b(0, 0) = 7.0;
  EXPECT_EQ(m(1, 1), 7.0);
  EXPECT_EQ(b.ld(), 4);
}

TEST(Matrix, IdentityAndClear) {
  auto id = Matrix<double>::identity(3);
  EXPECT_EQ(id(1, 1), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  id.clear();
  EXPECT_TRUE(id.empty());
}

TYPED_TEST(LaTypedTest, GemmMatchesNaive) {
  using T = TypeParam;
  const auto A = random_matrix<T>(17, 9, 1);
  const auto B = random_matrix<T>(9, 13, 2);
  auto C = random_matrix<T>(17, 13, 3);
  Matrix<T> ref = naive_mult<T>(A.view(), B.view());
  // beta = 0 path.
  gemm(T{1}, A.view(), Op::kNoTrans, B.view(), Op::kNoTrans, T{0}, C.view());
  EXPECT_LT(rel_diff<T>(C.view(), ref.view()), 1e-13);
}

TYPED_TEST(LaTypedTest, GemmAllTransposeCombos) {
  using T = TypeParam;
  const auto A = random_matrix<T>(8, 6, 4);
  const auto B = random_matrix<T>(6, 5, 5);
  const auto At = transpose<T>(A.view());
  const auto Bt = transpose<T>(B.view());
  Matrix<T> ref = naive_mult<T>(A.view(), B.view());

  Matrix<T> c1(8, 5), c2(8, 5), c3(8, 5);
  gemm(T{1}, A.view(), Op::kNoTrans, Bt.view(), Op::kTrans, T{0}, c1.view());
  gemm(T{1}, At.view(), Op::kTrans, B.view(), Op::kNoTrans, T{0}, c2.view());
  gemm(T{1}, At.view(), Op::kTrans, Bt.view(), Op::kTrans, T{0}, c3.view());
  EXPECT_LT(rel_diff<T>(c1.view(), ref.view()), 1e-13);
  EXPECT_LT(rel_diff<T>(c2.view(), ref.view()), 1e-13);
  EXPECT_LT(rel_diff<T>(c3.view(), ref.view()), 1e-13);
}

TYPED_TEST(LaTypedTest, GemmAlphaBetaAccumulate) {
  using T = TypeParam;
  const auto A = random_matrix<T>(7, 4, 6);
  const auto B = random_matrix<T>(4, 7, 7);
  auto C = random_matrix<T>(7, 7, 8);
  Matrix<T> expected(7, 7);
  Matrix<T> ab = naive_mult<T>(A.view(), B.view());
  for (index_t j = 0; j < 7; ++j)
    for (index_t i = 0; i < 7; ++i)
      expected(i, j) = T{2} * ab(i, j) + T{3} * C(i, j);
  gemm(T{2}, A.view(), Op::kNoTrans, B.view(), Op::kNoTrans, T{3}, C.view());
  EXPECT_LT(rel_diff<T>(C.view(), expected.view()), 1e-13);
}

TYPED_TEST(LaTypedTest, GemvMatchesGemm) {
  using T = TypeParam;
  const auto A = random_matrix<T>(11, 6, 9);
  const auto x = random_matrix<T>(6, 1, 10);
  Matrix<T> y_ref(11, 1);
  gemm(T{1}, A.view(), Op::kNoTrans, x.view(), Op::kNoTrans, T{0},
       y_ref.view());
  Matrix<T> y(11, 1);
  gemv(T{1}, A.view(), Op::kNoTrans, x.data(), T{0}, y.data());
  EXPECT_LT(rel_diff<T>(y.view(), y_ref.view()), 1e-13);

  const auto z = random_matrix<T>(11, 1, 11);
  Matrix<T> w_ref(6, 1);
  gemm(T{1}, A.view(), Op::kTrans, z.view(), Op::kNoTrans, T{0}, w_ref.view());
  Matrix<T> w(6, 1);
  gemv(T{1}, A.view(), Op::kTrans, z.data(), T{0}, w.data());
  EXPECT_LT(rel_diff<T>(w.view(), w_ref.view()), 1e-13);
}

/// trsm checked by verifying op(A) * X == B for all side/uplo/op combos.
TYPED_TEST(LaTypedTest, TrsmAllVariants) {
  using T = TypeParam;
  const index_t n = 9, nrhs = 4;
  auto A = random_matrix<T>(n, n, 12);
  for (index_t i = 0; i < n; ++i) A(i, i) += T{static_cast<double>(n)};

  for (Uplo uplo : {Uplo::kLower, Uplo::kUpper}) {
    // Zero out the other triangle so A is really triangular.
    Matrix<T> Tr = A;
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) {
        if (uplo == Uplo::kLower && i < j) Tr(i, j) = T{0};
        if (uplo == Uplo::kUpper && i > j) Tr(i, j) = T{0};
      }
    for (Op op : {Op::kNoTrans, Op::kTrans}) {
      for (Diag diag : {Diag::kNonUnit, Diag::kUnit}) {
        Matrix<T> Teff = Tr;
        if (diag == Diag::kUnit)
          for (index_t i = 0; i < n; ++i) Teff(i, i) = T{1};
        const Matrix<T> Topped =
            (op == Op::kTrans) ? transpose<T>(Teff.view()) : Teff;

        // Left: solve op(T) X = B.
        {
          const auto B = random_matrix<T>(n, nrhs, 13);
          Matrix<T> X = B;
          trsm(Side::kLeft, uplo, op, diag, Tr.view(), X.view());
          Matrix<T> back = naive_mult<T>(Topped.view(), X.view());
          EXPECT_LT(rel_diff<T>(back.view(), B.view()), 1e-11)
              << "left uplo=" << int(uplo) << " op=" << int(op)
              << " diag=" << int(diag);
        }
        // Right: solve X op(T) = B.
        {
          const auto B = random_matrix<T>(nrhs, n, 14);
          Matrix<T> X = B;
          trsm(Side::kRight, uplo, op, diag, Tr.view(), X.view());
          Matrix<T> back = naive_mult<T>(X.view(), Topped.view());
          EXPECT_LT(rel_diff<T>(back.view(), B.view()), 1e-11)
              << "right uplo=" << int(uplo) << " op=" << int(op)
              << " diag=" << int(diag);
        }
      }
    }
  }
}

TYPED_TEST(LaTypedTest, LdltFactorReconstructs) {
  using T = TypeParam;
  const index_t n = 33;
  auto A = random_sym<T>(n, 20);
  Matrix<T> F = A;
  ldlt_factor(F.view(), /*nb=*/8);
  // Rebuild L D L^T from the factor.
  Matrix<T> L = Matrix<T>::identity(n);
  Matrix<T> D(n, n);
  for (index_t j = 0; j < n; ++j) {
    D(j, j) = F(j, j);
    for (index_t i = j + 1; i < n; ++i) L(i, j) = F(i, j);
  }
  Matrix<T> LD = naive_mult<T>(L.view(), D.view());
  Matrix<T> rec = naive_mult<T>(LD.view(), transpose<T>(L.view()).view());
  // Only the lower triangle of A is meaningful for the comparison.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_NEAR(std::abs(rec(i, j) - A(i, j)), 0.0, 1e-9);
}

TYPED_TEST(LaTypedTest, LdltSolve) {
  using T = TypeParam;
  const index_t n = 40, nrhs = 3;
  auto A = random_sym<T>(n, 21);
  symmetrize_from_lower(A.view());
  const auto X = random_matrix<T>(n, nrhs, 22);
  Matrix<T> B = naive_mult<T>(A.view(), X.view());
  Matrix<T> F = A;
  ldlt_factor(F.view());
  ldlt_solve<T>(F.view(), B.view());
  EXPECT_LT(rel_diff<T>(B.view(), X.view()), 1e-10);
}

/// Partial LDL^T must leave the exact dense Schur complement in the
/// trailing block (this is the primitive behind the sparse solver's Schur
/// feature).
TYPED_TEST(LaTypedTest, LdltPartialLeavesSchur) {
  using T = TypeParam;
  const index_t n = 30, ns = 18;
  auto A = random_sym<T>(n, 23);
  symmetrize_from_lower(A.view());

  // Reference Schur: A22 - A21 * A11^{-1} * A12.
  Matrix<T> A11(ns, ns), A21(n - ns, ns), A22(n - ns, n - ns);
  A11.view().copy_from(A.block(0, 0, ns, ns));
  A21.view().copy_from(A.block(ns, 0, n - ns, ns));
  A22.view().copy_from(A.block(ns, ns, n - ns, n - ns));
  Matrix<T> F11 = A11;
  ldlt_factor(F11.view());
  Matrix<T> Y = transpose<T>(A21.view());  // A12 = A21^T by symmetry
  ldlt_solve<T>(F11.view(), Y.view());     // Y = A11^{-1} A12
  Matrix<T> ref = A22;
  gemm(T{-1}, A21.view(), Op::kNoTrans, Y.view(), Op::kNoTrans, T{1},
       ref.view());

  Matrix<T> F = A;
  ldlt_factor_partial(F.view(), ns, /*nb=*/7);
  symmetrize_from_lower(F.block(ns, ns, n - ns, n - ns));
  EXPECT_LT(rel_diff<T>(F.block(ns, ns, n - ns, n - ns), ref.view()), 1e-9);
}

TYPED_TEST(LaTypedTest, LuFactorSolve) {
  using T = TypeParam;
  const index_t n = 37, nrhs = 2;
  auto A = random_matrix<T>(n, n, 24);
  for (index_t i = 0; i < n; ++i) A(i, i) += T{1.5};
  const auto X = random_matrix<T>(n, nrhs, 25);
  Matrix<T> B = naive_mult<T>(A.view(), X.view());
  Matrix<T> F = A;
  std::vector<index_t> piv;
  lu_factor(F.view(), piv, /*nb=*/8);
  lu_solve<T>(F.view(), piv, B.view());
  EXPECT_LT(rel_diff<T>(B.view(), X.view()), 1e-10);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  // Matrix with a zero in the (0,0) position requires a row swap.
  Matrix<double> A(3, 3);
  A(0, 0) = 0.0; A(0, 1) = 2.0; A(0, 2) = 1.0;
  A(1, 0) = 1.0; A(1, 1) = 1.0; A(1, 2) = 1.0;
  A(2, 0) = 4.0; A(2, 1) = 0.0; A(2, 2) = 3.0;
  Matrix<double> X(3, 1);
  X(0, 0) = 1.0; X(1, 0) = -2.0; X(2, 0) = 0.5;
  Matrix<double> B = naive_mult<double>(A.view(), X.view());
  std::vector<index_t> piv;
  lu_factor(A.view(), piv);
  lu_solve<double>(A.view(), piv, B.view());
  EXPECT_LT(rel_diff<double>(B.view(), X.view()), 1e-12);
}

TYPED_TEST(LaTypedTest, LuPartialLeavesSchur) {
  using T = TypeParam;
  const index_t n = 26, ns = 15;
  auto A = random_matrix<T>(n, n, 26);
  for (index_t i = 0; i < n; ++i) A(i, i) += T{static_cast<double>(n)};

  Matrix<T> A11(ns, ns), A12(ns, n - ns), A21(n - ns, ns), A22(n - ns, n - ns);
  A11.view().copy_from(A.block(0, 0, ns, ns));
  A12.view().copy_from(A.block(0, ns, ns, n - ns));
  A21.view().copy_from(A.block(ns, 0, n - ns, ns));
  A22.view().copy_from(A.block(ns, ns, n - ns, n - ns));
  Matrix<T> F11 = A11;
  std::vector<index_t> piv11;
  lu_factor(F11.view(), piv11);
  Matrix<T> Y = A12;
  lu_solve<T>(F11.view(), piv11, Y.view());
  Matrix<T> ref = A22;
  gemm(T{-1}, A21.view(), Op::kNoTrans, Y.view(), Op::kNoTrans, T{1},
       ref.view());

  Matrix<T> F = A;
  std::vector<index_t> piv;
  lu_factor_partial(F.view(), ns, piv, /*nb=*/6);
  EXPECT_LT(rel_diff<T>(F.block(ns, ns, n - ns, n - ns), ref.view()), 1e-9);
}

TEST(Factor, SingularMatrixThrows) {
  Matrix<double> A(2, 2);  // all zeros
  EXPECT_THROW(ldlt_factor(A.view()), SingularMatrix);
  std::vector<index_t> piv;
  Matrix<double> B(2, 2);
  EXPECT_THROW(lu_factor(B.view(), piv), SingularMatrix);
}

TEST(Blas, NormsAndAxpy) {
  Matrix<double> A(2, 2);
  A(0, 0) = 3.0; A(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(norm_fro<double>(A.view()), 5.0);
  EXPECT_DOUBLE_EQ(max_abs<double>(A.view()), 4.0);
  Matrix<double> B(2, 2);
  axpy(2.0, A.view(), B.view());
  EXPECT_DOUBLE_EQ(B(0, 0), 6.0);
  scale(0.5, B.view());
  EXPECT_DOUBLE_EQ(B(0, 0), 3.0);
}

TEST(Blas, RelDiffZeroDenominator) {
  Matrix<double> A(2, 2), B(2, 2);
  EXPECT_DOUBLE_EQ(rel_diff<double>(A.view(), B.view()), 0.0);
  A(0, 0) = 1e-3;
  EXPECT_GT(rel_diff<double>(A.view(), B.view()), 0.0);
}

TEST(Factor, SymmetrizeFromLower) {
  Matrix<double> A(3, 3);
  A(1, 0) = 2.0;
  A(2, 1) = 3.0;
  symmetrize_from_lower(A.view());
  EXPECT_DOUBLE_EQ(A(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(A(1, 2), 3.0);
}

TEST(Vector, BasicOperations) {
  Vector<double> v(5);
  EXPECT_EQ(v.size(), 5);
  for (index_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], 0.0);
  v.fill(2.5);
  EXPECT_EQ(v[4], 2.5);
  v[2] = -1.0;
  auto m = v.as_matrix();
  EXPECT_EQ(m.rows(), 5);
  EXPECT_EQ(m.cols(), 1);
  EXPECT_EQ(m(2, 0), -1.0);
}

TEST(MatrixView, FillAndCopyThroughBlocks) {
  Matrix<double> m(5, 5);
  m.view().block(1, 1, 3, 3).fill(7.0);
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m(2, 2), 7.0);
  EXPECT_EQ(m(4, 4), 0.0);
  Matrix<double> dst(3, 3);
  dst.view().copy_from(ConstMatrixView<double>(m.view().block(1, 1, 3, 3)));
  EXPECT_EQ(dst(0, 0), 7.0);
}

TYPED_TEST(LaTypedTest, GemmLargeParallelPathMatchesNaive) {
  using T = TypeParam;
  // Sizes above the OpenMP threshold exercise the parallel kernels.
  const index_t m = 96, k = 48, n = 80;
  const auto A = random_matrix<T>(m, k, 40);
  const auto B = random_matrix<T>(k, n, 41);
  Matrix<T> C(m, n);
  gemm(T{1}, A.view(), Op::kNoTrans, B.view(), Op::kNoTrans, T{0}, C.view());
  Matrix<T> ref = naive_mult<T>(A.view(), B.view());
  EXPECT_LT(rel_diff<T>(C.view(), ref.view()), 1e-12);

  // Odd remainder columns (n not a multiple of the column block).
  Matrix<T> C2(m, 3);
  gemm(T{1}, A.view(), Op::kNoTrans,
       ConstMatrixView<T>(B.view().block(0, 0, k, 3)), Op::kNoTrans, T{0},
       C2.view());
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < m; ++i)
      EXPECT_NEAR(std::abs(C2(i, j) - ref(i, j)), 0.0, 1e-12);
}

// Parameterized sweep: LDLT and LU across sizes and block sizes (property:
// solve recovers a known solution for every configuration).
class FactorSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FactorSweep, LdltAndLuRecoverSolution) {
  const auto [n, nb] = GetParam();
  auto A = random_sym<double>(n, 100 + n);
  symmetrize_from_lower(A.view());
  const auto X = random_matrix<double>(n, 2, 200 + n);
  Matrix<double> B = naive_mult<double>(A.view(), X.view());
  Matrix<double> F = A;
  ldlt_factor(F.view(), nb);
  ldlt_solve<double>(F.view(), B.view());
  EXPECT_LT(rel_diff<double>(B.view(), X.view()), 1e-9) << "ldlt n=" << n;

  auto G = random_matrix<double>(n, n, 300 + n);
  for (index_t i = 0; i < n; ++i) G(i, i) += n;
  Matrix<double> B2 = naive_mult<double>(G.view(), X.view());
  std::vector<index_t> piv;
  Matrix<double> GF = G;
  lu_factor(GF.view(), piv, nb);
  lu_solve<double>(GF.view(), piv, B2.view());
  EXPECT_LT(rel_diff<double>(B2.view(), X.view()), 1e-9) << "lu n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, FactorSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 16, 33, 64, 97),
                       ::testing::Values(4, 8, 96)));

}  // namespace
}  // namespace cs::la
