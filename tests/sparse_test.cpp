// Tests for the sparse matrix containers and kernels (CSR build, SpMV,
// SpMM, transpose, symmetric permutation, block extraction, patterns).
#include <gtest/gtest.h>

#include "common/random.h"
#include "la/blas.h"
#include "sparse/sparse.h"

namespace cs::sparse {
namespace {

using la::ConstMatrixView;
using la::Matrix;
using la::rel_diff;

/// Random sparse matrix with a fixed number of entries per row.
template <class T>
Csr<T> random_csr(index_t rows, index_t cols, index_t per_row,
                  std::uint64_t seed) {
  Rng rng(seed);
  Triplets<T> t(rows, cols);
  for (index_t r = 0; r < rows; ++r)
    for (index_t k = 0; k < per_row; ++k)
      t.add(r, rng.uniform_index(0, cols - 1), rng.scalar<T>());
  return Csr<T>::from_triplets(t);
}

TEST(Csr, FromTripletsSumsDuplicates) {
  Triplets<double> t(2, 2);
  t.add(0, 1, 1.5);
  t.add(0, 1, 2.5);
  t.add(1, 0, -1.0);
  auto m = Csr<double>::from_triplets(t);
  EXPECT_EQ(m.nnz(), 2);
  auto d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(d(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

TEST(Csr, EmptyMatrix) {
  Triplets<double> t(3, 3);
  auto m = Csr<double>::from_triplets(t);
  EXPECT_EQ(m.nnz(), 0);
  std::vector<double> x(3, 1.0), y(3, 5.0);
  m.spmv(1.0, x.data(), 0.0, y.data());
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

template <class T>
class SparseTypedTest : public ::testing::Test {};
using Scalars = ::testing::Types<double, complexd>;
TYPED_TEST_SUITE(SparseTypedTest, Scalars);

TYPED_TEST(SparseTypedTest, SpmvMatchesDense) {
  using T = TypeParam;
  auto A = random_csr<T>(15, 11, 4, 1);
  auto D = A.to_dense();
  Rng rng(2);
  std::vector<T> x(11), y(15, T{3}), y_ref(15);
  for (auto& v : x) v = rng.scalar<T>();
  // y := 2*A*x + 0.5*y
  for (index_t i = 0; i < 15; ++i) {
    T acc{};
    for (index_t j = 0; j < 11; ++j) acc += D(i, j) * x[j];
    y_ref[i] = T{2} * acc + T{0.5} * y[i];
  }
  A.spmv(T{2}, x.data(), T{0.5}, y.data());
  for (index_t i = 0; i < 15; ++i)
    EXPECT_NEAR(std::abs(y[i] - y_ref[i]), 0.0, 1e-12);
}

TYPED_TEST(SparseTypedTest, SpmvTransMatchesDense) {
  using T = TypeParam;
  auto A = random_csr<T>(9, 14, 3, 3);
  auto D = A.to_dense();
  Rng rng(4);
  std::vector<T> x(9), y(14);
  for (auto& v : x) v = rng.scalar<T>();
  A.spmv_trans(T{1}, x.data(), T{0}, y.data());
  for (index_t j = 0; j < 14; ++j) {
    T acc{};
    for (index_t i = 0; i < 9; ++i) acc += D(i, j) * x[i];
    EXPECT_NEAR(std::abs(y[j] - acc), 0.0, 1e-12);
  }
}

TYPED_TEST(SparseTypedTest, SpmmMatchesDense) {
  using T = TypeParam;
  auto A = random_csr<T>(20, 13, 5, 5);
  auto D = A.to_dense();
  Rng rng(6);
  Matrix<T> B(13, 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 13; ++i) B(i, j) = rng.scalar<T>();
  Matrix<T> C(20, 4), C_ref(20, 4);
  la::gemm(T{1}, ConstMatrixView<T>(D.view()), la::Op::kNoTrans,
           ConstMatrixView<T>(B.view()), la::Op::kNoTrans, T{0}, C_ref.view());
  A.spmm(T{1}, B.view(), T{0}, C.view());
  EXPECT_LT(rel_diff<T>(C.view(), C_ref.view()), 1e-12);
}

TYPED_TEST(SparseTypedTest, SpmmTransMatchesDense) {
  using T = TypeParam;
  auto A = random_csr<T>(14, 9, 4, 21);
  auto D = A.to_dense();
  Rng rng(22);
  Matrix<T> B(14, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 14; ++i) B(i, j) = rng.scalar<T>();
  Matrix<T> C(9, 3), C_ref(9, 3);
  la::gemm(T{2}, ConstMatrixView<T>(D.view()), la::Op::kTrans,
           ConstMatrixView<T>(B.view()), la::Op::kNoTrans, T{0}, C_ref.view());
  A.spmm_trans(T{2}, B.view(), T{0}, C.view());
  EXPECT_LT(rel_diff<T>(C.view(), C_ref.view()), 1e-12);

  // Accumulating variant.
  Matrix<T> C2(9, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 9; ++i) C2(i, j) = T{1};
  A.spmm_trans(T{1}, B.view(), T{2}, C2.view());
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 9; ++i)
      EXPECT_NEAR(std::abs(C2(i, j) - (C_ref(i, j) / T{2} + T{2})), 0.0,
                  1e-12);
}

TYPED_TEST(SparseTypedTest, TransposeRoundTrip) {
  using T = TypeParam;
  auto A = random_csr<T>(10, 7, 3, 7);
  auto At = A.transposed();
  EXPECT_EQ(At.rows(), 7);
  EXPECT_EQ(At.cols(), 10);
  auto D = A.to_dense();
  auto Dt = At.to_dense();
  for (index_t i = 0; i < 10; ++i)
    for (index_t j = 0; j < 7; ++j)
      EXPECT_EQ(D(i, j), Dt(j, i));
}

TEST(Csr, PermutedSymmetric) {
  // 3x3 symmetric matrix, permutation (0,1,2) -> (2,0,1).
  Triplets<double> t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 2.0);
  t.add(2, 2, 3.0);
  t.add(0, 1, 4.0);
  t.add(1, 0, 4.0);
  auto A = Csr<double>::from_triplets(t);
  std::vector<index_t> perm = {2, 0, 1};
  auto B = A.permuted_symmetric(perm);
  auto D = B.to_dense();
  EXPECT_DOUBLE_EQ(D(2, 2), 1.0);  // old (0,0)
  EXPECT_DOUBLE_EQ(D(0, 0), 2.0);  // old (1,1)
  EXPECT_DOUBLE_EQ(D(1, 1), 3.0);  // old (2,2)
  EXPECT_DOUBLE_EQ(D(2, 0), 4.0);  // old (0,1)
  EXPECT_DOUBLE_EQ(D(0, 2), 4.0);
}

TEST(Csr, RowsAsDenseTransposed) {
  // Rows [1,3) of A as dense columns of A^T.
  Triplets<double> t(4, 3);
  t.add(1, 0, 5.0);
  t.add(1, 2, 6.0);
  t.add(2, 1, 7.0);
  auto A = Csr<double>::from_triplets(t);
  Matrix<double> out(3, 2);
  A.rows_as_dense_transposed(1, 2, out.view());
  EXPECT_DOUBLE_EQ(out(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(out(2, 0), 6.0);
  EXPECT_DOUBLE_EQ(out(1, 1), 7.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.0);
}

TEST(Csr, ExtractBlockWithOffsets) {
  Triplets<double> t(4, 4);
  t.add(1, 1, 1.0);
  t.add(2, 3, 2.0);
  t.add(0, 0, 9.0);  // outside the block
  auto A = Csr<double>::from_triplets(t);
  Triplets<double> out(10, 10);
  A.extract_block(/*r0=*/1, /*nr=*/2, /*c0=*/1, /*nc=*/3, out,
                  /*row_offset=*/5, /*col_offset=*/6);
  ASSERT_EQ(out.nnz(), 2u);
  auto B = Csr<double>::from_triplets(out);
  auto D = B.to_dense();
  EXPECT_DOUBLE_EQ(D(5, 6), 1.0);   // (1,1) -> (5,6)
  EXPECT_DOUBLE_EQ(D(6, 8), 2.0);   // (2,3) -> (6,8)
}

TEST(Pattern, FromSymmetricSkipsDiagonal) {
  Triplets<double> t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 2, 1.0);
  t.add(2, 1, 1.0);
  auto A = Csr<double>::from_triplets(t);
  auto p = Pattern::from_symmetric(A);
  EXPECT_EQ(p.n, 3);
  EXPECT_EQ(p.degree(0), 1);
  EXPECT_EQ(p.degree(1), 2);
  EXPECT_EQ(p.degree(2), 1);
  EXPECT_EQ(p.adj[static_cast<std::size_t>(p.adj_ptr[0])], 1);
}

TEST(Csr, SizeBytesIsPositive) {
  auto A = random_csr<double>(10, 10, 2, 11);
  EXPECT_GT(A.size_bytes(), 0u);
}

// Parameterized property: for random matrices of several shapes,
// (A^T)^T == A and spmv_trans(A) == spmv(A^T).
class SparseShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SparseShapeSweep, TransposeConsistency) {
  const auto [rows, cols, per_row] = GetParam();
  auto A = random_csr<double>(rows, cols, per_row, 100 + rows);
  auto At = A.transposed();
  auto Att = At.transposed();
  auto D = A.to_dense();
  auto Dtt = Att.to_dense();
  EXPECT_LT(rel_diff<double>(Dtt.view(), D.view()), 1e-15);

  Rng rng(7);
  std::vector<double> x(static_cast<std::size_t>(rows));
  for (auto& v : x) v = rng.uniform();
  std::vector<double> y1(static_cast<std::size_t>(cols)),
      y2(static_cast<std::size_t>(cols));
  A.spmv_trans(1.0, x.data(), 0.0, y1.data());
  At.spmv(1.0, x.data(), 0.0, y2.data());
  for (index_t j = 0; j < cols; ++j) EXPECT_NEAR(y1[j], y2[j], 1e-13);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SparseShapeSweep,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{5, 9, 2},
                      std::tuple{20, 20, 4}, std::tuple{50, 3, 2},
                      std::tuple{3, 50, 2}));

}  // namespace
}  // namespace cs::sparse
