// Durable factorization: crash-consistent checkpoint/restore of
// FactoredCoupled (DESIGN.md §14). The round-trip property -- a restored
// handle's solve is bitwise identical to the originating handle's -- must
// hold for every strategy and both factor precisions; every torn, corrupt
// or mismatched checkpoint must surface as a clean classified error (or a
// checkpoint_fallback refactorization), never a wrong answer or a leak.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/memory.h"
#include "common/parallel.h"
#include "common/serialize.h"
#include "coupled/coupled.h"

namespace cs::coupled {
namespace {

using fembem::CoupledSystem;
using fembem::SystemParams;

const CoupledSystem<double>& real_system() {
  static auto sys = [] {
    SystemParams p;
    p.total_unknowns = 1500;
    return fembem::make_pipe_system<double>(p);
  }();
  return sys;
}

const CoupledSystem<double>& other_system() {
  // 2000 unknowns rounds to a genuinely different pipe mesh than 1500
  // (1400 would round to the *same* mesh and legitimately share the
  // fingerprint).
  static auto sys = [] {
    SystemParams p;
    p.total_unknowns = 2000;
    return fembem::make_pipe_system<double>(p);
  }();
  return sys;
}

const CoupledSystem<complexd>& complex_system() {
  static auto sys = [] {
    SystemParams p;
    p.total_unknowns = 1200;
    p.kappa = 1.0;
    p.sigma_real = 2.0;
    p.sigma_imag = 0.3;
    p.symmetric_bem = false;
    return fembem::make_pipe_system<complexd>(p);
  }();
  return sys;
}

std::string ckpt_path(const std::string& name) {
  return ::testing::TempDir() + "cs_ckpt_" + name + ".bin";
}

/// Deterministic pseudo-random RHS block.
template <class T>
la::Matrix<T> rhs_block(index_t n, index_t nrhs, std::uint32_t seed) {
  la::Matrix<T> B(n, nrhs);
  std::uint32_t s = seed;
  for (index_t j = 0; j < nrhs; ++j)
    for (index_t i = 0; i < n; ++i) {
      s = s * 1664525u + 1013904223u;
      B(i, j) = T(1.0 + double(s >> 8) / double(1u << 24));
    }
  return B;
}

template <class T>
bool bitwise_equal(const la::Matrix<T>& A, const la::Matrix<T>& B) {
  return A.rows() == B.rows() && A.cols() == B.cols() &&
         std::memcmp(A.data(), B.data(),
                     static_cast<std::size_t>(A.rows()) *
                         static_cast<std::size_t>(A.cols()) * sizeof(T)) == 0;
}

/// Solve the system's built-in RHS plus extra pseudo-random columns
/// through a handle and return the solution block (B_v stacked over B_s).
template <class T>
std::pair<la::Matrix<T>, la::Matrix<T>> solve_block(
    const CoupledSystem<T>& sys, const FactoredCoupled<T>& h, index_t nrhs) {
  la::Matrix<T> Bv = rhs_block<T>(sys.nv(), nrhs, 7u);
  la::Matrix<T> Bs = rhs_block<T>(sys.ns(), nrhs, 11u);
  for (index_t i = 0; i < sys.nv(); ++i) Bv(i, 0) = sys.b_v[i];
  for (index_t i = 0; i < sys.ns(); ++i) Bs(i, 0) = sys.b_s[i];
  auto st = h.solve(Bv.view(), Bs.view());
  EXPECT_TRUE(st.success) << st.failure;
  return {std::move(Bv), std::move(Bs)};
}

class CheckpointSweep
    : public ::testing::TestWithParam<std::tuple<Strategy, Precision>> {};

TEST_P(CheckpointSweep, RoundTripSolveIsBitwiseIdentical) {
  const auto [strategy, precision] = GetParam();
  const auto& sys = real_system();
  Config cfg;
  cfg.strategy = strategy;
  cfg.factor_precision = precision;
  if (precision == Precision::kSingle) cfg.refine_iterations = 2;
  cfg.eps = 1e-4;
  cfg.n_c = 64;
  cfg.n_S = 160;
  cfg.n_b = 2;

  auto original = factorize_coupled(sys, cfg);
  ASSERT_TRUE(original.ok()) << original.stats().failure;
  const std::string path =
      ckpt_path(std::string(strategy_name(strategy)) + "_" +
                precision_name(precision));
  SolveError err;
  const std::size_t bytes = original.save(path, &err);
  ASSERT_GT(bytes, 0u) << err.site << ": " << err.detail;

  // Restore with a default (runtime-only) config: the factorization-shaping
  // fields must come back from the checkpoint itself.
  Config runtime;
  auto restored = load_factored(path, sys, runtime);
  ASSERT_TRUE(restored.ok()) << restored.stats().failure;
  EXPECT_EQ(restored.stats().checkpoint_source, "checkpoint");
  EXPECT_EQ(restored.stats().checkpoint_bytes, bytes);
  EXPECT_TRUE(restored.stats().recoveries.empty());
  EXPECT_EQ(restored.config().strategy, strategy);
  EXPECT_EQ(restored.config().factor_precision, precision);
  EXPECT_EQ(restored.stats().factor_bytes, original.stats().factor_bytes);

  const auto [xv0, xs0] = solve_block(sys, original, 3);
  const auto [xv1, xs1] = solve_block(sys, restored, 3);
  EXPECT_TRUE(bitwise_equal(xv0, xv1)) << strategy_name(strategy);
  EXPECT_TRUE(bitwise_equal(xs0, xs1)) << strategy_name(strategy);

  // The round trip must survive a different ambient thread count too.
  {
    ScopedNumThreads two(2);
    const auto [xv2, xs2] = solve_block(sys, restored, 3);
    EXPECT_TRUE(bitwise_equal(xv0, xv2));
    EXPECT_TRUE(bitwise_equal(xs0, xs2));
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, CheckpointSweep,
    ::testing::Combine(
        ::testing::Values(Strategy::kBaselineCoupling,
                          Strategy::kAdvancedCoupling, Strategy::kMultiSolve,
                          Strategy::kMultiSolveCompressed,
                          Strategy::kMultiFactorization,
                          Strategy::kMultiFactorizationCompressed,
                          Strategy::kMultiSolveRandomized),
        ::testing::Values(Precision::kDouble, Precision::kSingle)),
    [](const ::testing::TestParamInfo<std::tuple<Strategy, Precision>>&
           info) {
      std::string name =
          std::string(strategy_name(std::get<0>(info.param))) + "_" +
          precision_name(std::get<1>(info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Checkpoint, ComplexSystemRoundTrips) {
  const auto& sys = complex_system();
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.eps = 1e-4;
  cfg.n_c = 64;
  cfg.n_S = 160;
  auto original = factorize_coupled(sys, cfg);
  ASSERT_TRUE(original.ok()) << original.stats().failure;
  const std::string path = ckpt_path("complex");
  ASSERT_GT(original.save(path), 0u);
  auto restored = load_factored(path, sys, Config{});
  ASSERT_TRUE(restored.ok()) << restored.stats().failure;
  const auto [xv0, xs0] = solve_block(sys, original, 2);
  const auto [xv1, xs1] = solve_block(sys, restored, 2);
  EXPECT_TRUE(bitwise_equal(xv0, xv1));
  EXPECT_TRUE(bitwise_equal(xs0, xs1));
  std::remove(path.c_str());
}

TEST(Checkpoint, OutOfCorePanelsRoundTripThroughTheCheckpoint) {
  // OOC-resident panels are streamed inline into the checkpoint on save
  // and re-spilled to a fresh store on load; the restored handle must
  // solve identically while its factors stay out of core.
  const auto& sys = real_system();
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.eps = 1e-4;
  cfg.n_c = 64;
  cfg.n_S = 160;
  cfg.out_of_core = true;
  auto original = factorize_coupled(sys, cfg);
  ASSERT_TRUE(original.ok()) << original.stats().failure;
  const std::string path = ckpt_path("ooc");
  ASSERT_GT(original.save(path), 0u);
  auto restored = load_factored(path, sys, Config{});
  ASSERT_TRUE(restored.ok()) << restored.stats().failure;
  EXPECT_TRUE(restored.config().out_of_core);
  const auto [xv0, xs0] = solve_block(sys, original, 2);
  const auto [xv1, xs1] = solve_block(sys, restored, 2);
  EXPECT_TRUE(bitwise_equal(xv0, xv1));
  EXPECT_TRUE(bitwise_equal(xs0, xs1));
  std::remove(path.c_str());
}

TEST(Checkpoint, SaveOnUnfactoredHandleFailsCleanly) {
  FactoredCoupled<double> empty;
  SolveError err;
  EXPECT_EQ(empty.save(ckpt_path("empty"), &err), 0u);
  EXPECT_EQ(err.code, ErrorCode::kInternal);
}

/// Factorize + save once, shared by the corruption tests below.
const std::string& good_checkpoint() {
  static const std::string path = [] {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolveCompressed;
    cfg.eps = 1e-4;
    cfg.n_c = 64;
    cfg.n_S = 160;
    auto h = factorize_coupled(real_system(), cfg);
    EXPECT_TRUE(h.ok()) << h.stats().failure;
    const std::string p = ckpt_path("master");
    EXPECT_GT(h.save(p), 0u);
    return p;
  }();
  return path;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A failed load with auto_recover off must return a clean classified
/// error at `site` and leave tracked memory at its pre-call level.
void expect_clean_failure(const std::string& path, const std::string& site) {
  // Materialize the lazy system static before taking the baseline (each
  // test may run in a fresh process under ctest).
  (void)real_system().nv();
  const std::size_t before = MemoryTracker::instance().current();
  Config cfg;
  cfg.auto_recover = false;
  auto h = load_factored(path, real_system(), cfg);
  EXPECT_FALSE(h.ok());
  EXPECT_EQ(h.stats().error.code, ErrorCode::kIo) << h.stats().failure;
  EXPECT_EQ(h.stats().error.site, site) << h.stats().failure;
  EXPECT_TRUE(h.stats().checkpoint_source.empty());
  EXPECT_EQ(MemoryTracker::instance().current(), before)
      << "failed load leaked tracked bytes";
}

TEST(Checkpoint, MissingFileFailsCleanly) {
  expect_clean_failure(ckpt_path("no_such_file"), "ckpt.open");
}

TEST(Checkpoint, TruncatedFileIsDetectedAsTorn) {
  auto bytes = slurp(good_checkpoint());
  ASSERT_GT(bytes.size(), 200u);
  const std::string path = ckpt_path("truncated");
  // Cut anywhere before the trailer: the commit record is gone.
  bytes.resize(bytes.size() / 2);
  spit(path, bytes);
  expect_clean_failure(path, "ckpt.torn");
  std::remove(path.c_str());
}

TEST(Checkpoint, FlippedPayloadByteIsDetectedAsCorrupt) {
  auto bytes = slurp(good_checkpoint());
  ASSERT_GT(bytes.size(), 200u);
  const std::string path = ckpt_path("flipped");
  bytes[bytes.size() / 3] ^= 0x40;  // somewhere inside a payload section
  spit(path, bytes);
  expect_clean_failure(path, "ckpt.corrupt");
  std::remove(path.c_str());
}

TEST(Checkpoint, WrongFormatVersionIsRejected) {
  auto bytes = slurp(good_checkpoint());
  ASSERT_GT(bytes.size(), 200u);
  // Trailer: [footer offset u64][tail magic u64]. The version is the u32
  // at footer_offset + 8; re-sign the footer CRC so only the version is
  // "wrong", not the bytes around it.
  std::uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, bytes.data() + bytes.size() - 16, 8);
  const std::size_t footer_end = bytes.size() - 16;  // footer crc inclusive
  const std::uint32_t bad_version = 999;
  std::memcpy(bytes.data() + footer_offset + 8, &bad_version, 4);
  const std::uint32_t crc = serialize::crc32c(
      0, bytes.data() + footer_offset, footer_end - 4 - footer_offset);
  std::memcpy(bytes.data() + footer_end - 4, &crc, 4);
  const std::string path = ckpt_path("version");
  spit(path, bytes);
  expect_clean_failure(path, "ckpt.version");
  std::remove(path.c_str());
}

TEST(Checkpoint, WrongSystemFingerprintIsRejected) {
  // Materialize the lazy statics before taking the memory baseline.
  const std::string& path = good_checkpoint();
  (void)other_system().nv();
  const std::size_t before = MemoryTracker::instance().current();
  Config cfg;
  cfg.auto_recover = false;
  auto h = load_factored(path, other_system(), cfg);
  EXPECT_FALSE(h.ok());
  EXPECT_EQ(h.stats().error.code, ErrorCode::kIo);
  EXPECT_EQ(h.stats().error.site, "ckpt.fingerprint") << h.stats().failure;
  EXPECT_EQ(MemoryTracker::instance().current(), before);
}

TEST(Checkpoint, WrongScalarTypeIsRejected) {
  Config cfg;
  cfg.auto_recover = false;
  auto h = load_factored(good_checkpoint(), complex_system(), cfg);
  EXPECT_FALSE(h.ok());
  EXPECT_EQ(h.stats().error.code, ErrorCode::kIo);
  EXPECT_EQ(h.stats().error.site, "ckpt.scalar") << h.stats().failure;
}

TEST(Checkpoint, CorruptLoadFallsBackToRefactorization) {
  auto bytes = slurp(good_checkpoint());
  ASSERT_GT(bytes.size(), 200u);
  const std::string path = ckpt_path("fallback");
  bytes[bytes.size() / 3] ^= 0x01;
  spit(path, bytes);
  Config cfg;  // auto_recover defaults to true
  cfg.eps = 1e-4;
  auto h = load_factored(path, real_system(), cfg);
  ASSERT_TRUE(h.ok()) << h.stats().failure;
  EXPECT_EQ(h.stats().checkpoint_source, "refactorized");
  EXPECT_EQ(h.stats().checkpoint_bytes, 0u);
  ASSERT_FALSE(h.stats().recoveries.empty());
  EXPECT_EQ(h.stats().recoveries.front().action, "checkpoint_fallback");
  // The fallback handle still solves the system correctly.
  const auto [xv, xs] = solve_block(real_system(), h, 1);
  la::Vector<double> v(real_system().nv()), s(real_system().ns());
  for (index_t i = 0; i < real_system().nv(); ++i) v[i] = xv(i, 0);
  for (index_t i = 0; i < real_system().ns(); ++i) s[i] = xs(i, 0);
  EXPECT_LT(real_system().relative_error(v, s), 1e-3);
  std::remove(path.c_str());
}

TEST(Checkpoint, InjectedSaveFailuresLeaveDetectablyTornFiles) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolve;
  cfg.eps = 1e-4;
  cfg.n_c = 64;
  for (const char* fp : {"ckpt.write=hit:20", "ckpt.torn=once"}) {
    Config armed = cfg;
    armed.failpoints = fp;
    auto h = factorize_coupled(real_system(), armed);
    ASSERT_TRUE(h.ok()) << h.stats().failure;
    const std::string path = ckpt_path("injected");
    SolveError err;
    EXPECT_EQ(h.save(path, &err), 0u) << fp;
    EXPECT_EQ(err.code, ErrorCode::kIo) << fp;
    // Whatever the crash left behind must never load as a valid
    // checkpoint: either the file is unreadable or it is rejected torn.
    Config noreco;
    noreco.auto_recover = false;
    auto torn = load_factored(path, real_system(), noreco);
    EXPECT_FALSE(torn.ok()) << fp;
    EXPECT_EQ(torn.stats().error.code, ErrorCode::kIo) << fp;
    std::remove(path.c_str());
  }
}

TEST(Checkpoint, FsyncFailureReportsErrorButNeverAWrongAnswer) {
  // An injected fsync failure strikes *after* every byte is flushed, so
  // the leftover file may be complete. save() must still report the
  // failure (durability is not guaranteed); if the leftover does load,
  // every CRC was verified and the answer is exactly the saved one.
  Config cfg;
  cfg.strategy = Strategy::kMultiSolve;
  cfg.eps = 1e-4;
  cfg.n_c = 64;
  cfg.failpoints = "ckpt.fsync=once";
  auto h = factorize_coupled(real_system(), cfg);
  ASSERT_TRUE(h.ok()) << h.stats().failure;
  const std::string path = ckpt_path("fsync");
  SolveError err;
  EXPECT_EQ(h.save(path, &err), 0u);
  EXPECT_EQ(err.code, ErrorCode::kIo);
  EXPECT_EQ(err.site, "ckpt.fsync");
  Config noreco;
  noreco.auto_recover = false;
  auto restored = load_factored(path, real_system(), noreco);
  if (restored.ok()) {
    EXPECT_EQ(restored.stats().checkpoint_source, "checkpoint");
    const auto [xv0, xs0] = solve_block(real_system(), h, 2);
    const auto [xv1, xs1] = solve_block(real_system(), restored, 2);
    EXPECT_TRUE(bitwise_equal(xv0, xv1));
    EXPECT_TRUE(bitwise_equal(xs0, xs1));
  } else {
    EXPECT_EQ(restored.stats().error.code, ErrorCode::kIo);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, InjectedCorruptionOnLoadRecoversThroughFallback) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolve;
  cfg.eps = 1e-4;
  cfg.n_c = 64;
  auto h = factorize_coupled(real_system(), cfg);
  ASSERT_TRUE(h.ok()) << h.stats().failure;
  const std::string path = ckpt_path("inject_load");
  ASSERT_GT(h.save(path), 0u);
  Config armed = cfg;
  armed.failpoints = "ckpt.corrupt=once";
  auto restored = load_factored(path, real_system(), armed);
  ASSERT_TRUE(restored.ok()) << restored.stats().failure;
  EXPECT_EQ(restored.stats().checkpoint_source, "refactorized");
  ASSERT_FALSE(restored.stats().recoveries.empty());
  EXPECT_EQ(restored.stats().recoveries.front().action,
            "checkpoint_fallback");
  std::remove(path.c_str());
}

TEST(CheckpointChaos, InjectedFailuresNeverProduceAWrongAnswer) {
  // CI's crash-injection matrix re-runs this test with each ckpt.* site
  // armed through CS_FAILPOINTS (environment failpoints re-arm at every
  // solver session). Whatever fires, the contract is fixed: save either
  // commits a checkpoint or reports a clean IoError; load either verifies
  // every checksum or degrades through checkpoint_fallback -- and the
  // final answer is always the right one.
  const auto& sys = real_system();
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.eps = 1e-4;
  cfg.n_c = 64;
  cfg.n_S = 160;
  auto h = factorize_coupled(sys, cfg);
  ASSERT_TRUE(h.ok()) << h.stats().failure;
  const std::string path = ckpt_path("chaos");
  SolveError err;
  const std::size_t bytes = h.save(path, &err);
  if (bytes == 0) EXPECT_EQ(err.code, ErrorCode::kIo) << err.detail;

  Config lcfg = cfg;  // auto_recover defaults to true
  auto restored = load_factored(path, sys, lcfg);
  ASSERT_TRUE(restored.ok()) << restored.stats().failure;
  EXPECT_TRUE(restored.stats().checkpoint_source == "checkpoint" ||
              restored.stats().checkpoint_source == "refactorized")
      << "unexpected checkpoint_source '"
      << restored.stats().checkpoint_source << "'";
  // A handle that came back verified must have consumed the committed
  // checkpoint; a fallback one must have recorded why.
  if (restored.stats().checkpoint_source == "checkpoint") {
    EXPECT_GT(restored.stats().checkpoint_bytes, 0u);
  } else {
    ASSERT_FALSE(restored.stats().recoveries.empty());
    EXPECT_EQ(restored.stats().recoveries.front().action,
              "checkpoint_fallback");
  }
  const auto [xv, xs] = solve_block(sys, restored, 2);
  la::Vector<double> v(sys.nv()), s(sys.ns());
  for (index_t i = 0; i < sys.nv(); ++i) v[i] = xv(i, 0);
  for (index_t i = 0; i < sys.ns(); ++i) s[i] = xs(i, 0);
  EXPECT_LT(sys.relative_error(v, s), 1e-3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cs::coupled
