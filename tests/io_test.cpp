// Tests for the MatrixMarket / surface export used for cross-validation
// with external solvers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fembem/io.h"

namespace cs::fembem {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const std::string& name) {
  return std::string("/tmp/cs_io_test_") + name;
}

TEST(Io, SparseMatrixMarketRoundTripByParsing) {
  sparse::Triplets<double> t(3, 4);
  t.add(0, 1, 1.5);
  t.add(2, 3, -2.25);
  t.add(1, 0, 0.125);
  auto A = sparse::Csr<double>::from_triplets(t);
  const auto path = temp_path("A.mtx");
  write_matrix_market(A, path);

  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("MatrixMarket"), std::string::npos);
  EXPECT_NE(header.find("real"), std::string::npos);
  int rows, cols;
  long long nnz;
  in >> rows >> cols >> nnz;
  EXPECT_EQ(rows, 3);
  EXPECT_EQ(cols, 4);
  EXPECT_EQ(nnz, 3);
  // Parse entries back and compare against the matrix.
  auto D = A.to_dense();
  for (long long k = 0; k < nnz; ++k) {
    int i, j;
    double v;
    in >> i >> j >> v;
    EXPECT_DOUBLE_EQ(D(i - 1, j - 1), v);
  }
  std::remove(path.c_str());
}

TEST(Io, ComplexMatrixMarketHasTwoValueColumns) {
  sparse::Triplets<complexd> t(2, 2);
  t.add(0, 0, complexd(1.0, -2.0));
  auto A = sparse::Csr<complexd>::from_triplets(t);
  const auto path = temp_path("Ac.mtx");
  write_matrix_market(A, path);
  const auto text = slurp(path);
  EXPECT_NE(text.find("complex"), std::string::npos);
  EXPECT_NE(text.find("1 1 1 -2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Io, VectorArrayFormat) {
  la::Vector<double> v(3);
  v[0] = 1.0;
  v[1] = -0.5;
  v[2] = 2.5;
  const auto path = temp_path("v.mtx");
  write_vector(v, path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("array"), std::string::npos);
  int rows, cols;
  in >> rows >> cols;
  EXPECT_EQ(rows, 3);
  EXPECT_EQ(cols, 1);
  double a, b, c;
  in >> a >> b >> c;
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(b, -0.5);
  EXPECT_DOUBLE_EQ(c, 2.5);
  std::remove(path.c_str());
}

TEST(Io, ExportSystemWritesAllFiles) {
  SystemParams params;
  params.total_unknowns = 800;
  auto sys = make_pipe_system<double>(params);
  const auto prefix = temp_path("sys");
  export_system(sys, prefix);
  for (const char* suffix : {"_Avv.mtx", "_Asv.mtx", "_bv.mtx", "_bs.mtx",
                             "_xv_ref.mtx", "_xs_ref.mtx", "_surface.txt"}) {
    const auto path = prefix + suffix;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::remove(path.c_str());
  }
}

TEST(Io, SurfaceFileHasOneLinePerDof) {
  SystemParams params;
  params.total_unknowns = 800;
  auto sys = make_pipe_system<double>(params);
  const auto path = temp_path("surf.txt");
  write_surface(sys.A_ss->surface(), path);
  std::ifstream in(path);
  std::string line;
  index_t count = 0;
  while (std::getline(in, line))
    if (!line.empty() && line[0] != '#') ++count;
  EXPECT_EQ(count, sys.ns());
  std::remove(path.c_str());
}

TEST(Io, UnwritablePathThrows) {
  la::Vector<double> v(1);
  EXPECT_THROW(write_vector(v, "/nonexistent_dir/x.mtx"),
               std::runtime_error);
}

}  // namespace
}  // namespace cs::fembem
