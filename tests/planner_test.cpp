// Tests for the memory-aware strategy planner: prediction accuracy against
// measured peaks, feasibility filtering and ranking sanity.
#include <gtest/gtest.h>

#include "coupled/planner.h"

namespace cs::coupled {
namespace {

const fembem::CoupledSystem<double>& planner_system() {
  static auto sys =
      fembem::make_pipe_system<double>({.total_unknowns = 6000});
  return sys;
}

TEST(Planner, InputsAreGatheredFromSymbolicAnalysisOnly) {
  Config cfg;
  auto in = planner_inputs(planner_system(), cfg);
  EXPECT_EQ(in.nv, planner_system().nv());
  EXPECT_EQ(in.ns, planner_system().ns());
  EXPECT_GT(in.factor_entries, in.nv);  // at least the diagonal + fill
  EXPECT_GT(in.system_bytes, 0u);
  EXPECT_EQ(in.scalar_bytes, sizeof(double));
}

/// Predictions must land within a factor of ~2.5 of measured peaks (they
/// are first-order models over the dominant allocations).
class PredictionSweep : public ::testing::TestWithParam<Strategy> {};

TEST_P(PredictionSweep, PredictedPeakWithinFactorOfMeasured) {
  Config cfg;
  cfg.strategy = GetParam();
  cfg.n_c = 128;
  cfg.n_S = 512;
  cfg.n_b = 2;
  auto in = planner_inputs(planner_system(), cfg);
  const std::size_t predicted = predict_peak(cfg.strategy, in, cfg);
  auto stats = solve_coupled(planner_system(), cfg);
  ASSERT_TRUE(stats.success);
  const double ratio =
      static_cast<double>(predicted) / static_cast<double>(stats.peak_bytes);
  EXPECT_GT(ratio, 1.0 / 2.5) << "measured " << stats.peak_bytes
                              << " predicted " << predicted;
  EXPECT_LT(ratio, 2.5) << "measured " << stats.peak_bytes << " predicted "
                        << predicted;
}

INSTANTIATE_TEST_SUITE_P(
    CoreStrategies, PredictionSweep,
    ::testing::Values(Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
                      Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
                      Strategy::kMultiFactorization,
                      Strategy::kMultiFactorizationCompressed),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      std::string name = strategy_name(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Planner, RelativeOrderingMatchesMeasurement) {
  // The planner's key qualitative predictions: baseline coupling is the
  // most memory-hungry; the compressed multi-solve the least among the
  // Schur-forming strategies.
  Config cfg;
  cfg.n_c = 128;
  cfg.n_S = 512;
  cfg.n_b = 2;
  auto in = planner_inputs(planner_system(), cfg);
  EXPECT_GT(predict_peak(Strategy::kBaselineCoupling, in, cfg),
            predict_peak(Strategy::kMultiSolve, in, cfg));
  EXPECT_GT(predict_peak(Strategy::kMultiSolve, in, cfg),
            predict_peak(Strategy::kMultiSolveCompressed, in, cfg));
  EXPECT_GT(predict_peak(Strategy::kMultiFactorization, in, cfg),
            predict_peak(Strategy::kMultiSolve, in, cfg));
}

TEST(Planner, UnlimitedBudgetRanksEverythingFeasible) {
  Config cfg;
  auto in = planner_inputs(planner_system(), cfg);
  auto entries = plan(in, cfg, 0);
  EXPECT_EQ(entries.size(), 7u);
  for (const auto& e : entries) EXPECT_TRUE(e.fits);
  // Ranked by time score.
  for (std::size_t k = 1; k < entries.size(); ++k)
    EXPECT_LE(entries[k - 1].time_score, entries[k].time_score);
}

TEST(Planner, TightBudgetPrefersCompressedMultiSolve) {
  Config cfg;
  cfg.n_c = 128;
  cfg.n_S = 512;
  auto in = planner_inputs(planner_system(), cfg);
  // A budget just above the compressed multi-solve prediction.
  const std::size_t budget =
      predict_peak(Strategy::kMultiSolveCompressed, in, cfg) * 11 / 10;
  auto entries = plan(in, cfg, budget);
  ASSERT_FALSE(entries.empty());
  // The first feasible entry must be a multi-solve family member, and the
  // baseline coupling must be infeasible.
  EXPECT_TRUE(entries.front().fits);
  bool baseline_fits = false;
  for (const auto& e : entries)
    if (e.strategy == Strategy::kBaselineCoupling) baseline_fits = e.fits;
  EXPECT_FALSE(baseline_fits);
}

TEST(Planner, PlanIsActionable) {
  // End-to-end: run the planner's top pick and confirm it succeeds within
  // its own predicted budget (with the model's safety factor).
  Config cfg;
  cfg.n_c = 128;
  cfg.n_S = 512;
  auto in = planner_inputs(planner_system(), cfg);
  auto entries = plan(in, cfg, 0);
  cfg.strategy = entries.front().strategy;
  cfg.memory_budget = entries.front().predicted_peak_bytes * 5 / 2;
  auto stats = solve_coupled(planner_system(), cfg);
  EXPECT_TRUE(stats.success) << strategy_name(cfg.strategy) << ": "
                             << stats.failure;
}

}  // namespace
}  // namespace cs::coupled
