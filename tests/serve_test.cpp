// Solver service (DESIGN.md §16): the factorization cache must hit on a
// repeat fingerprint with zero refactorizations, evict-and-restore under
// a tight budget without leaking tracked memory, and coalesced batches
// must be bitwise identical to individual solves. The socket layer must
// answer malformed frames with clean errors — never die on client input.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/memory.h"
#include "coupled/coupled.h"
#include "server/client.h"
#include "server/server.h"
#include "server/service.h"

namespace cs::server {
namespace {

SceneSpec small_scene() {
  SceneSpec s;
  s.total_unknowns = 1200;
  return s;
}

SceneSpec other_scene() {
  // 2000 unknowns rounds to a genuinely different pipe mesh than 1200
  // (nearby counts may round to the same mesh and share the fingerprint).
  SceneSpec s;
  s.total_unknowns = 2000;
  return s;
}

ServeOptions fast_options() {
  ServeOptions o;
  o.solver.strategy = coupled::Strategy::kMultiSolve;
  o.solver.eps = 1e-4;
  o.coalesce_window_us = 0;  // tests should not sleep per batch
  return o;
}

/// Deterministic RHS column for request r of a scene.
void fill_rhs(index_t nv, index_t ns, int r, std::vector<double>* b_v,
              std::vector<double>* b_s) {
  b_v->resize(static_cast<std::size_t>(nv));
  b_s->resize(static_cast<std::size_t>(ns));
  std::uint32_t s = 12345u + static_cast<std::uint32_t>(r) * 977u;
  for (auto* vec : {b_v, b_s})
    for (double& x : *vec) {
      s = s * 1664525u + 1013904223u;
      x = 1.0 + double(s >> 8) / double(1u << 24);
    }
}

TEST(SolverService, CacheHitOnRepeatFingerprintNoRefactorization) {
  SolverService service(fast_options());
  const SceneSpec scene = small_scene();
  const auto info = service.describe(scene);
  ASSERT_GT(info.nv, 0);
  ASSERT_GT(info.ns, 0);
  EXPECT_FALSE(info.resident);

  std::vector<double> b_v, b_s;
  for (int r = 0; r < 3; ++r) {
    fill_rhs(info.nv, info.ns, r, &b_v, &b_s);
    const RequestResult res = service.solve(scene, b_v.data(), b_s.data());
    ASSERT_TRUE(res.ok) << res.error;
    if (r == 0) {
      EXPECT_FALSE(res.cache_hit);
      EXPECT_EQ(res.source, "fresh");
    } else {
      EXPECT_TRUE(res.cache_hit);
      EXPECT_EQ(res.source, "resident");
    }
  }
  const auto& c = service.counters();
  EXPECT_EQ(c.factorizations.load(), 1u);
  EXPECT_EQ(c.cache_misses.load(), 1u);
  EXPECT_GE(c.cache_hits.load(), 2u);
  EXPECT_TRUE(service.describe(scene).resident);
}

TEST(SolverService, CoalescedBatchBitwiseMatchesIndividualSolves) {
  // Reference: individual single-column solves against a directly
  // factorized handle with the same config.
  ServeOptions opts = fast_options();
  const SceneSpec scene = small_scene();
  fembem::SystemParams prm;
  prm.total_unknowns = static_cast<index_t>(scene.total_unknowns);
  const auto sys = fembem::make_pipe_system<double>(prm);
  const auto handle = coupled::factorize_coupled(sys, opts.solver);
  ASSERT_TRUE(handle.ok()) << handle.stats().failure;

  constexpr int kRequests = 12;
  const index_t nv = sys.nv(), ns = sys.ns();
  std::vector<std::vector<double>> ref_v(kRequests), ref_s(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    fill_rhs(nv, ns, r, &ref_v[r], &ref_s[r]);
    la::MatrixView<double> Bv(ref_v[r].data(), nv, 1, nv);
    la::MatrixView<double> Bs(ref_s[r].data(), ns, 1, ns);
    ASSERT_TRUE(handle.solve(Bv, Bs).success);
  }

  // Service: the same columns fired concurrently, coalesced into batches.
  SolverService service(opts);
  std::vector<std::vector<double>> got_v(kRequests), got_s(kRequests);
  {
    std::vector<double> warm_v, warm_s;
    fill_rhs(nv, ns, 0, &warm_v, &warm_s);
    ASSERT_TRUE(service.solve(scene, warm_v.data(), warm_s.data()).ok);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kRequests);
  for (int r = 0; r < kRequests; ++r)
    threads.emplace_back([&, r] {
      fill_rhs(nv, ns, r, &got_v[r], &got_s[r]);
      const RequestResult res =
          service.solve(scene, got_v[r].data(), got_s[r].data());
      if (!res.ok) ++failures;
    });
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  // solve() is per-column bitwise deterministic at any thread count, so
  // coalescing must change throughput, never a single bit of an answer.
  for (int r = 0; r < kRequests; ++r) {
    EXPECT_EQ(std::memcmp(got_v[r].data(), ref_v[r].data(),
                          sizeof(double) * static_cast<std::size_t>(nv)),
              0)
        << "request " << r << " volume block differs";
    EXPECT_EQ(std::memcmp(got_s[r].data(), ref_s[r].data(),
                          sizeof(double) * static_cast<std::size_t>(ns)),
              0)
        << "request " << r << " surface block differs";
  }
  EXPECT_GE(service.counters().coalesced_columns.load(),
            static_cast<std::uint64_t>(kRequests));
}

TEST(SolverService, EvictionUnderTightBudgetSpillsAndReadmits) {
  ServeOptions opts = fast_options();
  opts.cache_budget_bytes = 1;  // any second entry forces an eviction
  opts.spill_on_evict = true;
  opts.spill_dir = ::testing::TempDir();

  const SceneSpec a = small_scene();
  const SceneSpec b = other_scene();

  // Materialize lazy global state (mesh caches, tracker) before the
  // baseline snapshot so the ledger assertion sees only cache churn.
  const std::size_t baseline = MemoryTracker::instance().current();
  {
    SolverService service(opts);
    const auto ia = service.describe(a);
    const auto ib = service.describe(b);
    ASSERT_NE(ia.digest, ib.digest);

    std::vector<double> b_v, b_s;
    fill_rhs(ia.nv, ia.ns, 0, &b_v, &b_s);
    ASSERT_TRUE(service.solve(a, b_v.data(), b_s.data()).ok);
    const std::size_t resident_one = service.resident_bytes();
    EXPECT_GT(resident_one, 0u);

    // Loading B must evict + spill A (budget fits at most one entry).
    fill_rhs(ib.nv, ib.ns, 1, &b_v, &b_s);
    ASSERT_TRUE(service.solve(b, b_v.data(), b_s.data()).ok);
    EXPECT_EQ(service.counters().evictions.load(), 1u);
    EXPECT_EQ(service.counters().spills.load(), 1u);
    EXPECT_FALSE(service.describe(a).resident);

    // Eviction must return the evicted entry's bytes to the ledger:
    // exactly one factorization is charged at any time.
    EXPECT_LE(service.resident_bytes(), resident_one * 2);

    // Requesting A again re-admits it from the spill checkpoint — a
    // restore, not a refactorization.
    fill_rhs(ia.nv, ia.ns, 2, &b_v, &b_s);
    const RequestResult res = service.solve(a, b_v.data(), b_s.data());
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.source, "checkpoint");
    EXPECT_EQ(service.counters().restores.load(), 1u);
    EXPECT_EQ(service.counters().factorizations.load(), 2u);  // A, B only
  }
  // Destroying the service frees every factorization and system: tracked
  // memory returns to the pre-service baseline.
  EXPECT_EQ(MemoryTracker::instance().current(), baseline);
}

TEST(SolverService, StartupRejectsBadSpillDirectory) {
  ServeOptions opts = fast_options();
  opts.spill_on_evict = true;
  opts.spill_dir = "/nonexistent/cs_serve_spill";
  EXPECT_THROW(SolverService service(opts), ClassifiedError);
}

TEST(SolverService, StartupRejectsBadSolverConfig) {
  ServeOptions opts = fast_options();
  opts.solver.eps = -1.0;
  EXPECT_THROW(SolverService service(opts), ClassifiedError);
}

// -- socket layer ----------------------------------------------------------

class ServeSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<SolverService>(fast_options());
    server_ = std::make_unique<SocketServer>(*service_);
    port_ = server_->listen_tcp(0);
  }
  void TearDown() override {
    server_->stop();
    server_.reset();
    service_.reset();
  }

  ServeClient connect() {
    ServeClient c;
    c.connect_tcp("127.0.0.1", port_);
    return c;
  }

  std::unique_ptr<SolverService> service_;
  std::unique_ptr<SocketServer> server_;
  int port_ = 0;
};

TEST_F(ServeSocketTest, PingDescribeSolveStatsRoundTrip) {
  ServeClient client = connect();
  client.ping();
  const auto d = client.describe(small_scene());
  ASSERT_GT(d.nv, 0);
  ASSERT_GT(d.ns, 0);

  std::vector<double> b_v, b_s;
  fill_rhs(static_cast<index_t>(d.nv), static_cast<index_t>(d.ns), 0, &b_v,
           &b_s);
  const auto first = client.solve(small_scene(), b_v, b_s);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.source, "fresh");

  fill_rhs(static_cast<index_t>(d.nv), static_cast<index_t>(d.ns), 1, &b_v,
           &b_s);
  const auto second = client.solve(small_scene(), b_v, b_s);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cache_hit);

  const std::string stats = client.stats_json();
  EXPECT_NE(stats.find("\"cache_hit\""), std::string::npos);
  EXPECT_NE(stats.find("\"factorizations\": 1"), std::string::npos);
}

TEST_F(ServeSocketTest, MalformedFramesGetErrorRepliesNotDaemonDeath) {
  // Garbage bytes: bad magic -> kError reply, connection closed, daemon
  // alive.
  {
    ServeClient probe = connect();
    ServeClient garbage = connect();
    // Reach into the raw socket: a conforming client cannot emit a bad
    // frame, so build one by hand.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ::close(fd);
  }
  auto raw_connect = [&]() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port_));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    return fd;
  };

  {
    // Bad magic.
    const int fd = raw_connect();
    const char junk[32] = "this is not a CSRV frame at all";
    ASSERT_EQ(::send(fd, junk, sizeof junk, 0),
              static_cast<ssize_t>(sizeof junk));
    Frame reply;
    ASSERT_TRUE(read_frame(fd, &reply));
    EXPECT_EQ(reply.type, MsgType::kError);
    ::close(fd);
  }
  {
    // Valid header, truncated payload: close mid-frame.
    const int fd = raw_connect();
    WireWriter w;
    put_scene(w, small_scene());
    std::vector<std::uint8_t> frame;
    const std::uint32_t magic = kMagic;
    const std::uint8_t type = static_cast<std::uint8_t>(MsgType::kDescribe);
    const std::uint64_t lie = w.bytes().size() + 1000;  // longer than sent
    auto append = [&frame](const void* p, std::size_t n) {
      const auto* b = static_cast<const std::uint8_t*>(p);
      frame.insert(frame.end(), b, b + n);
    };
    append(&magic, 4);
    append(&type, 1);
    append(&lie, 8);
    append(w.bytes().data(), w.bytes().size());
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
    ::shutdown(fd, SHUT_WR);  // EOF inside the promised payload
    // The server may reply kError or just close; either way it must not
    // die. Drain whatever comes back.
    char buf[256];
    while (::recv(fd, buf, sizeof buf, 0) > 0) {
    }
    ::close(fd);
  }
  {
    // Corrupt CRC.
    const int fd = raw_connect();
    std::vector<std::uint8_t> frame;
    const std::uint32_t magic = kMagic;
    const std::uint8_t type = static_cast<std::uint8_t>(MsgType::kPing);
    const std::uint64_t len = 4;
    const std::uint32_t payload = 0xdeadbeef;
    const std::uint32_t bad_crc = 0x12345678;
    auto append = [&frame](const void* p, std::size_t n) {
      const auto* b = static_cast<const std::uint8_t*>(p);
      frame.insert(frame.end(), b, b + n);
    };
    append(&magic, 4);
    append(&type, 1);
    append(&len, 8);
    append(&payload, 4);
    append(&bad_crc, 4);
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
    Frame reply;
    ASSERT_TRUE(read_frame(fd, &reply));
    EXPECT_EQ(reply.type, MsgType::kError);
    ::close(fd);
  }

  // The daemon survived all three abuses and still serves.
  ServeClient after = connect();
  after.ping();
  const auto d = after.describe(small_scene());
  EXPECT_GT(d.nv, 0);
}

TEST_F(ServeSocketTest, ClientVanishingMidRequestDoesNotKillServer) {
  // A client that sends a full solve request and disconnects before the
  // reply exercises the EPIPE path (SIGPIPE must be ignored).
  ServeClient client = connect();
  const auto d = client.describe(small_scene());
  {
    ServeClient doomed = connect();
    std::vector<double> b_v, b_s;
    fill_rhs(static_cast<index_t>(d.nv), static_cast<index_t>(d.ns), 7, &b_v,
             &b_s);
    std::thread killer([&doomed] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      doomed.close();
    });
    try {
      doomed.solve(small_scene(), b_v, b_s);
    } catch (const std::exception&) {
      // Expected: the connection died under the request.
    }
    killer.join();
  }
  // Server is still healthy.
  std::vector<double> b_v, b_s;
  fill_rhs(static_cast<index_t>(d.nv), static_cast<index_t>(d.ns), 8, &b_v,
           &b_s);
  const auto res = client.solve(small_scene(), b_v, b_s);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST_F(ServeSocketTest, ServeConcurrentClientsCoalescesAndAnswersAll) {
  ServeClient warm = connect();
  const auto d = warm.describe(small_scene());
  std::vector<double> b_v, b_s;
  fill_rhs(static_cast<index_t>(d.nv), static_cast<index_t>(d.ns), 0, &b_v,
           &b_s);
  ASSERT_TRUE(warm.solve(small_scene(), b_v, b_s).ok);

  constexpr int kClients = 8;
  constexpr int kRequestsEach = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      try {
        ServeClient cl;
        cl.connect_tcp("127.0.0.1", port_);
        for (int r = 0; r < kRequestsEach; ++r) {
          std::vector<double> v, s;
          fill_rhs(static_cast<index_t>(d.nv), static_cast<index_t>(d.ns),
                   c * 100 + r, &v, &s);
          if (!cl.solve(small_scene(), v, s).ok) ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto& counters = service_->counters();
  EXPECT_EQ(counters.factorizations.load(), 1u);
  EXPECT_GE(counters.requests.load(),
            static_cast<std::uint64_t>(kClients * kRequestsEach + 1));
}

}  // namespace
}  // namespace cs::server
