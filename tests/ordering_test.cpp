// Tests for the fill-reducing orderings: permutation validity, constrained
// (Schur-last) placement, and fill-quality sanity on structured grids.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "ordering/ordering.h"

namespace cs::ordering {
namespace {

using sparse::Csr;
using sparse::Pattern;
using sparse::Triplets;

/// 5-point 2D grid Laplacian pattern (nx x ny vertices).
Pattern grid2d(index_t nx, index_t ny) {
  Triplets<double> t(nx * ny, nx * ny);
  auto id = [nx](index_t i, index_t j) { return i + j * nx; };
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      t.add(id(i, j), id(i, j), 4.0);
      if (i + 1 < nx) {
        t.add(id(i, j), id(i + 1, j), -1.0);
        t.add(id(i + 1, j), id(i, j), -1.0);
      }
      if (j + 1 < ny) {
        t.add(id(i, j), id(i, j + 1), -1.0);
        t.add(id(i, j + 1), id(i, j), -1.0);
      }
    }
  return Pattern::from_symmetric(Csr<double>::from_triplets(t));
}

/// Random sparse symmetric pattern.
Pattern random_pattern(index_t n, index_t edges, std::uint64_t seed) {
  Rng rng(seed);
  Triplets<double> t(n, n);
  for (index_t i = 0; i < n; ++i) t.add(i, i, 1.0);
  for (index_t e = 0; e < edges; ++e) {
    const index_t a = rng.uniform_index(0, n - 1);
    const index_t b = rng.uniform_index(0, n - 1);
    if (a == b) continue;
    t.add(a, b, 1.0);
    t.add(b, a, 1.0);
  }
  return Pattern::from_symmetric(Csr<double>::from_triplets(t));
}

/// Simulated fill count of a Cholesky factorization under permutation
/// (naive O(n * fill) symbolic elimination; test sizes only).
offset_t fill_count(const Pattern& p, const std::vector<index_t>& perm) {
  const index_t n = p.n;
  const auto iperm = inverse_permutation(perm);
  std::vector<std::set<index_t>> rows(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v)
    for (offset_t k = p.adj_ptr[static_cast<std::size_t>(v)];
         k < p.adj_ptr[static_cast<std::size_t>(v) + 1]; ++k) {
      const index_t a = perm[static_cast<std::size_t>(v)];
      const index_t b =
          perm[static_cast<std::size_t>(p.adj[static_cast<std::size_t>(k)])];
      if (b < a) rows[static_cast<std::size_t>(a)].insert(b);
      if (a < b) rows[static_cast<std::size_t>(b)].insert(a);
    }
  offset_t fill = 0;
  // Column-oriented symbolic elimination.
  std::vector<std::set<index_t>> cols(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    for (index_t j : rows[static_cast<std::size_t>(i)])
      cols[static_cast<std::size_t>(j)].insert(i);
  for (index_t k = 0; k < n; ++k) {
    const auto& below = cols[static_cast<std::size_t>(k)];
    fill += static_cast<offset_t>(below.size());
    // Pairwise fill between entries below the pivot.
    for (auto it = below.begin(); it != below.end(); ++it) {
      auto jt = it;
      ++jt;
      for (; jt != below.end(); ++jt)
        cols[static_cast<std::size_t>(*it)].insert(*jt);
    }
  }
  return fill;
}

TEST(Ordering, NaturalIsIdentity) {
  auto p = grid2d(4, 4);
  auto perm = compute(p, Method::kNatural);
  for (index_t i = 0; i < p.n; ++i) EXPECT_EQ(perm[static_cast<std::size_t>(i)], i);
}

class MethodSweep : public ::testing::TestWithParam<Method> {};

TEST_P(MethodSweep, ProducesValidPermutationOnGrid) {
  auto p = grid2d(9, 7);
  auto perm = compute(p, GetParam());
  EXPECT_TRUE(is_permutation(perm));
}

TEST_P(MethodSweep, ProducesValidPermutationOnRandomGraph) {
  auto p = random_pattern(150, 400, 3);
  auto perm = compute(p, GetParam());
  EXPECT_TRUE(is_permutation(perm));
}

TEST_P(MethodSweep, HandlesDisconnectedGraph) {
  // Two disjoint paths.
  Triplets<double> t(8, 8);
  for (index_t i = 0; i < 3; ++i) {
    t.add(i, i + 1, 1.0);
    t.add(i + 1, i, 1.0);
  }
  for (index_t i = 4; i < 7; ++i) {
    t.add(i, i + 1, 1.0);
    t.add(i + 1, i, 1.0);
  }
  auto p = Pattern::from_symmetric(Csr<double>::from_triplets(t));
  auto perm = compute(p, GetParam());
  EXPECT_TRUE(is_permutation(perm));
}

TEST_P(MethodSweep, HandlesSingletonAndEmptyAdjacency) {
  Triplets<double> t(3, 3);
  t.add(0, 0, 1.0);  // no off-diagonal edges at all
  auto p = Pattern::from_symmetric(Csr<double>::from_triplets(t));
  auto perm = compute(p, GetParam());
  EXPECT_TRUE(is_permutation(perm));
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodSweep,
                         ::testing::Values(Method::kNatural, Method::kRcm,
                                           Method::kMinimumDegree,
                                           Method::kNestedDissection));

TEST(Ordering, FillReducingMethodsBeatNaturalOnGrid) {
  auto p = grid2d(14, 14);
  const auto natural = fill_count(p, compute(p, Method::kNatural));
  const auto md = fill_count(p, compute(p, Method::kMinimumDegree));
  const auto nd = fill_count(p, compute(p, Method::kNestedDissection));
  EXPECT_LT(md, natural);
  EXPECT_LT(nd, natural);
}

TEST(Ordering, RcmReducesBandwidth) {
  // A path graph numbered randomly has large bandwidth; RCM restores ~1.
  const index_t n = 60;
  Rng rng(9);
  std::vector<index_t> shuffle(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) shuffle[static_cast<std::size_t>(i)] = i;
  for (index_t i = n - 1; i > 0; --i)
    std::swap(shuffle[static_cast<std::size_t>(i)],
              shuffle[static_cast<std::size_t>(rng.uniform_index(0, i))]);
  Triplets<double> t(n, n);
  for (index_t i = 0; i + 1 < n; ++i) {
    t.add(shuffle[static_cast<std::size_t>(i)],
          shuffle[static_cast<std::size_t>(i + 1)], 1.0);
    t.add(shuffle[static_cast<std::size_t>(i + 1)],
          shuffle[static_cast<std::size_t>(i)], 1.0);
  }
  auto p = Pattern::from_symmetric(Csr<double>::from_triplets(t));
  auto perm = rcm(p);
  index_t bandwidth = 0;
  for (index_t v = 0; v < n; ++v)
    for (offset_t k = p.adj_ptr[static_cast<std::size_t>(v)];
         k < p.adj_ptr[static_cast<std::size_t>(v) + 1]; ++k) {
      const index_t w = p.adj[static_cast<std::size_t>(k)];
      bandwidth = std::max(
          bandwidth, std::abs(perm[static_cast<std::size_t>(v)] -
                              perm[static_cast<std::size_t>(w)]));
    }
  EXPECT_LE(bandwidth, 2);
}

TEST(Ordering, ConstrainedPlacesMarkedVerticesLast) {
  auto p = grid2d(6, 6);
  std::vector<bool> last(static_cast<std::size_t>(p.n), false);
  // Mark a scattered subset as Schur variables.
  std::vector<index_t> schur = {0, 7, 13, 35, 20};
  for (index_t s : schur) last[static_cast<std::size_t>(s)] = true;

  for (Method m : {Method::kRcm, Method::kMinimumDegree,
                   Method::kNestedDissection, Method::kNatural}) {
    auto perm = compute_constrained(p, m, last);
    EXPECT_TRUE(is_permutation(perm));
    const index_t n_free = p.n - static_cast<index_t>(schur.size());
    for (index_t v = 0; v < p.n; ++v) {
      if (last[static_cast<std::size_t>(v)])
        EXPECT_GE(perm[static_cast<std::size_t>(v)], n_free);
      else
        EXPECT_LT(perm[static_cast<std::size_t>(v)], n_free);
    }
    // Relative natural order within the last group is preserved.
    for (std::size_t a = 1; a < schur.size(); ++a) {
      // schur list sorted ascending by construction? sort a copy first.
    }
    std::vector<index_t> sorted_schur = schur;
    std::sort(sorted_schur.begin(), sorted_schur.end());
    for (std::size_t a = 1; a < sorted_schur.size(); ++a)
      EXPECT_LT(perm[static_cast<std::size_t>(sorted_schur[a - 1])],
                perm[static_cast<std::size_t>(sorted_schur[a])]);
  }
}

TEST(Ordering, ConstrainedAllLast) {
  auto p = grid2d(3, 3);
  std::vector<bool> last(9, true);
  auto perm = compute_constrained(p, Method::kMinimumDegree, last);
  EXPECT_TRUE(is_permutation(perm));
  for (index_t v = 0; v < 9; ++v)
    EXPECT_EQ(perm[static_cast<std::size_t>(v)], v);
}

TEST(Ordering, InversePermutationRoundTrip) {
  std::vector<index_t> perm = {2, 0, 3, 1};
  auto iperm = inverse_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i)
    EXPECT_EQ(iperm[static_cast<std::size_t>(perm[i])],
              static_cast<index_t>(i));
}

TEST(Ordering, IsPermutationDetectsInvalid) {
  EXPECT_TRUE(is_permutation({1, 0, 2}));
  EXPECT_FALSE(is_permutation({0, 0, 2}));
  EXPECT_FALSE(is_permutation({0, 3, 1}));
  EXPECT_FALSE(is_permutation({-1, 0, 1}));
}

TEST(Ordering, LargeGridAllMethodsComplete) {
  auto p = grid2d(40, 40);  // 1600 vertices
  for (Method m : {Method::kRcm, Method::kMinimumDegree,
                   Method::kNestedDissection})
    EXPECT_TRUE(is_permutation(compute(p, m)));
}

}  // namespace
}  // namespace cs::ordering
