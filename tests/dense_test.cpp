// Tests for the dense direct solver façade ("SPIDO" analogue).
#include <gtest/gtest.h>

#include "common/random.h"
#include "dense/dense_solver.h"
#include "la/blas.h"

namespace cs::dense {
namespace {

using la::Matrix;
using la::rel_diff;

template <class T>
Matrix<T> random_matrix(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.scalar<T>();
  return a;
}

template <class T>
class DenseSolverTypedTest : public ::testing::Test {};
using Scalars = ::testing::Types<double, complexd>;
TYPED_TEST_SUITE(DenseSolverTypedTest, Scalars);

TYPED_TEST(DenseSolverTypedTest, SymmetricSolve) {
  using T = TypeParam;
  const index_t n = 50;
  auto R = random_matrix<T>(n, n, 1);
  Matrix<T> A(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) A(i, j) = R(i, j) + R(j, i);
  for (index_t i = 0; i < n; ++i) A(i, i) += T{static_cast<double>(2 * n)};

  const auto X = random_matrix<T>(n, 3, 2);
  Matrix<T> B(n, 3);
  la::gemm(T{1}, A.view(), la::Op::kNoTrans, X.view(), la::Op::kNoTrans,
           T{0}, B.view());

  DenseSolver<T> solver;
  Matrix<T> A_copy = A;
  solver.factorize(std::move(A_copy), /*symmetric=*/true);
  EXPECT_TRUE(solver.factored());
  EXPECT_EQ(solver.dim(), n);
  solver.solve(B.view());
  EXPECT_LT(rel_diff<T>(B.view(), X.view()), 1e-10);
}

TYPED_TEST(DenseSolverTypedTest, UnsymmetricSolve) {
  using T = TypeParam;
  const index_t n = 40;
  auto A = random_matrix<T>(n, n, 3);
  for (index_t i = 0; i < n; ++i) A(i, i) += T{static_cast<double>(n)};
  const auto X = random_matrix<T>(n, 2, 4);
  Matrix<T> B(n, 2);
  la::gemm(T{1}, A.view(), la::Op::kNoTrans, X.view(), la::Op::kNoTrans,
           T{0}, B.view());

  DenseSolver<T> solver;
  Matrix<T> A_copy = A;
  solver.factorize(std::move(A_copy), /*symmetric=*/false);
  solver.solve(B.view());
  EXPECT_LT(rel_diff<T>(B.view(), X.view()), 1e-10);
}

TEST(DenseSolver, ErrorsOnMisuse) {
  DenseSolver<double> solver;
  Matrix<double> b(3, 1);
  EXPECT_THROW(solver.solve(b.view()), std::logic_error);
  Matrix<double> rect(3, 4);
  EXPECT_THROW(solver.factorize(std::move(rect), true),
               std::invalid_argument);

  Matrix<double> A = Matrix<double>::identity(4);
  solver.factorize(std::move(A), true);
  Matrix<double> wrong(3, 1);
  EXPECT_THROW(solver.solve(wrong.view()), std::invalid_argument);
}

TEST(DenseSolver, TakesOwnershipAndReportsBytes) {
  auto& tracker = MemoryTracker::instance();
  const std::size_t before = tracker.current();
  {
    DenseSolver<double> solver;
    Matrix<double> A = Matrix<double>::identity(64);
    solver.factorize(std::move(A), true);
    EXPECT_EQ(solver.memory_bytes(), 64u * 64u * sizeof(double));
    EXPECT_GE(tracker.current(), before + 64u * 64u * sizeof(double));
    solver.clear();
    EXPECT_FALSE(solver.factored());
  }
  EXPECT_EQ(tracker.current(), before);
}

TEST(DenseSolver, SolveAfterClearThrows) {
  DenseSolver<double> solver;
  Matrix<double> A = Matrix<double>::identity(4);
  solver.factorize(std::move(A), true);
  solver.clear();
  Matrix<double> b(4, 1);
  EXPECT_THROW(solver.solve(b.view()), std::logic_error);
}

}  // namespace
}  // namespace cs::dense
