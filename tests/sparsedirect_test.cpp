// Tests for the multifrontal sparse direct solver: elimination tree,
// symbolic analysis, numeric LDL^T / LU factorization, multi-RHS solves,
// the Schur complement feature, BLR compression and sparse-RHS pruning.
#include <gtest/gtest.h>

#include "common/random.h"
#include "la/factor.h"
#include "sparsedirect/etree.h"
#include "sparsedirect/multifrontal.h"
#include "sparsedirect/symbolic.h"

namespace cs::sparsedirect {
namespace {

using la::Matrix;
using la::rel_diff;
using sparse::Csr;
using sparse::Pattern;
using sparse::Triplets;

/// 2D 5-point Laplacian with a diagonal shift (SPD).
Csr<double> laplacian2d(index_t nx, index_t ny, double shift = 1.0) {
  Triplets<double> t(nx * ny, nx * ny);
  auto id = [nx](index_t i, index_t j) { return i + j * nx; };
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      t.add(id(i, j), id(i, j), 4.0 + shift);
      if (i + 1 < nx) {
        t.add(id(i, j), id(i + 1, j), -1.0);
        t.add(id(i + 1, j), id(i, j), -1.0);
      }
      if (j + 1 < ny) {
        t.add(id(i, j), id(i, j + 1), -1.0);
        t.add(id(i, j + 1), id(i, j), -1.0);
      }
    }
  return Csr<double>::from_triplets(t);
}

/// Complex symmetric analogue (off-diagonals get an imaginary part).
Csr<complexd> laplacian2d_complex(index_t nx, index_t ny) {
  Triplets<complexd> t(nx * ny, nx * ny);
  auto id = [nx](index_t i, index_t j) { return i + j * nx; };
  const complexd off(-1.0, 0.3);
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      t.add(id(i, j), id(i, j), complexd(5.0, 1.0));
      if (i + 1 < nx) {
        t.add(id(i, j), id(i + 1, j), off);
        t.add(id(i + 1, j), id(i, j), off);
      }
      if (j + 1 < ny) {
        t.add(id(i, j), id(i, j + 1), off);
        t.add(id(i, j + 1), id(i, j), off);
      }
    }
  return Csr<complexd>::from_triplets(t);
}

/// Structurally symmetric but numerically unsymmetric diagonally dominant
/// matrix on a 2D grid stencil.
Csr<double> unsym_grid(index_t nx, index_t ny, std::uint64_t seed) {
  Rng rng(seed);
  Triplets<double> t(nx * ny, nx * ny);
  auto id = [nx](index_t i, index_t j) { return i + j * nx; };
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      t.add(id(i, j), id(i, j), 8.0 + rng.uniform());
      if (i + 1 < nx) {
        t.add(id(i, j), id(i + 1, j), rng.uniform(-1.0, 1.0));
        t.add(id(i + 1, j), id(i, j), rng.uniform(-1.0, 1.0));
      }
      if (j + 1 < ny) {
        t.add(id(i, j), id(i, j + 1), rng.uniform(-1.0, 1.0));
        t.add(id(i, j + 1), id(i, j), rng.uniform(-1.0, 1.0));
      }
    }
  return Csr<double>::from_triplets(t);
}

template <class T>
Matrix<T> random_rhs(index_t n, index_t nrhs, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> b(n, nrhs);
  for (index_t j = 0; j < nrhs; ++j)
    for (index_t i = 0; i < n; ++i) b(i, j) = rng.scalar<T>();
  return b;
}

TEST(Etree, KnownSmallMatrix) {
  // Arrow matrix: every column connects to the last; etree is a chain
  // through vertex n-1? No: parent[j] = min{i>j: L(i,j)!=0} = n-1 for all.
  const index_t n = 5;
  Triplets<double> t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0);
    if (i + 1 < n) {
      t.add(i, n - 1, 1.0);
      t.add(n - 1, i, 1.0);
    }
  }
  auto p = Pattern::from_symmetric(Csr<double>::from_triplets(t));
  auto parent = elimination_tree(p);
  for (index_t j = 0; j + 1 < n; ++j) EXPECT_EQ(parent[static_cast<std::size_t>(j)], n - 1);
  EXPECT_EQ(parent[static_cast<std::size_t>(n - 1)], -1);
}

TEST(Etree, TridiagonalIsChain) {
  const index_t n = 6;
  Triplets<double> t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0);
    if (i + 1 < n) {
      t.add(i, i + 1, -1.0);
      t.add(i + 1, i, -1.0);
    }
  }
  auto p = Pattern::from_symmetric(Csr<double>::from_triplets(t));
  auto parent = elimination_tree(p);
  for (index_t j = 0; j + 1 < n; ++j) EXPECT_EQ(parent[static_cast<std::size_t>(j)], j + 1);
}

TEST(Etree, PostorderVisitsChildrenFirst) {
  std::vector<index_t> parent = {2, 2, 4, 4, -1, 6, -1};
  auto post = tree_postorder(parent);
  ASSERT_EQ(post.size(), parent.size());
  std::vector<index_t> position(parent.size());
  for (std::size_t k = 0; k < post.size(); ++k)
    position[static_cast<std::size_t>(post[k])] = static_cast<index_t>(k);
  for (std::size_t v = 0; v < parent.size(); ++v)
    if (parent[v] != -1)
      EXPECT_LT(position[v], position[static_cast<std::size_t>(parent[v])]);
}

TEST(Symbolic, FrontsPartitionVariables) {
  auto A = laplacian2d(8, 8);
  auto p = Pattern::from_symmetric(A);
  SymbolicOptions opt;
  auto sym = analyze(p, opt);
  std::vector<char> seen(64, 0);
  for (const auto& f : sym.fronts) {
    EXPECT_LE(f.pivot_begin, f.pivot_end);
    for (index_t v = f.pivot_begin; v < f.pivot_end; ++v) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
      seen[static_cast<std::size_t>(v)] = 1;
    }
    // Border sorted ascending and beyond the pivots.
    for (std::size_t k = 0; k < f.border.size(); ++k) {
      EXPECT_GE(f.border[k], f.pivot_end);
      if (k > 0) EXPECT_LT(f.border[k - 1], f.border[k]);
    }
  }
  for (char s : seen) EXPECT_TRUE(s);
  EXPECT_GT(sym.factor_entries, 0);
}

TEST(Symbolic, SchurFrontIsTerminalAndCollectsTrailingVars) {
  auto A = laplacian2d(6, 6);
  auto p = Pattern::from_symmetric(A);
  SymbolicOptions opt;
  opt.schur_size = 7;
  auto sym = analyze(p, opt);
  ASSERT_GE(sym.schur_front, 0);
  const auto& sf = sym.fronts[static_cast<std::size_t>(sym.schur_front)];
  EXPECT_TRUE(sf.is_schur);
  EXPECT_EQ(sf.pivot_begin, 36 - 7);
  EXPECT_EQ(sf.pivot_end, 36);
  EXPECT_TRUE(sf.border.empty());
  EXPECT_EQ(static_cast<std::size_t>(sym.schur_front),
            sym.fronts.size() - 1);
}

TEST(Symbolic, ParentsComeAfterChildren) {
  auto A = laplacian2d(10, 10);
  auto p = Pattern::from_symmetric(A);
  auto sym = analyze(p, SymbolicOptions{});
  for (std::size_t f = 0; f < sym.fronts.size(); ++f) {
    const auto parent = sym.fronts[f].parent;
    if (parent != -1) EXPECT_GT(parent, static_cast<index_t>(f));
  }
}

// ---------------------------------------------------------------------------
// Numeric factorization + solve
// ---------------------------------------------------------------------------

class OrderingSweep : public ::testing::TestWithParam<ordering::Method> {};

TEST_P(OrderingSweep, LdltSolveRecoversSolution) {
  auto A = laplacian2d(12, 9);
  const index_t n = A.rows();
  auto X = random_rhs<double>(n, 3, 1);
  Matrix<double> B(n, 3);
  A.spmm(1.0, X.view(), 0.0, B.view());

  MultifrontalSolver<double> mf;
  SolverOptions opt;
  opt.ordering = GetParam();
  mf.factorize(A, opt);
  mf.solve(B.view());
  EXPECT_LT(rel_diff<double>(B.view(), X.view()), 1e-10);
}

TEST_P(OrderingSweep, LuSolveRecoversSolution) {
  auto A = unsym_grid(9, 8, 3);
  const index_t n = A.rows();
  auto X = random_rhs<double>(n, 2, 2);
  Matrix<double> B(n, 2);
  A.spmm(1.0, X.view(), 0.0, B.view());

  MultifrontalSolver<double> mf;
  SolverOptions opt;
  opt.ordering = GetParam();
  opt.symmetric = false;
  mf.factorize(A, opt);
  mf.solve(B.view());
  EXPECT_LT(rel_diff<double>(B.view(), X.view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, OrderingSweep,
                         ::testing::Values(ordering::Method::kNatural,
                                           ordering::Method::kRcm,
                                           ordering::Method::kMinimumDegree,
                                           ordering::Method::kNestedDissection));

TEST(Multifrontal, ComplexSymmetricSolve) {
  auto A = laplacian2d_complex(7, 11);
  const index_t n = A.rows();
  auto X = random_rhs<complexd>(n, 2, 4);
  Matrix<complexd> B(n, 2);
  A.spmm(complexd{1}, X.view(), complexd{0}, B.view());

  MultifrontalSolver<complexd> mf;
  mf.factorize(A, SolverOptions{});
  mf.solve(B.view());
  EXPECT_LT(rel_diff<complexd>(B.view(), X.view()), 1e-10);
}

TEST(Multifrontal, SingleVariableMatrix) {
  Triplets<double> t(1, 1);
  t.add(0, 0, 4.0);
  auto A = Csr<double>::from_triplets(t);
  MultifrontalSolver<double> mf;
  mf.factorize(A, SolverOptions{});
  Matrix<double> b(1, 1);
  b(0, 0) = 8.0;
  mf.solve(b.view());
  EXPECT_DOUBLE_EQ(b(0, 0), 2.0);
}

TEST(Multifrontal, SolveBeforeFactorizeThrows) {
  MultifrontalSolver<double> mf;
  Matrix<double> b(3, 1);
  EXPECT_THROW(mf.solve(b.view()), std::logic_error);
}

TEST(Multifrontal, NonSquareThrows) {
  Triplets<double> t(2, 3);
  auto A = Csr<double>::from_triplets(t);
  MultifrontalSolver<double> mf;
  EXPECT_THROW(mf.factorize(A, SolverOptions{}), std::invalid_argument);
}

/// The dense Schur complement from the solver must match a dense
/// reference: S = A22 - A21 A11^{-1} A12.
template <class T>
void check_schur_against_dense(const Csr<T>& A, index_t schur_size,
                               bool symmetric, double tol) {
  const index_t n = A.rows();
  const index_t ne = n - schur_size;
  MultifrontalSolver<T> mf;
  SolverOptions opt;
  opt.symmetric = symmetric;
  opt.schur_size = schur_size;
  mf.factorize(A, opt);
  auto S = mf.take_schur();

  auto D = A.to_dense();
  Matrix<T> A11(ne, ne), A12(ne, schur_size), A21(schur_size, ne),
      A22(schur_size, schur_size);
  A11.view().copy_from(D.block(0, 0, ne, ne));
  A12.view().copy_from(D.block(0, ne, ne, schur_size));
  A21.view().copy_from(D.block(ne, 0, schur_size, ne));
  A22.view().copy_from(D.block(ne, ne, schur_size, schur_size));
  std::vector<index_t> piv;
  la::lu_factor(A11.view(), piv);
  la::lu_solve<T>(A11.view(), piv, A12.view());
  Matrix<T> ref = A22;
  la::gemm(T{-1}, A21.view(), la::Op::kNoTrans, A12.view(), la::Op::kNoTrans,
           T{1}, ref.view());
  EXPECT_LT(rel_diff<T>(S.view(), ref.view()), tol);
}

TEST(SchurFeature, SymmetricMatchesDenseReference) {
  auto A = laplacian2d(8, 7);
  check_schur_against_dense<double>(A, 11, /*symmetric=*/true, 1e-10);
}

TEST(SchurFeature, UnsymmetricMatchesDenseReference) {
  auto A = unsym_grid(7, 7, 5);
  check_schur_against_dense<double>(A, 9, /*symmetric=*/false, 1e-10);
}

TEST(SchurFeature, ComplexSymmetric) {
  auto A = laplacian2d_complex(6, 6);
  check_schur_against_dense<complexd>(A, 8, /*symmetric=*/true, 1e-10);
}

TEST(SchurFeature, WShapedMatrixWithZeroTrailingBlock) {
  // The exact substrate of the multi-factorization algorithm: the
  // unsymmetric W = [[A, B^T],[C, 0]] whose trailing diagonal is entirely
  // zero — those variables are never pivoted (they live in the Schur
  // front), so the factorization must not fail.
  auto A = laplacian2d(7, 6);
  const index_t nv = A.rows();
  const index_t p = 9;
  Rng rng(31);
  Triplets<double> t(nv + p, nv + p);
  for (index_t r = 0; r < nv; ++r)
    for (offset_t k = A.row_begin(r); k < A.row_end(r); ++k)
      t.add(r, A.col(k), A.value(k));
  // Random sparse B (coupling cols) and C (coupling rows), C != B^T.
  for (index_t q = 0; q < p; ++q)
    for (int e = 0; e < 5; ++e) {
      t.add(nv + q, rng.uniform_index(0, nv - 1), rng.uniform(-1, 1));
      t.add(rng.uniform_index(0, nv - 1), nv + q, rng.uniform(-1, 1));
    }
  auto W = Csr<double>::from_triplets(t);
  check_schur_against_dense<double>(W, p, /*symmetric=*/false, 1e-9);
}

TEST(SchurFeature, ComplexUnsymmetricWMatrix) {
  auto A = laplacian2d_complex(6, 5);
  const index_t nv = A.rows();
  const index_t p = 7;
  Rng rng(33);
  Triplets<complexd> t(nv + p, nv + p);
  for (index_t r = 0; r < nv; ++r)
    for (offset_t k = A.row_begin(r); k < A.row_end(r); ++k)
      t.add(r, A.col(k), A.value(k));
  for (index_t q = 0; q < p; ++q)
    for (int e = 0; e < 4; ++e) {
      t.add(nv + q, rng.uniform_index(0, nv - 1), rng.scalar<complexd>());
      t.add(rng.uniform_index(0, nv - 1), nv + q, rng.scalar<complexd>());
    }
  auto W = Csr<complexd>::from_triplets(t);
  check_schur_against_dense<complexd>(W, p, /*symmetric=*/false, 1e-9);
}

TEST(SchurFeature, SolveStillWorksOnInteriorAfterSchur) {
  // With a Schur factorization in hand, solve() addresses the leading
  // (eliminated) block only — used by the advanced coupling for b_v.
  auto A = laplacian2d(9, 9);
  const index_t n = A.rows();
  const index_t ns = 13, ne = n - ns;

  MultifrontalSolver<double> mf;
  SolverOptions opt;
  opt.schur_size = ns;
  mf.factorize(A, opt);

  // Dense reference on A11.
  auto D = A.to_dense();
  Matrix<double> A11(ne, ne);
  A11.view().copy_from(D.block(0, 0, ne, ne));
  auto X = random_rhs<double>(ne, 2, 6);
  Matrix<double> B(ne, 2);
  la::gemm(1.0, A11.view(), la::Op::kNoTrans, X.view(), la::Op::kNoTrans, 0.0,
           B.view());
  mf.solve(B.view());
  EXPECT_LT(rel_diff<double>(B.view(), X.view()), 1e-10);
}

TEST(SchurFeature, TakeSchurWithoutRequestThrows) {
  auto A = laplacian2d(4, 4);
  MultifrontalSolver<double> mf;
  mf.factorize(A, SolverOptions{});
  EXPECT_THROW(mf.take_schur(), std::logic_error);
}

TEST(SchurFeature, WholeMatrixAsSchur) {
  // schur_size == n: nothing is eliminated, S == A dense.
  auto A = laplacian2d(4, 3);
  MultifrontalSolver<double> mf;
  SolverOptions opt;
  opt.schur_size = A.rows();
  mf.factorize(A, opt);
  auto S = mf.take_schur();
  auto D = A.to_dense();
  EXPECT_LT(rel_diff<double>(S.view(), D.view()), 1e-14);
}

/// 3D 7-point Laplacian (the regime where BLR panels are genuinely
/// low-rank, matching the paper's volume FEM matrices).
Csr<double> laplacian3d(index_t g, double shift = 0.1) {
  Triplets<double> t(g * g * g, g * g * g);
  auto id = [g](index_t i, index_t j, index_t k) {
    return i + g * (j + g * k);
  };
  for (index_t k = 0; k < g; ++k)
    for (index_t j = 0; j < g; ++j)
      for (index_t i = 0; i < g; ++i) {
        t.add(id(i, j, k), id(i, j, k), 6.0 + shift);
        if (i + 1 < g) {
          t.add(id(i, j, k), id(i + 1, j, k), -1.0);
          t.add(id(i + 1, j, k), id(i, j, k), -1.0);
        }
        if (j + 1 < g) {
          t.add(id(i, j, k), id(i, j + 1, k), -1.0);
          t.add(id(i, j + 1, k), id(i, j, k), -1.0);
        }
        if (k + 1 < g) {
          t.add(id(i, j, k), id(i, j, k + 1), -1.0);
          t.add(id(i, j, k + 1), id(i, j, k), -1.0);
        }
      }
  return Csr<double>::from_triplets(t);
}

/// BLR options in the regime where 3D fronts are large enough for tiles to
/// be genuinely low-rank (larger supernodes, looser tiles).
SolverOptions blr_options(double eps) {
  SolverOptions opt;
  opt.compress = true;
  opt.blr_eps = eps;
  opt.blr_min_dim = 24;
  opt.blr_tile_rows = 96;
  opt.relax_zeros = 48;
  opt.max_supernode = 512;
  return opt;
}

TEST(Blr, CompressionReducesStorageAndKeepsAccuracy) {
  auto A = laplacian3d(16);
  const index_t n = A.rows();
  auto X = random_rhs<double>(n, 1, 7);
  Matrix<double> B(n, 1);
  A.spmm(1.0, X.view(), 0.0, B.view());

  SolverOptions dense_opt = blr_options(1e-2);
  dense_opt.compress = false;
  MultifrontalSolver<double> dense_mf;
  dense_mf.factorize(A, dense_opt);

  MultifrontalSolver<double> blr_mf;
  blr_mf.factorize(A, blr_options(1e-2));

  EXPECT_GT(blr_mf.stats().compressed_panels, 0);
  EXPECT_LT(blr_mf.stats().factor_entries_stored,
            dense_mf.stats().factor_entries_stored);

  Matrix<double> B2 = B;
  blr_mf.solve(B2.view());
  EXPECT_LT(rel_diff<double>(B2.view(), X.view()), 5e-2);
}

TEST(Blr, TighterEpsilonIsMoreAccurate) {
  auto A = laplacian3d(16);
  const index_t n = A.rows();
  auto X = random_rhs<double>(n, 1, 9);
  Matrix<double> B(n, 1);
  A.spmm(1.0, X.view(), 0.0, B.view());

  double prev_err = 1e9;
  for (double eps : {1e-1, 1e-4, 1e-10}) {
    MultifrontalSolver<double> mf;
    mf.factorize(A, blr_options(eps));
    Matrix<double> B2 = B;
    mf.solve(B2.view());
    const double err = rel_diff<double>(B2.view(), X.view());
    EXPECT_LT(err, 10 * eps + 1e-12);
    EXPECT_LE(err, prev_err + 1e-12);
    prev_err = err;
  }
}

TEST(Blr, LooserEpsilonCompressesMore) {
  auto A = laplacian3d(16);
  MultifrontalSolver<double> mf_tight, mf_loose;
  mf_tight.factorize(A, blr_options(1e-10));
  mf_loose.factorize(A, blr_options(1e-2));
  EXPECT_LE(mf_loose.stats().factor_entries_stored,
            mf_tight.stats().factor_entries_stored);
  EXPECT_GT(mf_loose.stats().compressed_panels,
            mf_tight.stats().compressed_panels);
}

TEST(SparseRhs, PrunedSolveMatchesDenseSolve) {
  auto A = laplacian2d(13, 13);
  const index_t n = A.rows();
  // RHS with only a handful of nonzero rows.
  Matrix<double> B(n, 2);
  B(3, 0) = 1.0;
  B(50, 0) = -2.0;
  B(120, 1) = 0.5;

  MultifrontalSolver<double> pruned, full;
  SolverOptions popt;
  popt.exploit_sparse_rhs = true;
  SolverOptions fopt;
  fopt.exploit_sparse_rhs = false;
  pruned.factorize(A, popt);
  full.factorize(A, fopt);

  Matrix<double> Bp = B, Bf = B;
  pruned.solve(Bp.view());
  full.solve(Bf.view());
  EXPECT_LT(rel_diff<double>(Bp.view(), Bf.view()), 1e-13);
}

TEST(Multifrontal, StatsAreConsistent) {
  auto A = laplacian2d(10, 10);
  MultifrontalSolver<double> mf;
  mf.factorize(A, SolverOptions{});
  const auto& s = mf.stats();
  EXPECT_EQ(s.n, 100);
  EXPECT_EQ(s.n_eliminated, 100);
  EXPECT_GT(s.n_fronts, 0);
  EXPECT_GT(s.factor_entries_stored, 0);
  EXPECT_GE(s.factor_entries_dense, 100);  // at least the diagonal
  EXPECT_GT(mf.factor_bytes(), 0u);
  EXPECT_GE(s.factor_seconds, 0.0);
}

TEST(Multifrontal, BudgetExceededPropagatesCleanly) {
  auto A = laplacian2d(20, 20);
  auto& tracker = MemoryTracker::instance();
  const std::size_t before = tracker.current();
  {
    MultifrontalSolver<double> mf;
    ScopedBudget budget(tracker.current() + 20 * 1024);  // far too small
    EXPECT_THROW(mf.factorize(A, SolverOptions{}), BudgetExceeded);
  }
  // No tracked bytes may leak after the failed factorization unwinds.
  EXPECT_EQ(tracker.current(), before);
}

TEST(Multifrontal, AmalgamationSweepStaysCorrect) {
  auto A = laplacian2d(11, 11);
  const index_t n = A.rows();
  auto X = random_rhs<double>(n, 1, 8);
  Matrix<double> B0(n, 1);
  A.spmm(1.0, X.view(), 0.0, B0.view());
  for (index_t relax : {0, 4, 64}) {
    for (index_t max_sn : {1, 8, 256}) {
      MultifrontalSolver<double> mf;
      SolverOptions opt;
      opt.relax_zeros = relax;
      opt.max_supernode = max_sn;
      mf.factorize(A, opt);
      Matrix<double> B = B0;
      mf.solve(B.view());
      EXPECT_LT(rel_diff<double>(B.view(), X.view()), 1e-10)
          << "relax=" << relax << " max_sn=" << max_sn;
    }
  }
}

}  // namespace
}  // namespace cs::sparsedirect
