// Tests of the memory attribution ledger: tag taxonomy, RAII scope
// nesting, buffer tag stickiness across moves, the sum invariant (per-tag
// currents decompose the global current), the peak-attribution snapshot,
// BudgetExceeded attribution, and concurrent tagged accounting (the
// concurrency tests double as the TSan targets for the ledger).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer.h"
#include "common/memory.h"
#include "coupled/coupled.h"

namespace cs {
namespace {

/// Sum of per-tag live bytes, excluding the budget-exempt pack scratch
/// gauge (which is deliberately outside the global counters).
std::size_t tagged_sum() {
  auto& t = MemoryTracker::instance();
  std::size_t sum = 0;
  for (std::size_t i = 0; i < kMemTagCount; ++i) {
    const auto tag = static_cast<MemTag>(i);
    if (tag == MemTag::kPackScratch) continue;
    sum += t.tag_current(tag);
  }
  return sum;
}

TEST(MemTagTaxonomy, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  std::set<std::string> counter_names;
  for (std::size_t i = 0; i < kMemTagCount; ++i) {
    const auto tag = static_cast<MemTag>(i);
    const std::string name = mem_tag_name(tag);
    EXPECT_NE(name, "invalid");
    EXPECT_TRUE(names.insert(name).second) << "duplicate tag name " << name;
    const std::string counter = mem_tag_counter_name(tag);
    EXPECT_EQ(counter, "mem." + name);
    EXPECT_TRUE(counter_names.insert(counter).second);
  }
  EXPECT_EQ(mem_tag_name(MemTag::kMfFront), std::string("mf.front"));
  EXPECT_EQ(mem_tag_name(MemTag::kHmatRk), std::string("hmat.rk"));
  EXPECT_EQ(mem_tag_name(MemTag::kPackScratch), std::string("pack.scratch"));
}

TEST(MemoryScope, NestsAndRestoresPerThread) {
  EXPECT_EQ(MemoryScope::current(), MemTag::kUntagged);
  {
    MemoryScope outer(MemTag::kMfFront);
    EXPECT_EQ(MemoryScope::current(), MemTag::kMfFront);
    {
      MemoryScope inner(MemTag::kHmatRk);
      EXPECT_EQ(MemoryScope::current(), MemTag::kHmatRk);
    }
    EXPECT_EQ(MemoryScope::current(), MemTag::kMfFront);
    // A scope on another thread must not leak into this one.
    std::thread([] {
      EXPECT_EQ(MemoryScope::current(), MemTag::kUntagged);
      MemoryScope other(MemTag::kSchurDense);
      EXPECT_EQ(MemoryScope::current(), MemTag::kSchurDense);
    }).join();
    EXPECT_EQ(MemoryScope::current(), MemTag::kMfFront);
  }
  EXPECT_EQ(MemoryScope::current(), MemTag::kUntagged);
}

TEST(MemoryLedger, AllocationChargesInnermostScope) {
  auto& t = MemoryTracker::instance();
  const std::size_t front0 = t.tag_current(MemTag::kMfFront);
  const std::size_t rk0 = t.tag_current(MemTag::kHmatRk);
  const std::size_t global0 = t.current();
  {
    MemoryScope outer(MemTag::kMfFront);
    t.allocate(1000);
    {
      MemoryScope inner(MemTag::kHmatRk);
      t.allocate(500);
    }
    EXPECT_EQ(t.tag_current(MemTag::kMfFront), front0 + 1000);
    EXPECT_EQ(t.tag_current(MemTag::kHmatRk), rk0 + 500);
    EXPECT_EQ(t.current(), global0 + 1500);
    t.release(1000);
  }
  MemoryScope inner(MemTag::kHmatRk);
  t.release(500);
  EXPECT_EQ(t.tag_current(MemTag::kMfFront), front0);
  EXPECT_EQ(t.tag_current(MemTag::kHmatRk), rk0);
  EXPECT_EQ(t.current(), global0);
}

TEST(MemoryLedger, BufferTagSticksAcrossMoveAndScopeChange) {
  auto& t = MemoryTracker::instance();
  const std::size_t front0 = t.tag_current(MemTag::kMfFront);
  const std::size_t schur0 = t.tag_current(MemTag::kSchurDense);
  {
    Buffer<double> moved_into;
    {
      MemoryScope scope(MemTag::kMfFront);
      Buffer<double> b(1024);
      EXPECT_EQ(t.tag_current(MemTag::kMfFront),
                front0 + 1024 * sizeof(double));
      moved_into = std::move(b);
    }
    // Still charged to mf.front after the move, and the release below
    // happens under a *different* scope: the bytes must leave mf.front,
    // not schur.dense.
    EXPECT_EQ(t.tag_current(MemTag::kMfFront), front0 + 1024 * sizeof(double));
    MemoryScope other(MemTag::kSchurDense);
    moved_into = Buffer<double>();
    EXPECT_EQ(t.tag_current(MemTag::kMfFront), front0);
    EXPECT_EQ(t.tag_current(MemTag::kSchurDense), schur0);
  }
}

TEST(MemoryLedger, TaggedSumDecomposesGlobalCurrent) {
  auto& t = MemoryTracker::instance();
  EXPECT_EQ(tagged_sum(), t.current());
  MemoryScope scope(MemTag::kRhsWorkspace);
  Buffer<double> b(4096);
  EXPECT_EQ(tagged_sum(), t.current());
}

TEST(MemoryLedger, PeakSnapshotIsExactSingleThreaded) {
  auto& t = MemoryTracker::instance();
  t.reset_peak();
  const std::size_t front0 = t.tag_current(MemTag::kMfFront);
  const std::size_t rk0 = t.tag_current(MemTag::kHmatRk);
  {
    MemoryScope front(MemTag::kMfFront);
    t.allocate(1 << 20);
    MemoryScope rk(MemTag::kHmatRk);
    t.allocate(1 << 19);  // high-water mark advances here
    const MemTagArray at_peak = t.peak_attribution();
    EXPECT_EQ(at_peak[static_cast<std::size_t>(MemTag::kMfFront)],
              front0 + (1 << 20));
    EXPECT_EQ(at_peak[static_cast<std::size_t>(MemTag::kHmatRk)],
              rk0 + (1 << 19));
    std::size_t snapshot_sum = 0;
    for (std::size_t i = 0; i < kMemTagCount; ++i)
      if (static_cast<MemTag>(i) != MemTag::kPackScratch)
        snapshot_sum += at_peak[i];
    EXPECT_EQ(snapshot_sum, t.peak());
    t.release(1 << 19);
    MemoryScope front_again(MemTag::kMfFront);
    t.release(1 << 20);
  }
  // Releases do not disturb the captured snapshot.
  const MemTagArray after = t.peak_attribution();
  EXPECT_EQ(after[static_cast<std::size_t>(MemTag::kMfFront)],
            front0 + (1 << 20));
  t.reset_peak();
}

TEST(MemoryLedger, ResetPeakReseedsSnapshotFromLiveLedger) {
  auto& t = MemoryTracker::instance();
  MemoryScope scope(MemTag::kSchurDense);
  t.allocate(2048);
  t.reset_peak();
  const MemTagArray snap = t.peak_attribution();
  std::size_t sum = 0;
  for (std::size_t i = 0; i < kMemTagCount; ++i)
    if (static_cast<MemTag>(i) != MemTag::kPackScratch) sum += snap[i];
  EXPECT_EQ(sum, t.current());
  EXPECT_EQ(t.peak(), t.current());
  t.release(2048);
  t.reset_peak();
}

TEST(MemoryLedger, NoteScratchIsBudgetExemptPerTagOnly) {
  auto& t = MemoryTracker::instance();
  const std::size_t global0 = t.current();
  const std::size_t scratch0 = t.tag_current(MemTag::kPackScratch);
  t.note_scratch(1 << 16);
  EXPECT_EQ(t.current(), global0);  // global counters untouched
  EXPECT_EQ(t.tag_current(MemTag::kPackScratch), scratch0 + (1 << 16));
  EXPECT_GE(t.tag_peak(MemTag::kPackScratch), scratch0 + (1 << 16));
  t.note_scratch(-(1 << 16));
  EXPECT_EQ(t.tag_current(MemTag::kPackScratch), scratch0);
}

TEST(BudgetExceeded, CarriesAttributionAndNamesOwners) {
  auto& t = MemoryTracker::instance();
  ScopedBudget budget(t.current() + (1 << 20));
  MemoryScope scope(MemTag::kHmatRk);
  t.allocate(1 << 19);  // fits
  try {
    t.allocate(4 << 20);  // exceeds
    t.release(4 << 20);
    FAIL() << "allocation above budget did not throw";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.requested(), static_cast<std::size_t>(4 << 20));
    EXPECT_LE(e.in_use(), e.budget());
    EXPECT_GE(e.attribution()[static_cast<std::size_t>(MemTag::kHmatRk)],
              static_cast<std::size_t>(1 << 19));
    const std::string msg = e.what();
    EXPECT_NE(msg.find("memory budget exceeded"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hmat.rk"), std::string::npos)
        << "message should name the owning subsystem: " << msg;
    EXPECT_NE(msg.find("iB"), std::string::npos)
        << "message should use format_bytes units: " << msg;
  }
  t.release(1 << 19);
}

TEST(MemoryLedger, ConcurrentTaggedAllocReleaseStaysBalanced) {
  auto& t = MemoryTracker::instance();
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  const MemTag tags[] = {MemTag::kMfFront, MemTag::kHmatRk,
                         MemTag::kSchurDense, MemTag::kRhsWorkspace};
  std::vector<std::size_t> tag0;
  for (MemTag tag : tags) tag0.push_back(t.tag_current(tag));
  const std::size_t global0 = t.current();
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      const MemTag tag = tags[w % 4];
      for (int i = 0; i < kIters; ++i) {
        MemoryScope scope(tag);
        Buffer<float> b(64 + (i % 64));
        t.allocate(128);
        t.release(128);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_EQ(t.tag_current(tags[k]), tag0[k]) << mem_tag_name(tags[k]);
  EXPECT_EQ(t.current(), global0);
  EXPECT_EQ(tagged_sum(), t.current());
}

TEST(MemoryLedger, ConcurrentPeaksKeepSnapshotNearPeak) {
  // Hammer the high-water mark from several threads, then check the
  // snapshot sum lands within slack of the recorded peak (the capture is
  // approximate by design under concurrency).
  auto& t = MemoryTracker::instance();
  t.reset_peak();
  constexpr int kThreads = 6;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      MemoryScope scope(w % 2 == 0 ? MemTag::kMfFront : MemTag::kSchurPanel);
      for (int i = 0; i < 500; ++i) {
        t.allocate(10000 + 17 * static_cast<std::size_t>(i));
        t.release(10000 + 17 * static_cast<std::size_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  const MemTagArray snap = t.peak_attribution();
  std::size_t sum = 0;
  for (std::size_t i = 0; i < kMemTagCount; ++i)
    if (static_cast<MemTag>(i) != MemTag::kPackScratch) sum += snap[i];
  const double peak = static_cast<double>(t.peak());
  EXPECT_GE(static_cast<double>(sum), 0.5 * peak);
  EXPECT_LE(static_cast<double>(sum), 1.5 * peak + 1024.0);
  t.reset_peak();
}

// -- end-to-end: the ledger through the full solver stack --------------------

class LedgerStrategySweep : public ::testing::TestWithParam<coupled::Strategy> {
};

TEST_P(LedgerStrategySweep, SolveKeepsSumInvariantAndAttributesPeak) {
  fembem::SystemParams p;
  p.total_unknowns = 1600;
  static auto sys = fembem::make_pipe_system<double>(p);
  auto& t = MemoryTracker::instance();
  const std::size_t before = t.current();
  EXPECT_EQ(tagged_sum(), before);

  coupled::Config cfg;
  cfg.strategy = GetParam();
  cfg.eps = 1e-4;
  cfg.n_c = 48;
  cfg.n_S = 96;
  cfg.n_b = 2;
  auto stats = coupled::solve_coupled(sys, cfg);
  ASSERT_TRUE(stats.success) << stats.failure;

  // Quiescent again: every solver allocation was released against the tag
  // it was charged to, so the decomposition still holds.
  EXPECT_EQ(t.current(), before);
  EXPECT_EQ(tagged_sum(), t.current());

  // The report's peak attribution decomposes the measured peak within
  // slack (concurrent allocators make the snapshot approximate).
  ASSERT_FALSE(stats.peak_by_tag.empty());
  std::size_t sum = 0;
  for (const auto& [tag, bytes] : stats.peak_by_tag)
    if (tag != "pack.scratch") sum += bytes;
  EXPECT_GE(static_cast<double>(sum),
            0.75 * static_cast<double>(stats.peak_bytes));
  EXPECT_LE(static_cast<double>(sum),
            1.25 * static_cast<double>(stats.peak_bytes) + 1e6);

  // Planner audit recorded: a prediction exists and the misprediction
  // ratio is the quotient of the two report fields.
  EXPECT_GT(stats.planner_predicted_bytes, 0u);
  EXPECT_GT(stats.planner_misprediction, 0.0);
  EXPECT_NEAR(stats.planner_misprediction,
              static_cast<double>(stats.planner_predicted_bytes) /
                  static_cast<double>(stats.peak_bytes),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, LedgerStrategySweep,
    ::testing::Values(coupled::Strategy::kBaselineCoupling,
                      coupled::Strategy::kAdvancedCoupling,
                      coupled::Strategy::kMultiSolve,
                      coupled::Strategy::kMultiSolveCompressed,
                      coupled::Strategy::kMultiFactorization,
                      coupled::Strategy::kMultiFactorizationCompressed,
                      coupled::Strategy::kMultiSolveRandomized),
    [](const ::testing::TestParamInfo<coupled::Strategy>& info) {
      std::string name = coupled::strategy_name(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace cs
