// Tests of the tracing/metrics layer (common/trace.h): Chrome-trace export
// validity, disabled-path cost, concurrent emission, ring-buffer overflow,
// counter/gauge tracks, the Metrics snapshot, the PhaseTimes concurrency
// semantics the stage timers rely on, and one end-to-end traced solve.
#include "common/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/timer.h"
#include "coupled/coupled.h"
#include "coupled/report.h"
#include "fembem/system.h"

namespace cs {
namespace {

/// Every test starts from a disabled, empty tracer and leaves it that way
/// (the tracer is a process-wide singleton).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST_F(TraceTest, DisabledPathRecordsNothing) {
  auto& tracer = Tracer::instance();
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSpan span("test", "outer");
    span.arg("k", 1).arg("v", 2.5).arg("s", std::string("x"));
    TraceSpan inner("test", "inner");
    trace_instant("test", "tick");
    trace_counter("c", 1.0);
    trace_thread_name("main");
  }
  // No per-thread buffer is even created while disabled.
  EXPECT_EQ(tracer.thread_count(), 0u);
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST_F(TraceTest, SpanExportValidatesAndCarriesArgs) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  {
    TraceSpan outer("cat", "outer");
    outer.arg("n", 42).arg("eps", 0.5);
    {
      TraceSpan inner("cat", "inner");
      trace_instant("cat", "mark");
    }
  }
  trace_counter("my.counter", 7.0);
  const std::string text = tracer.to_json();
  EXPECT_EQ(validate_chrome_trace(text), "");

  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(text, &doc, &err)) << err;
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found_args = false, found_counter = false;
  for (const auto& e : events->array) {
    const json::Value* name = e.find("name");
    const json::Value* ph = e.find("ph");
    if (name == nullptr || ph == nullptr) continue;
    if (name->string == "outer" && ph->string == "E") {
      const json::Value* args = e.find("args");
      ASSERT_NE(args, nullptr);
      const json::Value* n = args->find("n");
      ASSERT_NE(n, nullptr);
      EXPECT_EQ(n->number, 42);
      found_args = true;
    }
    if (name->string == "my.counter" && ph->string == "C") {
      const json::Value* args = e.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("value"), nullptr);
      EXPECT_EQ(args->find("value")->number, 7.0);
      found_counter = true;
    }
  }
  EXPECT_TRUE(found_args);
  EXPECT_TRUE(found_counter);
}

TEST_F(TraceTest, TimestampsMonotonicPerThread) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("cat", "tick");
  }
  EXPECT_EQ(validate_chrome_trace(tracer.to_json()), "");
}

TEST_F(TraceTest, ConcurrentEmissionExportsEveryThread) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      trace_thread_name("trace_test.worker");
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan span("worker", "unit");
        span.arg("i", i);
        trace_gauge_add("test.inflight", 1);
        trace_gauge_add("test.inflight", -1);
      }
    });
  }
  for (auto& w : workers) w.join();

  const std::string text = tracer.to_json();
  EXPECT_EQ(validate_chrome_trace(text), "");
  EXPECT_GE(tracer.thread_count(), static_cast<std::size_t>(kThreads));

  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(text, &doc, &err)) << err;
  std::set<double> tids;
  for (const auto& e : doc.find("traceEvents")->array) {
    const json::Value* ph = e.find("ph");
    if (ph != nullptr && ph->string != "M") tids.insert(e.find("tid")->number);
  }
  EXPECT_GE(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, RingOverflowKeepsSpansBalanced) {
  auto& tracer = Tracer::instance();
  tracer.set_buffer_capacity(64);
  tracer.set_enabled(true);
  for (int i = 0; i < 500; ++i) {
    TraceSpan outer("cat", "outer");
    TraceSpan inner("cat", "inner");
    trace_instant("cat", "mark");
  }
  EXPECT_GT(tracer.dropped_count(), 0u);
  // Drops must never orphan a B or E: the export still validates.
  EXPECT_EQ(validate_chrome_trace(tracer.to_json()), "");
  tracer.set_buffer_capacity(0);  // restore the default for later tests
}

TEST_F(TraceTest, SampleCountersEmitsMemoryTracks) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  trace_gauge_add("test.gauge", 3);
  tracer.sample_counters();
  const std::string text = tracer.to_json();
  EXPECT_EQ(validate_chrome_trace(text), "");

  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(text, &doc, &err)) << err;
  std::set<std::string> counters;
  for (const auto& e : doc.find("traceEvents")->array) {
    const json::Value* ph = e.find("ph");
    if (ph != nullptr && ph->string == "C")
      counters.insert(e.find("name")->string);
  }
  EXPECT_TRUE(counters.count("memory.current"));
  EXPECT_TRUE(counters.count("memory.peak"));
  EXPECT_TRUE(counters.count("test.gauge"));
}

TEST_F(TraceTest, SamplerRecordsTimelineAndStops) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  {
    TraceSampler sampler(200);  // 0.2 ms period
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const std::size_t after_stop = tracer.event_count();
  EXPECT_GT(after_stop, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // No samples arrive after destruction.
  EXPECT_EQ(tracer.event_count(), after_stop);
  EXPECT_EQ(validate_chrome_trace(tracer.to_json()), "");
}

TEST_F(TraceTest, SamplerIsInertWhileDisabled) {
  auto& tracer = Tracer::instance();
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSampler sampler(100);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST_F(TraceTest, GaugeTracksCumulativeValue) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  EXPECT_EQ(tracer.gauge_add("g", 2), 2);
  EXPECT_EQ(tracer.gauge_add("g", 3), 5);
  EXPECT_EQ(tracer.gauge_add("g", -5), 0);
  EXPECT_EQ(validate_chrome_trace(tracer.to_json()), "");
}

TEST_F(TraceTest, ClearDropsEventsAndRestartsClock) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  { TraceSpan span("cat", "x"); }
  EXPECT_GT(tracer.event_count(), 0u);
  tracer.set_enabled(false);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.thread_count(), 0u);
}

TEST_F(TraceTest, ValidatorRejectsMalformedTraces) {
  EXPECT_NE(validate_chrome_trace("not json"), "");
  EXPECT_NE(validate_chrome_trace("[]"), "");
  EXPECT_NE(validate_chrome_trace("{\"foo\": 1}"), "");
  // Unbalanced E.
  EXPECT_NE(validate_chrome_trace(
                R"({"traceEvents":[{"name":"x","cat":"c","ph":"E","ts":1,)"
                R"("pid":1,"tid":1}]})"),
            "");
  // Span left open.
  EXPECT_NE(validate_chrome_trace(
                R"({"traceEvents":[{"name":"x","cat":"c","ph":"B","ts":1,)"
                R"("pid":1,"tid":1}]})"),
            "");
  // Non-monotonic timestamps on one thread.
  EXPECT_NE(validate_chrome_trace(
                R"({"traceEvents":[)"
                R"({"name":"a","cat":"c","ph":"i","ts":5,"pid":1,"tid":1},)"
                R"({"name":"b","cat":"c","ph":"i","ts":1,"pid":1,"tid":1}]})"),
            "");
  // Mismatched nesting.
  EXPECT_NE(validate_chrome_trace(
                R"({"traceEvents":[)"
                R"({"name":"a","cat":"c","ph":"B","ts":1,"pid":1,"tid":1},)"
                R"({"name":"b","cat":"c","ph":"B","ts":2,"pid":1,"tid":1},)"
                R"({"name":"a","cat":"c","ph":"E","ts":3,"pid":1,"tid":1},)"
                R"({"name":"b","cat":"c","ph":"E","ts":4,"pid":1,"tid":1}]})"),
            "");
}

TEST_F(TraceTest, MetricsSnapshotReportsNonZeroCounters) {
  auto& metrics = Metrics::instance();
  metrics.reset();
  metrics.add(Metric::kPanelsProduced, 3);
  metrics.add(Metric::kPanelsProduced, 2);
  metrics.observe_max(Metric::kRecompressRankMax, 17);
  metrics.observe_max(Metric::kRecompressRankMax, 11);  // not a new max
  auto snap = metrics.snapshot();
  EXPECT_EQ(snap.at("pipeline.panels_produced"), 5);
  EXPECT_EQ(snap.at("recompress.rank_max"), 17);
  EXPECT_EQ(snap.count("refine.sweeps"), 0u);  // zero counters omitted
  metrics.reset();
  EXPECT_TRUE(metrics.snapshot().empty());
}

// Regression: SolveStats is copied/assigned while its PhaseTimes may have
// open scopes on worker threads; the copy must take the accumulated times
// without inheriting the open-scope bookkeeping.
TEST(PhaseTimesTest, CopyAndAssignWhileScopesOpen) {
  PhaseTimes times;
  times.add("done", 1.5);
  ScopedPhase open(times, "busy");

  PhaseTimes copied(times);
  EXPECT_EQ(copied.get("done"), 1.5);

  PhaseTimes assigned;
  assigned.add("old", 9.0);
  assigned = times;
  EXPECT_EQ(assigned.get("done"), 1.5);
  EXPECT_EQ(assigned.get("old"), 0.0);

  // Closing the original's scope accumulates there, not in the copies.
  const double copied_busy = copied.get("busy");
  { ScopedPhase finish_original(times, "busy"); }
  EXPECT_GE(times.get("busy"), 0.0);
  EXPECT_EQ(copied.get("busy"), copied_busy);
}

TEST(PhaseTimesTest, OverlappingScopesMergeInsteadOfSumming) {
  PhaseTimes times;
  Timer wall;
  {
    ScopedPhase a(times, "p");
    ScopedPhase b(times, "p");  // overlaps a completely
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double elapsed = wall.seconds();
  // Merged interval: accumulated <= wall clock (a sum over scopes would be
  // ~2x the wall clock).
  EXPECT_LE(times.get("p"), elapsed * 1.5);
  EXPECT_GT(times.get("p"), 0.0);
}

TEST_F(TraceTest, TracedSolveProducesValidTraceAndReport) {
  auto sys = fembem::make_pipe_system<double>({.total_unknowns = 1500});
  coupled::Config cfg;
  cfg.strategy = coupled::Strategy::kMultiSolveCompressed;
  cfg.num_threads = 4;
  cfg.n_c = 16;
  cfg.n_S = 32;
  cfg.trace_enabled = true;
  cfg.trace_path = ::testing::TempDir() + "/trace_test.solve.trace.json";
  cfg.trace_sample_us = 500;
  auto stats = coupled::solve_coupled(sys, cfg);
  ASSERT_TRUE(stats.success);

  // Stage timings and run counters landed in the stats.
  EXPECT_GT(stats.stages.get("schur.panel_solve"), 0.0);
  EXPECT_GT(stats.stages.get("schur.axpy"), 0.0);
  EXPECT_GT(stats.counters.at("pipeline.panels_produced"), 0.0);
  EXPECT_EQ(stats.counters.at("pipeline.panels_produced"),
            stats.counters.at("pipeline.panels_folded"));

  // The per-solve trace session wrote a valid file with the pipeline
  // spans and the memory timeline.
  std::ifstream in(cfg.trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_EQ(validate_chrome_trace(text), "");

  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(text, &doc, &err)) << err;
  std::set<std::string> names;
  for (const auto& e : doc.find("traceEvents")->array)
    if (e.find("name") != nullptr) names.insert(e.find("name")->string);
  EXPECT_TRUE(names.count("schur.panel_solve"));
  EXPECT_TRUE(names.count("memory.current"));
  EXPECT_TRUE(names.count("panels.inflight"));
  // The solve session is scoped: tracing is off again afterwards.
  EXPECT_FALSE(Tracer::instance().enabled());
  std::remove(cfg.trace_path.c_str());

  // The report writer renders the same stats as valid JSON.
  coupled::RunReport report("trace_test");
  report.add("multi-solve-compressed", "traced", cfg, stats);
  json::Value report_doc;
  ASSERT_TRUE(json::parse(report.json(), &report_doc, &err)) << err;
  const json::Value* runs = report_doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const json::Value* run_stats = runs->array[0].find("stats");
  ASSERT_NE(run_stats, nullptr);
  EXPECT_NE(run_stats->find("counters"), nullptr);
  EXPECT_NE(run_stats->find("stages"), nullptr);
}

}  // namespace
}  // namespace cs
