// Tests for the H-matrix library: cluster trees, admissibility, ACA
// assembly, H-matrix algebra (mult, compressed AXPY) and H-LU solve.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "hmat/aca.h"
#include "hmat/cluster.h"
#include "hmat/hmatrix.h"
#include "la/blas.h"
#include "la/factor.h"

namespace cs::hmat {
namespace {

using la::ConstMatrixView;
using la::Matrix;
using la::rel_diff;

/// Points on a cylinder surface (the geometry of the paper's pipe case).
std::vector<Point3> cylinder_points(index_t n_theta, index_t n_z,
                                    double radius = 1.0, double length = 3.0) {
  std::vector<Point3> pts;
  pts.reserve(static_cast<std::size_t>(n_theta) * n_z);
  for (index_t iz = 0; iz < n_z; ++iz)
    for (index_t it = 0; it < n_theta; ++it) {
      const double theta = 2.0 * M_PI * it / n_theta;
      pts.push_back({radius * std::cos(theta), radius * std::sin(theta),
                     length * iz / std::max<index_t>(1, n_z - 1)});
    }
  return pts;
}

double dist(const Point3& a, const Point3& b) {
  return std::sqrt((a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y) +
                   (a.z - b.z) * (a.z - b.z));
}

/// Regularized Laplace single-layer kernel with a dominant diagonal, the
/// smooth-kernel structure of the BEM matrices.
class LaplaceKernel final : public MatrixGenerator<double> {
 public:
  LaplaceKernel(std::vector<Point3> pts, double diag)
      : pts_(std::move(pts)), diag_(diag) {}
  index_t rows() const override { return static_cast<index_t>(pts_.size()); }
  index_t cols() const override { return static_cast<index_t>(pts_.size()); }
  double entry(index_t i, index_t j) const override {
    if (i == j) return diag_;
    const double r = dist(pts_[static_cast<std::size_t>(i)],
                          pts_[static_cast<std::size_t>(j)]);
    return 1.0 / (4.0 * M_PI * std::max(r, 1e-9));
  }

 private:
  std::vector<Point3> pts_;
  double diag_;
};

/// Complex Helmholtz single-layer analogue.
class HelmholtzKernel final : public MatrixGenerator<complexd> {
 public:
  HelmholtzKernel(std::vector<Point3> pts, double wavenumber, double diag)
      : pts_(std::move(pts)), k_(wavenumber), diag_(diag) {}
  index_t rows() const override { return static_cast<index_t>(pts_.size()); }
  index_t cols() const override { return static_cast<index_t>(pts_.size()); }
  complexd entry(index_t i, index_t j) const override {
    if (i == j) return complexd(diag_, 0.1);
    const double r = std::max(
        dist(pts_[static_cast<std::size_t>(i)],
             pts_[static_cast<std::size_t>(j)]),
        1e-9);
    return std::exp(complexd(0.0, k_ * r)) / (4.0 * M_PI * r);
  }

 private:
  std::vector<Point3> pts_;
  double k_;
  double diag_;
};

template <class T>
Matrix<T> dense_of(const MatrixGenerator<T>& gen) {
  Matrix<T> d(gen.rows(), gen.cols());
  for (index_t j = 0; j < gen.cols(); ++j)
    for (index_t i = 0; i < gen.rows(); ++i) d(i, j) = gen.entry(i, j);
  return d;
}

/// Dense matrix in tree-ordered coordinates.
template <class T>
Matrix<T> dense_tree_ordered(const MatrixGenerator<T>& gen,
                             const ClusterTree& rows,
                             const ClusterTree& cols) {
  Matrix<T> d(gen.rows(), gen.cols());
  const auto& ro = rows.original_of_tree();
  const auto& co = cols.original_of_tree();
  for (index_t j = 0; j < gen.cols(); ++j)
    for (index_t i = 0; i < gen.rows(); ++i)
      d(i, j) = gen.entry(ro[static_cast<std::size_t>(i)],
                          co[static_cast<std::size_t>(j)]);
  return d;
}

TEST(ClusterTree, PermutationIsValidAndRangesPartition) {
  auto pts = cylinder_points(20, 15);
  ClusterTree tree(pts, 16);
  EXPECT_EQ(tree.size(), 300);
  // perm and iperm are inverse bijections.
  const auto& perm = tree.tree_of_original();
  const auto& iperm = tree.original_of_tree();
  for (index_t i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(perm[static_cast<std::size_t>(iperm[static_cast<std::size_t>(
                  i)])],
              i);
  }
  // Leaves partition [0, n) and respect the leaf size.
  index_t covered = 0;
  std::function<void(const ClusterNode&)> walk = [&](const ClusterNode& n) {
    EXPECT_LT(n.begin, n.end);
    if (n.is_leaf()) {
      EXPECT_LE(n.size(), 16);
      EXPECT_EQ(n.begin, covered);
      covered = n.end;
    } else {
      EXPECT_EQ(n.left->begin, n.begin);
      EXPECT_EQ(n.left->end, n.right->begin);
      EXPECT_EQ(n.right->end, n.end);
      walk(*n.left);
      walk(*n.right);
    }
  };
  walk(tree.root());
  EXPECT_EQ(covered, tree.size());
  EXPECT_GT(tree.node_count(), 1);
  EXPECT_GT(tree.depth(), 2);
}

TEST(ClusterTree, SinglePointAndTinySets) {
  std::vector<Point3> one = {{0.5, 0.5, 0.5}};
  ClusterTree t1(one, 8);
  EXPECT_EQ(t1.size(), 1);
  EXPECT_TRUE(t1.root().is_leaf());

  std::vector<Point3> two = {{0, 0, 0}, {1, 1, 1}};
  ClusterTree t2(two, 1);
  EXPECT_EQ(t2.size(), 2);
  EXPECT_FALSE(t2.root().is_leaf());
}

TEST(Admissibility, SeparatedBoxesAdmissible) {
  ClusterNode a, b;
  a.box = {{0, 0, 0}, {1, 1, 1}};
  b.box = {{5, 0, 0}, {6, 1, 1}};
  EXPECT_TRUE(admissible(a, b, 2.0));
  // Touching boxes are never admissible.
  ClusterNode c;
  c.box = {{1, 0, 0}, {2, 1, 1}};
  EXPECT_FALSE(admissible(a, c, 100.0));
  // Tiny eta rejects moderately separated boxes.
  EXPECT_FALSE(admissible(a, b, 0.1));
}

class AcaEpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(AcaEpsSweep, ApproximatesSmoothBlockWithinEps) {
  const double eps = GetParam();
  // Two well-separated point clusters -> smooth low-rank interaction.
  auto pts = cylinder_points(12, 10);
  std::vector<Point3> far = pts;
  for (auto& p : far) p.x += 10.0;
  std::vector<Point3> all = pts;
  all.insert(all.end(), far.begin(), far.end());
  LaplaceKernel gen(all, 1.0);

  const index_t m = static_cast<index_t>(pts.size());
  std::vector<index_t> rows(static_cast<std::size_t>(m)),
      cols(static_cast<std::size_t>(m));
  for (index_t i = 0; i < m; ++i) {
    rows[static_cast<std::size_t>(i)] = i;
    cols[static_cast<std::size_t>(i)] = m + i;
  }
  auto rk = aca_assemble(gen, rows, cols, eps);
  Matrix<double> block(m, m);
  for (index_t j = 0; j < m; ++j)
    for (index_t i = 0; i < m; ++i)
      block(i, j) = gen.entry(rows[static_cast<std::size_t>(i)],
                              cols[static_cast<std::size_t>(j)]);
  Matrix<double> rec(m, m);
  la::gemm(1.0, rk.U.view(), la::Op::kNoTrans, rk.V.view(), la::Op::kTrans,
           0.0, rec.view());
  EXPECT_LT(rel_diff<double>(rec.view(), block.view()), 20 * eps);
  EXPECT_LT(rk.rank(), m / 2);  // genuinely low rank
}

INSTANTIATE_TEST_SUITE_P(Accuracies, AcaEpsSweep,
                         ::testing::Values(1e-2, 1e-4, 1e-6, 1e-8));

TEST(Aca, ZeroBlockGivesRankZero) {
  class ZeroGen final : public MatrixGenerator<double> {
   public:
    index_t rows() const override { return 10; }
    index_t cols() const override { return 10; }
    double entry(index_t, index_t) const override { return 0.0; }
  } gen;
  std::vector<index_t> ids(10);
  std::iota(ids.begin(), ids.end(), 0);
  auto rk = aca_assemble(gen, ids, ids, 1e-6);
  EXPECT_EQ(rk.rank(), 0);
}

template <class T>
class HMatrixTypedTest : public ::testing::Test {};
using Scalars = ::testing::Types<double, complexd>;
TYPED_TEST_SUITE(HMatrixTypedTest, Scalars);

template <class T>
std::unique_ptr<MatrixGenerator<T>> make_kernel(std::vector<Point3> pts);
template <>
std::unique_ptr<MatrixGenerator<double>> make_kernel(std::vector<Point3> pts) {
  return std::make_unique<LaplaceKernel>(std::move(pts), 2.0);
}
template <>
std::unique_ptr<MatrixGenerator<complexd>> make_kernel(
    std::vector<Point3> pts) {
  return std::make_unique<HelmholtzKernel>(std::move(pts), 2.0, 2.0);
}

TYPED_TEST(HMatrixTypedTest, AssembleMatchesDense) {
  using T = TypeParam;
  // n = 1040 at the paper's eps = 1e-3: compression must genuinely pay.
  auto pts = cylinder_points(40, 26);
  auto gen = make_kernel<T>(pts);
  ClusterTree tree(pts, 32);
  HOptions opt;
  opt.eps = 1e-3;
  auto H = HMatrix<T>::assemble(tree, tree, *gen, opt);
  auto ref = dense_tree_ordered<T>(*gen, tree, tree);
  auto D = H.to_dense();
  EXPECT_LT(rel_diff<T>(D.view(), ref.view()), 1e-2);
  EXPECT_LT(H.compression_ratio(), 0.6);
  EXPECT_GT(H.rk_leaves(), 0);
}

TYPED_TEST(HMatrixTypedTest, MultMatchesDense) {
  using T = TypeParam;
  auto pts = cylinder_points(20, 14);
  auto gen = make_kernel<T>(pts);
  ClusterTree tree(pts, 16);
  HOptions opt;
  opt.eps = 1e-8;
  auto H = HMatrix<T>::assemble(tree, tree, *gen, opt);
  auto ref = dense_tree_ordered<T>(*gen, tree, tree);

  const index_t n = H.rows();
  Rng rng(5);
  Matrix<T> X(n, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < n; ++i) X(i, j) = rng.scalar<T>();

  Matrix<T> Y(n, 3), Y_ref(n, 3);
  H.mult(T{2}, ConstMatrixView<T>(X.view()), T{0}, Y.view());
  la::gemm(T{2}, ConstMatrixView<T>(ref.view()), la::Op::kNoTrans,
           ConstMatrixView<T>(X.view()), la::Op::kNoTrans, T{0}, Y_ref.view());
  EXPECT_LT(rel_diff<T>(Y.view(), Y_ref.view()), 1e-6);

  // Transposed product.
  Matrix<T> Z(n, 3), Z_ref(n, 3);
  H.mult(T{1}, ConstMatrixView<T>(X.view()), T{0}, Z.view(), la::Op::kTrans);
  la::gemm(T{1}, ConstMatrixView<T>(ref.view()), la::Op::kTrans,
           ConstMatrixView<T>(X.view()), la::Op::kNoTrans, T{0}, Z_ref.view());
  EXPECT_LT(rel_diff<T>(Z.view(), Z_ref.view()), 1e-6);
}

TYPED_TEST(HMatrixTypedTest, FromDenseRoundTrip) {
  using T = TypeParam;
  auto pts = cylinder_points(16, 12);
  auto gen = make_kernel<T>(pts);
  ClusterTree tree(pts, 16);
  auto ref = dense_tree_ordered<T>(*gen, tree, tree);
  HOptions opt;
  opt.eps = 1e-7;
  auto H = HMatrix<T>::from_dense(tree, tree, ConstMatrixView<T>(ref.view()),
                                  opt);
  auto D = H.to_dense();
  EXPECT_LT(rel_diff<T>(D.view(), ref.view()), 1e-5);
}

TYPED_TEST(HMatrixTypedTest, CompressedAxpyAccumulatesBlocks) {
  using T = TypeParam;
  auto pts = cylinder_points(16, 12);
  auto gen = make_kernel<T>(pts);
  ClusterTree tree(pts, 16);
  auto ref = dense_tree_ordered<T>(*gen, tree, tree);
  const index_t n = static_cast<index_t>(pts.size());

  HOptions opt;
  opt.eps = 1e-7;
  auto H = HMatrix<T>::zero(tree, tree, opt);
  // Add the dense matrix in vertical panels (multi-solve pattern).
  const index_t panel = 37;
  for (index_t c0 = 0; c0 < n; c0 += panel) {
    const index_t nc = std::min(panel, n - c0);
    H.add_dense_block(T{1}, ref.view().block(0, c0, n, nc), 0, c0);
  }
  auto D = H.to_dense();
  EXPECT_LT(rel_diff<T>(D.view(), ref.view()), 1e-5);

  // Subtracting in square blocks (multi-factorization pattern) returns to
  // (approximately) zero.
  const index_t sq = 61;
  for (index_t r0 = 0; r0 < n; r0 += sq)
    for (index_t c0 = 0; c0 < n; c0 += sq) {
      const index_t nr = std::min(sq, n - r0);
      const index_t nc = std::min(sq, n - c0);
      H.add_dense_block(T{-1}, ref.view().block(r0, c0, nr, nc), r0, c0);
    }
  auto Z = H.to_dense();
  EXPECT_LT(la::norm_fro<T>(Z.view()) / la::norm_fro<T>(ref.view()), 1e-5);
}

TEST(HMatrix, AddDenseBlockOutOfRangeThrows) {
  auto pts = cylinder_points(8, 8);
  ClusterTree tree(pts, 16);
  auto H = HMatrix<double>::zero(tree, tree, HOptions{});
  Matrix<double> D(10, 10);
  EXPECT_THROW(H.add_dense_block(1.0, D.view(), 60, 60), std::out_of_range);
}

TYPED_TEST(HMatrixTypedTest, LuSolveMatchesDense) {
  using T = TypeParam;
  auto pts = cylinder_points(20, 14);
  auto gen = make_kernel<T>(pts);
  ClusterTree tree(pts, 24);
  HOptions opt;
  opt.eps = 1e-9;
  auto H = HMatrix<T>::assemble(tree, tree, *gen, opt);
  auto ref = dense_tree_ordered<T>(*gen, tree, tree);

  const index_t n = H.rows();
  Rng rng(6);
  Matrix<T> X(n, 2);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) X(i, j) = rng.scalar<T>();
  Matrix<T> B(n, 2);
  la::gemm(T{1}, ConstMatrixView<T>(ref.view()), la::Op::kNoTrans,
           ConstMatrixView<T>(X.view()), la::Op::kNoTrans, T{0}, B.view());

  H.lu_factorize();
  EXPECT_TRUE(H.factored());
  H.solve(B.view());
  EXPECT_LT(rel_diff<T>(B.view(), X.view()), 1e-5);
}

TEST(HMatrix, SolveBeforeFactorizeThrows) {
  auto pts = cylinder_points(8, 8);
  ClusterTree tree(pts, 16);
  auto H = HMatrix<double>::zero(tree, tree, HOptions{});
  Matrix<double> B(64, 1);
  EXPECT_THROW(H.solve(B.view()), std::logic_error);
}

TEST(HMatrix, LuAccuracyTracksEpsilon) {
  auto pts = cylinder_points(20, 12);
  LaplaceKernel gen(pts, 2.0);
  ClusterTree tree(pts, 24);
  auto ref = dense_tree_ordered<double>(gen, tree, tree);
  const index_t n = static_cast<index_t>(pts.size());
  Rng rng(7);
  Matrix<double> X(n, 1);
  for (index_t i = 0; i < n; ++i) X(i, 0) = rng.uniform(-1, 1);
  Matrix<double> B0(n, 1);
  la::gemm(1.0, ConstMatrixView<double>(ref.view()), la::Op::kNoTrans,
           ConstMatrixView<double>(X.view()), la::Op::kNoTrans, 0.0,
           B0.view());

  double prev = 1e9;
  for (double eps : {1e-2, 1e-5, 1e-9}) {
    HOptions opt;
    opt.eps = eps;
    auto H = HMatrix<double>::assemble(tree, tree, gen, opt);
    H.lu_factorize();
    Matrix<double> B = B0;
    H.solve(B.view());
    const double err = rel_diff<double>(B.view(), X.view());
    EXPECT_LT(err, 100 * eps);
    EXPECT_LE(err, prev * 10);  // roughly monotone in eps
    prev = err;
  }
}

TEST(HMatrix, RectangularAssembleAndMult) {
  // Interaction block between two different clouds (rows != cols trees).
  auto rows_pts = cylinder_points(14, 10);
  auto cols_pts = cylinder_points(10, 8, 1.0, 3.0);
  for (auto& p : cols_pts) p.x += 10.0;  // separated -> strongly admissible
  // A generator over the concatenated cloud.
  std::vector<Point3> all = rows_pts;
  all.insert(all.end(), cols_pts.begin(), cols_pts.end());
  LaplaceKernel gen(all, 2.0);
  const index_t m = static_cast<index_t>(rows_pts.size());
  const index_t n = static_cast<index_t>(cols_pts.size());

  // Wrap: block (i, j) of the rectangular matrix = gen(i, m + j).
  class OffsetGen final : public MatrixGenerator<double> {
   public:
    OffsetGen(const LaplaceKernel& g, index_t m, index_t n)
        : g_(g), m_(m), n_(n) {}
    index_t rows() const override { return m_; }
    index_t cols() const override { return n_; }
    double entry(index_t i, index_t j) const override {
      return g_.entry(i, m_ + j);
    }

   private:
    const LaplaceKernel& g_;
    index_t m_, n_;
  } rect(gen, m, n);

  ClusterTree row_tree(rows_pts, 16), col_tree(cols_pts, 16);
  HOptions opt;
  opt.eps = 1e-6;
  auto H = HMatrix<double>::assemble(row_tree, col_tree, rect, opt);
  EXPECT_EQ(H.rows(), m);
  EXPECT_EQ(H.cols(), n);
  // Separated clouds: the whole block should compress massively.
  EXPECT_LT(H.compression_ratio(), 0.5);

  auto D = dense_of<double>(rect);
  // to_dense must match up to eps (note: tree-ordered rows/cols).
  Matrix<double> Dt(m, n);
  const auto& ro = row_tree.original_of_tree();
  const auto& co = col_tree.original_of_tree();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      Dt(i, j) = D(ro[static_cast<std::size_t>(i)],
                   co[static_cast<std::size_t>(j)]);
  auto Hd = H.to_dense();
  EXPECT_LT(rel_diff<double>(Hd.view(), Dt.view()), 1e-5);
}

TEST(HMatrix, AddLowRankGlobalUpdate) {
  auto pts = cylinder_points(16, 12);
  LaplaceKernel gen(pts, 2.0);
  ClusterTree tree(pts, 16);
  HOptions opt;
  opt.eps = 1e-8;
  auto H = HMatrix<double>::assemble(tree, tree, gen, opt);
  auto before = H.to_dense();

  const index_t n = H.rows();
  Rng rng(8);
  la::RkFactors<double> rk;
  rk.U = Matrix<double>(n, 3);
  rk.V = Matrix<double>(n, 3);
  for (index_t c = 0; c < 3; ++c)
    for (index_t i = 0; i < n; ++i) {
      rk.U(i, c) = rng.uniform(-1, 1);
      rk.V(i, c) = rng.uniform(-1, 1);
    }
  H.add_low_rank(-2.0, rk);

  Matrix<double> expected = before;
  la::gemm(-2.0, ConstMatrixView<double>(rk.U.view()), la::Op::kNoTrans,
           ConstMatrixView<double>(rk.V.view()), la::Op::kTrans, 1.0,
           expected.view());
  auto after = H.to_dense();
  EXPECT_LT(rel_diff<double>(after.view(), expected.view()), 1e-5);

  la::RkFactors<double> bad;
  bad.U = Matrix<double>(n + 1, 1);
  bad.V = Matrix<double>(n, 1);
  EXPECT_THROW(H.add_low_rank(1.0, bad), std::invalid_argument);
}

TEST(HMatrix, StatsAreConsistent) {
  auto pts = cylinder_points(24, 16);
  LaplaceKernel gen(pts, 2.0);
  ClusterTree tree(pts, 24);
  HOptions opt;
  opt.eps = 1e-4;
  auto H = HMatrix<double>::assemble(tree, tree, gen, opt);
  EXPECT_GT(H.stored_entries(), 0);
  EXPECT_EQ(H.memory_bytes(), static_cast<std::size_t>(H.stored_entries()) *
                                  sizeof(double));
  EXPECT_GT(H.max_rank(), 0);
  EXPECT_GT(H.rk_leaves(), 0);
  EXPECT_GT(H.full_leaves(), 0);
  EXPECT_GT(H.compression_ratio(), 0.0);
  EXPECT_LT(H.compression_ratio(), 1.0);
}

// Structure sweep: H-LU must stay correct for every admissibility /
// leaf-size combination (different trees exercise different gemm_h and
// solve dispatch paths).
class HStructureSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(HStructureSweep, LuSolveCorrectAcrossStructures) {
  const auto [eta, leaf] = GetParam();
  auto pts = cylinder_points(18, 12);
  LaplaceKernel gen(pts, 2.0);
  ClusterTree tree(pts, leaf);
  HOptions opt;
  opt.eps = 1e-8;
  opt.eta = eta;
  auto H = HMatrix<double>::assemble(tree, tree, gen, opt);
  auto ref = dense_tree_ordered<double>(gen, tree, tree);

  const index_t n = H.rows();
  Rng rng(17);
  Matrix<double> X(n, 2);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) X(i, j) = rng.uniform(-1, 1);
  Matrix<double> B(n, 2);
  la::gemm(1.0, ConstMatrixView<double>(ref.view()), la::Op::kNoTrans,
           ConstMatrixView<double>(X.view()), la::Op::kNoTrans, 0.0,
           B.view());
  H.lu_factorize();
  H.solve(B.view());
  EXPECT_LT(rel_diff<double>(B.view(), X.view()), 1e-4)
      << "eta=" << eta << " leaf=" << leaf;
}

INSTANTIATE_TEST_SUITE_P(
    EtaAndLeaf, HStructureSweep,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0, 4.0),
                       ::testing::Values(8, 24, 64)));

TEST(HMatrix, LooserEpsCompressesMore) {
  auto pts = cylinder_points(24, 16);
  LaplaceKernel gen(pts, 2.0);
  ClusterTree tree(pts, 24);
  HOptions loose, tight;
  loose.eps = 1e-2;
  tight.eps = 1e-10;
  auto Hl = HMatrix<double>::assemble(tree, tree, gen, loose);
  auto Ht = HMatrix<double>::assemble(tree, tree, gen, tight);
  EXPECT_LT(Hl.stored_entries(), Ht.stored_entries());
}

}  // namespace
}  // namespace cs::hmat
