// Tests for the FEM/BEM problem generator: mesh topology invariants, P1
// assembly identities, BEM generator properties, and end-to-end consistency
// of the manufactured coupled system.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "fembem/system.h"
#include "la/factor.h"

namespace cs::fembem {
namespace {

using la::Matrix;

TEST(PipeMesh, NodeCountAndVolume) {
  PipeParams p;
  p.n_radial = 3;
  p.n_theta = 12;
  p.n_axial = 8;
  auto mesh = make_pipe_mesh(p);
  EXPECT_EQ(mesh.n_nodes(), 3 * 12 * 8);
  EXPECT_FALSE(mesh.tets.empty());

  // Total tet volume approximates the shell volume pi (ro^2 - ri^2) L
  // (under-estimates slightly because flat panels inscribe the cylinder).
  double vol = 0;
  for (const auto& t : mesh.tets)
    vol += std::abs(tet_volume(mesh.nodes[static_cast<std::size_t>(t[0])],
                               mesh.nodes[static_cast<std::size_t>(t[1])],
                               mesh.nodes[static_cast<std::size_t>(t[2])],
                               mesh.nodes[static_cast<std::size_t>(t[3])]));
  const double exact =
      M_PI * (p.outer_radius * p.outer_radius -
              p.inner_radius * p.inner_radius) *
      p.length;
  EXPECT_NEAR(vol, exact, 0.05 * exact);
}

TEST(PipeMesh, BoundaryIsClosedSurface) {
  PipeParams p;
  p.n_radial = 3;
  p.n_theta = 10;
  p.n_axial = 6;
  auto mesh = make_pipe_mesh(p);
  // Every edge of the boundary triangulation is shared by exactly two
  // boundary triangles (a watertight surface).
  std::map<std::pair<index_t, index_t>, int> edge_count;
  for (const auto& tri : mesh.boundary_tris) {
    for (int e = 0; e < 3; ++e) {
      index_t a = tri[static_cast<std::size_t>(e)];
      index_t b = tri[static_cast<std::size_t>((e + 1) % 3)];
      if (a > b) std::swap(a, b);
      ++edge_count[{a, b}];
    }
  }
  for (const auto& [edge, count] : edge_count) EXPECT_EQ(count, 2);
}

TEST(PipeMesh, SurfaceIndexingConsistent) {
  auto mesh = make_pipe_mesh(PipeParams{});
  EXPECT_GT(mesh.n_surface(), 0);
  EXPECT_LT(mesh.n_surface(), mesh.n_nodes());
  for (std::size_t v = 0; v < mesh.nodes.size(); ++v) {
    const index_t s = mesh.surface_of_node[v];
    if (s >= 0)
      EXPECT_EQ(mesh.boundary_nodes[static_cast<std::size_t>(s)],
                static_cast<index_t>(v));
  }
  // Boundary nodes sorted ascending, no duplicates.
  for (std::size_t k = 1; k < mesh.boundary_nodes.size(); ++k)
    EXPECT_LT(mesh.boundary_nodes[k - 1], mesh.boundary_nodes[k]);
}

TEST(PipeMesh, RejectsDegenerateParams) {
  PipeParams p;
  p.n_radial = 1;
  EXPECT_THROW(make_pipe_mesh(p), std::invalid_argument);
}

TEST(PipeMesh, DimsForTotalApproximatesTarget) {
  for (index_t target : {5000, 20000, 80000}) {
    auto p = pipe_dims_for_total(target);
    const index_t nv = p.n_radial * p.n_theta * p.n_axial;
    EXPECT_GT(nv, target / 2);
    EXPECT_LT(nv, 2 * target);
  }
}

TEST(Fem, StiffnessAnnihilatesConstants) {
  PipeParams p;
  p.n_radial = 3;
  p.n_theta = 8;
  p.n_axial = 5;
  auto mesh = make_pipe_mesh(p);
  FemCoefficients coef;
  coef.sigma_real = 0.0;  // pure stiffness
  auto K = assemble_volume_operator<double>(mesh, coef);
  std::vector<double> ones(static_cast<std::size_t>(K.rows()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(K.rows()), 0.0);
  K.spmv(1.0, ones.data(), 0.0, y.data());
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Fem, MassTotalEqualsVolume) {
  PipeParams p;
  p.n_radial = 3;
  p.n_theta = 10;
  p.n_axial = 6;
  auto mesh = make_pipe_mesh(p);
  FemCoefficients stiff_only;
  stiff_only.sigma_real = 0.0;
  FemCoefficients with_mass;
  with_mass.sigma_real = 1.0;
  auto K = assemble_volume_operator<double>(mesh, stiff_only);
  auto A = assemble_volume_operator<double>(mesh, with_mass);
  // sum_ij M_ij = total mesh volume (M = A - K).
  double mass_sum = 0;
  for (index_t r = 0; r < A.rows(); ++r) {
    for (offset_t k = A.row_begin(r); k < A.row_end(r); ++k)
      mass_sum += A.value(k);
    for (offset_t k = K.row_begin(r); k < K.row_end(r); ++k)
      mass_sum -= K.value(k);
  }
  double vol = 0;
  for (const auto& t : mesh.tets)
    vol += std::abs(tet_volume(mesh.nodes[static_cast<std::size_t>(t[0])],
                               mesh.nodes[static_cast<std::size_t>(t[1])],
                               mesh.nodes[static_cast<std::size_t>(t[2])],
                               mesh.nodes[static_cast<std::size_t>(t[3])]));
  EXPECT_NEAR(mass_sum, vol, 1e-8 * vol);
}

TEST(Fem, OperatorIsSymmetricPositiveDefinite) {
  PipeParams p;
  p.n_radial = 3;
  p.n_theta = 8;
  p.n_axial = 5;
  auto mesh = make_pipe_mesh(p);
  FemCoefficients coef;  // kappa = 0, sigma = 1 -> SPD
  auto A = assemble_volume_operator<double>(mesh, coef);
  auto D = A.to_dense();
  for (index_t i = 0; i < D.rows(); ++i)
    for (index_t j = 0; j < i; ++j)
      EXPECT_NEAR(D(i, j), D(j, i), 1e-12);
  // x^T A x > 0 for a few random x.
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(A.rows()));
    for (auto& v : x) v = rng.uniform(-1, 1);
    std::vector<double> y(x.size());
    A.spmv(1.0, x.data(), 0.0, y.data());
    double quad = 0;
    for (std::size_t i = 0; i < x.size(); ++i) quad += x[i] * y[i];
    EXPECT_GT(quad, 0.0);
  }
}

TEST(Coupling, RowSumsEqualVertexAreas) {
  PipeParams p;
  p.n_radial = 3;
  p.n_theta = 10;
  p.n_axial = 6;
  auto mesh = make_pipe_mesh(p);
  auto C = assemble_coupling<double>(mesh);
  EXPECT_EQ(C.rows(), mesh.n_surface());
  EXPECT_EQ(C.cols(), mesh.n_nodes());
  // Sum of all entries = total boundary area (partition of unity of P1).
  double total = 0;
  for (index_t r = 0; r < C.rows(); ++r)
    for (offset_t k = C.row_begin(r); k < C.row_end(r); ++k)
      total += C.value(k);
  double area = 0;
  for (const auto& tri : mesh.boundary_tris)
    area += tri_area(mesh.nodes[static_cast<std::size_t>(tri[0])],
                     mesh.nodes[static_cast<std::size_t>(tri[1])],
                     mesh.nodes[static_cast<std::size_t>(tri[2])]);
  EXPECT_NEAR(total, area, 1e-10 * area);
}

TEST(Bem, SymmetricVariantIsSymmetric) {
  auto mesh = make_pipe_mesh(PipeParams{});
  BemGenerator<double> gen(make_bem_surface(mesh), 0.0, /*symmetric=*/true);
  Rng rng(3);
  for (int t = 0; t < 50; ++t) {
    const index_t i = rng.uniform_index(0, gen.rows() - 1);
    const index_t j = rng.uniform_index(0, gen.rows() - 1);
    EXPECT_DOUBLE_EQ(gen.entry(i, j), gen.entry(j, i));
  }
}

TEST(Bem, CollocationVariantIsNotSymmetric) {
  auto mesh = make_pipe_mesh(PipeParams{});
  BemGenerator<double> gen(make_bem_surface(mesh), 0.0, /*symmetric=*/false);
  bool found_asym = false;
  for (index_t i = 0; i < 20 && !found_asym; ++i)
    for (index_t j = i + 1; j < 40 && !found_asym; ++j)
      if (std::abs(gen.entry(i, j) - gen.entry(j, i)) > 1e-14)
        found_asym = true;
  EXPECT_TRUE(found_asym);
}

TEST(Bem, GeneratorMatvecMatchesDense) {
  PipeParams p;
  p.n_radial = 2;
  p.n_theta = 8;
  p.n_axial = 4;
  auto mesh = make_pipe_mesh(p);
  BemGenerator<complexd> gen(make_bem_surface(mesh), 1.5, true);
  const index_t n = gen.rows();
  Matrix<complexd> D(n, n);
  generator_block(gen, 0, 0, D.view());
  Rng rng(4);
  la::Vector<complexd> x(n), y(n), y_ref(n);
  for (index_t i = 0; i < n; ++i) x[i] = rng.scalar<complexd>();
  generator_matvec(gen, x.data(), y.data());
  la::gemv(complexd{1}, la::ConstMatrixView<complexd>(D.view()),
           la::Op::kNoTrans, x.data(), complexd{0}, y_ref.data());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(y[i] - y_ref[i]), 0.0, 1e-10);
}

TEST(Bem, ExtraSurfaceAddsUncoupledDofs) {
  SystemParams params;
  params.total_unknowns = 3000;
  params.extra_surface_ratio = 0.5;
  auto sys = make_pipe_system<double>(params);
  SystemParams base = params;
  base.extra_surface_ratio = 0.0;
  auto sys0 = make_pipe_system<double>(base);
  EXPECT_GT(sys.ns(), sys0.ns());
  // The extra rows of A_sv are empty (no coupling).
  for (index_t r = sys0.ns(); r < sys.ns(); ++r)
    EXPECT_EQ(sys.A_sv.row_begin(r), sys.A_sv.row_end(r));
}

TEST(Bem, HelmholtzReducesToLaplaceAtZeroWavenumber) {
  PipeParams p;
  p.n_radial = 2;
  p.n_theta = 8;
  p.n_axial = 4;
  auto mesh = make_pipe_mesh(p);
  BemGenerator<double> lap(make_bem_surface(mesh), 0.0, true);
  BemGenerator<complexd> helm(make_bem_surface(mesh), 0.0, true);
  for (index_t i = 0; i < 10; ++i)
    for (index_t j = 0; j < 10; ++j) {
      if (i == j) continue;  // complex self term carries absorption
      EXPECT_NEAR(helm.entry(i, j).real(), lap.entry(i, j), 1e-14);
      EXPECT_NEAR(helm.entry(i, j).imag(), 0.0, 1e-14);
    }
}

TEST(Bem, WeightsArePositiveAndSumToArea) {
  auto mesh = make_pipe_mesh(PipeParams{});
  auto surface = make_bem_surface(mesh);
  double total = 0;
  for (double w : surface.weights) {
    EXPECT_GT(w, 0.0);
    total += w;
  }
  double area = 0;
  for (const auto& tri : mesh.boundary_tris)
    area += tri_area(mesh.nodes[static_cast<std::size_t>(tri[0])],
                     mesh.nodes[static_cast<std::size_t>(tri[1])],
                     mesh.nodes[static_cast<std::size_t>(tri[2])]);
  EXPECT_NEAR(total, area, 1e-10 * area);
}

TEST(Fem, ComplexOperatorIsComplexSymmetric) {
  PipeParams p;
  p.n_radial = 2;
  p.n_theta = 8;
  p.n_axial = 4;
  auto mesh = make_pipe_mesh(p);
  FemCoefficients coef;
  coef.kappa = 1.5;
  coef.sigma_real = 2.0;
  coef.sigma_imag = 0.5;
  auto A = assemble_volume_operator<complexd>(mesh, coef);
  auto D = A.to_dense();
  for (index_t i = 0; i < D.rows(); ++i)
    for (index_t j = 0; j < i; ++j) {
      EXPECT_NEAR(std::abs(D(i, j) - D(j, i)), 0.0, 1e-13);  // symmetric
    }
  // Off-diagonal mass contributions carry the imaginary shift: the matrix
  // must genuinely be complex (not accidentally real).
  double imag_mass = 0;
  for (index_t i = 0; i < D.rows(); ++i) imag_mass += std::abs(D(i, i).imag());
  EXPECT_GT(imag_mass, 0.0);
}

/// End-to-end consistency: a dense direct solve of the full coupled system
/// must recover the manufactured solution to machine-level accuracy.
template <class T>
void check_full_system(const SystemParams& params, double tol) {
  auto sys = make_pipe_system<T>(params);
  const index_t nv = sys.nv(), ns = sys.ns(), n = nv + ns;
  Matrix<T> A(n, n);
  // [A_vv, A_sv^T; A_sv, A_ss] dense.
  auto Dv = sys.A_vv.to_dense();
  auto Dc = sys.A_sv.to_dense();
  for (index_t j = 0; j < nv; ++j)
    for (index_t i = 0; i < nv; ++i) A(i, j) = Dv(i, j);
  for (index_t j = 0; j < nv; ++j)
    for (index_t i = 0; i < ns; ++i) {
      A(nv + i, j) = Dc(i, j);
      A(j, nv + i) = Dc(i, j);
    }
  Matrix<T> Ds(ns, ns);
  generator_block(*sys.A_ss, 0, 0, Ds.view());
  for (index_t j = 0; j < ns; ++j)
    for (index_t i = 0; i < ns; ++i) A(nv + i, nv + j) = Ds(i, j);

  Matrix<T> b(n, 1);
  for (index_t i = 0; i < nv; ++i) b(i, 0) = sys.b_v[i];
  for (index_t i = 0; i < ns; ++i) b(nv + i, 0) = sys.b_s[i];
  std::vector<index_t> piv;
  la::lu_factor(A.view(), piv);
  la::lu_solve<T>(A.view(), piv, b.view());

  la::Vector<T> xv(nv), xs(ns);
  for (index_t i = 0; i < nv; ++i) xv[i] = b(i, 0);
  for (index_t i = 0; i < ns; ++i) xs[i] = b(nv + i, 0);
  EXPECT_LT(sys.relative_error(xv, xs), tol);
}

TEST(CoupledSystem, DenseSolveRecoversManufacturedSolutionReal) {
  SystemParams params;
  params.total_unknowns = 1500;
  check_full_system<double>(params, 1e-9);
}

TEST(CoupledSystem, DenseSolveRecoversManufacturedSolutionComplex) {
  SystemParams params;
  params.total_unknowns = 1200;
  params.kappa = 1.2;
  params.sigma_real = 2.5;  // keep A_vv strongly regular at this kappa
  params.sigma_imag = 0.4;
  params.symmetric_bem = false;
  check_full_system<complexd>(params, 1e-9);
}

TEST(CoupledSystem, RelativeErrorMetric) {
  SystemParams params;
  params.total_unknowns = 1000;
  auto sys = make_pipe_system<double>(params);
  EXPECT_NEAR(sys.relative_error(sys.x_v_ref, sys.x_s_ref), 0.0, 1e-15);
  la::Vector<double> xv(sys.nv()), xs(sys.ns());
  for (index_t i = 0; i < sys.nv(); ++i) xv[i] = sys.x_v_ref[i] * 1.01;
  for (index_t i = 0; i < sys.ns(); ++i) xs[i] = sys.x_s_ref[i] * 1.01;
  EXPECT_NEAR(sys.relative_error(xv, xs), 0.01, 1e-6);
}

}  // namespace
}  // namespace cs::fembem
