// Property tests for the packed cache-blocked gemm/trsm kernel engine
// (la/pack.h + la/gemm_kernel.h + the blocked trsm of la/blas.h): both
// dispatch targets are checked against a naive reference over all
// transpose combinations, edge shapes around the register-tile sizes,
// strided sub-views, the alpha/beta special cases, and every trsm
// Side/Uplo/Op/Diag variant. Also pins down the bitwise thread-count
// invariance the parallel solver layers rely on.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "la/blas.h"
#include "la/matrix.h"

namespace cs::la {
namespace {

template <class T>
Matrix<T> random_matrix(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.scalar<T>();
  return a;
}

/// Reference C := beta*C + alpha*op(A)*op(B), straight from the definition.
template <class T>
void naive_gemm(T alpha, ConstMatrixView<T> A, Op opA, ConstMatrixView<T> B,
                Op opB, T beta, MatrixView<T> C) {
  const index_t m = C.rows();
  const index_t n = C.cols();
  const index_t k = (opA == Op::kNoTrans) ? A.cols() : A.rows();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      T acc{};
      for (index_t p = 0; p < k; ++p) {
        const T a = (opA == Op::kNoTrans) ? A(i, p) : A(p, i);
        const T b = (opB == Op::kNoTrans) ? B(p, j) : B(j, p);
        acc += a * b;
      }
      C(i, j) = beta * C(i, j) + alpha * acc;
    }
}

// Per-scalar tolerances: `value` bounds gemm-vs-naive Frobenius rel_diff,
// `trsm` the blocked-vs-unblocked solve (triangular solves amplify roundoff
// by the matrix size, hence the looser bar). The float bars scale the
// double ones by eps_single/eps_double with the same safety margin.
template <class T>
struct tol;
template <>
struct tol<double> {
  static constexpr double value = 1e-13;
  static constexpr double trsm = 1e-11;
};
template <>
struct tol<complexd> {
  static constexpr double value = 1e-13;
  static constexpr double trsm = 1e-11;
};
template <>
struct tol<float> {
  static constexpr double value = 5e-5;
  static constexpr double trsm = 5e-3;
};
template <>
struct tol<complexf> {
  static constexpr double value = 5e-5;
  static constexpr double trsm = 5e-3;
};

template <class T>
class KernelTypedTest : public ::testing::Test {};

using Scalars = ::testing::Types<double, complexd, float, complexf>;
TYPED_TEST_SUITE(KernelTypedTest, Scalars);

constexpr Op kOps[] = {Op::kNoTrans, Op::kTrans};

/// Shapes straddling the micro-tile sizes (mr x nr = 8x4 double, 16x4
/// float, 4x4 complexd, 8x4 complexf), the packed-dispatch threshold, and
/// the cache-block boundaries.
struct Shape {
  index_t m, n, k;
};
const Shape kShapes[] = {
    {1, 1, 1},    {3, 5, 2},     {7, 4, 16},   {8, 8, 16},   {9, 5, 17},
    {16, 12, 1},  {31, 33, 32},  {48, 48, 32}, {65, 63, 40}, {97, 30, 129},
    {129, 97, 8}, {40, 130, 257}};

TYPED_TEST(KernelTypedTest, PackedMatchesNaiveAllOps) {
  using T = TypeParam;
  for (const auto& s : kShapes) {
    // gemm_packed needs real work; skip shapes its dispatch would reject.
    if (!detail::use_packed_gemm(s.m, s.n, s.k)) continue;
    for (Op opA : kOps)
      for (Op opB : kOps) {
        const auto A = (opA == Op::kNoTrans)
                           ? random_matrix<T>(s.m, s.k, 11)
                           : random_matrix<T>(s.k, s.m, 11);
        const auto B = (opB == Op::kNoTrans)
                           ? random_matrix<T>(s.k, s.n, 13)
                           : random_matrix<T>(s.n, s.k, 13);
        Matrix<T> C(s.m, s.n);
        detail::gemm_packed(T{2}, A.view(), opA, B.view(), opB, C.view(),
                            /*parallel=*/false);
        Matrix<T> R(s.m, s.n);
        naive_gemm(T{2}, A.view(), opA, B.view(), opB, T{0}, R.view());
        EXPECT_LT(rel_diff(C.cview(), R.cview()), tol<T>::value)
            << "m=" << s.m << " n=" << s.n << " k=" << s.k;
      }
  }
}

TYPED_TEST(KernelTypedTest, UnpackedMatchesNaiveAllOps) {
  using T = TypeParam;
  for (const auto& s : kShapes) {
    for (Op opA : kOps)
      for (Op opB : kOps) {
        const auto A = (opA == Op::kNoTrans)
                           ? random_matrix<T>(s.m, s.k, 17)
                           : random_matrix<T>(s.k, s.m, 17);
        const auto B = (opB == Op::kNoTrans)
                           ? random_matrix<T>(s.k, s.n, 19)
                           : random_matrix<T>(s.n, s.k, 19);
        Matrix<T> C(s.m, s.n);
        detail::gemm_unpacked(T{1}, A.view(), opA, B.view(), opB, C.view(),
                              /*parallel=*/false);
        Matrix<T> R(s.m, s.n);
        naive_gemm(T{1}, A.view(), opA, B.view(), opB, T{0}, R.view());
        EXPECT_LT(rel_diff(C.cview(), R.cview()), tol<T>::value);
      }
  }
}

TYPED_TEST(KernelTypedTest, DispatchAlphaBetaCases) {
  using T = TypeParam;
  Rng rng(23);
  const T generic = rng.scalar<T>();
  const std::vector<T> alphas = {T{0}, T{1}, T{-1}, generic};
  const std::vector<T> betas = {T{0}, T{1}, T{-1}, generic};
  const Shape shapes[] = {{9, 7, 5}, {48, 48, 32}};
  for (const auto& s : shapes) {
    const auto A = random_matrix<T>(s.m, s.k, 29);
    const auto B = random_matrix<T>(s.k, s.n, 31);
    for (const T& alpha : alphas)
      for (const T& beta : betas) {
        auto C = random_matrix<T>(s.m, s.n, 37);
        auto R = random_matrix<T>(s.m, s.n, 37);
        gemm(alpha, A.view(), Op::kNoTrans, B.view(), Op::kNoTrans, beta,
             C.view());
        naive_gemm(alpha, A.view(), Op::kNoTrans, B.view(), Op::kNoTrans, beta,
                   R.view());
        EXPECT_LT(rel_diff(C.cview(), R.cview()), tol<T>::value);
      }
  }
}

TYPED_TEST(KernelTypedTest, StridedSubviewOperands) {
  using T = TypeParam;
  // All operands are interior blocks of larger arrays, so every view has
  // ld > rows; the pack routines must honor the stride.
  const index_t m = 70, n = 50, k = 90;
  auto Abig = random_matrix<T>(m + 13, k + 7, 41);
  auto Bbig = random_matrix<T>(k + 5, n + 9, 43);
  auto Cbig = random_matrix<T>(m + 3, n + 4, 47);
  auto Rbig = Matrix<T>(m + 3, n + 4);
  Rbig.view().copy_from(Cbig.cview());
  ConstMatrixView<T> A = Abig.block(5, 3, m, k);
  ConstMatrixView<T> B = Bbig.block(2, 6, k, n);
  gemm(T{-1}, A, Op::kNoTrans, B, Op::kNoTrans, T{1},
       Cbig.view().block(1, 2, m, n));
  naive_gemm(T{-1}, A, Op::kNoTrans, B, Op::kNoTrans, T{1},
             Rbig.view().block(1, 2, m, n));
  // Surroundings must be untouched, interior must match: compare wholesale.
  EXPECT_LT(rel_diff(Cbig.cview(), Rbig.cview()), tol<T>::value);

  // Transposed strided operands through the packed path.
  ConstMatrixView<T> At = Abig.block(5, 3, k, m - 10);
  Matrix<T> C2(m - 10, n);
  Matrix<T> R2(m - 10, n);
  gemm(T{1}, At, Op::kTrans, B, Op::kNoTrans, T{0}, C2.view());
  naive_gemm(T{1}, At, Op::kTrans, B, Op::kNoTrans, T{0}, R2.view());
  EXPECT_LT(rel_diff(C2.cview(), R2.cview()), tol<T>::value);
}

TYPED_TEST(KernelTypedTest, EmptyAndRankOneShapes) {
  using T = TypeParam;
  // Degenerate dims must not crash and must leave C consistent; k == 1 is
  // the ACA rank-1 update path and must stay on the unpacked kernel.
  EXPECT_FALSE(detail::use_packed_gemm(500, 500, 1));
  const index_t dims[] = {0, 1};
  for (index_t m : dims)
    for (index_t n : dims)
      for (index_t k : dims) {
        const auto A = random_matrix<T>(m, k, 53);
        const auto B = random_matrix<T>(k, n, 59);
        Matrix<T> C(m, n);
        Matrix<T> R(m, n);
        gemm(T{1}, A.view(), Op::kNoTrans, B.view(), Op::kNoTrans, T{0},
             C.view());
        naive_gemm(T{1}, A.view(), Op::kNoTrans, B.view(), Op::kNoTrans, T{0},
                   R.view());
        EXPECT_LT(rel_diff(C.cview(), R.cview()), tol<T>::value);
      }
  // Tall rank-1 update (the ACA shape).
  const auto u = random_matrix<T>(300, 1, 61);
  const auto v = random_matrix<T>(200, 1, 67);
  Matrix<T> C(300, 200);
  Matrix<T> R(300, 200);
  gemm(T{1}, u.view(), Op::kNoTrans, v.view(), Op::kTrans, T{0}, C.view());
  naive_gemm(T{1}, u.view(), Op::kNoTrans, v.view(), Op::kTrans, T{0},
             R.view());
  EXPECT_LT(rel_diff(C.cview(), R.cview()), tol<T>::value);
}

TYPED_TEST(KernelTypedTest, GemmBitwiseThreadInvariance) {
  using T = TypeParam;
  const auto A = random_matrix<T>(150, 170, 71);
  const auto B = random_matrix<T>(170, 140, 73);
  Matrix<T> C1(150, 140), C4(150, 140);
  {
    ScopedNumThreads one(1);
    gemm(T{1}, A.view(), Op::kNoTrans, B.view(), Op::kNoTrans, T{0},
         C1.view());
  }
  {
    ScopedNumThreads four(4);
    gemm(T{1}, A.view(), Op::kNoTrans, B.view(), Op::kNoTrans, T{0},
         C4.view());
  }
  for (index_t j = 0; j < C1.cols(); ++j)
    for (index_t i = 0; i < C1.rows(); ++i) EXPECT_EQ(C1(i, j), C4(i, j));
}

/// Well-conditioned triangular test matrix: mild off-diagonal entries and
/// a dominant diagonal so residual comparisons stay tight.
template <class T>
Matrix<T> random_triangular(index_t n, Uplo uplo, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const bool stored = (uplo == Uplo::kLower) ? (i >= j) : (i <= j);
      if (!stored) continue;
      a(i, j) = rng.scalar<T>() * T{0.25};
    }
  for (index_t i = 0; i < n; ++i) a(i, i) = T{2} + a(i, i);
  return a;
}

TYPED_TEST(KernelTypedTest, TrsmAllVariantsMatchUnblocked) {
  using T = TypeParam;
  const index_t sizes[] = {1, 7, 33, 64, 65, 97, 130};
  const index_t other = 37;  // crosses the 32-wide slab boundary
  for (index_t n : sizes) {
    for (Uplo uplo : {Uplo::kLower, Uplo::kUpper})
      for (Op op : kOps)
        for (Diag diag : {Diag::kUnit, Diag::kNonUnit})
          for (Side side : {Side::kLeft, Side::kRight}) {
            const auto A = random_triangular<T>(n, uplo, 79 + n);
            const auto B0 = (side == Side::kLeft)
                                ? random_matrix<T>(n, other, 83)
                                : random_matrix<T>(other, n, 83);
            Matrix<T> X(B0.rows(), B0.cols());
            X.view().copy_from(B0.cview());
            trsm(side, uplo, op, diag, A.cview(), X.view());
            Matrix<T> R(B0.rows(), B0.cols());
            R.view().copy_from(B0.cview());
            if (side == Side::kLeft) {
              detail::trsm_left_unblocked(uplo, op, diag, A.cview(), R.view());
            } else {
              detail::trsm_right_unblocked(uplo, op, diag, A.cview(),
                                           R.view());
            }
            EXPECT_LT(rel_diff(X.cview(), R.cview()), tol<T>::trsm)
                << "n=" << n << " uplo=" << (uplo == Uplo::kLower ? "L" : "U")
                << " op=" << (op == Op::kTrans ? "T" : "N")
                << " diag=" << (diag == Diag::kUnit ? "unit" : "nonunit")
                << " side=" << (side == Side::kLeft ? "left" : "right");
          }
  }
}

TYPED_TEST(KernelTypedTest, TrsmRightWideBParallelRegression) {
  using T = TypeParam;
  // The right-side solve parallelizes over row slabs of B; a B much taller
  // than the slab width exercises many independent slabs. Must equal the
  // serial unblocked solve and be bitwise thread-count invariant.
  const index_t n = 97, m = 301;
  const auto A = random_triangular<T>(n, Uplo::kUpper, 89);
  const auto B0 = random_matrix<T>(m, n, 97);
  Matrix<T> X1(m, n), X4(m, n), R(m, n);
  X1.view().copy_from(B0.cview());
  X4.view().copy_from(B0.cview());
  R.view().copy_from(B0.cview());
  {
    ScopedNumThreads one(1);
    trsm(Side::kRight, Uplo::kUpper, Op::kNoTrans, Diag::kNonUnit, A.cview(),
         X1.view());
  }
  {
    ScopedNumThreads four(4);
    trsm(Side::kRight, Uplo::kUpper, Op::kNoTrans, Diag::kNonUnit, A.cview(),
         X4.view());
  }
  detail::trsm_right_unblocked(Uplo::kUpper, Op::kNoTrans, Diag::kNonUnit,
                               A.cview(), R.view());
  EXPECT_LT(rel_diff(X1.cview(), R.cview()), tol<T>::trsm);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_EQ(X1(i, j), X4(i, j));
}

}  // namespace
}  // namespace cs::la
