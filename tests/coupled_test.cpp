// Integration tests of the paper's coupled solution strategies: every
// strategy must recover the manufactured solution of the pipe FEM/BEM
// system within the compression accuracy, on both the real symmetric
// academic case and the complex non-symmetric industrial-like case, and
// the memory/failure accounting must behave like the paper's experiments.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>

#include "common/parallel.h"
#include "coupled/coupled.h"

namespace cs::coupled {
namespace {

using fembem::CoupledSystem;
using fembem::SystemParams;

SystemParams real_params(index_t n) {
  SystemParams p;
  p.total_unknowns = n;
  return p;
}

SystemParams complex_params(index_t n) {
  SystemParams p;
  p.total_unknowns = n;
  p.kappa = 1.0;
  p.sigma_real = 2.0;
  p.sigma_imag = 0.3;
  p.symmetric_bem = false;
  p.extra_surface_ratio = 0.5;
  return p;
}

const CoupledSystem<double>& real_system() {
  static auto sys = fembem::make_pipe_system<double>(real_params(3000));
  return sys;
}

const CoupledSystem<complexd>& complex_system() {
  static auto sys =
      fembem::make_pipe_system<complexd>(complex_params(2200));
  return sys;
}

class StrategySweep : public ::testing::TestWithParam<Strategy> {};

TEST_P(StrategySweep, RealPipeRecoversSolutionWithinEps) {
  Config cfg;
  cfg.strategy = GetParam();
  cfg.eps = 1e-4;
  cfg.n_c = 64;
  cfg.n_S = 160;
  cfg.n_b = 2;
  auto stats = solve_coupled(real_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_LT(stats.relative_error, 1e-3) << strategy_name(GetParam());
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GT(stats.peak_bytes, 0u);
  EXPECT_GT(stats.schur_bytes, 0u);
  EXPECT_EQ(stats.n_total, real_system().total());
}

TEST_P(StrategySweep, ComplexIndustrialRecoversSolutionWithinEps) {
  Config cfg;
  cfg.strategy = GetParam();
  cfg.eps = 1e-4;
  cfg.n_c = 64;
  cfg.n_S = 160;
  cfg.n_b = 2;
  auto stats = solve_coupled(complex_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_LT(stats.relative_error, 1e-3) << strategy_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategySweep,
    ::testing::Values(Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
                      Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
                      Strategy::kMultiFactorization,
                      Strategy::kMultiFactorizationCompressed),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      std::string name = strategy_name(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Coupled, AllStrategiesAgreeWithEachOther) {
  // Beyond matching the manufactured solution, the six strategies must
  // agree pairwise (they compute the same Schur complement by different
  // block schedules).
  Config cfg;
  cfg.eps = 1e-5;
  cfg.n_c = 48;
  cfg.n_S = 96;
  cfg.n_b = 3;
  double err_min = 1e9, err_max = -1e9;
  for (Strategy s :
       {Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
        Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
        Strategy::kMultiFactorization,
        Strategy::kMultiFactorizationCompressed}) {
    cfg.strategy = s;
    auto stats = solve_coupled(real_system(), cfg);
    ASSERT_TRUE(stats.success) << strategy_name(s) << ": " << stats.failure;
    err_min = std::min(err_min, stats.relative_error);
    err_max = std::max(err_max, stats.relative_error);
  }
  // All errors within a band of the compression accuracy.
  EXPECT_LT(err_max, 1e-4);
  EXPECT_GE(err_min, 0.0);
}

TEST(Coupled, CompressedSchurUsesLessMemoryThanDense) {
  Config dense_cfg;
  dense_cfg.strategy = Strategy::kMultiSolve;
  dense_cfg.n_c = 64;
  Config comp_cfg = dense_cfg;
  comp_cfg.strategy = Strategy::kMultiSolveCompressed;
  comp_cfg.n_S = 256;

  auto dense_stats = solve_coupled(real_system(), dense_cfg);
  auto comp_stats = solve_coupled(real_system(), comp_cfg);
  ASSERT_TRUE(dense_stats.success);
  ASSERT_TRUE(comp_stats.success);
  EXPECT_LT(comp_stats.schur_bytes, dense_stats.schur_bytes);
  EXPECT_LT(comp_stats.schur_compression_ratio, 1.0);
}

TEST(Coupled, BudgetFailureIsReportedNotThrown) {
  Config cfg;
  cfg.strategy = Strategy::kAdvancedCoupling;  // the most memory-hungry
  cfg.auto_recover = false;  // feasibility probe: first failure is final
  cfg.memory_budget = MemoryTracker::instance().current() + 4 * 1024 * 1024;
  auto stats = solve_coupled(real_system(), cfg);
  EXPECT_FALSE(stats.success);
  EXPECT_NE(stats.failure.find("memory budget"), std::string::npos);
  EXPECT_EQ(stats.error.code, ErrorCode::kBudget);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_TRUE(stats.recoveries.empty());
  // No tracked leak after the failed run.
  EXPECT_EQ(MemoryTracker::instance().budget(), 0u);
}

TEST(Coupled, MultiSolveWorksForExtremeBlockSizes) {
  for (index_t nc : {1, 7, 100000}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolve;
    cfg.n_c = nc;
    auto stats = solve_coupled(real_system(), cfg);
    ASSERT_TRUE(stats.success) << "n_c=" << nc;
    EXPECT_LT(stats.relative_error, 1e-2);
  }
}

TEST(Coupled, MultiFactorizationBlockCountSweep) {
  for (index_t nb : {1, 2, 4}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiFactorization;
    cfg.n_b = nb;
    auto stats = solve_coupled(real_system(), cfg);
    ASSERT_TRUE(stats.success) << "n_b=" << nb;
    EXPECT_LT(stats.relative_error, 1e-2) << "n_b=" << nb;
  }
}

TEST(Coupled, MoreFactorizationBlocksCostMoreSparseTime) {
  // The defining trade-off of multi-factorization: n_b^2 re-factorizations.
  Config cfg1, cfg4;
  cfg1.strategy = cfg4.strategy = Strategy::kMultiFactorization;
  cfg1.n_b = 1;
  cfg4.n_b = 4;
  auto s1 = solve_coupled(real_system(), cfg1);
  auto s4 = solve_coupled(real_system(), cfg4);
  ASSERT_TRUE(s1.success && s4.success);
  EXPECT_GT(s4.phases.get("sparse_factorization"),
            s1.phases.get("sparse_factorization"));
}

TEST(Coupled, SparseCompressionReducesFactorStorage) {
  Config on, off;
  on.strategy = off.strategy = Strategy::kMultiSolve;
  on.sparse_compression = true;
  on.eps = 1e-2;
  off.sparse_compression = false;
  auto stats_on = solve_coupled(real_system(), on);
  auto stats_off = solve_coupled(real_system(), off);
  ASSERT_TRUE(stats_on.success && stats_off.success);
  EXPECT_LE(stats_on.sparse_factor_bytes, stats_off.sparse_factor_bytes);
}

TEST(Coupled, PhasesCoverTotalTime) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  auto stats = solve_coupled(real_system(), cfg);
  ASSERT_TRUE(stats.success);
  EXPECT_GT(stats.phases.get("sparse_factorization"), 0.0);
  EXPECT_GT(stats.phases.get("schur"), 0.0);
  EXPECT_GT(stats.phases.get("dense_factorization"), 0.0);
  EXPECT_GT(stats.phases.get("solution"), 0.0);
  EXPECT_LE(stats.phases.total(), stats.total_seconds * 1.5 + 0.5);
}

class ThreadSweep : public ::testing::TestWithParam<Strategy> {};

TEST_P(ThreadSweep, ParallelRunIdenticalToSerial) {
  // The task-parallel layer (pipelined multi-solve, leaf-parallel AXPYs,
  // task-parallel H-LU, block-parallel multi-factorization) commits every
  // contribution in the serial order, so a 4-thread run must reproduce the
  // 1-thread result exactly -- not merely within tolerance.
  Config serial, parallel;
  serial.strategy = parallel.strategy = GetParam();
  serial.eps = parallel.eps = 1e-4;
  serial.n_c = parallel.n_c = 64;
  serial.n_S = parallel.n_S = 160;
  serial.n_b = parallel.n_b = 3;
  serial.num_threads = 1;
  parallel.num_threads = 4;
  auto ss = solve_coupled(real_system(), serial);
  auto sp = solve_coupled(real_system(), parallel);
  ASSERT_TRUE(ss.success) << ss.failure;
  ASSERT_TRUE(sp.success) << sp.failure;
  EXPECT_EQ(ss.relative_error, sp.relative_error)
      << strategy_name(GetParam());
  EXPECT_EQ(ss.schur_bytes, sp.schur_bytes);
  // Without a budget every worker may hold its own job transients, so the
  // parallel peak is bounded by the worker count times the serial peak;
  // budgeted runs are covered by the admission/failure tests below.
  EXPECT_LT(static_cast<double>(sp.peak_bytes),
            4.0 * static_cast<double>(ss.peak_bytes) + (1 << 20));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ThreadSweep,
    ::testing::Values(Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
                      Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
                      Strategy::kMultiFactorization,
                      Strategy::kMultiFactorizationCompressed,
                      Strategy::kMultiSolveRandomized),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      std::string name = strategy_name(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Coupled, BudgetFailureInParallelWorkersIsReportedNotThrown) {
  // BudgetExceeded raised inside pipeline / task workers must surface as
  // the same clean stats.failure a serial run produces -- never escape an
  // OpenMP region or leak tracked memory.
  const auto& sys = real_system();  // materialize the lazy static first
  const std::size_t before = MemoryTracker::instance().current();
  for (Strategy s : {Strategy::kMultiSolveCompressed,
                     Strategy::kMultiFactorizationCompressed}) {
    Config cfg;
    cfg.strategy = s;
    cfg.auto_recover = false;  // the point is the failure path itself
    cfg.num_threads = 4;
    cfg.n_b = 3;
    cfg.memory_budget =
        MemoryTracker::instance().current() + 2 * 1024 * 1024;
    auto stats = solve_coupled(sys, cfg);
    EXPECT_FALSE(stats.success) << strategy_name(s);
    EXPECT_NE(stats.failure.find("memory budget"), std::string::npos)
        << strategy_name(s) << ": " << stats.failure;
    EXPECT_EQ(stats.error.code, ErrorCode::kBudget) << strategy_name(s);
    EXPECT_EQ(MemoryTracker::instance().budget(), 0u);
  }
  EXPECT_EQ(MemoryTracker::instance().current(), before);
}

TEST(Coupled, IterativeRefinementRecoversAccuracy) {
  Config coarse;
  coarse.strategy = Strategy::kMultiSolveCompressed;
  coarse.eps = 1e-2;  // aggressive compression
  auto no_refine = solve_coupled(real_system(), coarse);
  ASSERT_TRUE(no_refine.success);

  Config refined = coarse;
  refined.refine_iterations = 2;
  auto with_refine = solve_coupled(real_system(), refined);
  ASSERT_TRUE(with_refine.success);

  EXPECT_LT(with_refine.relative_error, no_refine.relative_error / 10);
  EXPECT_LT(with_refine.relative_error, 1e-5);
}

TEST(Coupled, RefinementWorksForEveryStrategy) {
  for (Strategy s :
       {Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
        Strategy::kMultiFactorizationCompressed}) {
    Config cfg;
    cfg.strategy = s;
    cfg.eps = 1e-2;
    cfg.refine_iterations = 1;
    auto stats = solve_coupled(real_system(), cfg);
    ASSERT_TRUE(stats.success) << strategy_name(s);
    EXPECT_LT(stats.relative_error, 1e-3) << strategy_name(s);
  }
}

TEST(Coupled, RandomizedSchurSolvesAtLooseAccuracy) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveRandomized;
  cfg.eps = 1e-2;
  auto stats = solve_coupled(real_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_GT(stats.randomized_rank, 0);
  EXPECT_LT(stats.relative_error, 5e-2);
}

TEST(Coupled, RandomizedSchurAdaptiveRankGrowsWithAccuracy) {
  Config loose, tight;
  loose.strategy = tight.strategy = Strategy::kMultiSolveRandomized;
  loose.eps = 1e-1;
  tight.eps = 1e-3;
  auto s_loose = solve_coupled(real_system(), loose);
  auto s_tight = solve_coupled(real_system(), tight);
  ASSERT_TRUE(s_loose.success && s_tight.success);
  EXPECT_LE(s_loose.randomized_rank, s_tight.randomized_rank);
}

TEST(Coupled, RandomizedSchurComplexSystem) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveRandomized;
  cfg.eps = 1e-2;
  cfg.refine_iterations = 1;
  auto stats = solve_coupled(complex_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_LT(stats.relative_error, 1e-3);
}

TEST(Coupled, SymmetricHLdltModeMatchesHLu) {
  Config lu_cfg, ldlt_cfg;
  lu_cfg.strategy = ldlt_cfg.strategy = Strategy::kMultiSolveCompressed;
  lu_cfg.eps = ldlt_cfg.eps = 1e-4;
  ldlt_cfg.hmat_symmetric_ldlt = true;
  auto s_lu = solve_coupled(real_system(), lu_cfg);
  auto s_ldlt = solve_coupled(real_system(), ldlt_cfg);
  ASSERT_TRUE(s_lu.success && s_ldlt.success) << s_ldlt.failure;
  EXPECT_LT(s_ldlt.relative_error, 1e-3);
  // Both factorizations deliver the same accuracy class.
  EXPECT_LT(s_ldlt.relative_error / std::max(s_lu.relative_error, 1e-16),
            50.0);
}

TEST(Coupled, LdltToggleIsIgnoredForUnsymmetricSystems) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.eps = 1e-4;
  cfg.hmat_symmetric_ldlt = true;  // must silently fall back to H-LU
  auto stats = solve_coupled(complex_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_LT(stats.relative_error, 1e-3);
}

// -- resilience: the degrade-and-retry driver -------------------------------

TEST(Resilience, BudgetDegradationHalvesPanelsUntilTheRunFits) {
  // The acceptance scenario: a budget that the seed panel width blows
  // through must be recovered automatically by halving n_c, with the
  // recovery trail recorded.
  const auto& sys = real_system();
  Config probe;
  probe.strategy = Strategy::kMultiSolve;
  probe.n_c = 8;
  auto base = solve_coupled(sys, probe);
  ASSERT_TRUE(base.success) << base.failure;

  Config cfg = probe;
  cfg.n_c = 512;  // the Y panel alone exceeds the headroom below
  cfg.memory_budget = base.peak_bytes + 1024 * 1024;

  Config no_recover = cfg;
  no_recover.auto_recover = false;
  auto failed = solve_coupled(sys, no_recover);
  ASSERT_FALSE(failed.success) << "budget chosen too loose for the test";
  EXPECT_EQ(failed.error.code, ErrorCode::kBudget);

  auto stats = solve_coupled(sys, cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_GT(stats.attempts, 1);
  ASSERT_FALSE(stats.recoveries.empty());
  for (const auto& rec : stats.recoveries) {
    EXPECT_EQ(rec.action, "halve_panels");
    EXPECT_EQ(rec.error, "budget");
  }
  EXPECT_LT(stats.relative_error, 1e-2);
}

TEST(Resilience, HldltBreakdownFallsBackToHlu) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.eps = 1e-4;
  cfg.hmat_symmetric_ldlt = true;
  cfg.failpoints = "hldlt.pivot=once";
  auto stats = solve_coupled(real_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_EQ(stats.attempts, 2);
  ASSERT_EQ(stats.recoveries.size(), 1u);
  EXPECT_EQ(stats.recoveries[0].action, "hldlt_to_hlu");
  EXPECT_EQ(stats.recoveries[0].error, "numerical_breakdown");
  EXPECT_LT(stats.relative_error, 1e-3);
}

TEST(Resilience, TransientOocWriteFailureRetriesInPlace) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolve;
  cfg.out_of_core = true;
  cfg.failpoints = "ooc.write=once";
  auto stats = solve_coupled(real_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  // The spill retried inside the sparse solver: no driver-level attempt.
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_GE(stats.counters.count("ooc.retries"), 1u);
  EXPECT_LT(stats.relative_error, 1e-2);
}

TEST(Resilience, PersistentSpillFailureKeepsPanelsInCore) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolve;
  cfg.out_of_core = true;
  cfg.failpoints = "ooc.write=always";
  auto stats = solve_coupled(real_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_GE(stats.counters["ooc.incore_fallbacks"], 1.0);
  EXPECT_LT(stats.relative_error, 1e-2);
}

TEST(Resilience, TransientOocReadFailureRetriesInPlace) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolve;
  cfg.out_of_core = true;
  cfg.failpoints = "ooc.read=once";
  auto stats = solve_coupled(real_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_LT(stats.relative_error, 1e-2);
}

TEST(Resilience, PersistentOocReadFailureDisablesOoc) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolve;
  cfg.out_of_core = true;
  cfg.failpoints = "ooc.read=always";
  auto stats = solve_coupled(real_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_EQ(stats.attempts, 2);
  ASSERT_FALSE(stats.recoveries.empty());
  EXPECT_EQ(stats.recoveries[0].action, "disable_ooc");
  EXPECT_EQ(stats.recoveries[0].error, "io");
  EXPECT_LT(stats.relative_error, 1e-2);
}

TEST(Resilience, RecoveryDisabledReportsFirstFailure) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.hmat_symmetric_ldlt = true;
  cfg.auto_recover = false;
  cfg.failpoints = "hldlt.pivot=once";
  auto stats = solve_coupled(real_system(), cfg);
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.error.code, ErrorCode::kNumericalBreakdown);
  EXPECT_EQ(stats.error.site, "hldlt.pivot");
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_TRUE(stats.recoveries.empty());
}

// -- factor once, solve many ------------------------------------------------

// RHS block whose column j is (j+1) times the system's built-in RHS, so
// column j of the exact solution is (j+1) times the manufactured one.
template <class T>
la::Matrix<T> scaled_rhs(const la::Vector<T>& b, index_t nrhs) {
  la::Matrix<T> B(b.size(), nrhs);
  for (index_t j = 0; j < nrhs; ++j)
    for (index_t i = 0; i < b.size(); ++i)
      B(i, j) = T(double(j + 1)) * b[i];
  return B;
}

template <class T>
void expect_column_bitwise_equal(const la::Matrix<T>& A, index_t ja,
                                 const la::Matrix<T>& B, index_t jb) {
  ASSERT_EQ(A.rows(), B.rows());
  ASSERT_EQ(std::memcmp(A.data() + static_cast<std::size_t>(ja) * A.rows(),
                        B.data() + static_cast<std::size_t>(jb) * B.rows(),
                        static_cast<std::size_t>(A.rows()) * sizeof(T)),
            0);
}

class FactoredSweep : public ::testing::TestWithParam<Strategy> {};

TEST_P(FactoredSweep, MultiRhsMatchesIndependentSingleRhsBitwise) {
  // The acceptance bar of the phase split: one factorization, a block of
  // right-hand sides, and every column bitwise identical to the same
  // column solved alone -- even when the batch runs at a different thread
  // count (every solution kernel accumulates each column independently in
  // a fixed scan order).
  const auto& sys = real_system();
  Config cfg;
  cfg.strategy = GetParam();
  cfg.eps = 1e-4;
  cfg.n_c = 64;
  cfg.n_S = 160;
  cfg.n_b = 2;
  auto f = factorize_coupled(sys, cfg);
  ASSERT_TRUE(f.ok()) << f.stats().failure;
  ASSERT_TRUE(f.stats().success);
  EXPECT_EQ(f.stats().nrhs, 0);
  EXPECT_EQ(f.nv(), sys.nv());
  EXPECT_EQ(f.ns(), sys.ns());

  // Wide enough to cross the packed-gemm dispatch boundary (historically
  // n >= 8): batch width must never change which kernel a column sees.
  const index_t nrhs = 9;
  la::Matrix<double> Xv = scaled_rhs(sys.b_v, nrhs);
  la::Matrix<double> Xs = scaled_rhs(sys.b_s, nrhs);
  SolveStats batch;
  {
    ScopedNumThreads threads(4);
    batch = f.solve(Xv.view(), Xs.view());
  }
  ASSERT_TRUE(batch.success) << batch.failure;
  EXPECT_EQ(batch.nrhs, nrhs);

  for (index_t j = 0; j < nrhs; ++j) {
    la::Matrix<double> bv(sys.nv(), 1), bs(sys.ns(), 1);
    for (index_t i = 0; i < sys.nv(); ++i)
      bv(i, 0) = double(j + 1) * sys.b_v[i];
    for (index_t i = 0; i < sys.ns(); ++i)
      bs(i, 0) = double(j + 1) * sys.b_s[i];
    ScopedNumThreads threads(1);
    auto single = f.solve(bv.view(), bs.view());
    ASSERT_TRUE(single.success) << single.failure;
    EXPECT_EQ(single.nrhs, 1);
    expect_column_bitwise_equal(Xv, j, bv, 0);
    expect_column_bitwise_equal(Xs, j, bs, 0);
  }

  // The batch is not just self-consistent: each column solves the system.
  la::Vector<double> xv(sys.nv()), xs(sys.ns());
  for (index_t i = 0; i < sys.nv(); ++i) xv[i] = Xv(i, nrhs - 1) / nrhs;
  for (index_t i = 0; i < sys.ns(); ++i) xs[i] = Xs(i, nrhs - 1) / nrhs;
  // The randomized Schur approximation is held to its own looser accuracy
  // class (see RandomizedSchurSolvesAtLooseAccuracy).
  const double tol =
      GetParam() == Strategy::kMultiSolveRandomized ? 5e-2 : 1e-3;
  EXPECT_LT(sys.relative_error(xv, xs), tol) << strategy_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, FactoredSweep,
    ::testing::Values(Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
                      Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
                      Strategy::kMultiFactorization,
                      Strategy::kMultiFactorizationCompressed,
                      Strategy::kMultiSolveRandomized),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      std::string name = strategy_name(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(FactoredCoupled, ConcurrentSolvesOnSharedFactorizationMatchSerial) {
  // FactoredCoupled::solve is const and must be callable from several
  // threads on one shared factorization (the TSan job runs this test).
  // Each worker gets its own scaled RHS; results must match the serial
  // answers bitwise.
  const auto& sys = real_system();
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.eps = 1e-4;
  cfg.refine_iterations = 1;  // refinement re-applies shared operators
  auto f = factorize_coupled(sys, cfg);
  ASSERT_TRUE(f.ok()) << f.stats().failure;

  constexpr index_t kWorkers = 4;
  std::vector<la::Matrix<double>> serial_v, serial_s;
  for (index_t t = 0; t < kWorkers; ++t) {
    serial_v.push_back(scaled_rhs(sys.b_v, 2));
    serial_s.push_back(scaled_rhs(sys.b_s, 2));
    auto stats = f.solve(serial_v[t].view(), serial_s[t].view());
    ASSERT_TRUE(stats.success) << stats.failure;
  }

  std::vector<la::Matrix<double>> conc_v, conc_s;
  for (index_t t = 0; t < kWorkers; ++t) {
    conc_v.push_back(scaled_rhs(sys.b_v, 2));
    conc_s.push_back(scaled_rhs(sys.b_s, 2));
  }
  std::vector<SolveStats> stats(kWorkers);
  std::vector<std::thread> workers;
  for (index_t t = 0; t < kWorkers; ++t)
    workers.emplace_back([&, t] {
      stats[t] = f.solve(conc_v[t].view(), conc_s[t].view());
    });
  for (auto& w : workers) w.join();

  for (index_t t = 0; t < kWorkers; ++t) {
    ASSERT_TRUE(stats[t].success) << "worker " << t << ": "
                                  << stats[t].failure;
    for (index_t j = 0; j < 2; ++j) {
      expect_column_bitwise_equal(conc_v[t], j, serial_v[t], j);
      expect_column_bitwise_equal(conc_s[t], j, serial_s[t], j);
    }
  }
}

TEST(FactoredCoupled, ConcurrentSolvesWithOutOfCorePanelsAreSafe) {
  // OOC panel loads share one FILE* across concurrent solves; the store
  // serializes seek+read, so concurrent solves must still be correct.
  const auto& sys = real_system();
  Config cfg;
  cfg.strategy = Strategy::kMultiSolve;
  cfg.out_of_core = true;
  auto f = factorize_coupled(sys, cfg);
  ASSERT_TRUE(f.ok()) << f.stats().failure;

  la::Matrix<double> ref_v = scaled_rhs(sys.b_v, 1);
  la::Matrix<double> ref_s = scaled_rhs(sys.b_s, 1);
  ASSERT_TRUE(f.solve(ref_v.view(), ref_s.view()).success);

  constexpr int kWorkers = 4;
  std::vector<la::Matrix<double>> v, s;
  for (int t = 0; t < kWorkers; ++t) {
    v.push_back(scaled_rhs(sys.b_v, 1));
    s.push_back(scaled_rhs(sys.b_s, 1));
  }
  std::vector<SolveStats> stats(kWorkers);
  std::vector<std::thread> workers;
  for (int t = 0; t < kWorkers; ++t)
    workers.emplace_back(
        [&, t] { stats[t] = f.solve(v[t].view(), s[t].view()); });
  for (auto& w : workers) w.join();
  for (int t = 0; t < kWorkers; ++t) {
    ASSERT_TRUE(stats[t].success) << stats[t].failure;
    expect_column_bitwise_equal(v[t], 0, ref_v, 0);
    expect_column_bitwise_equal(s[t], 0, ref_s, 0);
  }
}

TEST(FactoredCoupled, RefinementReportsPerColumnResiduals) {
  const auto& sys = real_system();
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.eps = 1e-2;
  cfg.refine_iterations = 2;
  auto f = factorize_coupled(sys, cfg);
  ASSERT_TRUE(f.ok()) << f.stats().failure;

  const index_t nrhs = 3;
  la::Matrix<double> Bv = scaled_rhs(sys.b_v, nrhs);
  la::Matrix<double> Bs = scaled_rhs(sys.b_s, nrhs);
  auto stats = f.solve(Bv.view(), Bs.view());
  ASSERT_TRUE(stats.success) << stats.failure;
  ASSERT_EQ(stats.refine_residuals.size(), static_cast<std::size_t>(nrhs));
  for (double r : stats.refine_residuals) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1e-3);
  }
}

TEST(Coupled, SolveCoupledIsTheOneRhsWrapper) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolve;
  cfg.refine_iterations = 1;
  auto stats = solve_coupled(real_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_EQ(stats.nrhs, 1);
  ASSERT_EQ(stats.refine_residuals.size(), 1u);
  EXPECT_LT(stats.refine_residuals[0], 1e-3);
}

TEST(FactoredCoupled, ComplexSystemFactorizeThenSolve) {
  const auto& sys = complex_system();
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.eps = 1e-4;
  auto f = factorize_coupled(sys, cfg);
  ASSERT_TRUE(f.ok()) << f.stats().failure;
  la::Matrix<complexd> Bv = scaled_rhs(sys.b_v, 2);
  la::Matrix<complexd> Bs = scaled_rhs(sys.b_s, 2);
  auto stats = f.solve(Bv.view(), Bs.view());
  ASSERT_TRUE(stats.success) << stats.failure;
  la::Vector<complexd> xv(sys.nv()), xs(sys.ns());
  for (index_t i = 0; i < sys.nv(); ++i) xv[i] = Bv(i, 1) / 2.0;
  for (index_t i = 0; i < sys.ns(); ++i) xs[i] = Bs(i, 1) / 2.0;
  EXPECT_LT(sys.relative_error(xv, xs), 1e-3);
}

TEST(FactoredCoupled, UnfactoredOrFailedHandleRefusesToSolveCleanly) {
  FactoredCoupled<double> empty;
  EXPECT_FALSE(empty.ok());
  la::Matrix<double> b(1, 1);
  auto stats = empty.solve(b.view(), b.view());
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.error.code, ErrorCode::kInternal);

  // An invalid config yields a handle carrying the classified error and
  // the same clean refusal.
  Config bad;
  bad.n_S = 0;
  auto f = factorize_coupled(real_system(), bad);
  EXPECT_FALSE(f.ok());
  EXPECT_FALSE(f.stats().success);
  EXPECT_EQ(f.stats().error.code, ErrorCode::kInternal);
  auto s2 = f.solve(b.view(), b.view());
  EXPECT_FALSE(s2.success);
  EXPECT_EQ(s2.error.code, ErrorCode::kInternal);
}

TEST(FactoredCoupled, ShapeMismatchIsReportedNotUndefined) {
  const auto& sys = real_system();
  Config cfg;
  cfg.strategy = Strategy::kMultiSolve;
  auto f = factorize_coupled(sys, cfg);
  ASSERT_TRUE(f.ok()) << f.stats().failure;
  la::Matrix<double> Bv(sys.nv(), 2), Bs(sys.ns(), 3);
  auto stats = f.solve(Bv.view(), Bs.view());
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.error.code, ErrorCode::kInternal);
  la::Matrix<double> short_v(sys.nv() - 1, 1), bs1(sys.ns(), 1);
  auto s2 = f.solve(short_v.view(), bs1.view());
  EXPECT_FALSE(s2.success);
}

TEST(ConfigValidation, BlockingParametersAuditedPerStrategy) {
  Config c;
  c.n_S = 0;
  EXPECT_FALSE(validate_config(c).empty());
  c.n_S = 1;
  c.n_c = 0;
  EXPECT_FALSE(validate_config(c).empty());

  // The compressed multi-solve consumes n_S and rejects n_S < n_c ...
  Config ms;
  ms.strategy = Strategy::kMultiSolveCompressed;
  ms.n_c = 64;
  ms.n_S = 32;
  EXPECT_FALSE(validate_config(ms).empty());

  // ... while the randomized strategy ignores n_c/n_S/n_b entirely (its
  // blocking is the adaptive sample size), so the same values pass.
  Config r = ms;
  r.strategy = Strategy::kMultiSolveRandomized;
  EXPECT_TRUE(validate_config(r).empty());
}

// -- mixed precision: float factors, double refinement ----------------------

double worst_residual(const SolveStats& stats) {
  double worst = 0;
  for (double r : stats.refine_residuals) worst = std::max(worst, r);
  return worst;
}

class MixedPrecisionSweep : public ::testing::TestWithParam<Strategy> {};

TEST_P(MixedPrecisionSweep, SingleFactorsReachDoubleLevelResiduals) {
  // The paper's mixed-precision bar: factors stored and applied in float,
  // double-precision refinement against the exact operators, and the final
  // residual within 10x of the all-double run (with the refinement target
  // as a floor -- both runs early-exit once they meet it).
  Config dbl;
  dbl.strategy = GetParam();
  dbl.eps = 1e-4;
  dbl.n_c = 64;
  dbl.n_S = 160;
  dbl.n_b = 2;
  dbl.refine_iterations = 6;
  dbl.refine_tolerance = 1e-9;
  auto sd = solve_coupled(real_system(), dbl);
  ASSERT_TRUE(sd.success) << sd.failure;

  Config sgl = dbl;
  sgl.factor_precision = Precision::kSingle;
  auto ss = solve_coupled(real_system(), sgl);
  ASSERT_TRUE(ss.success) << ss.failure;
  EXPECT_EQ(ss.factor_precision, Precision::kSingle)
      << "escalated: " << strategy_name(GetParam());
  EXPECT_GE(ss.refine_sweeps, 1);
  EXPECT_LT(ss.relative_error, 1e-3) << strategy_name(GetParam());
  EXPECT_LT(worst_residual(ss),
            10.0 * std::max(worst_residual(sd), dbl.refine_tolerance))
      << strategy_name(GetParam());
  // Float factors buy the paper's memory headroom.
  ASSERT_GT(sd.factor_bytes, 0u);
  EXPECT_LT(ss.factor_bytes, sd.factor_bytes) << strategy_name(GetParam());
}

TEST_P(MixedPrecisionSweep, ComplexSystemSingleFactorsStayAccurate) {
  Config cfg;
  cfg.strategy = GetParam();
  cfg.eps = 1e-4;
  cfg.n_c = 64;
  cfg.n_S = 160;
  cfg.n_b = 2;
  // Each sweep applies the exact (uncompressed) BEM generator, the
  // dominant cost on the complex system; a 1e-6 target early-exits well
  // past the 1e-3 accuracy bar below.
  cfg.refine_iterations = 4;
  cfg.refine_tolerance = 1e-6;
  cfg.factor_precision = Precision::kSingle;
  auto stats = solve_coupled(complex_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_LT(stats.relative_error, 1e-3) << strategy_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, MixedPrecisionSweep,
    ::testing::Values(Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
                      Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
                      Strategy::kMultiFactorization,
                      Strategy::kMultiFactorizationCompressed,
                      Strategy::kMultiSolveRandomized),
    [](const ::testing::TestParamInfo<Strategy>& info) {
      std::string name = strategy_name(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Coupled, SingleFactorsRoughlyHalveFactorStorage) {
  // Dense Schur + uncompressed multifrontal: every factor byte is a raw
  // scalar, so single precision stores about half of what double does.
  Config dbl;
  dbl.strategy = Strategy::kMultiSolve;
  dbl.sparse_compression = false;
  dbl.refine_iterations = 3;
  Config sgl = dbl;
  sgl.factor_precision = Precision::kSingle;
  auto sd = solve_coupled(real_system(), dbl);
  auto ss = solve_coupled(real_system(), sgl);
  ASSERT_TRUE(sd.success && ss.success);
  ASSERT_GT(sd.factor_bytes, 0u);
  EXPECT_LT(static_cast<double>(ss.factor_bytes),
            0.6 * static_cast<double>(sd.factor_bytes));
}

TEST(ConfigValidation, SingleFactorsRequireRefinement) {
  Config c;
  c.factor_precision = Precision::kSingle;
  c.refine_iterations = 0;
  EXPECT_FALSE(validate_config(c).empty());
  c.refine_iterations = 1;
  EXPECT_TRUE(validate_config(c).empty());
  c.refine_tolerance = -1e-9;
  EXPECT_FALSE(validate_config(c).empty());
}

// A missing or unwritable spill directory must reject the config up front
// as a structured I/O error — not surface as "ooc.open" mid-factorization
// at first spill. (The serving daemon validates config at startup.)
TEST(ConfigValidation, BadOocDirFailsFastAsIoError) {
  Config c;
  c.out_of_core = true;
  c.ooc_dir = "/nonexistent/cs_ooc_probe";
  const std::string problem = validate_config(c);
  ASSERT_FALSE(problem.empty());
  EXPECT_NE(problem.find("ooc_dir"), std::string::npos);

  c.auto_recover = false;  // the dir never appears; no point retrying
  auto stats = solve_coupled(real_system(), c);
  ASSERT_FALSE(stats.success);
  EXPECT_EQ(stats.error.code, ErrorCode::kIo);
  EXPECT_EQ(stats.error.site, "ooc.dir");

  c.ooc_dir = ::testing::TempDir();
  EXPECT_TRUE(validate_config(c).empty()) << validate_config(c);
}

TEST(Resilience, ForcedRefineStallEscalatesToDoubleFactors) {
  // The precision-escalation rung: a refinement plateau under single
  // factors re-factorizes in double. The failpoint forces the plateau on
  // the first attempt; the retry must report the escalated precision.
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.eps = 1e-4;
  cfg.factor_precision = Precision::kSingle;
  cfg.refine_iterations = 2;
  cfg.failpoints = "refine.stall=once";
  auto stats = solve_coupled(real_system(), cfg);
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_EQ(stats.attempts, 2);
  ASSERT_EQ(stats.recoveries.size(), 1u);
  EXPECT_EQ(stats.recoveries[0].action, "precision_escalate");
  EXPECT_EQ(stats.recoveries[0].error, "numerical_breakdown");
  EXPECT_EQ(stats.factor_precision, Precision::kDouble);
  EXPECT_LT(stats.relative_error, 1e-3);
}

TEST(Resilience, RefineStallWithoutRecoveryIsClassified) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolve;
  cfg.factor_precision = Precision::kSingle;
  cfg.refine_iterations = 1;
  cfg.auto_recover = false;
  cfg.failpoints = "refine.stall=once";
  auto stats = solve_coupled(real_system(), cfg);
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.error.code, ErrorCode::kNumericalBreakdown);
  EXPECT_EQ(stats.error.site, "refine.stall");
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_TRUE(stats.recoveries.empty());
}

TEST(FactoredCoupled, MixedPrecisionFactorizeThenSolve) {
  const auto& sys = real_system();
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.eps = 1e-4;
  cfg.factor_precision = Precision::kSingle;
  cfg.refine_iterations = 4;
  cfg.refine_tolerance = 1e-9;
  auto f = factorize_coupled(sys, cfg);
  ASSERT_TRUE(f.ok()) << f.stats().failure;
  EXPECT_EQ(f.stats().factor_precision, Precision::kSingle);

  la::Matrix<double> Bv = scaled_rhs(sys.b_v, 2);
  la::Matrix<double> Bs = scaled_rhs(sys.b_s, 2);
  auto stats = f.solve(Bv.view(), Bs.view());
  ASSERT_TRUE(stats.success) << stats.failure;
  EXPECT_EQ(stats.factor_precision, Precision::kSingle);
  EXPECT_GE(stats.refine_sweeps, 1);
  la::Vector<double> xv(sys.nv()), xs(sys.ns());
  for (index_t i = 0; i < sys.nv(); ++i) xv[i] = Bv(i, 1) / 2.0;
  for (index_t i = 0; i < sys.ns(); ++i) xs[i] = Bs(i, 1) / 2.0;
  EXPECT_LT(sys.relative_error(xv, xs), 1e-3);
}

TEST(FactoredCoupled, ConcurrentMixedPrecisionSolvesMatchSerial) {
  // The TSan target for the mixed path: concurrent solves down-convert
  // RHS blocks and refine through the shared float factors; results must
  // match the serial answers bitwise.
  const auto& sys = real_system();
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  cfg.eps = 1e-4;
  cfg.factor_precision = Precision::kSingle;
  cfg.refine_iterations = 2;
  auto f = factorize_coupled(sys, cfg);
  ASSERT_TRUE(f.ok()) << f.stats().failure;

  constexpr index_t kWorkers = 4;
  std::vector<la::Matrix<double>> serial_v, serial_s;
  for (index_t t = 0; t < kWorkers; ++t) {
    serial_v.push_back(scaled_rhs(sys.b_v, 2));
    serial_s.push_back(scaled_rhs(sys.b_s, 2));
    auto stats = f.solve(serial_v[t].view(), serial_s[t].view());
    ASSERT_TRUE(stats.success) << stats.failure;
  }

  std::vector<la::Matrix<double>> conc_v, conc_s;
  for (index_t t = 0; t < kWorkers; ++t) {
    conc_v.push_back(scaled_rhs(sys.b_v, 2));
    conc_s.push_back(scaled_rhs(sys.b_s, 2));
  }
  std::vector<SolveStats> stats(kWorkers);
  std::vector<std::thread> workers;
  for (index_t t = 0; t < kWorkers; ++t)
    workers.emplace_back([&, t] {
      stats[t] = f.solve(conc_v[t].view(), conc_s[t].view());
    });
  for (auto& w : workers) w.join();

  for (index_t t = 0; t < kWorkers; ++t) {
    ASSERT_TRUE(stats[t].success) << "worker " << t << ": "
                                  << stats[t].failure;
    for (index_t j = 0; j < 2; ++j) {
      expect_column_bitwise_equal(conc_v[t], j, serial_v[t], j);
      expect_column_bitwise_equal(conc_s[t], j, serial_s[t], j);
    }
  }
}

TEST(Coupled, StrategyNamesAreUnique) {
  std::set<std::string> names;
  for (Strategy s :
       {Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
        Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
        Strategy::kMultiFactorization,
        Strategy::kMultiFactorizationCompressed,
        Strategy::kMultiSolveRandomized})
    names.insert(strategy_name(s));
  EXPECT_EQ(names.size(), 7u);
}

}  // namespace
}  // namespace cs::coupled
