// Tests for the symmetric H-LDL^T factorization (the faithful analogue of
// the paper's HMAT symmetric mode).
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "fembem/bem.h"
#include "hmat/hmatrix.h"
#include "la/blas.h"

namespace cs::hmat {
namespace {

using la::ConstMatrixView;
using la::Matrix;
using la::rel_diff;

/// Symmetric kernel operator on a cylinder surface (real or complex
/// symmetric), strongly regular.
template <class T>
std::pair<std::vector<Point3>, std::unique_ptr<fembem::BemGenerator<T>>>
make_operator(index_t nt, index_t nz, double k) {
  fembem::PipeParams pp;
  pp.n_theta = nt;
  pp.n_axial = nz;
  pp.n_radial = 3;
  auto mesh = fembem::make_pipe_mesh(pp);
  auto surface = fembem::make_bem_surface(mesh);
  auto pts = surface.points;
  auto gen = std::make_unique<fembem::BemGenerator<T>>(std::move(surface), k,
                                                       /*symmetric=*/true);
  return {std::move(pts), std::move(gen)};
}

template <class T>
Matrix<T> dense_tree_ordered(const MatrixGenerator<T>& gen,
                             const ClusterTree& tree) {
  Matrix<T> d(gen.rows(), gen.cols());
  const auto& o = tree.original_of_tree();
  for (index_t j = 0; j < gen.cols(); ++j)
    for (index_t i = 0; i < gen.rows(); ++i)
      d(i, j) = gen.entry(o[static_cast<std::size_t>(i)],
                          o[static_cast<std::size_t>(j)]);
  return d;
}

template <class T>
class HLdltTypedTest : public ::testing::Test {};
using Scalars = ::testing::Types<double, complexd>;
TYPED_TEST_SUITE(HLdltTypedTest, Scalars);

TYPED_TEST(HLdltTypedTest, SolveMatchesDenseReference) {
  using T = TypeParam;
  auto [pts, gen] = make_operator<T>(16, 22, is_complex_v<T> ? 1.5 : 0.0);
  ClusterTree tree(pts, 24);
  HOptions opt;
  opt.eps = 1e-9;
  auto H = HMatrix<T>::assemble(tree, tree, *gen, opt);
  auto ref = dense_tree_ordered<T>(*gen, tree);

  const index_t n = H.rows();
  Rng rng(3);
  Matrix<T> X(n, 2);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) X(i, j) = rng.scalar<T>();
  Matrix<T> B(n, 2);
  la::gemm(T{1}, ConstMatrixView<T>(ref.view()), la::Op::kNoTrans,
           ConstMatrixView<T>(X.view()), la::Op::kNoTrans, T{0}, B.view());

  H.ldlt_factorize();
  EXPECT_TRUE(H.factored());
  H.solve(B.view());
  EXPECT_LT(rel_diff<T>(B.view(), X.view()), 1e-5);
}

TEST(HLdlt, AgreesWithHLu) {
  auto [pts, gen] = make_operator<double>(14, 18, 0.0);
  ClusterTree tree(pts, 24);
  HOptions opt;
  opt.eps = 1e-8;

  const index_t n = static_cast<index_t>(pts.size());
  Rng rng(5);
  Matrix<double> B0(n, 1);
  for (index_t i = 0; i < n; ++i) B0(i, 0) = rng.uniform(-1, 1);

  auto H1 = HMatrix<double>::assemble(tree, tree, *gen, opt);
  H1.ldlt_factorize();
  Matrix<double> x_ldlt = B0;
  H1.solve(x_ldlt.view());

  auto H2 = HMatrix<double>::assemble(tree, tree, *gen, opt);
  H2.lu_factorize();
  Matrix<double> x_lu = B0;
  H2.solve(x_lu.view());

  EXPECT_LT(rel_diff<double>(x_ldlt.view(), x_lu.view()), 1e-6);
}

TEST(HLdlt, AccuracyTracksEpsilon) {
  auto [pts, gen] = make_operator<double>(16, 20, 0.0);
  ClusterTree tree(pts, 24);
  auto ref = dense_tree_ordered<double>(*gen, ClusterTree(pts, 24));

  const index_t n = static_cast<index_t>(pts.size());
  Rng rng(7);
  Matrix<double> X(n, 1);
  for (index_t i = 0; i < n; ++i) X(i, 0) = rng.uniform(-1, 1);
  Matrix<double> B0(n, 1);
  la::gemm(1.0, ConstMatrixView<double>(ref.view()), la::Op::kNoTrans,
           ConstMatrixView<double>(X.view()), la::Op::kNoTrans, 0.0,
           B0.view());

  double prev = 1e9;
  for (double eps : {1e-2, 1e-5, 1e-9}) {
    HOptions opt;
    opt.eps = eps;
    auto H = HMatrix<double>::assemble(tree, tree, *gen, opt);
    H.ldlt_factorize();
    Matrix<double> B = B0;
    H.solve(B.view());
    const double err = rel_diff<double>(B.view(), X.view());
    EXPECT_LT(err, 100 * eps);
    EXPECT_LE(err, prev * 10);
    prev = err;
  }
}

TEST(HLdlt, RequiresSquareTree) {
  auto [pts, gen] = make_operator<double>(10, 10, 0.0);
  (void)gen;
  ClusterTree rows(pts, 16);
  ClusterTree cols(pts, 16);
  auto H = HMatrix<double>::zero(rows, cols, HOptions{});
  EXPECT_THROW(H.ldlt_factorize(), std::logic_error);
}

TEST(HLdlt, SingleLeafMatrix) {
  // Tiny problem: the whole matrix is one dense leaf.
  std::vector<Point3> pts;
  for (int i = 0; i < 12; ++i)
    pts.push_back({0.1 * i, std::sin(0.3 * i), std::cos(0.3 * i)});
  ClusterTree tree(pts, 32);
  class TinyGen final : public MatrixGenerator<double> {
   public:
    explicit TinyGen(const std::vector<Point3>& p) : p_(p) {}
    index_t rows() const override { return static_cast<index_t>(p_.size()); }
    index_t cols() const override { return static_cast<index_t>(p_.size()); }
    double entry(index_t i, index_t j) const override {
      if (i == j) return 3.0;
      const double dx = p_[static_cast<std::size_t>(i)].x -
                        p_[static_cast<std::size_t>(j)].x;
      return 1.0 / (2.0 + dx * dx + std::abs(static_cast<double>(i - j)));
    }

   private:
    const std::vector<Point3>& p_;
  } gen(pts);
  HOptions opt;
  auto H = HMatrix<double>::assemble(tree, tree, gen, opt);
  auto ref = dense_tree_ordered<double>(gen, tree);
  Matrix<double> X(12, 1);
  for (index_t i = 0; i < 12; ++i) X(i, 0) = 1.0 + 0.1 * i;
  Matrix<double> B(12, 1);
  la::gemm(1.0, ConstMatrixView<double>(ref.view()), la::Op::kNoTrans,
           ConstMatrixView<double>(X.view()), la::Op::kNoTrans, 0.0,
           B.view());
  H.ldlt_factorize();
  H.solve(B.view());
  EXPECT_LT(rel_diff<double>(B.view(), X.view()), 1e-10);
}

}  // namespace
}  // namespace cs::hmat
