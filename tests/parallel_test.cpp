// Tests for the task-parallel multifrontal tree walk and the parallel
// H-matrix leaf assembly: results must be identical to the serial paths,
// and error paths (budget) must propagate out of the parallel regions.
#include <gtest/gtest.h>

#include <thread>

#include "common/parallel.h"
#include "common/random.h"
#include "fembem/system.h"
#include "hmat/hmatrix.h"
#include "sparsedirect/multifrontal.h"

namespace cs {
namespace {

using la::Matrix;
using la::rel_diff;

sparse::Csr<double> laplacian3d(index_t g) {
  sparse::Triplets<double> t(g * g * g, g * g * g);
  auto id = [g](index_t i, index_t j, index_t k) {
    return i + g * (j + g * k);
  };
  for (index_t k = 0; k < g; ++k)
    for (index_t j = 0; j < g; ++j)
      for (index_t i = 0; i < g; ++i) {
        t.add(id(i, j, k), id(i, j, k), 6.1);
        if (i + 1 < g) { t.add(id(i, j, k), id(i + 1, j, k), -1.0);
                         t.add(id(i + 1, j, k), id(i, j, k), -1.0); }
        if (j + 1 < g) { t.add(id(i, j, k), id(i, j + 1, k), -1.0);
                         t.add(id(i, j + 1, k), id(i, j, k), -1.0); }
        if (k + 1 < g) { t.add(id(i, j, k), id(i, j, k + 1), -1.0);
                         t.add(id(i, j, k + 1), id(i, j, k), -1.0); }
      }
  return sparse::Csr<double>::from_triplets(t);
}

TEST(ParallelFronts, SolveIdenticalToSerial) {
  auto A = laplacian3d(12);
  const index_t n = A.rows();
  Rng rng(1);
  Matrix<double> B(n, 2);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) B(i, j) = rng.uniform(-1, 1);

  sparsedirect::MultifrontalSolver<double> serial, parallel;
  sparsedirect::SolverOptions so;
  serial.factorize(A, so);
  sparsedirect::SolverOptions po;
  po.parallel_fronts = true;
  parallel.factorize(A, po);

  Matrix<double> Xs = B, Xp = B;
  serial.solve(Xs.view());
  parallel.solve(Xp.view());
  // The task tree executes the same per-front arithmetic: identical
  // results (not merely close).
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) EXPECT_EQ(Xs(i, j), Xp(i, j));
  EXPECT_EQ(serial.stats().factor_entries_stored,
            parallel.stats().factor_entries_stored);
}

TEST(ParallelFronts, SchurIdenticalToSerial) {
  auto A = laplacian3d(10);
  sparsedirect::SolverOptions so;
  so.schur_size = 40;
  sparsedirect::SolverOptions po = so;
  po.parallel_fronts = true;

  sparsedirect::MultifrontalSolver<double> serial, parallel;
  serial.factorize(A, so);
  parallel.factorize(A, po);
  auto Ss = serial.take_schur();
  auto Sp = parallel.take_schur();
  for (index_t j = 0; j < 40; ++j)
    for (index_t i = 0; i < 40; ++i) EXPECT_EQ(Ss(i, j), Sp(i, j));
}

TEST(ParallelFronts, UnsymmetricLuPath) {
  auto A0 = laplacian3d(9);
  sparse::Triplets<double> t(A0.rows(), A0.cols());
  Rng rng(5);
  for (index_t r = 0; r < A0.rows(); ++r)
    for (offset_t k = A0.row_begin(r); k < A0.row_end(r); ++k)
      t.add(r, A0.col(k),
            A0.value(k) * (A0.col(k) == r ? 1.0 : rng.uniform(0.5, 1.5)));
  auto A = sparse::Csr<double>::from_triplets(t);
  const index_t n = A.rows();
  Matrix<double> X(n, 1);
  for (index_t i = 0; i < n; ++i) X(i, 0) = rng.uniform(-1, 1);
  Matrix<double> B(n, 1);
  A.spmm(1.0, X.view(), 0.0, B.view());

  sparsedirect::MultifrontalSolver<double> mf;
  sparsedirect::SolverOptions opt;
  opt.symmetric = false;
  opt.parallel_fronts = true;
  mf.factorize(A, opt);
  mf.solve(B.view());
  EXPECT_LT(rel_diff<double>(B.view(), X.view()), 1e-10);
}

TEST(ParallelFronts, BudgetFailurePropagatesFromTasks) {
  auto A = laplacian3d(14);
  auto& tracker = MemoryTracker::instance();
  const std::size_t before = tracker.current();
  {
    sparsedirect::MultifrontalSolver<double> mf;
    sparsedirect::SolverOptions opt;
    opt.parallel_fronts = true;
    ScopedBudget budget(tracker.current() + 64 * 1024);
    EXPECT_THROW(mf.factorize(A, opt), BudgetExceeded);
  }
  EXPECT_EQ(tracker.current(), before);
}

TEST(ParallelFronts, OutOfCoreForcesSerialPathAndStillWorks) {
  auto A = laplacian3d(9);
  sparsedirect::MultifrontalSolver<double> mf;
  sparsedirect::SolverOptions opt;
  opt.parallel_fronts = true;
  opt.out_of_core = true;  // forces the serial walk
  mf.factorize(A, opt);
  EXPECT_GT(mf.stats().ooc_bytes, 0u);
  Matrix<double> b(A.rows(), 1);
  b(3, 0) = 1.0;
  mf.solve(b.view());
  EXPECT_TRUE(std::isfinite(b(0, 0)));
}

TEST(TaskHelpers, RunTaskGroupRunsEveryThunkAndRethrowsFirstError) {
  // Outside a parallel region the group runs serially in order; either
  // way every thunk must run and the first exception (by thunk order)
  // must reach the caller.
  std::vector<int> ran(4, 0);
  run_task_group(2, {[&] { ran[0] = 1; },
                     [&] { ran[1] = 1; },
                     [&] { ran[2] = 1; },
                     [&] { ran[3] = 1; }});
  for (int r : ran) EXPECT_EQ(r, 1);

  auto throwing = [&]() {
    run_task_group(
        2, {[] {}, [] { throw std::runtime_error("first"); },
            [] { throw std::runtime_error("second"); }});
  };
  try {
    throwing();
    FAIL() << "expected the task group to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(TaskHelpers, BoundedQueueDeliversInOrder) {
  BoundedQueue<int> q(2);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  int expected = 0;
  while (auto item = q.pop()) EXPECT_EQ(*item, expected++);
  producer.join();
  EXPECT_EQ(expected, 100);
}

TEST(TaskHelpers, BoundedQueueCancelUnblocksProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::thread producer([&] {
    // This push blocks on the full queue until cancel().
    EXPECT_FALSE(q.push(1));
  });
  // Consumer aborts: the producer must observe the cancel and stop.
  q.cancel();
  producer.join();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(ParallelHlu, FactorizationIdenticalAcrossThreadCounts) {
  // The task-parallel H-LU spawns independent off-diagonal solves and
  // GEMM quadrants, but each block keeps its serial accumulation order:
  // the factors -- and therefore the solves -- are bitwise identical.
  auto sys = fembem::make_pipe_system<double>({.total_unknowns = 3000});
  hmat::ClusterTree tree(sys.surface_points(), 48);
  hmat::HOptions opt;
  opt.eps = 1e-6;

  const index_t n = tree.size();
  Matrix<double> b(n, 1);
  Rng rng(7);
  for (index_t i = 0; i < n; ++i) b(i, 0) = rng.uniform(-1, 1);

  Matrix<double> x_serial, x_parallel;
  {
    ScopedNumThreads threads(1);
    auto H = hmat::HMatrix<double>::assemble(tree, tree, *sys.A_ss, opt);
    H.lu_factorize();
    x_serial = b;
    H.solve(x_serial.view());
  }
  {
    ScopedNumThreads threads(4);
    auto H = hmat::HMatrix<double>::assemble(tree, tree, *sys.A_ss, opt);
    H.lu_factorize();
    x_parallel = b;
    H.solve(x_parallel.view());
  }
  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(x_serial(i, 0), x_parallel(i, 0)) << "row " << i;
}

TEST(ParallelAssembly, BudgetFailurePropagatesFromLeafLoop) {
  // The parallel H-assembly loop must convert leaf exceptions into a
  // single rethrown exception, not terminate.
  auto sys = fembem::make_pipe_system<double>({.total_unknowns = 2500});
  hmat::ClusterTree tree(sys.surface_points(), 32);
  auto& tracker = MemoryTracker::instance();
  ScopedBudget budget(tracker.current() + 32 * 1024);
  EXPECT_THROW(hmat::HMatrix<double>::assemble(tree, tree, *sys.A_ss,
                                               hmat::HOptions{}),
               BudgetExceeded);
}

}  // namespace
}  // namespace cs
