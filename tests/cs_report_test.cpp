// Golden-output tests for the cs-report run-report analyzer: the analysis
// of a checked-in sample report must match the checked-in golden text
// byte-for-byte (the analyzer uses fixed snprintf formats precisely so
// this comparison is stable across platforms).
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "tools/cs_report.h"

namespace cs {
namespace {

std::string data_path(const char* name) {
  return std::string(CS_TEST_DATA_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) ADD_FAILURE() << "cannot open " << path;
  std::string text;
  if (f != nullptr) {
    char buf[1 << 14];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
      text.append(buf, got);
    std::fclose(f);
  }
  return text;
}

TEST(CsReport, AnalysisMatchesGolden) {
  const json::Value report =
      tools::load_report(data_path("sample_report.json"));
  const std::string out = tools::analyze_report(report);
  const std::string golden = slurp(data_path("sample_report.golden.txt"));
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(out, golden)
      << "analyzer output drifted from tests/data/sample_report.golden.txt; "
         "if the change is intentional, regenerate the golden file with "
         "build/src/tools/cs-report tests/data/sample_report.json";
}

TEST(CsReport, AnalysisNamesPeakOwnersAndPlannerVerdicts) {
  const json::Value report =
      tools::load_report(data_path("sample_report.json"));
  const std::string out = tools::analyze_report(report);
  // The failed budget run attributes its peak to the multifrontal fronts.
  EXPECT_NE(out.find("mf.front"), std::string::npos);
  EXPECT_NE(out.find("budget-exempt"), std::string::npos);
  EXPECT_NE(out.find("FAILED"), std::string::npos);
  EXPECT_NE(out.find("planner audit"), std::string::npos);
  EXPECT_NE(out.find("over"), std::string::npos);   // 1.20 ratio
  EXPECT_NE(out.find("under"), std::string::npos);  // 0.90 ratio
}

TEST(CsReport, DiffAgainstItselfShowsUnitRatios) {
  const json::Value report =
      tools::load_report(data_path("sample_report.json"));
  const std::string out = tools::diff_reports(report, report);
  EXPECT_NE(out.find("multi-solve-compressed / smoke"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_EQ(out.find("only in"), std::string::npos);
}

TEST(CsReport, DiffListsUnmatchedRuns) {
  const json::Value report =
      tools::load_report(data_path("sample_report.json"));
  json::Value trimmed = report;
  trimmed.object[1].second.array.pop_back();  // drop the second run
  const std::string out = tools::diff_reports(report, trimmed);
  EXPECT_NE(out.find("only in A: multi-factorization / smoke"),
            std::string::npos);
}

TEST(CsReport, ToleratesPrePlannerReportsWithDashMarkers) {
  // Reports written before PR 7 carry neither peak_by_tag nor the planner
  // audit fields; the analyzer must not throw and must print explicit "-"
  // markers instead of fabricated zeros.
  const json::Value report =
      tools::load_report(data_path("stripped_report.json"));
  std::string out;
  ASSERT_NO_THROW(out = tools::analyze_report(report));
  EXPECT_NE(out.find("peak attribution: -"), std::string::npos);
  EXPECT_NE(out.find("planner    : -"), std::string::npos);
  // The cross-run audit row shows dashes in the ratio and verdict
  // columns, and never invents a 0.00 ratio or an n/a verdict.
  EXPECT_NE(out.find("      -  -"), std::string::npos);
  EXPECT_EQ(out.find(" 0.00  "), std::string::npos);
  EXPECT_EQ(out.find("n/a"), std::string::npos);
}

/// Minimal bench_sweep-shaped report (the "freq_sweep" flat shape).
json::Value freq_sweep_report(double recycled_spf, int factorizations) {
  const std::string text =
      "{\"binary\":\"bench_sweep\",\"strategy\":\"multi-solve-compressed\","
      "\"n_total\":4318,\"n_fem\":3136,\"n_bem\":1182,\"frequencies\":2,"
      "\"speedup_recycled_vs_naive\":2.5,\"freq_sweep\":["
      "{\"mode\":\"naive\",\"stats\":{\"success\":true,"
      "\"factorizations\":2,\"lagged_solves\":0,\"total_seconds\":4.0,"
      "\"seconds_per_frequency\":2.0,\"freqs\":[]}},"
      "{\"mode\":\"recycled\",\"stats\":{\"success\":true,"
      "\"factorizations\":" +
      std::to_string(factorizations) +
      ",\"lagged_solves\":1,\"total_seconds\":1.6,"
      "\"seconds_per_frequency\":" +
      std::to_string(recycled_spf) +
      ",\"freqs\":["
      "{\"omega\":1.1,\"refactorized\":true,\"lagged\":false,"
      "\"fallback_reason\":\"no_factors\",\"seconds\":1.4,"
      "\"relative_error\":1.4e-08,\"refine_sweeps\":1,"
      "\"counters\":{\"aca.iterations\":2584}},"
      "{\"omega\":1.125,\"refactorized\":false,\"lagged\":true,"
      "\"seconds\":0.2,\"relative_error\":1.8e-08,\"refine_sweeps\":8,"
      "\"counters\":{\"aca.iterations\":0}}]}}]}";
  json::Value doc;
  std::string err;
  EXPECT_TRUE(json::parse(text, &doc, &err)) << err;
  return doc;
}

TEST(CsReport, FreqSweepAnalysisShowsModesAndServiceTiers) {
  const json::Value report = freq_sweep_report(0.8, 1);
  std::string out;
  ASSERT_NO_THROW(out = tools::analyze_report(report));
  EXPECT_NE(out.find("frequency-sweep report: bench_sweep"),
            std::string::npos);
  EXPECT_NE(out.find("2.50x recycled vs naive"), std::string::npos);
  EXPECT_NE(out.find("naive"), std::string::npos);
  EXPECT_NE(out.find("recycled sweep per frequency"), std::string::npos);
  // Per-frequency rows name the serving tier and the fallback reason.
  EXPECT_NE(out.find("refactorized"), std::string::npos);
  EXPECT_NE(out.find("lagged"), std::string::npos);
  EXPECT_NE(out.find("no_factors"), std::string::npos);
  EXPECT_EQ(out.find("FAILED"), std::string::npos);
}

TEST(CsReport, FreqSweepDiffComparesModesAcrossReports) {
  const json::Value a = freq_sweep_report(0.8, 1);
  const json::Value b = freq_sweep_report(1.6, 2);
  std::string out;
  ASSERT_NO_THROW(out = tools::diff_reports(a, b));
  EXPECT_NE(out.find("sweep diff"), std::string::npos);
  EXPECT_NE(out.find("recycled"), std::string::npos);
  // The recycled s/freq doubled from A to B: the B/A column says 2.00.
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(CsReport, ServeAnalysisShowsModesSpeedupAndCacheCounters) {
  // Minimal bench_serve-shaped report (the "serve" flat shape).
  const std::string text =
      "{\"binary\":\"bench_serve\",\"strategy\":\"multi-solve\","
      "\"n_total\":3000,\"nv\":2304,\"ns\":720,\"concurrency\":16,"
      "\"coalesce_window_us\":200,\"coalesced_speedup\":4.44,\"serve\":["
      "{\"mode\":\"uncoalesced\",\"requests\":64,\"failures\":0,"
      "\"mismatches\":0,\"seconds\":0.37,\"requests_per_second\":172.7,"
      "\"p50_ms\":72.68,\"p99_ms\":147.43,\"max_batch_columns\":1,"
      "\"cache_hits\":64,\"cache_misses\":1,\"factorizations\":1,"
      "\"coalesced_batches\":0,\"coalesced_columns\":0},"
      "{\"mode\":\"coalesced\",\"requests\":64,\"failures\":0,"
      "\"mismatches\":0,\"seconds\":0.08,\"requests_per_second\":766.9,"
      "\"p50_ms\":18.11,\"p99_ms\":32.07,\"max_batch_columns\":16,"
      "\"cache_hits\":64,\"cache_misses\":1,\"factorizations\":1,"
      "\"coalesced_batches\":6,\"coalesced_columns\":65}]}";
  json::Value report;
  std::string err;
  ASSERT_TRUE(json::parse(text, &report, &err)) << err;
  std::string out;
  ASSERT_NO_THROW(out = tools::analyze_report(report));
  EXPECT_NE(out.find("serve report: bench_serve"), std::string::npos);
  EXPECT_NE(out.find("4.44x coalesced vs uncoalesced"), std::string::npos);
  EXPECT_NE(out.find("uncoalesced"), std::string::npos);
  EXPECT_NE(out.find("766.9"), std::string::npos);  // coalesced req/s
  EXPECT_NE(out.find("32.07"), std::string::npos);  // coalesced p99
  EXPECT_EQ(out.find("FAILED"), std::string::npos);
}

TEST(CsReport, ServeAnalysisFlagsFailedOrMismatchedRequests) {
  const std::string text =
      "{\"binary\":\"bench_serve\",\"n_total\":3000,\"nv\":2304,\"ns\":720,"
      "\"concurrency\":16,\"serve\":[{\"mode\":\"coalesced\",\"requests\":8,"
      "\"failures\":0,\"mismatches\":2,\"requests_per_second\":100.0,"
      "\"p50_ms\":1.0,\"p99_ms\":2.0,\"max_batch_columns\":4,"
      "\"cache_hits\":8,\"cache_misses\":1,\"factorizations\":1,"
      "\"coalesced_batches\":2,\"coalesced_columns\":8}]}";
  json::Value report;
  std::string err;
  ASSERT_TRUE(json::parse(text, &report, &err)) << err;
  std::string out;
  ASSERT_NO_THROW(out = tools::analyze_report(report));
  EXPECT_NE(out.find("FAILED"), std::string::npos);
  EXPECT_NE(out.find("2 bitwise mismatches"), std::string::npos);
}

TEST(CsReport, LoadRejectsMissingAndMalformedFiles) {
  EXPECT_THROW(tools::load_report(data_path("does_not_exist.json")),
               std::runtime_error);
  EXPECT_THROW(tools::load_report(data_path("sample_report.golden.txt")),
               std::runtime_error);
}

}  // namespace
}  // namespace cs
