// Golden-output tests for the cs-report run-report analyzer: the analysis
// of a checked-in sample report must match the checked-in golden text
// byte-for-byte (the analyzer uses fixed snprintf formats precisely so
// this comparison is stable across platforms).
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "tools/cs_report.h"

namespace cs {
namespace {

std::string data_path(const char* name) {
  return std::string(CS_TEST_DATA_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) ADD_FAILURE() << "cannot open " << path;
  std::string text;
  if (f != nullptr) {
    char buf[1 << 14];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
      text.append(buf, got);
    std::fclose(f);
  }
  return text;
}

TEST(CsReport, AnalysisMatchesGolden) {
  const json::Value report =
      tools::load_report(data_path("sample_report.json"));
  const std::string out = tools::analyze_report(report);
  const std::string golden = slurp(data_path("sample_report.golden.txt"));
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(out, golden)
      << "analyzer output drifted from tests/data/sample_report.golden.txt; "
         "if the change is intentional, regenerate the golden file with "
         "build/src/tools/cs-report tests/data/sample_report.json";
}

TEST(CsReport, AnalysisNamesPeakOwnersAndPlannerVerdicts) {
  const json::Value report =
      tools::load_report(data_path("sample_report.json"));
  const std::string out = tools::analyze_report(report);
  // The failed budget run attributes its peak to the multifrontal fronts.
  EXPECT_NE(out.find("mf.front"), std::string::npos);
  EXPECT_NE(out.find("budget-exempt"), std::string::npos);
  EXPECT_NE(out.find("FAILED"), std::string::npos);
  EXPECT_NE(out.find("planner audit"), std::string::npos);
  EXPECT_NE(out.find("over"), std::string::npos);   // 1.20 ratio
  EXPECT_NE(out.find("under"), std::string::npos);  // 0.90 ratio
}

TEST(CsReport, DiffAgainstItselfShowsUnitRatios) {
  const json::Value report =
      tools::load_report(data_path("sample_report.json"));
  const std::string out = tools::diff_reports(report, report);
  EXPECT_NE(out.find("multi-solve-compressed / smoke"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_EQ(out.find("only in"), std::string::npos);
}

TEST(CsReport, DiffListsUnmatchedRuns) {
  const json::Value report =
      tools::load_report(data_path("sample_report.json"));
  json::Value trimmed = report;
  trimmed.object[1].second.array.pop_back();  // drop the second run
  const std::string out = tools::diff_reports(report, trimmed);
  EXPECT_NE(out.find("only in A: multi-factorization / smoke"),
            std::string::npos);
}

TEST(CsReport, ToleratesPrePlannerReportsWithDashMarkers) {
  // Reports written before PR 7 carry neither peak_by_tag nor the planner
  // audit fields; the analyzer must not throw and must print explicit "-"
  // markers instead of fabricated zeros.
  const json::Value report =
      tools::load_report(data_path("stripped_report.json"));
  std::string out;
  ASSERT_NO_THROW(out = tools::analyze_report(report));
  EXPECT_NE(out.find("peak attribution: -"), std::string::npos);
  EXPECT_NE(out.find("planner    : -"), std::string::npos);
  // The cross-run audit row shows dashes in the ratio and verdict
  // columns, and never invents a 0.00 ratio or an n/a verdict.
  EXPECT_NE(out.find("      -  -"), std::string::npos);
  EXPECT_EQ(out.find(" 0.00  "), std::string::npos);
  EXPECT_EQ(out.find("n/a"), std::string::npos);
}

TEST(CsReport, LoadRejectsMissingAndMalformedFiles) {
  EXPECT_THROW(tools::load_report(data_path("does_not_exist.json")),
               std::runtime_error);
  EXPECT_THROW(tools::load_report(data_path("sample_report.golden.txt")),
               std::runtime_error);
}

}  // namespace
}  // namespace cs
