// Frequency-sweep engine (DESIGN.md §15): the recycled sweep must match
// the naive one in accuracy for every strategy, stay bitwise deterministic
// (warm structure/rank reuse may change *work*, never *answers*), fall
// back cleanly to fresh factorizations when frequency-lagged refinement
// stalls, and leave no tracked memory behind on teardown.
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "common/memory.h"
#include "coupled/sweep.h"
#include "fembem/shifted.h"

namespace cs::coupled {
namespace {

using fembem::SweepFamily;
using fembem::SweepParams;

const SweepFamily<double>& family() {
  static SweepFamily<double> fam = [] {
    SweepParams p;
    p.total_unknowns = 1200;
    p.scatterers = 1;
    return SweepFamily<double>(p);
  }();
  return fam;
}

Config sweep_config(Strategy s) {
  Config cfg;
  cfg.strategy = s;
  cfg.eps = 1e-4;
  cfg.refine_tolerance = 1e-8;
  cfg.refine_iterations = 4;
  return cfg;
}

/// Closely spaced frequencies: the lagged contraction rate scales with
/// |omega^2 - omega'^2|, so a fine grid is where tier 3 can engage.
const std::vector<double> kOmegas = {1.1, 1.125, 1.15};

constexpr Strategy kAllStrategies[] = {
    Strategy::kBaselineCoupling,
    Strategy::kAdvancedCoupling,
    Strategy::kMultiSolve,
    Strategy::kMultiSolveCompressed,
    Strategy::kMultiFactorization,
    Strategy::kMultiFactorizationCompressed,
    Strategy::kMultiSolveRandomized,
};

TEST(Sweep, RecycledMatchesNaiveAccuracyForEveryStrategy) {
  for (Strategy s : kAllStrategies) {
    SweepOptions naive_opt;
    naive_opt.config = sweep_config(s);
    naive_opt.recycle = false;
    SweepOptions recycled_opt = naive_opt;
    recycled_opt.recycle = true;

    SweepDriver<double> naive(family(), naive_opt);
    SweepDriver<double> recycled(family(), recycled_opt);
    const SweepStats sn = naive.run(kOmegas);
    const SweepStats sr = recycled.run(kOmegas);

    ASSERT_TRUE(sn.success) << strategy_name(s) << ": " << sn.failure;
    ASSERT_TRUE(sr.success) << strategy_name(s) << ": " << sr.failure;
    ASSERT_EQ(sn.freqs.size(), kOmegas.size());
    ASSERT_EQ(sr.freqs.size(), kOmegas.size());
    // Whatever tier served a frequency, its answer meets the same
    // refinement tolerance the naive sweep works to (the error vs the
    // manufactured reference carries a kappa(A) amplification over the
    // residual bar, hence the slack).
    for (std::size_t i = 0; i < kOmegas.size(); ++i) {
      EXPECT_LT(sn.freqs[i].relative_error, 1e-5)
          << strategy_name(s) << " naive omega=" << kOmegas[i];
      EXPECT_LT(sr.freqs[i].relative_error, 1e-5)
          << strategy_name(s) << " recycled omega=" << kOmegas[i];
    }
    // Recycling must never *add* factorizations.
    EXPECT_LE(sr.factorizations, sn.factorizations) << strategy_name(s);
    EXPECT_EQ(sn.factorizations, static_cast<int>(kOmegas.size()));
  }
}

TEST(Sweep, StructuralReuseEngagesAfterFirstFrequency) {
  SweepOptions opt;
  opt.config = sweep_config(Strategy::kMultiSolveCompressed);
  SweepDriver<double> driver(family(), opt);
  const SweepStats sw = driver.run(kOmegas);
  ASSERT_TRUE(sw.success) << sw.failure;
  EXPECT_GE(driver.context().analyses_cached(), 1u);
  EXPECT_GE(driver.context().skeletons_cached(), 1u);
  // Every refactorization after the first replays the stored interior
  // analysis and the H-matrix block skeleton instead of recomputing them.
  double analysis_reuses = 0, structure_reuses = 0;
  for (std::size_t i = 1; i < sw.freqs.size(); ++i) {
    if (!sw.freqs[i].refactorized) continue;
    auto a = sw.freqs[i].counters.find("mf.analysis_reuses");
    auto h = sw.freqs[i].counters.find("hmat.structure_reuses");
    if (a != sw.freqs[i].counters.end()) analysis_reuses += a->second;
    if (h != sw.freqs[i].counters.end()) structure_reuses += h->second;
  }
  if (sw.factorizations > 1) {
    EXPECT_GT(analysis_reuses, 0);
    EXPECT_GT(structure_reuses, 0);
  }
}

TEST(Sweep, LaggedRefinementServesAtLeastOneFrequency) {
  SweepOptions opt;
  opt.config = sweep_config(Strategy::kMultiSolveCompressed);
  opt.lagged_refine_iterations = 40;
  SweepDriver<double> driver(family(), opt);
  const SweepStats sw = driver.run(kOmegas);
  ASSERT_TRUE(sw.success) << sw.failure;
  EXPECT_GE(sw.lagged_solves, 1) << "no frequency was served by "
                                    "frequency-lagged refinement on a "
                                    "closely spaced grid";
  EXPECT_LT(sw.factorizations, static_cast<int>(kOmegas.size()));
}

TEST(Sweep, ForcedLaggedStallFallsBackToFreshFactorization) {
  SweepOptions opt;
  opt.config = sweep_config(Strategy::kMultiSolveCompressed);
  // solve_lagged arms the config failpoints per attempt, the fresh path
  // never sees the refine.stall site armed: every lagged attempt stalls
  // deterministically and every frequency must fall through to a fresh
  // factorization -- and the sweep must still complete correctly.
  opt.config.failpoints = "refine.stall=always";
  SweepDriver<double> driver(family(), opt);
  const SweepStats sw = driver.run(kOmegas);
  ASSERT_TRUE(sw.success) << sw.failure;
  EXPECT_EQ(sw.lagged_solves, 0);
  EXPECT_EQ(sw.factorizations, static_cast<int>(kOmegas.size()));
  bool saw_stall_fallback = false;
  for (const auto& f : sw.freqs) {
    EXPECT_TRUE(f.refactorized);
    EXPECT_LT(f.relative_error, 1e-5);
    if (f.fallback_reason == "refine.stall") saw_stall_fallback = true;
  }
  EXPECT_TRUE(saw_stall_fallback);
}

TEST(Sweep, DisabledRecyclingReportsWhyLaggedNeverRan) {
  SweepOptions opt;
  opt.config = sweep_config(Strategy::kMultiSolve);
  opt.recycle = false;
  SweepDriver<double> driver(family(), opt);
  const SweepStats sw = driver.run({1.1, 1.125});
  ASSERT_TRUE(sw.success) << sw.failure;
  for (const auto& f : sw.freqs) EXPECT_EQ(f.fallback_reason, "disabled");
  EXPECT_EQ(driver.context().analyses_cached(), 0u);
}

template <class T>
bool bitwise_equal(const la::Matrix<T>& A, const la::Matrix<T>& B) {
  if (A.rows() != B.rows() || A.cols() != B.cols()) return false;
  for (index_t j = 0; j < A.cols(); ++j)
    for (index_t i = 0; i < A.rows(); ++i)
      if (std::memcmp(&A(i, j), &B(i, j), sizeof(T)) != 0) return false;
  return true;
}

/// One factorize+solve through an explicit context; returns the solution
/// block so callers can compare warm-vs-cold and across thread counts.
std::pair<la::Matrix<double>, la::Matrix<double>> context_solve(
    const Config& cfg, SweepContext* ctx) {
  const auto sys = family().at(1.15);
  auto f = factorize_coupled(sys, cfg, ctx);
  EXPECT_TRUE(f.ok()) << f.stats().failure;
  la::Matrix<double> Bv(sys.nv(), 1), Bs(sys.ns(), 1);
  for (index_t i = 0; i < sys.nv(); ++i) Bv(i, 0) = sys.b_v[i];
  for (index_t i = 0; i < sys.ns(); ++i) Bs(i, 0) = sys.b_s[i];
  const SolveStats ss = f.solve(Bv.view(), Bs.view());
  EXPECT_TRUE(ss.success) << ss.failure;
  return {std::move(Bv), std::move(Bs)};
}

TEST(Sweep, WarmReuseIsBitwiseIdenticalAtAnyThreadCount) {
  Config cfg = sweep_config(Strategy::kMultiSolveCompressed);
  cfg.num_threads = 1;
  SweepContext ctx1;
  const auto cold1 = context_solve(cfg, &ctx1);
  // Second factorization replays the stored analysis, cluster tree and
  // rank hints -- the hints may shrink the *work*, never the *answer*.
  const auto warm1 = context_solve(cfg, &ctx1);
  EXPECT_TRUE(bitwise_equal(cold1.first, warm1.first));
  EXPECT_TRUE(bitwise_equal(cold1.second, warm1.second));

  Config cfg4 = cfg;
  cfg4.num_threads = 4;
  SweepContext ctx4;
  const auto cold4 = context_solve(cfg4, &ctx4);
  const auto warm4 = context_solve(cfg4, &ctx4);
  EXPECT_TRUE(bitwise_equal(cold1.first, cold4.first));
  EXPECT_TRUE(bitwise_equal(cold1.second, cold4.second));
  EXPECT_TRUE(bitwise_equal(cold1.first, warm4.first));
  EXPECT_TRUE(bitwise_equal(cold1.second, warm4.second));
}

TEST(Sweep, TeardownReturnsTrackedMemoryToBaseline) {
  family();  // materialize the lazily-built scene before the baseline
  const std::size_t before = MemoryTracker::instance().current();
  {
    SweepOptions opt;
    opt.config = sweep_config(Strategy::kMultiSolveCompressed);
    SweepDriver<double> driver(family(), opt);
    const SweepStats sw = driver.run({1.1, 1.125});
    ASSERT_TRUE(sw.success) << sw.failure;
  }
  EXPECT_EQ(MemoryTracker::instance().current(), before);
}

}  // namespace
}  // namespace cs::coupled
