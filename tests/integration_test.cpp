// Cross-module integration properties: the memory-feasibility ordering
// that drives the paper's headline result, solver-coupling interactions,
// and problem-generator parameter sweeps.
#include <gtest/gtest.h>

#include "coupled/coupled.h"

namespace cs::coupled {
namespace {

using fembem::SystemParams;

const fembem::CoupledSystem<double>& system_8k() {
  static auto sys =
      fembem::make_pipe_system<double>({.total_unknowns = 8000});
  return sys;
}

/// The paper's central claim, as a property: under a budget sized from the
/// compressed multi-solve's own peak, compressed multi-solve still runs
/// while the baseline coupling (whose A_vv^{-1} A_sv^T panel is a dense
/// nv x ns matrix) does not.
TEST(FeasibilityOrdering, CompressedMultiSolveOutlivesBaselineCoupling) {
  Config msc;
  msc.strategy = Strategy::kMultiSolveCompressed;
  msc.n_c = 64;
  msc.n_S = 256;
  auto unlimited = solve_coupled(system_8k(), msc);
  ASSERT_TRUE(unlimited.success);

  const std::size_t budget = unlimited.peak_bytes * 3 / 2;
  Config msc_b = msc;
  msc_b.memory_budget = budget;
  auto msc_stats = solve_coupled(system_8k(), msc_b);
  EXPECT_TRUE(msc_stats.success) << msc_stats.failure;

  Config baseline;
  baseline.strategy = Strategy::kBaselineCoupling;
  baseline.memory_budget = budget;
  auto base_stats = solve_coupled(system_8k(), baseline);
  EXPECT_FALSE(base_stats.success)
      << "baseline coupling unexpectedly fit in "
      << format_bytes(budget);
}

TEST(FeasibilityOrdering, MultiFactoUsesMoreMemoryThanMultiSolve) {
  // Duplicated unsymmetric storage: the reason multi-facto caps earlier.
  Config ms, mf;
  ms.strategy = Strategy::kMultiSolve;
  mf.strategy = Strategy::kMultiFactorization;
  mf.n_b = 2;
  auto s_ms = solve_coupled(system_8k(), ms);
  auto s_mf = solve_coupled(system_8k(), mf);
  ASSERT_TRUE(s_ms.success && s_mf.success);
  EXPECT_GT(s_mf.peak_bytes, s_ms.peak_bytes);
}

TEST(FeasibilityOrdering, SchurStorageDominatedByDenseVariant) {
  Config dense_cfg, h_cfg;
  dense_cfg.strategy = Strategy::kMultiFactorization;
  h_cfg.strategy = Strategy::kMultiFactorizationCompressed;
  dense_cfg.n_b = h_cfg.n_b = 2;
  auto s_dense = solve_coupled(system_8k(), dense_cfg);
  auto s_h = solve_coupled(system_8k(), h_cfg);
  ASSERT_TRUE(s_dense.success && s_h.success);
  EXPECT_LT(s_h.schur_bytes, s_dense.schur_bytes);
}

TEST(Integration, ComplexStrategiesAgreePairwise) {
  SystemParams p;
  p.total_unknowns = 2000;
  p.kappa = 1.0;
  p.sigma_real = 2.0;
  p.sigma_imag = 0.3;
  p.symmetric_bem = false;
  auto sys = fembem::make_pipe_system<complexd>(p);

  double min_err = 1e9, max_err = -1e9;
  for (Strategy s : {Strategy::kAdvancedCoupling, Strategy::kMultiSolve,
                     Strategy::kMultiFactorization}) {
    Config cfg;
    cfg.strategy = s;
    cfg.eps = 1e-5;
    auto stats = solve_coupled(sys, cfg);
    ASSERT_TRUE(stats.success) << strategy_name(s);
    min_err = std::min(min_err, stats.relative_error);
    max_err = std::max(max_err, stats.relative_error);
  }
  EXPECT_LT(max_err, 1e-4);
}

TEST(Integration, OrderingChoiceDoesNotChangeTheAnswer) {
  for (auto method :
       {ordering::Method::kNestedDissection, ordering::Method::kMinimumDegree,
        ordering::Method::kRcm}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolve;
    cfg.ordering = method;
    auto stats = solve_coupled(system_8k(), cfg);
    ASSERT_TRUE(stats.success);
    EXPECT_LT(stats.relative_error, 1e-3);
  }
}

TEST(Integration, EpsSweepErrorTracksCompression) {
  double prev_err = 1e9;
  for (double eps : {1e-2, 1e-3, 1e-5}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolveCompressed;
    cfg.eps = eps;
    auto stats = solve_coupled(system_8k(), cfg);
    ASSERT_TRUE(stats.success);
    EXPECT_LT(stats.relative_error, 50 * eps);
    EXPECT_LE(stats.relative_error, prev_err * 5);  // roughly monotone
    prev_err = stats.relative_error;
  }
}

class ProportionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProportionSweep, GeneratedSplitsTrackTableOneLaw) {
  const index_t n = GetParam();
  const index_t target_bem = fembem::paper_bem_count(n);
  auto dims = fembem::pipe_dims_for_split(n - target_bem, target_bem);
  auto mesh = fembem::make_pipe_mesh(dims);
  // Within 25% of the target law on both counts.
  EXPECT_NEAR(static_cast<double>(mesh.n_surface()), target_bem,
              0.25 * target_bem);
  EXPECT_NEAR(static_cast<double>(mesh.n_nodes()), n - target_bem,
              0.25 * (n - target_bem));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProportionSweep,
                         ::testing::Values(3000, 8000, 20000, 60000));

TEST(Integration, StatsBytesAreInternallyConsistent) {
  Config cfg;
  cfg.strategy = Strategy::kMultiSolveCompressed;
  auto stats = solve_coupled(system_8k(), cfg);
  ASSERT_TRUE(stats.success);
  EXPECT_LE(stats.schur_bytes, stats.peak_bytes);
  EXPECT_LE(stats.sparse_factor_bytes, stats.peak_bytes);
  EXPECT_GT(stats.schur_compression_ratio, 0.0);
  EXPECT_LE(stats.schur_compression_ratio, 1.0);
}

}  // namespace
}  // namespace cs::coupled
