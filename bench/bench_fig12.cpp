// Figure 12 reproduction: the performance/memory trade-off of the
// multi-solve algorithm at fixed N, for both couplings.
//   * MUMPS/SPIDO-like (dense S): vary the sparse-solve panel width n_c;
//     larger n_c amortizes factor traffic -> faster, but the dense Y panel
//     grows -> more memory; beyond a plateau (paper: 256) gains vanish.
//   * MUMPS/HMAT-like (compressed S): first n_S = n_c (small panels mean
//     frequent recompressions -> slow), then n_c fixed at the plateau and
//     n_S grown (recompression amortized; memory rises only mildly).
//   * compression of S and A_ss cuts the memory footprint substantially.
#include <vector>

#include "bench_common.h"

using namespace cs;
using coupled::Config;
using coupled::Strategy;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns (default 12000; paper used 2,000,000)");
  bench::describe_threads(args);
  bench::Observability::describe(args);
  args.check("Reproduces Fig. 12: multi-solve time/memory vs n_c and n_S.");
  bench::Observability obs(args, "bench_fig12");
  const index_t n = static_cast<index_t>(args.get_int("n", 12000));

  std::printf("== Figure 12: multi-solve trade-off at N = %d ==\n", n);
  std::printf("%s\n\n", bench::kRowHeaderNote);
  auto sys = fembem::make_pipe_system<double>({.total_unknowns = n});

  TablePrinter table({"coupling", "config", "N", "time", "peak MiB",
                      "rel err", "status"});

  // Baseline multi-solve (dense S): n_c sweep.
  for (index_t nc : {16, 32, 64, 128, 256}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolve;
    cfg.n_c = nc;
    bench::apply_threads(args, cfg);
    bench::run_and_row(sys, cfg, table, "MUMPS/SPIDO-like",
                       "n_c=" + std::to_string(nc), &obs);
  }
  // Compressed multi-solve, phase 1: n_S == n_c (frequent recompression).
  for (index_t nc : {32, 64, 128}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolveCompressed;
    cfg.n_c = nc;
    cfg.n_S = nc;
    bench::apply_threads(args, cfg);
    bench::run_and_row(sys, cfg, table, "MUMPS/HMAT-like",
                       "n_c=n_S=" + std::to_string(nc), &obs);
  }
  // Phase 2: n_c at its plateau, n_S grown.
  for (index_t nS : {256, 512, 1024, 2048}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolveCompressed;
    cfg.n_c = 128;
    cfg.n_S = nS;
    bench::apply_threads(args, cfg);
    bench::run_and_row(sys, cfg, table, "MUMPS/HMAT-like",
                       "n_c=128 n_S=" + std::to_string(nS), &obs);
  }
  table.print();
  std::printf(
      "\nexpected shapes (paper): time falls as n_c grows then plateaus; "
      "tiny n_S is slow (recompression); compressed coupling uses much "
      "less memory than the dense one.\n");
  return bench::exit_status();
}
