// Table I reproduction: counts of BEM and FEM unknowns in the target
// coupled systems. The paper's systems run from N = 1,000,000 to 9,000,000
// on a 128 GiB node; this reproduction scales N by ~1/200 (and the memory
// budget accordingly) while keeping the same n_BEM ~ 3.72 N^(2/3) surface
// share law, which the generated pipe meshes then realize.
#include "bench_common.h"
#include "fembem/mesh.h"

int main(int argc, char** argv) {
  using namespace cs;
  CliArgs args(argc, argv);
  args.describe("scale", "down-scaling factor vs the paper (default 200)");
  bench::Observability::describe(args);
  args.check("Reproduces Table I: FEM/BEM unknown counts per system size.");
  bench::Observability obs(args, "bench_table1");
  const double scale = args.get_double("scale", 200.0);

  std::printf("== Table I: counts of BEM and FEM unknowns ==\n");
  std::printf("paper sizes divided by %.0f; mesh realizes the same "
              "n_BEM ~ 3.72 N^(2/3) law\n\n", scale);

  TablePrinter table({"paper N", "scaled N", "target BEM", "mesh FEM",
                      "mesh BEM", "BEM share %"});
  const long long paper_sizes[] = {1000000, 2000000, 4000000, 9000000};
  for (long long paper_n : paper_sizes) {
    const index_t n = static_cast<index_t>(paper_n / scale);
    const index_t bem = fembem::paper_bem_count(n);
    const auto dims = fembem::pipe_dims_for_split(n - bem, bem);
    const auto mesh = fembem::make_pipe_mesh(dims);
    const double share =
        100.0 * mesh.n_surface() / (mesh.n_nodes() + mesh.n_surface());
    table.add_row({TablePrinter::fmt_int(paper_n), TablePrinter::fmt_int(n),
                   TablePrinter::fmt_int(bem),
                   TablePrinter::fmt_int(mesh.n_nodes()),
                   TablePrinter::fmt_int(mesh.n_surface()),
                   TablePrinter::fmt(share, 1)});
  }
  table.print();
  std::printf("\npaper reference rows: 1,000,000 -> 37,169 BEM / 962,831 FEM;"
              "\n                      9,000,000 -> 160,234 BEM / 8,839,766 "
              "FEM\n");
  return 0;
}
