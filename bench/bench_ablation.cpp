// Ablation studies of the design choices called out in DESIGN.md — not a
// paper figure, but the experiments behind the library's defaults:
//   A. randomized compressed Schur (the paper's future-work item) vs the
//      blocked compressed multi-solve: where global low-rank capture of
//      A_sv A_vv^{-1} A_sv^T pays off and where it degenerates;
//   B. fill-reducing ordering choice for the 3D FEM volume block;
//   C. BLR compression in the sparse solver: factor storage vs time;
//   D. iterative refinement: recovering accuracy lost to aggressive
//      compression for a fraction of a direct re-solve;
//   E. the (eps, precision) ladder: every accuracy knob (compression eps x
//      factor precision) against time, factor storage and final error —
//      the recipe behind choosing single-precision factors with double
//      refinement as the memory-lean default.
#include "bench_common.h"

using namespace cs;
using coupled::Config;
using coupled::Strategy;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns (default 6000)");
  bench::describe_threads(args);
  bench::Observability::describe(args);
  args.check("Ablation studies: randomized Schur, orderings, BLR, "
             "iterative refinement.");
  bench::Observability obs(args, "bench_ablation");
  const index_t n = static_cast<index_t>(args.get_int("n", 6000));

  auto sys = fembem::make_pipe_system<double>({.total_unknowns = n});
  std::printf("system: %d FEM + %d BEM unknowns\n", sys.nv(), sys.ns());
  std::printf("%s\n", bench::kRowHeaderNote);

  // -- A: randomized vs blocked compressed Schur ---------------------------
  std::printf("\n== A. randomized compressed Schur vs blocked multi-solve "
              "==\n");
  TablePrinter ta2({"method", "eps", "time", "peak MiB", "rel err",
                    "rand rank", "n_BEM"});
  for (double eps : {1e-1, 1e-2, 1e-3}) {
    for (Strategy s : {Strategy::kMultiSolveCompressed,
                       Strategy::kMultiSolveRandomized}) {
      Config cfg;
      cfg.strategy = s;
      cfg.eps = eps;
      bench::apply_threads(args, cfg);
      auto st = coupled::solve_coupled(sys, cfg);
      if (!st.success) ++bench::unexpected_failures();
      obs.add(coupled::strategy_name(s), "eps=" + bench::sci(eps), cfg, st);
      ta2.add_row({coupled::strategy_name(s), bench::sci(eps),
                   st.success ? TablePrinter::fmt(st.total_seconds, 1) : "-",
                   st.success ? bench::mib(st.peak_bytes) : "-",
                   st.success ? bench::sci(st.relative_error) : "-",
                   TablePrinter::fmt_int(st.randomized_rank),
                   TablePrinter::fmt_int(st.n_bem)});
      std::fflush(stdout);
    }
  }
  ta2.print();
  std::printf("reading: the randomized variant wins when the adaptive rank "
              "stays far below n_BEM (loose eps); at tight eps the coupling "
              "operator is not globally low-rank and the rank saturates at "
              "its cap — the reason the paper lists this as future work.\n");

  // -- B: ordering choice ---------------------------------------------------
  std::printf("\n== B. fill-reducing ordering for A_vv ==\n");
  TablePrinter tb({"ordering", "analyze+factor s", "factor MiB", "total s"});
  for (auto [method, name] :
       {std::pair{ordering::Method::kNestedDissection, "nested dissection"},
        {ordering::Method::kMinimumDegree, "minimum degree"},
        {ordering::Method::kRcm, "RCM"}}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolve;
    cfg.ordering = method;
    bench::apply_threads(args, cfg);
    auto st = coupled::solve_coupled(sys, cfg);
    if (!st.success) ++bench::unexpected_failures();
    obs.add("ordering", name, cfg, st);
    tb.add_row({name,
                TablePrinter::fmt(st.phases.get("sparse_factorization"), 2),
                bench::mib(st.sparse_factor_bytes),
                TablePrinter::fmt(st.total_seconds, 2)});
    std::fflush(stdout);
  }
  tb.print();

  // -- C: BLR in the sparse solver ------------------------------------------
  std::printf("\n== C. BLR compression in the sparse solver ==\n");
  TablePrinter tc({"BLR", "eps", "factor MiB", "factor s", "total s",
                   "rel err"});
  for (auto [on, eps] : {std::pair{false, 0.0}, {true, 1e-2}, {true, 1e-4}}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolve;
    cfg.sparse_compression = on;
    if (on) cfg.eps = eps;
    bench::apply_threads(args, cfg);
    auto st = coupled::solve_coupled(sys, cfg);
    if (!st.success) ++bench::unexpected_failures();
    obs.add("blr", on ? "eps=" + bench::sci(eps) : "off", cfg, st);
    tc.add_row({on ? "on" : "off", on ? bench::sci(eps) : "-",
                bench::mib(st.sparse_factor_bytes),
                TablePrinter::fmt(st.phases.get("sparse_factorization"), 2),
                TablePrinter::fmt(st.total_seconds, 2),
                bench::sci(st.relative_error)});
    std::fflush(stdout);
  }
  tc.print();

  // -- D: iterative refinement ----------------------------------------------
  std::printf("\n== D. iterative refinement after an eps = 1e-2 compressed "
              "solve ==\n");
  TablePrinter td({"refine sweeps", "total s", "rel err"});
  for (int sweeps : {0, 1, 2, 3}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolveCompressed;
    cfg.eps = 1e-2;
    cfg.refine_iterations = sweeps;
    bench::apply_threads(args, cfg);
    auto st = coupled::solve_coupled(sys, cfg);
    if (!st.success) ++bench::unexpected_failures();
    obs.add("refine", "sweeps=" + std::to_string(sweeps), cfg, st);
    td.add_row({TablePrinter::fmt_int(sweeps),
                TablePrinter::fmt(st.total_seconds, 2),
                bench::sci(st.relative_error)});
    std::fflush(stdout);
  }
  td.print();

  // -- E: the (eps, precision) ladder --------------------------------------
  std::printf("\n== E. accuracy ladder: compression eps x factor precision "
              "==\n");
  TablePrinter te({"eps", "precision", "total s", "factor MiB", "peak MiB",
                   "rel err", "sweeps"});
  for (double eps : {1e-2, 1e-4}) {
    for (auto prec :
         {coupled::Precision::kDouble, coupled::Precision::kSingle}) {
      Config cfg;
      cfg.strategy = Strategy::kMultiSolveCompressed;
      cfg.eps = eps;
      cfg.factor_precision = prec;
      cfg.refine_iterations = 4;
      cfg.refine_tolerance = 1e-9;
      bench::apply_threads(args, cfg);
      auto st = coupled::solve_coupled(sys, cfg);
      if (!st.success) ++bench::unexpected_failures();
      obs.add("ladder",
              "eps=" + bench::sci(eps) + " precision=" +
                  coupled::precision_name(prec),
              cfg, st);
      te.add_row({bench::sci(eps), coupled::precision_name(prec),
                  st.success ? TablePrinter::fmt(st.total_seconds, 2) : "-",
                  bench::mib(st.factor_bytes), bench::mib(st.peak_bytes),
                  st.success ? bench::sci(st.relative_error) : "-",
                  TablePrinter::fmt_int(st.refine_sweeps)});
      std::fflush(stdout);
    }
  }
  te.print();
  std::printf("reading: single-precision factors halve the factor storage "
              "at every eps while double refinement drives the error to the "
              "same target; the time cost is the extra sweeps (plus the "
              "escalation re-factorization if refinement ever stalls).\n");
  return bench::exit_status();
}
