// Out-of-core factors (extension; the paper lists the out-of-core case as
// future work and notes its solvers' OOC features were unused): spilling
// the multifrontal border panels to disk collapses the in-core factor
// footprint at the cost of I/O-bound solves. This driver measures the
// trade on the pipe volume operator.
#include "bench_common.h"
#include "common/parallel.h"
#include "common/random.h"
#include "sparsedirect/multifrontal.h"

using namespace cs;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns (default 24000)");
  bench::describe_threads(args);
  bench::Observability::describe(args);
  args.check("Extension: out-of-core factor storage trade-off.");
  // No coupled solves here, so the report stays empty, but --trace still
  // captures the multifrontal factor/solve spans.
  bench::Observability obs(args, "bench_ooc");
  const index_t n = static_cast<index_t>(args.get_int("n", 24000));
  // No coupled::Config here (the driver talks to the sparse solver
  // directly), so the shared --threads flag installs the OpenMP override
  // for the whole run instead.
  ScopedNumThreads threads(static_cast<int>(args.get_int("threads", 0)));

  auto sys = fembem::make_pipe_system<double>({.total_unknowns = n});
  std::printf("== Out-of-core factors (extension) on A_vv, %d unknowns ==\n",
              sys.nv());

  TablePrinter table({"mode", "factor s", "in-core factor MiB", "disk MiB",
                      "solve s (64 rhs)", "rel err"});
  Rng rng(1);
  la::Matrix<double> X(sys.nv(), 64);
  for (index_t j = 0; j < 64; ++j)
    for (index_t i = 0; i < sys.nv(); ++i) X(i, j) = rng.uniform(-1, 1);
  la::Matrix<double> B(sys.nv(), 64);
  sys.A_vv.spmm(1.0, X.view(), 0.0, B.view());

  for (bool ooc : {false, true}) {
    sparsedirect::MultifrontalSolver<double> mf;
    sparsedirect::SolverOptions opt;
    opt.out_of_core = ooc;
    Timer t_factor;
    mf.factorize(sys.A_vv, opt);
    const double factor_s = t_factor.seconds();
    la::Matrix<double> Y = B;
    Timer t_solve;
    mf.solve(Y.view());
    const double solve_s = t_solve.seconds();
    table.add_row(
        {ooc ? "out-of-core" : "in-core", TablePrinter::fmt(factor_s, 2),
         bench::mib(mf.factor_bytes()),
         ooc ? bench::mib(mf.stats().ooc_bytes) : "-",
         TablePrinter::fmt(solve_s, 2),
         bench::sci(la::rel_diff<double>(Y.view(), X.view()))});
    std::fflush(stdout);
  }
  table.print();
  std::printf("expected: identical accuracy, in-core factor memory "
              "collapsing to the pivot blocks, solves paying the I/O.\n");
  return 0;
}
