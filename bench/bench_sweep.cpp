// Frequency-sweep driver: solves one coupled scene at k frequencies twice
// — naively (every frequency an independent factorize + solve) and with
// the recycling SweepDriver (shared symbolic analysis / cluster tree /
// block skeleton, ACA rank warm starts, frequency-lagged refinement) —
// and reports seconds-per-frequency, factorizations actually performed
// and the ACA cross-product counts for both. The "many frequencies, few
// factorizations" claim is the whole point: the recycled sweep must do
// measurably less work per frequency at the same accuracy. --report
// writes both sweeps' per-frequency JSON; CI asserts recycled wall-clock
// < 0.6x naive and factorizations < k on it.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "coupled/sweep.h"
#include "fembem/shifted.h"

using namespace cs;
using coupled::Config;
using coupled::Strategy;
using coupled::SweepOptions;
using coupled::SweepStats;

namespace {

Strategy strategy_by_name(const std::string& name) {
  for (Strategy s :
       {Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
        Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
        Strategy::kMultiFactorization,
        Strategy::kMultiFactorizationCompressed,
        Strategy::kMultiSolveRandomized}) {
    if (name == coupled::strategy_name(s)) return s;
  }
  std::fprintf(stderr, "unknown --strategy '%s' (see --help)\n",
               name.c_str());
  std::exit(2);
}

double counter_sum(const SweepStats& sw, const char* name) {
  double total = 0;
  for (const auto& f : sw.freqs) {
    auto it = f.counters.find(name);
    if (it != f.counters.end()) total += it->second;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns of the scene (default 6000)");
  args.describe("freqs",
                "frequencies: start:stop:step or comma list "
                "(default 1.1:1.275:0.025, 8 points)");
  args.describe("strategy",
                "coupling strategy name (default multi-solve-compressed)");
  args.describe("scatterers", "extra detached BEM shells (default 1)");
  args.describe("eps", "low-rank accuracy (default 1e-4)");
  args.describe("tol", "refinement tolerance (default 1e-8)");
  args.describe("lagged-sweeps",
                "refinement-sweep floor for lagged solves (default 40; "
                "sweeps are ~10x cheaper than a refactorization)");
  args.describe("no-lagged", "disable tier-3 frequency-lagged refinement");
  bench::describe_threads(args);
  bench::describe_precision(args);
  bench::Observability::describe(args);
  args.check(
      "Frequency sweep with factorization recycling vs the naive sweep: "
      "amortizes symbolic analysis, cluster trees, ACA ranks and (via "
      "frequency-lagged refinement) whole factorizations across the "
      "shifted operators A(omega) = K + (sigma - omega^2) M.");
  bench::Observability obs(args, "bench_sweep");

  fembem::SweepParams sp;
  sp.total_unknowns = static_cast<index_t>(args.get_int("n", 6000));
  sp.scatterers = static_cast<index_t>(args.get_int("scatterers", 1));
  // A frequency-response-style fine grid: the lagged contraction rate
  // scales with |omega^2 - omega'^2|, so closely spaced frequencies are
  // exactly where tier 3 pays (EXPERIMENTS.md).
  const std::vector<double> omegas = args.get_range(
      "freqs", {1.1, 1.125, 1.15, 1.175, 1.2, 1.225, 1.25, 1.275});

  Config cfg;
  cfg.strategy = strategy_by_name(args.get(
      "strategy", coupled::strategy_name(Strategy::kMultiSolveCompressed)));
  cfg.eps = args.get_double("eps", 1e-4);
  cfg.refine_tolerance = args.get_double("tol", 1e-8);
  cfg.refine_iterations = 4;
  bench::apply_threads(args, cfg);
  bench::apply_precision(args, cfg);

  log_info("[sweep] building scene: N=", sp.total_unknowns, ", ",
           omegas.size(), " frequencies, strategy ",
           coupled::strategy_name(cfg.strategy));
  fembem::SweepFamily<double> family(sp);
  log_info("[sweep] scene: nv=", family.nv(), " ns=", family.ns());

  auto run_mode = [&](bool recycle) {
    SweepOptions opt;
    opt.config = cfg;
    opt.recycle = recycle;
    opt.lagged_refinement = recycle && !args.get_bool("no-lagged", false);
    opt.lagged_refine_iterations =
        static_cast<int>(args.get_int("lagged-sweeps", 40));
    coupled::SweepDriver<double> driver(family, opt);
    log_info("[sweep] ", recycle ? "recycled" : "naive", " sweep ...");
    SweepStats sw = driver.run(omegas);
    log_info("[sweep]   -> ", sw.success ? "ok" : sw.failure.c_str(), ", ",
             TablePrinter::fmt(sw.total_seconds, 2), " s total, ",
             sw.factorizations, " factorizations, ", sw.lagged_solves,
             " lagged solves");
    return sw;
  };

  const SweepStats naive = run_mode(false);
  const SweepStats recycled = run_mode(true);

  TablePrinter table({"mode", "s/freq", "total s", "factorizations",
                      "lagged", "aca crosses", "worst rel err"});
  auto add_mode = [&](const char* mode, const SweepStats& sw) {
    double worst = 0;
    for (const auto& f : sw.freqs)
      worst = std::max(worst, f.relative_error);
    table.add_row({mode, TablePrinter::fmt(sw.seconds_per_frequency, 3),
                   TablePrinter::fmt(sw.total_seconds, 2),
                   TablePrinter::fmt_int(sw.factorizations),
                   TablePrinter::fmt_int(sw.lagged_solves),
                   TablePrinter::fmt_int(static_cast<long long>(
                       counter_sum(sw, "aca.iterations"))),
                   bench::sci(worst)});
  };
  add_mode("naive", naive);
  add_mode("recycled", recycled);
  std::printf("\nfrequency sweep, %zu points, %s, N=%lld\n", omegas.size(),
              coupled::strategy_name(cfg.strategy),
              static_cast<long long>(sp.total_unknowns));
  table.print();

  // Per-frequency detail of the recycled sweep: which tier served each
  // frequency, and the refinement effort it took.
  std::printf("\nrecycled sweep per frequency:\n");
  std::printf("  %8s %10s %14s %8s %12s\n", "omega", "s", "served by",
              "sweeps", "rel err");
  for (const auto& f : recycled.freqs)
    std::printf("  %8.3f %10.3f %14s %8d %12.2e\n", f.omega, f.seconds,
                f.lagged ? "lagged" : "refactorized", f.refine_sweeps,
                f.relative_error);

  const double speedup = recycled.total_seconds > 0
                             ? naive.total_seconds / recycled.total_seconds
                             : 0.0;
  std::printf("\nrecycled vs naive: %.2fx faster, %d vs %d factorizations, "
              "%lld vs %lld ACA crosses\n",
              speedup, recycled.factorizations, naive.factorizations,
              static_cast<long long>(counter_sum(recycled,
                                                 "aca.iterations")),
              static_cast<long long>(counter_sum(naive, "aca.iterations")));

  // Self-validation: the sweep exists to amortize; if the recycled sweep
  // did not save at least one factorization at equal accuracy the
  // recycling machinery regressed.
  bool valid = naive.success && recycled.success;
  if (valid && recycled.factorizations >= static_cast<int>(omegas.size())) {
    std::fprintf(stderr,
                 "VALIDATION: recycled sweep refactorized at every "
                 "frequency (no lagged service)\n");
    valid = false;
  }
  double worst_recycled = 0;
  for (const auto& f : recycled.freqs)
    worst_recycled = std::max(worst_recycled, f.relative_error);
  if (valid && cfg.refine_tolerance > 0 &&
      worst_recycled > 100 * cfg.refine_tolerance) {
    std::fprintf(stderr,
                 "VALIDATION: recycled relative error %.2e far above the "
                 "refinement tolerance %.2e\n",
                 worst_recycled, cfg.refine_tolerance);
    valid = false;
  }
  if (!valid) ++bench::unexpected_failures();

  // Flat report: both sweeps side by side, distinguishable from the
  // RunReport shape by the "freq_sweep" key (cs-report renders it).
  const std::string report_path = args.get("report", "");
  if (!report_path.empty()) {
    std::string out = "{\"binary\":\"bench_sweep\"";
    out += ",\"strategy\":\"" +
           std::string(coupled::strategy_name(cfg.strategy)) + "\"";
    out += ",\"n_total\":" + std::to_string(family.total());
    out += ",\"n_fem\":" + std::to_string(family.nv());
    out += ",\"n_bem\":" + std::to_string(family.ns());
    out += ",\"frequencies\":" + std::to_string(omegas.size());
    out += ",\"speedup_recycled_vs_naive\":" + json::number(speedup);
    out += ",\"freq_sweep\":[";
    out += "{\"mode\":\"naive\",\"stats\":" +
           coupled::sweep_stats_json(naive) + "},";
    out += "{\"mode\":\"recycled\",\"stats\":" +
           coupled::sweep_stats_json(recycled) + "}";
    out += "]}\n";
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
      log_info("report: wrote sweep report to ", report_path);
    } else {
      log_warn("report: cannot open ", report_path, " for writing");
    }
  }
  obs.finish();
  return bench::exit_status();
}
