// Figure 11 reproduction: relative error E_rel of the best-time runs of
// multi-solve and multi-factorization for both solver couplings
// (MUMPS/SPIDO analogue = dense Schur, MUMPS/HMAT analogue = compressed
// Schur), with eps = 1e-3 in both the sparse and dense compression. The
// paper's observations to reproduce:
//   1. every error is below the eps = 1e-3 threshold;
//   2. the non-compressed dense coupling (SPIDO) is *more* accurate than
//      the fully compressed one (HMAT), since the dense part never loses
//      accuracy to compression.
#include <vector>

#include "bench_common.h"

using namespace cs;
using coupled::Config;
using coupled::Strategy;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("quick", "restrict to N <= 12000");
  bench::describe_threads(args);
  bench::Observability::describe(args);
  args.check("Reproduces Fig. 11: relative error of the best runs, "
             "eps = 1e-3.");
  bench::Observability obs(args, "bench_fig11");
  const bool quick = args.get_bool("quick", false);

  std::vector<index_t> sizes = {6000, 12000, 24000};
  if (quick) sizes.resize(2);

  std::printf("== Figure 11: relative error of best runs (eps = 1e-3) ==\n");
  std::printf("%s\n\n", bench::kRowHeaderNote);

  struct Entry {
    Strategy strategy;
    const char* coupling;
  };
  const std::vector<Entry> entries = {
      {Strategy::kMultiSolve, "MUMPS/SPIDO-like (dense S)"},
      {Strategy::kMultiSolveCompressed, "MUMPS/HMAT-like (H S)"},
      {Strategy::kMultiFactorization, "MUMPS/SPIDO-like (dense S)"},
      {Strategy::kMultiFactorizationCompressed, "MUMPS/HMAT-like (H S)"},
  };

  TablePrinter table({"algorithm", "coupling", "N", "rel err",
                      "below eps=1e-3?"});
  double worst_dense = 0, worst_compressed = 0;
  for (index_t n : sizes) {
    auto sys = fembem::make_pipe_system<double>({.total_unknowns = n});
    for (const auto& e : entries) {
      Config cfg;
      cfg.strategy = e.strategy;
      cfg.eps = 1e-3;
      cfg.n_c = 128;
      cfg.n_S = 512;
      cfg.n_b = 2;
      bench::apply_threads(args, cfg);
      auto stats = coupled::solve_coupled(sys, cfg);
      obs.add(coupled::strategy_name(e.strategy), e.coupling, cfg, stats);
      if (!stats.success) {
        ++bench::unexpected_failures();  // no budget here: must complete
        table.add_row({coupled::strategy_name(e.strategy), e.coupling,
                       TablePrinter::fmt_int(n), "-",
                       bench::run_status(stats)});
        continue;
      }
      table.add_row({coupled::strategy_name(e.strategy), e.coupling,
                     TablePrinter::fmt_int(n),
                     bench::sci(stats.relative_error),
                     stats.relative_error < 1e-3 ? "yes" : "NO"});
      const bool compressed =
          e.strategy == Strategy::kMultiSolveCompressed ||
          e.strategy == Strategy::kMultiFactorizationCompressed;
      (compressed ? worst_compressed : worst_dense) = std::max(
          compressed ? worst_compressed : worst_dense, stats.relative_error);
      std::fflush(stdout);
    }
  }
  table.print();
  std::printf(
      "\nworst dense-coupling error      : %s\n"
      "worst compressed-coupling error : %s\n"
      "paper's observation (dense coupling more accurate than compressed): "
      "%s\n",
      bench::sci(worst_dense).c_str(), bench::sci(worst_compressed).c_str(),
      worst_dense <= worst_compressed ? "reproduced" : "NOT reproduced");
  return bench::exit_status();
}
