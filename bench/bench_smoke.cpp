// Observability smoke test: runs one small traced solve per strategy,
// self-validates the exported Chrome trace (schema, thread tracks,
// pipeline-stage spans, memory timeline) and the run report, and exits
// non-zero on any problem. CI runs this binary and archives the --trace /
// --report artifacts; it doubles as a quick end-to-end check that the
// tracing layer stays wired through every solve path.
#include <cstdio>
#include <set>
#include <string>

#include "bench_common.h"
#include "common/json.h"
#include "common/random.h"
#include "la/blas.h"

using namespace cs;
using coupled::Config;
using coupled::Strategy;

namespace {

int g_failures = 0;

void expect(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  ok: %s\n", what.c_str());
  } else {
    std::printf("  FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns per solve (default 3500)");
  args.describe("nrhs",
                "batch width of the factor-once/solve-many smoke "
                "(default 4)");
  bench::describe_threads(args);
  bench::Observability::describe(args);
  args.check(
      "Observability smoke test: one traced solve per strategy, "
      "self-validating the trace and report.");
  bench::Observability obs(args, "bench_smoke");
  const index_t n = static_cast<index_t>(args.get_int("n", 3500));
  const index_t nrhs = static_cast<index_t>(args.get_int("nrhs", 4));
  const int threads = static_cast<int>(args.get_int("threads", 4));

  // Tracing is the subject under test: always on here, regardless of
  // --trace (which only decides whether the file is also written).
  auto& tracer = Tracer::instance();
  const bool already_tracing = tracer.enabled();
  if (!already_tracing) tracer.set_enabled(true);

  // -- packed kernel engine sanity ------------------------------------------
  // The whole solver stack now runs on the packed gemm/trsm engine; verify
  // on this host that its results agree with the naive definition before
  // trusting any end-to-end numbers below.
  {
    const index_t kn = 96;
    Rng rng(12345);
    la::Matrix<complexd> A(kn, kn), B(kn, kn), C(kn, kn), R(kn, kn);
    for (index_t j = 0; j < kn; ++j)
      for (index_t i = 0; i < kn; ++i) {
        A(i, j) = rng.scalar<complexd>();
        B(i, j) = rng.scalar<complexd>();
      }
    la::gemm(complexd{1}, A.cview(), la::Op::kNoTrans, B.cview(),
             la::Op::kTrans, complexd{0}, C.view());
    for (index_t j = 0; j < kn; ++j)
      for (index_t i = 0; i < kn; ++i) {
        complexd acc{};
        for (index_t p = 0; p < kn; ++p) acc += A(i, p) * B(j, p);
        R(i, j) = acc;
      }
    const double gemm_err = la::rel_diff(C.cview(), R.cview());
    expect(gemm_err < 1e-13,
           "packed gemm matches naive reference (rel err " +
               bench::sci(gemm_err) + ")");
    // Round-trip triangular solve: X = L \ (L * R) must recover R.
    la::Matrix<complexd> L(kn, kn);
    for (index_t j = 0; j < kn; ++j) {
      for (index_t i = j; i < kn; ++i) L(i, j) = rng.scalar<complexd>();
      L(j, j) += complexd{4};
    }
    la::gemm(complexd{1}, L.cview(), la::Op::kNoTrans, R.cview(),
             la::Op::kNoTrans, complexd{0}, C.view());
    la::trsm(la::Side::kLeft, la::Uplo::kLower, la::Op::kNoTrans,
             la::Diag::kNonUnit, L.cview(), C.view());
    const double trsm_err = la::rel_diff(C.cview(), R.cview());
    expect(trsm_err < 1e-12, "blocked trsm round-trips (rel err " +
                                 bench::sci(trsm_err) + ")");
  }

  auto sys = fembem::make_pipe_system<double>({.total_unknowns = n});
  std::printf("== observability smoke: N = %d (%d FEM + %d BEM), "
              "%d threads ==\n",
              sys.total(), sys.nv(), sys.ns(), threads);

  const Strategy strategies[] = {
      Strategy::kBaselineCoupling,
      Strategy::kAdvancedCoupling,
      Strategy::kMultiSolve,
      Strategy::kMultiSolveCompressed,
      Strategy::kMultiFactorization,
      Strategy::kMultiFactorizationCompressed,
      Strategy::kMultiSolveRandomized,
  };
  for (Strategy s : strategies) {
    Config cfg;
    cfg.strategy = s;
    cfg.num_threads = threads;
    // Small panels/blocks so even this toy size exercises the pipeline and
    // the multi-factorization job graph with real parallelism.
    cfg.n_c = 32;
    cfg.n_S = 64;
    cfg.n_b = 2;
    std::printf("[smoke] %s...\n", coupled::strategy_name(s));
    std::fflush(stdout);
    auto stats = coupled::solve_coupled(sys, cfg);
    obs.add(coupled::strategy_name(s), "smoke", cfg, stats);
    expect(stats.success,
           std::string(coupled::strategy_name(s)) + " solve succeeded");
    expect(stats.relative_error < 1e-1,
           std::string(coupled::strategy_name(s)) + " rel err " +
               bench::sci(stats.relative_error) + " < 1e-1");
    // Attribution ledger: the peak snapshot must decompose the global
    // high-water mark. pack.scratch is budget-exempt per-tag-only
    // accounting and excluded from the sum; concurrent allocators make the
    // snapshot approximate, hence the slack.
    std::size_t tag_sum = 0;
    for (const auto& [tag, bytes] : stats.peak_by_tag)
      if (tag != "pack.scratch") tag_sum += bytes;
    const double lo = 0.75 * static_cast<double>(stats.peak_bytes);
    const double hi = 1.25 * static_cast<double>(stats.peak_bytes) + 1e6;
    expect(static_cast<double>(tag_sum) >= lo &&
               static_cast<double>(tag_sum) <= hi,
           std::string(coupled::strategy_name(s)) + " peak_by_tag sum " +
               format_bytes(tag_sum) + " ~ peak " +
               format_bytes(stats.peak_bytes));
    expect(stats.planner_predicted_bytes > 0,
           std::string(coupled::strategy_name(s)) +
               " planner audit recorded (predicted " +
               format_bytes(stats.planner_predicted_bytes) + ", x" +
               bench::sci(stats.planner_misprediction) + " of measured)");
  }

  // -- factor once, solve a batch -------------------------------------------
  // The persistent-handle path must stay wired through tracing too: one
  // factorization, one batched multi-RHS solution phase.
  {
    Config cfg;
    cfg.strategy = Strategy::kMultiSolveCompressed;
    cfg.num_threads = threads;
    cfg.n_c = 32;
    cfg.n_S = 64;
    std::printf("[smoke] factorize + %d-RHS batch...\n", nrhs);
    std::fflush(stdout);
    auto handle = coupled::factorize_coupled(sys, cfg);
    expect(handle.ok(), "factorize_coupled succeeded");
    if (handle.ok()) {
      la::Matrix<double> Bv(sys.nv(), nrhs), Bs(sys.ns(), nrhs);
      for (index_t j = 0; j < nrhs; ++j) {
        for (index_t i = 0; i < sys.nv(); ++i)
          Bv(i, j) = double(j + 1) * sys.b_v[i];
        for (index_t i = 0; i < sys.ns(); ++i)
          Bs(i, j) = double(j + 1) * sys.b_s[i];
      }
      auto stats = handle.solve(Bv.view(), Bs.view());
      obs.add("factored-batch", "nrhs=" + std::to_string(nrhs), cfg, stats);
      expect(stats.success, "batched solve succeeded");
      expect(stats.nrhs == nrhs, "batched solve reports nrhs=" +
                                     std::to_string(nrhs));
      la::Vector<double> xv(sys.nv()), xs(sys.ns());
      for (index_t i = 0; i < sys.nv(); ++i) xv[i] = Bv(i, 0);
      for (index_t i = 0; i < sys.ns(); ++i) xs[i] = Bs(i, 0);
      const double err = sys.relative_error(xv, xs);
      expect(err < 1e-1,
             "batched column 0 rel err " + bench::sci(err) + " < 1e-1");
    }
  }

  // -- validate the recorded trace -----------------------------------------
  const std::string text = tracer.to_json();
  const std::string problem = validate_chrome_trace(text);
  expect(problem.empty(), "trace validates (" +
                              (problem.empty() ? std::string("clean")
                                               : problem) +
                              ")");

  json::Value doc;
  std::string err;
  expect(json::parse(text, &doc, &err), "trace parses as JSON " + err);
  const json::Value* events = doc.find("traceEvents");
  std::set<double> tids;
  std::set<std::string> names;
  if (events != nullptr && events->is_array()) {
    for (const auto& e : events->array) {
      if (const json::Value* tid = e.find("tid")) tids.insert(tid->number);
      if (const json::Value* name = e.find("name"))
        names.insert(name->string);
    }
  }
  expect(tids.size() >= 4, "trace has >= 4 thread tracks (got " +
                               std::to_string(tids.size()) + ")");
  for (const char* required :
       {"schur.panel_solve", "schur.axpy", "multifacto.factor",
        "solution.schur_solve", "mf.factor", "hmat.assemble",
        "memory.current", "memory.peak", "panels.inflight",
        "mem.mf.front", "mem.schur.dense", "mem.rhs.workspace",
        "mem.hmat.rk"}) {
    expect(names.count(required) > 0,
           std::string("trace contains '") + required + "'");
  }
  expect(names.count("hlu.factor") + names.count("hldlt.factor") > 0,
         "trace contains an H-matrix factorization span");

  if (g_failures == 0)
    std::printf("\nsmoke: all checks passed (%zu events, %zu threads)\n",
                tracer.event_count(), tracer.thread_count());
  else
    std::printf("\nsmoke: %d check(s) FAILED\n", g_failures);

  // Let Observability write the --trace / --report files (the report also
  // carries the per-strategy stage timings and counters).
  obs.finish();
  if (!already_tracing) tracer.set_enabled(false);
  return g_failures == 0 ? 0 : 1;
}
