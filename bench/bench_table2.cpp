// Table II reproduction: the industrial application. Complex,
// non-symmetric system whose surface mesh includes BEM-only dofs (the
// fuselage and wing), raising the BEM share so compression of the dense
// part matters more. Rows, as in the paper:
//   1-3  no compression at all: the advanced coupling and
//        multi-factorization do NOT fit in memory; multi-solve is the only
//        uncompressed solver that runs;
//   4-5  compression in the sparse solver: multi-solve gets faster and
//        lighter; multi-factorization becomes feasible (more memory but
//        less time than multi-solve);
//   6-7  compression in the dense solver too: the biggest improvement;
//   8-9  multi-factorization accelerated further by growing the Schur
//        block size (fewer blocks n_b), trading memory back for speed.
#include "bench_common.h"

using namespace cs;
using coupled::Config;
using coupled::Strategy;

namespace {

coupled::SolveStats run_row(const fembem::CoupledSystem<complexd>& sys,
                            const Config& cfg, TablePrinter& table,
                            const std::string& solver,
                            const std::string& compression,
                            bench::Observability& obs,
                            bool failure_expected = false) {
  log_info("[run] ", solver, " / ", compression, " ...");
  auto stats = coupled::solve_coupled(sys, cfg);
  log_info("[run]   -> ", bench::run_status(stats), ", ",
           TablePrinter::fmt(stats.total_seconds, 1), " s, peak ",
           bench::mib(stats.peak_bytes), " MiB");
  if (!stats.success && !failure_expected) ++bench::unexpected_failures();
  obs.add(solver, compression, cfg, stats);
  table.add_row(
      {solver, compression,
       stats.success ? TablePrinter::fmt(stats.total_seconds, 1) : "-",
       stats.success ? bench::mib(stats.peak_bytes) : "-",
       stats.success ? bench::sci(stats.relative_error) : "-",
       bench::run_status(stats)});
  std::fflush(stdout);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns (default 9000; paper used 2,259,468)");
  args.describe("budget-mib", "memory budget in MiB (default 340)");
  bench::describe_threads(args);
  bench::Observability::describe(args);
  args.check("Reproduces Table II: the industrial aero-acoustic case.");
  bench::Observability obs(args, "bench_table2");
  const index_t n = static_cast<index_t>(args.get_int("n", 9000));
  const std::size_t budget =
      static_cast<std::size_t>(args.get_int("budget-mib", 340)) * 1024 * 1024;

  std::printf("== Table II: industrial application (complex, non-symmetric, "
              "enlarged BEM share) ==\n");
  std::printf("N = %d, budget %s MiB  %s\n\n", n,
              bench::mib(budget).c_str(), bench::kRowHeaderNote);

  fembem::SystemParams params;
  params.total_unknowns = n;
  params.kappa = 1.2;
  params.sigma_real = 2.5;
  params.sigma_imag = 0.4;
  params.symmetric_bem = false;
  params.extra_surface_ratio = 1.0;  // fuselage/wing BEM-only dofs
  auto sys = fembem::make_pipe_system<complexd>(params);
  std::printf("system: %d FEM + %d BEM unknowns (BEM share %.1f%%)\n\n",
              sys.nv(), sys.ns(), 100.0 * sys.ns() / sys.total());

  TablePrinter table({"solver", "compression", "time", "peak MiB",
                      "rel err", "status"});

  auto make = [&](Strategy s, bool sparse_comp, index_t nb) {
    Config cfg;
    cfg.strategy = s;
    cfg.sparse_compression = sparse_comp;
    cfg.eps = 1e-4;  // the paper's industrial accuracy
    cfg.n_c = 128;
    cfg.n_S = 512;
    cfg.n_b = nb;
    cfg.memory_budget = budget;
    // Feasibility is the table's subject: which rows fit the budget is the
    // result, so a budget hit must stay a datum, not trigger a retry.
    cfg.auto_recover = false;
    bench::apply_threads(args, cfg);
    return cfg;
  };

  // Rows 1-3: no compression anywhere. The paper expects the first two to
  // run out of memory (the whole point of the row ordering).
  run_row(sys, make(Strategy::kAdvancedCoupling, false, 2), table,
          "advanced coupling", "none", obs, /*failure_expected=*/true);
  run_row(sys, make(Strategy::kMultiFactorization, false, 2), table,
          "multi-facto (n_b=2)", "none", obs, /*failure_expected=*/true);
  run_row(sys, make(Strategy::kMultiSolve, false, 2), table, "multi-solve",
          "none", obs);
  // Rows 4-5: compression in the sparse solver only.
  run_row(sys, make(Strategy::kMultiSolve, true, 2), table, "multi-solve",
          "sparse", obs);
  run_row(sys, make(Strategy::kMultiFactorization, true, 4), table,
          "multi-facto (n_b=4)", "sparse", obs);
  // Rows 6-7: compression in sparse and dense solvers.
  run_row(sys, make(Strategy::kMultiSolveCompressed, true, 2), table,
          "multi-solve", "sparse+dense", obs);
  run_row(sys, make(Strategy::kMultiFactorizationCompressed, true, 8), table,
          "multi-facto (n_b=8)", "sparse+dense", obs);
  // Rows 8-9: growing the Schur block size (smaller n_b trades the saved
  // memory back for speed; n_b = 1 would need the whole dense Schur in one
  // block and no longer fits the budget -- the same cliff the paper's
  // 212 GiB single-block Schur illustrates).
  run_row(sys, make(Strategy::kMultiFactorizationCompressed, true, 4), table,
          "multi-facto (n_b=4)", "sparse+dense", obs,
          /*failure_expected=*/true);
  run_row(sys, make(Strategy::kMultiFactorizationCompressed, true, 2), table,
          "multi-facto (n_b=2)", "sparse+dense", obs,
          /*failure_expected=*/true);

  table.print();
  std::printf(
      "\npaper's conclusions to check against the rows above:\n"
      "  * without compression only multi-solve completes;\n"
      "  * sparse compression makes multi-facto feasible and faster than "
      "multi-solve (at more memory);\n"
      "  * dense compression gives the largest cut in memory;\n"
      "  * growing the Schur blocks (n_b down) trades memory for speed.\n");
  return bench::exit_status();
}
