// Shared helpers for the experiment drivers (one binary per paper table /
// figure). Each driver prints the same rows/series the paper reports,
// scaled ~200x down so the full suite completes on one core; the *shape*
// (who wins, by what factor, where feasibility caps fall) is the
// reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "common/cli.h"
#include "common/log.h"
#include "common/memory.h"
#include "common/table.h"
#include "common/trace.h"
#include "coupled/coupled.h"
#include "coupled/report.h"
#include "fembem/system.h"

namespace cs::bench {

/// Shared --threads flag (worker threads of the task-parallel layer; 0 =
/// hardware default). Every driver registers it so sweeps can pin the
/// thread count, and applies it with `apply_threads`.
inline void describe_threads(CliArgs& args) {
  args.describe("threads",
                "worker threads for the task-parallel layer "
                "(0 = hardware default)");
}

inline void apply_threads(const CliArgs& args, coupled::Config& cfg) {
  cfg.num_threads = static_cast<int>(args.get_int("threads", 0));
}

/// Shared --precision flag (factor storage precision). `single` stores and
/// applies every factor in float and leans on double-precision refinement,
/// so drivers sweeping memory feasibility see the halved factor footprint.
inline void describe_precision(CliArgs& args) {
  args.describe("precision",
                "factor precision: double (default) or single "
                "(float factors + double refinement)");
}

/// Applies --precision to `cfg`; exits with a usage error on anything but
/// "single" / "double". Single-precision factors need at least one
/// refinement sweep (validate_config enforces it), so drivers that default
/// to refine_iterations == 0 get one sweep here.
inline void apply_precision(const CliArgs& args, coupled::Config& cfg) {
  const std::string p = args.get("precision", "double");
  if (p == "double") {
    cfg.factor_precision = coupled::Precision::kDouble;
  } else if (p == "single") {
    cfg.factor_precision = coupled::Precision::kSingle;
    if (cfg.refine_iterations < 1) cfg.refine_iterations = 2;
  } else {
    std::fprintf(stderr, "unknown --precision '%s' (double | single)\n",
                 p.c_str());
    std::exit(2);
  }
}

inline std::string mib(std::size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", bytes / (1024.0 * 1024.0));
  return buf;
}

inline std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

/// Shared observability surface of every bench driver: --report collects
/// each run's Config + SolveStats into one JSON file, --trace records all
/// runs of the invocation into one Chrome-trace file (open in Perfetto /
/// chrome://tracing), --trace-sample-us sets the memory-timeline sampling
/// period. Construct one per driver after CliArgs::check() and call
/// finish() (or rely on the destructor) before exiting.
class Observability {
 public:
  static void describe(CliArgs& args) {
    args.describe("report", "write per-run Config+SolveStats JSON here");
    args.describe("trace",
                  "write a Chrome trace (Perfetto-loadable) of all runs "
                  "here");
    args.describe("trace-sample-us",
                  "memory/counter sampling period in microseconds "
                  "(default 1000)");
  }

  Observability(const CliArgs& args, const std::string& binary_name)
      : report_path_(args.get("report", "")),
        trace_path_(args.get("trace", "")),
        report_(binary_name) {
    // The [run] progress lines go through the logger now; keep them
    // visible by default, as they were when they were raw fprintf calls.
    if (log_level() > LogLevel::kInfo) set_log_level(LogLevel::kInfo);
    if (!trace_path_.empty()) {
      Tracer::instance().set_enabled(true);
      const auto period = args.get_int("trace-sample-us", 1000);
      if (period > 0) sampler_.emplace(period);
    }
  }

  ~Observability() { finish(); }

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  void add(const std::string& label, const std::string& config_desc,
           const coupled::Config& cfg, const coupled::SolveStats& stats) {
    report_.add(label, config_desc, cfg, stats);
  }

  /// Flush the report and trace files (idempotent).
  void finish() {
    if (done_) return;
    done_ = true;
    sampler_.reset();  // one last memory sample before export
    if (!trace_path_.empty()) {
      auto& tracer = Tracer::instance();
      if (tracer.write_json(trace_path_))
        log_info("trace: wrote ", tracer.event_count(), " events to ",
                 trace_path_);
      tracer.set_enabled(false);
    }
    // Drivers with a bespoke flat report shape (bench_solve, bench_sweep)
    // write --report themselves and never add() runs; an empty RunReport
    // must not clobber their file.
    if (!report_path_.empty() && report_.size() > 0) {
      if (report_.write(report_path_))
        log_info("report: wrote ", report_.size(), " runs to ",
                 report_path_);
    }
  }

 private:
  std::string report_path_;
  std::string trace_path_;
  coupled::RunReport report_;
  std::optional<TraceSampler> sampler_;
  bool done_ = false;
};

/// Runs that failed although the driver did not expect them to (feasibility
/// probes past the paper's memory cliff *expect* failures; those do not
/// count). Drivers return exit_status() from main so CI treats an
/// unrecovered, unexpected failure as a red run instead of a quiet dash in
/// the table.
inline int& unexpected_failures() {
  static int count = 0;
  return count;
}

inline int exit_status() { return unexpected_failures() == 0 ? 0 : 1; }

/// Status cell of one run: "ok", "ok (N recoveries)" or the structured
/// error code of the final failed attempt.
inline std::string run_status(const coupled::SolveStats& stats) {
  if (stats.success) {
    if (stats.recoveries.empty()) return "ok";
    return "ok (" + std::to_string(stats.recoveries.size()) +
           (stats.recoveries.size() == 1 ? " recovery)" : " recoveries)");
  }
  return "FAILED: " + std::string(error_code_name(stats.error.code));
}

/// One experiment run: solve, emit a live progress line, add a row to the
/// final table and (when given) a run to the report. Returns the stats.
/// `failure_expected` marks feasibility probes whose out-of-budget outcome
/// is a datum, not a defect: such failures do not flip the exit status.
inline coupled::SolveStats run_and_row(
    const fembem::CoupledSystem<double>& sys, const coupled::Config& cfg,
    TablePrinter& table, const std::string& label,
    const std::string& config_desc, Observability* obs = nullptr,
    bool failure_expected = false) {
  log_info("[run] ", label, " ", config_desc, " N=", sys.total(), " ...");
  auto stats = coupled::solve_coupled(sys, cfg);
  log_info("[run]   -> ", run_status(stats), ", ",
           TablePrinter::fmt(stats.total_seconds, 1), " s, peak ",
           mib(stats.peak_bytes), " MiB");
  if (!stats.success) {
    log_info("[run]      ", stats.failure);
    if (!failure_expected) ++unexpected_failures();
  }
  for (const auto& rec : stats.recoveries)
    log_info("[run]      recovery: ", rec.action, " after ", rec.error, " (",
             rec.detail, ")");
  table.add_row({label, config_desc, TablePrinter::fmt_int(stats.n_total),
                 stats.success ? TablePrinter::fmt(stats.total_seconds, 1)
                               : "-",
                 stats.success ? mib(stats.peak_bytes) : "-",
                 stats.success ? sci(stats.relative_error) : "-",
                 run_status(stats)});
  if (obs != nullptr) obs->add(label, config_desc, cfg, stats);
  std::fflush(stdout);
  return stats;
}

inline const char* kRowHeaderNote =
    "(times in seconds; memory = tracked peak MiB; scaled-down reproduction"
    " — compare shapes, not absolute values, with the paper)";

}  // namespace cs::bench
