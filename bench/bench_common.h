// Shared helpers for the experiment drivers (one binary per paper table /
// figure). Each driver prints the same rows/series the paper reports,
// scaled ~200x down so the full suite completes on one core; the *shape*
// (who wins, by what factor, where feasibility caps fall) is the
// reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/memory.h"
#include "common/table.h"
#include "coupled/coupled.h"
#include "fembem/system.h"

namespace cs::bench {

/// Shared --threads flag (worker threads of the task-parallel layer; 0 =
/// hardware default). Every driver registers it so sweeps can pin the
/// thread count, and applies it with `apply_threads`.
inline void describe_threads(CliArgs& args) {
  args.describe("threads",
                "worker threads for the task-parallel layer "
                "(0 = hardware default)");
}

inline void apply_threads(const CliArgs& args, coupled::Config& cfg) {
  cfg.num_threads = static_cast<int>(args.get_int("threads", 0));
}

inline std::string mib(std::size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", bytes / (1024.0 * 1024.0));
  return buf;
}

inline std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

/// One experiment run: solve, emit a live progress line (stderr) and add a
/// row to the final table. Returns the stats.
inline coupled::SolveStats run_and_row(
    const fembem::CoupledSystem<double>& sys, const coupled::Config& cfg,
    TablePrinter& table, const std::string& label,
    const std::string& config_desc) {
  std::fprintf(stderr, "[run] %s %s N=%lld ...\n", label.c_str(),
               config_desc.c_str(), static_cast<long long>(sys.total()));
  auto stats = coupled::solve_coupled(sys, cfg);
  std::fprintf(stderr, "[run]   -> %s, %.1f s, peak %s MiB\n",
               stats.success ? "ok" : "OUT OF MEMORY", stats.total_seconds,
               mib(stats.peak_bytes).c_str());
  table.add_row({label, config_desc, TablePrinter::fmt_int(stats.n_total),
                 stats.success ? TablePrinter::fmt(stats.total_seconds, 1)
                               : "-",
                 stats.success ? mib(stats.peak_bytes) : "-",
                 stats.success ? sci(stats.relative_error) : "-",
                 stats.success ? "ok" : "OUT OF MEMORY"});
  std::fflush(stdout);
  return stats;
}

inline const char* kRowHeaderNote =
    "(times in seconds; memory = tracked peak MiB; scaled-down reproduction"
    " — compare shapes, not absolute values, with the paper)";

}  // namespace cs::bench
