// Figure 10 reproduction: best computation times of the multi-solve and
// multi-factorization algorithms (baseline and compressed-Schur variants)
// against problem size N, under a fixed memory budget, together with the
// reference baseline/advanced couplings. The paper's headline: on the
// 128 GiB node, compressed multi-solve reaches N = 9M, baseline multi-solve
// 7M, the multi-factorization variants 2.5M, the advanced coupling 1.3M.
// Scaled ~200x down, the same feasibility ordering must reappear.
#include <vector>

#include "bench_common.h"

using namespace cs;
using coupled::Config;
using coupled::Strategy;

namespace {

struct Candidate {
  Strategy strategy;
  Config config;
  std::string desc;
};

std::vector<Candidate> candidates() {
  std::vector<Candidate> out;
  auto base = Config{};
  base.eps = 1e-3;

  Config c = base;
  c.strategy = Strategy::kBaselineCoupling;
  out.push_back({c.strategy, c, "single sparse solve"});

  c = base;
  c.strategy = Strategy::kAdvancedCoupling;
  out.push_back({c.strategy, c, "single Schur call"});

  for (index_t nc : {128, 256}) {
    c = base;
    c.strategy = Strategy::kMultiSolve;
    c.n_c = nc;
    out.push_back({c.strategy, c, "n_c=" + std::to_string(nc)});
  }
  c = base;
  c.strategy = Strategy::kMultiSolveCompressed;
  c.n_c = 128;
  c.n_S = 512;
  out.push_back({c.strategy, c, "n_c=128 n_S=512"});
  // n_b = 4 is the memory-lean end that defines multi-factorization's
  // feasibility cap (the paper swept n_b up to 10); bench_fig13 covers the
  // full n_b trade-off.
  for (index_t nb : {4}) {
    c = base;
    c.strategy = Strategy::kMultiFactorization;
    c.n_b = nb;
    out.push_back({c.strategy, c, "n_b=" + std::to_string(nb)});
    c.strategy = Strategy::kMultiFactorizationCompressed;
    out.push_back({c.strategy, c, "n_b=" + std::to_string(nb)});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("budget-mib", "virtual memory budget in MiB (default 300)");
  args.describe("quick", "restrict the sweep to N <= 12000");
  args.describe("max-n", "largest total unknown count (default 48000)");
  args.describe("auto-recover",
                "degrade-and-retry instead of treating a budget hit as the "
                "feasibility cap (shows the recovery trail in --report)");
  bench::describe_threads(args);
  bench::describe_precision(args);
  bench::Observability::describe(args);
  args.check(
      "Reproduces Fig. 10: best times vs N per algorithm under a memory "
      "budget, plus the largest N each algorithm can process. "
      "--precision=single halves the factor footprint, pushing each "
      "algorithm's feasibility cap to larger N at the same budget.");
  bench::Observability obs(args, "bench_fig10");

  const std::size_t budget =
      static_cast<std::size_t>(args.get_int("budget-mib", 300)) * 1024 * 1024;
  // This is a feasibility probe: a run that exceeds the budget is the
  // datum the figure reports, so recovery is off unless explicitly asked
  // for (in which case the recovery trail becomes part of the report).
  const bool auto_recover = args.get_bool("auto-recover", false);
  const bool quick = args.get_bool("quick", false);
  const index_t max_n = static_cast<index_t>(args.get_int("max-n", 48000));

  std::vector<index_t> sizes = {6000, 12000, 24000, 48000};
  while (!sizes.empty() && sizes.back() > (quick ? 12000 : max_n))
    sizes.pop_back();

  std::printf("== Figure 10: best time vs N per algorithm ==\n");
  std::printf("budget %s  %s\n\n", bench::mib(budget).c_str(),
              bench::kRowHeaderNote);

  TablePrinter table({"algorithm", "config", "N", "time", "peak MiB",
                      "rel err", "status"});
  // Best time per (strategy, N); feasibility per strategy.
  std::map<Strategy, index_t> largest_ok;
  std::map<std::pair<Strategy, index_t>, double> best_time;
  std::map<Strategy, char> dead;  // stop growing N after first full failure

  for (index_t n : sizes) {
    auto sys = fembem::make_pipe_system<double>({.total_unknowns = n});
    std::map<Strategy, bool> any_ok;
    for (auto& cand : candidates()) {
      if (dead.count(cand.strategy)) continue;
      Config cfg = cand.config;
      cfg.memory_budget = budget;
      cfg.auto_recover = auto_recover;
      bench::apply_threads(args, cfg);
      bench::apply_precision(args, cfg);
      auto stats = bench::run_and_row(
          sys, cfg, table, coupled::strategy_name(cand.strategy), cand.desc,
          &obs, /*failure_expected=*/true);
      if (stats.success) {
        any_ok[cand.strategy] = true;
        auto key = std::make_pair(cand.strategy, n);
        auto it = best_time.find(key);
        if (it == best_time.end() || stats.total_seconds < it->second)
          best_time[key] = stats.total_seconds;
        largest_ok[cand.strategy] =
            std::max(largest_ok[cand.strategy], stats.n_total);
      }
    }
    for (auto& cand : candidates())
      if (!any_ok[cand.strategy] && !dead.count(cand.strategy))
        dead[cand.strategy] = 1;
  }
  table.print();

  std::printf("\n-- best time per (algorithm, N), seconds --\n");
  TablePrinter best({"algorithm", "N", "best time"});
  for (const auto& [key, t] : best_time)
    best.add_row({coupled::strategy_name(key.first),
                  TablePrinter::fmt_int(key.second),
                  TablePrinter::fmt(t, 1)});
  best.print();

  std::printf("\n-- largest N processed within the budget --\n");
  TablePrinter feas({"algorithm", "largest N", "paper (128 GiB node)"});
  const std::map<Strategy, const char*> paper = {
      {Strategy::kBaselineCoupling, "~1,000,000 (no compression)"},
      {Strategy::kAdvancedCoupling, "1,300,000"},
      {Strategy::kMultiSolve, "7,000,000"},
      {Strategy::kMultiSolveCompressed, "9,000,000"},
      {Strategy::kMultiFactorization, "2,500,000"},
      {Strategy::kMultiFactorizationCompressed, "2,500,000"}};
  for (const auto& [strat, n] : largest_ok)
    feas.add_row({coupled::strategy_name(strat), TablePrinter::fmt_int(n),
                  paper.at(strat)});
  feas.print();
  return bench::exit_status();
}
