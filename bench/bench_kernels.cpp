// google-benchmark microbenchmarks of the computational kernels under the
// coupled solver: dense BLAS-3, factorizations, low-rank compression, ACA,
// sparse multifrontal factor/solve and H-matrix assembly. These are not
// paper figures; they document the per-kernel cost model of the library on
// the host machine.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/trace.h"
#include "fembem/system.h"
#include "hmat/hmatrix.h"
#include "la/factor.h"
#include "la/qr_svd.h"
#include "sparsedirect/multifrontal.h"

namespace {

using namespace cs;

la::Matrix<double> random_matrix(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix<double> a(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.uniform(-1, 1);
  return a;
}

void BM_Gemm(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  auto A = random_matrix(n, n, 1);
  auto B = random_matrix(n, n, 2);
  la::Matrix<double> C(n, n);
  for (auto _ : state) {
    la::gemm(1.0, A.view(), la::Op::kNoTrans, B.view(), la::Op::kNoTrans,
             0.0, C.view());
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<long long>(n) *
                          n * n);
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_DenseLdlt(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  auto base = random_matrix(n, n, 3);
  for (index_t i = 0; i < n; ++i) base(i, i) += n;
  for (auto _ : state) {
    state.PauseTiming();
    la::Matrix<double> A = base;
    state.ResumeTiming();
    la::ldlt_factor(A.view());
    benchmark::DoNotOptimize(A.data());
  }
}
BENCHMARK(BM_DenseLdlt)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_DenseLu(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  auto base = random_matrix(n, n, 4);
  for (index_t i = 0; i < n; ++i) base(i, i) += n;
  std::vector<index_t> piv;
  for (auto _ : state) {
    state.PauseTiming();
    la::Matrix<double> A = base;
    state.ResumeTiming();
    la::lu_factor(A.view(), piv);
    benchmark::DoNotOptimize(A.data());
  }
}
BENCHMARK(BM_DenseLu)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_RrqrCompress(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  // Smooth kernel block: numerically low rank.
  la::Matrix<double> A(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      A(i, j) = 1.0 / (4.0 + i + 0.5 * j);
  for (auto _ : state) {
    auto rk = la::rrqr_compress(la::ConstMatrixView<double>(A.view()), 1e-6);
    benchmark::DoNotOptimize(rk.U.data());
  }
}
BENCHMARK(BM_RrqrCompress)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_TruncateRk(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t k = 64;
  auto U = random_matrix(n, k, 5);
  auto V = random_matrix(n, k, 6);
  for (auto _ : state) {
    la::RkFactors<double> rk;
    rk.U = U;
    rk.V = V;
    la::truncate_rk(rk, 1e-6);
    benchmark::DoNotOptimize(rk.U.data());
  }
}
BENCHMARK(BM_TruncateRk)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_SparseFactor3d(benchmark::State& state) {
  const index_t g = static_cast<index_t>(state.range(0));
  sparse::Triplets<double> t(g * g * g, g * g * g);
  auto id = [g](index_t i, index_t j, index_t k) { return i + g * (j + g * k); };
  for (index_t k = 0; k < g; ++k)
    for (index_t j = 0; j < g; ++j)
      for (index_t i = 0; i < g; ++i) {
        t.add(id(i, j, k), id(i, j, k), 6.1);
        if (i + 1 < g) { t.add(id(i, j, k), id(i + 1, j, k), -1.0);
                         t.add(id(i + 1, j, k), id(i, j, k), -1.0); }
        if (j + 1 < g) { t.add(id(i, j, k), id(i, j + 1, k), -1.0);
                         t.add(id(i, j + 1, k), id(i, j, k), -1.0); }
        if (k + 1 < g) { t.add(id(i, j, k), id(i, j, k + 1), -1.0);
                         t.add(id(i, j, k + 1), id(i, j, k), -1.0); }
      }
  auto A = sparse::Csr<double>::from_triplets(t);
  for (auto _ : state) {
    sparsedirect::MultifrontalSolver<double> mf;
    mf.factorize(A, sparsedirect::SolverOptions{});
    benchmark::DoNotOptimize(mf.stats().factor_entries_stored);
  }
}
BENCHMARK(BM_SparseFactor3d)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_SparseSolveMultiRhs(benchmark::State& state) {
  const index_t g = 14;
  const index_t nrhs = static_cast<index_t>(state.range(0));
  sparse::Triplets<double> t(g * g * g, g * g * g);
  auto id = [g](index_t i, index_t j, index_t k) { return i + g * (j + g * k); };
  for (index_t k = 0; k < g; ++k)
    for (index_t j = 0; j < g; ++j)
      for (index_t i = 0; i < g; ++i) {
        t.add(id(i, j, k), id(i, j, k), 6.1);
        if (i + 1 < g) { t.add(id(i, j, k), id(i + 1, j, k), -1.0);
                         t.add(id(i + 1, j, k), id(i, j, k), -1.0); }
        if (j + 1 < g) { t.add(id(i, j, k), id(i, j + 1, k), -1.0);
                         t.add(id(i, j + 1, k), id(i, j, k), -1.0); }
        if (k + 1 < g) { t.add(id(i, j, k), id(i, j, k + 1), -1.0);
                         t.add(id(i, j, k + 1), id(i, j, k), -1.0); }
      }
  auto A = sparse::Csr<double>::from_triplets(t);
  sparsedirect::MultifrontalSolver<double> mf;
  mf.factorize(A, sparsedirect::SolverOptions{});
  auto B = random_matrix(g * g * g, nrhs, 7);
  for (auto _ : state) {
    la::Matrix<double> X = B;
    mf.solve(X.view());
    benchmark::DoNotOptimize(X.data());
  }
}
BENCHMARK(BM_SparseSolveMultiRhs)
    ->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_HMatrixAssemble(benchmark::State& state) {
  const index_t nt = static_cast<index_t>(state.range(0));
  fembem::PipeParams pp;
  pp.n_theta = nt;
  pp.n_axial = 2 * nt;
  pp.n_radial = 3;
  auto mesh = fembem::make_pipe_mesh(pp);
  fembem::BemGenerator<double> gen(fembem::make_bem_surface(mesh), 0.0, true);
  hmat::ClusterTree tree(gen.surface().points, 48);
  hmat::HOptions opt;
  opt.eps = 1e-3;
  for (auto _ : state) {
    auto H = hmat::HMatrix<double>::assemble(tree, tree, gen, opt);
    benchmark::DoNotOptimize(H.stored_entries());
  }
}
BENCHMARK(BM_HMatrixAssemble)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): peel off the shared
// observability flags (--trace=..., --trace-sample-us=...) before
// google-benchmark sees them (it aborts on unknown flags), so kernel
// microbenchmarks can be traced like the solver drivers.
int main(int argc, char** argv) {
  std::string trace_path;
  int sample_us = 1000;
  std::vector<char*> pass;
  pass.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = value_of("--trace=");
    } else if (arg.rfind("--trace-sample-us=", 0) == 0) {
      sample_us = std::atoi(value_of("--trace-sample-us=").c_str());
    } else {
      pass.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(pass.size());
  std::optional<cs::TraceSampler> sampler;
  if (!trace_path.empty()) {
    cs::Tracer::instance().set_enabled(true);
    if (sample_us > 0) sampler.emplace(sample_us);
  }
  benchmark::Initialize(&pass_argc, pass.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, pass.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_path.empty()) {
    sampler.reset();
    cs::Tracer::instance().write_json(trace_path);
    cs::Tracer::instance().set_enabled(false);
  }
  return 0;
}
