// google-benchmark microbenchmarks of the computational kernels under the
// coupled solver: dense BLAS-3, factorizations, low-rank compression, ACA,
// sparse multifrontal factor/solve and H-matrix assembly. These are not
// paper figures; they document the per-kernel cost model of the library on
// the host machine.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/trace.h"
#include "fembem/system.h"
#include "hmat/hmatrix.h"
#include "la/factor.h"
#include "la/qr_svd.h"
#include "sparsedirect/multifrontal.h"

namespace {

using namespace cs;

la::Matrix<double> random_matrix(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix<double> a(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.uniform(-1, 1);
  return a;
}

template <class T>
la::Matrix<T> random_matrix_t(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix<T> a(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = rng.scalar<T>();
  return a;
}

/// gemm flops for an m x n x k product: 2mnk real, 8mnk complex (4 mul +
/// 4 add per element update). items_per_second then reads as FLOP/s.
template <class T>
long long gemm_flops(index_t m, index_t n, index_t k) {
  const long long mnk =
      static_cast<long long>(m) * static_cast<long long>(n) * k;
  return (cs::is_complex_v<T> ? 8 : 2) * mnk;
}

void BM_Gemm(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  auto A = random_matrix(n, n, 1);
  auto B = random_matrix(n, n, 2);
  la::Matrix<double> C(n, n);
  for (auto _ : state) {
    la::gemm(1.0, A.view(), la::Op::kNoTrans, B.view(), la::Op::kNoTrans,
             0.0, C.view());
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * gemm_flops<double>(n, n, n));
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

/// Packed cache-blocked engine, forced (no size dispatch): the tentpole
/// kernel under every dense layer. Square sweep.
template <class T>
void BM_GemmPacked(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  auto A = random_matrix_t<T>(n, n, 1);
  auto B = random_matrix_t<T>(n, n, 2);
  la::Matrix<T> C(n, n);
  for (auto _ : state) {
    la::detail::gemm_packed(T{1}, A.cview(), la::Op::kNoTrans, B.cview(),
                            la::Op::kNoTrans, C.view(), /*parallel=*/true);
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * gemm_flops<T>(n, n, n));
}
BENCHMARK_TEMPLATE(BM_GemmPacked, double)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_GemmPacked, cs::complexd)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
// Mixed-precision factor path: the same engine on 4-byte scalars (16x4 /
// 8x4 micro-tiles). The CI guard checks float >= 1.5x the double rate at
// 512 (half the bytes moved through every cache level).
BENCHMARK_TEMPLATE(BM_GemmPacked, float)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_GemmPacked, cs::complexf)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

/// Unpacked column-blocked kernel (the pre-packing gemm), same shapes:
/// the reference the CI non-regression guard compares against.
template <class T>
void BM_GemmRef(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  auto A = random_matrix_t<T>(n, n, 1);
  auto B = random_matrix_t<T>(n, n, 2);
  la::Matrix<T> C(n, n);
  for (auto _ : state) {
    la::detail::gemm_unpacked(T{1}, A.cview(), la::Op::kNoTrans, B.cview(),
                              la::Op::kNoTrans, C.view(), /*parallel=*/true);
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * gemm_flops<T>(n, n, n));
}
BENCHMARK_TEMPLATE(BM_GemmRef, double)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_GemmRef, cs::complexd)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_GemmRef, float)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_GemmRef, cs::complexf)
    ->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

/// Panel shapes from the solver: the rank-b trailing update of the blocked
/// factorizations (m x n large, k = panel width) and the tall-skinny
/// apply of the compact-WY QR path.
template <class T>
void BM_GemmPanelRankK(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t k = 96;  // factor panel width
  auto A = random_matrix_t<T>(n, k, 3);
  auto B = random_matrix_t<T>(k, n, 4);
  la::Matrix<T> C(n, n);
  for (auto _ : state) {
    la::gemm(T{-1}, A.cview(), la::Op::kNoTrans, B.cview(), la::Op::kNoTrans,
             T{1}, C.view());
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * gemm_flops<T>(n, n, k));
}
BENCHMARK_TEMPLATE(BM_GemmPanelRankK, double)
    ->Arg(768)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_GemmPanelRankK, cs::complexd)
    ->Arg(768)->Unit(benchmark::kMillisecond);

template <class T>
void BM_GemmPanelTall(benchmark::State& state) {
  const index_t m = static_cast<index_t>(state.range(0));
  const index_t n = 64, k = 64;  // WY block-reflector apply shape
  auto A = random_matrix_t<T>(m, k, 5);
  auto B = random_matrix_t<T>(k, n, 6);
  la::Matrix<T> C(m, n);
  for (auto _ : state) {
    la::gemm(T{1}, A.cview(), la::Op::kNoTrans, B.cview(), la::Op::kNoTrans,
             T{0}, C.view());
    benchmark::DoNotOptimize(C.data());
  }
  state.SetItemsProcessed(state.iterations() * gemm_flops<T>(m, n, k));
}
BENCHMARK_TEMPLATE(BM_GemmPanelTall, double)
    ->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_GemmPanelTall, cs::complexd)
    ->Arg(4096)->Unit(benchmark::kMillisecond);

/// Blocked triangular solves, both sides (flops: n^2 * nrhs per side).
template <class T>
void BM_TrsmLeft(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t nrhs = 256;
  auto A = random_matrix_t<T>(n, n, 7);
  for (index_t i = 0; i < n; ++i) A(i, i) += T{static_cast<double>(n)};
  auto B = random_matrix_t<T>(n, nrhs, 8);
  la::Matrix<T> X(n, nrhs);
  for (auto _ : state) {
    X.view().copy_from(B.cview());
    la::trsm(la::Side::kLeft, la::Uplo::kLower, la::Op::kNoTrans,
             la::Diag::kNonUnit, A.cview(), X.view());
    benchmark::DoNotOptimize(X.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          gemm_flops<T>(n, nrhs, n) / 2);
}
BENCHMARK_TEMPLATE(BM_TrsmLeft, double)
    ->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_TrsmLeft, cs::complexd)
    ->Arg(512)->Unit(benchmark::kMillisecond);

template <class T>
void BM_TrsmRight(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t m = 256;
  auto A = random_matrix_t<T>(n, n, 9);
  for (index_t i = 0; i < n; ++i) A(i, i) += T{static_cast<double>(n)};
  auto B = random_matrix_t<T>(m, n, 10);
  la::Matrix<T> X(m, n);
  for (auto _ : state) {
    X.view().copy_from(B.cview());
    la::trsm(la::Side::kRight, la::Uplo::kUpper, la::Op::kNoTrans,
             la::Diag::kNonUnit, A.cview(), X.view());
    benchmark::DoNotOptimize(X.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          gemm_flops<T>(m, n, n) / 2);
}
BENCHMARK_TEMPLATE(BM_TrsmRight, double)
    ->Arg(512)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_TrsmRight, cs::complexd)
    ->Arg(512)->Unit(benchmark::kMillisecond);

void BM_DenseLdlt(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  auto base = random_matrix(n, n, 3);
  for (index_t i = 0; i < n; ++i) base(i, i) += n;
  for (auto _ : state) {
    state.PauseTiming();
    la::Matrix<double> A = base;
    state.ResumeTiming();
    la::ldlt_factor(A.view());
    benchmark::DoNotOptimize(A.data());
  }
}
BENCHMARK(BM_DenseLdlt)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_DenseLu(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  auto base = random_matrix(n, n, 4);
  for (index_t i = 0; i < n; ++i) base(i, i) += n;
  std::vector<index_t> piv;
  for (auto _ : state) {
    state.PauseTiming();
    la::Matrix<double> A = base;
    state.ResumeTiming();
    la::lu_factor(A.view(), piv);
    benchmark::DoNotOptimize(A.data());
  }
}
BENCHMARK(BM_DenseLu)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_RrqrCompress(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  // Smooth kernel block: numerically low rank.
  la::Matrix<double> A(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      A(i, j) = 1.0 / (4.0 + i + 0.5 * j);
  for (auto _ : state) {
    auto rk = la::rrqr_compress(la::ConstMatrixView<double>(A.view()), 1e-6);
    benchmark::DoNotOptimize(rk.U.data());
  }
}
BENCHMARK(BM_RrqrCompress)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_TruncateRk(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t k = 64;
  auto U = random_matrix(n, k, 5);
  auto V = random_matrix(n, k, 6);
  for (auto _ : state) {
    la::RkFactors<double> rk;
    rk.U = U;
    rk.V = V;
    la::truncate_rk(rk, 1e-6);
    benchmark::DoNotOptimize(rk.U.data());
  }
}
BENCHMARK(BM_TruncateRk)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_SparseFactor3d(benchmark::State& state) {
  const index_t g = static_cast<index_t>(state.range(0));
  sparse::Triplets<double> t(g * g * g, g * g * g);
  auto id = [g](index_t i, index_t j, index_t k) { return i + g * (j + g * k); };
  for (index_t k = 0; k < g; ++k)
    for (index_t j = 0; j < g; ++j)
      for (index_t i = 0; i < g; ++i) {
        t.add(id(i, j, k), id(i, j, k), 6.1);
        if (i + 1 < g) { t.add(id(i, j, k), id(i + 1, j, k), -1.0);
                         t.add(id(i + 1, j, k), id(i, j, k), -1.0); }
        if (j + 1 < g) { t.add(id(i, j, k), id(i, j + 1, k), -1.0);
                         t.add(id(i, j + 1, k), id(i, j, k), -1.0); }
        if (k + 1 < g) { t.add(id(i, j, k), id(i, j, k + 1), -1.0);
                         t.add(id(i, j, k + 1), id(i, j, k), -1.0); }
      }
  auto A = sparse::Csr<double>::from_triplets(t);
  for (auto _ : state) {
    sparsedirect::MultifrontalSolver<double> mf;
    mf.factorize(A, sparsedirect::SolverOptions{});
    benchmark::DoNotOptimize(mf.stats().factor_entries_stored);
  }
}
BENCHMARK(BM_SparseFactor3d)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_SparseSolveMultiRhs(benchmark::State& state) {
  const index_t g = 14;
  const index_t nrhs = static_cast<index_t>(state.range(0));
  sparse::Triplets<double> t(g * g * g, g * g * g);
  auto id = [g](index_t i, index_t j, index_t k) { return i + g * (j + g * k); };
  for (index_t k = 0; k < g; ++k)
    for (index_t j = 0; j < g; ++j)
      for (index_t i = 0; i < g; ++i) {
        t.add(id(i, j, k), id(i, j, k), 6.1);
        if (i + 1 < g) { t.add(id(i, j, k), id(i + 1, j, k), -1.0);
                         t.add(id(i + 1, j, k), id(i, j, k), -1.0); }
        if (j + 1 < g) { t.add(id(i, j, k), id(i, j + 1, k), -1.0);
                         t.add(id(i, j + 1, k), id(i, j, k), -1.0); }
        if (k + 1 < g) { t.add(id(i, j, k), id(i, j, k + 1), -1.0);
                         t.add(id(i, j, k + 1), id(i, j, k), -1.0); }
      }
  auto A = sparse::Csr<double>::from_triplets(t);
  sparsedirect::MultifrontalSolver<double> mf;
  mf.factorize(A, sparsedirect::SolverOptions{});
  auto B = random_matrix(g * g * g, nrhs, 7);
  for (auto _ : state) {
    la::Matrix<double> X = B;
    mf.solve(X.view());
    benchmark::DoNotOptimize(X.data());
  }
}
BENCHMARK(BM_SparseSolveMultiRhs)
    ->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_HMatrixAssemble(benchmark::State& state) {
  const index_t nt = static_cast<index_t>(state.range(0));
  fembem::PipeParams pp;
  pp.n_theta = nt;
  pp.n_axial = 2 * nt;
  pp.n_radial = 3;
  auto mesh = fembem::make_pipe_mesh(pp);
  fembem::BemGenerator<double> gen(fembem::make_bem_surface(mesh), 0.0, true);
  hmat::ClusterTree tree(gen.surface().points, 48);
  hmat::HOptions opt;
  opt.eps = 1e-3;
  for (auto _ : state) {
    auto H = hmat::HMatrix<double>::assemble(tree, tree, gen, opt);
    benchmark::DoNotOptimize(H.stored_entries());
  }
}
BENCHMARK(BM_HMatrixAssemble)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): peel off the shared
// observability flags (--trace=..., --trace-sample-us=...) before
// google-benchmark sees them (it aborts on unknown flags), so kernel
// microbenchmarks can be traced like the solver drivers. The shared
// --report=FILE flag of the figure benches maps onto google-benchmark's
// JSON file output (items_per_second carries the FLOP/s rates the CI
// non-regression guard and EXPERIMENTS.md read).
int main(int argc, char** argv) {
  std::string trace_path;
  int sample_us = 1000;
  std::vector<char*> pass;
  std::vector<std::string> rewritten;  // keeps c_str storage alive
  pass.reserve(static_cast<std::size_t>(argc) + 1);
  rewritten.reserve(2 * static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = value_of("--trace=");
    } else if (arg.rfind("--trace-sample-us=", 0) == 0) {
      sample_us = std::atoi(value_of("--trace-sample-us=").c_str());
    } else if (arg.rfind("--report=", 0) == 0) {
      rewritten.push_back("--benchmark_out=" + value_of("--report="));
      rewritten.push_back("--benchmark_out_format=json");
      pass.push_back(rewritten[rewritten.size() - 2].data());
      pass.push_back(rewritten.back().data());
    } else {
      pass.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(pass.size());
  std::optional<cs::TraceSampler> sampler;
  if (!trace_path.empty()) {
    cs::Tracer::instance().set_enabled(true);
    if (sample_us > 0) sampler.emplace(sample_us);
  }
  benchmark::Initialize(&pass_argc, pass.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, pass.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_path.empty()) {
    sampler.reset();
    cs::Tracer::instance().write_json(trace_path);
    cs::Tracer::instance().set_enabled(false);
  }
  return 0;
}
