// Figure 13 reproduction: the performance/memory trade-off of the
// multi-factorization algorithm at fixed N, for both couplings, as the
// Schur block count n_b grows:
//   * more blocks => n_b^2 superfluous re-factorizations of A_vv => slower;
//   * more blocks => smaller dense X_ij blocks live at once => less memory;
//   * compressing S and A_ss reduces memory further, though less
//     dramatically than for multi-solve (the paper's observation).
#include "bench_common.h"

using namespace cs;
using coupled::Config;
using coupled::Strategy;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns (default 6000; paper used 1,000,000)");
  bench::describe_threads(args);
  bench::Observability::describe(args);
  args.check(
      "Reproduces Fig. 13: multi-factorization time/memory vs n_b.");
  bench::Observability obs(args, "bench_fig13");
  const index_t n = static_cast<index_t>(args.get_int("n", 6000));

  std::printf("== Figure 13: multi-factorization trade-off at N = %d ==\n",
              n);
  std::printf("%s\n\n", bench::kRowHeaderNote);
  auto sys = fembem::make_pipe_system<double>({.total_unknowns = n});

  TablePrinter table({"coupling", "config", "N", "time", "peak MiB",
                      "rel err", "status"});
  double t1 = 0, t4 = 0;
  std::size_t m1 = 0, m4 = 0;
  for (index_t nb : {1, 2, 3, 4}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiFactorization;
    cfg.n_b = nb;
    bench::apply_threads(args, cfg);
    auto stats = bench::run_and_row(sys, cfg, table, "MUMPS/SPIDO-like",
                                    "n_b=" + std::to_string(nb), &obs);
    if (nb == 1) { t1 = stats.total_seconds; m1 = stats.peak_bytes; }
    if (nb == 4) { t4 = stats.total_seconds; m4 = stats.peak_bytes; }
  }
  for (index_t nb : {1, 2, 3, 4}) {
    Config cfg;
    cfg.strategy = Strategy::kMultiFactorizationCompressed;
    cfg.n_b = nb;
    bench::apply_threads(args, cfg);
    bench::run_and_row(sys, cfg, table, "MUMPS/HMAT-like",
                       "n_b=" + std::to_string(nb), &obs);
  }
  table.print();
  std::printf(
      "\nexpected shapes (paper): time grows with n_b (superfluous A_vv "
      "re-factorizations), memory falls with n_b.\n"
      "measured (dense coupling): time n_b=4 / n_b=1 = %.2fx, "
      "memory n_b=4 / n_b=1 = %.2fx\n",
      t1 > 0 ? t4 / t1 : 0.0,
      m1 > 0 ? static_cast<double>(m4) / static_cast<double>(m1) : 0.0);
  return bench::exit_status();
}
