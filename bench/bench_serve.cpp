// Serving-traffic driver for the solver daemon (DESIGN.md section 16):
// fires a closed-loop request storm of single-RHS solves at one scene and
// measures requests/sec and p50/p99 latency with the request coalescer
// off and on. The coalescer's claim is structural: N concurrent requests
// for the same fingerprint should collapse into a handful of batched
// solve calls against one cached factorization, so coalesced throughput
// at concurrency must beat the one-column-at-a-time service by a wide
// margin (CI asserts >= 2x at concurrency 16) while every answer stays
// bitwise identical to a direct single-RHS solve. --report writes a
// "serve" JSON (cs-report renders it); --socket drives an external
// cs-served daemon over its unix socket instead of an in-process service.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "coupled/coupled.h"
#include "fembem/system.h"
#include "server/client.h"
#include "server/service.h"

using namespace cs;
using server::SceneSpec;
using server::ServeOptions;
using server::SolverService;

namespace {

coupled::Strategy strategy_by_name(const std::string& name) {
  for (coupled::Strategy s :
       {coupled::Strategy::kBaselineCoupling,
        coupled::Strategy::kAdvancedCoupling, coupled::Strategy::kMultiSolve,
        coupled::Strategy::kMultiSolveCompressed,
        coupled::Strategy::kMultiFactorization,
        coupled::Strategy::kMultiFactorizationCompressed,
        coupled::Strategy::kMultiSolveRandomized}) {
    if (name == coupled::strategy_name(s)) return s;
  }
  std::fprintf(stderr, "unknown --strategy '%s' (see --help)\n", name.c_str());
  std::exit(2);
}

/// Distinct deterministic request columns; requests cycle through them so
/// every batch mixes different right-hand sides.
constexpr int kDistinctCols = 8;

void fill_rhs(index_t nv, index_t ns, int c, std::vector<double>* b_v,
              std::vector<double>* b_s) {
  b_v->resize(static_cast<std::size_t>(nv));
  b_s->resize(static_cast<std::size_t>(ns));
  std::uint32_t s = 77777u + static_cast<std::uint32_t>(c) * 7919u;
  for (auto* vec : {b_v, b_s})
    for (double& x : *vec) {
      s = s * 1664525u + 1013904223u;
      x = 1.0 + double(s >> 8) / double(1u << 24);
    }
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// One load pass: `requests` solves spread over `concurrency` closed-loop
/// worker threads. Every reply is checked bitwise against the reference
/// solution of its column (solve() is per-column bitwise deterministic,
/// so coalescing may change throughput but never a single bit).
struct LoadResult {
  int requests = 0;
  int failures = 0;
  int mismatches = 0;
  double seconds = 0;
  double rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  index_t max_batch = 0;
  std::uint64_t hits = 0, misses = 0, factorizations = 0;
  std::uint64_t batches = 0, columns = 0;
};

LoadResult run_pass(SolverService& service, const SceneSpec& scene,
                    int concurrency, int requests,
                    const std::vector<std::vector<double>>& ref_v,
                    const std::vector<std::vector<double>>& ref_s) {
  const index_t nv = static_cast<index_t>(ref_v[0].size());
  const index_t ns = static_cast<index_t>(ref_s[0].size());
  LoadResult out;
  out.requests = requests;

  std::vector<double> latencies_ms(static_cast<std::size_t>(requests), 0);
  std::atomic<int> next{0};
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::atomic<index_t> max_batch{0};

  Timer wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(concurrency));
  for (int w = 0; w < concurrency; ++w)
    workers.emplace_back([&] {
      std::vector<double> b_v, b_s;
      for (;;) {
        const int r = next.fetch_add(1);
        if (r >= requests) break;
        const int c = r % kDistinctCols;
        b_v = ref_v[static_cast<std::size_t>(c)];  // unsolved copy below
        b_s = ref_s[static_cast<std::size_t>(c)];
        fill_rhs(nv, ns, c, &b_v, &b_s);
        Timer t;
        const server::RequestResult res =
            service.solve(scene, b_v.data(), b_s.data());
        latencies_ms[static_cast<std::size_t>(r)] = t.seconds() * 1e3;
        if (!res.ok) {
          ++failures;
          continue;
        }
        index_t seen = max_batch.load();
        while (res.batch_columns > seen &&
               !max_batch.compare_exchange_weak(seen, res.batch_columns)) {
        }
        if (std::memcmp(b_v.data(), ref_v[static_cast<std::size_t>(c)].data(),
                        sizeof(double) * b_v.size()) != 0 ||
            std::memcmp(b_s.data(), ref_s[static_cast<std::size_t>(c)].data(),
                        sizeof(double) * b_s.size()) != 0)
          ++mismatches;
      }
    });
  for (auto& t : workers) t.join();

  out.seconds = wall.seconds();
  out.failures = failures.load();
  out.mismatches = mismatches.load();
  out.rps = out.seconds > 0 ? requests / out.seconds : 0;
  out.p50_ms = percentile(latencies_ms, 0.50);
  out.p99_ms = percentile(latencies_ms, 0.99);
  out.max_batch = max_batch.load();
  const server::ServiceCounters& c = service.counters();
  out.hits = c.cache_hits.load();
  out.misses = c.cache_misses.load();
  out.factorizations = c.factorizations.load();
  out.batches = c.coalesced_batches.load();
  out.columns = c.coalesced_columns.load();
  return out;
}

std::string mode_json(const char* mode, const LoadResult& r) {
  std::string out = "{\"mode\":\"" + std::string(mode) + "\"";
  out += ",\"requests\":" + std::to_string(r.requests);
  out += ",\"failures\":" + std::to_string(r.failures);
  out += ",\"mismatches\":" + std::to_string(r.mismatches);
  out += ",\"seconds\":" + json::number(r.seconds);
  out += ",\"requests_per_second\":" + json::number(r.rps);
  out += ",\"p50_ms\":" + json::number(r.p50_ms);
  out += ",\"p99_ms\":" + json::number(r.p99_ms);
  out += ",\"max_batch_columns\":" + std::to_string(r.max_batch);
  out += ",\"cache_hits\":" + std::to_string(r.hits);
  out += ",\"cache_misses\":" + std::to_string(r.misses);
  out += ",\"factorizations\":" + std::to_string(r.factorizations);
  out += ",\"coalesced_batches\":" + std::to_string(r.batches);
  out += ",\"coalesced_columns\":" + std::to_string(r.columns);
  out += "}";
  return out;
}

void print_row(TablePrinter& table, const char* mode, const LoadResult& r) {
  table.add_row({mode, TablePrinter::fmt_int(r.requests),
                 TablePrinter::fmt(r.rps, 1),
                 TablePrinter::fmt(r.p50_ms, 2), TablePrinter::fmt(r.p99_ms, 2),
                 TablePrinter::fmt_int(static_cast<long long>(r.max_batch)),
                 TablePrinter::fmt_int(static_cast<long long>(r.hits)),
                 TablePrinter::fmt_int(static_cast<long long>(r.factorizations))});
}

/// External-daemon mode: the same closed-loop storm through one
/// ServeClient per worker against a cs-served unix socket. Identical
/// columns must come back bitwise identical across requests (the daemon
/// solves them through one cached factorization).
int run_socket_mode(CliArgs& args, const SceneSpec& scene, int concurrency,
                    int requests, const std::string& socket_path) {
  server::ServeClient probe;
  probe.connect_unix(socket_path);
  probe.ping();
  const server::ServeClient::Description d = probe.describe(scene);
  const index_t nv = static_cast<index_t>(d.nv);
  const index_t ns = static_cast<index_t>(d.ns);
  log_info("[serve] daemon scene: nv=", d.nv, " ns=", d.ns,
           d.resident ? " (resident)" : " (cold)");

  // First occurrence of each column is the reference; later replies for
  // the same column must match it bitwise.
  std::vector<std::vector<double>> seen_v(kDistinctCols), seen_s(kDistinctCols);
  std::mutex seen_mu;
  std::vector<double> latencies_ms(static_cast<std::size_t>(requests), 0);
  std::atomic<int> next{0}, failures{0}, mismatches{0};
  std::atomic<std::uint32_t> max_batch{0};

  Timer wall;
  std::vector<std::thread> workers;
  for (int w = 0; w < concurrency; ++w)
    workers.emplace_back([&] {
      server::ServeClient client;
      try {
        client.connect_unix(socket_path);
      } catch (const std::exception& ex) {
        log_error("[serve] worker connect failed: ", ex.what());
        ++failures;
        return;
      }
      std::vector<double> b_v, b_s;
      for (;;) {
        const int r = next.fetch_add(1);
        if (r >= requests) break;
        const int c = r % kDistinctCols;
        fill_rhs(nv, ns, c, &b_v, &b_s);
        Timer t;
        try {
          const auto reply = client.solve(scene, b_v, b_s);
          latencies_ms[static_cast<std::size_t>(r)] = t.seconds() * 1e3;
          if (!reply.ok) {
            ++failures;
            continue;
          }
          std::uint32_t seen = max_batch.load();
          while (reply.batch_columns > seen &&
                 !max_batch.compare_exchange_weak(seen, reply.batch_columns)) {
          }
        } catch (const std::exception& ex) {
          log_error("[serve] request failed: ", ex.what());
          ++failures;
          continue;
        }
        std::lock_guard<std::mutex> g(seen_mu);
        auto& rv = seen_v[static_cast<std::size_t>(c)];
        auto& rs = seen_s[static_cast<std::size_t>(c)];
        if (rv.empty()) {
          rv = b_v;
          rs = b_s;
        } else if (std::memcmp(rv.data(), b_v.data(),
                               sizeof(double) * rv.size()) != 0 ||
                   std::memcmp(rs.data(), b_s.data(),
                               sizeof(double) * rs.size()) != 0) {
          ++mismatches;
        }
      }
    });
  for (auto& t : workers) t.join();
  const double seconds = wall.seconds();

  const std::string stats = probe.stats_json();
  std::printf("\nserving %d requests over %d connections: %.2f s, %.1f req/s, "
              "p50 %.2f ms, p99 %.2f ms, %d failures, %d mismatches\n",
              requests, concurrency, seconds,
              seconds > 0 ? requests / seconds : 0,
              percentile(latencies_ms, 0.5), percentile(latencies_ms, 0.99),
              failures.load(), mismatches.load());
  std::printf("daemon stats: %s\n", stats.c_str());

  if (failures.load() > 0 || mismatches.load() > 0)
    ++bench::unexpected_failures();

  const std::string report_path = args.get("report", "");
  if (!report_path.empty()) {
    LoadResult lr;
    lr.requests = requests;
    lr.failures = failures.load();
    lr.mismatches = mismatches.load();
    lr.seconds = seconds;
    lr.rps = seconds > 0 ? requests / seconds : 0;
    lr.p50_ms = percentile(latencies_ms, 0.5);
    lr.p99_ms = percentile(latencies_ms, 0.99);
    lr.max_batch = static_cast<index_t>(max_batch.load());
    // The cache/coalescer counters live daemon-side; lift them out of the
    // stats reply so the "serve" row carries them like in-process mode.
    json::Value daemon;
    std::string err;
    if (json::parse(stats, &daemon, &err)) {
      auto u64 = [&](const char* key) {
        const json::Value* v = daemon.find(key);
        return v != nullptr && v->is_number()
                   ? static_cast<std::uint64_t>(v->number)
                   : 0u;
      };
      lr.hits = u64("cache_hit");
      lr.misses = u64("cache_miss");
      lr.factorizations = u64("factorizations");
      lr.batches = u64("coalesced_batches");
      lr.columns = u64("coalesced_columns");
    }
    std::string out = "{\"binary\":\"bench_serve\"";
    out += ",\"n_total\":" + std::to_string(scene.total_unknowns);
    out += ",\"nv\":" + std::to_string(d.nv);
    out += ",\"ns\":" + std::to_string(d.ns);
    out += ",\"concurrency\":" + std::to_string(concurrency);
    out += ",\"socket\":\"" + socket_path + "\"";
    out += ",\"daemon_stats\":" + stats;
    out += ",\"serve\":[" + mode_json("socket", lr) + "]}\n";
    FILE* f = std::fopen(report_path.c_str(), "w");
    if (f == nullptr) {
      log_error("[serve] cannot write report to ", report_path);
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    log_info("[serve] report written to ", report_path);
  }
  if (args.get_bool("shutdown-daemon", false)) {
    log_info("[serve] asking the daemon to shut down");
    probe.shutdown_server();
  }
  return bench::exit_status();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns of the scene (default 3000)");
  args.describe("requests", "total solve requests per pass (default 64)");
  args.describe("concurrency", "closed-loop client threads (default 16)");
  args.describe("strategy", "coupling strategy name (default multi-solve)");
  args.describe("eps", "low-rank accuracy (default 1e-4)");
  args.describe("window", "coalescing window in microseconds (default 200)");
  args.describe("max-batch", "max columns per coalesced solve (default 256)");
  args.describe("socket",
                "drive an external cs-served daemon at this unix socket "
                "instead of the in-process service");
  args.describe("shutdown-daemon",
                "with --socket: send a shutdown request when done");
  bench::describe_threads(args);
  bench::describe_precision(args);
  bench::Observability::describe(args);
  args.check(
      "Solver-as-a-service load generator: requests/sec and p50/p99 "
      "latency of concurrent single-RHS solves against the factorization "
      "cache, coalesced vs uncoalesced. Every reply is validated bitwise "
      "against a direct solve of the same column.");
  bench::Observability obs(args, "bench_serve");

  SceneSpec scene;
  scene.total_unknowns = args.get_int("n", 3000);
  const int concurrency = static_cast<int>(args.get_int("concurrency", 16));
  const int requests = static_cast<int>(args.get_int("requests", 64));

  const std::string socket_path = args.get("socket", "");
  if (!socket_path.empty())
    return run_socket_mode(args, scene, concurrency, requests, socket_path);

  ServeOptions opts;
  opts.solver.strategy = strategy_by_name(
      args.get("strategy", coupled::strategy_name(coupled::Strategy::kMultiSolve)));
  opts.solver.eps = args.get_double("eps", 1e-4);
  opts.coalesce_window_us = static_cast<int>(args.get_int("window", 200));
  opts.max_batch = static_cast<index_t>(args.get_int("max-batch", 256));
  bench::apply_threads(args, opts.solver);
  bench::apply_precision(args, opts.solver);

  // Reference solutions: each distinct column solved alone against a
  // directly factorized handle with the same config. The service must
  // reproduce these bitwise in both modes.
  log_info("[serve] building scene and reference solutions: N=",
           scene.total_unknowns);
  fembem::SystemParams prm;
  prm.total_unknowns = static_cast<index_t>(scene.total_unknowns);
  const auto sys = fembem::make_pipe_system<double>(prm);
  const auto handle = coupled::factorize_coupled(sys, opts.solver);
  if (!handle.ok()) {
    log_error("[serve] reference factorization failed: ",
              handle.stats().failure);
    return 1;
  }
  const index_t nv = sys.nv();
  const index_t ns = sys.ns();
  std::vector<std::vector<double>> ref_v(kDistinctCols), ref_s(kDistinctCols);
  for (int c = 0; c < kDistinctCols; ++c) {
    fill_rhs(nv, ns, c, &ref_v[c], &ref_s[c]);
    la::MatrixView<double> Bv(ref_v[c].data(), nv, 1, nv);
    la::MatrixView<double> Bs(ref_s[c].data(), ns, 1, ns);
    if (!handle.solve(Bv, Bs).success) {
      log_error("[serve] reference solve failed");
      return 1;
    }
  }

  auto run_mode = [&](bool coalesce) {
    ServeOptions o = opts;
    o.coalesce = coalesce;
    SolverService service(o);
    // Warm the cache outside the timed window: the pass measures serving
    // throughput, not the one-off factorization (which the report still
    // shows via the counters: 1 factorization, requests-1 hits).
    std::vector<double> warm_v, warm_s;
    fill_rhs(nv, ns, 0, &warm_v, &warm_s);
    if (!service.solve(scene, warm_v.data(), warm_s.data()).ok)
      log_error("[serve] warm-up solve failed");
    log_info("[serve] ", coalesce ? "coalesced" : "uncoalesced", " pass: ",
             requests, " requests over ", concurrency, " threads ...");
    LoadResult r = run_pass(service, scene, concurrency, requests, ref_v,
                            ref_s);
    log_info("[serve]   -> ", TablePrinter::fmt(r.rps, 1), " req/s, p99 ",
             TablePrinter::fmt(r.p99_ms, 2), " ms, max batch ",
             static_cast<long long>(r.max_batch));
    return r;
  };

  const LoadResult uncoalesced = run_mode(false);
  const LoadResult coalesced = run_mode(true);

  TablePrinter table({"mode", "requests", "req/s", "p50 ms", "p99 ms",
                      "max batch", "hits", "factorizations"});
  print_row(table, "uncoalesced", uncoalesced);
  print_row(table, "coalesced", coalesced);
  std::printf("\nserving traffic, N=%lld, concurrency %d\n",
              static_cast<long long>(scene.total_unknowns), concurrency);
  table.print();

  const double speedup =
      uncoalesced.rps > 0 ? coalesced.rps / uncoalesced.rps : 0;
  std::printf("\ncoalesced vs uncoalesced: %.2fx requests/sec "
              "(%d columns in %d batched solves)\n",
              speedup, static_cast<int>(coalesced.columns),
              static_cast<int>(coalesced.batches));

  // Self-validation: the cache must have hit (one factorization per
  // pass including warm-up), and every reply must be bitwise right.
  bool valid = true;
  for (const LoadResult* r : {&uncoalesced, &coalesced}) {
    if (r->failures > 0 || r->mismatches > 0) {
      std::fprintf(stderr, "VALIDATION: %d failures, %d bitwise mismatches\n",
                   r->failures, r->mismatches);
      valid = false;
    }
    if (r->factorizations != 1) {
      std::fprintf(stderr,
                   "VALIDATION: expected exactly 1 factorization per pass, "
                   "saw %d (cache miss on a repeat fingerprint)\n",
                   static_cast<int>(r->factorizations));
      valid = false;
    }
    if (r->hits < static_cast<std::uint64_t>(r->requests)) {
      std::fprintf(stderr, "VALIDATION: only %d cache hits for %d requests\n",
                   static_cast<int>(r->hits), r->requests);
      valid = false;
    }
  }
  if (!valid) ++bench::unexpected_failures();

  const std::string report_path = args.get("report", "");
  if (!report_path.empty()) {
    std::string out = "{\"binary\":\"bench_serve\"";
    out += ",\"strategy\":\"" +
           std::string(coupled::strategy_name(opts.solver.strategy)) + "\"";
    out += ",\"n_total\":" + std::to_string(scene.total_unknowns);
    out += ",\"nv\":" + std::to_string(nv);
    out += ",\"ns\":" + std::to_string(ns);
    out += ",\"concurrency\":" + std::to_string(concurrency);
    out += ",\"coalesce_window_us\":" + std::to_string(opts.coalesce_window_us);
    out += ",\"coalesced_speedup\":" + json::number(speedup);
    out += ",\"serve\":[" + mode_json("uncoalesced", uncoalesced) + "," +
           mode_json("coalesced", coalesced) + "]}\n";
    FILE* f = std::fopen(report_path.c_str(), "w");
    if (f == nullptr) {
      log_error("[serve] cannot write report to ", report_path);
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    log_info("[serve] report written to ", report_path);
  }
  return bench::exit_status();
}
