// Factor-once / solve-many throughput driver: runs one factorization per
// invocation (factorize_coupled), then sweeps batched multi-RHS solves
// over nrhs in {1, 4, 16, 64, 256} (or a single --nrhs point) against the
// persistent FactoredCoupled handle. Reports solves/sec of the solution
// phase alone and the amortized cost per RHS including the factorization,
// the quantity the paper's "solution phase is cheap once factored"
// argument rests on. --report writes a self-validated JSON file CI uses
// to assert that factorize + 64 batched RHS stays well under 2x the cost
// of factorize + 1 RHS.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/json.h"
#include "coupled/planner.h"
#include "la/matrix.h"

using namespace cs;
using coupled::Config;
using coupled::Strategy;

namespace {

Strategy strategy_by_name(const std::string& name) {
  for (Strategy s :
       {Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
        Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
        Strategy::kMultiFactorization,
        Strategy::kMultiFactorizationCompressed,
        Strategy::kMultiSolveRandomized}) {
    if (name == coupled::strategy_name(s)) return s;
  }
  std::fprintf(stderr, "unknown --strategy '%s' (see --help)\n",
               name.c_str());
  std::exit(2);
}

// RHS block whose column j is (j+1) x the system's built-in RHS; column j
// of the exact solution is then (j+1) x the manufactured reference, which
// validates every column of the batch against the known answer.
la::Matrix<double> scaled_rhs(const la::Vector<double>& b, index_t nrhs) {
  la::Matrix<double> B(b.size(), nrhs);
  for (index_t j = 0; j < nrhs; ++j)
    for (index_t i = 0; i < b.size(); ++i)
      B(i, j) = double(j + 1) * b[i];
  return B;
}

struct SweepPoint {
  index_t nrhs = 0;
  double solve_seconds = 0;
  double solves_per_sec = 0;
  double amortized_seconds_per_rhs = 0;  // (factor + solve) / nrhs
  double total_with_factor = 0;          // factor + solve
  double max_column_error = 0;
  bool ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns (default 6000)");
  args.describe("strategy",
                "coupling strategy name (default multi-solve-compressed)");
  args.describe("nrhs",
                "single batch width to run (0 = sweep 1,4,16,64,256)");
  args.describe("refine", "iterative refinement sweeps per solve");
  bench::describe_precision(args);
  args.describe("checkpoint",
                "save the factored handle to this path, reload it, and time "
                "both (adds a \"checkpoint\" section to --report)");
  args.describe("report",
                "write the factorization + sweep JSON here (solves/sec, "
                "amortized cost per RHS)");
  bench::describe_threads(args);
  args.check(
      "Factor-once / solve-many throughput: one factorization, a sweep of "
      "batched multi-RHS solution phases against the persistent handle.");

  const index_t n = static_cast<index_t>(args.get_int("n", 6000));
  const index_t one_nrhs = static_cast<index_t>(args.get_int("nrhs", 0));
  Config cfg;
  cfg.strategy = strategy_by_name(
      args.get("strategy", coupled::strategy_name(
                               Strategy::kMultiSolveCompressed)));
  cfg.refine_iterations = static_cast<int>(args.get_int("refine", 0));
  bench::apply_threads(args, cfg);
  bench::apply_precision(args, cfg);

  auto sys = fembem::make_pipe_system<double>({.total_unknowns = n});
  std::printf("== factor once, solve many: N = %d (%d FEM + %d BEM), %s ==\n",
              sys.total(), sys.nv(), sys.ns(),
              coupled::strategy_name(cfg.strategy));

  Timer factor_timer;
  auto handle = coupled::factorize_coupled(sys, cfg);
  const double factor_seconds = factor_timer.seconds();
  if (!handle.ok()) {
    std::fprintf(stderr, "factorization failed: %s\n",
                 handle.stats().failure.c_str());
    return 1;
  }
  std::printf("factorize: %.2f s (%d attempt%s, peak %s MiB)\n",
              factor_seconds, handle.stats().attempts,
              handle.stats().attempts == 1 ? "" : "s",
              bench::mib(handle.stats().peak_bytes).c_str());

  // Optional durability leg: serialize the handle, reload it from disk,
  // and report how much cheaper the load is than refactorizing. This is
  // the number the "factor once, restart later" workflow rests on.
  const std::string ckpt_path = args.get("checkpoint", "");
  double ckpt_save_seconds = 0, ckpt_load_seconds = 0;
  std::size_t ckpt_bytes = 0;
  bool ckpt_ok = false;
  int ckpt_failures = 0;
  if (!ckpt_path.empty()) {
    Timer save_timer;
    SolveError save_error;
    ckpt_bytes = handle.save(ckpt_path, &save_error);
    ckpt_save_seconds = save_timer.seconds();
    if (ckpt_bytes == 0) {
      std::fprintf(stderr, "checkpoint save failed at %s: %s\n",
                   save_error.site.c_str(), save_error.detail.c_str());
      ++ckpt_failures;
    } else {
      Config load_cfg;
      bench::apply_threads(args, load_cfg);
      Timer load_timer;
      auto restored = coupled::load_factored<double>(ckpt_path, sys, load_cfg);
      ckpt_load_seconds = load_timer.seconds();
      ckpt_ok = restored.ok() &&
                restored.stats().checkpoint_source == "checkpoint";
      if (!ckpt_ok) {
        std::fprintf(stderr, "checkpoint load failed: %s\n",
                     restored.stats().failure.c_str());
        ++ckpt_failures;
      } else {
        // The restored handle must still produce the manufactured answer.
        la::Matrix<double> Bv = scaled_rhs(sys.b_v, 1);
        la::Matrix<double> Bs = scaled_rhs(sys.b_s, 1);
        restored.solve(Bv.view(), Bs.view());
        la::Vector<double> xv(sys.nv()), xs(sys.ns());
        for (index_t i = 0; i < sys.nv(); ++i) xv[i] = Bv(i, 0);
        for (index_t i = 0; i < sys.ns(); ++i) xs[i] = Bs(i, 0);
        const double err = sys.relative_error(xv, xs);
        if (!(err < 1e-2)) {
          std::fprintf(stderr,
                       "checkpoint-restored solve inaccurate: %.3e\n", err);
          ckpt_ok = false;
          ++ckpt_failures;
        }
      }
      const double speedup = ckpt_load_seconds > 0
                                 ? factor_seconds / ckpt_load_seconds
                                 : 0.0;
      std::printf("checkpoint: %s MiB, save %.3f s, load %.3f s "
                  "(load %.1fx faster than factorize)%s\n",
                  bench::mib(ckpt_bytes).c_str(), ckpt_save_seconds,
                  ckpt_load_seconds, speedup, ckpt_ok ? "" : "  FAILED");
    }
  }

  std::vector<index_t> widths;
  if (one_nrhs > 0)
    widths.push_back(one_nrhs);
  else
    widths = {1, 4, 16, 64, 256};

  // Size the sweep against the budget headroom the factorization left: a
  // batch whose transients would blow the budget is skipped, not crashed.
  const std::size_t budget = cfg.memory_budget;
  std::vector<SweepPoint> points;
  TablePrinter table(
      {"nrhs", "solve s", "solves/s", "amortized s/rhs", "max col err",
       "status"});

  int failures = 0;
  for (index_t nrhs : widths) {
    SweepPoint p;
    p.nrhs = nrhs;
    const std::size_t batch_bytes = coupled::solve_batch_bytes(
        sys.nv(), sys.ns(), nrhs, sizeof(double), cfg.refine_iterations > 0);
    if (budget > 0 &&
        MemoryTracker::instance().current() + batch_bytes > budget) {
      std::printf("[solve] nrhs=%d skipped: batch transients (%s MiB) "
                  "exceed the budget headroom\n",
                  nrhs, bench::mib(batch_bytes).c_str());
      table.add_row({TablePrinter::fmt_int(nrhs), "-", "-", "-", "-",
                     "skipped (budget)"});
      points.push_back(p);
      continue;
    }

    la::Matrix<double> Bv = scaled_rhs(sys.b_v, nrhs);
    la::Matrix<double> Bs = scaled_rhs(sys.b_s, nrhs);
    Timer solve_timer;
    auto stats = handle.solve(Bv.view(), Bs.view());
    p.solve_seconds = solve_timer.seconds();
    p.ok = stats.success;
    if (!stats.success) {
      std::printf("[solve] nrhs=%d FAILED: %s\n", nrhs,
                  stats.failure.c_str());
      table.add_row({TablePrinter::fmt_int(nrhs), "-", "-", "-", "-",
                     "FAILED"});
      ++failures;
      points.push_back(p);
      continue;
    }
    p.solves_per_sec =
        p.solve_seconds > 0 ? nrhs / p.solve_seconds : 0.0;
    p.total_with_factor = factor_seconds + p.solve_seconds;
    p.amortized_seconds_per_rhs = p.total_with_factor / nrhs;

    // Every column must recover its scaled manufactured solution.
    la::Vector<double> xv(sys.nv()), xs(sys.ns());
    for (index_t j = 0; j < nrhs; ++j) {
      for (index_t i = 0; i < sys.nv(); ++i) xv[i] = Bv(i, j) / (j + 1);
      for (index_t i = 0; i < sys.ns(); ++i) xs[i] = Bs(i, j) / (j + 1);
      p.max_column_error =
          std::max(p.max_column_error, sys.relative_error(xv, xs));
    }
    if (!(p.max_column_error < 1e-2)) {
      ++failures;
      p.ok = false;
    }
    table.add_row({TablePrinter::fmt_int(nrhs),
                   TablePrinter::fmt(p.solve_seconds, 3),
                   TablePrinter::fmt(p.solves_per_sec, 1),
                   TablePrinter::fmt(p.amortized_seconds_per_rhs, 3),
                   bench::sci(p.max_column_error),
                   p.ok ? "ok" : "FAILED (accuracy)"});
    points.push_back(p);
  }
  table.print();
  std::printf("(amortized s/rhs = (factorization + batched solve) / nrhs; "
              "the factorization is paid once per handle)\n");

  const std::string report_path = args.get("report", "");
  if (!report_path.empty()) {
    std::string out = "{\"binary\":\"bench_solve\"";
    out += ",\"strategy\":\"" +
           std::string(coupled::strategy_name(cfg.strategy)) + "\"";
    out += ",\"n_total\":" + std::to_string(sys.total());
    out += ",\"n_fem\":" + std::to_string(sys.nv());
    out += ",\"n_bem\":" + std::to_string(sys.ns());
    out += ",\"refine_iterations\":" +
           std::to_string(cfg.refine_iterations);
    out += ",\"factor_precision\":\"" +
           std::string(coupled::precision_name(cfg.factor_precision)) + "\"";
    out += ",\"factor_bytes\":" +
           std::to_string(handle.stats().factor_bytes);
    out += ",\"factorize_seconds\":" + json::number(factor_seconds);
    out += ",\"factorize_attempts\":" +
           std::to_string(handle.stats().attempts);
    if (!ckpt_path.empty()) {
      out += ",\"checkpoint\":{";
      out += "\"path\":\"" + json::escape(ckpt_path) + "\"";
      out += ",\"ok\":" + std::string(ckpt_ok ? "true" : "false");
      out += ",\"bytes\":" + std::to_string(ckpt_bytes);
      out += ",\"save_seconds\":" + json::number(ckpt_save_seconds);
      out += ",\"load_seconds\":" + json::number(ckpt_load_seconds);
      out += ",\"factorize_seconds\":" + json::number(factor_seconds);
      out += ",\"load_vs_factorize_speedup\":" +
             json::number(ckpt_load_seconds > 0
                              ? factor_seconds / ckpt_load_seconds
                              : 0.0);
      out += "}";
    }
    out += ",\"sweep\":[";
    bool first = true;
    for (const SweepPoint& p : points) {
      if (!first) out += ",";
      first = false;
      out += "{\"nrhs\":" + std::to_string(p.nrhs);
      out += ",\"ok\":" + std::string(p.ok ? "true" : "false");
      out += ",\"solve_seconds\":" + json::number(p.solve_seconds);
      out += ",\"solves_per_sec\":" + json::number(p.solves_per_sec);
      out += ",\"amortized_seconds_per_rhs\":" +
             json::number(p.amortized_seconds_per_rhs);
      out += ",\"total_with_factor\":" + json::number(p.total_with_factor);
      out += ",\"max_column_error\":" + json::number(p.max_column_error);
      out += "}";
    }
    out += "]}\n";
    json::Value doc;
    std::string err;
    if (!json::parse(out, &doc, &err)) {
      std::fprintf(stderr, "internal error: report does not parse: %s\n",
                   err.c_str());
      return 1;
    }
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   report_path.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("report: wrote %s\n", report_path.c_str());
  }
  return failures + ckpt_failures == 0 ? 0 : 1;
}
