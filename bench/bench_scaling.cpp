// Thread-scaling experiment for the task-parallel Schur layer: sweeps the
// worker-thread count 1..N per strategy on one fixed problem and emits one
// JSON object per run (per-phase seconds, peak bytes, relative error), so
// the speedup of the schur + dense_factorization phases can be tracked in
// the perf trajectory. Results must be identical across thread counts --
// the parallel schedules commit in the serial order by construction -- so
// the sweep also doubles as a determinism check.
#include <omp.h>

#include <string>
#include <vector>

#include "bench_common.h"

using namespace cs;
using coupled::Config;
using coupled::Strategy;

namespace {

std::string json_phases(const coupled::SolveStats& stats) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, seconds] : stats.phases.all()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + bench::sci(seconds);
  }
  return out + "}";
}

std::string json_peak_by_tag(const coupled::SolveStats& stats) {
  std::string out = "{";
  bool first = true;
  for (const auto& [tag, bytes] : stats.peak_by_tag) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + tag + "\": " + std::to_string(bytes);
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("n", "total unknowns of the bench problem (default 9000)");
  args.describe("max-threads",
                "largest worker-thread count of the sweep "
                "(default = hardware)");
  args.describe("budget-mib", "virtual memory budget in MiB (0 = unlimited)");
  args.describe("n-b", "multi-factorization blocks per dimension (default 4)");
  bench::describe_precision(args);
  bench::Observability::describe(args);
  args.check(
      "Sweeps 1..N worker threads per strategy and emits per-phase JSON "
      "(one object per line) for the scaling trajectory.");
  bench::Observability obs(args, "bench_scaling");

  const index_t n = static_cast<index_t>(args.get_int("n", 9000));
  const int hw = omp_get_max_threads();
  const int max_threads =
      static_cast<int>(args.get_int("max-threads", hw > 1 ? hw : 4));
  const std::size_t budget =
      static_cast<std::size_t>(args.get_int("budget-mib", 0)) * 1024 * 1024;
  const index_t nb = static_cast<index_t>(args.get_int("n-b", 4));

  log_info("[scaling] building N=", static_cast<long long>(n), " system...");
  auto sys = fembem::make_pipe_system<double>({.total_unknowns = n});

  std::vector<int> threads = {1};
  for (int t = 2; t < max_threads; t *= 2) threads.push_back(t);
  if (max_threads > 1) threads.push_back(max_threads);

  const std::vector<Strategy> strategies = {
      Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
      Strategy::kMultiFactorization,
      Strategy::kMultiFactorizationCompressed};

  TablePrinter summary({"strategy", "threads", "schur+dense s", "total s",
                        "speedup", "rel err", "peak MiB"});
  for (Strategy s : strategies) {
    double serial_hot = 0;  // schur + dense_factorization at 1 thread
    for (int t : threads) {
      Config cfg;
      cfg.strategy = s;
      cfg.num_threads = t;
      cfg.memory_budget = budget;
      cfg.n_b = nb;
      bench::apply_precision(args, cfg);
      log_info("[scaling] ", coupled::strategy_name(s), " threads=", t,
               "...");
      auto stats = coupled::solve_coupled(sys, cfg);
      if (!stats.success) ++bench::unexpected_failures();
      obs.add(coupled::strategy_name(s), "threads=" + std::to_string(t), cfg,
              stats);
      const double hot = stats.phases.get("schur") +
                         stats.phases.get("dense_factorization");
      if (t == 1) serial_hot = hot;
      // One JSON object per line on stdout: the machine-readable record.
      std::printf(
          "{\"strategy\": \"%s\", \"threads\": %d, \"n\": %lld, "
          "\"success\": %s, \"total_seconds\": %s, \"phases\": %s, "
          "\"schur_plus_dense_seconds\": %s, \"speedup_vs_1\": %s, "
          "\"relative_error\": %s, \"peak_bytes\": %zu, "
          "\"schur_bytes\": %zu, \"schur_compression_ratio\": %s, "
          "\"factor_precision\": \"%s\", \"factor_bytes\": %zu, "
          "\"peak_by_tag\": %s, \"planner_predicted_bytes\": %zu}\n",
          coupled::strategy_name(s), t, static_cast<long long>(stats.n_total),
          stats.success ? "true" : "false",
          bench::sci(stats.total_seconds).c_str(),
          json_phases(stats).c_str(), bench::sci(hot).c_str(),
          bench::sci(hot > 0 ? serial_hot / hot : 0.0).c_str(),
          bench::sci(stats.relative_error).c_str(), stats.peak_bytes,
          stats.schur_bytes,
          bench::sci(stats.schur_compression_ratio).c_str(),
          coupled::precision_name(stats.factor_precision),
          stats.factor_bytes, json_peak_by_tag(stats).c_str(),
          stats.planner_predicted_bytes);
      std::fflush(stdout);
      summary.add_row(
          {coupled::strategy_name(s), TablePrinter::fmt_int(t),
           TablePrinter::fmt(hot, 2), TablePrinter::fmt(stats.total_seconds, 2),
           TablePrinter::fmt(hot > 0 ? serial_hot / hot : 0.0, 2),
           stats.success ? bench::sci(stats.relative_error) : "-",
           bench::mib(stats.peak_bytes)});
    }
  }
  std::fprintf(stderr, "\n");
  summary.print();
  return bench::exit_status();
}
