// Quotient-graph minimum (external) degree ordering.
//
// Classic element/variable quotient graph with element absorption and exact
// degree recomputation (no "approximate" degree bound, no supervariable
// detection): simpler than full AMD at the price of some speed, which is an
// acceptable trade-off since nested dissection is the production default
// for the 3D FEM meshes and minimum degree is used on the smaller pieces
// and in tests.
#include <queue>
#include <tuple>

#include "ordering/ordering.h"

namespace cs::ordering {

std::vector<index_t> minimum_degree(const sparse::Pattern& pattern) {
  const index_t n = pattern.n;
  std::vector<std::vector<index_t>> adj_var(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> elems_of_var(static_cast<std::size_t>(n));
  // Element ids reuse the index of the variable whose elimination created
  // them; vars_of_elem[e] is the element's variable list.
  std::vector<std::vector<index_t>> vars_of_elem(static_cast<std::size_t>(n));
  std::vector<char> elem_alive(static_cast<std::size_t>(n), 0);
  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);

  for (index_t v = 0; v < n; ++v) {
    auto& a = adj_var[static_cast<std::size_t>(v)];
    for (offset_t k = pattern.adj_ptr[static_cast<std::size_t>(v)];
         k < pattern.adj_ptr[static_cast<std::size_t>(v) + 1]; ++k)
      a.push_back(pattern.adj[static_cast<std::size_t>(k)]);
    degree[static_cast<std::size_t>(v)] = static_cast<index_t>(a.size());
  }

  // Lazy min-heap of (degree, variable); stale entries are skipped on pop.
  using Entry = std::pair<index_t, index_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (index_t v = 0; v < n; ++v)
    heap.emplace(degree[static_cast<std::size_t>(v)], v);

  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  std::vector<index_t> mark2(static_cast<std::size_t>(n), -1);
  index_t stamp = 0;

  std::vector<index_t> perm(static_cast<std::size_t>(n), -1);
  std::vector<index_t> reach;

  for (index_t k = 0; k < n; ++k) {
    // Pop the minimum-degree variable, skipping stale heap entries.
    index_t v = -1;
    while (!heap.empty()) {
      auto [d, cand] = heap.top();
      heap.pop();
      if (!eliminated[static_cast<std::size_t>(cand)] &&
          d == degree[static_cast<std::size_t>(cand)]) {
        v = cand;
        break;
      }
    }
    perm[static_cast<std::size_t>(v)] = k;
    eliminated[static_cast<std::size_t>(v)] = 1;

    // Reach set R = Adj(v) U union of variable lists of v's elements.
    ++stamp;
    reach.clear();
    mark[static_cast<std::size_t>(v)] = stamp;
    for (index_t w : adj_var[static_cast<std::size_t>(v)]) {
      if (!eliminated[static_cast<std::size_t>(w)] &&
          mark[static_cast<std::size_t>(w)] != stamp) {
        mark[static_cast<std::size_t>(w)] = stamp;
        reach.push_back(w);
      }
    }
    for (index_t e : elems_of_var[static_cast<std::size_t>(v)]) {
      if (!elem_alive[static_cast<std::size_t>(e)]) continue;
      for (index_t w : vars_of_elem[static_cast<std::size_t>(e)]) {
        if (!eliminated[static_cast<std::size_t>(w)] &&
            mark[static_cast<std::size_t>(w)] != stamp) {
          mark[static_cast<std::size_t>(w)] = stamp;
          reach.push_back(w);
        }
      }
      // Absorb the child element into the new one.
      elem_alive[static_cast<std::size_t>(e)] = 0;
      vars_of_elem[static_cast<std::size_t>(e)].clear();
      vars_of_elem[static_cast<std::size_t>(e)].shrink_to_fit();
    }
    elems_of_var[static_cast<std::size_t>(v)].clear();
    adj_var[static_cast<std::size_t>(v)].clear();
    adj_var[static_cast<std::size_t>(v)].shrink_to_fit();

    // New element.
    vars_of_elem[static_cast<std::size_t>(v)] = reach;
    elem_alive[static_cast<std::size_t>(v)] = 1;
    const index_t reach_stamp = stamp;  // stamp identifying members of R

    // Update every reached variable.
    for (index_t w : reach) {
      // Drop variable-variable edges now covered by the new element, plus
      // edges to eliminated variables.
      auto& aw = adj_var[static_cast<std::size_t>(w)];
      std::size_t out = 0;
      for (index_t u : aw) {
        if (!eliminated[static_cast<std::size_t>(u)] &&
            mark[static_cast<std::size_t>(u)] != reach_stamp)
          aw[out++] = u;
      }
      aw.resize(out);
      // Compact the element list (dead elements out, new element in).
      auto& ew = elems_of_var[static_cast<std::size_t>(w)];
      out = 0;
      for (index_t e : ew)
        if (elem_alive[static_cast<std::size_t>(e)]) ew[out++] = e;
      ew.resize(out);
      ew.push_back(v);

      // Exact external degree.
      ++stamp;
      mark2[static_cast<std::size_t>(w)] = stamp;
      index_t deg = 0;
      for (index_t u : aw) {
        if (mark2[static_cast<std::size_t>(u)] != stamp) {
          mark2[static_cast<std::size_t>(u)] = stamp;
          ++deg;
        }
      }
      for (index_t e : ew) {
        for (index_t u : vars_of_elem[static_cast<std::size_t>(e)]) {
          if (!eliminated[static_cast<std::size_t>(u)] &&
              mark2[static_cast<std::size_t>(u)] != stamp) {
            mark2[static_cast<std::size_t>(u)] = stamp;
            ++deg;
          }
        }
      }
      degree[static_cast<std::size_t>(w)] = deg;
      heap.emplace(deg, w);
    }
  }
  return perm;
}

}  // namespace cs::ordering
