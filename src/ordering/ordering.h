// Fill-reducing orderings for the sparse direct solver.
//
// The solver's analysis phase permutes A_vv with one of these methods
// before symbolic factorization (the paper's MUMPS does the same
// internally). Three methods are provided:
//
//  * kRcm              - reverse Cuthill-McKee (bandwidth reduction);
//  * kMinimumDegree    - quotient-graph minimum (external) degree;
//  * kNestedDissection - recursive BFS level-set bisection, the default
//                        for 3D FEM meshes (best fill at scale).
//
// All entry points also exist in a *constrained* form where a marked
// subset of variables (the Schur variables of the coupled system) is
// forced to the end of the ordering, which is how the Schur complement
// feature keeps those variables uneliminated.
#pragma once

#include <vector>

#include "sparse/sparse.h"

namespace cs::ordering {

enum class Method { kNatural, kRcm, kMinimumDegree, kNestedDissection };

/// Compute a fill-reducing permutation of the adjacency pattern.
/// Returns perm with perm[old] = new position.
std::vector<index_t> compute(const sparse::Pattern& pattern, Method method);

/// Same, but every vertex with order_last[v] == true is placed after all
/// others (preserving the relative natural order of the 'last' group).
/// The non-last subgraph is ordered with `method` on its induced pattern.
std::vector<index_t> compute_constrained(const sparse::Pattern& pattern,
                                         Method method,
                                         const std::vector<bool>& order_last);

/// Inverse permutation: iperm[new] = old.
std::vector<index_t> inverse_permutation(const std::vector<index_t>& perm);

/// True iff perm is a bijection on [0, n).
bool is_permutation(const std::vector<index_t>& perm);

// Individual algorithms (exposed for tests and experimentation).
std::vector<index_t> rcm(const sparse::Pattern& pattern);
std::vector<index_t> minimum_degree(const sparse::Pattern& pattern);
std::vector<index_t> nested_dissection(const sparse::Pattern& pattern);

namespace detail {
/// BFS from `start` over `pattern` restricted to vertices with
/// active[v] == true; fills `level` (-1 for unreached) and returns the
/// vertices reached in BFS order. Used by RCM and nested dissection.
std::vector<index_t> bfs_levels(const sparse::Pattern& pattern, index_t start,
                                const std::vector<char>& active,
                                std::vector<index_t>& level);

/// A pseudo-peripheral vertex of the active component containing start.
index_t pseudo_peripheral(const sparse::Pattern& pattern, index_t start,
                          const std::vector<char>& active);
}  // namespace detail

}  // namespace cs::ordering
