#include "ordering/ordering.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

namespace cs::ordering {

std::vector<index_t> inverse_permutation(const std::vector<index_t>& perm) {
  std::vector<index_t> iperm(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    iperm[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  return iperm;
}

bool is_permutation(const std::vector<index_t>& perm) {
  std::vector<char> seen(perm.size(), 0);
  for (index_t p : perm) {
    if (p < 0 || static_cast<std::size_t>(p) >= perm.size()) return false;
    if (seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = 1;
  }
  return true;
}

std::vector<index_t> compute(const sparse::Pattern& pattern, Method method) {
  switch (method) {
    case Method::kNatural: {
      std::vector<index_t> perm(static_cast<std::size_t>(pattern.n));
      std::iota(perm.begin(), perm.end(), 0);
      return perm;
    }
    case Method::kRcm:
      return rcm(pattern);
    case Method::kMinimumDegree:
      return minimum_degree(pattern);
    case Method::kNestedDissection:
      return nested_dissection(pattern);
  }
  return {};
}

std::vector<index_t> compute_constrained(const sparse::Pattern& pattern,
                                         Method method,
                                         const std::vector<bool>& order_last) {
  assert(order_last.size() == static_cast<std::size_t>(pattern.n));
  const index_t n = pattern.n;
  // Collect the free (non-last) vertices and build their induced pattern.
  std::vector<index_t> free_of_global(static_cast<std::size_t>(n), -1);
  std::vector<index_t> global_of_free;
  for (index_t v = 0; v < n; ++v) {
    if (!order_last[static_cast<std::size_t>(v)]) {
      free_of_global[static_cast<std::size_t>(v)] =
          static_cast<index_t>(global_of_free.size());
      global_of_free.push_back(v);
    }
  }
  const index_t nf = static_cast<index_t>(global_of_free.size());

  sparse::Pattern sub;
  sub.n = nf;
  sub.adj_ptr.assign(static_cast<std::size_t>(nf) + 1, 0);
  for (index_t f = 0; f < nf; ++f) {
    const index_t v = global_of_free[static_cast<std::size_t>(f)];
    for (offset_t k = pattern.adj_ptr[static_cast<std::size_t>(v)];
         k < pattern.adj_ptr[static_cast<std::size_t>(v) + 1]; ++k) {
      if (free_of_global[static_cast<std::size_t>(pattern.adj[
              static_cast<std::size_t>(k)])] >= 0)
        ++sub.adj_ptr[static_cast<std::size_t>(f) + 1];
    }
  }
  for (index_t f = 0; f < nf; ++f)
    sub.adj_ptr[static_cast<std::size_t>(f) + 1] +=
        sub.adj_ptr[static_cast<std::size_t>(f)];
  sub.adj.resize(static_cast<std::size_t>(sub.adj_ptr[static_cast<std::size_t>(nf)]));
  {
    std::vector<offset_t> cursor(sub.adj_ptr.begin(), sub.adj_ptr.end() - 1);
    for (index_t f = 0; f < nf; ++f) {
      const index_t v = global_of_free[static_cast<std::size_t>(f)];
      for (offset_t k = pattern.adj_ptr[static_cast<std::size_t>(v)];
           k < pattern.adj_ptr[static_cast<std::size_t>(v) + 1]; ++k) {
        const index_t w = pattern.adj[static_cast<std::size_t>(k)];
        const index_t fw = free_of_global[static_cast<std::size_t>(w)];
        if (fw >= 0)
          sub.adj[static_cast<std::size_t>(
              cursor[static_cast<std::size_t>(f)]++)] = fw;
      }
    }
  }

  const std::vector<index_t> sub_perm = compute(sub, method);

  std::vector<index_t> perm(static_cast<std::size_t>(n));
  index_t next_last = nf;
  for (index_t v = 0; v < n; ++v) {
    if (order_last[static_cast<std::size_t>(v)]) {
      perm[static_cast<std::size_t>(v)] = next_last++;
    } else {
      perm[static_cast<std::size_t>(v)] =
          sub_perm[static_cast<std::size_t>(
              free_of_global[static_cast<std::size_t>(v)])];
    }
  }
  return perm;
}

namespace detail {

std::vector<index_t> bfs_levels(const sparse::Pattern& pattern, index_t start,
                                const std::vector<char>& active,
                                std::vector<index_t>& level) {
  level.assign(static_cast<std::size_t>(pattern.n), -1);
  std::vector<index_t> order;
  if (!active[static_cast<std::size_t>(start)]) return order;
  std::queue<index_t> q;
  q.push(start);
  level[static_cast<std::size_t>(start)] = 0;
  while (!q.empty()) {
    const index_t v = q.front();
    q.pop();
    order.push_back(v);
    for (offset_t k = pattern.adj_ptr[static_cast<std::size_t>(v)];
         k < pattern.adj_ptr[static_cast<std::size_t>(v) + 1]; ++k) {
      const index_t w = pattern.adj[static_cast<std::size_t>(k)];
      if (active[static_cast<std::size_t>(w)] &&
          level[static_cast<std::size_t>(w)] < 0) {
        level[static_cast<std::size_t>(w)] =
            level[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return order;
}

index_t pseudo_peripheral(const sparse::Pattern& pattern, index_t start,
                          const std::vector<char>& active) {
  std::vector<index_t> level;
  index_t current = start;
  index_t ecc = -1;
  for (int iter = 0; iter < 8; ++iter) {
    const auto order = bfs_levels(pattern, current, active, level);
    if (order.empty()) return start;
    const index_t far = order.back();
    const index_t new_ecc = level[static_cast<std::size_t>(far)];
    if (new_ecc <= ecc) break;
    ecc = new_ecc;
    current = far;
  }
  return current;
}

}  // namespace detail

}  // namespace cs::ordering
