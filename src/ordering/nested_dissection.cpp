// Nested dissection via BFS level-set bisection.
//
// Each recursion step runs a BFS from a pseudo-peripheral vertex of the
// (sub)graph, picks the median level as the separator, recurses on the two
// halves and numbers the separator last. Small pieces fall back to minimum
// degree. On 3D FEM meshes this yields the O(n^2) factor-size / O(n^{4/3})
// front-size asymptotics that make the multifrontal solver scale, without
// needing an external graph partitioner.
#include <algorithm>
#include <functional>
#include <numeric>

#include "ordering/ordering.h"

namespace cs::ordering {

namespace {

constexpr index_t kLeafSize = 64;

/// Induced sub-pattern of `verts` (which must be active); local indices
/// follow the order of `verts`.
sparse::Pattern induced(const sparse::Pattern& pattern,
                        const std::vector<index_t>& verts,
                        std::vector<index_t>& local_of_global) {
  sparse::Pattern sub;
  sub.n = static_cast<index_t>(verts.size());
  for (std::size_t l = 0; l < verts.size(); ++l)
    local_of_global[static_cast<std::size_t>(verts[l])] =
        static_cast<index_t>(l);
  sub.adj_ptr.assign(verts.size() + 1, 0);
  for (std::size_t l = 0; l < verts.size(); ++l) {
    const index_t v = verts[l];
    for (offset_t k = pattern.adj_ptr[static_cast<std::size_t>(v)];
         k < pattern.adj_ptr[static_cast<std::size_t>(v) + 1]; ++k) {
      const index_t w = pattern.adj[static_cast<std::size_t>(k)];
      if (local_of_global[static_cast<std::size_t>(w)] >= 0) ++sub.adj_ptr[l + 1];
    }
  }
  for (std::size_t l = 0; l < verts.size(); ++l) sub.adj_ptr[l + 1] += sub.adj_ptr[l];
  sub.adj.resize(static_cast<std::size_t>(sub.adj_ptr[verts.size()]));
  std::vector<offset_t> cursor(sub.adj_ptr.begin(), sub.adj_ptr.end() - 1);
  for (std::size_t l = 0; l < verts.size(); ++l) {
    const index_t v = verts[l];
    for (offset_t k = pattern.adj_ptr[static_cast<std::size_t>(v)];
         k < pattern.adj_ptr[static_cast<std::size_t>(v) + 1]; ++k) {
      const index_t w = pattern.adj[static_cast<std::size_t>(k)];
      const index_t lw = local_of_global[static_cast<std::size_t>(w)];
      if (lw >= 0) sub.adj[static_cast<std::size_t>(cursor[l]++)] = lw;
    }
  }
  // Reset the scratch map for the caller.
  for (index_t v : verts) local_of_global[static_cast<std::size_t>(v)] = -1;
  return sub;
}

/// Recursive dissection of the sub-pattern; appends vertex *local* ids to
/// `out` in elimination order.
void dissect(const sparse::Pattern& pattern, std::vector<index_t>& out) {
  const index_t n = pattern.n;
  if (n <= kLeafSize) {
    // Small piece: minimum degree, converted from perm to elimination order.
    const auto perm = minimum_degree(pattern);
    std::vector<index_t> order(static_cast<std::size_t>(n));
    for (index_t v = 0; v < n; ++v)
      order[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])] = v;
    out.insert(out.end(), order.begin(), order.end());
    return;
  }

  std::vector<char> active(static_cast<std::size_t>(n), 1);
  std::vector<index_t> level;
  // BFS component from a pseudo-peripheral vertex of the first unvisited
  // component; disconnected remainders are handled by recursing on "rest".
  const index_t start = detail::pseudo_peripheral(pattern, 0, active);
  const auto comp = detail::bfs_levels(pattern, start, active, level);

  // Disconnected graph: the reached component and the remainder can be
  // ordered independently (no separator needed).
  if (static_cast<index_t>(comp.size()) < n) {
    std::vector<index_t> comp_verts(comp.begin(), comp.end());
    std::vector<index_t> rest_verts;
    for (index_t v = 0; v < n; ++v)
      if (level[static_cast<std::size_t>(v)] < 0) rest_verts.push_back(v);
    std::vector<index_t> scratch(static_cast<std::size_t>(n), -1);
    for (const auto* part : {&comp_verts, &rest_verts}) {
      auto sub = induced(pattern, *part, scratch);
      std::vector<index_t> sub_order;
      dissect(sub, sub_order);
      for (index_t l : sub_order)
        out.push_back((*part)[static_cast<std::size_t>(l)]);
    }
    return;
  }

  const index_t max_level = level[static_cast<std::size_t>(comp.back())];
  if (max_level < 2) {
    // Graph too dense/small to bisect by levels: minimum degree fallback.
    const auto perm = minimum_degree(pattern);
    std::vector<index_t> order(static_cast<std::size_t>(n));
    for (index_t v = 0; v < n; ++v)
      order[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])] = v;
    out.insert(out.end(), order.begin(), order.end());
    return;
  }

  // Choose the level whose removal best balances the halves: the median
  // level by vertex count.
  std::vector<index_t> level_count(static_cast<std::size_t>(max_level) + 1, 0);
  for (index_t v = 0; v < n; ++v)
    ++level_count[static_cast<std::size_t>(level[static_cast<std::size_t>(v)])];
  index_t sep_level = 1;
  index_t below = level_count[0];
  for (index_t l = 1; l < max_level; ++l) {
    if (below >= (n - level_count[static_cast<std::size_t>(l)]) / 2) {
      sep_level = l;
      break;
    }
    below += level_count[static_cast<std::size_t>(l)];
    sep_level = l;
  }

  std::vector<index_t> left, right, sep;
  for (index_t v = 0; v < n; ++v) {
    const index_t l = level[static_cast<std::size_t>(v)];
    if (l < sep_level)
      left.push_back(v);
    else if (l > sep_level)
      right.push_back(v);
    else
      sep.push_back(v);
  }

  std::vector<index_t> scratch(static_cast<std::size_t>(n), -1);
  for (const auto* part : {&left, &right}) {
    if (part->empty()) continue;
    auto sub = induced(pattern, *part, scratch);
    std::vector<index_t> sub_order;
    dissect(sub, sub_order);
    for (index_t l : sub_order)
      out.push_back((*part)[static_cast<std::size_t>(l)]);
  }
  // Separator last.
  out.insert(out.end(), sep.begin(), sep.end());
}

}  // namespace

std::vector<index_t> nested_dissection(const sparse::Pattern& pattern) {
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(pattern.n));
  dissect(pattern, order);
  std::vector<index_t> perm(static_cast<std::size_t>(pattern.n));
  for (std::size_t k = 0; k < order.size(); ++k)
    perm[static_cast<std::size_t>(order[k])] = static_cast<index_t>(k);
  return perm;
}

}  // namespace cs::ordering
