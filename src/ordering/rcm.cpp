// Reverse Cuthill-McKee: BFS from a pseudo-peripheral vertex, visiting
// neighbours in increasing-degree order, then reverse. Handles disconnected
// graphs by restarting from each unvisited component.
#include <algorithm>

#include "ordering/ordering.h"

namespace cs::ordering {

std::vector<index_t> rcm(const sparse::Pattern& pattern) {
  const index_t n = pattern.n;
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<char> active(static_cast<std::size_t>(n), 1);
  std::vector<index_t> neighbours;

  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    const index_t start = detail::pseudo_peripheral(pattern, seed, active);
    // Cuthill-McKee BFS with degree-sorted neighbour insertion.
    std::vector<index_t> queue;
    queue.push_back(start);
    visited[static_cast<std::size_t>(start)] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const index_t v = queue[head];
      order.push_back(v);
      neighbours.clear();
      for (offset_t k = pattern.adj_ptr[static_cast<std::size_t>(v)];
           k < pattern.adj_ptr[static_cast<std::size_t>(v) + 1]; ++k) {
        const index_t w = pattern.adj[static_cast<std::size_t>(k)];
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          neighbours.push_back(w);
        }
      }
      std::sort(neighbours.begin(), neighbours.end(),
                [&](index_t a, index_t b) {
                  return pattern.degree(a) < pattern.degree(b);
                });
      queue.insert(queue.end(), neighbours.begin(), neighbours.end());
    }
  }

  // Reverse: order[k] is the k-th vertex of CM; RCM places it at n-1-k.
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (std::size_t k = 0; k < order.size(); ++k)
    perm[static_cast<std::size_t>(order[k])] =
        n - 1 - static_cast<index_t>(k);
  return perm;
}

}  // namespace cs::ordering
