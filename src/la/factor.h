// Blocked dense factorizations: LDL^T (symmetric, possibly complex
// symmetric) and LU with partial pivoting, plus the *partial* variants that
// factor only the leading block of a matrix and update the trailing block.
//
// The partial variants are the computational heart of the multifrontal
// sparse solver's fronts and of its Schur complement feature: factoring the
// fully-summed block of a front and leaving the updated border (the
// contribution block / Schur complement) in place is exactly
// ldlt_factor_partial / lu_factor_partial.
//
// Pivoting policy: LDL^T is unpivoted (the paper's solvers run LDL^T on
// complex symmetric matrices; our generated FEM/BEM matrices are strongly
// regular by construction). LU restricts pivot search to the fully-summed
// rows of the leading block so that border row indices remain stable for
// the multifrontal assembly (delayed pivots are out of scope; see
// DESIGN.md section 5).
#pragma once

#include <stdexcept>
#include <vector>

#include "la/blas.h"
#include "la/matrix.h"

namespace cs::la {

class SingularMatrix : public std::runtime_error {
 public:
  explicit SingularMatrix(index_t column)
      : std::runtime_error("zero pivot encountered at column " +
                           std::to_string(column)),
        column_(column) {}
  index_t column() const { return column_; }

 private:
  index_t column_;
};

namespace detail {

/// Unblocked LDL^T of a panel: A is m x b with the b x b pivot block on
/// top; all b columns are factored and updates stay within the panel.
template <class T>
void ldlt_panel(MatrixView<T> A) {
  const index_t m = A.rows();
  const index_t b = A.cols();
  for (index_t k = 0; k < b; ++k) {
    const T d = A(k, k);
    if (d == T{0}) throw SingularMatrix(k);
    const T inv = T{1} / d;
    for (index_t i = k + 1; i < m; ++i) A(i, k) *= inv;
    for (index_t j = k + 1; j < b; ++j) {
      const T ljk_d = A(j, k) * d;
      if (ljk_d == T{0}) continue;
      T* aj = &A(0, j);
      const T* lk = &A(0, k);
      for (index_t i = j; i < m; ++i) aj[i] -= lk[i] * ljk_d;
    }
  }
}

}  // namespace detail

/// In-place LDL^T of the leading ns x ns block of symmetric A (lower
/// triangle referenced and produced; unit L strictly below the diagonal, D
/// on the diagonal). The trailing (n-ns) block's lower triangle receives
/// the Schur update  A22 - L21 D L21^T.
template <class T>
void ldlt_factor_partial(MatrixView<T> A, index_t ns, index_t nb = 96) {
  const index_t n = A.rows();
  for (index_t k = 0; k < ns; k += nb) {
    const index_t b = std::min(nb, ns - k);
    // Factor the panel [k:n, k:k+b) unblocked (it also updates the
    // in-panel part of the border rows).
    detail::ldlt_panel(A.block(k, k, n - k, b));
    const index_t rest = n - (k + b);
    if (rest == 0) continue;
    // Trailing update: A22 -= L21 * D * L21^T, lower triangle only, where
    // L21 = A[k+b:n, k:k+b) and D = diag(A[k:k+b)).
    ConstMatrixView<T> L21 = A.block(k + b, k, rest, b);
    Matrix<T> W(rest, b);  // W = L21 * D
    for (index_t j = 0; j < b; ++j) {
      const T d = A(k + j, k + j);
      const T* src = &L21(0, j);
      T* dst = &W(0, j);
      for (index_t i = 0; i < rest; ++i) dst[i] = src[i] * d;
    }
    MatrixView<T> A22 = A.block(k + b, k + b, rest, rest);
    // Rank-b update A22 -= W * L21^T of the lower triangle, in column
    // blocks: the small diagonal triangles keep the scalar loop, the
    // rectangle below each one routes through the packed gemm engine
    // (which keeps the strictly-upper part of A22 untouched, as the
    // lower-storage convention requires).
    constexpr index_t jb_blk = 96;
    for (index_t j0 = 0; j0 < rest; j0 += jb_blk) {
      const index_t jb = std::min(jb_blk, rest - j0);
      for (index_t j = j0; j < j0 + jb; ++j) {
        T* cj = &A22(0, j);
        for (index_t p = 0; p < b; ++p) {
          const T l_jp = L21(j, p);
          if (l_jp == T{0}) continue;
          const T* wp = &W(0, p);
          for (index_t i = j; i < j0 + jb; ++i) cj[i] -= wp[i] * l_jp;
        }
      }
      const index_t below = rest - (j0 + jb);
      if (below > 0) {
        gemm(T{-1}, ConstMatrixView<T>(W.block(j0 + jb, 0, below, b)),
             Op::kNoTrans, L21.block(j0, 0, jb, b), Op::kTrans, T{1},
             A22.block(j0 + jb, j0, below, jb));
      }
    }
  }
}

/// Full in-place LDL^T (lower). See ldlt_factor_partial.
template <class T>
void ldlt_factor(MatrixView<T> A, index_t nb = 96) {
  ldlt_factor_partial(A, A.rows(), nb);
}

/// Solve (L D L^T) X = B in place given a factored A (lower storage).
template <class T>
void ldlt_solve(ConstMatrixView<T> A, MatrixView<T> B) {
  const index_t n = A.rows();
  trsm(Side::kLeft, Uplo::kLower, Op::kNoTrans, Diag::kUnit, A, B);
  for (index_t j = 0; j < B.cols(); ++j)
    for (index_t i = 0; i < n; ++i) B(i, j) /= A(i, i);
  trsm(Side::kLeft, Uplo::kLower, Op::kTrans, Diag::kUnit, A, B);
}

/// In-place LU with partial pivoting of the leading ns columns of A; pivot
/// search restricted to rows [k, ns) (fully-summed rows). piv[k] is the row
/// swapped into position k. The trailing (n-ns) square block receives the
/// Schur update A22 - L21 U12.
template <class T>
void lu_factor_partial(MatrixView<T> A, index_t ns, std::vector<index_t>& piv,
                       index_t nb = 96) {
  const index_t n = A.rows();
  piv.assign(static_cast<std::size_t>(ns), 0);
  for (index_t k0 = 0; k0 < ns; k0 += nb) {
    const index_t b = std::min(nb, ns - k0);
    // Unblocked panel factorization on columns [k0, k0+b).
    for (index_t k = k0; k < k0 + b; ++k) {
      // Pivot: largest |A(i,k)| for i in [k, ns).
      index_t p = k;
      real_of_t<T> best = std::abs(A(k, k));
      for (index_t i = k + 1; i < ns; ++i) {
        const real_of_t<T> v = std::abs(A(i, k));
        if (v > best) {
          best = v;
          p = i;
        }
      }
      piv[static_cast<std::size_t>(k)] = p;
      if (best == real_of_t<T>{0}) throw SingularMatrix(k);
      if (p != k)
        for (index_t j = 0; j < A.cols(); ++j) std::swap(A(k, j), A(p, j));
      const T inv = T{1} / A(k, k);
      for (index_t i = k + 1; i < n; ++i) A(i, k) *= inv;
      // Update the remaining panel columns.
      for (index_t j = k + 1; j < k0 + b; ++j) {
        const T akj = A(k, j);
        if (akj == T{0}) continue;
        T* aj = &A(0, j);
        const T* lk = &A(0, k);
        for (index_t i = k + 1; i < n; ++i) aj[i] -= lk[i] * akj;
      }
    }
    const index_t rest_cols = n - (k0 + b);
    const index_t rest_rows = n - (k0 + b);
    if (rest_cols == 0) continue;
    // U12 := L11^{-1} * A12  (unit lower triangular solve on the panel).
    ConstMatrixView<T> L11 = A.block(k0, k0, b, b);
    MatrixView<T> A12 = A.block(k0, k0 + b, b, rest_cols);
    trsm(Side::kLeft, Uplo::kLower, Op::kNoTrans, Diag::kUnit, L11, A12);
    // A22 -= L21 * U12.
    ConstMatrixView<T> L21 = A.block(k0 + b, k0, rest_rows, b);
    MatrixView<T> A22 = A.block(k0 + b, k0 + b, rest_rows, rest_cols);
    gemm(T{-1}, L21, Op::kNoTrans, ConstMatrixView<T>(A12), Op::kNoTrans, T{1},
         A22);
  }
}

/// Full in-place LU with partial pivoting.
template <class T>
void lu_factor(MatrixView<T> A, std::vector<index_t>& piv, index_t nb = 96) {
  assert(A.rows() == A.cols());
  lu_factor_partial(A, A.rows(), piv, nb);
}

/// Apply the pivot row swaps of lu_factor to a right-hand side block.
template <class T>
void lu_apply_pivots(const std::vector<index_t>& piv, MatrixView<T> B) {
  for (std::size_t k = 0; k < piv.size(); ++k) {
    const index_t p = piv[k];
    if (p != static_cast<index_t>(k))
      for (index_t j = 0; j < B.cols(); ++j)
        std::swap(B(static_cast<index_t>(k), j), B(p, j));
  }
}

/// Solve (P A = L U) X = B in place given a factored A.
template <class T>
void lu_solve(ConstMatrixView<T> A, const std::vector<index_t>& piv,
              MatrixView<T> B) {
  lu_apply_pivots(piv, B);
  trsm(Side::kLeft, Uplo::kLower, Op::kNoTrans, Diag::kUnit, A, B);
  trsm(Side::kLeft, Uplo::kUpper, Op::kNoTrans, Diag::kNonUnit, A, B);
}

/// Mirror the lower triangle into the upper one (A := lower(A) symmetric).
template <class T>
void symmetrize_from_lower(MatrixView<T> A) {
  assert(A.rows() == A.cols());
  for (index_t j = 0; j < A.cols(); ++j)
    for (index_t i = j + 1; i < A.rows(); ++i) A(j, i) = A(i, j);
}

}  // namespace cs::la
