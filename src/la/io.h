// Checkpoint (de)serialization of the dense linear-algebra containers.
// Matrices are streamed as [rows i32, cols i32, column-major payload];
// dimensions are validated against the section's remaining bytes before
// any allocation so a corrupt header cannot drive a huge allocation.
// Reads allocate under the caller's MemoryScope, so restored factors land
// in the same ledger tag as freshly-computed ones.
#pragma once

#include "common/error.h"
#include "common/serialize.h"
#include "la/matrix.h"
#include "la/qr_svd.h"

namespace cs::la {

template <class T>
void write_matrix(serialize::Writer& w, const Matrix<T>& m) {
  w.write_i32(m.rows());
  w.write_i32(m.cols());
  w.write_bytes(m.data(), static_cast<std::size_t>(m.rows()) *
                              static_cast<std::size_t>(m.cols()) * sizeof(T));
}

template <class T>
Matrix<T> read_matrix(serialize::Reader& in) {
  const std::int32_t rows = in.read_i32();
  const std::int32_t cols = in.read_i32();
  if (rows < 0 || cols < 0)
    throw ClassifiedError(ErrorCode::kIo, "ckpt.corrupt",
                          "matrix with negative dimensions in checkpoint");
  const std::size_t bytes = static_cast<std::size_t>(rows) *
                            static_cast<std::size_t>(cols) * sizeof(T);
  in.require(bytes);
  Matrix<T> m(rows, cols);
  in.read_bytes(m.data(), bytes);
  return m;
}

template <class T>
void write_rk(serialize::Writer& w, const RkFactors<T>& rk) {
  write_matrix(w, rk.U);
  write_matrix(w, rk.V);
}

template <class T>
RkFactors<T> read_rk(serialize::Reader& in) {
  RkFactors<T> rk;
  rk.U = read_matrix<T>(in);
  rk.V = read_matrix<T>(in);
  return rk;
}

}  // namespace cs::la
