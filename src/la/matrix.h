// Column-major dense matrix container and non-owning views.
//
// All dense storage in the library (frontal matrices, Schur blocks, H-matrix
// leaves, right-hand sides) is built on Matrix<T>, whose backing Buffer is
// byte-accounted by common/memory.h. Views carry a leading dimension so that
// sub-blocks of fronts and Schur panels can be addressed without copies.
#pragma once

#include <cassert>
#include <cstddef>

#include "common/buffer.h"
#include "common/types.h"

namespace cs::la {

/// Operand transposition for the BLAS-like kernels (plain transpose, never
/// conjugated: the library works with complex-symmetric matrices). Lives
/// here so the packing layer (pack.h / gemm_kernel.h) can resolve it at
/// pack time without depending on blas.h.
enum class Op { kNoTrans, kTrans };

template <class T>
class ConstMatrixView;

/// Non-owning mutable view of a column-major block: element (i,j) is at
/// data[i + j*ld].
template <class T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols, offset_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= rows);
  }

  T* data() const { return data_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t ld() const { return ld_; }

  T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<offset_t>(i) + static_cast<offset_t>(j) * ld_];
  }

  /// Sub-block view rows [r0, r0+nr), cols [c0, c0+nc).
  MatrixView block(index_t r0, index_t c0, index_t nr, index_t nc) const {
    assert(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_);
    return MatrixView(data_ + r0 + static_cast<offset_t>(c0) * ld_, nr, nc,
                      ld_);
  }

  MatrixView col(index_t j) const { return block(0, j, rows_, 1); }

  void fill(const T& value) const {
    for (index_t j = 0; j < cols_; ++j)
      for (index_t i = 0; i < rows_; ++i) (*this)(i, j) = value;
  }

  void copy_from(ConstMatrixView<T> src) const;

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  offset_t ld_ = 0;
};

/// Non-owning read-only view.
template <class T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, index_t rows, index_t cols, offset_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= rows);
  }
  // Implicit widening from a mutable view.
  ConstMatrixView(MatrixView<T> v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  const T* data() const { return data_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t ld() const { return ld_; }

  const T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<offset_t>(i) + static_cast<offset_t>(j) * ld_];
  }

  ConstMatrixView block(index_t r0, index_t c0, index_t nr, index_t nc) const {
    assert(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_);
    return ConstMatrixView(data_ + r0 + static_cast<offset_t>(c0) * ld_, nr,
                           nc, ld_);
  }

  ConstMatrixView col(index_t j) const { return block(0, j, rows_, 1); }

 private:
  const T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  offset_t ld_ = 0;
};

template <class T>
void MatrixView<T>::copy_from(ConstMatrixView<T> src) const {
  assert(src.rows() == rows_ && src.cols() == cols_);
  for (index_t j = 0; j < cols_; ++j)
    for (index_t i = 0; i < rows_; ++i) (*this)(i, j) = src(i, j);
}

/// Owning column-major dense matrix. Storage is tracked (see Buffer).
template <class T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    assert(rows >= 0 && cols >= 0);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t ld() const { return rows_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  std::size_t size_bytes() const { return data_.size() * sizeof(T); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator()(index_t i, index_t j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) +
                 static_cast<std::size_t>(j) * rows_];
  }
  const T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) +
                 static_cast<std::size_t>(j) * rows_];
  }

  MatrixView<T> view() {
    return MatrixView<T>(data_.data(), rows_, cols_, rows_);
  }
  ConstMatrixView<T> view() const {
    return ConstMatrixView<T>(data_.data(), rows_, cols_, rows_);
  }
  ConstMatrixView<T> cview() const { return view(); }

  MatrixView<T> block(index_t r0, index_t c0, index_t nr, index_t nc) {
    return view().block(r0, c0, nr, nc);
  }
  ConstMatrixView<T> block(index_t r0, index_t c0, index_t nr,
                           index_t nc) const {
    return view().block(r0, c0, nr, nc);
  }

  void fill(const T& value) { view().fill(value); }

  /// Release storage (becomes 0 x 0). Used by the coupled algorithms to drop
  /// temporaries as early as possible, which matters for the peak footprint.
  void clear() {
    data_.clear();
    rows_ = cols_ = 0;
  }

  static Matrix identity(index_t n) {
    Matrix m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  Buffer<T> data_;
};

/// Owning dense vector (thin wrapper over Matrix semantics, tracked).
template <class T>
class Vector {
 public:
  Vector() = default;
  explicit Vector(index_t n) : data_(static_cast<std::size_t>(n)) {}

  index_t size() const { return static_cast<index_t>(data_.size()); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator[](index_t i) { return data_[static_cast<std::size_t>(i)]; }
  const T& operator[](index_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  MatrixView<T> as_matrix() {
    return MatrixView<T>(data_.data(), size(), 1, size());
  }
  ConstMatrixView<T> as_matrix() const {
    return ConstMatrixView<T>(data_.data(), size(), 1, size());
  }

  void fill(const T& value) {
    for (auto& x : data_) x = value;
  }

 private:
  Buffer<T> data_;
};

}  // namespace cs::la
