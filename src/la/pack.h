// Panel packing for the cache-blocked GEMM engine (see gemm_kernel.h).
//
// Following the BLIS decomposition (Van Zee & van de Geijn, TOMS 2015), the
// kc x mc A-block and kc x nc B-block of each macro-iteration are repacked
// into contiguous 64-byte-aligned tile buffers before the micro-kernel
// sweeps them:
//  * transposition (Op) is resolved at pack time, so the micro-kernel sees
//    one canonical layout and the per-element transpose branches of the old
//    kernel disappear from the O(m*n*k) loop;
//  * complex scalars are split into separate real/imaginary planes inside
//    each k-slice, which lets the compiler vectorize the complex multiply
//    as four independent real FMA streams (the interleaved std::complex
//    representation defeats auto-vectorization);
//  * edge tiles are zero-padded to the full mr/nr width, so the hot loop
//    never branches on remainder sizes (the store step masks instead).
//
// Pack buffers are transient, grow-only, thread-local scratch and are
// deliberately *not* counted against the budget of common/memory.h: a
// budget-capped solve must not be able to fail inside a gemm. Their
// capacity is still visible in the attribution ledger under the
// budget-exempt pack.scratch tag (MemoryTracker::note_scratch), so traces
// and reports show how much memory the kernel engine holds per thread.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>

#include "common/memory.h"
#include "la/matrix.h"

namespace cs::la::detail {

inline constexpr std::size_t kPackAlign = 64;

/// Number of real "planes" a scalar type packs into (re/im split).
template <class T>
inline constexpr index_t kPackPlanes = is_complex_v<T> ? 2 : 1;

/// Grow-only aligned scratch buffer (budget-exempt; see file comment).
template <class R>
class PackScratch {
 public:
  ~PackScratch() {
    if (cap_ > 0)
      MemoryTracker::instance().note_scratch(
          -static_cast<std::ptrdiff_t>(cap_ * sizeof(R)));
  }

  R* ensure(std::size_t n) {
    if (n > cap_) {
      data_.reset(static_cast<R*>(
          ::operator new(n * sizeof(R), std::align_val_t{kPackAlign})));
      MemoryTracker::instance().note_scratch(
          static_cast<std::ptrdiff_t>((n - cap_) * sizeof(R)));
      cap_ = n;
    }
    return data_.get();
  }

 private:
  struct Deleter {
    void operator()(R* p) const {
      ::operator delete(p, std::align_val_t{kPackAlign});
    }
  };
  std::unique_ptr<R, Deleter> data_;
  std::size_t cap_ = 0;
};

/// Pack one mr-row tile of op(A): rows [i0, i0+mt) (mt <= MR), inner
/// dimension [p0, p0+kb) of the effective (transposition-resolved) operand.
/// Layout: k-slice-major; slice p holds MR reals per plane (re, then im),
/// rows beyond mt zero-padded.
template <class T, index_t MR>
void pack_a_tile(ConstMatrixView<T> A, Op opA, index_t i0, index_t p0,
                 index_t mt, index_t kb, real_of_t<T>* dst) {
  using R = real_of_t<T>;
  constexpr index_t planes = kPackPlanes<T>;
  for (index_t p = 0; p < kb; ++p) {
    R* slice = dst + static_cast<std::size_t>(p) * MR * planes;
    for (index_t i = 0; i < mt; ++i) {
      const T v = (opA == Op::kNoTrans) ? A(i0 + i, p0 + p) : A(p0 + p, i0 + i);
      if constexpr (is_complex_v<T>) {
        slice[i] = v.real();
        slice[MR + i] = v.imag();
      } else {
        slice[i] = v;
      }
    }
    for (index_t i = mt; i < MR; ++i) {
      slice[i] = R{0};
      if constexpr (is_complex_v<T>) slice[MR + i] = R{0};
    }
  }
}

/// Pack one nr-column tile of op(B): columns [j0, j0+nt) (nt <= NR), inner
/// dimension [p0, p0+kb). Same k-slice-major layout as pack_a_tile with NR
/// values per plane per slice, columns beyond nt zero-padded.
template <class T, index_t NR>
void pack_b_tile(ConstMatrixView<T> B, Op opB, index_t p0, index_t j0,
                 index_t kb, index_t nt, real_of_t<T>* dst) {
  using R = real_of_t<T>;
  constexpr index_t planes = kPackPlanes<T>;
  for (index_t p = 0; p < kb; ++p) {
    R* slice = dst + static_cast<std::size_t>(p) * NR * planes;
    for (index_t j = 0; j < nt; ++j) {
      const T v = (opB == Op::kNoTrans) ? B(p0 + p, j0 + j) : B(j0 + j, p0 + p);
      if constexpr (is_complex_v<T>) {
        slice[j] = v.real();
        slice[NR + j] = v.imag();
      } else {
        slice[j] = v;
      }
    }
    for (index_t j = nt; j < NR; ++j) {
      slice[j] = R{0};
      if constexpr (is_complex_v<T>) slice[NR + j] = R{0};
    }
  }
}

}  // namespace cs::la::detail
