// Orthogonal factorizations used by the low-rank compression machinery:
//
//  * householder_qr / form_q_thin : thin QR of tall matrices (complex-aware,
//    with conjugated reflectors, i.e. Q is unitary);
//  * jacobi_svd : one-sided Jacobi SVD of small dense matrices (the cores
//    arising in Rk truncation);
//  * rrqr_compress : rank-revealing column-pivoted QR that converts a dense
//    block into a rank-k factorization U V^T at relative accuracy eps --
//    this is the "Compress(X)" primitive of the paper's compressed-Schur
//    algorithm variants (Alg. 2 line 8 and the compressed AXPY of Alg. 3).
//
// Low-rank convention throughout the library: A ~= U * V^T with a *plain*
// (non-conjugated) transpose, matching the complex-symmetric BEM setting.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "la/blas.h"
#include "la/matrix.h"

namespace cs::la {

namespace detail {

/// Reflector panel width for the blocked (compact WY) application paths,
/// and the size below which the scalar reflector loops are kept (the WY
/// set-up cost does not pay off for tiny blocks).
inline constexpr index_t kQrPanel = 32;
inline constexpr index_t kQrBlockedMinRows = 32;
inline constexpr index_t kQrBlockedMinCols = 8;

/// Materialize the unit-lower-trapezoidal reflector block V (and its
/// conjugate Vc) for reflectors [j0, j0+jb) of a householder_qr output,
/// restricted to rows [j0, m). tau == 0 columns are zeroed (H_j = I).
template <class T>
void materialize_v(ConstMatrixView<T> QR, const T* tau, index_t j0, index_t jb,
                   Matrix<T>& V, Matrix<T>& Vc) {
  const index_t rows = QR.rows() - j0;
  V = Matrix<T>(rows, jb);
  Vc = Matrix<T>(rows, jb);
  for (index_t c = 0; c < jb; ++c) {
    if (tau[c] == T{0}) continue;  // identity reflector: keep the zero column
    V(c, c) = T{1};
    Vc(c, c) = T{1};
    for (index_t i = c + 1; i < rows; ++i) {
      const T v = QR(j0 + i, j0 + c);
      V(i, c) = v;
      Vc(i, c) = conj_if(v);
    }
  }
}

/// T factor of the compact WY representation: the product of the panel's
/// reflectors H_j = I - tau_j v_j v_j^H equals I - V * S * V^H, where
///   forward  (S upper triangular): H_{j0} H_{j0+1} ... H_{j0+jb-1}
///   backward (S lower triangular): H_{j0+jb-1} ... H_{j0+1} H_{j0}
/// Built from the Gram matrix G = V^H V (one gemm) plus an O(jb^3) scalar
/// recurrence.
template <class T>
Matrix<T> reflector_t_factor(const Matrix<T>& V, const Matrix<T>& Vc,
                             const T* tau, index_t jb, bool forward) {
  Matrix<T> G(jb, jb);
  gemm(T{1}, ConstMatrixView<T>(Vc.view()), Op::kTrans,
       ConstMatrixView<T>(V.view()), Op::kNoTrans, T{0}, G.view());
  Matrix<T> S(jb, jb);
  if (forward) {
    // S(0:c, c) = -tau_c * S(0:c, 0:c) * G(0:c, c).
    for (index_t c = 0; c < jb; ++c) {
      const T t = tau[c];
      for (index_t i = 0; i < c; ++i) {
        T acc{};
        for (index_t q = i; q < c; ++q) acc += S(i, q) * G(q, c);
        S(i, c) = -t * acc;
      }
      S(c, c) = t;
    }
  } else {
    // S(c, 0:c) = -tau_c * G(c, 0:c) * S(0:c, 0:c).
    for (index_t c = 0; c < jb; ++c) {
      const T t = tau[c];
      for (index_t q = 0; q < c; ++q) {
        T acc{};
        for (index_t i = q; i < c; ++i) acc += G(c, i) * S(i, q);
        S(c, q) = -t * acc;
      }
      S(c, c) = t;
    }
  }
  return S;
}

/// Out := (I - V S V^H) * Out -- the block-reflector application, as three
/// gemms routed through the packed engine.
template <class T>
void apply_block_reflector(const Matrix<T>& V, const Matrix<T>& Vc,
                           const Matrix<T>& S, MatrixView<T> Out) {
  const index_t jb = V.cols();
  Matrix<T> W(jb, Out.cols());
  gemm(T{1}, ConstMatrixView<T>(Vc.view()), Op::kTrans,
       ConstMatrixView<T>(Out), Op::kNoTrans, T{0}, W.view());
  Matrix<T> W2(jb, Out.cols());
  gemm(T{1}, ConstMatrixView<T>(S.view()), Op::kNoTrans,
       ConstMatrixView<T>(W.view()), Op::kNoTrans, T{0}, W2.view());
  gemm(T{-1}, ConstMatrixView<T>(V.view()), Op::kNoTrans,
       ConstMatrixView<T>(W2.view()), Op::kNoTrans, T{1}, Out);
}

/// Apply the ordered product of reflectors [j0, j0+jb) to Out's rows
/// [j0, m) via the compact WY form (see reflector_t_factor for the order).
template <class T>
void apply_reflector_panel(ConstMatrixView<T> QR, const T* tau, index_t j0,
                           index_t jb, bool forward, MatrixView<T> Out) {
  Matrix<T> V, Vc;
  materialize_v(QR, tau, j0, jb, V, Vc);
  Matrix<T> S = reflector_t_factor(V, Vc, tau, jb, forward);
  apply_block_reflector(V, Vc, S, Out);
}

/// Scalar fallback: C := (H_0 ... H_{k-1}) * C, one reflector at a time
/// (the pre-WY loop; exact arithmetic kept for tiny problems).
template <class T>
void apply_q_left_unblocked(ConstMatrixView<T> QR, const std::vector<T>& tau,
                            MatrixView<T> C) {
  const index_t m = QR.rows();
  const index_t k = QR.cols();
  for (index_t j = k - 1; j >= 0; --j) {
    const T tau_j = tau[static_cast<std::size_t>(j)];
    if (tau_j == T{0}) continue;
    for (index_t c = 0; c < C.cols(); ++c) {
      T w = C(j, c);
      for (index_t i = j + 1; i < m; ++i) w += conj_if(QR(i, j)) * C(i, c);
      w *= tau_j;
      C(j, c) -= w;
      for (index_t i = j + 1; i < m; ++i) C(i, c) -= w * QR(i, j);
    }
  }
}

}  // namespace detail

/// C := Q * C with Q = H_0 H_1 ... H_{k-1} from a householder_qr output
/// (C.rows() == QR.rows()). Large problems go panel by panel through the
/// compact WY form, turning the reflector applications into rank-jb gemm
/// updates on the packed engine.
template <class T>
void apply_q_left(ConstMatrixView<T> QR, const std::vector<T>& tau,
                  MatrixView<T> C) {
  const index_t m = QR.rows();
  const index_t k = QR.cols();
  assert(C.rows() == m);
  if (m < detail::kQrBlockedMinRows || k < detail::kQrBlockedMinCols) {
    detail::apply_q_left_unblocked(QR, tau, C);
    return;
  }
  const index_t panels = (k + detail::kQrPanel - 1) / detail::kQrPanel;
  for (index_t panel = panels - 1; panel >= 0; --panel) {
    const index_t j0 = panel * detail::kQrPanel;
    const index_t jb = std::min(detail::kQrPanel, k - j0);
    detail::apply_reflector_panel(QR, tau.data() + j0, j0, jb,
                                  /*forward=*/true,
                                  C.block(j0, 0, m - j0, C.cols()));
  }
}

/// In-place Householder QR of an m x k matrix (m >= k). On exit the upper
/// triangle holds R and the Householder vectors are stored below the
/// diagonal (v_j(j) = 1 implicit); tau holds the reflector coefficients.
/// Panels of kQrPanel columns are factored with the scalar loop; the
/// trailing columns receive the whole panel at once as a compact-WY block
/// reflector (three packed gemms) instead of one rank-1 update per column.
template <class T>
void householder_qr(MatrixView<T> A, std::vector<T>& tau) {
  const index_t m = A.rows();
  const index_t k = A.cols();
  tau.assign(static_cast<std::size_t>(k), T{0});
  const bool blocked = m >= detail::kQrBlockedMinRows && k > detail::kQrPanel;
  const index_t panel_w = blocked ? detail::kQrPanel : k;
  for (index_t j0 = 0; j0 < k; j0 += panel_w) {
    const index_t jend = std::min(k, j0 + panel_w);
    for (index_t j = j0; j < jend; ++j) {
      // Build the reflector for column j.
      real_of_t<T> xnorm2 = 0;
      for (index_t i = j + 1; i < m; ++i) xnorm2 += abs2(A(i, j));
      const T alpha = A(j, j);
      if (xnorm2 == 0) {
        // Column is already upper triangular; no reflector needed.
        tau[static_cast<std::size_t>(j)] = T{0};
        continue;
      }
      const real_of_t<T> anorm = std::sqrt(abs2(alpha) + xnorm2);
      // beta = -sign(alpha) * ||x|| (complex sign: alpha/|alpha|).
      T beta;
      if (std::abs(alpha) == real_of_t<T>{0}) {
        beta = T{-anorm};
      } else {
        beta = -(alpha / std::abs(alpha)) * anorm;
      }
      const T tau_j = (beta - alpha) / beta;
      const T scale = T{1} / (alpha - beta);
      for (index_t i = j + 1; i < m; ++i) A(i, j) *= scale;
      A(j, j) = beta;
      tau[static_cast<std::size_t>(j)] = tau_j;
      // Apply (I - tau v v^H) to the remaining columns of this panel.
      for (index_t c = j + 1; c < jend; ++c) {
        T w = A(j, c);
        for (index_t i = j + 1; i < m; ++i) w += conj_if(A(i, j)) * A(i, c);
        w *= tau_j;
        A(j, c) -= w;
        for (index_t i = j + 1; i < m; ++i) A(i, c) -= w * A(i, j);
      }
    }
    // Trailing update: the panel's reflectors were applied in order
    // H_{jend-1} ... H_{j0} (each column saw the earlier ones first), so
    // the block application uses the backward product.
    if (jend < k) {
      detail::apply_reflector_panel(
          ConstMatrixView<T>(A), tau.data() + j0, j0, jend - j0,
          /*forward=*/false, A.block(j0, jend, m - j0, k - jend));
    }
  }
}

/// Build the thin Q (m x k) from the output of householder_qr.
template <class T>
Matrix<T> form_q_thin(ConstMatrixView<T> QR, const std::vector<T>& tau) {
  const index_t m = QR.rows();
  const index_t k = QR.cols();
  Matrix<T> Q(m, k);
  for (index_t j = 0; j < k; ++j) Q(j, j) = T{1};
  apply_q_left(QR, tau, Q.view());
  return Q;
}

/// One-sided Jacobi SVD of a small dense n x n (or m x n, m >= n) matrix:
/// A = U * diag(sigma) * V^H with unitary U (m x n), V (n x n) and
/// descending real singular values. Intended for the small cores of Rk
/// truncations (n up to a few hundred).
template <class T>
void jacobi_svd(ConstMatrixView<T> A, Matrix<T>& U,
                std::vector<real_of_t<T>>& sigma, Matrix<T>& V) {
  using R = real_of_t<T>;
  const index_t m = A.rows();
  const index_t n = A.cols();
  Matrix<T> G(m, n);
  G.view().copy_from(A);
  V = Matrix<T>::identity(n);

  const R eps = std::numeric_limits<R>::epsilon();

  for (int sweep = 0; sweep < 60; ++sweep) {
    // Columns whose norm has collapsed to rotation round-off of the
    // dominant column are converged by fiat: each rotation against a large
    // column re-seeds a tiny one with O(eps * ||g_max||) of mass, so the
    // relative pair criterion below can never be met for them and the
    // sweep loop spins to its cap. This bites in single precision, where
    // graded Rk cores routinely span more than float's 2^24 range; the
    // frozen columns carry sigma <= 4 eps sigma_max, which is noise at
    // working precision.
    R max2 = 0;
    for (index_t j = 0; j < n; ++j) {
      R acc = 0;
      for (index_t i = 0; i < m; ++i) acc += abs2(G(i, j));
      max2 = std::max(max2, acc);
    }
    const R tiny2 = (R{4} * eps) * (R{4} * eps) * max2;
    bool converged = true;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        // Hermitian 2x2 Gram block of columns p, q.
        R app = 0, aqq = 0;
        T apq{};
        for (index_t i = 0; i < m; ++i) {
          app += abs2(G(i, p));
          aqq += abs2(G(i, q));
          apq += conj_if(G(i, p)) * G(i, q);
        }
        if (app <= tiny2 || aqq <= tiny2) continue;
        const R apq_abs = std::abs(apq);
        if (apq_abs == R{0} ||
            apq_abs <= R{16} * eps * std::sqrt(app * aqq)) {
          continue;
        }
        converged = false;
        // Classic Jacobi rotation zeroing the off-diagonal.
        const R tau_r = (aqq - app) / (R{2} * apq_abs);
        const R t = (tau_r >= 0 ? R{1} : R{-1}) /
                    (std::abs(tau_r) + std::sqrt(R{1} + tau_r * tau_r));
        const R c = R{1} / std::sqrt(R{1} + t * t);
        const T s = (apq / apq_abs) * T{t * c};
        // G(:, [p q]) *= [c, s; -conj(s), c]^H-style plane rotation.
        for (index_t i = 0; i < m; ++i) {
          const T gp = G(i, p);
          const T gq = G(i, q);
          G(i, p) = T{c} * gp - conj_if(s) * gq;
          G(i, q) = s * gp + T{c} * gq;
        }
        for (index_t i = 0; i < n; ++i) {
          const T vp = V(i, p);
          const T vq = V(i, q);
          V(i, p) = T{c} * vp - conj_if(s) * vq;
          V(i, q) = s * vp + T{c} * vq;
        }
      }
    }
    if (converged) break;
  }

  sigma.assign(static_cast<std::size_t>(n), R{0});
  U = Matrix<T>(m, n);
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<R> norms(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    R acc = 0;
    for (index_t i = 0; i < m; ++i) acc += abs2(G(i, j));
    norms[static_cast<std::size_t>(j)] = std::sqrt(acc);
  }
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return norms[static_cast<std::size_t>(a)] >
           norms[static_cast<std::size_t>(b)];
  });
  Matrix<T> Vs(n, n);
  for (index_t jj = 0; jj < n; ++jj) {
    const index_t j = order[static_cast<std::size_t>(jj)];
    const R s = norms[static_cast<std::size_t>(j)];
    sigma[static_cast<std::size_t>(jj)] = s;
    const R inv = (s > R{0}) ? R{1} / s : R{0};
    for (index_t i = 0; i < m; ++i) U(i, jj) = G(i, j) * T{inv};
    for (index_t i = 0; i < n; ++i) Vs(i, jj) = V(i, j);
  }
  V = std::move(Vs);
}

/// Result of a rank-revealing compression: A ~= U * V^T with U m x k,
/// V n x k.
template <class T>
struct RkFactors {
  Matrix<T> U;
  Matrix<T> V;
  index_t rank() const { return U.cols(); }
};

/// Rank-revealing column-pivoted Householder QR compression of a dense
/// block at relative Frobenius-like accuracy eps: stops once the
/// remaining column-norm mass is below eps * ||A||_F. Returns U = thin Q,
/// V^T = R P^T. max_rank bounds the work (<=0 means min(m,n)).
template <class T>
RkFactors<T> rrqr_compress(ConstMatrixView<T> A, real_of_t<T> eps,
                           index_t max_rank = -1) {
  using R = real_of_t<T>;
  const index_t m = A.rows();
  const index_t n = A.cols();
  const index_t kmax0 = std::min(m, n);
  const index_t kmax = (max_rank > 0) ? std::min(kmax0, max_rank) : kmax0;

  Matrix<T> W(m, n);
  W.view().copy_from(A);
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<R> colnorm2(static_cast<std::size_t>(n));
  R total2 = 0;
  for (index_t j = 0; j < n; ++j) {
    R acc = 0;
    for (index_t i = 0; i < m; ++i) acc += abs2(W(i, j));
    colnorm2[static_cast<std::size_t>(j)] = acc;
    total2 += acc;
  }
  const R thresh2 = eps * eps * total2;

  std::vector<T> tau;
  tau.reserve(static_cast<std::size_t>(kmax));
  index_t k = 0;
  R remaining2 = total2;
  while (k < kmax && remaining2 > thresh2) {
    // Select the column with the largest remaining norm.
    index_t best = k;
    for (index_t j = k + 1; j < n; ++j)
      if (colnorm2[static_cast<std::size_t>(j)] >
          colnorm2[static_cast<std::size_t>(best)])
        best = j;
    if (best != k) {
      for (index_t i = 0; i < m; ++i) std::swap(W(i, k), W(i, best));
      std::swap(colnorm2[static_cast<std::size_t>(k)],
                colnorm2[static_cast<std::size_t>(best)]);
      std::swap(perm[static_cast<std::size_t>(k)],
                perm[static_cast<std::size_t>(best)]);
    }
    // Householder reflector for column k (rows k..m).
    R xnorm2 = 0;
    for (index_t i = k + 1; i < m; ++i) xnorm2 += abs2(W(i, k));
    const T alpha = W(k, k);
    const R anorm = std::sqrt(abs2(alpha) + xnorm2);
    if (anorm == R{0}) break;
    T beta = (std::abs(alpha) == R{0}) ? T{-anorm}
                                       : -(alpha / std::abs(alpha)) * anorm;
    const T tau_k = (beta - alpha) / beta;
    const T scale = T{1} / (alpha - beta);
    for (index_t i = k + 1; i < m; ++i) W(i, k) *= scale;
    W(k, k) = beta;
    tau.push_back(tau_k);
    // Apply to trailing columns and recompute their remaining norms
    // exactly (downdating is numerically unreliable at tight eps).
    remaining2 = 0;
    for (index_t c = k + 1; c < n; ++c) {
      T w = W(k, c);
      for (index_t i = k + 1; i < m; ++i) w += conj_if(W(i, k)) * W(i, c);
      w *= tau_k;
      W(k, c) -= w;
      R below2 = 0;
      for (index_t i = k + 1; i < m; ++i) {
        W(i, c) -= w * W(i, k);
        below2 += abs2(W(i, c));
      }
      colnorm2[static_cast<std::size_t>(c)] = below2;
      remaining2 += below2;
    }
    ++k;
  }

  RkFactors<T> rk;
  if (k == 0) {
    rk.U = Matrix<T>(m, 0);
    rk.V = Matrix<T>(n, 0);
    return rk;
  }
  // U = thin Q (m x k).
  rk.U = form_q_thin(ConstMatrixView<T>(W.block(0, 0, m, k)), tau);
  // V(j, :) = R(:, position of original column j)^T.
  rk.V = Matrix<T>(n, k);
  for (index_t jp = 0; jp < n; ++jp) {
    const index_t j = perm[static_cast<std::size_t>(jp)];
    const index_t upto = std::min(k, jp + 1);
    for (index_t i = 0; i < upto; ++i) rk.V(j, i) = W(i, jp);
  }
  return rk;
}

/// Recompress rank-k factors U V^T to the smallest rank r such that the
/// discarded singular-value mass satisfies sum_{i>r} s_i^2 <= eps^2 *
/// sum_i s_i^2 (relative Frobenius criterion, matching rrqr_compress).
/// Standard QR+SVD core algorithm; cost O((m+n) k^2 + k^3).
template <class T>
void truncate_rk(RkFactors<T>& rk, real_of_t<T> eps) {
  using R = real_of_t<T>;
  const index_t m = rk.U.rows();
  const index_t n = rk.V.rows();
  const index_t k = rk.U.cols();
  if (k == 0) return;
  if (k > m || k > n) {
    // Factors are fatter than the block: materialize and recompress.
    Matrix<T> dense(m, n);
    gemm(T{1}, rk.U.view(), Op::kNoTrans, rk.V.view(), Op::kTrans, T{0},
         dense.view());
    rk = rrqr_compress(ConstMatrixView<T>(dense.view()), eps);
    return;
  }

  std::vector<T> tau_u, tau_v;
  Matrix<T> QRu = std::move(rk.U);
  Matrix<T> QRv = std::move(rk.V);
  householder_qr(QRu.view(), tau_u);
  householder_qr(QRv.view(), tau_v);

  // Core C = Ru * Rv^T (k x k). Extract the upper-triangular R factors
  // (zero below the diagonal -- the QR storage keeps reflector vectors
  // there) and route the k^3 product through gemm instead of a naive
  // triple loop: for the k ~ few-hundred cores of Rk arithmetic this is
  // the dominant cost of a truncation.
  Matrix<T> Ru(k, k), Rv(k, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i <= j; ++i) {
      Ru(i, j) = QRu(i, j);
      Rv(i, j) = QRv(i, j);
    }
  Matrix<T> C(k, k);
  gemm(T{1}, Ru.view(), Op::kNoTrans, Rv.view(), Op::kTrans, T{0}, C.view());
  Ru.clear();
  Rv.clear();

  Matrix<T> Uc, Vc;
  std::vector<R> sigma;
  jacobi_svd(ConstMatrixView<T>(C.view()), Uc, sigma, Vc);

  R total2 = 0;
  for (R s : sigma) total2 += s * s;
  index_t r = k;
  R tail2 = 0;
  while (r > 0) {
    const R s = sigma[static_cast<std::size_t>(r - 1)];
    if (tail2 + s * s > eps * eps * total2) break;
    tail2 += s * s;
    --r;
  }

  // U' = Qu * (Uc(:, :r) * diag(s)), V' = Qv * conj(Vc(:, :r)).
  Matrix<T> Us(k, r);
  for (index_t j = 0; j < r; ++j)
    for (index_t i = 0; i < k; ++i)
      Us(i, j) = Uc(i, j) * T{sigma[static_cast<std::size_t>(j)]};
  Matrix<T> Vconj(k, r);
  for (index_t j = 0; j < r; ++j)
    for (index_t i = 0; i < k; ++i) Vconj(i, j) = conj_if(Vc(i, j));

  // Apply the stored Q factors to the (zero-padded) small cores via the
  // blocked WY path.
  auto apply_q = [](const Matrix<T>& QR, const std::vector<T>& tau,
                    const Matrix<T>& core, index_t rows) {
    Matrix<T> out(rows, core.cols());
    out.block(0, 0, core.rows(), core.cols()).copy_from(core.view());
    apply_q_left(QR.view(), tau, out.view());
    return out;
  };
  rk.U = apply_q(QRu, tau_u, Us, m);
  rk.V = apply_q(QRv, tau_v, Vconj, n);
}

}  // namespace cs::la
