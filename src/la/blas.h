// BLAS-like dense kernels on MatrixView: gemm/gemv/trsm/axpy/norms.
//
// These are the building blocks under the dense solver ("SPIDO" analogue),
// the multifrontal fronts, and the H-matrix arithmetic. Large gemm shapes
// dispatch to the packed cache-blocked engine of gemm_kernel.h (BLIS-style
// mr x nr micro-kernels over packed panels, DESIGN.md section 10); tiny and
// skinny shapes keep the lightweight column-blocked kernel below. trsm is a
// blocked recursion: scalar solves on diagonal blocks, packed-gemm updates
// off the diagonal, with both sides parallel over independent slabs of B.
// Transposition is plain (not conjugated) because the library manipulates
// complex *symmetric* (not Hermitian) matrices, as in the paper's BEM/FEM
// setting.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>

#include "la/gemm_kernel.h"
#include "la/matrix.h"

namespace cs::la {

namespace detail {

/// Unpacked column-blocked kernel (the pre-packing gemm, minus the beta
/// prologue): C += alpha * op(A) * op(B). Retained as the dispatch target
/// for shapes where packing does not pay off (rank-1 ACA updates, tiny
/// blocks) and as the reference path for the kernel non-regression bench.
/// Each column of A is reused across kColBlock output columns, cutting A's
/// memory traffic by that factor for multi-RHS products.
template <class T>
void gemm_unpacked(T alpha, ConstMatrixView<T> A, Op opA, ConstMatrixView<T> B,
                   Op opB, MatrixView<T> C, bool parallel) {
  const index_t m = C.rows();
  const index_t n = C.cols();
  const index_t k = (opA == Op::kNoTrans) ? A.cols() : A.rows();
  constexpr index_t kColBlock = 8;
  if (opA == Op::kNoTrans && (opB == Op::kNoTrans || opB == Op::kTrans)) {
#pragma omp parallel for schedule(static) if (parallel)
    for (index_t j0 = 0; j0 < n; j0 += kColBlock) {
      const index_t jb = std::min(kColBlock, n - j0);
      T bvals[kColBlock];
      T* ccols[kColBlock];
      for (index_t jj = 0; jj < jb; ++jj) ccols[jj] = &C(0, j0 + jj);
      for (index_t p = 0; p < k; ++p) {
        bool any = false;
        for (index_t jj = 0; jj < jb; ++jj) {
          bvals[jj] = alpha * ((opB == Op::kNoTrans) ? B(p, j0 + jj)
                                                     : B(j0 + jj, p));
          any = any || bvals[jj] != T{0};
        }
        if (!any) continue;
        const T* ap = &A(0, p);
        if (jb == kColBlock) {
          for (index_t i = 0; i < m; ++i) {
            const T a = ap[i];
            for (index_t jj = 0; jj < kColBlock; ++jj)
              ccols[jj][i] += bvals[jj] * a;
          }
        } else {
          for (index_t i = 0; i < m; ++i) {
            const T a = ap[i];
            for (index_t jj = 0; jj < jb; ++jj) ccols[jj][i] += bvals[jj] * a;
          }
        }
      }
    }
  } else if (opA == Op::kTrans && opB == Op::kNoTrans) {
#pragma omp parallel for schedule(static) if (parallel)
    for (index_t j0 = 0; j0 < n; j0 += kColBlock) {
      const index_t jb = std::min(kColBlock, n - j0);
      const T* bcols[kColBlock];
      for (index_t jj = 0; jj < jb; ++jj) bcols[jj] = &B(0, j0 + jj);
      for (index_t i = 0; i < m; ++i) {
        const T* ai = &A(0, i);  // column i of A == row i of A^T
        T acc[kColBlock] = {};
        for (index_t p = 0; p < k; ++p) {
          const T a = ai[p];
          for (index_t jj = 0; jj < jb; ++jj) acc[jj] += a * bcols[jj][p];
        }
        for (index_t jj = 0; jj < jb; ++jj) C(i, j0 + jj) += alpha * acc[jj];
      }
    }
  } else {  // T,T
#pragma omp parallel for schedule(static) if (parallel)
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        const T* ai = &A(0, i);
        T acc{};
        for (index_t p = 0; p < k; ++p) acc += ai[p] * B(j, p);
        C(i, j) += alpha * acc;
      }
    }
  }
}

}  // namespace detail

/// C := beta*C + alpha * op(A) * op(B).
template <class T>
void gemm(T alpha, ConstMatrixView<T> A, Op opA, ConstMatrixView<T> B, Op opB,
          T beta, MatrixView<T> C) {
  const index_t m = C.rows();
  const index_t n = C.cols();
  const index_t k = (opA == Op::kNoTrans) ? A.cols() : A.rows();
  assert(((opA == Op::kNoTrans) ? A.rows() : A.cols()) == m);
  assert(((opB == Op::kNoTrans) ? B.rows() : B.cols()) == k);
  assert(((opB == Op::kNoTrans) ? B.cols() : B.rows()) == n);

  if (beta != T{1}) {
    // Scaling is bandwidth-bound; spread large C over the team.
    const bool par_scale = static_cast<offset_t>(m) * n > 16384;
#pragma omp parallel for schedule(static) if (par_scale)
    for (index_t j = 0; j < n; ++j) {
      T* cj = &C(0, j);
      if (beta == T{0}) {
        for (index_t i = 0; i < m; ++i) cj[i] = T{0};
      } else {
        for (index_t i = 0; i < m; ++i) cj[i] *= beta;
      }
    }
  }
  if (alpha == T{0} || m == 0 || n == 0 || k == 0) return;

  const bool parallel = static_cast<offset_t>(m) * n * k > 65536;
  if (detail::use_packed_gemm(m, n, k)) {
    detail::gemm_packed(alpha, A, opA, B, opB, C, parallel);
  } else {
    detail::gemm_unpacked(alpha, A, opA, B, opB, C, parallel);
  }
}

// Forwarding overloads so mutable views can be passed where read-only input
// operands are expected (implicit conversions do not participate in template
// argument deduction).
template <class T>
void gemm(T alpha, MatrixView<T> A, Op opA, MatrixView<T> B, Op opB, T beta,
          MatrixView<T> C) {
  gemm(alpha, ConstMatrixView<T>(A), opA, ConstMatrixView<T>(B), opB, beta, C);
}
template <class T>
void gemm(T alpha, ConstMatrixView<T> A, Op opA, MatrixView<T> B, Op opB,
          T beta, MatrixView<T> C) {
  gemm(alpha, A, opA, ConstMatrixView<T>(B), opB, beta, C);
}
template <class T>
void gemm(T alpha, MatrixView<T> A, Op opA, ConstMatrixView<T> B, Op opB,
          T beta, MatrixView<T> C) {
  gemm(alpha, ConstMatrixView<T>(A), opA, B, opB, beta, C);
}

/// y := beta*y + alpha * op(A) * x.
template <class T>
void gemv(T alpha, ConstMatrixView<T> A, Op opA, const T* x, T beta, T* y) {
  const index_t m = (opA == Op::kNoTrans) ? A.rows() : A.cols();
  const index_t k = (opA == Op::kNoTrans) ? A.cols() : A.rows();
  for (index_t i = 0; i < m; ++i) y[i] = (beta == T{0}) ? T{0} : beta * y[i];
  if (opA == Op::kNoTrans) {
    for (index_t p = 0; p < k; ++p) {
      const T axp = alpha * x[p];
      if (axp == T{0}) continue;
      const T* ap = &A(0, p);
      for (index_t i = 0; i < m; ++i) y[i] += axp * ap[i];
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      const T* ai = &A(0, i);
      T acc{};
      for (index_t p = 0; p < k; ++p) acc += ai[p] * x[p];
      y[i] += alpha * acc;
    }
  }
}

enum class Side { kLeft, kRight };
enum class Uplo { kLower, kUpper };
enum class Diag { kUnit, kNonUnit };

namespace detail {

/// Order at or below which the trsm recursion bottoms out on the scalar
/// solves, and the slab width/height the independent dimension of B is cut
/// into. Both are thread-count independent so results are bitwise identical
/// for any number of workers.
inline constexpr index_t kTrsmBase = 64;
inline constexpr index_t kTrsmSlab = 32;

/// Scalar left solve op(A)^{-1} * B (one column slab of B; recursion base).
template <class T>
void trsm_left_unblocked(Uplo uplo, Op opA, Diag diag, ConstMatrixView<T> A,
                         MatrixView<T> B) {
  const index_t n = A.rows();
  const index_t nrhs = B.cols();
  const bool unit = diag == Diag::kUnit;
  const bool lower = (uplo == Uplo::kLower) != (opA == Op::kTrans);
  auto a = [&](index_t i, index_t j) -> T {
    return (opA == Op::kTrans) ? A(j, i) : A(i, j);
  };
  for (index_t j = 0; j < nrhs; ++j) {
    T* bj = &B(0, j);
    if (lower) {
      for (index_t i = 0; i < n; ++i) {
        T acc = bj[i];
        for (index_t p = 0; p < i; ++p) acc -= a(i, p) * bj[p];
        bj[i] = unit ? acc : acc / a(i, i);
      }
    } else {
      for (index_t i = n - 1; i >= 0; --i) {
        T acc = bj[i];
        for (index_t p = i + 1; p < n; ++p) acc -= a(i, p) * bj[p];
        bj[i] = unit ? acc : acc / a(i, i);
      }
    }
  }
}

/// Scalar right solve B * op(A)^{-1} (one row slab of B; recursion base).
template <class T>
void trsm_right_unblocked(Uplo uplo, Op opA, Diag diag, ConstMatrixView<T> A,
                          MatrixView<T> B) {
  const index_t n = A.rows();
  const index_t m = B.rows();
  const bool unit = diag == Diag::kUnit;
  const bool lower = (uplo == Uplo::kLower) != (opA == Op::kTrans);
  auto a = [&](index_t i, index_t j) -> T {
    return (opA == Op::kTrans) ? A(j, i) : A(i, j);
  };
  if (lower) {
    // x_j depends on columns > j of op(A): B(:,j) = (B(:,j) - sum_{p>j}
    // B(:,p) * a(p,j)) / a(j,j) going j from n-1 downto 0.
    for (index_t j = n - 1; j >= 0; --j) {
      T* bj = &B(0, j);
      for (index_t p = j + 1; p < n; ++p) {
        const T apj = a(p, j);
        if (apj == T{0}) continue;
        const T* bp = &B(0, p);
        for (index_t i = 0; i < m; ++i) bj[i] -= bp[i] * apj;
      }
      if (!unit) {
        const T inv = T{1} / a(j, j);
        for (index_t i = 0; i < m; ++i) bj[i] *= inv;
      }
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      T* bj = &B(0, j);
      for (index_t p = 0; p < j; ++p) {
        const T apj = a(p, j);
        if (apj == T{0}) continue;
        const T* bp = &B(0, p);
        for (index_t i = 0; i < m; ++i) bj[i] -= bp[i] * apj;
      }
      if (!unit) {
        const T inv = T{1} / a(j, j);
        for (index_t i = 0; i < m; ++i) bj[i] *= inv;
      }
    }
  }
}

/// Blocked recursion for the left solve: scalar solve on the diagonal
/// blocks, packed-gemm update of the remaining rows of B.
template <class T>
void trsm_left_rec(Uplo uplo, Op opA, Diag diag, ConstMatrixView<T> A,
                   MatrixView<T> B) {
  const index_t n = A.rows();
  if (n <= kTrsmBase) {
    trsm_left_unblocked(uplo, opA, diag, A, B);
    return;
  }
  const index_t n1 = n / 2;
  const index_t n2 = n - n1;
  const index_t nrhs = B.cols();
  const bool lower = (uplo == Uplo::kLower) != (opA == Op::kTrans);
  ConstMatrixView<T> A11 = A.block(0, 0, n1, n1);
  ConstMatrixView<T> A22 = A.block(n1, n1, n2, n2);
  MatrixView<T> B1 = B.block(0, 0, n1, nrhs);
  MatrixView<T> B2 = B.block(n1, 0, n2, nrhs);
  if (lower) {
    trsm_left_rec(uplo, opA, diag, A11, B1);
    // B2 -= eff(A21) * B1, where eff(A21) is the stored A21 (no-trans) or
    // the stored A12 transposed.
    if (opA == Op::kNoTrans) {
      gemm(T{-1}, A.block(n1, 0, n2, n1), Op::kNoTrans, ConstMatrixView<T>(B1),
           Op::kNoTrans, T{1}, B2);
    } else {
      gemm(T{-1}, A.block(0, n1, n1, n2), Op::kTrans, ConstMatrixView<T>(B1),
           Op::kNoTrans, T{1}, B2);
    }
    trsm_left_rec(uplo, opA, diag, A22, B2);
  } else {
    trsm_left_rec(uplo, opA, diag, A22, B2);
    // B1 -= eff(A12) * B2.
    if (opA == Op::kNoTrans) {
      gemm(T{-1}, A.block(0, n1, n1, n2), Op::kNoTrans, ConstMatrixView<T>(B2),
           Op::kNoTrans, T{1}, B1);
    } else {
      gemm(T{-1}, A.block(n1, 0, n2, n1), Op::kTrans, ConstMatrixView<T>(B2),
           Op::kNoTrans, T{1}, B1);
    }
    trsm_left_rec(uplo, opA, diag, A11, B1);
  }
}

/// Blocked recursion for the right solve B := B * op(A)^{-1}.
template <class T>
void trsm_right_rec(Uplo uplo, Op opA, Diag diag, ConstMatrixView<T> A,
                    MatrixView<T> B) {
  const index_t n = A.rows();
  if (n <= kTrsmBase) {
    trsm_right_unblocked(uplo, opA, diag, A, B);
    return;
  }
  const index_t n1 = n / 2;
  const index_t n2 = n - n1;
  const index_t m = B.rows();
  const bool lower = (uplo == Uplo::kLower) != (opA == Op::kTrans);
  ConstMatrixView<T> A11 = A.block(0, 0, n1, n1);
  ConstMatrixView<T> A22 = A.block(n1, n1, n2, n2);
  MatrixView<T> B1 = B.block(0, 0, m, n1);
  MatrixView<T> B2 = B.block(0, n1, m, n2);
  if (lower) {
    // [X1 X2] [L11 0; L21 L22] = [B1 B2]: X2 first, then B1 -= X2 * L21.
    trsm_right_rec(uplo, opA, diag, A22, B2);
    if (opA == Op::kNoTrans) {
      gemm(T{-1}, ConstMatrixView<T>(B2), Op::kNoTrans, A.block(n1, 0, n2, n1),
           Op::kNoTrans, T{1}, B1);
    } else {
      gemm(T{-1}, ConstMatrixView<T>(B2), Op::kNoTrans, A.block(0, n1, n1, n2),
           Op::kTrans, T{1}, B1);
    }
    trsm_right_rec(uplo, opA, diag, A11, B1);
  } else {
    // [X1 X2] [U11 U12; 0 U22] = [B1 B2]: X1 first, then B2 -= X1 * U12.
    trsm_right_rec(uplo, opA, diag, A11, B1);
    if (opA == Op::kNoTrans) {
      gemm(T{-1}, ConstMatrixView<T>(B1), Op::kNoTrans, A.block(0, n1, n1, n2),
           Op::kNoTrans, T{1}, B2);
    } else {
      gemm(T{-1}, ConstMatrixView<T>(B1), Op::kNoTrans, A.block(n1, 0, n2, n1),
           Op::kTrans, T{1}, B2);
    }
    trsm_right_rec(uplo, opA, diag, A22, B2);
  }
}

}  // namespace detail

/// Triangular solve with multiple right-hand sides:
///   Side::kLeft : B := op(A)^{-1} * B
///   Side::kRight: B := B * op(A)^{-1}
/// A is triangular (lower or upper), optionally unit-diagonal. Both sides
/// are parallel over the independent dimension of B (columns for the left
/// solve, rows for the right solve); the per-element arithmetic does not
/// depend on the slab split, so results match the serial solve bitwise.
template <class T>
void trsm(Side side, Uplo uplo, Op opA, Diag diag, ConstMatrixView<T> A,
          MatrixView<T> B) {
  const index_t n = A.rows();
  assert(A.cols() == n);
  if (n == 0) return;

  if (side == Side::kLeft) {
    assert(B.rows() == n);
    const index_t nrhs = B.cols();
    if (nrhs == 0) return;
    const index_t slabs = (nrhs + detail::kTrsmSlab - 1) / detail::kTrsmSlab;
    const bool parallel =
        slabs > 1 && static_cast<offset_t>(n) * n * nrhs > 65536;
#pragma omp parallel for schedule(static) if (parallel)
    for (index_t s = 0; s < slabs; ++s) {
      const index_t j0 = s * detail::kTrsmSlab;
      const index_t w = std::min(detail::kTrsmSlab, nrhs - j0);
      detail::trsm_left_rec(uplo, opA, diag, A, B.block(0, j0, n, w));
    }
  } else {
    assert(B.cols() == n);
    const index_t m = B.rows();
    if (m == 0) return;
    const index_t slabs = (m + detail::kTrsmSlab - 1) / detail::kTrsmSlab;
    const bool parallel =
        slabs > 1 && static_cast<offset_t>(n) * n * m > 65536;
#pragma omp parallel for schedule(static) if (parallel)
    for (index_t s = 0; s < slabs; ++s) {
      const index_t i0 = s * detail::kTrsmSlab;
      const index_t h = std::min(detail::kTrsmSlab, m - i0);
      detail::trsm_right_rec(uplo, opA, diag, A, B.block(i0, 0, h, n));
    }
  }
}

template <class T>
void gemv(T alpha, MatrixView<T> A, Op opA, const T* x, T beta, T* y) {
  gemv(alpha, ConstMatrixView<T>(A), opA, x, beta, y);
}

template <class T>
void trsm(Side side, Uplo uplo, Op opA, Diag diag, MatrixView<T> A,
          MatrixView<T> B) {
  trsm(side, uplo, opA, diag, ConstMatrixView<T>(A), B);
}

/// B := B + alpha * A (element-wise matrix AXPY).
template <class T>
void axpy(T alpha, ConstMatrixView<T> A, MatrixView<T> B) {
  assert(A.rows() == B.rows() && A.cols() == B.cols());
  for (index_t j = 0; j < A.cols(); ++j) {
    const T* aj = &A(0, j);
    T* bj = &B(0, j);
    for (index_t i = 0; i < A.rows(); ++i) bj[i] += alpha * aj[i];
  }
}

template <class T>
void axpy(T alpha, MatrixView<T> A, MatrixView<T> B) {
  axpy(alpha, ConstMatrixView<T>(A), B);
}

template <class T>
void scale(T alpha, MatrixView<T> A) {
  for (index_t j = 0; j < A.cols(); ++j)
    for (index_t i = 0; i < A.rows(); ++i) A(i, j) *= alpha;
}

/// B := A^T (plain, non-conjugated transpose; B must be A.cols x A.rows).
template <class T>
void transpose_into(ConstMatrixView<T> A, MatrixView<T> B) {
  assert(B.rows() == A.cols() && B.cols() == A.rows());
  for (index_t j = 0; j < A.cols(); ++j)
    for (index_t i = 0; i < A.rows(); ++i) B(j, i) = A(i, j);
}

/// B := (To)A, elementwise scalar conversion between precisions (the
/// mixed-precision solve path demotes RHS panels to factor precision and
/// promotes corrections back).
template <class To, class From>
void convert_into(ConstMatrixView<From> A, MatrixView<To> B) {
  assert(B.rows() == A.rows() && B.cols() == A.cols());
  for (index_t j = 0; j < A.cols(); ++j)
    for (index_t i = 0; i < A.rows(); ++i)
      B(i, j) = scalar_cast<To>(A(i, j));
}

/// Elementwise-converted copy of A in scalar type To.
template <class To, class From>
Matrix<To> converted(ConstMatrixView<From> A) {
  Matrix<To> B(A.rows(), A.cols());
  convert_into<To, From>(A, B.view());
  return B;
}

/// Frobenius norm.
template <class T>
real_of_t<T> norm_fro(ConstMatrixView<T> A) {
  real_of_t<T> acc = 0;
  for (index_t j = 0; j < A.cols(); ++j)
    for (index_t i = 0; i < A.rows(); ++i) acc += abs2(A(i, j));
  return std::sqrt(acc);
}

/// Largest |a_ij|.
template <class T>
real_of_t<T> max_abs(ConstMatrixView<T> A) {
  real_of_t<T> best = 0;
  for (index_t j = 0; j < A.cols(); ++j)
    for (index_t i = 0; i < A.rows(); ++i)
      best = std::max(best, std::abs(A(i, j)));
  return best;
}

/// ||A - B||_F / ||B||_F (0/0 -> 0), the relative error metric used
/// throughout the tests.
template <class T>
real_of_t<T> rel_diff(ConstMatrixView<T> A, ConstMatrixView<T> B) {
  assert(A.rows() == B.rows() && A.cols() == B.cols());
  real_of_t<T> num = 0, den = 0;
  for (index_t j = 0; j < A.cols(); ++j)
    for (index_t i = 0; i < A.rows(); ++i) {
      num += abs2(T(A(i, j) - B(i, j)));
      den += abs2(B(i, j));
    }
  if (den == 0) return num == 0 ? 0 : std::sqrt(num);
  return std::sqrt(num / den);
}

template <class T>
real_of_t<T> norm_fro(MatrixView<T> A) {
  return norm_fro(ConstMatrixView<T>(A));
}
template <class T>
real_of_t<T> max_abs(MatrixView<T> A) {
  return max_abs(ConstMatrixView<T>(A));
}
template <class T>
real_of_t<T> rel_diff(MatrixView<T> A, MatrixView<T> B) {
  return rel_diff(ConstMatrixView<T>(A), ConstMatrixView<T>(B));
}

}  // namespace cs::la
