// Three-level cache-blocked, packed GEMM engine (BLIS-style; Van Zee &
// van de Geijn, TOMS 2015).
//
// The classic loop nest around an mr x nr register-tiled micro-kernel:
//
//   for jc in steps of nc:             // B column panel        (~L3)
//     for pc in steps of kc:           // rank-kc update
//       pack op(B)[pc, jc] -> Bp       // kc x nc, nr-tiled
//       for ic in steps of mc:         // A row panel           (~L2)
//         pack op(A)[ic, pc] -> Ap     // mc x kc, mr-tiled
//         for jr, ir tiles:            // micro-kernel: Ap tile (~L1)
//           C[ir, jr] += alpha * Ap_tile * Bp_tile
//
// The micro-kernel accumulates an mr x nr tile in registers over the full
// kc dimension, reading one contiguous mr-slice of Ap and one nr-slice of
// Bp per step; it is written so the compiler auto-vectorizes the mr-length
// inner loops for both double and (via the split re/im packing of pack.h)
// std::complex<double>. OpenMP parallelism covers the pack loops and the
// jr macro-loop; the accumulation order over k is fixed by the sequential
// pc loop, so results are bitwise identical for every thread count.
#pragma once

#include <algorithm>
#include <cstddef>

#include "la/matrix.h"
#include "la/pack.h"

namespace cs::la::detail {

/// Register-tile and cache-block sizes per scalar type. mr/nr size the
/// micro-kernel accumulator (kept small enough to live in vector registers
/// on a 16-register AVX2 machine); mc*kc targets L2, kc*nc targets L3.
/// Complex blocks are half-sized: each element packs into two real planes.
template <class T>
struct KernelTraits {
  static constexpr index_t mr = 8, nr = 4;
  static constexpr index_t mc = 128, kc = 256, nc = 2048;
};
template <class S>
struct KernelTraits<std::complex<S>> {
  static constexpr index_t mr = 4, nr = 4;
  static constexpr index_t mc = 96, kc = 192, nc = 1024;
};
/// Single precision: elements are half the bytes, so mr scales up at the
/// same vector-register budget and the cache blocks double to keep the
/// same L2/L3 footprint. The mr values are measured, not derived: GCC
/// keeps these accumulator tiles in registers across the k loop, whereas
/// the "natural" halved-bytes choices (16 x 4 float, 8 x 4 complex float)
/// fall out of the auto-vectorizer's register allocation and run an order
/// of magnitude slower.
template <>
struct KernelTraits<float> {
  static constexpr index_t mr = 32, nr = 4;
  static constexpr index_t mc = 256, kc = 384, nc = 4096;
};
template <>
struct KernelTraits<std::complex<float>> {
  static constexpr index_t mr = 16, nr = 4;
  static constexpr index_t mc = 192, kc = 256, nc = 2048;
};

/// Real micro-kernel: acc[j*MR+i] += sum_p a[p*MR+i] * b[p*NR+j] over the
/// packed tiles of pack.h.
template <class R, index_t MR, index_t NR>
inline void microkernel_real(index_t kb, const R* __restrict a,
                             const R* __restrict b, R* __restrict acc) {
  for (index_t p = 0; p < kb; ++p) {
    const R* ap = a + static_cast<std::size_t>(p) * MR;
    const R* bp = b + static_cast<std::size_t>(p) * NR;
    for (index_t j = 0; j < NR; ++j) {
      const R bv = bp[j];
      R* accj = acc + j * MR;
      for (index_t i = 0; i < MR; ++i) accj[i] += ap[i] * bv;
    }
  }
}

/// Split-plane complex micro-kernel: tiles hold [re(MR) | im(MR)] per
/// k-slice, so the complex multiply becomes four real FMA streams.
template <class R, index_t MR, index_t NR>
inline void microkernel_cplx(index_t kb, const R* __restrict a,
                             const R* __restrict b, R* __restrict acc_re,
                             R* __restrict acc_im) {
  for (index_t p = 0; p < kb; ++p) {
    const R* ar = a + static_cast<std::size_t>(p) * 2 * MR;
    const R* ai = ar + MR;
    const R* br = b + static_cast<std::size_t>(p) * 2 * NR;
    const R* bi = br + NR;
    for (index_t j = 0; j < NR; ++j) {
      const R brv = br[j];
      const R biv = bi[j];
      R* cr = acc_re + j * MR;
      R* ci = acc_im + j * MR;
      for (index_t i = 0; i < MR; ++i) {
        cr[i] += ar[i] * brv - ai[i] * biv;
        ci[i] += ar[i] * biv + ai[i] * brv;
      }
    }
  }
}

/// C[i0.., j0..] += alpha * acc tile, masked to the real tile extent.
template <class T, index_t MR, index_t NR>
inline void store_tile(T alpha, const real_of_t<T>* acc_re,
                       const real_of_t<T>* acc_im, MatrixView<T> C, index_t i0,
                       index_t j0) {
  const index_t mt = std::min<index_t>(MR, C.rows() - i0);
  const index_t nt = std::min<index_t>(NR, C.cols() - j0);
  for (index_t j = 0; j < nt; ++j) {
    T* cj = &C(i0, j0 + j);
    for (index_t i = 0; i < mt; ++i) {
      if constexpr (is_complex_v<T>) {
        cj[i] += alpha * T{acc_re[j * MR + i], acc_im[j * MR + i]};
      } else {
        cj[i] += alpha * acc_re[j * MR + i];
      }
    }
  }
}

/// Size-based dispatch: shapes below this stay on the unpacked kernel
/// (packing and zero-padded tiles do not pay off for tiny or skinny
/// operands -- notably the ACA rank-1 updates, where k == 1).
///
/// Deliberately a function of (m, k) ONLY, never of n. Both engines
/// accumulate each output column independently in a fixed scan order, but
/// they do not produce the same bits as each other (the packed engine
/// reassociates the k loop into KC panels). If the engine choice depended
/// on the column count, solving a block of right-hand sides could flip a
/// column onto a different engine than solving that column alone --
/// breaking the solver-wide contract that batched solves are per-column
/// bitwise identical to single-RHS solves (which the serve-layer request
/// coalescer relies on). The m*k threshold meets the historical m*n*k
/// flop threshold (2^16) at the old n >= 8 boundary.
inline bool use_packed_gemm(index_t m, index_t n, index_t k) {
  (void)n;
  return m >= 8 && k >= 16 &&
         static_cast<offset_t>(m) * k >= (offset_t{1} << 13);
}

/// C += alpha * op(A) * op(B) through the packed engine. beta must already
/// have been applied to C by the caller (blas.h's shared prologue).
template <class T>
void gemm_packed(T alpha, ConstMatrixView<T> A, Op opA, ConstMatrixView<T> B,
                 Op opB, MatrixView<T> C, bool parallel) {
  using R = real_of_t<T>;
  using KT = KernelTraits<T>;
  constexpr index_t MR = KT::mr;
  constexpr index_t NR = KT::nr;
  constexpr index_t MC = KT::mc;
  constexpr index_t KC = KT::kc;
  constexpr index_t NC = KT::nc;
  constexpr index_t planes = kPackPlanes<T>;

  const index_t m = C.rows();
  const index_t n = C.cols();
  const index_t k = (opA == Op::kNoTrans) ? A.cols() : A.rows();
  if (m == 0 || n == 0 || k == 0) return;

  const index_t mc = std::min<index_t>(MC, m);
  const index_t nc = std::min<index_t>(NC, n);
  const index_t kc = std::min<index_t>(KC, k);
  const std::size_t a_cap = static_cast<std::size_t>((mc + MR - 1) / MR) * MR *
                            static_cast<std::size_t>(kc) * planes;
  const std::size_t b_cap = static_cast<std::size_t>((nc + NR - 1) / NR) * NR *
                            static_cast<std::size_t>(kc) * planes;
  thread_local PackScratch<R> a_scratch;
  thread_local PackScratch<R> b_scratch;
  R* Ap = a_scratch.ensure(a_cap);
  R* Bp = b_scratch.ensure(b_cap);

#pragma omp parallel if (parallel) default(shared)
  {
    for (index_t jc = 0; jc < n; jc += NC) {
      const index_t nb = std::min<index_t>(NC, n - jc);
      const index_t jtiles = (nb + NR - 1) / NR;
      for (index_t pc = 0; pc < k; pc += KC) {
        const index_t kb = std::min<index_t>(KC, k - pc);
        const std::size_t b_stride = static_cast<std::size_t>(kb) * NR * planes;
        // Cooperative B pack (all threads; implicit barrier synchronizes).
#pragma omp for schedule(static)
        for (index_t tj = 0; tj < jtiles; ++tj)
          pack_b_tile<T, NR>(B, opB, pc, jc + tj * NR, kb,
                             std::min<index_t>(NR, nb - tj * NR),
                             Bp + tj * b_stride);
        for (index_t ic = 0; ic < m; ic += MC) {
          const index_t mb = std::min<index_t>(MC, m - ic);
          const index_t itiles = (mb + MR - 1) / MR;
          const std::size_t a_stride =
              static_cast<std::size_t>(kb) * MR * planes;
#pragma omp for schedule(static)
          for (index_t ti = 0; ti < itiles; ++ti)
            pack_a_tile<T, MR>(A, opA, ic + ti * MR, pc,
                               std::min<index_t>(MR, mb - ti * MR), kb,
                               Ap + ti * a_stride);
          // Macro-loop over jr tiles; each (ir, jr) tile is written by
          // exactly one thread and the k order is fixed by the pc loop, so
          // the result does not depend on the schedule.
#pragma omp for schedule(dynamic)
          for (index_t tj = 0; tj < jtiles; ++tj) {
            const R* bt = Bp + tj * b_stride;
            for (index_t ti = 0; ti < itiles; ++ti) {
              if constexpr (is_complex_v<T>) {
                R acc_re[MR * NR] = {};
                R acc_im[MR * NR] = {};
                microkernel_cplx<R, MR, NR>(kb, Ap + ti * a_stride, bt, acc_re,
                                            acc_im);
                store_tile<T, MR, NR>(alpha, acc_re, acc_im, C, ic + ti * MR,
                                      jc + tj * NR);
              } else {
                R acc[MR * NR] = {};
                microkernel_real<R, MR, NR>(kb, Ap + ti * a_stride, bt, acc);
                store_tile<T, MR, NR>(alpha, acc, nullptr, C, ic + ti * MR,
                                      jc + tj * NR);
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace cs::la::detail
