#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include "common/log.h"

namespace cs::server {

SocketServer::SocketServer(SolverService& service) : service_(service) {
  // A client that disconnects while a reply is in flight must surface as
  // EPIPE on the write (handled per connection), not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("serve.listen", "socket() failed", errno);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw IoError("serve.listen", "unix socket path too long: " + path, 0);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("serve.listen", "bind(" + path + ") failed", err);
  }
  if (::listen(fd, 128) < 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("serve.listen", "listen(" + path + ") failed", err);
  }
  unix_path_ = path;
  start(fd);
}

int SocketServer::listen_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("serve.listen", "socket() failed", errno);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("serve.listen", "bind(loopback) failed", err);
  }
  if (::listen(fd, 128) < 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("serve.listen", "listen failed", err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  start(fd);
  return port_;
}

void SocketServer::start(int listen_fd) {
  listen_fd_ = listen_fd;
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // stop() closed the listener (EBADF/EINVAL) or something fatal
      // happened to it; either way the accept loop is done.
      break;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void SocketServer::serve_connection(int fd) {
  bool shutdown_requested = false;
  for (;;) {
    Frame frame;
    try {
      if (!read_frame(fd, &frame)) break;  // clean EOF
    } catch (const ClassifiedError& ex) {
      // Malformed or truncated frame: answer if the peer might still be
      // listening, then drop the connection. The daemon lives on.
      try {
        WireWriter w;
        w.str(ex.error().site + ": " + ex.error().detail);
        write_frame(fd, MsgType::kError, w);
      } catch (const std::exception&) {
      }
      break;
    } catch (const std::exception&) {
      break;  // socket error: nothing to answer to
    }

    try {
      switch (frame.type) {
        case MsgType::kPing:
          write_frame(fd, MsgType::kPong, std::vector<std::uint8_t>{});
          break;
        case MsgType::kDescribe: {
          WireReader r(frame.payload);
          const SceneSpec scene = get_scene(r);
          const SolverService::SceneInfo info = service_.describe(scene);
          WireWriter w;
          w.i64(info.nv);
          w.i64(info.ns);
          w.u64(info.digest);
          w.u8(info.resident ? 1 : 0);
          write_frame(fd, MsgType::kDescribeOk, w);
          break;
        }
        case MsgType::kSolve: {
          WireReader r(frame.payload);
          const SceneSpec scene = get_scene(r);
          const std::uint64_t nv = r.u64();
          const std::uint64_t ns = r.u64();
          if (r.remaining() != (nv + ns) * sizeof(double))
            throw ClassifiedError(ErrorCode::kInternal, "proto.frame",
                                  "solve payload size mismatch");
          std::vector<double> b_v(nv), b_s(ns);
          r.doubles(b_v.data(), nv);
          r.doubles(b_s.data(), ns);
          const SolverService::SceneInfo info = service_.describe(scene);
          if (static_cast<std::uint64_t>(info.nv) != nv ||
              static_cast<std::uint64_t>(info.ns) != ns)
            throw ClassifiedError(ErrorCode::kInternal, "serve.request",
                                  "RHS dimensions do not match the scene");
          const RequestResult res =
              service_.solve(scene, b_v.data(), b_s.data());
          if (!res.ok) {
            WireWriter w;
            w.str("serve.solve: " + res.error);
            write_frame(fd, MsgType::kError, w);
            break;
          }
          WireWriter w;
          w.u64(nv);
          w.u64(ns);
          w.doubles(b_v.data(), nv);
          w.doubles(b_s.data(), ns);
          w.u8(res.cache_hit ? 1 : 0);
          w.str(res.source);
          w.u32(static_cast<std::uint32_t>(res.batch_columns));
          w.f64(res.solve_seconds);
          w.f64(res.total_seconds);
          write_frame(fd, MsgType::kSolveOk, w);
          break;
        }
        case MsgType::kStats: {
          WireWriter w;
          w.str(service_.stats_json());
          write_frame(fd, MsgType::kStatsOk, w);
          break;
        }
        case MsgType::kShutdown:
          write_frame(fd, MsgType::kShutdownOk, std::vector<std::uint8_t>{});
          shutdown_requested = true;
          break;
        default: {
          WireWriter w;
          w.str("serve.request: unexpected message type");
          write_frame(fd, MsgType::kError, w);
          break;
        }
      }
    } catch (const ClassifiedError& ex) {
      // A bad request payload is the client's problem, not the daemon's:
      // reply with the classification and keep the connection open.
      try {
        WireWriter w;
        w.str(ex.error().site + ": " + ex.error().detail);
        write_frame(fd, MsgType::kError, w);
      } catch (const std::exception&) {
        break;
      }
    } catch (const std::exception& ex) {
      // Reply write failed (peer gone) or an unexpected error: close
      // this connection only.
      (void)ex;
      break;
    }
    if (shutdown_requested) break;
  }
  {
    // De-register before closing so stop() never shutdown()s a closed
    // (and possibly reused) descriptor.
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
  if (shutdown_requested && on_shutdown_) on_shutdown_();
}

void SocketServer::stop() {
  if (!running_.exchange(false)) return;
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocking accept(); close() releases the fd.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_fds_.clear();
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

}  // namespace cs::server
