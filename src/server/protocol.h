// Wire protocol of the solver service (DESIGN.md §16).
//
// Frames are length-prefixed and checksummed so a reader can always tell
// a short read from a corrupt peer:
//
//   [magic u32 "CSRV"] [type u8] [payload_len u64] [payload] [crc32c u32]
//
// The CRC covers the payload only (the header fields are validated by
// value: known magic, known type, sane length). A malformed frame — bad
// magic, oversized length, CRC mismatch, truncated payload — must never
// kill the daemon: the connection handler replies kError and closes that
// one connection. All integers are little-endian host order (the service
// targets single-node machines, not cross-endian links).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.h"

namespace cs::server {

inline constexpr std::uint32_t kMagic = 0x43535256;  // "CSRV"
/// Largest accepted payload; a length beyond this is a malformed frame,
/// not an allocation request (a corrupt length must not OOM the daemon).
inline constexpr std::uint64_t kMaxPayloadBytes = 256ull << 20;

enum class MsgType : std::uint8_t {
  kPing = 1,
  kPong = 2,
  kDescribe = 3,    ///< SceneSpec -> dimensions + fingerprint digest
  kDescribeOk = 4,
  kSolve = 5,       ///< SceneSpec + one RHS column -> solution column
  kSolveOk = 6,
  kStats = 7,       ///< -> service counters as a JSON string
  kStatsOk = 8,
  kShutdown = 9,    ///< ask the daemon to stop accepting and exit
  kShutdownOk = 10,
  kError = 255,     ///< string payload: what went wrong with the request
};

/// True for the message types a conforming peer may send as a request.
bool valid_request_type(std::uint8_t t);

/// Parameters of the coupled scene a client wants solved — the arguments
/// of fembem::make_pipe_system, not matrix data. The daemon rebuilds the
/// system deterministically from the spec and keys its cache on the
/// *fingerprint* of the built system, so two specs that build the same
/// system share one factorization.
struct SceneSpec {
  std::int64_t total_unknowns = 20000;
  double kappa = 0.0;
  double sigma_real = 1.0;
  double sigma_imag = 0.0;
  std::uint8_t symmetric = 1;
  double extra_surface_ratio = 0.0;

  auto key() const {
    return std::tie(total_unknowns, kappa, sigma_real, sigma_imag, symmetric,
                    extra_surface_ratio);
  }
  bool operator==(const SceneSpec& o) const { return key() == o.key(); }
  bool operator<(const SceneSpec& o) const { return key() < o.key(); }
};

/// Append-only payload builder (POD puts, little-endian host order).
class WireWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void doubles(const double* p, std::size_t n) { raw(p, n * sizeof(double)); }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked payload reader. Underflow throws a ClassifiedError at
/// site "proto.truncated" — the connection handler turns it into a clean
/// kError reply instead of reading past the buffer.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : p_(data), n_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  double f64() { return get<double>(); }
  std::string str() {
    const std::uint64_t len = u64();
    need(len);
    std::string s(reinterpret_cast<const char*>(p_ + off_),
                  static_cast<std::size_t>(len));
    off_ += static_cast<std::size_t>(len);
    return s;
  }
  void doubles(double* out, std::size_t n) {
    need(n * sizeof(double));
    std::memcpy(out, p_ + off_, n * sizeof(double));
    off_ += n * sizeof(double);
  }
  std::size_t remaining() const { return n_ - off_; }

 private:
  template <class T>
  T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, p_ + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }
  void need(std::uint64_t n) const {
    if (n > n_ - off_)
      throw ClassifiedError(ErrorCode::kInternal, "proto.truncated",
                            "payload ends before field");
  }
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

void put_scene(WireWriter& w, const SceneSpec& s);
SceneSpec get_scene(WireReader& r);

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// Read one frame. Returns false on a clean EOF before any header byte
/// (peer closed between requests). Throws:
///   * IoError("proto.read")                 — socket error,
///   * ClassifiedError at "proto.truncated"  — EOF mid-frame,
///   * ClassifiedError at "proto.frame"      — bad magic / unknown type /
///                                             oversize length / CRC
///                                             mismatch.
bool read_frame(int fd, Frame* out);

/// Write one frame; loops over partial writes, uses MSG_NOSIGNAL so a
/// dead peer yields EPIPE (an IoError at "proto.write"), not SIGPIPE.
void write_frame(int fd, MsgType type,
                 const std::vector<std::uint8_t>& payload);

inline void write_frame(int fd, MsgType type, const WireWriter& w) {
  write_frame(fd, type, w.bytes());
}

}  // namespace cs::server
