// Socket front-end of the solver service (DESIGN.md §16): a listener on a
// Unix-domain or loopback TCP socket, one handler thread per connection,
// each connection carrying any number of framed requests in sequence.
// Concurrency comes from concurrent connections — the coalescer in
// SolverService batches them into shared solve calls.
//
// Failure behavior: a malformed frame (bad magic, oversize, CRC mismatch,
// truncated payload) gets a kError reply — when the peer is still
// readable — and closes that one connection; the daemon itself never dies
// on client input. SIGPIPE is ignored on the server path so a client that
// vanishes mid-reply surfaces as EPIPE on the write, not a fatal signal.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.h"

namespace cs::server {

class SocketServer {
 public:
  /// The server borrows the service; it must outlive the server.
  explicit SocketServer(SolverService& service);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen on a Unix-domain socket at `path` (an existing socket
  /// file is replaced) and start the accept loop. Throws IoError at
  /// "serve.listen" when the socket cannot be bound.
  void listen_unix(const std::string& path);

  /// Bind + listen on loopback TCP. `port` 0 picks a free port; the
  /// chosen port is returned and available from port() afterwards.
  int listen_tcp(int port);

  /// Called (once) when a client sends kShutdown, after the kShutdownOk
  /// reply is flushed. Typical daemon use: flip the exit flag.
  void on_shutdown(std::function<void()> fn) { on_shutdown_ = std::move(fn); }

  /// Stop accepting, close every open connection and join all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  int port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void start(int listen_fd);

  SolverService& service_;
  std::function<void()> on_shutdown_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string unix_path_;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;  ///< guards conn_fds_ and conn_threads_
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace cs::server
