#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "common/serialize.h"

namespace cs::server {

bool valid_request_type(std::uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kPing:
    case MsgType::kDescribe:
    case MsgType::kSolve:
    case MsgType::kStats:
    case MsgType::kShutdown:
      return true;
    // Replies are not valid *requests*, but a reader must still accept
    // them when it is the client side; frame validation only rejects
    // codes outside the protocol entirely.
    case MsgType::kPong:
    case MsgType::kDescribeOk:
    case MsgType::kSolveOk:
    case MsgType::kStatsOk:
    case MsgType::kShutdownOk:
    case MsgType::kError:
      return true;
  }
  return false;
}

void put_scene(WireWriter& w, const SceneSpec& s) {
  w.i64(s.total_unknowns);
  w.f64(s.kappa);
  w.f64(s.sigma_real);
  w.f64(s.sigma_imag);
  w.u8(s.symmetric);
  w.f64(s.extra_surface_ratio);
}

SceneSpec get_scene(WireReader& r) {
  SceneSpec s;
  s.total_unknowns = r.i64();
  s.kappa = r.f64();
  s.sigma_real = r.f64();
  s.sigma_imag = r.f64();
  s.symmetric = r.u8();
  s.extra_surface_ratio = r.f64();
  return s;
}

namespace {

/// Read exactly n bytes. Returns the count read before EOF (== n when the
/// peer kept the connection up); throws IoError on a socket error.
std::size_t read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) return got;
    if (r < 0) {
      if (errno == EINTR) continue;
      throw IoError("proto.read", "socket read failed", errno);
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

[[noreturn]] void malformed(const std::string& what) {
  throw ClassifiedError(ErrorCode::kInternal, "proto.frame", what);
}

}  // namespace

bool read_frame(int fd, Frame* out) {
  // Header: magic u32, type u8, payload_len u64.
  std::uint8_t header[13];
  const std::size_t got = read_full(fd, header, sizeof header);
  if (got == 0) return false;  // clean EOF between frames
  if (got < sizeof header)
    throw ClassifiedError(ErrorCode::kInternal, "proto.truncated",
                          "EOF inside frame header");
  std::uint32_t magic;
  std::uint64_t len;
  std::memcpy(&magic, header, 4);
  const std::uint8_t type = header[4];
  std::memcpy(&len, header + 5, 8);

  if (magic != kMagic) malformed("bad frame magic");
  if (!valid_request_type(type)) malformed("unknown message type");
  if (len > kMaxPayloadBytes) malformed("payload length exceeds cap");

  out->type = static_cast<MsgType>(type);
  out->payload.resize(static_cast<std::size_t>(len));
  if (read_full(fd, out->payload.data(), out->payload.size()) !=
      out->payload.size())
    throw ClassifiedError(ErrorCode::kInternal, "proto.truncated",
                          "EOF inside frame payload");

  std::uint32_t stored_crc;
  if (read_full(fd, &stored_crc, 4) != 4)
    throw ClassifiedError(ErrorCode::kInternal, "proto.truncated",
                          "EOF before frame checksum");
  const std::uint32_t crc = out->payload.empty()
                                ? 0
                                : serialize::crc32c(0, out->payload.data(),
                                                    out->payload.size());
  if (crc != stored_crc) malformed("frame checksum mismatch");
  return true;
}

void write_frame(int fd, MsgType type,
                 const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> buf;
  buf.reserve(13 + payload.size() + 4);
  const std::uint32_t magic = kMagic;
  const std::uint8_t t = static_cast<std::uint8_t>(type);
  const std::uint64_t len = payload.size();
  const std::uint32_t crc =
      payload.empty() ? 0
                      : serialize::crc32c(0, payload.data(), payload.size());
  auto append = [&buf](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf.insert(buf.end(), b, b + n);
  };
  append(&magic, 4);
  append(&t, 1);
  append(&len, 8);
  append(payload.data(), payload.size());
  append(&crc, 4);

  std::size_t sent = 0;
  while (sent < buf.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE
    // on this call, not as a process-wide SIGPIPE.
    const ssize_t w =
        ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError("proto.write", "socket write failed", errno);
    }
    sent += static_cast<std::size_t>(w);
  }
}

}  // namespace cs::server
