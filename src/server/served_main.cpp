// cs-served: the solver-service daemon. Listens on a Unix-domain socket
// (or loopback TCP), keeps an LRU cache of factorizations keyed on system
// fingerprints, coalesces concurrent single-RHS requests into batched
// solves, and exits cleanly on SIGINT/SIGTERM or a client kShutdown.
// See DESIGN.md §16 and `bench_serve` for the matching load generator.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "common/cli.h"
#include "common/log.h"
#include "coupled/coupled.h"
#include "server/server.h"
#include "server/service.h"

namespace {

std::atomic<int> g_stop{0};

void handle_signal(int) { g_stop.store(1); }

cs::coupled::Strategy strategy_by_name(const std::string& name) {
  using cs::coupled::Strategy;
  for (Strategy s :
       {Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
        Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
        Strategy::kMultiFactorization,
        Strategy::kMultiFactorizationCompressed,
        Strategy::kMultiSolveRandomized}) {
    if (name == cs::coupled::strategy_name(s)) return s;
  }
  std::fprintf(stderr, "unknown --strategy '%s' (see --help)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cs;
  CliArgs args(argc, argv);
  args.describe("socket", "unix socket path to listen on (default "
                          "$TMPDIR/cs-served.sock)");
  args.describe("port", "listen on loopback TCP at this port instead of a "
                        "unix socket (0 picks a free port)");
  args.describe("strategy",
                "coupling strategy name (default multi-solve-compressed)");
  args.describe("eps", "low-rank compression tolerance (default 1e-4)");
  args.describe("cache-budget-mb",
                "byte budget of resident factorizations in MiB (0 = "
                "unlimited)");
  args.describe("max-entries",
                "max resident factorizations regardless of bytes "
                "(default 8)");
  args.describe("coalesce",
                "batch concurrent single-RHS requests into one solve "
                "(default true)");
  args.describe("window-us",
                "coalescing window the batch leader waits for stragglers "
                "(default 200)");
  args.describe("max-batch", "max RHS columns per coalesced solve "
                             "(default 256)");
  args.describe("spill", "spill evicted factorizations to checkpoint files "
                         "and restore instead of refactorizing");
  args.describe("spill-dir", "directory for eviction checkpoints (default "
                             "$TMPDIR)");
  args.describe("threads", "worker threads for the task-parallel layer "
                           "(0 = hardware default)");
  args.check("solver-as-a-service daemon: factorization cache + request "
             "coalescing over a framed socket protocol");

  server::ServeOptions opts;
  opts.solver.strategy = strategy_by_name(args.get(
      "strategy",
      coupled::strategy_name(coupled::Strategy::kMultiSolveCompressed)));
  opts.solver.eps = args.get_double("eps", 1e-4);
  opts.solver.num_threads = static_cast<int>(args.get_int("threads", 0));
  opts.cache_budget_bytes = static_cast<std::size_t>(
      args.get_int("cache-budget-mb", 0) * (1ll << 20));
  opts.max_entries = static_cast<std::size_t>(args.get_int("max-entries", 8));
  opts.coalesce = args.get_bool("coalesce", true);
  opts.coalesce_window_us = static_cast<int>(args.get_int("window-us", 200));
  opts.max_batch = static_cast<index_t>(args.get_int("max-batch", 256));
  opts.spill_on_evict = args.get_bool("spill", false);
  opts.spill_dir = args.get("spill-dir", default_tmp_dir());

  // Fail fast on a bad configuration: the service constructor validates
  // the solver config (including ooc_dir) and the spill directory.
  std::unique_ptr<server::SolverService> service;
  try {
    service = std::make_unique<server::SolverService>(opts);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "cs-served: invalid configuration: %s\n", ex.what());
    return 2;
  }

  server::SocketServer srv(*service);
  srv.on_shutdown([] { g_stop.store(1); });
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  const std::string socket_path =
      args.get("socket", default_tmp_dir() + "/cs-served.sock");
  try {
    if (args.has("port")) {
      const int port = srv.listen_tcp(static_cast<int>(args.get_int(
          "port", 0)));
      std::printf("cs-served: listening on 127.0.0.1:%d\n", port);
    } else {
      srv.listen_unix(socket_path);
      std::printf("cs-served: listening on %s\n", socket_path.c_str());
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "cs-served: cannot listen: %s\n", ex.what());
    return 1;
  }
  std::fflush(stdout);

  while (g_stop.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  srv.stop();
  std::printf("cs-served: final stats %s\n", service->stats_json().c_str());
  return 0;
}
