#include "server/service.h"

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "common/trace.h"
#include "coupled/planner.h"
#include "fembem/system.h"
#include "la/matrix.h"

namespace cs::server {

namespace {

std::unique_ptr<fembem::CoupledSystem<double>> build_system(
    const SceneSpec& scene) {
  fembem::SystemParams prm;
  prm.total_unknowns = static_cast<index_t>(scene.total_unknowns);
  prm.kappa = scene.kappa;
  prm.sigma_real = scene.sigma_real;
  prm.sigma_imag = scene.sigma_imag;
  prm.symmetric_bem = scene.symmetric != 0;
  prm.extra_surface_ratio = scene.extra_surface_ratio;
  return std::make_unique<fembem::CoupledSystem<double>>(
      fembem::make_pipe_system<double>(prm));
}

void count(Metric m, ServiceCounters* c,
           std::atomic<std::uint64_t> ServiceCounters::*field,
           std::uint64_t delta = 1) {
  (c->*field).fetch_add(delta, std::memory_order_relaxed);
  Metrics::instance().add(m, static_cast<double>(delta));
}

}  // namespace

/// One queued single-RHS request, fulfilled by the batch leader.
struct SolverService::Pending {
  double* b_v = nullptr;
  double* b_s = nullptr;
  bool done = false;
  bool ok = false;
  std::string error;
  index_t batch_columns = 1;
  double solve_seconds = 0;
};

struct SolverService::Entry {
  enum class State {
    kEmpty,    ///< no factors (never loaded, evicted, or failed load)
    kLoading,  ///< one request is factorizing/restoring; others wait
    kReady,    ///< factors resident, handle usable
    kSpilled,  ///< factors on disk at spill_path; restore on next request
  };

  SceneSpec scene;
  fembem::SystemFingerprint fp;
  index_t nv = 0, ns = 0;

  State state = State::kEmpty;
  std::string spill_path;
  /// The handle borrows `sys`, so it is declared after it: member
  /// destruction runs in reverse order, destroying the handle first.
  std::unique_ptr<fembem::CoupledSystem<double>> sys;
  coupled::FactoredCoupled<double> handle;
  std::size_t bytes = 0;  ///< charged against the service byte budget

  std::atomic<std::uint64_t> last_used{0};
  int pinned = 0;    ///< requests currently using handle (blocks eviction)
  bool solving = false;           ///< a batch leader owns the handle
  std::deque<Pending*> queue;     ///< coalescer: waiting single-RHS columns

  std::mutex m;
  std::condition_variable cv;
};

SolverService::SolverService(const ServeOptions& opts) : opts_(opts) {
  const std::string problem = coupled::validate_config(opts_.solver);
  if (!problem.empty())
    throw ClassifiedError(ErrorCode::kInternal, "serve.config", problem);
  if (opts_.max_entries < 1)
    throw ClassifiedError(ErrorCode::kInternal, "serve.config",
                          "max_entries must be >= 1");
  if (opts_.max_batch < 1)
    throw ClassifiedError(ErrorCode::kInternal, "serve.config",
                          "max_batch must be >= 1");
  if (opts_.coalesce_window_us < 0)
    throw ClassifiedError(ErrorCode::kInternal, "serve.config",
                          "coalesce_window_us must be >= 0");
  if (opts_.spill_on_evict) {
    const std::string reason = probe_writable_dir(opts_.spill_dir);
    if (!reason.empty())
      throw ClassifiedError(
          ErrorCode::kIo, "serve.config",
          "spill_dir '" + opts_.spill_dir + "' " + reason);
  }
}

SolverService::~SolverService() {
  // Spill files are a cache tier, not durable state: remove them.
  for (auto& [fp, e] : entries_)
    if (!e->spill_path.empty()) std::remove(e->spill_path.c_str());
}

std::shared_ptr<SolverService::Entry> SolverService::lookup_or_build(
    const SceneSpec& scene) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scenes_.find(scene);
  if (it != scenes_.end()) return it->second;

  // First sight of this spec: build the system (deterministic and much
  // cheaper than a factorization) to learn its fingerprint. Two specs
  // that build the same system alias one entry — the cache is keyed on
  // the fingerprint, exactly like checkpoint validation.
  auto sys = build_system(scene);
  const fembem::SystemFingerprint fp = sys->fingerprint();
  if (auto fit = entries_.find(fp); fit != entries_.end()) {
    scenes_[scene] = fit->second;
    return fit->second;
  }
  auto e = std::make_shared<Entry>();
  e->scene = scene;
  e->fp = fp;
  e->nv = sys->nv();
  e->ns = sys->ns();
  e->sys = std::move(sys);
  scenes_[scene] = e;
  entries_[fp] = e;
  return e;
}

void SolverService::evict_locked(Entry& e) {
  count(Metric::kServeCacheEvictions, &counters_,
        &ServiceCounters::evictions);
  e.state = Entry::State::kEmpty;
  if (opts_.spill_on_evict) {
    const std::string path =
        opts_.spill_dir + "/cs_serve_" + e.fp.hex() + ".ckpt";
    SolveError err;
    if (e.handle.save(path, &err) > 0) {
      e.spill_path = path;
      e.state = Entry::State::kSpilled;
      count(Metric::kServeCacheSpills, &counters_, &ServiceCounters::spills);
    }
    // A failed save silently degrades to a plain drop: the next request
    // refactorizes, which is correct, just slower.
  }
  // The handle borrows the system: destroy it first, then the system.
  e.handle = coupled::FactoredCoupled<double>();
  e.sys.reset();
  resident_bytes_ -= e.bytes;
  e.bytes = 0;
}

void SolverService::make_room(std::size_t needed, const Entry* keep) {
  std::lock_guard<std::mutex> lock(mu_);
  for (;;) {
    // One pass: count resident entries and pick the least-recently-used
    // evictable one. Entry locks are only try_lock'd — a busy entry is
    // both unevictable and counted resident, and a blocking lock here
    // (mu_ held) could deadlock against request threads.
    std::size_t resident = 0;
    std::shared_ptr<Entry> victim;
    std::unique_lock<std::mutex> victim_lock;
    for (auto& [fp, c] : entries_) {
      std::unique_lock<std::mutex> cl(c->m, std::try_to_lock);
      if (!cl.owns_lock()) {
        ++resident;
        continue;
      }
      if (c->state == Entry::State::kReady ||
          c->state == Entry::State::kLoading)
        ++resident;
      const bool evictable =
          c.get() != keep && c->state == Entry::State::kReady &&
          c->pinned == 0 && !c->solving && c->queue.empty();
      if (evictable &&
          (!victim || c->last_used.load(std::memory_order_relaxed) <
                          victim->last_used.load(std::memory_order_relaxed))) {
        victim = c;
        victim_lock = std::move(cl);
      }
    }
    const bool over_bytes =
        opts_.cache_budget_bytes > 0 && resident_bytes_ > 0 &&
        resident_bytes_ + needed > opts_.cache_budget_bytes;
    const bool over_count = resident > opts_.max_entries;
    // No victim: every other entry is busy. Proceed anyway — like the
    // planner's admission controller, serial progress is always
    // admissible; genuine exhaustion surfaces as a classified budget
    // error from the factorization itself.
    if ((!over_bytes && !over_count) || !victim) return;
    evict_locked(*victim);
  }
}

std::shared_ptr<SolverService::Entry> SolverService::ensure_ready(
    const SceneSpec& scene, RequestResult* res) {
  std::shared_ptr<Entry> e = lookup_or_build(scene);

  std::unique_lock<std::mutex> el(e->m);
  for (;;) {
    if (e->state == Entry::State::kReady) {
      ++e->pinned;
      e->last_used.store(++lru_tick_, std::memory_order_relaxed);
      res->cache_hit = true;
      res->source = "resident";
      count(Metric::kServeCacheHits, &counters_, &ServiceCounters::cache_hits);
      return e;
    }
    if (e->state == Entry::State::kLoading) {
      // Another request is already factorizing this fingerprint; wait
      // for it instead of duplicating the work.
      e->cv.wait(el);
      continue;
    }
    break;  // kEmpty or kSpilled: this request loads
  }

  const bool try_restore =
      e->state == Entry::State::kSpilled && !e->spill_path.empty();
  e->state = Entry::State::kLoading;
  el.unlock();
  count(Metric::kServeCacheMisses, &counters_, &ServiceCounters::cache_misses);

  // While state is kLoading only this thread touches sys/handle/spill_path.
  bool ok = true;
  std::string error;
  try {
    if (!e->sys) e->sys = build_system(scene);

    // Planner-gated admission: charge the predicted peak of the coming
    // factorization against the budget and evict idle LRU entries first.
    std::size_t predicted = 0;
    try {
      const auto in = coupled::planner_inputs(*e->sys, opts_.solver);
      predicted =
          coupled::predict_peak(opts_.solver.strategy, in, opts_.solver);
    } catch (const std::exception&) {
      predicted = 0;  // admission falls back to the entry-count bound
    }
    make_room(predicted, e.get());

    coupled::FactoredCoupled<double> h;
    if (try_restore) {
      h = coupled::load_factored(e->spill_path, *e->sys, opts_.solver);
      if (h.ok()) {
        res->source = "checkpoint";
        count(Metric::kServeCacheRestores, &counters_,
              &ServiceCounters::restores);
      }
      // A stale or torn spill file falls through to refactorization.
      std::remove(e->spill_path.c_str());
      e->spill_path.clear();
    }
    if (!h.ok()) {
      h = coupled::factorize_coupled(*e->sys, opts_.solver);
      if (h.ok()) {
        res->source = "fresh";
        count(Metric::kServeFactorizations, &counters_,
              &ServiceCounters::factorizations);
      } else {
        ok = false;
        const coupled::SolveStats& st = h.stats();
        error = st.failure.empty() ? st.error.detail : st.failure;
        if (error.empty()) error = "factorization failed";
      }
    }
    if (ok) {
      const std::size_t bytes = std::max<std::size_t>(
          h.stats().factor_bytes + h.stats().schur_bytes, 1);
      {
        std::lock_guard<std::mutex> g(mu_);
        resident_bytes_ += bytes;
      }
      el.lock();
      e->handle = std::move(h);
      e->bytes = bytes;
      e->state = Entry::State::kReady;
      ++e->pinned;
      e->last_used.store(++lru_tick_, std::memory_order_relaxed);
      el.unlock();
    }
  } catch (const std::exception& ex) {
    ok = false;
    error = ex.what();
  }
  if (!ok) {
    el.lock();
    e->state = Entry::State::kEmpty;  // the next request may retry
    el.unlock();
    res->error = error;
  }
  e->cv.notify_all();
  return ok ? e : nullptr;
}

void SolverService::unpin(Entry& e) {
  {
    std::lock_guard<std::mutex> g(e.m);
    --e.pinned;
  }
  e.cv.notify_all();
}

void SolverService::run_batches(Entry& e,
                                std::unique_lock<std::mutex>& el) {
  while (!e.queue.empty()) {
    if (opts_.coalesce_window_us > 0) {
      // Hold the door one coalescing window so stragglers join this
      // batch instead of the next; requests keep enqueueing meanwhile.
      el.unlock();
      std::this_thread::sleep_for(
          std::chrono::microseconds(opts_.coalesce_window_us));
      el.lock();
    }
    std::vector<Pending*> batch;
    while (!e.queue.empty() &&
           static_cast<index_t>(batch.size()) < opts_.max_batch) {
      batch.push_back(e.queue.front());
      e.queue.pop_front();
    }
    el.unlock();

    const index_t k = static_cast<index_t>(batch.size());
    la::Matrix<double> Bv(e.nv, k), Bs(e.ns, k);
    for (index_t j = 0; j < k; ++j) {
      std::memcpy(Bv.view().col(j).data(), batch[j]->b_v,
                  sizeof(double) * static_cast<std::size_t>(e.nv));
      std::memcpy(Bs.view().col(j).data(), batch[j]->b_s,
                  sizeof(double) * static_cast<std::size_t>(e.ns));
    }
    Timer timer;
    const coupled::SolveStats stats = e.handle.solve(Bv.view(), Bs.view());
    const double solve_seconds = timer.seconds();
    count(Metric::kServeCoalescedBatches, &counters_,
          &ServiceCounters::coalesced_batches);
    count(Metric::kServeCoalescedColumns, &counters_,
          &ServiceCounters::coalesced_columns, k);

    std::string error;
    if (!stats.success) {
      error = stats.failure.empty() ? stats.error.detail : stats.failure;
      if (error.empty()) error = "solve failed";
    }
    if (stats.success) {
      // The waiters are blocked until done flips, so their buffers are
      // safe to fill without the entry lock.
      for (index_t j = 0; j < k; ++j) {
        std::memcpy(batch[j]->b_v, Bv.view().col(j).data(),
                    sizeof(double) * static_cast<std::size_t>(e.nv));
        std::memcpy(batch[j]->b_s, Bs.view().col(j).data(),
                    sizeof(double) * static_cast<std::size_t>(e.ns));
      }
    }
    el.lock();
    for (Pending* p : batch) {
      p->ok = stats.success;
      p->error = error;
      p->batch_columns = k;
      p->solve_seconds = solve_seconds;
      p->done = true;
    }
    trace_gauge_add("serve.queue_depth", -static_cast<long>(k));
    e.cv.notify_all();
  }
}

RequestResult SolverService::solve(const SceneSpec& scene, double* b_v,
                                   double* b_s) {
  RequestResult res;
  Timer total;
  count(Metric::kServeRequests, &counters_, &ServiceCounters::requests);
  TraceSpan span("serve", "serve.request");

  std::shared_ptr<Entry> e;
  try {
    e = ensure_ready(scene, &res);
  } catch (const std::exception& ex) {
    res.error = ex.what();
  }
  if (!e) {
    res.ok = false;
    if (res.error.empty()) res.error = "factorization unavailable";
    res.total_seconds = total.seconds();
    return res;
  }

  if (!opts_.coalesce) {
    Timer timer;
    la::MatrixView<double> Bv(b_v, e->nv, 1, e->nv);
    la::MatrixView<double> Bs(b_s, e->ns, 1, e->ns);
    const coupled::SolveStats stats = e->handle.solve(Bv, Bs);
    res.solve_seconds = timer.seconds();
    res.ok = stats.success;
    if (!stats.success) {
      res.error = stats.failure.empty() ? stats.error.detail : stats.failure;
      if (res.error.empty()) res.error = "solve failed";
    }
  } else {
    Pending p;
    p.b_v = b_v;
    p.b_s = b_s;
    std::unique_lock<std::mutex> el(e->m);
    e->queue.push_back(&p);
    trace_gauge_add("serve.queue_depth", 1);
    // Leader election: the first request to find the entry idle solves
    // the whole queue; followers wait. A follower woken with its column
    // still pending and no leader active takes over (the previous leader
    // drained the queue and exited just before this column enqueued).
    for (;;) {
      if (p.done) break;
      if (!e->solving) {
        e->solving = true;
        run_batches(*e, el);
        e->solving = false;
        e->cv.notify_all();
        continue;
      }
      e->cv.wait(el);
    }
    res.ok = p.ok;
    res.error = p.error;
    res.batch_columns = p.batch_columns;
    res.solve_seconds = p.solve_seconds;
  }
  unpin(*e);
  res.total_seconds = total.seconds();
  span.arg("columns", static_cast<long long>(res.batch_columns))
      .arg("hit", static_cast<long long>(res.cache_hit ? 1 : 0));
  return res;
}

SolverService::SceneInfo SolverService::describe(const SceneSpec& scene) {
  std::shared_ptr<Entry> e = lookup_or_build(scene);
  std::lock_guard<std::mutex> g(e->m);
  SceneInfo info;
  info.nv = e->nv;
  info.ns = e->ns;
  info.digest = e->fp.digest();
  info.resident = e->state == Entry::State::kReady;
  return info;
}

std::size_t SolverService::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

std::string SolverService::stats_json() const {
  std::size_t resident_entries = 0, spilled_entries = 0, scenes = 0;
  std::size_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    scenes = scenes_.size();
    bytes = resident_bytes_;
    for (const auto& [fp, e] : entries_) {
      std::unique_lock<std::mutex> el(e->m, std::try_to_lock);
      if (!el.owns_lock()) {
        ++resident_entries;  // busy entries hold live factors
        continue;
      }
      if (e->state == Entry::State::kReady ||
          e->state == Entry::State::kLoading)
        ++resident_entries;
      if (e->state == Entry::State::kSpilled) ++spilled_entries;
    }
  }
  auto v = [](const std::atomic<std::uint64_t>& a) {
    return std::to_string(a.load(std::memory_order_relaxed));
  };
  std::string out = "{";
  out += "\"requests\": " + v(counters_.requests);
  out += ", \"cache_hit\": " + v(counters_.cache_hits);
  out += ", \"cache_miss\": " + v(counters_.cache_misses);
  out += ", \"cache_evict\": " + v(counters_.evictions);
  out += ", \"cache_spill\": " + v(counters_.spills);
  out += ", \"cache_restore\": " + v(counters_.restores);
  out += ", \"factorizations\": " + v(counters_.factorizations);
  out += ", \"coalesced_batches\": " + v(counters_.coalesced_batches);
  out += ", \"coalesced_columns\": " + v(counters_.coalesced_columns);
  out += ", \"resident_entries\": " + std::to_string(resident_entries);
  out += ", \"spilled_entries\": " + std::to_string(spilled_entries);
  out += ", \"scenes\": " + std::to_string(scenes);
  out += ", \"resident_bytes\": " + std::to_string(bytes);
  out += "}";
  return out;
}

}  // namespace cs::server
