// Blocking client of the solver service: one connection, framed
// request/reply pairs (protocol.h). Used by bench_serve's load generator
// and by tests; a third-party client only needs the protocol header.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace cs::server {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();
  ServeClient(ServeClient&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  ServeClient& operator=(ServeClient&&) = delete;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Throw IoError at "client.connect" on failure.
  void connect_unix(const std::string& path);
  void connect_tcp(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void close();

  struct Description {
    std::int64_t nv = 0;
    std::int64_t ns = 0;
    std::uint64_t digest = 0;
    bool resident = false;
  };

  struct SolveReply {
    bool ok = false;
    std::string error;  ///< server-side classification when !ok
    bool cache_hit = false;
    std::string source;
    std::uint32_t batch_columns = 1;
    double solve_seconds = 0;
    double server_seconds = 0;  ///< server-side enqueue-to-reply time
  };

  void ping();
  Description describe(const SceneSpec& scene);
  /// Solve one RHS in place (b_v: nv doubles, b_s: ns doubles). Transport
  /// errors throw; a server-side solve failure comes back in the reply.
  SolveReply solve(const SceneSpec& scene, std::vector<double>& b_v,
                   std::vector<double>& b_s);
  std::string stats_json();
  /// Ask the daemon to exit; returns after the kShutdownOk reply.
  void shutdown_server();

 private:
  Frame roundtrip(MsgType type, const WireWriter& w, MsgType expect);
  int fd_ = -1;
};

}  // namespace cs::server
