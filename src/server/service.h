// The solver service: a factorization cache plus a request coalescer
// (DESIGN.md §16). This is the transport-independent core — the socket
// server (server.h) and in-process tests drive the same object.
//
// Cache: entries are keyed on the *fingerprint* of the built system (the
// same SystemFingerprint that validates checkpoints, so cache keys and
// checkpoint identity can never diverge). Admission is sized by the
// planner: before factorizing, predict_peak() of the configured strategy
// is charged against the byte budget and least-recently-used idle entries
// are evicted until it fits. Eviction either drops the factors or spills
// them to a checkpoint file (FactoredCoupled::save); a spilled entry is
// re-admitted via load_factored — restore, not refactorize.
//
// Coalescer: concurrent single-RHS requests for the same fingerprint are
// batched into one FactoredCoupled::solve(B_v, B_s) call. solve() is
// per-column bitwise identical to single-column solves at any thread
// count, so coalescing changes throughput, never answers. The first
// request to find the entry idle becomes the batch leader: it waits one
// coalescing window for stragglers, swaps the queue (up to max_batch
// columns), runs the batched solve and fulfills every waiter, looping
// until the queue is dry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/fs.h"
#include "coupled/coupled.h"
#include "fembem/fingerprint.h"
#include "server/protocol.h"

namespace cs::server {

struct ServeOptions {
  coupled::Config solver;  ///< strategy/eps/blocking of every factorization

  /// Byte budget of resident factorizations (0 = unlimited; entry count
  /// still bounded by max_entries). Planner-predicted peaks gate
  /// admission, measured factor bytes are charged after the fact.
  std::size_t cache_budget_bytes = 0;
  std::size_t max_entries = 8;

  bool coalesce = true;
  /// How long a batch leader waits for stragglers before solving. Zero
  /// still coalesces whatever queued while the previous batch ran.
  int coalesce_window_us = 200;
  index_t max_batch = 256;  ///< RHS columns per coalesced solve call

  /// Evicted entries are saved to `spill_dir` as checkpoints and restored
  /// by load_factored on the next request instead of refactorizing.
  bool spill_on_evict = false;
  std::string spill_dir = default_tmp_dir();
};

/// Outcome of one solve request, for the reply and the latency histogram.
struct RequestResult {
  bool ok = false;
  std::string error;       ///< short description when !ok
  bool cache_hit = false;  ///< served by an already-resident factorization
  /// Where the factors came from when this request had to load them:
  /// "resident" (hit), "fresh" (factorized), "checkpoint" (restored).
  std::string source;
  index_t batch_columns = 1;  ///< columns in the coalesced solve that
                              ///< carried this request (1 = uncoalesced)
  double solve_seconds = 0;   ///< the batched solve call
  double total_seconds = 0;   ///< enqueue to reply
};

/// Monotonic service counters (mirrored into the global Metrics layer as
/// serve.* so traces and SolveStats summaries see them too).
struct ServiceCounters {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> spills{0};
  std::atomic<std::uint64_t> restores{0};
  std::atomic<std::uint64_t> factorizations{0};
  std::atomic<std::uint64_t> coalesced_batches{0};
  std::atomic<std::uint64_t> coalesced_columns{0};
};

class SolverService {
 public:
  /// Validates the options up front (solver config including ooc_dir, and
  /// spill_dir when spilling is on); throws ClassifiedError at site
  /// "serve.config" on a bad configuration — a daemon rejects bad config
  /// at startup, not minutes into a request.
  explicit SolverService(const ServeOptions& opts);
  ~SolverService();
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  struct SceneInfo {
    index_t nv = 0;
    index_t ns = 0;
    std::uint64_t digest = 0;  ///< SystemFingerprint::digest()
    bool resident = false;     ///< factors currently in memory
  };

  /// Dimensions + fingerprint of the system a spec builds. Builds (and
  /// caches) the system but never factorizes.
  SceneInfo describe(const SceneSpec& scene);

  /// Solve one RHS column in place: b_v (nv doubles) / b_s (ns doubles)
  /// hold the RHS on entry and the solution on success. Factorizes,
  /// restores from spill, or reuses resident factors as needed; never
  /// throws (failures come back classified in RequestResult::error).
  RequestResult solve(const SceneSpec& scene, double* b_v, double* b_s);

  /// Service counters + cache occupancy as a JSON object (the kStatsOk
  /// payload and the bench report's counter block).
  std::string stats_json() const;

  const ServiceCounters& counters() const { return counters_; }
  std::size_t resident_bytes() const;
  const ServeOptions& options() const { return opts_; }

 private:
  struct Pending;
  struct Entry;

  /// Find or create the entry for a scene and bring its factors into
  /// memory (factorize or restore), pinning it for the caller. On success
  /// fills hit/source in *res and returns the entry; on failure fills
  /// res->error and returns nullptr.
  std::shared_ptr<Entry> ensure_ready(const SceneSpec& scene,
                                      RequestResult* res);
  std::shared_ptr<Entry> lookup_or_build(const SceneSpec& scene);
  /// Evict idle LRU entries until `needed` more bytes fit under the
  /// budget (and the entry count fits under max_entries). `keep` is never
  /// evicted.
  void make_room(std::size_t needed, const Entry* keep);
  void evict_locked(Entry& e);
  void unpin(Entry& e);
  void run_batches(Entry& e, std::unique_lock<std::mutex>& el);

  ServeOptions opts_;
  ServiceCounters counters_;

  mutable std::mutex mu_;  ///< guards the maps + byte accounting + LRU tick
  std::map<SceneSpec, std::shared_ptr<Entry>> scenes_;
  std::map<fembem::SystemFingerprint, std::shared_ptr<Entry>> entries_;
  std::size_t resident_bytes_ = 0;
  std::atomic<std::uint64_t> lru_tick_{0};
};

}  // namespace cs::server
