#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cs::server {

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ServeClient::connect_unix(const std::string& path) {
  close();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("client.connect", "socket() failed", errno);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw IoError("client.connect", "unix socket path too long: " + path, 0);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("client.connect", "connect(" + path + ") failed", err);
  }
  fd_ = fd;
}

void ServeClient::connect_tcp(const std::string& host, int port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("client.connect", "socket() failed", errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw IoError("client.connect", "bad address: " + host, 0);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("client.connect", "connect(" + host + ") failed", err);
  }
  fd_ = fd;
}

Frame ServeClient::roundtrip(MsgType type, const WireWriter& w,
                             MsgType expect) {
  write_frame(fd_, type, w);
  Frame reply;
  if (!read_frame(fd_, &reply))
    throw IoError("client.read", "server closed the connection", 0);
  if (reply.type == MsgType::kError) {
    WireReader r(reply.payload);
    throw ClassifiedError(ErrorCode::kInternal, "client.reply", r.str());
  }
  if (reply.type != expect)
    throw ClassifiedError(ErrorCode::kInternal, "client.reply",
                          "unexpected reply type");
  return reply;
}

void ServeClient::ping() { roundtrip(MsgType::kPing, {}, MsgType::kPong); }

ServeClient::Description ServeClient::describe(const SceneSpec& scene) {
  WireWriter w;
  put_scene(w, scene);
  Frame reply = roundtrip(MsgType::kDescribe, w, MsgType::kDescribeOk);
  WireReader r(reply.payload);
  Description d;
  d.nv = r.i64();
  d.ns = r.i64();
  d.digest = r.u64();
  d.resident = r.u8() != 0;
  return d;
}

ServeClient::SolveReply ServeClient::solve(const SceneSpec& scene,
                                           std::vector<double>& b_v,
                                           std::vector<double>& b_s) {
  WireWriter w;
  put_scene(w, scene);
  w.u64(b_v.size());
  w.u64(b_s.size());
  w.doubles(b_v.data(), b_v.size());
  w.doubles(b_s.data(), b_s.size());

  write_frame(fd_, MsgType::kSolve, w);
  Frame reply;
  if (!read_frame(fd_, &reply))
    throw IoError("client.read", "server closed the connection", 0);

  SolveReply out;
  if (reply.type == MsgType::kError) {
    WireReader r(reply.payload);
    out.ok = false;
    out.error = r.str();
    return out;
  }
  if (reply.type != MsgType::kSolveOk)
    throw ClassifiedError(ErrorCode::kInternal, "client.reply",
                          "unexpected reply type");
  WireReader r(reply.payload);
  const std::uint64_t nv = r.u64();
  const std::uint64_t ns = r.u64();
  if (nv != b_v.size() || ns != b_s.size())
    throw ClassifiedError(ErrorCode::kInternal, "client.reply",
                          "solution dimensions do not match the request");
  r.doubles(b_v.data(), nv);
  r.doubles(b_s.data(), ns);
  out.ok = true;
  out.cache_hit = r.u8() != 0;
  out.source = r.str();
  out.batch_columns = r.u32();
  out.solve_seconds = r.f64();
  out.server_seconds = r.f64();
  return out;
}

std::string ServeClient::stats_json() {
  Frame reply = roundtrip(MsgType::kStats, {}, MsgType::kStatsOk);
  WireReader r(reply.payload);
  return r.str();
}

void ServeClient::shutdown_server() {
  roundtrip(MsgType::kShutdown, {}, MsgType::kShutdownOk);
}

}  // namespace cs::server
