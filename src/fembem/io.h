// Plain-text export of coupled systems (MatrixMarket for the sparse
// blocks, a simple dense/coordinate format for vectors and BEM samples).
// The paper's pipe generator (test_fembem) is published precisely so the
// community can reproduce the benchmark systems; this header provides the
// same service for this library's generator, so the systems can be fed to
// external solvers (MUMPS, PaStiX, hmat-oss, ...) for cross-validation.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>

#include "fembem/system.h"

namespace cs::fembem {

namespace detail {

inline void write_value(std::FILE* f, double v) {
  std::fprintf(f, "%.17g", v);
}
inline void write_value(std::FILE* f, const complexd& v) {
  std::fprintf(f, "%.17g %.17g", v.real(), v.imag());
}

template <class T>
const char* mm_field() {
  return is_complex_v<T> ? "complex" : "real";
}

class File {
 public:
  explicit File(const std::string& path) : f_(std::fopen(path.c_str(), "w")) {
    if (f_ == nullptr)
      throw std::runtime_error("cannot open '" + path + "' for writing");
  }
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* get() { return f_; }

 private:
  std::FILE* f_;
};

}  // namespace detail

/// Write a sparse matrix in MatrixMarket coordinate format (1-based).
template <class T>
void write_matrix_market(const sparse::Csr<T>& A, const std::string& path) {
  detail::File file(path);
  std::FILE* f = file.get();
  std::fprintf(f, "%%%%MatrixMarket matrix coordinate %s general\n",
               detail::mm_field<T>());
  std::fprintf(f, "%d %d %lld\n", A.rows(), A.cols(),
               static_cast<long long>(A.nnz()));
  for (index_t r = 0; r < A.rows(); ++r)
    for (offset_t k = A.row_begin(r); k < A.row_end(r); ++k) {
      std::fprintf(f, "%d %d ", r + 1, A.col(k) + 1);
      detail::write_value(f, A.value(k));
      std::fprintf(f, "\n");
    }
}

/// Write a vector in MatrixMarket array format.
template <class T>
void write_vector(const la::Vector<T>& v, const std::string& path) {
  detail::File file(path);
  std::FILE* f = file.get();
  std::fprintf(f, "%%%%MatrixMarket matrix array %s general\n",
               detail::mm_field<T>());
  std::fprintf(f, "%d 1\n", v.size());
  for (index_t i = 0; i < v.size(); ++i) {
    detail::write_value(f, v[i]);
    std::fprintf(f, "\n");
  }
}

/// Write the surface collocation points and weights ("x y z w" per line)
/// so external BEM codes can rebuild A_ss from the same geometry.
inline void write_surface(const BemSurface& surface,
                          const std::string& path) {
  detail::File file(path);
  std::FILE* f = file.get();
  std::fprintf(f, "# x y z weight (one BEM collocation point per line)\n");
  for (std::size_t i = 0; i < surface.points.size(); ++i) {
    const auto& p = surface.points[i];
    std::fprintf(f, "%.17g %.17g %.17g %.17g\n", p.x, p.y, p.z,
                 surface.weights[i]);
  }
}

/// Export a full coupled system under `prefix`: prefix_Avv.mtx,
/// prefix_Asv.mtx, prefix_bv.mtx, prefix_bs.mtx, prefix_xv_ref.mtx,
/// prefix_xs_ref.mtx and prefix_surface.txt. A_ss is *not* materialized
/// (it is dense and defined by the kernel over prefix_surface.txt; see
/// BemGenerator for the exact formula).
template <class T>
void export_system(const CoupledSystem<T>& sys, const std::string& prefix) {
  write_matrix_market(sys.A_vv, prefix + "_Avv.mtx");
  write_matrix_market(sys.A_sv, prefix + "_Asv.mtx");
  write_vector(sys.b_v, prefix + "_bv.mtx");
  write_vector(sys.b_s, prefix + "_bs.mtx");
  write_vector(sys.x_v_ref, prefix + "_xv_ref.mtx");
  write_vector(sys.x_s_ref, prefix + "_xs_ref.mtx");
  write_surface(sys.A_ss->surface(), prefix + "_surface.txt");
}

}  // namespace cs::fembem
