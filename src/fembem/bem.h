// BEM collocation assembly for the dense surface block A_ss, exposed as a
// lazy MatrixGenerator so that
//   * the H-matrix path assembles it directly compressed via ACA, and
//   * the dense path materializes only the blocks it needs (the multi-solve
//     and multi-factorization algorithms work on A_ss sub-blocks).
//
// Kernels: Laplace single layer 1/(4 pi r) (real symmetric pipe case) and
// Helmholtz e^{ikr}/(4 pi r) (complex industrial case). Collocation weights
// are lumped vertex areas; near-field/self interactions are regularized
// with an area-derived radius. A symmetric variant uses sqrt(w_i w_j)
// (Galerkin-like), the non-symmetric one uses the column weight w_j alone
// (plain collocation), matching the paper's symmetric academic case vs
// non-symmetric industrial case.
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "fembem/mesh.h"
#include "hmat/aca.h"

namespace cs::fembem {

struct BemSurface {
  std::vector<Point3> points;   ///< collocation points (one per surface dof)
  std::vector<double> weights;  ///< lumped vertex areas
};

/// Lumped collocation data of the mesh boundary, optionally extended with a
/// detached extra surface (the industrial case's fuselage/wing dofs, which
/// carry BEM interactions but no FEM coupling).
inline BemSurface make_bem_surface(const PipeMesh& mesh) {
  BemSurface s;
  s.points.reserve(mesh.boundary_nodes.size());
  for (index_t v : mesh.boundary_nodes)
    s.points.push_back(mesh.nodes[static_cast<std::size_t>(v)]);
  s.weights.assign(mesh.boundary_nodes.size(), 0.0);
  for (const auto& tri : mesh.boundary_tris) {
    const double area =
        tri_area(mesh.nodes[static_cast<std::size_t>(tri[0])],
                 mesh.nodes[static_cast<std::size_t>(tri[1])],
                 mesh.nodes[static_cast<std::size_t>(tri[2])]) /
        3.0;
    for (index_t v : tri)
      s.weights[static_cast<std::size_t>(
          mesh.surface_of_node[static_cast<std::size_t>(v)])] += area;
  }
  return s;
}

/// Append a detached cylindrical surface of extra BEM-only dofs ("the
/// fuselage"): they interact through the kernel but have zero coupling to
/// the volume. `offset` displaces it from the pipe.
inline void append_extra_surface(BemSurface& s, index_t n_theta,
                                 index_t n_axial, double radius,
                                 double length, double offset_x) {
  const double area = (2.0 * M_PI * radius / n_theta) * (length / n_axial);
  for (index_t iz = 0; iz < n_axial; ++iz)
    for (index_t it = 0; it < n_theta; ++it) {
      const double theta = 2.0 * M_PI * it / n_theta;
      s.points.push_back({offset_x + radius * std::cos(theta),
                          radius * std::sin(theta),
                          length * iz / std::max<index_t>(1, n_axial - 1)});
      s.weights.push_back(area);
    }
}

namespace detail {
inline double distance(const Point3& a, const Point3& b) {
  return std::sqrt((a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y) +
                   (a.z - b.z) * (a.z - b.z));
}
}  // namespace detail

/// Laplace / Helmholtz single-layer collocation generator. For T = double
/// the kernel is 1/(4 pi r); for complex T it is e^{ikr}/(4 pi r) with an
/// absorbing imaginary diagonal shift.
template <class T>
class BemGenerator final : public hmat::MatrixGenerator<T> {
 public:
  BemGenerator(BemSurface surface, double wavenumber, bool symmetric)
      : s_(std::move(surface)), k_(wavenumber), symmetric_(symmetric) {
    // Regularization radius per dof from its lumped area, and a dominant
    // self term ~ the analytic integral of 1/(4 pi r) over a disc of the
    // same area: integral = sqrt(A / pi) / 2 (per unit density), scaled by
    // a safety factor that keeps the collocation matrix strongly regular.
    reg_.resize(s_.weights.size());
    diag_.resize(s_.weights.size());
    for (std::size_t i = 0; i < s_.weights.size(); ++i) {
      const double a = std::max(s_.weights[i], 1e-12);
      reg_[i] = 0.5 * std::sqrt(a / M_PI);
      diag_[i] = 0.5 * std::sqrt(a / M_PI);  // disc self-integral
    }
  }

  index_t rows() const override { return static_cast<index_t>(s_.points.size()); }
  index_t cols() const override { return static_cast<index_t>(s_.points.size()); }

  T entry(index_t i, index_t j) const override {
    const std::size_t si = static_cast<std::size_t>(i);
    const std::size_t sj = static_cast<std::size_t>(j);
    const double w = symmetric_
                         ? std::sqrt(s_.weights[si] * s_.weights[sj])
                         : s_.weights[sj];
    if (i == j) {
      // Strongly regular self term (analytic disc integral, amplified to
      // keep the collocation system well conditioned at all mesh sizes).
      const double self = 2.0 * diag_[si];
      if constexpr (is_complex_v<T>) {
        return T(self, 0.25 * self);
      } else {
        return T(self);
      }
    }
    const double r = std::max(detail::distance(s_.points[si], s_.points[sj]),
                              std::max(reg_[si], reg_[sj]));
    const double g = w / (4.0 * M_PI * r);
    if constexpr (is_complex_v<T>) {
      return std::exp(T(0.0, k_ * r)) * T(g);
    } else {
      return T(g);
    }
  }

  const BemSurface& surface() const { return s_; }
  bool symmetric() const { return symmetric_; }

 private:
  BemSurface s_;
  double k_;
  bool symmetric_;
  std::vector<double> reg_;
  std::vector<double> diag_;
};

/// y := A_ss * x evaluated directly from the generator in cache-friendly
/// chunks (used to build the manufactured right-hand side without ever
/// materializing the dense block). Parallel over rows.
template <class T>
void generator_matvec(const hmat::MatrixGenerator<T>& gen, const T* x, T* y) {
  const index_t m = gen.rows();
  const index_t n = gen.cols();
#pragma omp parallel for schedule(dynamic, 32)
  for (index_t i = 0; i < m; ++i) {
    T acc{};
    for (index_t j = 0; j < n; ++j) acc += gen.entry(i, j) * x[j];
    y[i] = acc;
  }
}

/// Y := A_ss * X for a block of columns, evaluated directly from the
/// generator. Each kernel entry is computed once and applied to every
/// column; each column accumulates independently in the same ascending-k
/// order as generator_matvec, so column j of the result is bitwise
/// identical to a single-column apply of X(:, j) at any thread count.
template <class T>
void generator_multiply(const hmat::MatrixGenerator<T>& gen,
                        la::ConstMatrixView<T> X, la::MatrixView<T> Y) {
  const index_t m = gen.rows();
  const index_t n = gen.cols();
  const index_t nrhs = X.cols();
#pragma omp parallel for schedule(dynamic, 32)
  for (index_t i = 0; i < m; ++i) {
    std::vector<T> acc(static_cast<std::size_t>(nrhs), T{});
    for (index_t k = 0; k < n; ++k) {
      const T a = gen.entry(i, k);
      for (index_t j = 0; j < nrhs; ++j)
        acc[static_cast<std::size_t>(j)] += a * X(k, j);
    }
    for (index_t j = 0; j < nrhs; ++j)
      Y(i, j) = acc[static_cast<std::size_t>(j)];
  }
}

/// Materialize the dense sub-block rows [r0, r0+nr) x cols [c0, c0+nc).
template <class T>
void generator_block(const hmat::MatrixGenerator<T>& gen, index_t r0,
                     index_t c0, la::MatrixView<T> out) {
#pragma omp parallel for schedule(dynamic, 8)
  for (index_t j = 0; j < out.cols(); ++j)
    for (index_t i = 0; i < out.rows(); ++i)
      out(i, j) = gen.entry(r0 + i, c0 + j);
}

}  // namespace cs::fembem
