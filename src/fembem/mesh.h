// Structured tetrahedral mesh of a cylindrical shell ("short pipe"), the
// reproducible test geometry of the paper (their test_fembem pipe case).
//
// Nodes live on a (radial x angular x axial) grid; each hexahedral cell is
// split into tetrahedra; the angular direction is periodic so the only
// boundary surfaces are the inner/outer cylinder walls and the two end
// rings. Boundary triangles (and hence the BEM surface unknowns) are
// recovered topologically: a tetrahedron face used exactly once is a
// boundary face.
#pragma once

#include <array>
#include <vector>

#include "common/types.h"
#include "hmat/cluster.h"

namespace cs::fembem {

using hmat::Point3;

struct PipeMesh {
  std::vector<Point3> nodes;
  std::vector<std::array<index_t, 4>> tets;
  std::vector<std::array<index_t, 3>> boundary_tris;
  /// Unique mesh node ids lying on the boundary, sorted ascending. The
  /// position in this vector is the *surface dof index*.
  std::vector<index_t> boundary_nodes;
  /// surface dof index of a mesh node, or -1.
  std::vector<index_t> surface_of_node;

  index_t n_nodes() const { return static_cast<index_t>(nodes.size()); }
  index_t n_surface() const {
    return static_cast<index_t>(boundary_nodes.size());
  }
};

struct PipeParams {
  index_t n_radial = 4;    ///< node layers across the shell thickness
  index_t n_theta = 16;    ///< angular divisions (periodic)
  index_t n_axial = 16;    ///< node layers along the axis
  double inner_radius = 0.6;
  double outer_radius = 1.0;
  double length = 3.0;
};

/// Build the structured pipe mesh.
PipeMesh make_pipe_mesh(const PipeParams& params);

/// Pick mesh dimensions so that the total unknown count (volume + surface)
/// approaches `total_unknowns`. With n_radial = 0 (default) the mesh
/// refines isotropically (3D scaling); a positive n_radial pins the shell
/// thickness.
PipeParams pipe_dims_for_total(index_t total_unknowns, index_t n_radial = 0);

/// The paper's Table I surface share: n_BEM ~ 3.72 * N^(2/3).
index_t paper_bem_count(index_t total_unknowns);

/// Pick mesh dimensions hitting a prescribed FEM/BEM unknown split
/// (used to reproduce the exact proportions of the paper's Table I).
PipeParams pipe_dims_for_split(index_t n_fem, index_t n_bem);

/// Volume of a tetrahedron (signed).
double tet_volume(const Point3& a, const Point3& b, const Point3& c,
                  const Point3& d);

/// Area of a triangle.
double tri_area(const Point3& a, const Point3& b, const Point3& c);

}  // namespace cs::fembem
