// Identity of a coupled system, as a compact checksummed fingerprint.
//
// The factors of a CoupledSystem are only valid for the exact system they
// were computed from, so both durable checkpoints (coupled.cpp, DESIGN.md
// §14) and the solver-service factorization cache (src/server/, DESIGN.md
// §16) need a cheap, collision-resistant identity: dimensions, sparsity,
// matrix values and the BEM geometry — not just shapes. This header is
// that single shared implementation; cache keys and checkpoint validation
// can never diverge because both call CoupledSystem<T>::fingerprint().
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <tuple>

#include "common/serialize.h"
#include "fembem/system.h"

namespace cs::fembem {

/// On-disk / on-wire code of the system's scalar type.
template <class T>
struct ScalarCodeOf;
template <>
struct ScalarCodeOf<double> {
  static constexpr std::uint32_t v = 1;
};
template <>
struct ScalarCodeOf<complexd> {
  static constexpr std::uint32_t v = 2;
};

namespace detail {

template <class T>
std::uint32_t vec_crc(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return v.empty() ? 0
                   : serialize::crc32c(0, v.data(), v.size() * sizeof(T));
}

/// CRC32C over a CSR matrix's structure and values in row-major scan
/// order (row pointers are implied by the per-row scan, so two CSRs with
/// identical entries hash identically regardless of how they were built).
template <class T>
std::uint32_t csr_crc(const sparse::Csr<T>& A) {
  std::uint32_t c = 0;
  for (index_t r = 0; r < A.rows(); ++r)
    for (offset_t k = A.row_begin(r); k < A.row_end(r); ++k) {
      const index_t col = A.col(k);
      const T v = A.value(k);
      c = serialize::crc32c(c, &col, sizeof col);
      c = serialize::crc32c(c, &v, sizeof v);
    }
  return c;
}

}  // namespace detail

struct SystemFingerprint {
  std::uint32_t scalar = 0;
  std::int64_t nv = 0, ns = 0, nnz_vv = 0, nnz_sv = 0;
  std::uint8_t symmetric = 0;
  std::uint32_t crc_vv = 0, crc_sv = 0, crc_pts = 0;

  auto key() const {
    return std::tie(scalar, nv, ns, nnz_vv, nnz_sv, symmetric, crc_vv,
                    crc_sv, crc_pts);
  }
  bool operator==(const SystemFingerprint& o) const {
    return key() == o.key();
  }
  bool operator!=(const SystemFingerprint& o) const { return !(*this == o); }
  /// Strict weak ordering so a fingerprint can key an ordered map (the
  /// server's factorization cache).
  bool operator<(const SystemFingerprint& o) const { return key() < o.key(); }

  /// 64-bit mix of all fields — a wire-friendly digest for logs and
  /// replies. Equality of fingerprints is the authoritative test; the
  /// digest is for display and cheap client-side comparison.
  std::uint64_t digest() const {
    auto mix = [](std::uint64_t h, std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return h;
    };
    std::uint64_t h = 0x243f6a8885a308d3ull;
    h = mix(h, scalar);
    h = mix(h, static_cast<std::uint64_t>(nv));
    h = mix(h, static_cast<std::uint64_t>(ns));
    h = mix(h, static_cast<std::uint64_t>(nnz_vv));
    h = mix(h, static_cast<std::uint64_t>(nnz_sv));
    h = mix(h, symmetric);
    h = mix(h, crc_vv);
    h = mix(h, crc_sv);
    h = mix(h, crc_pts);
    return h;
  }

  /// 16-hex-digit digest, usable in file names (checkpoint spill paths).
  std::string hex() const {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(digest()));
    return buf;
  }
};

template <class T>
SystemFingerprint CoupledSystem<T>::fingerprint() const {
  SystemFingerprint fp;
  fp.scalar = ScalarCodeOf<T>::v;
  fp.nv = nv();
  fp.ns = ns();
  fp.nnz_vv = A_vv.nnz();
  fp.nnz_sv = A_sv.nnz();
  fp.symmetric = symmetric ? 1 : 0;
  fp.crc_vv = detail::csr_crc(A_vv);
  fp.crc_sv = detail::csr_crc(A_sv);
  fp.crc_pts = detail::vec_crc(surface_points());
  return fp;
}

}  // namespace cs::fembem
