// P1 tetrahedral FEM assembly on the pipe mesh: stiffness K, mass M and
// the volume operator A_vv = K + (sigma_r + i sigma_i - kappa^2) M used by
// the coupled system (sigma_r > 0 and kappa = 0 gives the real SPD case of
// the paper's pipe benchmark; kappa > 0 with a small imaginary shift gives
// the complex symmetric Helmholtz-like case of the industrial benchmark).
// The surface/volume coupling A_sv is the boundary mass matrix between
// surface dofs (boundary vertices) and volume dofs.
#pragma once

#include <array>
#include <cmath>

#include "fembem/mesh.h"
#include "sparse/sparse.h"

namespace cs::fembem {

struct FemCoefficients {
  double kappa = 0.0;        ///< wavenumber (0 -> SPD Laplace-like operator)
  double sigma_real = 1.0;   ///< real mass shift
  double sigma_imag = 0.0;   ///< imaginary mass shift (absorption)
};

namespace detail {

/// Element stiffness and mass of a P1 tetrahedron.
struct TetElement {
  std::array<std::array<double, 4>, 4> stiffness;
  std::array<std::array<double, 4>, 4> mass;
};

inline TetElement tet_element(const Point3& p0, const Point3& p1,
                              const Point3& p2, const Point3& p3) {
  const double vol = std::abs(tet_volume(p0, p1, p2, p3));
  // Barycentric gradients: solve for the constant gradients of the four
  // hat functions via the inverse of the edge matrix.
  const double x[4] = {p0.x, p1.x, p2.x, p3.x};
  const double y[4] = {p0.y, p1.y, p2.y, p3.y};
  const double z[4] = {p0.z, p1.z, p2.z, p3.z};
  // grad lambda_i = n_i / (6 V) with n_i the inward face normal times area
  // (classic formula via cofactors).
  std::array<std::array<double, 3>, 4> grad{};
  for (int i = 0; i < 4; ++i) {
    const int a = (i + 1) % 4, b = (i + 2) % 4, c = (i + 3) % 4;
    // Normal of the face opposite to vertex i.
    const double ux = x[b] - x[a], uy = y[b] - y[a], uz = z[b] - z[a];
    const double vx = x[c] - x[a], vy = y[c] - y[a], vz = z[c] - z[a];
    double nx = uy * vz - uz * vy;
    double ny = uz * vx - ux * vz;
    double nz = ux * vy - uy * vx;
    // Orient towards vertex i.
    const double wx = x[i] - x[a], wy = y[i] - y[a], wz = z[i] - z[a];
    if (nx * wx + ny * wy + nz * wz < 0) {
      nx = -nx;
      ny = -ny;
      nz = -nz;
    }
    grad[static_cast<std::size_t>(i)] = {nx / (6.0 * vol), ny / (6.0 * vol),
                                         nz / (6.0 * vol)};
  }
  TetElement e{};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      const auto& gi = grad[static_cast<std::size_t>(i)];
      const auto& gj = grad[static_cast<std::size_t>(j)];
      e.stiffness[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          vol * (gi[0] * gj[0] + gi[1] * gj[1] + gi[2] * gj[2]);
      e.mass[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          (i == j) ? vol / 10.0 : vol / 20.0;
    }
  return e;
}

template <class T>
T volume_coefficient(const FemCoefficients& c) {
  const double real_shift = c.sigma_real - c.kappa * c.kappa;
  if constexpr (is_complex_v<T>) {
    return T(real_shift, c.sigma_imag);
  } else {
    return T(real_shift);
  }
}

}  // namespace detail

/// Assemble the volume operator A_vv = K + coef * M (full symmetric CSR).
template <class T>
sparse::Csr<T> assemble_volume_operator(const PipeMesh& mesh,
                                        const FemCoefficients& coef) {
  const index_t n = mesh.n_nodes();
  sparse::Triplets<T> trip(n, n);
  trip.i.reserve(mesh.tets.size() * 16);
  trip.j.reserve(mesh.tets.size() * 16);
  trip.v.reserve(mesh.tets.size() * 16);
  const T c = detail::volume_coefficient<T>(coef);
  for (const auto& tet : mesh.tets) {
    const auto e = detail::tet_element(
        mesh.nodes[static_cast<std::size_t>(tet[0])],
        mesh.nodes[static_cast<std::size_t>(tet[1])],
        mesh.nodes[static_cast<std::size_t>(tet[2])],
        mesh.nodes[static_cast<std::size_t>(tet[3])]);
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) {
        const T value =
            T(e.stiffness[static_cast<std::size_t>(i)]
                         [static_cast<std::size_t>(j)]) +
            c * T(e.mass[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(j)]);
        trip.add(tet[static_cast<std::size_t>(i)],
                 tet[static_cast<std::size_t>(j)], value);
      }
  }
  return sparse::Csr<T>::from_triplets(trip);
}

/// Assemble the sparse surface/volume coupling A_sv (n_surface x n_nodes):
/// the P1 mass matrix of the boundary triangulation, rows indexed by
/// surface dof, columns by volume dof.
template <class T>
sparse::Csr<T> assemble_coupling(const PipeMesh& mesh) {
  sparse::Triplets<T> trip(mesh.n_surface(), mesh.n_nodes());
  for (const auto& tri : mesh.boundary_tris) {
    const double area =
        tri_area(mesh.nodes[static_cast<std::size_t>(tri[0])],
                 mesh.nodes[static_cast<std::size_t>(tri[1])],
                 mesh.nodes[static_cast<std::size_t>(tri[2])]);
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        const index_t s =
            mesh.surface_of_node[static_cast<std::size_t>(
                tri[static_cast<std::size_t>(i)])];
        trip.add(s, tri[static_cast<std::size_t>(j)],
                 T((i == j) ? area / 6.0 : area / 12.0));
      }
  }
  return sparse::Csr<T>::from_triplets(trip);
}

}  // namespace cs::fembem
