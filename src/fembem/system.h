// Assembly of the full coupled sparse/dense FEM/BEM system (paper eq. (1)):
//
//     [ A_vv  A_sv^T ] [x_v]   [b_v]
//     [ A_sv  A_ss   ] [x_s] = [b_s]
//
// with A_vv the sparse P1 FEM volume operator, A_sv the sparse boundary
// mass coupling and A_ss the dense BEM collocation block, exposed lazily
// through a kernel generator. The right-hand side is manufactured from a
// smooth reference solution so every solver configuration reports the same
// relative error metric the paper plots in Fig. 11.
#pragma once

#include <cmath>
#include <memory>

#include "fembem/bem.h"
#include "fembem/fem.h"
#include "fembem/mesh.h"

namespace cs::fembem {

struct SystemFingerprint;

template <class T>
struct CoupledSystem {
  sparse::Csr<T> A_vv;  ///< nv x nv, symmetric (complex symmetric if T cplx)
  sparse::Csr<T> A_sv;  ///< ns x nv coupling (zero rows for BEM-only dofs)
  std::unique_ptr<BemGenerator<T>> A_ss;  ///< lazy dense surface block
  la::Vector<T> b_v, b_s;
  la::Vector<T> x_v_ref, x_s_ref;  ///< manufactured solution
  bool symmetric = true;  ///< whole-system symmetry (A_ss symmetric or not)

  index_t nv() const { return A_vv.rows(); }
  index_t ns() const { return A_ss->rows(); }
  index_t total() const { return nv() + ns(); }

  const std::vector<Point3>& surface_points() const {
    return A_ss->surface().points;
  }

  /// Checksummed identity of this system (dimensions, sparsity, matrix
  /// values, BEM geometry). One shared implementation keys both the
  /// durable-checkpoint validation and the solver-service factorization
  /// cache; defined in fembem/fingerprint.h.
  SystemFingerprint fingerprint() const;

  /// Relative error of a computed solution against the reference,
  /// || [xv; xs] - ref || / || ref || (2-norm over all unknowns).
  double relative_error(const la::Vector<T>& xv,
                        const la::Vector<T>& xs) const {
    double num = 0, den = 0;
    for (index_t i = 0; i < nv(); ++i) {
      num += abs2(T(xv[i] - x_v_ref[i]));
      den += abs2(x_v_ref[i]);
    }
    for (index_t i = 0; i < ns(); ++i) {
      num += abs2(T(xs[i] - x_s_ref[i]));
      den += abs2(x_s_ref[i]);
    }
    return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
  }
};

struct SystemParams {
  index_t total_unknowns = 20000;
  double kappa = 0.0;          ///< wavenumber (FEM and BEM)
  double sigma_real = 1.0;     ///< FEM mass shift keeping A_vv regular
  double sigma_imag = 0.0;     ///< absorption (complex case)
  bool symmetric_bem = true;   ///< false -> non-symmetric industrial case
  /// Extra BEM-only surface dofs as a fraction of the coupled surface dofs
  /// (the industrial case's fuselage/wing, raising the BEM share).
  double extra_surface_ratio = 0.0;
  /// Match the paper's Table I FEM/BEM proportions (n_BEM ~ 3.72 N^(2/3)).
  /// When false, mesh dimensions come from pipe_dims_for_total(n_radial).
  bool paper_proportions = true;
  index_t n_radial = 0;
};

namespace detail {

template <class T>
T reference_field(const Point3& p, double phase) {
  const double v = std::cos(1.3 * p.x + 0.7 * p.y + 0.9 * p.z + phase);
  if constexpr (is_complex_v<T>) {
    return T(v, std::sin(0.8 * p.x - 0.6 * p.y + 1.1 * p.z + phase));
  } else {
    return T(v);
  }
}

}  // namespace detail

/// Build the full coupled system at roughly `total_unknowns` unknowns.
template <class T>
CoupledSystem<T> make_pipe_system(const SystemParams& params) {
  CoupledSystem<T> sys;
  PipeParams dims;
  if (params.paper_proportions) {
    const index_t bem = paper_bem_count(params.total_unknowns);
    dims = pipe_dims_for_split(params.total_unknowns - bem, bem);
  } else {
    dims = pipe_dims_for_total(params.total_unknowns, params.n_radial);
  }
  const PipeMesh mesh = make_pipe_mesh(dims);

  FemCoefficients coef;
  coef.kappa = params.kappa;
  coef.sigma_real = params.sigma_real;
  coef.sigma_imag = params.sigma_imag;
  sys.A_vv = assemble_volume_operator<T>(mesh, coef);

  BemSurface surface = make_bem_surface(mesh);
  const index_t coupled_surface = static_cast<index_t>(surface.points.size());
  if (params.extra_surface_ratio > 0.0) {
    // Detached "fuselage" shell: BEM-only dofs with no volume coupling.
    const index_t extra = static_cast<index_t>(
        params.extra_surface_ratio * coupled_surface);
    const index_t nt = std::max<index_t>(8, static_cast<index_t>(
                                                std::sqrt(extra / 2.0)));
    const index_t nz = std::max<index_t>(2, extra / nt);
    append_extra_surface(surface, nt, nz, /*radius=*/2.0, /*length=*/6.0,
                         /*offset_x=*/6.0);
  }
  sys.A_ss = std::make_unique<BemGenerator<T>>(std::move(surface),
                                               params.kappa,
                                               params.symmetric_bem);
  sys.symmetric = params.symmetric_bem;

  // Coupling rows for the mesh boundary dofs; BEM-only dofs get zero rows.
  {
    auto coupling = assemble_coupling<T>(mesh);
    if (sys.ns() == coupling.rows()) {
      sys.A_sv = std::move(coupling);
    } else {
      sparse::Triplets<T> trip(sys.ns(), mesh.n_nodes());
      for (index_t r = 0; r < coupling.rows(); ++r)
        for (offset_t k = coupling.row_begin(r); k < coupling.row_end(r); ++k)
          trip.add(r, coupling.col(k), coupling.value(k));
      sys.A_sv = sparse::Csr<T>::from_triplets(trip);
    }
  }

  // Manufactured solution and right-hand side.
  const index_t nv = sys.nv();
  const index_t ns = sys.ns();
  sys.x_v_ref = la::Vector<T>(nv);
  sys.x_s_ref = la::Vector<T>(ns);
  for (index_t i = 0; i < nv; ++i)
    sys.x_v_ref[i] =
        detail::reference_field<T>(mesh.nodes[static_cast<std::size_t>(i)],
                                   0.0);
  for (index_t i = 0; i < ns; ++i)
    sys.x_s_ref[i] = detail::reference_field<T>(
        sys.A_ss->surface().points[static_cast<std::size_t>(i)], 0.4);

  sys.b_v = la::Vector<T>(nv);
  sys.b_s = la::Vector<T>(ns);
  // b_v = A_vv x_v + A_sv^T x_s.
  sys.A_vv.spmv(T{1}, sys.x_v_ref.data(), T{0}, sys.b_v.data());
  sys.A_sv.spmv_trans(T{1}, sys.x_s_ref.data(), T{1}, sys.b_v.data());
  // b_s = A_sv x_v + A_ss x_s.
  generator_matvec(*sys.A_ss, sys.x_s_ref.data(), sys.b_s.data());
  sys.A_sv.spmv(T{1}, sys.x_v_ref.data(), T{1}, sys.b_s.data());
  return sys;
}

}  // namespace cs::fembem
