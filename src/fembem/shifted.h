// Shifted operator family for frequency sweeps: the volume operator of the
// coupled system becomes A_vv(omega) = K + (sigma - omega^2) M with the
// stiffness K and mass M assembled *once* from one triplet stream, so every
// frequency shares one CSR pattern, one mesh, one BEM surface and one
// coupling block. Only values change along the sweep — which is exactly
// what makes the sweep engine's symbolic/cluster-tree reuse legal (see
// DESIGN.md on sweep recycling).
#pragma once

#include <stdexcept>

#include "fembem/system.h"

namespace cs::fembem {

/// Frequency-independent split of the volume operator. `stiffness` and
/// `mass` are built from identical (i,j) triplet streams, so their CSR
/// patterns are bit-identical and `at()` can combine them value-wise.
template <class T>
struct ShiftedOperator {
  sparse::Csr<T> stiffness;  ///< K
  sparse::Csr<T> mass;       ///< M (same pattern as K)
  double sigma_real = 1.0;   ///< regularizing real mass shift
  double sigma_imag = 0.0;   ///< absorption (complex case)

  /// A_vv(omega) = K + (sigma_r + i sigma_i - omega^2) M, combined
  /// entry-wise on the shared pattern: no re-assembly, no re-sorting, and
  /// the result's pattern is identical at every frequency.
  sparse::Csr<T> at(double omega) const {
    if (mass.nnz() != stiffness.nnz())
      throw std::logic_error("shifted operator: K and M patterns differ");
    FemCoefficients c;
    c.kappa = omega;
    c.sigma_real = sigma_real;
    c.sigma_imag = sigma_imag;
    const T shift = detail::volume_coefficient<T>(c);
    sparse::Csr<T> a = stiffness;
    for (offset_t k = 0; k < a.nnz(); ++k)
      a.value_ref(k) += shift * mass.value(k);
    return a;
  }
};

/// Assemble K and M in one pass over the mesh. Both triplet buffers see
/// the same add() sequence of (i,j) pairs, so from_triplets produces the
/// same sorted/merged pattern for both.
template <class T>
ShiftedOperator<T> assemble_shifted_operator(const PipeMesh& mesh,
                                             double sigma_real,
                                             double sigma_imag) {
  const index_t n = mesh.n_nodes();
  sparse::Triplets<T> kt(n, n), mt(n, n);
  kt.i.reserve(mesh.tets.size() * 16);
  kt.j.reserve(mesh.tets.size() * 16);
  kt.v.reserve(mesh.tets.size() * 16);
  mt.i.reserve(mesh.tets.size() * 16);
  mt.j.reserve(mesh.tets.size() * 16);
  mt.v.reserve(mesh.tets.size() * 16);
  for (const auto& tet : mesh.tets) {
    const auto e = detail::tet_element(
        mesh.nodes[static_cast<std::size_t>(tet[0])],
        mesh.nodes[static_cast<std::size_t>(tet[1])],
        mesh.nodes[static_cast<std::size_t>(tet[2])],
        mesh.nodes[static_cast<std::size_t>(tet[3])]);
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) {
        const index_t r = tet[static_cast<std::size_t>(i)];
        const index_t c = tet[static_cast<std::size_t>(j)];
        kt.add(r, c, T(e.stiffness[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(j)]));
        mt.add(r, c, T(e.mass[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(j)]));
      }
  }
  ShiftedOperator<T> op;
  op.stiffness = sparse::Csr<T>::from_triplets(kt);
  op.mass = sparse::Csr<T>::from_triplets(mt);
  op.sigma_real = sigma_real;
  op.sigma_imag = sigma_imag;
  return op;
}

/// Scene parameters for a sweep family. Mirrors SystemParams minus the
/// single wavenumber (that is what the sweep varies), plus a multi-
/// scatterer count so the BEM share and block-structure richness can be
/// raised (detached shells at increasing offsets, BEM-only dofs).
struct SweepParams {
  index_t total_unknowns = 20000;
  double sigma_real = 1.0;
  double sigma_imag = 0.0;
  bool symmetric_bem = true;
  index_t scatterers = 0;             ///< extra detached shells
  double extra_surface_ratio = 0.25;  ///< BEM-only dofs per shell (fraction)
  bool paper_proportions = true;
  index_t n_radial = 0;
};

/// One meshed scene, many frequencies. Everything frequency-independent
/// (mesh, K/M split, BEM surface, coupling block, manufactured reference)
/// is built once in the constructor; at(omega) only re-values the volume
/// operator, instantiates the kernel generator at the new wavenumber and
/// manufactures the matching right-hand side.
template <class T>
class SweepFamily {
 public:
  explicit SweepFamily(const SweepParams& params) {
    PipeParams dims;
    if (params.paper_proportions) {
      const index_t bem = paper_bem_count(params.total_unknowns);
      dims = pipe_dims_for_split(params.total_unknowns - bem, bem);
    } else {
      dims = pipe_dims_for_total(params.total_unknowns, params.n_radial);
    }
    mesh_ = make_pipe_mesh(dims);
    op_ = assemble_shifted_operator<T>(mesh_, params.sigma_real,
                                       params.sigma_imag);
    symmetric_ = params.symmetric_bem;

    surface_ = make_bem_surface(mesh_);
    const index_t coupled_surface =
        static_cast<index_t>(surface_.points.size());
    for (index_t s = 0; s < params.scatterers; ++s) {
      const index_t extra = static_cast<index_t>(
          params.extra_surface_ratio * coupled_surface);
      const index_t nt = std::max<index_t>(
          8, static_cast<index_t>(std::sqrt(extra / 2.0)));
      const index_t nz = std::max<index_t>(2, extra / nt);
      append_extra_surface(surface_, nt, nz, /*radius=*/2.0, /*length=*/6.0,
                           /*offset_x=*/6.0 + 6.0 * static_cast<double>(s));
    }

    // Coupling rows for the mesh boundary dofs; BEM-only dofs (the
    // scatterer shells) get zero rows.
    const index_t ns = static_cast<index_t>(surface_.points.size());
    auto coupling = assemble_coupling<T>(mesh_);
    if (ns == coupling.rows()) {
      coupling_ = std::move(coupling);
    } else {
      sparse::Triplets<T> trip(ns, mesh_.n_nodes());
      for (index_t r = 0; r < coupling.rows(); ++r)
        for (offset_t k = coupling.row_begin(r); k < coupling.row_end(r); ++k)
          trip.add(r, coupling.col(k), coupling.value(k));
      coupling_ = sparse::Csr<T>::from_triplets(trip);
    }

    // The manufactured reference is frequency-independent so every
    // frequency of the sweep reports a comparable relative error.
    x_v_ref_ = la::Vector<T>(mesh_.n_nodes());
    x_s_ref_ = la::Vector<T>(ns);
    for (index_t i = 0; i < mesh_.n_nodes(); ++i)
      x_v_ref_[i] = detail::reference_field<T>(
          mesh_.nodes[static_cast<std::size_t>(i)], 0.0);
    for (index_t i = 0; i < ns; ++i)
      x_s_ref_[i] = detail::reference_field<T>(
          surface_.points[static_cast<std::size_t>(i)], 0.4);
  }

  index_t nv() const { return mesh_.n_nodes(); }
  index_t ns() const { return static_cast<index_t>(surface_.points.size()); }
  index_t total() const { return nv() + ns(); }

  /// The coupled system at frequency `omega` — same mesh, same patterns,
  /// same surface geometry as every other frequency of the family.
  CoupledSystem<T> at(double omega) const {
    CoupledSystem<T> sys;
    sys.A_vv = op_.at(omega);
    sys.A_sv = coupling_;
    sys.A_ss = std::make_unique<BemGenerator<T>>(surface_, omega, symmetric_);
    sys.symmetric = symmetric_;
    sys.x_v_ref = x_v_ref_;
    sys.x_s_ref = x_s_ref_;

    sys.b_v = la::Vector<T>(nv());
    sys.b_s = la::Vector<T>(ns());
    // b_v = A_vv x_v + A_sv^T x_s.
    sys.A_vv.spmv(T{1}, sys.x_v_ref.data(), T{0}, sys.b_v.data());
    sys.A_sv.spmv_trans(T{1}, sys.x_s_ref.data(), T{1}, sys.b_v.data());
    // b_s = A_sv x_v + A_ss x_s.
    generator_matvec(*sys.A_ss, sys.x_s_ref.data(), sys.b_s.data());
    sys.A_sv.spmv(T{1}, sys.x_v_ref.data(), T{1}, sys.b_s.data());
    return sys;
  }

 private:
  PipeMesh mesh_;
  ShiftedOperator<T> op_;
  BemSurface surface_;
  sparse::Csr<T> coupling_;
  bool symmetric_ = true;
  la::Vector<T> x_v_ref_, x_s_ref_;
};

}  // namespace cs::fembem
