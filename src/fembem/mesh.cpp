#include "fembem/mesh.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>

namespace cs::fembem {

double tet_volume(const Point3& a, const Point3& b, const Point3& c,
                  const Point3& d) {
  const double bx = b.x - a.x, by = b.y - a.y, bz = b.z - a.z;
  const double cx = c.x - a.x, cy = c.y - a.y, cz = c.z - a.z;
  const double dx = d.x - a.x, dy = d.y - a.y, dz = d.z - a.z;
  return (bx * (cy * dz - cz * dy) - by * (cx * dz - cz * dx) +
          bz * (cx * dy - cy * dx)) /
         6.0;
}

double tri_area(const Point3& a, const Point3& b, const Point3& c) {
  const double ux = b.x - a.x, uy = b.y - a.y, uz = b.z - a.z;
  const double vx = c.x - a.x, vy = c.y - a.y, vz = c.z - a.z;
  const double nx = uy * vz - uz * vy;
  const double ny = uz * vx - ux * vz;
  const double nz = ux * vy - uy * vx;
  return 0.5 * std::sqrt(nx * nx + ny * ny + nz * nz);
}

PipeMesh make_pipe_mesh(const PipeParams& p) {
  if (p.n_radial < 2 || p.n_theta < 3 || p.n_axial < 2)
    throw std::invalid_argument("pipe mesh needs n_radial>=2, n_theta>=3, "
                                "n_axial>=2");
  PipeMesh mesh;
  const index_t nr = p.n_radial, nt = p.n_theta, nz = p.n_axial;

  // Nodes on the (r, theta, z) grid; theta is periodic.
  auto node_id = [&](index_t ir, index_t it, index_t iz) {
    return ir + nr * ((it % nt) + nt * iz);
  };
  mesh.nodes.reserve(static_cast<std::size_t>(nr) * nt * nz);
  for (index_t iz = 0; iz < nz; ++iz) {
    const double z = p.length * iz / (nz - 1);
    for (index_t it = 0; it < nt; ++it) {
      const double theta = 2.0 * M_PI * it / nt;
      for (index_t ir = 0; ir < nr; ++ir) {
        const double r =
            p.inner_radius +
            (p.outer_radius - p.inner_radius) * ir / (nr - 1);
        mesh.nodes.push_back(
            {r * std::cos(theta), r * std::sin(theta), z});
      }
    }
  }

  // Hexahedral cells split into 6 tetrahedra each (Kuhn split along the
  // main diagonal v0-v6); degenerate/negative volumes are reoriented.
  static const int kTets[6][4] = {{0, 1, 3, 7}, {0, 3, 2, 7}, {0, 2, 6, 7},
                                  {0, 6, 4, 7}, {0, 4, 5, 7}, {0, 5, 1, 7}};
  for (index_t iz = 0; iz + 1 < nz; ++iz) {
    for (index_t it = 0; it < nt; ++it) {  // periodic: wraps at nt
      for (index_t ir = 0; ir + 1 < nr; ++ir) {
        const index_t v[8] = {
            node_id(ir, it, iz),         node_id(ir + 1, it, iz),
            node_id(ir, it + 1, iz),     node_id(ir + 1, it + 1, iz),
            node_id(ir, it, iz + 1),     node_id(ir + 1, it, iz + 1),
            node_id(ir, it + 1, iz + 1), node_id(ir + 1, it + 1, iz + 1)};
        for (const auto& t : kTets) {
          std::array<index_t, 4> tet = {v[t[0]], v[t[1]], v[t[2]], v[t[3]]};
          const double vol = tet_volume(
              mesh.nodes[static_cast<std::size_t>(tet[0])],
              mesh.nodes[static_cast<std::size_t>(tet[1])],
              mesh.nodes[static_cast<std::size_t>(tet[2])],
              mesh.nodes[static_cast<std::size_t>(tet[3])]);
          if (std::abs(vol) < 1e-14) continue;  // degenerate sliver
          if (vol < 0) std::swap(tet[2], tet[3]);
          mesh.tets.push_back(tet);
        }
      }
    }
  }

  // Boundary faces: a face shared by exactly one tetrahedron.
  std::map<std::array<index_t, 3>, std::pair<int, std::array<index_t, 3>>>
      face_count;
  static const int kFaces[4][3] = {{1, 2, 3}, {0, 3, 2}, {0, 1, 3}, {0, 2, 1}};
  for (const auto& tet : mesh.tets) {
    for (const auto& f : kFaces) {
      std::array<index_t, 3> tri = {tet[static_cast<std::size_t>(f[0])],
                                    tet[static_cast<std::size_t>(f[1])],
                                    tet[static_cast<std::size_t>(f[2])]};
      std::array<index_t, 3> key = tri;
      std::sort(key.begin(), key.end());
      auto [it2, inserted] = face_count.try_emplace(key, 0, tri);
      ++it2->second.first;
      (void)inserted;
    }
  }
  std::vector<char> on_boundary(mesh.nodes.size(), 0);
  for (const auto& [key, cnt_tri] : face_count) {
    if (cnt_tri.first == 1) {
      mesh.boundary_tris.push_back(cnt_tri.second);
      for (index_t v : cnt_tri.second)
        on_boundary[static_cast<std::size_t>(v)] = 1;
    }
  }

  mesh.surface_of_node.assign(mesh.nodes.size(), -1);
  for (std::size_t v = 0; v < mesh.nodes.size(); ++v) {
    if (on_boundary[v]) {
      mesh.surface_of_node[v] =
          static_cast<index_t>(mesh.boundary_nodes.size());
      mesh.boundary_nodes.push_back(static_cast<index_t>(v));
    }
  }
  return mesh;
}

PipeParams pipe_dims_for_total(index_t total_unknowns, index_t n_radial) {
  PipeParams p;
  p.inner_radius = 0.25;
  p.outer_radius = 1.0;
  if (n_radial > 0) {
    // Pinned shell thickness: solve 2 * nr * nt^2 ~ total for nt.
    p.n_radial = n_radial;
    p.n_theta = std::max<index_t>(
        6, static_cast<index_t>(std::sqrt(
               static_cast<double>(total_unknowns) / (2.0 * n_radial))));
  } else {
    // Genuinely 3D refinement: all directions scale together
    // (nr ~ nt / 4, nz = 2 nt), so nv ~ nt^3 / 2.
    p.n_theta = std::max<index_t>(
        6, static_cast<index_t>(std::cbrt(2.0 * total_unknowns)));
    p.n_radial = std::max<index_t>(2, p.n_theta / 4);
  }
  p.n_axial = std::max<index_t>(2, 2 * p.n_theta);
  return p;
}

index_t paper_bem_count(index_t total_unknowns) {
  // The paper's Table I follows n_BEM ~ 3.72 * N^(2/3) (37,169 BEM
  // unknowns at N = 1,000,000).
  return std::max<index_t>(
      64, static_cast<index_t>(
              3.72 * std::pow(static_cast<double>(total_unknowns),
                              2.0 / 3.0)));
}

PipeParams pipe_dims_for_split(index_t n_fem, index_t n_bem) {
  PipeParams best;
  best.inner_radius = 0.25;
  best.outer_radius = 1.0;
  double best_gap = 1e30;
  // Surface nodes: walls 2*nt*nz + end-face interiors 2*nt*(nr-2), with
  // nz = 2*nt and volume nodes nr*nt*nz = 2*nr*nt^2. Brute-force nt.
  for (index_t nt = 6; nt <= 512; ++nt) {
    const index_t nr = std::max<index_t>(
        2, static_cast<index_t>(std::lround(
               static_cast<double>(n_fem) / (2.0 * nt * nt))));
    const index_t nz = 2 * nt;
    const double ns = 4.0 * nt * nt + 2.0 * nt * std::max<index_t>(0, nr - 2);
    const double nv = 2.0 * static_cast<double>(nr) * nt * nt;
    const double gap = std::abs(ns - n_bem) / std::max<index_t>(1, n_bem) +
                       std::abs(nv - n_fem) / std::max<index_t>(1, n_fem);
    if (gap < best_gap) {
      best_gap = gap;
      best.n_theta = nt;
      best.n_axial = nz;
      best.n_radial = nr;
    }
  }
  return best;
}

}  // namespace cs::fembem
