// Adaptive Cross Approximation (ACA with partial pivoting) for assembling
// admissible H-matrix blocks directly in compressed form from a matrix
// generator (the "proper low-rank assembly scheme" of the paper: the dense
// BEM block A_ss never needs to be materialized).
#pragma once

#include <cmath>
#include <vector>

#include "common/trace.h"
#include "la/qr_svd.h"

namespace cs::hmat {

/// Entry generator in *original* (application) index space. Implemented by
/// the BEM kernel assembler; also by adapters around stored dense matrices.
template <class T>
class MatrixGenerator {
 public:
  virtual ~MatrixGenerator() = default;
  virtual index_t rows() const = 0;
  virtual index_t cols() const = 0;
  virtual T entry(index_t i, index_t j) const = 0;

  /// Bulk evaluation of one row / column restricted to an id list; the
  /// default loops over entry(). Kernels may override with vectorized code.
  virtual void row(index_t i, const index_t* col_ids, index_t n,
                   T* out) const {
    for (index_t k = 0; k < n; ++k) out[k] = entry(i, col_ids[k]);
  }
  virtual void col(index_t j, const index_t* row_ids, index_t m,
                   T* out) const {
    for (index_t k = 0; k < m; ++k) out[k] = entry(row_ids[k], j);
  }
};

/// Scalar-converting adapter: presents a generator of scalar `From` as one
/// of scalar `To` by converting every evaluated entry. The mixed-precision
/// assembly path wraps the double-precision BEM generator in
/// CastGenerator<float_scalar, double_scalar> so the H-matrix is built
/// directly in factor precision; the original operator stays in double for
/// residual computation. Borrows the wrapped generator (no ownership).
template <class To, class From>
class CastGenerator final : public MatrixGenerator<To> {
 public:
  explicit CastGenerator(const MatrixGenerator<From>& inner) : inner_(inner) {}

  index_t rows() const override { return inner_.rows(); }
  index_t cols() const override { return inner_.cols(); }
  To entry(index_t i, index_t j) const override {
    return scalar_cast<To>(inner_.entry(i, j));
  }

  void row(index_t i, const index_t* col_ids, index_t n,
           To* out) const override {
    scratch_.resize(static_cast<std::size_t>(n));
    inner_.row(i, col_ids, n, scratch_.data());
    for (index_t k = 0; k < n; ++k)
      out[k] = scalar_cast<To>(scratch_[static_cast<std::size_t>(k)]);
  }
  void col(index_t j, const index_t* row_ids, index_t m,
           To* out) const override {
    scratch_.resize(static_cast<std::size_t>(m));
    inner_.col(j, row_ids, m, scratch_.data());
    for (index_t k = 0; k < m; ++k)
      out[k] = scalar_cast<To>(scratch_[static_cast<std::size_t>(k)]);
  }

 private:
  const MatrixGenerator<From>& inner_;
  // Per-thread bulk-evaluation staging: row()/col() are called from the
  // parallel H-matrix assembly loops, so the scratch must not be shared.
  static thread_local std::vector<From> scratch_;
};

template <class To, class From>
thread_local std::vector<From> CastGenerator<To, From>::scratch_;

/// ACA with partial pivoting on the sub-block (row_ids x col_ids) of the
/// generator, at relative accuracy eps. Returns U (m x k), V (n x k) with
/// block ~= U V^T. If convergence is not reached within max_rank crosses
/// the factors found so far are returned (rank == max_rank signals a hard
/// block; callers may fall back to dense assembly). `rank_hint` (>= 0)
/// pre-reserves cross storage for the expected converged rank — a pure
/// capacity hint from a frequency sweep's previous solve of the same
/// block; it never changes which crosses are built.
template <class T>
la::RkFactors<T> aca_assemble(const MatrixGenerator<T>& gen,
                              const std::vector<index_t>& row_ids,
                              const std::vector<index_t>& col_ids,
                              real_of_t<T> eps, index_t max_rank = -1,
                              index_t rank_hint = -1) {
  using R = real_of_t<T>;
  const index_t m = static_cast<index_t>(row_ids.size());
  const index_t n = static_cast<index_t>(col_ids.size());
  const index_t kmax =
      (max_rank > 0) ? std::min<index_t>(max_rank, std::min(m, n))
                     : std::min(m, n);

  std::vector<la::Vector<T>> us;
  std::vector<la::Vector<T>> vs;
  if (rank_hint > 0) {
    const std::size_t cap =
        static_cast<std::size_t>(std::min(rank_hint, kmax));
    us.reserve(cap);
    vs.reserve(cap);
  }
  std::vector<char> row_used(static_cast<std::size_t>(m), 0);
  std::vector<char> col_used(static_cast<std::size_t>(n), 0);

  R approx_norm2 = 0;  // running ||U V^T||_F^2 estimate
  index_t next_row = 0;

  std::vector<T> scratch_row(static_cast<std::size_t>(n));
  std::vector<T> scratch_col(static_cast<std::size_t>(m));

  while (static_cast<index_t>(us.size()) < kmax) {
    // Residual row at next_row: A(i,:) - sum_k u_k(i) v_k.
    index_t i_star = -1;
    index_t j_star = -1;
    R best = 0;
    // Try a few rows in case of an exactly-zero residual row.
    for (index_t attempt = 0; attempt < m; ++attempt) {
      index_t cand = -1;
      for (index_t i = next_row; i < next_row + m; ++i) {
        const index_t ii = i % m;
        if (!row_used[static_cast<std::size_t>(ii)]) {
          cand = ii;
          break;
        }
      }
      if (cand < 0) break;
      row_used[static_cast<std::size_t>(cand)] = 1;
      gen.row(row_ids[static_cast<std::size_t>(cand)], col_ids.data(), n,
              scratch_row.data());
      for (std::size_t k = 0; k < us.size(); ++k) {
        const T uik = us[k][cand];
        if (uik == T{0}) continue;
        for (index_t j = 0; j < n; ++j) scratch_row[static_cast<std::size_t>(j)] -= uik * vs[k][j];
      }
      best = 0;
      for (index_t j = 0; j < n; ++j) {
        if (col_used[static_cast<std::size_t>(j)]) continue;
        const R a = std::abs(scratch_row[static_cast<std::size_t>(j)]);
        if (a > best) {
          best = a;
          j_star = j;
        }
      }
      if (best > R{0}) {
        i_star = cand;
        break;
      }
    }
    if (i_star < 0 || best == R{0}) break;  // block exhausted (likely zero)

    // v = residual row / pivot; u = residual column at j_star.
    const T pivot = scratch_row[static_cast<std::size_t>(j_star)];
    la::Vector<T> v(n);
    for (index_t j = 0; j < n; ++j)
      v[j] = scratch_row[static_cast<std::size_t>(j)] / pivot;
    col_used[static_cast<std::size_t>(j_star)] = 1;

    gen.col(col_ids[static_cast<std::size_t>(j_star)], row_ids.data(), m,
            scratch_col.data());
    la::Vector<T> u(m);
    for (index_t i = 0; i < m; ++i) u[i] = scratch_col[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < us.size(); ++k) {
      const T vjk = vs[k][j_star];
      if (vjk == T{0}) continue;
      for (index_t i = 0; i < m; ++i) u[i] -= vjk * us[k][i];
    }

    // Norm bookkeeping for the stopping criterion.
    R u2 = 0, v2 = 0;
    for (index_t i = 0; i < m; ++i) u2 += abs2(u[i]);
    for (index_t j = 0; j < n; ++j) v2 += abs2(v[j]);
    R cross = 0;
    for (std::size_t k = 0; k < us.size(); ++k) {
      T uu{}, vv{};
      for (index_t i = 0; i < m; ++i) uu += conj_if(us[k][i]) * u[i];
      for (index_t j = 0; j < n; ++j) vv += conj_if(vs[k][j]) * v[j];
      cross += 2 * real_part(uu * conj_if(vv));
    }
    approx_norm2 += u2 * v2 + cross;

    // Pick the next row: the largest remaining |u| entry.
    next_row = 0;
    R unext = -1;
    for (index_t i = 0; i < m; ++i) {
      if (row_used[static_cast<std::size_t>(i)]) continue;
      const R a = std::abs(u[i]);
      if (a > unext) {
        unext = a;
        next_row = i;
      }
    }

    us.push_back(std::move(u));
    vs.push_back(std::move(v));

    if (u2 * v2 <= eps * eps * std::max(approx_norm2, R{0})) break;
  }

  la::RkFactors<T> rk;
  const index_t k = static_cast<index_t>(us.size());
  if (k > 0)
    Metrics::instance().add(Metric::kAcaIterations, static_cast<double>(k));
  rk.U = la::Matrix<T>(m, k);
  rk.V = la::Matrix<T>(n, k);
  for (index_t c = 0; c < k; ++c) {
    for (index_t i = 0; i < m; ++i) rk.U(i, c) = us[static_cast<std::size_t>(c)][i];
    for (index_t j = 0; j < n; ++j) rk.V(j, c) = vs[static_cast<std::size_t>(c)][j];
  }
  return rk;
}

}  // namespace cs::hmat
