// Hierarchical (H-) matrices: compressed storage, algebra and direct
// solution for the dense BEM blocks and Schur complements of the coupled
// solver (the library's hmat-oss analogue).
//
// An HMatrix is a quadtree over a pair of cluster trees. Each block is
//  * subdivided (kNode) when both clusters have children and the block is
//    not admissible,
//  * a rank-k leaf (kRk, U V^T factors) when eta-admissible,
//  * a dense leaf (kFull) otherwise.
//
// Provided operations (all coordinates are *tree-ordered*; callers permute
// their data once with ClusterTree::tree_of_original):
//  * assemble()        : direct compressed assembly via ACA from a kernel
//                        generator ("low-rank assembly scheme");
//  * from_dense()/zero(): structure-preserving constructors;
//  * mult()            : y := a op(H) x + b y for dense x, y;
//  * add_dense_block() : the paper's "compressed AXPY" -- a dense update
//                        (a retrieved Schur block) is compressed per leaf
//                        and accumulated with Rk recompression at eps;
//  * lu_factorize()/solve(): in-place H-LU (no global pivoting; dense
//                        diagonal leaves use partially pivoted LU). The
//                        paper's HMAT runs LDL^T on symmetric systems; we
//                        substitute H-LU (documented in DESIGN.md), which
//                        preserves the memory/time behaviour up to a
//                        constant factor and also covers the unsymmetric
//                        industrial case.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/memory.h"
#include "common/parallel.h"
#include "common/serialize.h"
#include "common/trace.h"
#include "hmat/aca.h"
#include "hmat/cluster.h"
#include "la/factor.h"
#include "la/io.h"
#include "la/qr_svd.h"

namespace cs::hmat {

struct HOptions {
  double eps = 1e-3;      ///< compression / recompression accuracy
  double eta = 2.0;       ///< admissibility parameter
  index_t rk_min_dim = 16;  ///< below this, blocks stay dense
  index_t aca_max_rank_ratio = 2;  ///< ACA rank cap = min(m,n)/ratio
};

/// Recyclable assembly state of one H-matrix block structure across a
/// frequency sweep. The structure itself is deterministic in (cluster
/// tree, HOptions); the skeleton captures it once (block kinds in DFS
/// pre-order) so later assemblies of the same operator family skip the
/// per-block admissibility derivation, and records each leaf's converged
/// assembly outcome (ACA rank or dense fallback, in DFS leaf order) to
/// warm-start the next frequency's adaptive compression. Scalar
/// independent: the hints are starting points, not results.
struct BlockSkeleton {
  static constexpr index_t kNoHint = -1;        ///< no usable hint
  static constexpr index_t kDenseFallback = -2; ///< ACA stagnated last time
  /// Headroom added to a hinted rank before it caps the warm-started ACA:
  /// a block whose rank grew by more than this between neighboring
  /// frequencies re-runs uncapped (a counted miss).
  static constexpr index_t kRankHintMargin = 8;

  index_t rows = 0, cols = 0;        ///< identity check before reuse
  std::vector<std::uint8_t> kinds;   ///< block kinds, DFS pre-order
  std::vector<index_t> leaf_hints;   ///< per-leaf outcome, DFS leaf order

  bool empty() const { return kinds.empty(); }
};

template <class T>
class HMatrix {
 public:
  enum class Kind { kNode, kFull, kRk };

  /// Compressed assembly from a kernel generator. `gen` is indexed in
  /// original ids; rows/cols cluster trees supply the orderings.
  static HMatrix assemble(const ClusterTree& rows, const ClusterTree& cols,
                          const MatrixGenerator<T>& gen,
                          const HOptions& opt) {
    TraceSpan span("hmat", "hmat.assemble");
    span.arg("rows", static_cast<long long>(rows.root().size()))
        .arg("cols", static_cast<long long>(cols.root().size()));
    HMatrix h = build_structure(rows.root(), cols.root(), opt);
    h.fill_from_generator(gen, rows.original_of_tree(),
                          cols.original_of_tree());
    return h;
  }

  /// Warm assembly for frequency sweeps: replay the block structure
  /// recorded in `warm` (skipping the per-block admissibility derivation)
  /// and seed each adaptive leaf compression with its outcome at the
  /// previous frequency. An empty or mismatching skeleton degrades to the
  /// cold path. On return the skeleton holds this assembly's structure and
  /// outcomes, ready for the next frequency. Legality: the structure
  /// depends only on cluster geometry and options, both invariant under an
  /// operator shift; the hints are capacity seeds that never change which
  /// crosses ACA builds, so warm and cold assemblies of a given operator
  /// produce identical factors.
  static HMatrix assemble(const ClusterTree& rows, const ClusterTree& cols,
                          const MatrixGenerator<T>& gen, const HOptions& opt,
                          BlockSkeleton& warm) {
    TraceSpan span("hmat", "hmat.assemble");
    span.arg("rows", static_cast<long long>(rows.root().size()))
        .arg("cols", static_cast<long long>(cols.root().size()));
    HMatrix h;
    bool reused = false;
    if (!warm.empty() && warm.rows == rows.root().size() &&
        warm.cols == cols.root().size()) {
      bool ok = true;
      std::size_t cursor = 0;
      HMatrix replay = build_structure_from(rows.root(), cols.root(), opt,
                                            warm.kinds, cursor, ok);
      if (ok && cursor == warm.kinds.size()) {
        h = std::move(replay);
        reused = true;
        Metrics::instance().add(Metric::kHmatStructureReuses, 1);
      }
    }
    if (!reused) {
      h = build_structure(rows.root(), cols.root(), opt);
      warm.rows = rows.root().size();
      warm.cols = cols.root().size();
      warm.kinds.clear();
      // Recorded before filling so build-time demotions (Rk leaves turned
      // dense because compression did not pay) stay out of the structural
      // record; they recur naturally at each frequency.
      h.record_kinds(warm.kinds);
      warm.leaf_hints.clear();  // hints are keyed to the recorded leaf order
    }
    std::vector<index_t> outcomes;
    h.fill_from_generator(gen, rows.original_of_tree(),
                          cols.original_of_tree(),
                          reused ? &warm.leaf_hints : nullptr, &outcomes);
    warm.leaf_hints = std::move(outcomes);
    return h;
  }

  /// Structure-preserving compression of a dense matrix given in
  /// tree-ordered coordinates.
  static HMatrix from_dense(const ClusterTree& rows, const ClusterTree& cols,
                            la::ConstMatrixView<T> dense,
                            const HOptions& opt) {
    HMatrix h = build_structure(rows.root(), cols.root(), opt);
    h.fill_from_dense(dense);
    return h;
  }

  /// All-zero H-matrix with the admissibility structure (rank-0 Rk leaves,
  /// zero dense leaves). The Schur accumulator of the coupled algorithms
  /// starts from this.
  static HMatrix zero(const ClusterTree& rows, const ClusterTree& cols,
                      const HOptions& opt) {
    HMatrix h = build_structure(rows.root(), cols.root(), opt);
    h.fill_zero();
    return h;
  }

  index_t rows() const { return row_->size(); }
  index_t cols() const { return col_->size(); }
  Kind kind() const { return kind_; }
  const HOptions& options() const { return opt_; }

  /// y := alpha * op(H) * x + beta * y (dense multi-vectors, tree order).
  void mult(T alpha, la::ConstMatrixView<T> X, T beta, la::MatrixView<T> Y,
            la::Op op = la::Op::kNoTrans) const {
    if (beta != T{1}) la::scale(beta, Y);
    mult_add(alpha, X, Y, op);
  }

  /// Compressed AXPY: this += alpha * D placed at absolute tree
  /// coordinates (row0, col0). Dense leaves accumulate directly; Rk leaves
  /// compress the incoming block and recompress at eps.
  void add_dense_block(T alpha, la::ConstMatrixView<T> D, index_t row0,
                       index_t col0) {
    if (D.rows() == 0 || D.cols() == 0) return;
    if (row0 < row_->begin || row0 + D.rows() > row_->end ||
        col0 < col_->begin || col0 + D.cols() > col_->end)
      throw std::out_of_range("add_dense_block outside matrix");
    TraceSpan span("hmat", "hmat.axpy");
    span.arg("rows", static_cast<long long>(D.rows()))
        .arg("cols", static_cast<long long>(D.cols()));
    // The update rectangle intersects each leaf in at most one sub-block,
    // so the per-leaf jobs write disjoint storage: collect them first, then
    // recompress in parallel (the dominant cost of the compressed AXPY).
    std::vector<AxpyJob> jobs;
    collect_axpy_jobs(D, row0, col0, jobs);
    parallel_for_capture(jobs.size(), [&](std::size_t l) {
      jobs[l].leaf->apply_axpy_leaf(alpha, jobs[l].D, jobs[l].row0,
                                    jobs[l].col0);
    });
  }

  /// Global low-rank update: this += alpha * U V^T over the whole matrix
  /// (Rk leaves recompress at eps). Used by the randomized compressed-Schur
  /// extension, where the Schur correction arrives directly as factors.
  void add_low_rank(T alpha, const la::RkFactors<T>& rk) {
    if (rk.U.rows() != rows() || rk.V.rows() != cols())
      throw std::invalid_argument("low-rank update dimension mismatch");
    add_rk(alpha, rk);
  }

  /// Dense materialization (tests / small blocks only).
  la::Matrix<T> to_dense() const {
    la::Matrix<T> out(rows(), cols());
    to_dense_rec(out.view(), row_->begin, col_->begin);
    return out;
  }

  /// Serialize the H-matrix payload (leaf kinds, dense/Rk factors, pivots,
  /// factorization flags) via a depth-first walk. The block *structure* is
  /// not stored: it is rebuilt deterministically from the cluster tree and
  /// options on load, and the stored kinds are checked against it.
  void save(serialize::Writer& w) const {
    w.write_u8(factored_ ? 1 : 0);
    w.write_u8(ldlt_ ? 1 : 0);
    save_rec(w);
  }

  /// Rebuild an H-matrix from a checkpoint section: structure from
  /// (rows, cols, opt), payload streamed from the reader. A stored dense
  /// leaf where the structure says Rk is a legitimate demotion
  /// (compression that did not pay at build time); any other kind
  /// mismatch is corruption and throws ClassifiedError at ckpt.corrupt.
  static HMatrix load(const ClusterTree& rows, const ClusterTree& cols,
                      const HOptions& opt, serialize::Reader& in) {
    HMatrix h = build_structure(rows.root(), cols.root(), opt);
    h.factored_ = in.read_u8() != 0;
    h.ldlt_ = in.read_u8() != 0;
    h.load_rec(in);
    return h;
  }

  /// In-place H-LU factorization (square blocks on one cluster tree). The
  /// recursion runs as an OpenMP task graph: the two off-diagonal panel
  /// solves of each level are independent tasks and the trailing-block
  /// Schur-update GEMMs fan out per target quadrant.
  void lu_factorize() {
    if (row_ != col_)
      throw std::logic_error("H-LU requires a square H-matrix on one tree");
    TraceSpan span("hmat", "hlu.factor");
    span.arg("n", static_cast<long long>(rows()));
    run_factor_entry([&](int depth) { lu_rec(depth); });
    factored_ = true;
    ldlt_ = false;
  }
  bool factored() const { return factored_; }

  /// In-place H-LDL^T factorization for *symmetric* data (the classic
  /// symmetric H-solver mode, as in the paper's HMAT): only the diagonal
  /// and strictly-lower blocks are read and written; upper blocks become
  /// stale and are ignored by solve(). Unpivoted, like the dense LDL^T.
  void ldlt_factorize() {
    if (row_ != col_)
      throw std::logic_error("H-LDLT requires a square H-matrix on one tree");
    TraceSpan span("hmat", "hldlt.factor");
    span.arg("n", static_cast<long long>(rows()));
    run_factor_entry([&](int depth) { ldlt_rec(depth); });
    factored_ = true;
    ldlt_ = true;
  }

  /// In-place solve A X = B after lu_factorize() / ldlt_factorize(); B is
  /// tree-ordered.
  void solve(la::MatrixView<T> B) const {
    if (!factored_)
      throw std::logic_error("solve() before a factorization");
    assert(B.rows() == rows());
    if (ldlt_) {
      forward_unit_lower(*this, B);
      scale_by_diag_inv(*this, B);
      backward_unit_lower_trans(*this, B);
    } else {
      solve_lower_dense(*this, B);
      solve_upper_dense(*this, B);
    }
  }

  // -- statistics ----------------------------------------------------------

  offset_t stored_entries() const {
    offset_t total = 0;
    visit([&](const HMatrix& h) {
      if (h.kind_ == Kind::kFull) {
        total += static_cast<offset_t>(h.full_.rows()) * h.full_.cols();
      } else if (h.kind_ == Kind::kRk) {
        total += static_cast<offset_t>(h.rk_.U.rows()) * h.rk_.U.cols() +
                 static_cast<offset_t>(h.rk_.V.rows()) * h.rk_.V.cols();
      }
    });
    return total;
  }

  std::size_t memory_bytes() const {
    return static_cast<std::size_t>(stored_entries()) * sizeof(T);
  }

  index_t max_rank() const {
    index_t r = 0;
    visit([&](const HMatrix& h) {
      if (h.kind_ == Kind::kRk) r = std::max(r, h.rk_.rank());
    });
    return r;
  }

  offset_t rk_leaves() const {
    offset_t c = 0;
    visit([&](const HMatrix& h) { c += h.kind_ == Kind::kRk ? 1 : 0; });
    return c;
  }
  offset_t full_leaves() const {
    offset_t c = 0;
    visit([&](const HMatrix& h) { c += h.kind_ == Kind::kFull ? 1 : 0; });
    return c;
  }

  /// Storage relative to the dense equivalent (1.0 = no compression).
  double compression_ratio() const {
    const double dense =
        static_cast<double>(rows()) * static_cast<double>(cols());
    return dense > 0 ? static_cast<double>(stored_entries()) / dense : 0.0;
  }

 private:
  HMatrix() = default;

  static HMatrix build_structure(const ClusterNode& rn, const ClusterNode& cn,
                                 const HOptions& opt) {
    HMatrix h;
    h.row_ = &rn;
    h.col_ = &cn;
    h.opt_ = opt;
    const bool big_enough =
        rn.size() >= opt.rk_min_dim && cn.size() >= opt.rk_min_dim;
    if (big_enough && admissible(rn, cn, opt.eta)) {
      h.kind_ = Kind::kRk;
    } else if (!rn.is_leaf() && !cn.is_leaf()) {
      h.kind_ = Kind::kNode;
      const ClusterNode* rks[2] = {rn.left.get(), rn.right.get()};
      const ClusterNode* cks[2] = {cn.left.get(), cn.right.get()};
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
          h.child_[static_cast<std::size_t>(2 * i + j)] =
              std::make_unique<HMatrix>(
                  build_structure(*rks[i], *cks[j], opt));
    } else {
      h.kind_ = Kind::kFull;
    }
    return h;
  }

  /// Rebuild the block structure by replaying a recorded DFS pre-order
  /// kind sequence instead of deriving admissibility per block. Sets `ok`
  /// to false (and stops descending) when the record cannot match this
  /// cluster tree: sequence exhausted, unknown kind, or a recorded Node
  /// over leaf clusters.
  static HMatrix build_structure_from(const ClusterNode& rn,
                                      const ClusterNode& cn,
                                      const HOptions& opt,
                                      const std::vector<std::uint8_t>& kinds,
                                      std::size_t& cursor, bool& ok) {
    HMatrix h;
    h.row_ = &rn;
    h.col_ = &cn;
    h.opt_ = opt;
    if (cursor >= kinds.size() ||
        kinds[cursor] > static_cast<std::uint8_t>(Kind::kRk)) {
      ok = false;
      return h;
    }
    h.kind_ = static_cast<Kind>(kinds[cursor++]);
    if (h.kind_ == Kind::kNode) {
      if (rn.is_leaf() || cn.is_leaf()) {
        ok = false;
        return h;
      }
      const ClusterNode* rks[2] = {rn.left.get(), rn.right.get()};
      const ClusterNode* cks[2] = {cn.left.get(), cn.right.get()};
      for (int i = 0; i < 2 && ok; ++i)
        for (int j = 0; j < 2 && ok; ++j)
          h.child_[static_cast<std::size_t>(2 * i + j)] =
              std::make_unique<HMatrix>(build_structure_from(
                  *rks[i], *cks[j], opt, kinds, cursor, ok));
    }
    return h;
  }

  /// Append this subtree's block kinds in DFS pre-order (the order
  /// build_structure_from replays them in).
  void record_kinds(std::vector<std::uint8_t>& out) const {
    out.push_back(static_cast<std::uint8_t>(kind_));
    if (kind_ == Kind::kNode)
      for (const auto& c : child_) c->record_kinds(out);
  }

  HMatrix& child(int i, int j) {
    return *child_[static_cast<std::size_t>(2 * i + j)];
  }
  const HMatrix& child(int i, int j) const {
    return *child_[static_cast<std::size_t>(2 * i + j)];
  }

  template <class F>
  void visit(F&& f) const {
    f(*this);
    if (kind_ == Kind::kNode)
      for (const auto& c : child_) c->visit(f);
  }

  void save_rec(serialize::Writer& w) const {
    w.write_u8(static_cast<std::uint8_t>(kind_));
    switch (kind_) {
      case Kind::kNode:
        for (const auto& c : child_) c->save_rec(w);
        break;
      case Kind::kFull:
        serialize::write_vec(w, piv_);
        la::write_matrix(w, full_);
        break;
      case Kind::kRk:
        la::write_rk(w, rk_);
        break;
    }
  }

  void load_rec(serialize::Reader& in) {
    const auto stored = static_cast<Kind>(in.read_u8());
    if (stored == Kind::kFull && kind_ == Kind::kRk) {
      kind_ = Kind::kFull;  // demoted at build time: accept
    } else if (stored != kind_) {
      throw ClassifiedError(
          ErrorCode::kIo, "ckpt.corrupt",
          "H-matrix block kind does not match the deterministic structure");
    }
    switch (kind_) {
      case Kind::kNode:
        for (auto& c : child_) c->load_rec(in);
        break;
      case Kind::kFull: {
        piv_ = serialize::read_vec<index_t>(in);
        MemoryScope scope(MemTag::kHmatDense);
        full_ = la::read_matrix<T>(in);
        if (full_.rows() != rows() || full_.cols() != cols())
          throw ClassifiedError(ErrorCode::kIo, "ckpt.corrupt",
                                "H-matrix dense leaf dimension mismatch");
        break;
      }
      case Kind::kRk: {
        MemoryScope scope(MemTag::kHmatRk);
        rk_ = la::read_rk<T>(in);
        if (rk_.U.rows() != rows() || rk_.V.rows() != cols() ||
            rk_.U.cols() != rk_.V.cols())
          throw ClassifiedError(ErrorCode::kIo, "ckpt.corrupt",
                                "H-matrix Rk leaf dimension mismatch");
        break;
      }
    }
  }

  // -- assembly -------------------------------------------------------------

  void collect_leaves(std::vector<HMatrix*>& out) {
    if (kind_ == Kind::kNode) {
      for (auto& c : child_) c->collect_leaves(out);
    } else {
      out.push_back(this);
    }
  }

  /// Fill every leaf from the generator. When `hints`/`outcomes` are
  /// given (frequency-sweep warm start) they are indexed by the
  /// deterministic DFS leaf order, so warm-started assembly is identical
  /// at any thread count.
  void fill_from_generator(const MatrixGenerator<T>& gen,
                           const std::vector<index_t>& row_orig,
                           const std::vector<index_t>& col_orig,
                           const std::vector<index_t>* hints = nullptr,
                           std::vector<index_t>* outcomes = nullptr) {
    // Leaves are independent: assemble them in parallel (the paper's
    // multi-threaded H assembly). parallel_for_capture keeps exceptions
    // (e.g. BudgetExceeded) from escaping the parallel region.
    std::vector<HMatrix*> leaves;
    collect_leaves(leaves);
    if (outcomes) outcomes->assign(leaves.size(), BlockSkeleton::kNoHint);
    parallel_for_capture(leaves.size(), [&](std::size_t l) {
      const index_t hint = hints && l < hints->size()
                               ? (*hints)[l]
                               : BlockSkeleton::kNoHint;
      const index_t got = leaves[l]->fill_leaf(gen, row_orig, col_orig, hint);
      if (outcomes) (*outcomes)[l] = got;
    });
  }

  /// Assemble one leaf. Returns the leaf's outcome for the next sweep
  /// frequency: the converged ACA rank, BlockSkeleton::kDenseFallback when
  /// the adaptive compression stagnated, or kNoHint for dense leaves.
  index_t fill_leaf(const MatrixGenerator<T>& gen,
                    const std::vector<index_t>& row_orig,
                    const std::vector<index_t>& col_orig, index_t hint) {
    index_t outcome = BlockSkeleton::kNoHint;
    switch (kind_) {
      case Kind::kNode:
        throw std::logic_error("fill_leaf called on an interior block");
      case Kind::kRk: {
        // Ledger: low-rank leaf storage (and its ACA/RRQR scratch). The
        // scope lives here, inside the per-leaf call, because assembly
        // runs leaves on arbitrary worker threads.
        MemoryScope scope(MemTag::kHmatRk);
        std::vector<index_t> rids(row_orig.begin() + row_->begin,
                                  row_orig.begin() + row_->end);
        std::vector<index_t> cids(col_orig.begin() + col_->begin,
                                  col_orig.begin() + col_->end);
        const index_t cap = std::max<index_t>(
            1, std::min(rows(), cols()) /
                   std::max<index_t>(1, opt_.aca_max_rank_ratio));
        // The failpoint simulates ACA stagnating on this block (rank cap
        // reached without meeting eps): the recovery is the same in-place
        // dense fallback a real non-convergence takes.
        const bool forced_fallback = failpoint("aca.converge");
        // A kDenseFallback hint means ACA stagnated here at the previous
        // frequency: the shifted neighbor skips the doomed run and goes
        // straight to the dense compression the cold path ends in.
        bool fell_back =
            forced_fallback || hint == BlockSkeleton::kDenseFallback;
        if (!fell_back) {
          index_t run_cap = cap;
          if (hint >= 0)
            run_cap = std::min<index_t>(
                cap, hint + BlockSkeleton::kRankHintMargin);
          rk_ = aca_assemble(gen, rids, cids, real_of_t<T>(opt_.eps),
                             run_cap, hint);
          if (run_cap < cap && rk_.rank() >= run_cap) {
            // The hinted cap bound: the block's rank outgrew the
            // warm-start window. Re-run unrestricted so the factors match
            // the cold path's exactly.
            Metrics::instance().add(Metric::kAcaRankHintMisses, 1);
            rk_ = aca_assemble(gen, rids, cids, real_of_t<T>(opt_.eps), cap);
          } else if (run_cap < cap) {
            Metrics::instance().add(Metric::kAcaRankHintHits, 1);
          }
          fell_back = rk_.rank() >= cap && cap < std::min(rows(), cols());
          if (!fell_back) outcome = rk_.rank();
        }
        if (fell_back) {
          // ACA did not converge within the rank cap: fall back to dense
          // evaluation + deterministic compression.
          Metrics::instance().add(Metric::kAcaFallbacks, 1);
          trace_instant("hmat", "aca.fallback");
          la::Matrix<T> dense(rows(), cols());
          for (index_t j = 0; j < cols(); ++j)
            gen.col(cids[static_cast<std::size_t>(j)], rids.data(), rows(),
                    &dense(0, j));
          rk_ = la::rrqr_compress(la::ConstMatrixView<T>(dense.view()),
                                  real_of_t<T>(opt_.eps));
          outcome = BlockSkeleton::kDenseFallback;
        } else {
          // ACA overestimates the rank; recompress (ACA+).
          la::truncate_rk(rk_, real_of_t<T>(opt_.eps));
        }
        demote_if_uneconomical();
        break;
      }
      case Kind::kFull: {
        MemoryScope scope(MemTag::kHmatDense);
        full_ = la::Matrix<T>(rows(), cols());
        std::vector<index_t> rids(row_orig.begin() + row_->begin,
                                  row_orig.begin() + row_->end);
        for (index_t j = 0; j < cols(); ++j)
          gen.col(col_orig[static_cast<std::size_t>(col_->begin + j)],
                  rids.data(), rows(), &full_(0, j));
        break;
      }
    }
    return outcome;
  }

  void fill_from_dense(la::ConstMatrixView<T> dense) {
    // `dense` is the whole matrix in tree coordinates; pick our block.
    switch (kind_) {
      case Kind::kNode:
        for (auto& c : child_) c->fill_from_dense(dense);
        break;
      case Kind::kRk: {
        MemoryScope scope(MemTag::kHmatRk);
        rk_ = la::rrqr_compress(
            dense.block(row_->begin, col_->begin, rows(), cols()),
            real_of_t<T>(opt_.eps));
        demote_if_uneconomical();
        break;
      }
      case Kind::kFull: {
        MemoryScope scope(MemTag::kHmatDense);
        full_ = la::Matrix<T>(rows(), cols());
        full_.view().copy_from(
            dense.block(row_->begin, col_->begin, rows(), cols()));
        break;
      }
    }
  }

  /// Turn an Rk leaf whose factors are bigger than the dense block into a
  /// dense leaf (compression that does not pay is not kept).
  void demote_if_uneconomical() {
    if (kind_ != Kind::kRk) return;
    const offset_t rk_entries =
        static_cast<offset_t>(rk_.rank()) * (rows() + cols());
    if (rk_entries < static_cast<offset_t>(rows()) * cols()) return;
    MemoryScope scope(MemTag::kHmatDense);
    full_ = la::Matrix<T>(rows(), cols());
    la::gemm(T{1}, rk_.U.view(), la::Op::kNoTrans, rk_.V.view(), la::Op::kTrans,
             T{0}, full_.view());
    rk_ = la::RkFactors<T>{};
    kind_ = Kind::kFull;
  }

  void fill_zero() {
    switch (kind_) {
      case Kind::kNode:
        for (auto& c : child_) c->fill_zero();
        break;
      case Kind::kRk: {
        MemoryScope scope(MemTag::kHmatRk);
        rk_.U = la::Matrix<T>(rows(), 0);
        rk_.V = la::Matrix<T>(cols(), 0);
        break;
      }
      case Kind::kFull: {
        MemoryScope scope(MemTag::kHmatDense);
        full_ = la::Matrix<T>(rows(), cols());
        break;
      }
    }
  }

  // -- mat-vec / mat-dense --------------------------------------------------

  /// Y += alpha * op(this) * X, with X, Y spanning this block exactly.
  void mult_add(T alpha, la::ConstMatrixView<T> X, la::MatrixView<T> Y,
                la::Op op) const {
    const index_t nrhs = X.cols();
    switch (kind_) {
      case Kind::kNode: {
        const index_t r0 = row_->begin, c0 = col_->begin;
        for (int i = 0; i < 2; ++i)
          for (int j = 0; j < 2; ++j) {
            const auto& ch = child(i, j);
            const index_t rb = ch.row_->begin - r0, rn = ch.rows();
            const index_t cb = ch.col_->begin - c0, cn = ch.cols();
            if (op == la::Op::kNoTrans) {
              ch.mult_add(alpha, X.block(cb, 0, cn, nrhs),
                          Y.block(rb, 0, rn, nrhs), op);
            } else {
              ch.mult_add(alpha, X.block(rb, 0, rn, nrhs),
                          Y.block(cb, 0, cn, nrhs), op);
            }
          }
        break;
      }
      case Kind::kFull:
        la::gemm(alpha, la::ConstMatrixView<T>(full_.view()), op, X,
                 la::Op::kNoTrans, T{1}, Y);
        break;
      case Kind::kRk: {
        if (rk_.rank() == 0) break;
        la::Matrix<T> tmp(rk_.rank(), nrhs);
        if (op == la::Op::kNoTrans) {
          // Y += alpha U (V^T X).
          la::gemm(T{1}, rk_.V.view(), la::Op::kTrans, X, la::Op::kNoTrans,
                   T{0}, tmp.view());
          la::gemm(alpha, rk_.U.view(), la::Op::kNoTrans,
                   la::ConstMatrixView<T>(tmp.view()), la::Op::kNoTrans, T{1},
                   Y);
        } else {
          // Y += alpha V (U^T X)   [(U V^T)^T = V U^T, plain transpose].
          la::gemm(T{1}, rk_.U.view(), la::Op::kTrans, X, la::Op::kNoTrans,
                   T{0}, tmp.view());
          la::gemm(alpha, rk_.V.view(), la::Op::kNoTrans,
                   la::ConstMatrixView<T>(tmp.view()), la::Op::kNoTrans, T{1},
                   Y);
        }
        break;
      }
    }
  }

  // -- compressed AXPY ------------------------------------------------------

  /// One leaf-local piece of a compressed AXPY: `leaf` accumulates `D`
  /// placed at absolute tree coordinates (row0, col0).
  struct AxpyJob {
    HMatrix* leaf;
    la::ConstMatrixView<T> D;
    index_t row0, col0;
  };

  void collect_axpy_jobs(la::ConstMatrixView<T> D, index_t row0, index_t col0,
                         std::vector<AxpyJob>& out) {
    if (kind_ != Kind::kNode) {
      out.push_back(AxpyJob{this, D, row0, col0});
      return;
    }
    for (const auto& c : child_) {
      // Intersect [row0, row0+m) x [col0, col0+n) with the child.
      const index_t r_lo = std::max(row0, c->row_->begin);
      const index_t r_hi = std::min(row0 + D.rows(), c->row_->end);
      const index_t c_lo = std::max(col0, c->col_->begin);
      const index_t c_hi = std::min(col0 + D.cols(), c->col_->end);
      if (r_lo >= r_hi || c_lo >= c_hi) continue;
      c->collect_axpy_jobs(
          D.block(r_lo - row0, c_lo - col0, r_hi - r_lo, c_hi - c_lo), r_lo,
          c_lo, out);
    }
  }

  void apply_axpy_leaf(T alpha, la::ConstMatrixView<T> D, index_t row0,
                       index_t col0) {
    switch (kind_) {
      case Kind::kNode:
        throw std::logic_error("apply_axpy_leaf on a node");
      case Kind::kFull:
        la::axpy(alpha, D,
                 full_.view().block(row0 - row_->begin, col0 - col_->begin,
                                    D.rows(), D.cols()));
        break;
      case Kind::kRk: {
        // Compress the incoming block, pad into leaf coordinates and
        // recompress (the paper's compressed AXPY with recompression).
        MemoryScope scope(MemTag::kHmatRk);
        auto upd = la::rrqr_compress(D, real_of_t<T>(opt_.eps));
        if (upd.rank() == 0) break;
        const index_t k = upd.rank();
        la::Matrix<T> U(rows(), k);
        la::Matrix<T> V(cols(), k);
        for (index_t c = 0; c < k; ++c) {
          for (index_t i = 0; i < D.rows(); ++i)
            U(row0 - row_->begin + i, c) = alpha * upd.U(i, c);
          for (index_t j = 0; j < D.cols(); ++j)
            V(col0 - col_->begin + j, c) = upd.V(j, c);
        }
        add_rk_factors(U.view(), V.view());
        break;
      }
    }
  }

  /// this(Rk leaf) += U V^T followed by recompression.
  void add_rk_factors(la::ConstMatrixView<T> U, la::ConstMatrixView<T> V) {
    assert(kind_ == Kind::kRk);
    MemoryScope scope(MemTag::kHmatRk);
    const index_t k0 = rk_.rank();
    const index_t k1 = U.cols();
    la::RkFactors<T> merged;
    merged.U = la::Matrix<T>(rows(), k0 + k1);
    merged.V = la::Matrix<T>(cols(), k0 + k1);
    if (k0 > 0) {
      merged.U.block(0, 0, rows(), k0).copy_from(rk_.U.view());
      merged.V.block(0, 0, cols(), k0).copy_from(rk_.V.view());
    }
    merged.U.block(0, k0, rows(), k1).copy_from(U);
    merged.V.block(0, k0, cols(), k1).copy_from(V);
    la::truncate_rk(merged, real_of_t<T>(opt_.eps));
    Metrics::instance().add(Metric::kRecompressions, 1);
    Metrics::instance().observe_max(Metric::kRecompressRankMax,
                                    static_cast<double>(merged.rank()));
    rk_ = std::move(merged);
  }

  /// Generic accumulation this += alpha * (rk over the whole block). For a
  /// node the update restricted to each leaf is independent of the others
  /// (disjoint row/column ranges of the factors, disjoint targets), so the
  /// per-leaf recompressions run in parallel.
  void add_rk(T alpha, const la::RkFactors<T>& rk) {
    if (rk.rank() == 0) return;
    switch (kind_) {
      case Kind::kNode: {
        std::vector<HMatrix*> leaves;
        collect_leaves(leaves);
        const index_t r0 = row_->begin, c0 = col_->begin;
        parallel_for_capture(leaves.size(), [&](std::size_t l) {
          HMatrix* h = leaves[l];
          MemoryScope scope(MemTag::kHmatRk);
          la::RkFactors<T> sub;
          sub.U = la::Matrix<T>(h->rows(), rk.rank());
          sub.V = la::Matrix<T>(h->cols(), rk.rank());
          sub.U.view().copy_from(rk.U.view().block(h->row_->begin - r0, 0,
                                                   h->rows(), rk.rank()));
          sub.V.view().copy_from(rk.V.view().block(h->col_->begin - c0, 0,
                                                   h->cols(), rk.rank()));
          h->add_rk(alpha, sub);
        });
        break;
      }
      case Kind::kFull:
        la::gemm(alpha, rk.U.view(), la::Op::kNoTrans, rk.V.view(),
                 la::Op::kTrans, T{1}, full_.view());
        break;
      case Kind::kRk: {
        MemoryScope scope(MemTag::kHmatRk);
        la::Matrix<T> Ua(rows(), rk.rank());
        for (index_t c = 0; c < rk.rank(); ++c)
          for (index_t i = 0; i < rows(); ++i) Ua(i, c) = alpha * rk.U(i, c);
        add_rk_factors(Ua.view(), rk.V.view());
        break;
      }
    }
  }

  void to_dense_rec(la::MatrixView<T> out, index_t row_origin,
                    index_t col_origin) const {
    switch (kind_) {
      case Kind::kNode:
        for (const auto& c : child_) c->to_dense_rec(out, row_origin, col_origin);
        break;
      case Kind::kFull:
        out.block(row_->begin - row_origin, col_->begin - col_origin, rows(),
                  cols())
            .copy_from(full_.view());
        break;
      case Kind::kRk:
        la::gemm(T{1}, rk_.U.view(), la::Op::kNoTrans, rk_.V.view(),
                 la::Op::kTrans, T{0},
                 out.block(row_->begin - row_origin,
                           col_->begin - col_origin, rows(), cols()));
        break;
    }
  }

  // -- H-LU -----------------------------------------------------------------

  /// Runs `f(depth)` with an OpenMP task pool underneath: a parallel region
  /// whose single initial task is the recursion, with the remaining threads
  /// executing the tasks it spawns. Inside an existing parallel region (or
  /// with one thread) the recursion runs serially with depth 0.
  template <class F>
  static void run_factor_entry(F&& f) {
    if (omp_in_parallel() || omp_get_max_threads() <= 1) {
      f(0);
      return;
    }
    const int depth = task_depth();
    std::exception_ptr error = nullptr;
#pragma omp parallel default(shared)
    {
#pragma omp single
      {
        try {
          f(depth);
        } catch (...) {
          error = std::current_exception();
        }
      }
    }
    if (error) std::rethrow_exception(error);
  }

  void lu_rec(int depth = 0) {
    switch (kind_) {
      case Kind::kFull:
        if (failpoint("hlu.pivot")) throw la::SingularMatrix(row_->begin);
        la::lu_factor(full_.view(), piv_);
        break;
      case Kind::kRk:
        throw std::logic_error("diagonal H block cannot be low-rank");
      case Kind::kNode: {
        child(0, 0).lu_rec(depth);
        // The two off-diagonal panel solves touch disjoint blocks.
        run_task_group(
            depth,
            {[&] { solve_lower_h(child(0, 0), child(0, 1), depth - 1); },
             [&] {
               solve_upper_right_h(child(0, 0), child(1, 0), depth - 1);
             }});
        gemm_h(T{-1}, child(1, 0), child(0, 1), child(1, 1), depth);
        child(1, 1).lu_rec(depth);
        break;
      }
    }
  }

  // -- H-LDLT ---------------------------------------------------------------

  void ldlt_rec(int depth = 0) {
    switch (kind_) {
      case Kind::kFull:
        if (failpoint("hldlt.pivot")) throw la::SingularMatrix(row_->begin);
        la::ldlt_factor(full_.view());
        break;
      case Kind::kRk:
        throw std::logic_error("diagonal H block cannot be low-rank");
      case Kind::kNode: {
        child(0, 0).ldlt_rec(depth);
        // A10 := A10 L00^{-T} D00^{-1}.
        solve_ldlt_right_h(child(0, 0), child(1, 0), depth);
        // A11 -= A10 D00 A10^T. (The update also refreshes A11's upper
        // blocks; only diagonal/lower are read afterwards.)
        std::vector<T> d(static_cast<std::size_t>(child(0, 0).rows()));
        gather_diag(child(0, 0), d.data());
        gemm_d(T{-1}, child(1, 0), d.data(), child(1, 0), child(1, 1), depth);
        child(1, 1).ldlt_rec(depth);
        break;
      }
    }
  }

  /// Collect the diagonal of a factored (LDLT) diagonal block.
  static void gather_diag(const HMatrix& A, T* out) {
    if (A.kind_ == Kind::kFull) {
      for (index_t k = 0; k < A.rows(); ++k) out[k] = A.full_(k, k);
      return;
    }
    assert(A.kind_ == Kind::kNode);
    gather_diag(A.child(0, 0), out);
    gather_diag(A.child(1, 1), out + A.child(0, 0).rows());
  }

  /// M(k, :) *= D_A(k) or /= D_A(k); the diagonal lives in the factored
  /// dense diagonal leaves of A.
  static void scale_by_diag_impl(const HMatrix& A, la::MatrixView<T> M,
                                 bool inverse) {
    if (A.kind_ == Kind::kFull) {
      for (index_t k = 0; k < A.rows(); ++k) {
        const T d = A.full_(k, k);
        const T s = inverse ? T{1} / d : d;
        for (index_t j = 0; j < M.cols(); ++j) M(k, j) *= s;
      }
      return;
    }
    assert(A.kind_ == Kind::kNode);
    const index_t n0 = A.child(0, 0).rows();
    scale_by_diag_impl(A.child(0, 0), M.block(0, 0, n0, M.cols()), inverse);
    scale_by_diag_impl(A.child(1, 1),
                       M.block(n0, 0, M.rows() - n0, M.cols()), inverse);
  }
  static void scale_by_diag(const HMatrix& A, la::MatrixView<T> M) {
    scale_by_diag_impl(A, M, false);
  }
  static void scale_by_diag_inv(const HMatrix& A, la::MatrixView<T> M) {
    scale_by_diag_impl(A, M, true);
  }

  /// M := L_A^{-1} M (unit lower of an LDLT-factored A; no pivots).
  static void forward_unit_lower(const HMatrix& A, la::MatrixView<T> M) {
    if (A.kind_ == Kind::kFull) {
      la::trsm(la::Side::kLeft, la::Uplo::kLower, la::Op::kNoTrans,
               la::Diag::kUnit, A.full_.view(), M);
      return;
    }
    assert(A.kind_ == Kind::kNode);
    const index_t n0 = A.child(0, 0).rows();
    auto M0 = M.block(0, 0, n0, M.cols());
    auto M1 = M.block(n0, 0, M.rows() - n0, M.cols());
    forward_unit_lower(A.child(0, 0), M0);
    A.child(1, 0).mult_add(T{-1}, la::ConstMatrixView<T>(M0), M1,
                           la::Op::kNoTrans);
    forward_unit_lower(A.child(1, 1), M1);
  }

  /// M := L_A^{-T} M.
  static void backward_unit_lower_trans(const HMatrix& A,
                                        la::MatrixView<T> M) {
    if (A.kind_ == Kind::kFull) {
      la::trsm(la::Side::kLeft, la::Uplo::kLower, la::Op::kTrans,
               la::Diag::kUnit, A.full_.view(), M);
      return;
    }
    assert(A.kind_ == Kind::kNode);
    const index_t n0 = A.child(0, 0).rows();
    auto M0 = M.block(0, 0, n0, M.cols());
    auto M1 = M.block(n0, 0, M.rows() - n0, M.cols());
    backward_unit_lower_trans(A.child(1, 1), M1);
    A.child(1, 0).mult_add(T{-1}, la::ConstMatrixView<T>(M1), M0,
                           la::Op::kTrans);
    backward_unit_lower_trans(A.child(0, 0), M0);
  }

  /// B := B L_A^{-T} D_A^{-1} for an H operand (the LDLT panel transform).
  static void solve_ldlt_right_h(const HMatrix& A, HMatrix& B,
                                 int depth = 0) {
    switch (B.kind_) {
      case Kind::kRk:
        // (U V^T) L^{-T} D^{-1} = U (D^{-1} L^{-1} V)^T.
        if (B.rk_.rank() > 0) {
          forward_unit_lower(A, B.rk_.V.view());
          scale_by_diag_inv(A, B.rk_.V.view());
        }
        return;
      case Kind::kFull: {
        // B := B L^{-T} D^{-1}  <=>  B^T := D^{-1} L^{-1} B^T.
        la::Matrix<T> Bt(B.full_.cols(), B.full_.rows());
        la::transpose_into(la::ConstMatrixView<T>(B.full_.view()), Bt.view());
        forward_unit_lower(A, Bt.view());
        scale_by_diag_inv(A, Bt.view());
        la::transpose_into(la::ConstMatrixView<T>(Bt.view()), B.full_.view());
        return;
      }
      case Kind::kNode: {
        assert(A.kind_ == Kind::kNode);
        run_task_group(
            depth,
            {[&] {
               solve_ldlt_right_h(A.child(0, 0), B.child(0, 0), depth - 1);
             },
             [&] {
               solve_ldlt_right_h(A.child(0, 0), B.child(1, 0), depth - 1);
             }});
        // B*1 := (B*1 - B*0 D00 L10^T) L11^{-T} D1^{-1}.
        std::vector<T> d(static_cast<std::size_t>(A.child(0, 0).rows()));
        gather_diag(A.child(0, 0), d.data());
        run_task_group(depth,
                       {[&] {
                          gemm_d(T{-1}, B.child(0, 0), d.data(),
                                 A.child(1, 0), B.child(0, 1), depth - 1);
                        },
                        [&] {
                          gemm_d(T{-1}, B.child(1, 0), d.data(),
                                 A.child(1, 0), B.child(1, 1), depth - 1);
                        }});
        run_task_group(
            depth,
            {[&] {
               solve_ldlt_right_h(A.child(1, 1), B.child(0, 1), depth - 1);
             },
             [&] {
               solve_ldlt_right_h(A.child(1, 1), B.child(1, 1), depth - 1);
             }});
        return;
      }
    }
  }

  /// C += alpha * X diag(d) Y^T (d spans the shared column cluster of X
  /// and Y; Y is used transposed, so its *rows* match C's columns). The
  /// four target quadrants are disjoint: they fan out as tasks, each
  /// accumulating its own l-contributions in the serial order.
  static void gemm_d(T alpha, const HMatrix& X, const T* d, const HMatrix& Y,
                     HMatrix& C, int depth = 0) {
    if (X.kind_ == Kind::kNode && Y.kind_ == Kind::kNode &&
        C.kind_ == Kind::kNode) {
      const index_t k0 = X.child(0, 0).cols();
      std::vector<std::function<void()>> quads;
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
          quads.push_back([&, i, j] {
            for (int l = 0; l < 2; ++l)
              gemm_d(alpha, X.child(i, l), l == 0 ? d : d + k0,
                     Y.child(j, l), C.child(i, j), depth - 1);
          });
      run_task_group(depth, std::move(quads));
      return;
    }
    la::RkFactors<T> rk = multiply_to_rk_d(X, d, Y);
    C.add_rk(alpha, rk);
  }

  /// X diag(d) Y^T as rank-k factors.
  static la::RkFactors<T> multiply_to_rk_d(const HMatrix& X, const T* d,
                                           const HMatrix& Y) {
    const real_of_t<T> eps = real_of_t<T>(X.opt_.eps);
    la::RkFactors<T> out;
    if (X.kind_ == Kind::kRk) {
      // (Ux Vx^T) D Y^T = Ux (Y (D Vx))^T.
      la::Matrix<T> W = X.rk_.V;
      for (index_t c = 0; c < W.cols(); ++c)
        for (index_t i = 0; i < W.rows(); ++i) W(i, c) *= d[i];
      out.U = X.rk_.U;
      out.V = la::Matrix<T>(Y.rows(), X.rk_.rank());
      if (X.rk_.rank() > 0)
        Y.mult_add(T{1}, la::ConstMatrixView<T>(W.view()), out.V.view(),
                   la::Op::kNoTrans);
      return out;
    }
    if (Y.kind_ == Kind::kRk) {
      // X D (Uy Vy^T)^T = (X (D Vy)) Uy^T.
      la::Matrix<T> W = Y.rk_.V;
      for (index_t c = 0; c < W.cols(); ++c)
        for (index_t i = 0; i < W.rows(); ++i) W(i, c) *= d[i];
      out.U = la::Matrix<T>(X.rows(), Y.rk_.rank());
      if (Y.rk_.rank() > 0)
        X.mult_add(T{1}, la::ConstMatrixView<T>(W.view()), out.U.view(),
                   la::Op::kNoTrans);
      out.V = Y.rk_.U;
      return out;
    }
    if (X.kind_ == Kind::kFull && Y.kind_ == Kind::kFull) {
      // Factors ((X D), Y): rank bounded by the shared dimension.
      out.U = X.full_;
      for (index_t c = 0; c < out.U.cols(); ++c)
        for (index_t i = 0; i < out.U.rows(); ++i) out.U(i, c) *= d[c];
      out.V = Y.full_;
      la::truncate_rk(out, eps);
      return out;
    }
    if (X.kind_ == Kind::kNode && Y.kind_ == Kind::kNode) {
      // Quadrant merge, as in multiply_to_rk.
      const index_t k0 = X.child(0, 0).cols();
      std::array<la::RkFactors<T>, 4> quads;
      index_t total_rank = 0;
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) {
          auto r0 = multiply_to_rk_d(X.child(i, 0), d, Y.child(j, 0));
          auto r1 = multiply_to_rk_d(X.child(i, 1), d + k0, Y.child(j, 1));
          la::RkFactors<T> q;
          const index_t m = X.child(i, 0).rows();
          const index_t n = Y.child(j, 0).rows();
          q.U = la::Matrix<T>(m, r0.rank() + r1.rank());
          q.V = la::Matrix<T>(n, r0.rank() + r1.rank());
          if (r0.rank() > 0) {
            q.U.block(0, 0, m, r0.rank()).copy_from(r0.U.view());
            q.V.block(0, 0, n, r0.rank()).copy_from(r0.V.view());
          }
          if (r1.rank() > 0) {
            q.U.block(0, r0.rank(), m, r1.rank()).copy_from(r1.U.view());
            q.V.block(0, r0.rank(), n, r1.rank()).copy_from(r1.V.view());
          }
          la::truncate_rk(q, eps);
          total_rank += q.rank();
          quads[static_cast<std::size_t>(2 * i + j)] = std::move(q);
        }
      const index_t m0 = X.child(0, 0).rows(), m1 = X.child(1, 0).rows();
      const index_t n0 = Y.child(0, 0).rows(), n1 = Y.child(1, 0).rows();
      out.U = la::Matrix<T>(m0 + m1, total_rank);
      out.V = la::Matrix<T>(n0 + n1, total_rank);
      index_t at = 0;
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) {
          const auto& q = quads[static_cast<std::size_t>(2 * i + j)];
          if (q.rank() == 0) continue;
          out.U.block(i == 0 ? 0 : m0, at, q.U.rows(), q.rank())
              .copy_from(q.U.view());
          out.V.block(j == 0 ? 0 : n0, at, q.V.rows(), q.rank())
              .copy_from(q.V.view());
          at += q.rank();
        }
      la::truncate_rk(out, eps);
      return out;
    }
    // Mixed Full x Node: fall back through an identity factor.
    if (X.kind_ == Kind::kFull) {
      // X (m x k) dense, Y node: result = X D Y^T = ((X D)) (Y)^T via
      // V = Y (D X^T)^T? Use rank-m identity: U = I_m, V = Y (D X^T cols).
      const index_t m = X.rows();
      la::Matrix<T> XDt(X.cols(), m);  // (X D)^T = D X^T
      for (index_t j = 0; j < X.cols(); ++j)
        for (index_t i = 0; i < m; ++i) XDt(j, i) = X.full_(i, j) * d[j];
      out.V = la::Matrix<T>(Y.rows(), m);
      Y.mult_add(T{1}, la::ConstMatrixView<T>(XDt.view()), out.V.view(),
                 la::Op::kNoTrans);
      out.U = la::Matrix<T>::identity(m);
      la::truncate_rk(out, eps);
      return out;
    }
    // X node, Y Full: U = X (D Y^T cols) = X (D applied to Y's rows)^T...
    {
      const index_t n = Y.rows();
      la::Matrix<T> DYt(Y.cols(), n);  // (Y D)^T? we need X D Y^T: W = D Y^T
      for (index_t j = 0; j < Y.cols(); ++j)
        for (index_t i = 0; i < n; ++i) DYt(j, i) = Y.full_(i, j) * d[j];
      out.U = la::Matrix<T>(X.rows(), n);
      X.mult_add(T{1}, la::ConstMatrixView<T>(DYt.view()), out.U.view(),
                 la::Op::kNoTrans);
      out.V = la::Matrix<T>::identity(n);
      la::truncate_rk(out, eps);
      return out;
    }
  }

  /// M := L_A^{-1} (P_A applied) M for dense M spanning A's rows.
  static void solve_lower_dense(const HMatrix& A, la::MatrixView<T> M) {
    if (A.kind_ == Kind::kFull) {
      la::lu_apply_pivots(A.piv_, M);
      la::trsm(la::Side::kLeft, la::Uplo::kLower, la::Op::kNoTrans,
               la::Diag::kUnit, A.full_.view(), M);
      return;
    }
    assert(A.kind_ == Kind::kNode);
    const index_t n0 = A.child(0, 0).rows();
    const index_t n1 = A.child(1, 1).rows();
    auto M0 = M.block(0, 0, n0, M.cols());
    auto M1 = M.block(n0, 0, n1, M.cols());
    solve_lower_dense(A.child(0, 0), M0);
    A.child(1, 0).mult_add(T{-1}, la::ConstMatrixView<T>(M0), M1,
                           la::Op::kNoTrans);
    solve_lower_dense(A.child(1, 1), M1);
  }

  /// M := U_A^{-1} M for dense M spanning A's rows.
  static void solve_upper_dense(const HMatrix& A, la::MatrixView<T> M) {
    if (A.kind_ == Kind::kFull) {
      la::trsm(la::Side::kLeft, la::Uplo::kUpper, la::Op::kNoTrans,
               la::Diag::kNonUnit, A.full_.view(), M);
      return;
    }
    assert(A.kind_ == Kind::kNode);
    const index_t n0 = A.child(0, 0).rows();
    const index_t n1 = A.child(1, 1).rows();
    auto M0 = M.block(0, 0, n0, M.cols());
    auto M1 = M.block(n0, 0, n1, M.cols());
    solve_upper_dense(A.child(1, 1), M1);
    A.child(0, 1).mult_add(T{-1}, la::ConstMatrixView<T>(M1), M0,
                           la::Op::kNoTrans);
    solve_upper_dense(A.child(0, 0), M0);
  }

  /// M := U_A^{-T} M for dense M spanning A's columns (used to push an
  /// upper solve through the V factor of an Rk block).
  static void solve_upper_trans_dense(const HMatrix& A, la::MatrixView<T> M) {
    if (A.kind_ == Kind::kFull) {
      la::trsm(la::Side::kLeft, la::Uplo::kUpper, la::Op::kTrans,
               la::Diag::kNonUnit, A.full_.view(), M);
      return;
    }
    assert(A.kind_ == Kind::kNode);
    const index_t n0 = A.child(0, 0).cols();
    const index_t n1 = A.child(1, 1).cols();
    auto M0 = M.block(0, 0, n0, M.cols());
    auto M1 = M.block(n0, 0, n1, M.cols());
    solve_upper_trans_dense(A.child(0, 0), M0);
    A.child(0, 1).mult_add(T{-1}, la::ConstMatrixView<T>(M0), M1,
                           la::Op::kTrans);
    solve_upper_trans_dense(A.child(1, 1), M1);
  }

  /// B := L_A^{-1} B (H-operand forward solve). The two column panels of a
  /// node B are independent throughout; each of the three stages (top
  /// solves, Schur updates, bottom solves) runs its pair as tasks.
  static void solve_lower_h(const HMatrix& A, HMatrix& B, int depth = 0) {
    switch (B.kind_) {
      case Kind::kRk:
        if (B.rk_.rank() > 0) solve_lower_dense(A, B.rk_.U.view());
        return;
      case Kind::kFull:
        solve_lower_dense(A, B.full_.view());
        return;
      case Kind::kNode: {
        assert(A.kind_ == Kind::kNode);
        run_task_group(
            depth,
            {[&] { solve_lower_h(A.child(0, 0), B.child(0, 0), depth - 1); },
             [&] {
               solve_lower_h(A.child(0, 0), B.child(0, 1), depth - 1);
             }});
        run_task_group(depth,
                       {[&] {
                          gemm_h(T{-1}, A.child(1, 0), B.child(0, 0),
                                 B.child(1, 0), depth - 1);
                        },
                        [&] {
                          gemm_h(T{-1}, A.child(1, 0), B.child(0, 1),
                                 B.child(1, 1), depth - 1);
                        }});
        run_task_group(
            depth,
            {[&] { solve_lower_h(A.child(1, 1), B.child(1, 0), depth - 1); },
             [&] {
               solve_lower_h(A.child(1, 1), B.child(1, 1), depth - 1);
             }});
        return;
      }
    }
  }

  /// B := B * U_A^{-1} (H-operand right upper solve); the two row panels of
  /// a node B are the independent units.
  static void solve_upper_right_h(const HMatrix& A, HMatrix& B,
                                  int depth = 0) {
    switch (B.kind_) {
      case Kind::kRk:
        // (U V^T) U_A^{-1} = U (U_A^{-T} V)^T.
        if (B.rk_.rank() > 0) solve_upper_trans_dense(A, B.rk_.V.view());
        return;
      case Kind::kFull: {
        // B := B U_A^{-1}  <=>  B^T := U_A^{-T} B^T.
        la::Matrix<T> Bt(B.full_.cols(), B.full_.rows());
        la::transpose_into(la::ConstMatrixView<T>(B.full_.view()), Bt.view());
        solve_upper_trans_dense(A, Bt.view());
        la::transpose_into(la::ConstMatrixView<T>(Bt.view()), B.full_.view());
        return;
      }
      case Kind::kNode: {
        assert(A.kind_ == Kind::kNode);
        run_task_group(depth,
                       {[&] {
                          solve_upper_right_h(A.child(0, 0), B.child(0, 0),
                                              depth - 1);
                        },
                        [&] {
                          solve_upper_right_h(A.child(0, 0), B.child(1, 0),
                                              depth - 1);
                        }});
        run_task_group(depth,
                       {[&] {
                          gemm_h(T{-1}, B.child(0, 0), A.child(0, 1),
                                 B.child(0, 1), depth - 1);
                        },
                        [&] {
                          gemm_h(T{-1}, B.child(1, 0), A.child(0, 1),
                                 B.child(1, 1), depth - 1);
                        }});
        run_task_group(depth,
                       {[&] {
                          solve_upper_right_h(A.child(1, 1), B.child(0, 1),
                                              depth - 1);
                        },
                        [&] {
                          solve_upper_right_h(A.child(1, 1), B.child(1, 1),
                                              depth - 1);
                        }});
        return;
      }
    }
  }

  /// C += alpha * A * B with truncation at C's eps. Node x node x node
  /// fans out over the four disjoint target quadrants; within a quadrant
  /// the two l-contributions accumulate in the serial order, keeping the
  /// recompression sequence (and hence the result) identical to a serial
  /// run.
  static void gemm_h(T alpha, const HMatrix& A, const HMatrix& B, HMatrix& C,
                     int depth = 0) {
    if (A.kind_ == Kind::kNode && B.kind_ == Kind::kNode &&
        C.kind_ == Kind::kNode) {
      std::vector<std::function<void()>> quads;
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
          quads.push_back([&, i, j] {
            for (int l = 0; l < 2; ++l)
              gemm_h(alpha, A.child(i, l), B.child(l, j), C.child(i, j),
                     depth - 1);
          });
      run_task_group(depth, std::move(quads));
      return;
    }
    // Leaf-involving product: compute as rank-k and accumulate.
    la::RkFactors<T> rk = multiply_to_rk(A, B);
    C.add_rk(alpha, rk);
  }

  /// A * B as rank-k factors (truncated at A's eps).
  static la::RkFactors<T> multiply_to_rk(const HMatrix& A, const HMatrix& B) {
    const real_of_t<T> eps = real_of_t<T>(A.opt_.eps);
    la::RkFactors<T> out;
    if (A.kind_ == Kind::kRk) {
      // (U V^T) B = U (B^T V)^T.
      out.U = A.rk_.U;
      out.V = la::Matrix<T>(B.cols(), A.rk_.rank());
      if (A.rk_.rank() > 0)
        B.mult_add(T{1}, la::ConstMatrixView<T>(A.rk_.V.view()), out.V.view(),
                   la::Op::kTrans);
      return out;
    }
    if (B.kind_ == Kind::kRk) {
      // A (U V^T) = (A U) V^T.
      out.U = la::Matrix<T>(A.rows(), B.rk_.rank());
      if (B.rk_.rank() > 0)
        A.mult_add(T{1}, la::ConstMatrixView<T>(B.rk_.U.view()), out.U.view(),
                   la::Op::kNoTrans);
      out.V = B.rk_.V;
      return out;
    }
    if (A.kind_ == Kind::kFull && B.kind_ == Kind::kFull) {
      // Rank bounded by the small shared dimension: factors (A, B^T).
      out.U = A.full_;
      out.V = la::Matrix<T>(B.full_.cols(), B.full_.rows());
      la::transpose_into(la::ConstMatrixView<T>(B.full_.view()),
                         out.V.view());
      la::truncate_rk(out, eps);
      return out;
    }
    if (A.kind_ == Kind::kNode && B.kind_ == Kind::kNode) {
      // Quadrant products, merged and truncated.
      std::array<la::RkFactors<T>, 4> quads;
      index_t total_rank = 0;
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) {
          auto r0 = multiply_to_rk(A.child(i, 0), B.child(0, j));
          auto r1 = multiply_to_rk(A.child(i, 1), B.child(1, j));
          // Merge the two contributions of this quadrant.
          la::RkFactors<T> q;
          const index_t m = A.child(i, 0).rows();
          const index_t n = B.child(0, j).cols();
          q.U = la::Matrix<T>(m, r0.rank() + r1.rank());
          q.V = la::Matrix<T>(n, r0.rank() + r1.rank());
          if (r0.rank() > 0) {
            q.U.block(0, 0, m, r0.rank()).copy_from(r0.U.view());
            q.V.block(0, 0, n, r0.rank()).copy_from(r0.V.view());
          }
          if (r1.rank() > 0) {
            q.U.block(0, r0.rank(), m, r1.rank()).copy_from(r1.U.view());
            q.V.block(0, r0.rank(), n, r1.rank()).copy_from(r1.V.view());
          }
          la::truncate_rk(q, eps);
          total_rank += q.rank();
          quads[static_cast<std::size_t>(2 * i + j)] = std::move(q);
        }
      // Assemble the 2x2 quadrants into one factorization.
      const index_t m0 = A.child(0, 0).rows(), m1 = A.child(1, 0).rows();
      const index_t n0 = B.child(0, 0).cols(), n1 = B.child(0, 1).cols();
      out.U = la::Matrix<T>(m0 + m1, total_rank);
      out.V = la::Matrix<T>(n0 + n1, total_rank);
      index_t at = 0;
      for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j) {
          const auto& q = quads[static_cast<std::size_t>(2 * i + j)];
          if (q.rank() == 0) continue;
          const index_t rb = (i == 0) ? 0 : m0;
          const index_t cb = (j == 0) ? 0 : n0;
          out.U.block(rb, at, q.U.rows(), q.rank()).copy_from(q.U.view());
          out.V.block(cb, at, q.V.rows(), q.rank()).copy_from(q.V.view());
          at += q.rank();
        }
      la::truncate_rk(out, eps);
      return out;
    }
    // Mixed Full x Node: A dense with few rows (its row cluster is a leaf,
    // its column cluster is not). Rank is bounded by A's row count.
    if (A.kind_ == Kind::kFull && B.kind_ == Kind::kNode) {
      const index_t m = A.rows();
      la::Matrix<T> At(A.cols(), m);
      for (index_t j = 0; j < A.cols(); ++j)
        for (index_t i = 0; i < m; ++i) At(j, i) = A.full_(i, j);
      out.V = la::Matrix<T>(B.cols(), m);  // V = (A B)^T = B^T A^T
      B.mult_add(T{1}, la::ConstMatrixView<T>(At.view()), out.V.view(),
                 la::Op::kTrans);
      out.U = la::Matrix<T>::identity(m);
      la::truncate_rk(out, eps);
      return out;
    }
    // Mixed Node x Full: B dense with few columns.
    if (A.kind_ == Kind::kNode && B.kind_ == Kind::kFull) {
      const index_t n = B.cols();
      out.U = la::Matrix<T>(A.rows(), n);
      A.mult_add(T{1}, la::ConstMatrixView<T>(B.full_.view()), out.U.view(),
                 la::Op::kNoTrans);
      out.V = la::Matrix<T>::identity(n);
      la::truncate_rk(out, eps);
      return out;
    }
    throw std::logic_error("inconsistent H-matrix block structures in gemm");
  }

  const ClusterNode* row_ = nullptr;
  const ClusterNode* col_ = nullptr;
  HOptions opt_;
  Kind kind_ = Kind::kFull;
  std::array<std::unique_ptr<HMatrix>, 4> child_;
  la::Matrix<T> full_;
  la::RkFactors<T> rk_;
  std::vector<index_t> piv_;
  bool factored_ = false;
  bool ldlt_ = false;
};

/// Generator adapter around a stored dense matrix (original coordinates).
template <class T>
class DenseGenerator final : public MatrixGenerator<T> {
 public:
  explicit DenseGenerator(la::ConstMatrixView<T> m) : m_(m) {}
  index_t rows() const override { return m_.rows(); }
  index_t cols() const override { return m_.cols(); }
  T entry(index_t i, index_t j) const override { return m_(i, j); }

 private:
  la::ConstMatrixView<T> m_;
};

}  // namespace cs::hmat
