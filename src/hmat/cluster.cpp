#include "hmat/cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace cs::hmat {

double BoundingBox::diameter() const {
  const double dx = hi.x - lo.x;
  const double dy = hi.y - lo.y;
  const double dz = hi.z - lo.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

double BoundingBox::distance(const BoundingBox& a, const BoundingBox& b) {
  auto axis_gap = [](double alo, double ahi, double blo, double bhi) {
    if (ahi < blo) return blo - ahi;
    if (bhi < alo) return alo - bhi;
    return 0.0;
  };
  const double gx = axis_gap(a.lo.x, a.hi.x, b.lo.x, b.hi.x);
  const double gy = axis_gap(a.lo.y, a.hi.y, b.lo.y, b.hi.y);
  const double gz = axis_gap(a.lo.z, a.hi.z, b.lo.z, b.hi.z);
  return std::sqrt(gx * gx + gy * gy + gz * gz);
}

namespace {

BoundingBox bbox_of(const std::vector<index_t>& ids, index_t begin,
                    index_t end, const std::vector<Point3>& points) {
  BoundingBox box;
  box.lo = {std::numeric_limits<double>::max(),
            std::numeric_limits<double>::max(),
            std::numeric_limits<double>::max()};
  box.hi = {std::numeric_limits<double>::lowest(),
            std::numeric_limits<double>::lowest(),
            std::numeric_limits<double>::lowest()};
  for (index_t k = begin; k < end; ++k) {
    const Point3& p = points[static_cast<std::size_t>(
        ids[static_cast<std::size_t>(k)])];
    box.lo.x = std::min(box.lo.x, p.x);
    box.lo.y = std::min(box.lo.y, p.y);
    box.lo.z = std::min(box.lo.z, p.z);
    box.hi.x = std::max(box.hi.x, p.x);
    box.hi.y = std::max(box.hi.y, p.y);
    box.hi.z = std::max(box.hi.z, p.z);
  }
  return box;
}

}  // namespace

ClusterTree::ClusterTree(const std::vector<Point3>& points, index_t leaf_size)
    : leaf_size_(std::max<index_t>(1, leaf_size)) {
  const index_t n = static_cast<index_t>(points.size());
  std::vector<index_t> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  root_ = build(ids, 0, n, points);
  iperm_ = std::move(ids);
  perm_.resize(static_cast<std::size_t>(n));
  for (index_t p = 0; p < n; ++p)
    perm_[static_cast<std::size_t>(iperm_[static_cast<std::size_t>(p)])] = p;
}

std::unique_ptr<ClusterNode> ClusterTree::build(
    std::vector<index_t>& ids, index_t begin, index_t end,
    const std::vector<Point3>& points) {
  auto node = std::make_unique<ClusterNode>();
  node->begin = begin;
  node->end = end;
  node->box = bbox_of(ids, begin, end, points);
  if (end - begin <= leaf_size_) return node;

  // Median split along the longest axis of the bounding box.
  const double dx = node->box.hi.x - node->box.lo.x;
  const double dy = node->box.hi.y - node->box.lo.y;
  const double dz = node->box.hi.z - node->box.lo.z;
  auto coord = [&](index_t id) {
    const Point3& p = points[static_cast<std::size_t>(id)];
    if (dx >= dy && dx >= dz) return p.x;
    if (dy >= dz) return p.y;
    return p.z;
  };
  const index_t mid = begin + (end - begin) / 2;
  std::nth_element(ids.begin() + begin, ids.begin() + mid, ids.begin() + end,
                   [&](index_t a, index_t b) { return coord(a) < coord(b); });
  node->left = build(ids, begin, mid, points);
  node->right = build(ids, mid, end, points);
  return node;
}

namespace {
index_t count_nodes(const ClusterNode& n) {
  if (n.is_leaf()) return 1;
  return 1 + count_nodes(*n.left) + count_nodes(*n.right);
}
index_t depth_of(const ClusterNode& n) {
  if (n.is_leaf()) return 1;
  return 1 + std::max(depth_of(*n.left), depth_of(*n.right));
}
}  // namespace

index_t ClusterTree::node_count() const { return count_nodes(*root_); }
index_t ClusterTree::depth() const { return depth_of(*root_); }

bool admissible(const ClusterNode& rows, const ClusterNode& cols, double eta) {
  const double dist = BoundingBox::distance(rows.box, cols.box);
  if (dist <= 0.0) return false;
  return std::min(rows.box.diameter(), cols.box.diameter()) <= eta * dist;
}

}  // namespace cs::hmat
