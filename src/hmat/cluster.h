// Geometric cluster trees for hierarchical (H-) matrices.
//
// The BEM surface unknowns carry 3D coordinates; the cluster tree
// recursively bisects them along the longest bounding-box axis (median
// split) until leaves hold at most `leaf_size` points. Block admissibility
// uses the standard eta-criterion
//     min(diam(rows), diam(cols)) <= eta * dist(rows, cols),
// which makes well-separated interaction blocks low-rank for asymptotically
// smooth kernels (Laplace/Helmholtz single layer).
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "common/types.h"

namespace cs::hmat {

struct Point3 {
  double x = 0, y = 0, z = 0;
};

struct BoundingBox {
  Point3 lo, hi;

  double diameter() const;
  /// Euclidean distance between boxes (0 if they intersect).
  static double distance(const BoundingBox& a, const BoundingBox& b);
};

/// A node of the cluster tree: a contiguous range [begin, end) of the
/// tree-ordered point permutation.
struct ClusterNode {
  index_t begin = 0;
  index_t end = 0;
  BoundingBox box;
  std::unique_ptr<ClusterNode> left;
  std::unique_ptr<ClusterNode> right;

  index_t size() const { return end - begin; }
  bool is_leaf() const { return left == nullptr; }
};

/// Cluster tree over a point set. `tree_of_original[i]` is the tree-order
/// position of original point i; `original_of_tree[p]` the inverse.
class ClusterTree {
 public:
  ClusterTree(const std::vector<Point3>& points, index_t leaf_size);

  const ClusterNode& root() const { return *root_; }
  index_t size() const { return static_cast<index_t>(perm_.size()); }
  index_t leaf_size() const { return leaf_size_; }

  const std::vector<index_t>& tree_of_original() const { return perm_; }
  const std::vector<index_t>& original_of_tree() const { return iperm_; }

  /// Number of nodes / depth (diagnostics and tests).
  index_t node_count() const;
  index_t depth() const;

 private:
  std::unique_ptr<ClusterNode> build(std::vector<index_t>& ids, index_t begin,
                                     index_t end,
                                     const std::vector<Point3>& points);

  std::unique_ptr<ClusterNode> root_;
  std::vector<index_t> perm_;   // original -> tree position
  std::vector<index_t> iperm_;  // tree position -> original
  index_t leaf_size_ = 0;
};

/// Standard eta-admissibility.
bool admissible(const ClusterNode& rows, const ClusterNode& cols, double eta);

}  // namespace cs::hmat
