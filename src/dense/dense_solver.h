// Non-compressed dense direct solver ("SPIDO" analogue): blocked LDL^T for
// symmetric matrices, blocked LU with partial pivoting otherwise, over the
// cache-blocked kernels of src/la. It intentionally offers the same minimal
// factorize/solve surface as the H-matrix solver so the coupled algorithms
// can swap the dense backend (baseline MUMPS/SPIDO coupling vs compressed
// MUMPS/HMAT coupling) without code changes.
#pragma once

#include <stdexcept>
#include <utility>

#include "common/failpoint.h"
#include "common/memory.h"
#include "common/serialize.h"
#include "la/factor.h"
#include "la/io.h"
#include "la/matrix.h"

namespace cs::dense {

template <class T>
class DenseSolver {
 public:
  /// Factorize in place, taking ownership of the matrix storage (the Schur
  /// complement is large; the caller must not keep a second copy).
  void factorize(la::Matrix<T>&& A, bool symmetric) {
    if (A.rows() != A.cols())
      throw std::invalid_argument("dense solver needs a square matrix");
    a_ = std::move(A);
    symmetric_ = symmetric;
    if (failpoint("dense.factor")) throw la::SingularMatrix(0);
    // Wider panels amortize better over the packed gemm engine once the
    // trailing updates dominate; small problems keep the default width so
    // the unblocked panel work stays a small fraction.
    const index_t nb = a_.rows() >= 2048 ? 192 : 96;
    if (symmetric_) {
      la::ldlt_factor(a_.view(), nb);
    } else {
      la::lu_factor(a_.view(), piv_, nb);
    }
    factored_ = true;
  }

  /// In-place solve A X = B.
  void solve(la::MatrixView<T> B) const {
    if (!factored_) throw std::logic_error("solve() before factorize()");
    if (B.rows() != a_.rows())
      throw std::invalid_argument("right-hand side dimension mismatch");
    if (symmetric_) {
      la::ldlt_solve<T>(a_.view(), B);
    } else {
      la::lu_solve<T>(a_.view(), piv_, B);
    }
  }

  bool factored() const { return factored_; }
  index_t dim() const { return a_.rows(); }
  std::size_t memory_bytes() const { return a_.size_bytes(); }

  /// Release the factor storage.
  void clear() {
    a_.clear();
    piv_.clear();
    factored_ = false;
  }

  /// Serialize the factored state into the writer's open section.
  void save(serialize::Writer& w) const {
    w.write_u8(symmetric_ ? 1 : 0);
    w.write_u8(factored_ ? 1 : 0);
    serialize::write_vec(w, piv_);
    la::write_matrix(w, a_);
  }

  /// Restore the factored state; the factor matrix is charged to the
  /// schur.dense ledger tag like a freshly computed one.
  void load(serialize::Reader& in) {
    symmetric_ = in.read_u8() != 0;
    factored_ = in.read_u8() != 0;
    piv_ = serialize::read_vec<index_t>(in);
    MemoryScope scope(MemTag::kSchurDense);
    a_ = la::read_matrix<T>(in);
  }

 private:
  la::Matrix<T> a_;
  std::vector<index_t> piv_;
  bool symmetric_ = true;
  bool factored_ = false;
};

}  // namespace cs::dense
