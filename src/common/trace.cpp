#include "common/trace.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/json.h"
#include "common/log.h"
#include "common/memory.h"

namespace cs {

namespace {

constexpr std::size_t kDefaultCapacity = 1 << 16;

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Thread-local binding of this thread to its buffer, invalidated when the
/// tracer generation changes (clear() discards old buffers).
struct ThreadSlot {
  void* buffer = nullptr;  // Tracer::ThreadBuffer*, owned by the registry
  std::uint64_t generation = 0;
};

thread_local ThreadSlot t_slot;

}  // namespace

Tracer::Tracer() : capacity_(kDefaultCapacity) { epoch_ns_ = steady_ns(); }

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  buffers_.clear();
  for (auto& g : gauges_) g->value.store(0, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_relaxed);
  epoch_ns_ = steady_ns();
}

void Tracer::set_buffer_capacity(std::size_t events) {
  capacity_.store(events > 0 ? events : kDefaultCapacity,
                  std::memory_order_relaxed);
}

double Tracer::now_us() const {
  return static_cast<double>(steady_ns() - epoch_ns_) * 1e-3;
}

Tracer::ThreadBuffer* Tracer::buffer_for_this_thread() {
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (t_slot.buffer != nullptr && t_slot.generation == gen)
    return static_cast<ThreadBuffer*>(t_slot.buffer);
  auto buffer = std::make_shared<ThreadBuffer>();
  buffer->capacity = capacity_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    // clear() may have bumped the generation between the load above and
    // here; registering under the lock keeps the buffer either visible to
    // the new generation or dropped with the old list, never leaked.
    buffer->tid = static_cast<int>(buffers_.size());
    buffers_.push_back(buffer);
  }
  t_slot.buffer = buffer.get();
  t_slot.generation = gen;
  return buffer.get();
}

void Tracer::record(TracePhase phase, const char* category, const char* name,
                    double counter_value, std::string args) {
  if (!enabled()) return;
  const double ts = now_us();
  ThreadBuffer* buffer = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  // Ring policy: drop new begin/instant/counter events once full, but keep
  // end events of spans whose begin was recorded (bounded by the open span
  // depth), so exported traces always have balanced B/E pairs.
  if (phase == TracePhase::kEnd) {
    if (buffer->open_dropped > 0) {
      --buffer->open_dropped;
      ++buffer->dropped;
      return;
    }
  } else if (buffer->events.size() >= buffer->capacity) {
    ++buffer->dropped;
    if (phase == TracePhase::kBegin) ++buffer->open_dropped;
    return;
  }
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = phase;
  e.ts_us = ts;
  e.counter_value = counter_value;
  e.args = std::move(args);
  buffer->events.push_back(std::move(e));
}

void Tracer::name_thread(const char* name) {
  if (!enabled()) return;
  ThreadBuffer* buffer = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->thread_name = name;
}

long Tracer::gauge_add(const char* name, long delta) {
  Gauge* gauge = nullptr;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (auto& g : gauges_)
      if (g->name == name) {
        gauge = g.get();
        break;
      }
    if (gauge == nullptr) {
      gauges_.push_back(std::make_unique<Gauge>());
      gauges_.back()->name = name;
      gauge = gauges_.back().get();
    }
  }
  const long now = gauge->value.fetch_add(delta, std::memory_order_relaxed) +
                   delta;
  if (enabled())
    record(TracePhase::kCounter, "counter", gauge->name.c_str(),
           static_cast<double>(now));
  return now;
}

void Tracer::sample_counters() {
  if (!enabled()) return;
  auto& tracker = MemoryTracker::instance();
  record(TracePhase::kCounter, "counter", "memory.current",
         static_cast<double>(tracker.current()));
  record(TracePhase::kCounter, "counter", "memory.peak",
         static_cast<double>(tracker.peak()));
  // Per-tag attribution gauges. Tags that never saw a byte are skipped so
  // idle subsystems don't add empty counter tracks to the timeline; once a
  // tag has a nonzero peak we keep sampling it (including zeros) so its
  // track drops back to the axis instead of ending mid-run.
  for (std::size_t t = 0; t < kMemTagCount; ++t) {
    const auto tag = static_cast<MemTag>(t);
    const std::size_t now = tracker.tag_current(tag);
    if (now == 0 && tracker.tag_peak(tag) == 0) continue;
    record(TracePhase::kCounter, "counter", mem_tag_counter_name(tag),
           static_cast<double>(now));
  }
  std::vector<std::pair<const char*, long>> snapshot;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    snapshot.reserve(gauges_.size());
    for (const auto& g : gauges_)
      snapshot.emplace_back(g->name.c_str(),
                            g->value.load(std::memory_order_relaxed));
  }
  for (const auto& [name, value] : snapshot)
    record(TracePhase::kCounter, "counter", name,
           static_cast<double>(value));
}

std::string Tracer::to_json() const {
  // Snapshot the buffer list, then serialize each buffer under its own
  // mutex. Buffer names referenced by events are string literals or gauge
  // names owned by the (locked) registry, so no lifetime issues here.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers = buffers_;
  }

  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"coupled-solver\"}}";

  char buf[64];
  std::size_t dropped = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    dropped += buffer->dropped;
    if (!buffer->thread_name.empty()) {
      out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
      out += std::to_string(buffer->tid);
      out += ",\"args\":{\"name\":\"" + json::escape(buffer->thread_name) +
             "\"}}";
    }
    for (const TraceEvent& e : buffer->events) {
      out += ",\n{\"name\":\"";
      out += json::escape(e.name);
      out += "\",\"cat\":\"";
      out += json::escape(e.category);
      out += "\",\"ph\":\"";
      out.push_back(static_cast<char>(e.phase));
      out += "\",\"pid\":1,\"tid\":";
      out += std::to_string(buffer->tid);
      out += ",\"ts\":";
      std::snprintf(buf, sizeof(buf), "%.3f", e.ts_us);
      out += buf;
      if (e.phase == TracePhase::kCounter) {
        // json::number: a non-finite counter value must render as null,
        // never as bare nan/inf (invalid JSON).
        out += ",\"args\":{\"value\":";
        out += json::number(e.counter_value);
        out += "}";
      } else if (e.phase == TracePhase::kInstant) {
        out += ",\"s\":\"t\"";
        if (!e.args.empty()) out += ",\"args\":{" + e.args + "}";
      } else if (!e.args.empty()) {
        out += ",\"args\":{" + e.args + "}";
      }
      out += "}";
    }
  }
  out += "\n],\"otherData\":{\"dropped_events\":" + std::to_string(dropped) +
         "}}\n";
  return out;
}

bool Tracer::write_json(const std::string& path) const {
  const std::string text = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    log_warn("trace: cannot open ", path, " for writing");
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) log_warn("trace: short write to ", path);
  return ok;
}

std::size_t Tracer::thread_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return buffers_.size();
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> b(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

std::size_t Tracer::dropped_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> b(buffer->mutex);
    n += buffer->dropped;
  }
  return n;
}

// -- TraceSpan ---------------------------------------------------------------

std::string TraceSpan::format_number(double value) {
  // Span args land verbatim inside the exported JSON: non-finite doubles
  // must become null there too.
  return json::number(value);
}

void TraceSpan::append(const char* key, const std::string& rendered) {
  if (!args_.empty()) args_ += ",";
  args_ += "\"";
  args_ += key;
  args_ += "\":";
  args_ += rendered;
}

TraceSpan& TraceSpan::arg(const char* key, const std::string& value) {
  if (enabled_) append(key, "\"" + json::escape(value) + "\"");
  return *this;
}

// -- TraceSampler ------------------------------------------------------------

struct TraceSampler::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;
  std::thread thread;
};

TraceSampler::TraceSampler(std::int64_t period_us) {
  if (period_us <= 0 || !Tracer::instance().enabled()) return;
  impl_ = std::make_unique<Impl>();
  Impl* impl = impl_.get();
  impl->thread = std::thread([impl, period_us] {
    trace_thread_name("sampler");
    auto& tracer = Tracer::instance();
    std::unique_lock<std::mutex> lock(impl->mutex);
    while (!impl->stop) {
      lock.unlock();
      tracer.sample_counters();
      lock.lock();
      impl->cv.wait_for(lock, std::chrono::microseconds(period_us),
                        [impl] { return impl->stop; });
    }
  });
}

TraceSampler::~TraceSampler() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  // One final sample so the counter tracks extend to the end of the run.
  Tracer::instance().sample_counters();
}

// -- validation --------------------------------------------------------------

namespace {

std::string check_event(const json::Value& e, std::size_t index) {
  const auto at = "traceEvents[" + std::to_string(index) + "]";
  if (!e.is_object()) return at + " is not an object";
  const json::Value* name = e.find("name");
  if (name == nullptr || !name->is_string())
    return at + " lacks a string \"name\"";
  const json::Value* ph = e.find("ph");
  if (ph == nullptr || !ph->is_string() || ph->string.size() != 1)
    return at + " lacks a one-character \"ph\"";
  const json::Value* pid = e.find("pid");
  const json::Value* tid = e.find("tid");
  if (pid == nullptr || !pid->is_number() || tid == nullptr ||
      !tid->is_number())
    return at + " lacks numeric pid/tid";
  if (ph->string == "M") return {};  // metadata: no timestamp required
  const json::Value* ts = e.find("ts");
  if (ts == nullptr || !ts->is_number())
    return at + " lacks a numeric \"ts\"";
  if (ph->string == "C") {
    const json::Value* args = e.find("args");
    if (args == nullptr || !args->is_object() || args->object.empty() ||
        !args->object.front().second.is_number())
      return at + " is a counter without a numeric args series";
  }
  return {};
}

}  // namespace

std::string validate_chrome_trace(const std::string& json_text) {
  json::Value root;
  std::string error;
  if (!json::parse(json_text, &root, &error))
    return "JSON parse error: " + error;
  if (!root.is_object()) return "root is not an object";
  const json::Value* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array())
    return "missing traceEvents array";

  // Per-thread span stacks and timestamp monotonicity.
  std::map<double, std::vector<std::string>> open;  // tid -> span names
  std::map<double, double> last_ts;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const json::Value& e = events->array[i];
    std::string problem = check_event(e, i);
    if (!problem.empty()) return problem;
    const std::string& ph = e.find("ph")->string;
    if (ph == "M") continue;
    const double tid = e.find("tid")->number;
    const double ts = e.find("ts")->number;
    auto it = last_ts.find(tid);
    if (it != last_ts.end() && ts < it->second)
      return "timestamps not monotonic on tid " + std::to_string(tid) +
             " at traceEvents[" + std::to_string(i) + "]";
    last_ts[tid] = ts;
    if (ph == "B") {
      open[tid].push_back(e.find("name")->string);
    } else if (ph == "E") {
      auto& stack = open[tid];
      if (stack.empty())
        return "unbalanced E event at traceEvents[" + std::to_string(i) +
               "]";
      if (stack.back() != e.find("name")->string)
        return "mismatched span nesting at traceEvents[" +
               std::to_string(i) + "]: expected \"" + stack.back() +
               "\", got \"" + e.find("name")->string + "\"";
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : open)
    if (!stack.empty())
      return "span \"" + stack.back() + "\" left open on tid " +
             std::to_string(tid);
  return {};
}

// -- Metrics -----------------------------------------------------------------

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kPanelsProduced: return "pipeline.panels_produced";
    case Metric::kPanelsFolded: return "pipeline.panels_folded";
    case Metric::kPipelineProducerStallSec:
      return "pipeline.producer_stall_s";
    case Metric::kPipelineConsumerStallSec:
      return "pipeline.consumer_stall_s";
    case Metric::kMultifactoJobs: return "multifacto.jobs";
    case Metric::kAdmissionWaits: return "admission.waits";
    case Metric::kAdmissionWaitSec: return "admission.wait_s";
    case Metric::kAdmissionDegraded: return "admission.degraded";
    case Metric::kRecompressions: return "recompress.count";
    case Metric::kRecompressRankMax: return "recompress.rank_max";
    case Metric::kAcaFallbacks: return "aca.fallbacks";
    case Metric::kRefineSweeps: return "refine.sweeps";
    case Metric::kFailpointFires: return "failpoint.fires";
    case Metric::kRecoveries: return "recovery.actions";
    case Metric::kOocRetries: return "ooc.retries";
    case Metric::kOocInCoreFallbacks: return "ooc.incore_fallbacks";
    case Metric::kRefineStalls: return "refine.stalls";
    case Metric::kPrecisionEscalations: return "precision.escalations";
    case Metric::kAcaIterations: return "aca.iterations";
    case Metric::kAcaRankHintHits: return "aca.rank_hint_hits";
    case Metric::kAcaRankHintMisses: return "aca.rank_hint_misses";
    case Metric::kSparseAnalysisReuses: return "mf.analysis_reuses";
    case Metric::kHmatStructureReuses: return "hmat.structure_reuses";
    case Metric::kLaggedSolves: return "sweep.lagged_solves";
    case Metric::kServeRequests: return "serve.requests";
    case Metric::kServeCacheHits: return "serve.cache_hit";
    case Metric::kServeCacheMisses: return "serve.cache_miss";
    case Metric::kServeCacheEvictions: return "serve.cache_evict";
    case Metric::kServeCacheSpills: return "serve.cache_spill";
    case Metric::kServeCacheRestores: return "serve.cache_restore";
    case Metric::kServeFactorizations: return "serve.factorizations";
    case Metric::kServeCoalescedBatches: return "serve.coalesced_batches";
    case Metric::kServeCoalescedColumns: return "serve.coalesced_columns";
    case Metric::kCount: break;
  }
  return "?";
}

Metrics& Metrics::instance() {
  static Metrics metrics;
  return metrics;
}

std::map<std::string, double> Metrics::snapshot() const {
  std::map<std::string, double> out;
  for (int m = 0; m < static_cast<int>(Metric::kCount); ++m) {
    const double v = get(static_cast<Metric>(m));
    if (v != 0.0) out[metric_name(static_cast<Metric>(m))] = v;
  }
  return out;
}

std::map<std::string, double> Metrics::delta_since(
    const Values& before) const {
  std::map<std::string, double> out;
  for (int i = 0; i < static_cast<int>(Metric::kCount); ++i) {
    const Metric m = static_cast<Metric>(i);
    const double now = get(m);
    const double base = before[static_cast<std::size_t>(i)];
    if (is_high_water(m)) {
      // A high-water mark that advanced during the run belongs to it; one
      // that did not is stale history and is omitted.
      if (now > base) out[metric_name(m)] = now;
    } else if (now != base) {
      out[metric_name(m)] = now - base;
    }
  }
  return out;
}

}  // namespace cs
