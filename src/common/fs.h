// Small filesystem helpers shared by the out-of-core layer, checkpoints
// and the solver service: where scratch files go and whether a configured
// directory can actually host them. Centralised so every component that
// spills to disk resolves $TMPDIR the same way and rejects a bad
// directory at configuration time instead of erroring mid-factorization.
#pragma once

#include <string>

namespace cs {

/// Scratch directory for spill/checkpoint files: `$TMPDIR` when set and
/// non-empty, else "/tmp". Trailing slashes are stripped so callers can
/// append "/name" unconditionally.
std::string default_tmp_dir();

/// Check that `dir` exists, is a directory, and is writable+searchable by
/// this process. Returns an empty string when usable, else a short
/// human-readable reason ("no such directory", "not a directory",
/// "not writable"). Never throws.
std::string probe_writable_dir(const std::string& dir);

}  // namespace cs
