// Fixed-width table / CSV printer used by the bench binaries to emit the
// rows and series of the paper's tables and figures.
#pragma once

#include <string>
#include <vector>

namespace cs {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render the table with aligned columns to stdout.
  void print() const;

  /// Render as CSV (one line per row, headers first) to stdout.
  void print_csv() const;

  static std::string fmt(double value, int precision = 3);
  static std::string fmt_int(long long value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cs
