#include "common/memory.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <vector>

namespace cs {

const char* mem_tag_name(MemTag tag) {
  switch (tag) {
    case MemTag::kUntagged:
      return "untagged";
    case MemTag::kSparseMatrix:
      return "sparse.matrix";
    case MemTag::kCouplingBlock:
      return "coupling.block";
    case MemTag::kMfFront:
      return "mf.front";
    case MemTag::kMfFactor:
      return "mf.factor";
    case MemTag::kMfBlrPanel:
      return "mf.blr_panel";
    case MemTag::kOocBuffer:
      return "ooc.buffer";
    case MemTag::kHmatRk:
      return "hmat.rk";
    case MemTag::kHmatDense:
      return "hmat.dense";
    case MemTag::kSchurDense:
      return "schur.dense";
    case MemTag::kSchurPanel:
      return "schur.panel";
    case MemTag::kRhsWorkspace:
      return "rhs.workspace";
    case MemTag::kPackScratch:
      return "pack.scratch";
    case MemTag::kCount:
      break;
  }
  return "invalid";
}

const char* mem_tag_counter_name(MemTag tag) {
  // Trace counters require static-lifetime names, so these literals mirror
  // mem_tag_name() with a "mem." prefix rather than being built at runtime.
  switch (tag) {
    case MemTag::kUntagged:
      return "mem.untagged";
    case MemTag::kSparseMatrix:
      return "mem.sparse.matrix";
    case MemTag::kCouplingBlock:
      return "mem.coupling.block";
    case MemTag::kMfFront:
      return "mem.mf.front";
    case MemTag::kMfFactor:
      return "mem.mf.factor";
    case MemTag::kMfBlrPanel:
      return "mem.mf.blr_panel";
    case MemTag::kOocBuffer:
      return "mem.ooc.buffer";
    case MemTag::kHmatRk:
      return "mem.hmat.rk";
    case MemTag::kHmatDense:
      return "mem.hmat.dense";
    case MemTag::kSchurDense:
      return "mem.schur.dense";
    case MemTag::kSchurPanel:
      return "mem.schur.panel";
    case MemTag::kRhsWorkspace:
      return "mem.rhs.workspace";
    case MemTag::kPackScratch:
      return "mem.pack.scratch";
    case MemTag::kCount:
      break;
  }
  return "mem.invalid";
}

namespace {

/// "6.1 GiB mf.front + 2.9 GiB schur.dense + ..." -- the largest owners
/// first, minor tags folded into a remainder so the message stays one line.
std::string attribution_summary(const MemTagArray& attribution) {
  std::vector<std::pair<std::size_t, MemTag>> owners;
  std::size_t total = 0;
  for (std::size_t t = 0; t < kMemTagCount; ++t) {
    if (attribution[t] == 0 || static_cast<MemTag>(t) == MemTag::kPackScratch)
      continue;
    owners.emplace_back(attribution[t], static_cast<MemTag>(t));
    total += attribution[t];
  }
  if (owners.empty()) return "";
  std::sort(owners.begin(), owners.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  constexpr std::size_t kTopOwners = 4;
  std::string out;
  std::size_t shown = 0;
  for (std::size_t k = 0; k < owners.size() && k < kTopOwners; ++k) {
    if (!out.empty()) out += " + ";
    out += format_bytes(owners[k].first);
    out += " ";
    out += mem_tag_name(owners[k].second);
    shown += owners[k].first;
  }
  if (shown < total) out += " + " + format_bytes(total - shown) + " other";
  return out;
}

std::string budget_message(std::size_t requested, std::size_t in_use,
                           std::size_t budget,
                           const MemTagArray& attribution) {
  std::string msg = "memory budget exceeded: requested " +
                    format_bytes(requested) + " with " + format_bytes(in_use) +
                    " in use, budget " + format_bytes(budget);
  const std::string owners = attribution_summary(attribution);
  if (!owners.empty()) msg += " (in use: " + owners + ")";
  return msg;
}

MemTagArray live_attribution() {
  MemTagArray out{};
  auto& tracker = MemoryTracker::instance();
  for (std::size_t t = 0; t < kMemTagCount; ++t)
    out[t] = tracker.tag_current(static_cast<MemTag>(t));
  return out;
}

}  // namespace

BudgetExceeded::BudgetExceeded(std::size_t requested, std::size_t in_use,
                               std::size_t budget)
    : std::runtime_error(
          budget_message(requested, in_use, budget, live_attribution())),
      requested_(requested),
      in_use_(in_use),
      budget_(budget),
      attribution_(live_attribution()) {}

MemoryTracker& MemoryTracker::instance() {
  // Leaky singleton: thread_local consumers (the gemm pack scratch) release
  // their bytes from thread-exit destructors, which on the main thread run
  // after function-local statics are destroyed.
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::allocate(std::size_t bytes, MemTag tag) {
  const std::size_t budget = budget_.load(std::memory_order_relaxed);
  const std::size_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget != 0 && now > budget) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
    throw BudgetExceeded(bytes, now - bytes, budget);
  }
  // Attribution ledger: one extra relaxed add per allocation, plus a
  // relaxed peak check. The tag counter is bumped *before* the global peak
  // CAS so a snapshot triggered by this allocation sees its bytes.
  const auto t = static_cast<std::size_t>(tag);
  const std::size_t tag_now =
      tag_current_[t].fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t tag_prev = tag_peak_[t].load(std::memory_order_relaxed);
  while (tag_now > tag_prev &&
         !tag_peak_[t].compare_exchange_weak(tag_prev, tag_now,
                                             std::memory_order_relaxed)) {
  }
  // Lock-free global peak update; the snapshot is captured only when the
  // CAS succeeds (the high-water mark is monotone, so this is the cold
  // path -- quiescent phases never touch the mutex).
  std::size_t prev_peak = peak_.load(std::memory_order_relaxed);
  bool advanced = false;
  while (now > prev_peak) {
    if (peak_.compare_exchange_weak(prev_peak, now,
                                    std::memory_order_relaxed)) {
      advanced = true;
      break;
    }
  }
  if (advanced) capture_peak_snapshot(now);
}

void MemoryTracker::release(std::size_t bytes, MemTag tag) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
  tag_current_[static_cast<std::size_t>(tag)].fetch_sub(
      bytes, std::memory_order_relaxed);
}

void MemoryTracker::note_scratch(std::ptrdiff_t delta_bytes) noexcept {
  auto& gauge = tag_current_[static_cast<std::size_t>(MemTag::kPackScratch)];
  auto& mark = tag_peak_[static_cast<std::size_t>(MemTag::kPackScratch)];
  std::size_t now;
  if (delta_bytes >= 0) {
    now = gauge.fetch_add(static_cast<std::size_t>(delta_bytes),
                          std::memory_order_relaxed) +
          static_cast<std::size_t>(delta_bytes);
  } else {
    now = gauge.fetch_sub(static_cast<std::size_t>(-delta_bytes),
                          std::memory_order_relaxed) -
          static_cast<std::size_t>(-delta_bytes);
  }
  std::size_t prev = mark.load(std::memory_order_relaxed);
  while (now > prev &&
         !mark.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::capture_peak_snapshot(std::size_t peak_now) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  // A racing thread may have advanced the mark further and snapshotted a
  // later state already; keep the capture belonging to the largest peak.
  if (peak_now < snapshot_peak_) return;
  snapshot_peak_ = peak_now;
  for (std::size_t t = 0; t < kMemTagCount; ++t)
    snapshot_[t] = tag_current_[t].load(std::memory_order_relaxed);
}

MemTagArray MemoryTracker::peak_attribution() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

void MemoryTracker::reset_peak() {
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  for (std::size_t t = 0; t < kMemTagCount; ++t)
    tag_peak_[t].store(tag_current_[t].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_peak_ = current_.load(std::memory_order_relaxed);
  for (std::size_t t = 0; t < kMemTagCount; ++t)
    snapshot_[t] = tag_current_[t].load(std::memory_order_relaxed);
}

std::string format_bytes(std::size_t bytes) {
  static const std::array<const char*, 5> units = {"B", "KiB", "MiB", "GiB",
                                                   "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < units.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  return buf;
}

}  // namespace cs
