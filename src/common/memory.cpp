#include "common/memory.h"

#include <array>
#include <cstdio>

namespace cs {

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::allocate(std::size_t bytes) {
  const std::size_t budget = budget_.load(std::memory_order_relaxed);
  std::size_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget != 0 && now > budget) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
    throw BudgetExceeded(bytes, now - bytes, budget);
  }
  // Lock-free peak update.
  std::size_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
  }
}

void MemoryTracker::release(std::size_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::reset_peak() {
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

std::string format_bytes(std::size_t bytes) {
  static const std::array<const char*, 5> units = {"B", "KiB", "MiB", "GiB",
                                                   "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < units.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  return buf;
}

}  // namespace cs
