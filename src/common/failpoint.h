// Deterministic failpoint injection.
//
// The resilience of the solve engine (degrade-and-retry on budget hits,
// LDLT->LU fallbacks, OOC retry with backoff) is only trustworthy if every
// failure path can be exercised on demand. A failpoint is a named site in
// a hot path — "ooc.write", "hldlt.pivot", "mf.front_factor", ... — whose
// guard
//
//   if (failpoint("ooc.write")) throw IoError("ooc.write", ...);
//
// fires when the site is armed. The call site decides what to throw, so an
// injected failure travels through exactly the code path a real one would
// (the same exception type, the same parallel-region capture, the same
// classification in the driver).
//
// Arming uses a spec string, via coupled::Config::failpoints or the
// CS_FAILPOINTS environment variable (comma/semicolon-separated list):
//
//   site=once          fire on the first hit, then never again
//   site=hit:N         fire on the Nth hit only (N >= 1; once == hit:1)
//   site=always        fire on every hit
//   site=prob:P[:SEED] fire each hit with probability P in (0, 1],
//                      from a deterministic per-site RNG seeded with SEED
//   site=off           registered but never fires (count hits only)
//
// Disarmed cost: one relaxed atomic load per guard. Sites must come from
// known_sites() — a typo in a spec is a config error, not a silent no-op.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/trace.h"

namespace cs {

class FailpointRegistry {
 public:
  static FailpointRegistry& instance();

  /// The fixed list of sites wired through the solver (tests iterate it).
  static const std::vector<std::string>& known_sites();

  /// Validate a spec without arming anything. Empty string when valid,
  /// else a description of the first problem.
  static std::string check(const std::string& spec);

  /// Arm every entry of `spec` (adds to whatever is already armed).
  /// Throws std::invalid_argument on a malformed spec or unknown site.
  void arm(const std::string& spec);

  void disarm_all();

  bool any_armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Count a hit on `site` and report whether its trigger fires.
  /// Thread-safe; never fires for unarmed sites.
  bool should_fire(const char* site);

  /// Introspection for tests: hits/fires observed since arming (0 for
  /// sites that are not armed).
  long hit_count(const std::string& site) const;
  long fire_count(const std::string& site) const;

 private:
  FailpointRegistry() = default;

  // The armed-site map lives in failpoint.cpp (file-static behind a
  // mutex); only the fast-path counter is here.
  std::atomic<int> armed_count_{0};
};

/// Guard for one failpoint site. Returns true when the armed trigger
/// fires; the caller throws its natural exception. `site` must be a
/// string literal from known_sites().
inline bool failpoint(const char* site) {
  auto& reg = FailpointRegistry::instance();
  if (!reg.any_armed()) return false;
  if (!reg.should_fire(site)) return false;
  Metrics::instance().add(Metric::kFailpointFires, 1);
  trace_instant("failpoint", site);
  return true;
}

/// Arms `spec` plus the CS_FAILPOINTS environment variable for the
/// lifetime of the scope; disarms everything on destruction iff it armed
/// anything (so callers that arm the registry directly are unaffected).
/// solve_coupled owns one per call — across its internal retry attempts
/// the armed state persists, which is what makes "once"-mode injections
/// recoverable.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& spec);
  ~ScopedFailpoints();

  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;

  bool armed_any() const { return armed_any_; }

 private:
  bool armed_any_ = false;
};

/// The CS_FAILPOINTS environment value ("" when unset).
std::string failpoints_env();

}  // namespace cs
