#include "common/error.h"

namespace cs {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBudget: return "budget";
    case ErrorCode::kSingular: return "singular";
    case ErrorCode::kNumericalBreakdown: return "numerical_breakdown";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

}  // namespace cs
