// Common scalar/index typedefs and small numeric helpers shared by every
// module of the coupled sparse/dense solver library.
#pragma once

#include <complex>
#include <cstdint>
#include <type_traits>

namespace cs {

/// Index type used for matrix dimensions and sparse indices. Signed so that
/// downward loops and -1 sentinels are natural; 64-bit offsets are used
/// separately where element counts may exceed 2^31.
using index_t = std::int32_t;

/// Offset type for element counts (nnz, dense strides).
using offset_t = std::int64_t;

using complexd = std::complex<double>;
using complexf = std::complex<float>;

template <class T>
struct is_complex : std::false_type {};
template <class T>
struct is_complex<std::complex<T>> : std::true_type {};
template <class T>
inline constexpr bool is_complex_v = is_complex<T>::value;

/// The underlying real type of a scalar (double -> double,
/// complex<double> -> double).
template <class T>
struct real_of {
  using type = T;
};
template <class T>
struct real_of<std::complex<T>> {
  using type = T;
};
template <class T>
using real_of_t = typename real_of<T>::type;

/// The single-precision counterpart of a scalar (double -> float,
/// complex<double> -> complex<float>; single-precision types map to
/// themselves). This is the storage scalar of mixed-precision
/// factorizations: factors are stored and applied in single_of_t<T> while
/// operators, right-hand sides and refinement stay in T.
template <class T>
struct single_of {
  using type = T;
};
template <>
struct single_of<double> {
  using type = float;
};
template <>
struct single_of<complexd> {
  using type = complexf;
};
template <class T>
using single_of_t = typename single_of<T>::type;

/// Value conversion between scalar types of matching complexity
/// (real <-> real, complex <-> complex), e.g. double -> float demotion of
/// factor storage and float -> double promotion of corrections.
template <class To, class From>
inline To scalar_cast(const From& x) {
  if constexpr (is_complex_v<From>) {
    static_assert(is_complex_v<To>, "cannot narrow complex to real");
    using R = real_of_t<To>;
    return To{static_cast<R>(x.real()), static_cast<R>(x.imag())};
  } else {
    return To(x);
  }
}

/// |x|^2 without the square root (works for real and complex scalars).
template <class T>
inline real_of_t<T> abs2(const T& x) {
  if constexpr (is_complex_v<T>) {
    return x.real() * x.real() + x.imag() * x.imag();
  } else {
    return x * x;
  }
}

/// Real part (identity on real scalars).
template <class T>
inline real_of_t<T> real_part(const T& x) {
  if constexpr (is_complex_v<T>) {
    return x.real();
  } else {
    return x;
  }
}

/// Complex conjugate that is the identity on real scalars.
template <class T>
inline T conj_if(const T& x) {
  if constexpr (is_complex_v<T>) {
    return std::conj(x);
  } else {
    return x;
  }
}

}  // namespace cs
