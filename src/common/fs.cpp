#include "common/fs.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>

namespace cs {

std::string default_tmp_dir() {
  const char* env = std::getenv("TMPDIR");
  std::string dir = (env && *env) ? env : "/tmp";
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  return dir;
}

std::string probe_writable_dir(const std::string& dir) {
  if (dir.empty()) return "empty path";
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0) return "no such directory";
  if (!S_ISDIR(st.st_mode)) return "not a directory";
  if (::access(dir.c_str(), W_OK | X_OK) != 0) return "not writable";
  return "";
}

}  // namespace cs
