#include "common/cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace cs {

namespace {

// Every malformed command line — positional argument, duplicate flag,
// unparseable value — exits 2 with a one-line diagnostic, the same
// contract as the unknown-flag path in check(). A daemon launched from a
// service manager must fail its unit visibly, not die on an uncaught
// exception with a stack-unwind abort message.
[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "%s (see --help)\n", what.c_str());
  std::exit(2);
}

}  // namespace

CliArgs::CliArgs(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      usage_error("unexpected positional argument '" + arg + "'");
    }
    arg = arg.substr(2);
    std::string name, value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      name = arg;
      value = argv[++i];
    } else {
      name = arg;
      value = "true";
    }
    if (values_.count(name))
      usage_error("duplicate flag --" + name);
    values_[name] = value;
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

namespace {

// A malformed value must be a usage error naming the offending flag, not
// an uncaught std::invalid_argument aborting the process. Requires the
// whole value to parse (rejects "--n=12abc"), exits like an unknown flag.
[[noreturn]] void bad_value(const std::string& name, const std::string& value,
                            const char* kind) {
  std::fprintf(stderr, "invalid value for --%s: '%s' is not %s (see --help)\n",
               name.c_str(), value.c_str(), kind);
  std::exit(2);
}

}  // namespace

long long CliArgs::get_int(const std::string& name, long long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const long long v = std::stoll(it->second, &used);
    if (used != it->second.size() || it->second.empty())
      bad_value(name, it->second, "an integer");
    return v;
  } catch (const std::exception&) {
    bad_value(name, it->second, "an integer");
  }
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size() || it->second.empty())
      bad_value(name, it->second, "a number");
    return v;
  } catch (const std::exception&) {
    bad_value(name, it->second, "a number");
  }
}

std::vector<double> CliArgs::get_range(
    const std::string& name, const std::vector<double>& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  const char* kind = "a range start:stop:step or a comma list";

  // One number token of the value; the whole token must parse.
  auto parse_num = [&](const std::string& tok) -> double {
    try {
      std::size_t used = 0;
      const double v = std::stod(tok, &used);
      if (used != tok.size() || tok.empty()) bad_value(name, value, kind);
      return v;
    } catch (const std::exception&) {
      bad_value(name, value, kind);
    }
  };
  auto split = [&](char sep) {
    std::vector<std::string> toks;
    std::size_t pos = 0;
    while (true) {
      const std::size_t next = value.find(sep, pos);
      toks.push_back(value.substr(pos, next - pos));
      if (next == std::string::npos) break;
      pos = next + 1;
    }
    return toks;
  };

  if (value.find(':') != std::string::npos) {
    const auto toks = split(':');
    if (toks.size() != 3) bad_value(name, value, kind);
    const double start = parse_num(toks[0]);
    const double stop = parse_num(toks[1]);
    const double step = parse_num(toks[2]);
    if (!(step > 0) || stop < start) bad_value(name, value, kind);
    std::vector<double> out;
    // Half-a-step slack so "100:1000:50" includes 1000 despite rounding.
    for (double v = start; v <= stop + step * 0.5; v += step)
      out.push_back(std::min(v, stop));
    return out;
  }
  std::vector<double> out;
  for (const auto& tok : split(',')) out.push_back(parse_num(tok));
  return out;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void CliArgs::describe(const std::string& name, const std::string& help) {
  described_[name] = help;
}

void CliArgs::check(const std::string& program_summary) const {
  if (has("help")) {
    std::printf("%s\n\n%s\n\nflags:\n", program_.c_str(),
                program_summary.c_str());
    for (const auto& [name, help] : described_)
      std::printf("  --%-16s %s\n", name.c_str(), help.c_str());
    std::exit(0);
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    if (name != "help" && described_.find(name) == described_.end()) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n", name.c_str());
      std::exit(2);
    }
  }
}

}  // namespace cs
