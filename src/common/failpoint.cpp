#include "common/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <random>
#include <stdexcept>

namespace cs {

namespace {

enum class Mode { kOnce, kNth, kProb, kAlways, kOff };

struct Arm {
  Mode mode = Mode::kOnce;
  long nth = 1;          // kNth: fire on this hit
  double prob = 0;       // kProb
  std::mt19937_64 rng;   // kProb
  bool spent = false;    // kOnce/kNth after firing
  long hits = 0;
  long fires = 0;
};

struct State {
  std::mutex mutex;
  std::map<std::string, Arm> arms;
};

State& state() {
  static State s;
  return s;
}

/// Parse one "site=mode" entry. Returns "" and fills (site, arm) on
/// success, else the error description.
std::string parse_entry(const std::string& entry, std::string& site,
                        Arm& arm) {
  const auto eq = entry.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size())
    return "failpoint entry '" + entry + "' is not site=mode";
  site = entry.substr(0, eq);
  const std::string mode = entry.substr(eq + 1);

  const auto& known = FailpointRegistry::known_sites();
  bool found = false;
  for (const auto& s : known)
    if (s == site) found = true;
  if (!found) return "unknown failpoint site '" + site + "'";

  arm = Arm{};
  if (mode == "once") {
    arm.mode = Mode::kOnce;
  } else if (mode == "always") {
    arm.mode = Mode::kAlways;
  } else if (mode == "off") {
    arm.mode = Mode::kOff;
  } else if (mode.rfind("hit:", 0) == 0) {
    arm.mode = Mode::kNth;
    char* end = nullptr;
    arm.nth = std::strtol(mode.c_str() + 4, &end, 10);
    if (end == nullptr || *end != '\0' || arm.nth < 1)
      return "failpoint '" + site + "': hit:N needs an integer N >= 1";
  } else if (mode.rfind("prob:", 0) == 0) {
    arm.mode = Mode::kProb;
    const std::string rest = mode.substr(5);
    const auto colon = rest.find(':');
    char* end = nullptr;
    arm.prob = std::strtod(rest.substr(0, colon).c_str(), &end);
    if (end == nullptr || *end != '\0' || !(arm.prob > 0) || arm.prob > 1)
      return "failpoint '" + site + "': prob:P needs P in (0, 1]";
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    if (colon != std::string::npos) {
      const std::string seed_text = rest.substr(colon + 1);
      seed = std::strtoull(seed_text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || seed_text.empty())
        return "failpoint '" + site + "': prob:P:SEED needs an integer seed";
    }
    arm.rng.seed(seed);
  } else {
    return "failpoint '" + site + "': unknown mode '" + mode +
           "' (once | hit:N | prob:P[:SEED] | always | off)";
  }
  return {};
}

/// Split on ',' and ';', skipping empty entries.
std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : spec) {
    if (c == ',' || c == ';') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (c != ' ') {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry reg;
  return reg;
}

const std::vector<std::string>& FailpointRegistry::known_sites() {
  // One entry per guard wired through the solver; keep in sync with the
  // taxonomy table in DESIGN.md §9.
  static const std::vector<std::string> sites = {
      "alloc.panel",      // coupled multi-solve panel production
      "alloc.front",      // multifrontal front allocation
      "mf.front_factor",  // multifrontal pivot-block factorization
      "mf.job",           // multi-factorization (bi, bj) block job
      "ooc.write",        // OOC spill (transient I/O error)
      "ooc.enospc",       // OOC spill (disk full, non-transient)
      "ooc.read",         // OOC load during solves
      "aca.converge",     // ACA rank-cap non-convergence (dense fallback)
      "hlu.pivot",        // H-LU dense-leaf factorization
      "hldlt.pivot",      // H-LDLT dense-leaf factorization
      "dense.factor",     // dense Schur factorization
      "refine.stall",     // mixed-precision refinement plateau
      "ooc.corrupt",      // OOC panel checksum mismatch on reload
      "ckpt.write",       // checkpoint section write
      "ckpt.fsync",       // checkpoint commit-record fsync
      "ckpt.torn",        // crash between payload and commit record
      "ckpt.corrupt",     // checkpoint section CRC verification
  };
  return sites;
}

std::string FailpointRegistry::check(const std::string& spec) {
  for (const auto& entry : split_spec(spec)) {
    std::string site;
    Arm arm;
    const std::string err = parse_entry(entry, site, arm);
    if (!err.empty()) return err;
  }
  return {};
}

void FailpointRegistry::arm(const std::string& spec) {
  auto& st = state();
  for (const auto& entry : split_spec(spec)) {
    std::string site;
    Arm arm;
    const std::string err = parse_entry(entry, site, arm);
    if (!err.empty()) throw std::invalid_argument(err);
    std::lock_guard<std::mutex> lock(st.mutex);
    const bool existed = st.arms.count(site) > 0;
    st.arms[site] = std::move(arm);
    if (!existed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::disarm_all() {
  auto& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.arms.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FailpointRegistry::should_fire(const char* site) {
  auto& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  const auto it = st.arms.find(site);
  if (it == st.arms.end()) return false;
  Arm& arm = it->second;
  ++arm.hits;
  bool fire = false;
  switch (arm.mode) {
    case Mode::kOnce:
      fire = !arm.spent;
      arm.spent = true;
      break;
    case Mode::kNth:
      fire = !arm.spent && arm.hits == arm.nth;
      if (fire) arm.spent = true;
      break;
    case Mode::kProb: {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fire = dist(arm.rng) < arm.prob;
      break;
    }
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kOff:
      break;
  }
  if (fire) ++arm.fires;
  return fire;
}

long FailpointRegistry::hit_count(const std::string& site) const {
  auto& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  const auto it = st.arms.find(site);
  return it == st.arms.end() ? 0 : it->second.hits;
}

long FailpointRegistry::fire_count(const std::string& site) const {
  auto& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  const auto it = st.arms.find(site);
  return it == st.arms.end() ? 0 : it->second.fires;
}

std::string failpoints_env() {
  const char* env = std::getenv("CS_FAILPOINTS");
  return env != nullptr ? std::string(env) : std::string();
}

ScopedFailpoints::ScopedFailpoints(const std::string& spec) {
  auto& reg = FailpointRegistry::instance();
  if (!spec.empty()) {
    reg.arm(spec);
    armed_any_ = true;
  }
  const std::string env = failpoints_env();
  if (!env.empty()) {
    reg.arm(env);
    armed_any_ = true;
  }
}

ScopedFailpoints::~ScopedFailpoints() {
  if (armed_any_) FailpointRegistry::instance().disarm_all();
}

}  // namespace cs
