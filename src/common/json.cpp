#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cs::json {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool run(Value* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_)
      *error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool parse_value(Value* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out->kind = Value::Kind::kString;
                return parse_string(&out->string);
      case 't': out->kind = Value::Kind::kBool;
                out->boolean = true;
                return literal("true", 4);
      case 'f': out->kind = Value::Kind::kBool;
                out->boolean = false;
                return literal("false", 5);
      case 'n': out->kind = Value::Kind::kNull;
                return literal("null", 4);
      default: return parse_number(out);
    }
  }

  bool parse_number(Value* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(begin, &end);
    if (end == begin) return fail("bad number");
    out->kind = Value::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // Decode the code point to one byte when it is ASCII; otherwise
          // keep a placeholder (the tracing layer never emits non-ASCII).
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          const unsigned long cp =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          out->push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(Value* out) {
    out->kind = Value::Kind::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      Value item;
      if (!parse_value(&item)) return false;
      out->array.push_back(std::move(item));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
      skip_ws();
    }
  }

  bool parse_object(Value* out) {
    out->kind = Value::Kind::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      Value item;
      if (!parse_value(&item)) return false;
      out->object.emplace_back(std::move(key), std::move(item));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
      skip_ws();
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(const std::string& text, Value* out, std::string* error) {
  return Parser(text, error).run(out);
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace cs::json
