// Crash-consistent sectioned binary serialization for checkpoint files.
//
// File layout (all integers little-endian native; the format is
// single-machine durable state, not an interchange format):
//
//   [head magic u64]
//   [section 0 bytes][section 1 bytes]...        <- raw payload, contiguous
//   [footer: magic u64, version u32, nsections u32,
//            per section {name, offset u64, bytes u64, crc32c u32},
//            footer crc32c u32]
//   [trailer: footer offset u64, tail magic u64]
//
// The footer + trailer are the *commit record*: they are written and
// fsynced only after every section byte is on disk, so a crash mid-write
// leaves a file with no valid trailer -- always detectable, never
// misread as a shorter-but-valid checkpoint. The Reader verifies the
// trailer, footer CRC, format version, and every section's CRC32C
// before any typed read is allowed; a failure surfaces as a
// ClassifiedError/IoError at one of the ckpt.* sites (see DESIGN.md
// section 9 and section 14).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

namespace cs::serialize {

/// CRC32C (Castagnoli), software table implementation. Chain calls by
/// feeding the previous return value as `crc` (start from 0).
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t n);

inline constexpr std::uint32_t kFormatVersion = 1;

/// Streaming checkpoint writer. Usage: begin_section / typed writes /
/// end_section, repeated, then commit(). Until commit() returns, the
/// on-disk file is torn by construction (no trailer) and will be
/// rejected by the Reader. All failures throw IoError at a ckpt.* site;
/// ENOSPC short writes carry the same actionable "device is full"
/// phrasing as the OOC spill path.
class Writer {
 public:
  explicit Writer(const std::string& path);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void begin_section(const std::string& name);
  void end_section();

  void write_bytes(const void* data, std::size_t n);
  void write_u8(std::uint8_t v) { write_pod(v); }
  void write_u32(std::uint32_t v) { write_pod(v); }
  void write_u64(std::uint64_t v) { write_pod(v); }
  void write_i32(std::int32_t v) { write_pod(v); }
  void write_i64(std::int64_t v) { write_pod(v); }
  void write_f64(double v) { write_pod(v); }
  void write_string(const std::string& s);

  template <class P>
  void write_pod(const P& v) {
    static_assert(std::is_trivially_copyable_v<P>);
    write_bytes(&v, sizeof v);
  }

  /// Write the manifest footer + trailer, fsync, and close: the commit
  /// record. Returns the total file size in bytes. A Writer destroyed
  /// without commit() leaves a detectably-torn file behind.
  std::size_t commit();

 private:
  struct Section {
    std::string name;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint32_t crc = 0;
  };

  void raw_write(const void* data, std::size_t n);

  std::FILE* f_ = nullptr;
  std::string path_;
  std::vector<Section> sections_;
  bool in_section_ = false;
  bool committed_ = false;
  std::uint32_t crc_ = 0;            // running CRC of the open section
  std::uint64_t section_start_ = 0;  // offset of the open section
  std::uint64_t total_ = 0;          // bytes written so far
};

/// Verifying checkpoint reader. The constructor validates the trailer,
/// footer, format version, and the CRC32C of *every* section before
/// returning -- no payload byte is trusted until the whole file has been
/// checked. Integrity failures throw ClassifiedError(kIo) at ckpt.torn /
/// ckpt.version / ckpt.corrupt; I/O failures throw IoError.
class Reader {
 public:
  explicit Reader(const std::string& path);
  ~Reader();

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  bool has_section(const std::string& name) const;

  /// Position the read cursor at the start of a section. Throws
  /// ClassifiedError at ckpt.corrupt if the section is absent.
  void open_section(const std::string& name);

  /// Bytes left unread in the open section.
  std::uint64_t remaining() const;

  /// Throw ClassifiedError(ckpt.corrupt) unless `n` bytes remain in the
  /// open section. Call before sizing an allocation from file data.
  void require(std::uint64_t n) const;

  void read_bytes(void* data, std::size_t n);
  std::uint8_t read_u8() { return read_pod<std::uint8_t>(); }
  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int32_t read_i32() { return read_pod<std::int32_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  double read_f64() { return read_pod<double>(); }
  std::string read_string();

  template <class P>
  P read_pod() {
    static_assert(std::is_trivially_copyable_v<P>);
    P v;
    read_bytes(&v, sizeof v);
    return v;
  }

  std::size_t file_bytes() const { return file_bytes_; }

 private:
  struct Section {
    std::string name;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint32_t crc = 0;
  };

  const Section* find(const std::string& name) const;

  std::FILE* f_ = nullptr;
  std::string path_;
  std::vector<Section> sections_;
  std::size_t file_bytes_ = 0;
  int current_ = -1;
  std::uint64_t consumed_ = 0;  // bytes read from the open section
};

/// Length-prefixed vector of trivially-copyable elements.
template <class T>
void write_vec(Writer& w, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  w.write_u64(v.size());
  if (!v.empty()) w.write_bytes(v.data(), v.size() * sizeof(T));
}

template <class T>
std::vector<T> read_vec(Reader& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint64_t n = in.read_u64();
  in.require(n * sizeof(T));
  std::vector<T> v(static_cast<std::size_t>(n));
  if (n > 0) in.read_bytes(v.data(), v.size() * sizeof(T));
  return v;
}

}  // namespace cs::serialize
