// Tiny command-line flag parser for the examples and benchmark drivers.
// Flags are --name=value or --name value; unknown flags are an error so
// typos in experiment scripts fail loudly.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace cs {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Numeric list value: either an inclusive range "start:stop:step"
  /// (step > 0, start <= stop; e.g. --freqs 100:1000:50 expands to 100,
  /// 150, ..., 1000) or an explicit comma list "1.5,2,8". Malformed
  /// values exit(2) naming the flag, like get_int/get_double.
  std::vector<double> get_range(const std::string& name,
                                const std::vector<double>& fallback) const;

  /// Register a known flag with help text; call before parse_check().
  void describe(const std::string& name, const std::string& help);

  /// Print usage and exit(0) if --help given; abort on unknown flags.
  void check(const std::string& program_summary) const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> described_;
  std::string program_;
};

}  // namespace cs
