// Tracked, aligned storage used by all matrix containers in the library.
// Every Buffer allocation flows through MemoryTracker, which is how the
// experiment harness measures each algorithm's footprint and enforces the
// virtual memory budget (see common/memory.h).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "common/memory.h"

namespace cs {

template <class T>
class Buffer {
 public:
  Buffer() = default;

  explicit Buffer(std::size_t count) { reset(count); }

  Buffer(const Buffer& other) {
    reset(other.size_);
    std::copy(other.data_, other.data_ + other.size_, data_);
  }

  Buffer& operator=(const Buffer& other) {
    if (this != &other) {
      reset(other.size_);
      std::copy(other.data_, other.data_ + other.size_, data_);
    }
    return *this;
  }

  Buffer(Buffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        tag_(std::exchange(other.tag_, MemTag::kUntagged)) {}

  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      destroy();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      tag_ = std::exchange(other.tag_, MemTag::kUntagged);
    }
    return *this;
  }

  ~Buffer() { destroy(); }

  /// Discard contents and reallocate for `count` elements (uninitialized
  /// beyond value-initialization). Throws BudgetExceeded if the tracker's
  /// budget would be exceeded. The allocation is charged to the calling
  /// thread's MemoryScope tag, which the buffer remembers so the matching
  /// release hits the same ledger entry no matter where it is destroyed
  /// (factors allocated under mf.* scopes die at handle teardown, far from
  /// any scope).
  void reset(std::size_t count) {
    destroy();
    if (count == 0) return;
    const std::size_t bytes = count * sizeof(T);
    tag_ = MemoryScope::current();
    MemoryTracker::instance().allocate(bytes, tag_);
    void* raw = std::aligned_alloc(kAlignment, round_up(bytes));
    if (raw == nullptr) {
      MemoryTracker::instance().release(bytes, tag_);
      throw std::bad_alloc();
    }
    data_ = static_cast<T*>(raw);
    size_ = count;
    std::fill(data_, data_ + size_, T{});
  }

  void clear() { destroy(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  static constexpr std::size_t kAlignment = 64;  // cache line

  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

  void destroy() {
    if (data_ != nullptr) {
      std::free(data_);
      MemoryTracker::instance().release(size_ * sizeof(T), tag_);
      data_ = nullptr;
      size_ = 0;
      tag_ = MemTag::kUntagged;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  MemTag tag_ = MemTag::kUntagged;
};

}  // namespace cs
