// Minimal JSON support: a recursive-descent parser into a small value tree
// plus string escaping for writers. Used by the tracing layer to validate
// exported Chrome-trace files and by the run-report machinery; it is not a
// general-purpose JSON library (no streaming, no unicode normalization).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace cs::json {

/// Parsed JSON value. Objects keep their key order (insertion order of the
/// source document), which the tests rely on for stable diagnostics.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parse `text` into `out`. Returns false and fills `error` (with a byte
/// offset) on malformed input.
bool parse(const std::string& text, Value* out, std::string* error);

/// Escape a string for embedding between double quotes in JSON output.
std::string escape(const std::string& s);

/// Render a double as a JSON token: full round-trip precision (%.17g) for
/// finite values, the literal `null` for NaN/inf. Bare `nan`/`inf` is not
/// valid JSON — jq, Perfetto and this parser all reject it — and the
/// report/trace writers hit non-finite values routinely (NaN
/// relative_error from a failed run, inf compression ratio from a
/// division by zero). Every hand-rolled writer must emit numbers through
/// this helper.
std::string number(double v);

}  // namespace cs::json
