// Minimal leveled logger. Not performance critical; used by solvers to
// report phase progress when verbose mode is requested.
#pragma once

#include <sstream>
#include <string>

namespace cs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <class... Args>
std::string format_concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <class... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::format_concat(args...));
}
template <class... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::format_concat(args...));
}
template <class... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::format_concat(args...));
}
template <class... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::format_concat(args...));
}

}  // namespace cs
