// Deterministic random helpers. All tests and benchmarks seed explicitly so
// every run of the reproduction is bitwise repeatable.
#pragma once

#include <random>

#include "common/types.h"

namespace cs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  index_t uniform_index(index_t lo, index_t hi) {  // inclusive bounds
    return std::uniform_int_distribution<index_t>(lo, hi)(engine_);
  }

  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Random scalar of type T in [-1, 1] (each component for complex).
  template <class T>
  T scalar() {
    if constexpr (is_complex_v<T>) {
      return T(uniform(-1.0, 1.0), uniform(-1.0, 1.0));
    } else {
      return static_cast<T>(uniform(-1.0, 1.0));
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cs
