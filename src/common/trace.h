// Solver-wide tracing and metrics.
//
// The paper's figures are per-phase time and peak-memory curves; the
// task-parallel execution layer added in PR 1 made *where inside a phase*
// the pipeline stalls invisible to those coarse buckets. This layer records
// a task-level timeline of the whole solve path:
//
//  * TraceSpan    — RAII duration spans ("B"/"E" events) with a category
//                   and optional key/value args, recorded into per-thread
//                   ring buffers;
//  * trace_instant / trace_counter — point events and counter samples;
//  * trace_gauge_add — named in-flight gauges (live panel/job counts) that
//                   emit a counter sample on every change and are also
//                   polled by the sampler;
//  * TraceSampler — a background thread periodically sampling
//                   MemoryTracker current/peak and all gauges as counter
//                   tracks (the memory timeline);
//  * Tracer::write_json — Chrome trace-event JSON, loadable in
//                   chrome://tracing and https://ui.perfetto.dev;
//  * validate_chrome_trace — structural validation of an exported trace
//                   (used by tests and the CI smoke driver);
//  * Metrics      — always-on scalar run counters (admission decisions,
//                   pipeline stall time, recompression ranks) summarized
//                   into coupled::SolveStats::counters.
//
// Cost model: when tracing is disabled every recording entry point is one
// relaxed atomic load and an early return — no allocation, no locking, no
// per-thread state is created. Span/counter names must be string literals
// (or otherwise outlive the tracer); dynamic values belong in args.
//
// Thread-safety: each thread writes only its own buffer, under that
// buffer's (uncontended) mutex so that export from another thread is safe
// and ThreadSanitizer-clean. Buffers survive thread exit; OpenMP pools
// keep the buffer count bounded by the thread count.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cs {

/// Chrome trace-event phases used by this layer.
enum class TracePhase : char {
  kBegin = 'B',
  kEnd = 'E',
  kInstant = 'i',
  kCounter = 'C',
};

struct TraceEvent {
  const char* name = nullptr;      ///< literal; never owned
  const char* category = nullptr;  ///< literal; never owned
  TracePhase phase = TracePhase::kInstant;
  double ts_us = 0;          ///< microseconds since the tracer epoch
  double counter_value = 0;  ///< kCounter only
  std::string args;          ///< pre-rendered `"k":v` pairs, comma-joined
};

/// Process-wide trace recorder.
class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Enable/disable recording. Disabling keeps recorded events (so a run
  /// can stop tracing and export later); use clear() to drop them.
  void set_enabled(bool on);

  /// Drop all recorded events, buffers and gauges and restart the clock.
  void clear();

  /// Per-thread ring-buffer capacity for buffers created after the call
  /// (begin/instant/counter events; end events are exempt so spans stay
  /// balanced — see record()). 0 restores the default.
  void set_buffer_capacity(std::size_t events);

  double now_us() const;

  void record(TracePhase phase, const char* category, const char* name,
              double counter_value = 0, std::string args = {});

  /// Name the calling thread's track in the exported trace.
  void name_thread(const char* name);

  /// Named monotonic-id gauge: adds `delta`, emits a counter sample when
  /// enabled, returns the new value. Gauges persist across clear() calls
  /// only as names; their values reset.
  long gauge_add(const char* name, long delta);

  /// Sample memory.current / memory.peak and every registered gauge as
  /// counter events (called by TraceSampler, usable directly in tests).
  void sample_counters();

  // -- export / introspection ----------------------------------------------

  /// Chrome trace-event JSON ({"traceEvents": [...]}).
  std::string to_json() const;
  /// Write to_json() to `path`; false (with a log_warn) on I/O failure.
  bool write_json(const std::string& path) const;

  std::size_t thread_count() const;
  std::size_t event_count() const;
  std::size_t dropped_count() const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    int tid = 0;
    std::string thread_name;
    std::vector<TraceEvent> events;
    std::size_t capacity = 0;
    std::size_t dropped = 0;
    int open_dropped = 0;  ///< depth of spans whose B event was dropped
  };

  struct Gauge {
    std::string name;
    std::atomic<long> value{0};
  };

  Tracer();
  ThreadBuffer* buffer_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{1};
  std::atomic<std::size_t> capacity_;

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::int64_t epoch_ns_ = 0;
};

// -- convenience free functions --------------------------------------------

inline bool trace_enabled() { return Tracer::instance().enabled(); }

inline void trace_instant(const char* category, const char* name,
                          std::string args = {}) {
  auto& t = Tracer::instance();
  if (t.enabled()) t.record(TracePhase::kInstant, category, name, 0,
                            std::move(args));
}

inline void trace_counter(const char* name, double value) {
  auto& t = Tracer::instance();
  if (t.enabled()) t.record(TracePhase::kCounter, "counter", name, value);
}

inline void trace_thread_name(const char* name) {
  auto& t = Tracer::instance();
  if (t.enabled()) t.name_thread(name);
}

inline long trace_gauge_add(const char* name, long delta) {
  return Tracer::instance().gauge_add(name, delta);
}

/// RAII duration span. The begin event is emitted at construction; args
/// attached with arg() ride on the end event (Perfetto merges B/E args on
/// one slice). When tracing is disabled the constructor is one atomic
/// load and the object holds an empty (non-allocating) string.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name)
      : enabled_(trace_enabled()), category_(category), name_(name) {
    if (enabled_)
      Tracer::instance().record(TracePhase::kBegin, category_, name_);
  }

  ~TraceSpan() {
    if (enabled_)
      Tracer::instance().record(TracePhase::kEnd, category_, name_, 0,
                                std::move(args_));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  TraceSpan& arg(const char* key, double value) {
    if (enabled_) append(key, format_number(value));
    return *this;
  }
  TraceSpan& arg(const char* key, long long value) {
    if (enabled_) append(key, std::to_string(value));
    return *this;
  }
  TraceSpan& arg(const char* key, unsigned long long value) {
    if (enabled_) append(key, std::to_string(value));
    return *this;
  }
  TraceSpan& arg(const char* key, int value) {
    return arg(key, static_cast<long long>(value));
  }
  TraceSpan& arg(const char* key, long value) {
    return arg(key, static_cast<long long>(value));
  }
  TraceSpan& arg(const char* key, unsigned long value) {
    return arg(key, static_cast<unsigned long long>(value));
  }
  TraceSpan& arg(const char* key, const std::string& value);

 private:
  static std::string format_number(double value);
  void append(const char* key, const std::string& rendered);

  bool enabled_;
  const char* category_;
  const char* name_;
  std::string args_;
};

/// Background sampler: records memory.current / memory.peak and all gauges
/// every `period_us` for the lifetime of the object. No thread is started
/// when tracing is disabled at construction or period_us <= 0.
class TraceSampler {
 public:
  explicit TraceSampler(std::int64_t period_us);
  ~TraceSampler();

  TraceSampler(const TraceSampler&) = delete;
  TraceSampler& operator=(const TraceSampler&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Structural validation of a Chrome trace-event JSON document: parses the
/// text, checks the traceEvents schema (required fields per phase),
/// balanced B/E nesting per thread, non-decreasing timestamps per thread
/// and that counter events carry a numeric series. Returns an empty string
/// when valid, else a description of the first problem.
std::string validate_chrome_trace(const std::string& json_text);

// -- always-on run metrics --------------------------------------------------

/// Scalar counters summarizing one solve, collected whether or not tracing
/// is enabled (plain atomics; the cost is negligible against the work they
/// count). The counters are process-cumulative; a run that wants per-run
/// figures takes a values() snapshot on entry and reports delta_since() on
/// exit (what solve_coupled and FactoredCoupled::solve do for
/// SolveStats::counters), so several solves in one process — a frequency
/// sweep, a bench driver — each carry their own numbers.
enum class Metric : int {
  kPanelsProduced = 0,       ///< multi-solve pipeline panels built
  kPanelsFolded,             ///< panels folded into the Schur accumulator
  kPipelineProducerStallSec, ///< producer blocked on a full panel queue
  kPipelineConsumerStallSec, ///< consumer blocked on an empty panel queue
  kMultifactoJobs,           ///< (bi, bj) factorization jobs run
  kAdmissionWaits,           ///< acquire() calls that had to wait
  kAdmissionWaitSec,         ///< total time spent waiting for admission
  kAdmissionDegraded,        ///< planner reduced the requested parallelism
  kRecompressions,           ///< Rk-leaf recompressions (compressed AXPY)
  kRecompressRankMax,        ///< largest rank after a recompression
  kAcaFallbacks,             ///< ACA rank-cap hits -> dense compression
  kRefineSweeps,             ///< iterative-refinement sweeps run
  kFailpointFires,           ///< injected failures (common/failpoint.h)
  kRecoveries,               ///< degrade-and-retry recovery actions taken
  kOocRetries,               ///< OOC I/O operations retried after a failure
  kOocInCoreFallbacks,       ///< OOC spills abandoned; panel kept in core
  kRefineStalls,             ///< refinement plateaus under single factors
  kPrecisionEscalations,     ///< single -> double factor re-factorizations
  kAcaIterations,            ///< ACA cross products built (adaptive steps)
  kAcaRankHintHits,          ///< warm-started ACA converged under the hint
  kAcaRankHintMisses,        ///< hinted cap bound; ACA re-ran at full cap
  kSparseAnalysisReuses,     ///< multifrontal factorizations on a reused
                             ///< symbolic analysis
  kHmatStructureReuses,      ///< H-matrix assemblies on a reused skeleton
  kLaggedSolves,             ///< frequency-lagged solve attempts (sweep)
  kServeRequests,            ///< solve requests accepted by the service
  kServeCacheHits,           ///< requests served by a resident factorization
  kServeCacheMisses,         ///< requests that had to factorize or restore
  kServeCacheEvictions,      ///< cache entries evicted (budget/LRU)
  kServeCacheSpills,         ///< evictions spilled to a checkpoint file
  kServeCacheRestores,       ///< entries re-admitted from a spill checkpoint
  kServeFactorizations,      ///< full factorizations run by the service
  kServeCoalescedBatches,    ///< coalesced solve() batch calls issued
  kServeCoalescedColumns,    ///< RHS columns carried by coalesced batches
  kCount
};

const char* metric_name(Metric m);

class Metrics {
 public:
  static Metrics& instance();

  void add(Metric m, double delta) {
    auto& slot = values_[static_cast<std::size_t>(m)];
    double cur = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
    }
  }

  void observe_max(Metric m, double value) {
    auto& slot = values_[static_cast<std::size_t>(m)];
    double cur = slot.load(std::memory_order_relaxed);
    while (value > cur && !slot.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  double get(Metric m) const {
    return values_[static_cast<std::size_t>(m)].load(
        std::memory_order_relaxed);
  }

  void reset() {
    for (auto& v : values_) v.store(0, std::memory_order_relaxed);
  }

  /// Non-zero counters by name (the SolveStats summary).
  std::map<std::string, double> snapshot() const;

  /// Raw values of every counter (zeros included) — the "before" snapshot
  /// of a per-run delta.
  using Values =
      std::array<double, static_cast<std::size_t>(Metric::kCount)>;
  Values values() const {
    Values out{};
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = values_[i].load(std::memory_order_relaxed);
    return out;
  }

  /// True for high-water metrics recorded with observe_max rather than
  /// add: their per-run figure is the current value (when it advanced
  /// past the snapshot), not a difference.
  static bool is_high_water(Metric m) {
    return m == Metric::kRecompressRankMax;
  }

  /// Per-run counters since `before` (a values() snapshot taken at run
  /// start): additive counters report the difference, high-water metrics
  /// their current value when it advanced; zero deltas are omitted.
  /// Concurrent runs in other threads smear into each other's deltas —
  /// the same caveat the global counters always had, now bounded to the
  /// overlap window instead of the whole process lifetime.
  std::map<std::string, double> delta_since(const Values& before) const;

 private:
  Metrics() = default;
  std::array<std::atomic<double>, static_cast<std::size_t>(Metric::kCount)>
      values_{};
};

}  // namespace cs
