// Shared threading utilities for the task-parallel execution layer.
//
// Every parallel path in the library (H-matrix leaf loops, the multifrontal
// task tree, the coupled driver's Schur pipeline and block-parallel
// multi-factorization) follows the same two rules, which these helpers
// encode once:
//  * exceptions (BudgetExceeded, SingularMatrix) raised inside a worker
//    must never escape an OpenMP region or a std::thread -- they are
//    captured and rethrown on the calling thread, so a parallel run fails
//    exactly like the serial run;
//  * the thread count is a per-solve knob (coupled::Config::num_threads),
//    installed with ScopedNumThreads and read back with resolve_threads,
//    never a process-wide hardcode.
#pragma once

#include <omp.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace cs {

/// Effective worker count for a requested value (0 = hardware default, i.e.
/// whatever the enclosing OpenMP environment provides).
inline int resolve_threads(int requested) {
  return requested > 0 ? requested : omp_get_max_threads();
}

/// RAII OpenMP thread-count override: installs `n` (if > 0) for the scope
/// and restores the previous value on exit. Affects the calling thread's
/// subsequent parallel regions only.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n) : previous_(omp_get_max_threads()) {
    if (n > 0) omp_set_num_threads(n);
  }
  ~ScopedNumThreads() { omp_set_num_threads(previous_); }

  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int previous_;
};

/// Run f(i) for i in [0, n) on an OpenMP team. The first exception thrown
/// by any iteration is captured and rethrown on the calling thread after
/// the loop; remaining iterations are skipped once a failure is seen.
/// Inside an active parallel region (where a nested `parallel for` would
/// serialize anyway) the loop runs inline and exceptions propagate
/// directly.
template <class F>
void parallel_for_capture(std::size_t n, F&& f) {
  if (n == 0) return;
  if (n == 1 || omp_in_parallel() || omp_get_max_threads() <= 1) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  std::exception_ptr error = nullptr;
  std::atomic<bool> failed{false};
#pragma omp parallel for schedule(dynamic)
  for (std::size_t i = 0; i < n; ++i) {
    if (failed.load(std::memory_order_relaxed)) continue;
    try {
      f(i);
    } catch (...) {
#pragma omp critical(cs_parallel_for_capture)
      {
        if (!failed.exchange(true)) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
}

/// Recursion depth down to which divide-and-conquer algorithms should keep
/// spawning OpenMP tasks: deep enough to feed every thread with a few tasks
/// of slack for load balancing, shallow enough that task overhead stays
/// negligible against the block arithmetic.
inline int task_depth() {
  const int threads = omp_get_max_threads();
  int d = 0;
  while ((1 << d) < 4 * threads) ++d;
  return d;
}

/// Run the given thunks concurrently as OpenMP tasks (the last one inline on
/// the encountering thread) when inside a parallel region with task budget
/// (`depth > 0`); sequentially, in order, otherwise. All thunks complete
/// before returning; the first exception (by thunk order) is rethrown on the
/// calling thread.
inline void run_task_group(int depth, std::vector<std::function<void()>> fs) {
  if (fs.empty()) return;
  if (depth <= 0 || fs.size() == 1 || !omp_in_parallel()) {
    for (auto& f : fs) f();
    return;
  }
  std::vector<std::exception_ptr> errors(fs.size());
#pragma omp taskgroup
  {
    for (std::size_t t = 0; t + 1 < fs.size(); ++t) {
#pragma omp task default(shared) firstprivate(t)
      {
        try {
          fs[t]();
        } catch (...) {
          errors[t] = std::current_exception();
        }
      }
    }
    try {
      fs.back()();
    } catch (...) {
      errors.back() = std::current_exception();
    }
  }
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

/// Bounded single-producer / single-consumer queue backing the coupled
/// driver's Schur pipeline: the producer blocks when `capacity` items are
/// in flight (that is how the memory cap on in-flight panels is enforced),
/// the consumer blocks when the queue is empty. close() signals the end of
/// the stream; cancel() aborts from the consumer side, dropping queued
/// items and unblocking the producer.
template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  /// Blocks until there is space; returns false if the queue was cancelled
  /// (the item is dropped and the producer should stop).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    space_.wait(lock,
                [&] { return cancelled_ || items_.size() < capacity_; });
    if (cancelled_) return false;
    items_.push_back(std::move(item));
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available; returns nullopt once the queue is
  /// closed and drained (or cancelled).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock,
                [&] { return cancelled_ || closed_ || !items_.empty(); });
    if (cancelled_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    space_.notify_one();
    return item;
  }

  /// Producer side: no more items will be pushed.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Consumer side: abort the stream, dropping anything queued.
  void cancel() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      cancelled_ = true;
      items_.clear();
    }
    ready_.notify_all();
    space_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::condition_variable space_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
  bool cancelled_ = false;
};

}  // namespace cs
