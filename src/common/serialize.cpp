#include "common/serialize.h"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "common/failpoint.h"

namespace cs::serialize {

namespace {

// "CSCKPT1\0" / "CSFOOT1\0" / "CSTAIL1\0" as little-endian u64 constants.
constexpr std::uint64_t kHeadMagic = 0x0031'5450'4B43'5343ULL;
constexpr std::uint64_t kFooterMagic = 0x0031'544F'4F46'5343ULL;
constexpr std::uint64_t kTailMagic = 0x0031'4C49'4154'5343ULL;

constexpr std::size_t kTrailerBytes = 16;  // footer offset u64 + tail magic

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

[[noreturn]] void throw_corrupt(const std::string& detail) {
  throw ClassifiedError(ErrorCode::kIo, "ckpt.corrupt", detail);
}

[[noreturn]] void throw_torn(const std::string& detail) {
  throw ClassifiedError(ErrorCode::kIo, "ckpt.torn", detail);
}

void append_pod(std::string& buf, const void* data, std::size_t n) {
  buf.append(static_cast<const char*>(data), n);
}

template <class P>
void append_pod(std::string& buf, const P& v) {
  append_pod(buf, &v, sizeof v);
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t n) {
  const auto& table = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n-- > 0) crc = table[(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

Writer::Writer(const std::string& path) : path_(path) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr)
    throw IoError("ckpt.open", "cannot create checkpoint file " + path,
                  errno);
  raw_write(&kHeadMagic, sizeof kHeadMagic);
}

Writer::~Writer() {
  // An uncommitted Writer leaves a torn file (no trailer) -- the Reader
  // rejects it, which is exactly the crash-consistency contract.
  if (f_ != nullptr) std::fclose(f_);
}

void Writer::raw_write(const void* data, std::size_t n) {
  if (failpoint("ckpt.write"))
    throw IoError("ckpt.write", "injected checkpoint write failure", EIO);
  errno = 0;
  const std::size_t wrote = std::fwrite(data, 1, n, f_);
  if (wrote != n) {
    const int err = errno != 0 ? errno : EIO;
    const std::string amount =
        std::to_string(wrote) + "/" + std::to_string(n) + " bytes";
    if (err == ENOSPC || err == EDQUOT)
      throw IoError("ckpt.write",
                    "checkpoint device is full (short write of " + amount +
                        ")",
                    err);
    throw IoError("ckpt.write", "checkpoint short write (" + amount + ")",
                  err);
  }
  total_ += n;
}

void Writer::begin_section(const std::string& name) {
  if (in_section_)
    throw ClassifiedError(ErrorCode::kInternal, "ckpt.write",
                          "begin_section('" + name +
                              "') with a section already open");
  in_section_ = true;
  crc_ = 0;
  section_start_ = total_;
  sections_.push_back(Section{name, total_, 0, 0});
}

void Writer::end_section() {
  if (!in_section_)
    throw ClassifiedError(ErrorCode::kInternal, "ckpt.write",
                          "end_section() with no section open");
  in_section_ = false;
  Section& s = sections_.back();
  s.bytes = total_ - section_start_;
  s.crc = crc_;
}

void Writer::write_bytes(const void* data, std::size_t n) {
  if (!in_section_)
    throw ClassifiedError(ErrorCode::kInternal, "ckpt.write",
                          "write outside a section");
  raw_write(data, n);
  crc_ = crc32c(crc_, data, n);
}

void Writer::write_string(const std::string& s) {
  write_u64(s.size());
  write_bytes(s.data(), s.size());
}

std::size_t Writer::commit() {
  if (in_section_)
    throw ClassifiedError(ErrorCode::kInternal, "ckpt.write",
                          "commit() with a section still open");
  if (committed_)
    throw ClassifiedError(ErrorCode::kInternal, "ckpt.write",
                          "commit() called twice");

  // Injected crash between the payload and the commit record: the file
  // stays on disk with every section byte present but no trailer -- the
  // canonical torn write the Reader must reject.
  if (failpoint("ckpt.torn")) {
    std::fflush(f_);
    std::fclose(f_);
    f_ = nullptr;
    throw IoError("ckpt.torn",
                  "injected crash before the checkpoint commit record", EIO);
  }

  std::string footer;
  append_pod(footer, kFooterMagic);
  append_pod(footer, kFormatVersion);
  append_pod(footer, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    append_pod(footer, static_cast<std::uint64_t>(s.name.size()));
    footer.append(s.name);
    append_pod(footer, s.offset);
    append_pod(footer, s.bytes);
    append_pod(footer, s.crc);
  }
  const std::uint32_t footer_crc = crc32c(0, footer.data(), footer.size());
  append_pod(footer, footer_crc);

  const std::uint64_t footer_offset = total_;
  raw_write(footer.data(), footer.size());
  raw_write(&footer_offset, sizeof footer_offset);
  raw_write(&kTailMagic, sizeof kTailMagic);

  if (std::fflush(f_) != 0)
    throw IoError("ckpt.write", "checkpoint flush failed",
                  errno != 0 ? errno : EIO);
  if (failpoint("ckpt.fsync"))
    throw IoError("ckpt.fsync", "injected checkpoint fsync failure", EIO);
  if (::fsync(fileno(f_)) != 0)
    throw IoError("ckpt.fsync", "checkpoint fsync failed",
                  errno != 0 ? errno : EIO);
  std::fclose(f_);
  f_ = nullptr;
  committed_ = true;
  return static_cast<std::size_t>(total_);
}

Reader::Reader(const std::string& path) : path_(path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (f_ == nullptr)
    throw IoError("ckpt.open", "cannot open checkpoint file " + path, errno);

  std::fseek(f_, 0, SEEK_END);
  const long end = std::ftell(f_);
  file_bytes_ = end > 0 ? static_cast<std::size_t>(end) : 0;

  // Smallest committed file: head magic + empty footer + trailer.
  const std::size_t min_bytes =
      sizeof kHeadMagic + (8 + 4 + 4 + 4) + kTrailerBytes;
  if (file_bytes_ < min_bytes)
    throw_torn("checkpoint file is " + std::to_string(file_bytes_) +
               " bytes -- truncated before the commit record");

  std::uint64_t head = 0;
  std::fseek(f_, 0, SEEK_SET);
  if (std::fread(&head, sizeof head, 1, f_) != 1)
    throw IoError("ckpt.read", "cannot read checkpoint head", errno);
  if (head != kHeadMagic)
    throw ClassifiedError(ErrorCode::kIo, "ckpt.open",
                          path + " is not a checkpoint file (bad magic)");

  std::uint64_t footer_offset = 0;
  std::uint64_t tail = 0;
  std::fseek(f_, -static_cast<long>(kTrailerBytes), SEEK_END);
  if (std::fread(&footer_offset, sizeof footer_offset, 1, f_) != 1 ||
      std::fread(&tail, sizeof tail, 1, f_) != 1)
    throw IoError("ckpt.read", "cannot read checkpoint trailer", errno);
  if (tail != kTailMagic)
    throw_torn("checkpoint has no commit record (torn or interrupted "
               "write)");
  if (footer_offset < sizeof kHeadMagic ||
      footer_offset + kTrailerBytes >= file_bytes_)
    throw_torn("checkpoint commit record points outside the file");

  const std::size_t footer_bytes =
      file_bytes_ - kTrailerBytes - static_cast<std::size_t>(footer_offset);
  std::string footer(footer_bytes, '\0');
  std::fseek(f_, static_cast<long>(footer_offset), SEEK_SET);
  if (std::fread(footer.data(), 1, footer_bytes, f_) != footer_bytes)
    throw IoError("ckpt.read", "cannot read checkpoint manifest", errno);
  if (footer_bytes < 4 + (8 + 4 + 4))
    throw_torn("checkpoint manifest is too small");
  std::uint32_t stored_footer_crc = 0;
  std::memcpy(&stored_footer_crc, footer.data() + footer_bytes - 4, 4);
  if (crc32c(0, footer.data(), footer_bytes - 4) != stored_footer_crc)
    throw_corrupt("checkpoint manifest failed CRC32C verification");

  std::size_t pos = 0;
  auto take = [&](void* out, std::size_t n) {
    if (pos + n > footer_bytes - 4)
      throw_corrupt("checkpoint manifest is malformed");
    std::memcpy(out, footer.data() + pos, n);
    pos += n;
  };
  std::uint64_t footer_magic = 0;
  take(&footer_magic, sizeof footer_magic);
  if (footer_magic != kFooterMagic)
    throw_torn("checkpoint commit record is not a manifest");
  std::uint32_t version = 0;
  take(&version, sizeof version);
  if (version != kFormatVersion)
    throw ClassifiedError(
        ErrorCode::kIo, "ckpt.version",
        "checkpoint format version " + std::to_string(version) +
            ", this build reads version " + std::to_string(kFormatVersion));
  std::uint32_t nsections = 0;
  take(&nsections, sizeof nsections);
  sections_.reserve(nsections);
  for (std::uint32_t i = 0; i < nsections; ++i) {
    Section s;
    std::uint64_t name_len = 0;
    take(&name_len, sizeof name_len);
    if (name_len > footer_bytes)
      throw_corrupt("checkpoint manifest is malformed");
    s.name.resize(static_cast<std::size_t>(name_len));
    take(s.name.data(), s.name.size());
    take(&s.offset, sizeof s.offset);
    take(&s.bytes, sizeof s.bytes);
    take(&s.crc, sizeof s.crc);
    if (s.offset < sizeof kHeadMagic || s.offset + s.bytes > footer_offset)
      throw_corrupt("checkpoint section '" + s.name +
                    "' lies outside the payload region");
    sections_.push_back(std::move(s));
  }

  // Verify every section's CRC before any typed read is allowed: a
  // flipped byte anywhere is caught here, not deep inside deserialization.
  const bool inject_corrupt = failpoint("ckpt.corrupt");
  std::vector<char> buf(1 << 16);
  for (const Section& s : sections_) {
    std::uint32_t crc = 0;
    std::fseek(f_, static_cast<long>(s.offset), SEEK_SET);
    std::uint64_t left = s.bytes;
    while (left > 0) {
      const std::size_t chunk = static_cast<std::size_t>(
          left < buf.size() ? left : buf.size());
      if (std::fread(buf.data(), 1, chunk, f_) != chunk)
        throw IoError("ckpt.read",
                      "cannot read checkpoint section '" + s.name + "'",
                      errno);
      crc = crc32c(crc, buf.data(), chunk);
      left -= chunk;
    }
    if (crc != s.crc || (inject_corrupt && &s == &sections_.front()))
      throw_corrupt("checkpoint section '" + s.name +
                    "' failed CRC32C verification");
  }
}

Reader::~Reader() {
  if (f_ != nullptr) std::fclose(f_);
}

const Reader::Section* Reader::find(const std::string& name) const {
  for (const Section& s : sections_)
    if (s.name == name) return &s;
  return nullptr;
}

bool Reader::has_section(const std::string& name) const {
  return find(name) != nullptr;
}

void Reader::open_section(const std::string& name) {
  const Section* s = find(name);
  if (s == nullptr)
    throw_corrupt("checkpoint lacks required section '" + name + "'");
  current_ = static_cast<int>(s - sections_.data());
  consumed_ = 0;
  std::fseek(f_, static_cast<long>(s->offset), SEEK_SET);
}

std::uint64_t Reader::remaining() const {
  if (current_ < 0) return 0;
  return sections_[static_cast<std::size_t>(current_)].bytes - consumed_;
}

void Reader::require(std::uint64_t n) const {
  if (n > remaining())
    throw_corrupt(
        "checkpoint section '" +
        (current_ >= 0 ? sections_[static_cast<std::size_t>(current_)].name
                       : std::string("?")) +
        "' is shorter than its contents claim");
}

void Reader::read_bytes(void* data, std::size_t n) {
  require(n);
  if (n == 0) return;
  if (std::fread(data, 1, n, f_) != n)
    throw IoError("ckpt.read", "cannot read checkpoint payload", errno);
  consumed_ += n;
}

std::string Reader::read_string() {
  const std::uint64_t n = read_u64();
  require(n);
  std::string s(static_cast<std::size_t>(n), '\0');
  if (n > 0) read_bytes(s.data(), s.size());
  return s;
}

}  // namespace cs::serialize
