#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace cs {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?    ";
  }
}

/// Monotonic seconds since the first log call: correlates log lines with
/// each other and with the trace timeline regardless of wall-clock jumps.
double uptime_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

/// Small dense per-thread id (registration order), stable for the life of
/// the thread; easier to scan in interleaved output than native handles.
int thread_log_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& msg) {
  const double t = uptime_seconds();
  const int tid = thread_log_id();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[cs %10.3f %s t%02d] %s\n", t, level_tag(level), tid,
               msg.c_str());
}

}  // namespace cs
