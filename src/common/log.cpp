#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cs {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?    ";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[cs %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace cs
