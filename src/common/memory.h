// Byte-accounted memory tracking with an optional hard budget and a
// per-subsystem attribution ledger.
//
// The paper's central experimental question is "what is the largest coupled
// system each algorithm can process on a node with a fixed amount of RAM?".
// The reproduction runs inside a container whose physical RAM differs from
// the paper's miriel node, so instead of relying on the OS we account every
// matrix allocation (dense, sparse, low-rank, frontal) through this tracker
// and impose a configurable *virtual budget*. Exceeding the budget throws
// BudgetExceeded, which the experiment harness reports exactly like the
// paper reports an out-of-memory failure.
//
// Attribution ledger: every tracked allocation is charged to the MemTag
// installed by the innermost MemoryScope on the allocating thread, and the
// owning container remembers that tag so the matching release is charged to
// the same tag regardless of which scope the bytes die in. When the global
// high-water mark advances, the per-tag breakdown at that instant is
// captured, so "peak = 9.8 GiB" decomposes into "6.1 GiB fronts + 2.9 GiB
// dense Schur + ...". Cost on the allocation hot path: one extra relaxed
// add plus a relaxed peak check per tag; the snapshot mutex is taken only
// when the high-water mark actually advances.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>

namespace cs {

/// Subsystem tags for the attribution ledger. Fixed taxonomy: every tracked
/// byte belongs to exactly one tag (kUntagged when no scope is installed),
/// so the per-tag currents always sum to the global current -- except
/// kPackScratch, which accounts the deliberately budget-exempt gemm pack
/// buffers (see la/pack.h) and is excluded from that invariant.
enum class MemTag : unsigned char {
  kUntagged = 0,    ///< no MemoryScope installed on the allocating thread
  kSparseMatrix,    ///< assembled/permuted CSR operators
  kCouplingBlock,   ///< tree-ordered coupling block A_sv and precision copies
  kMfFront,         ///< multifrontal frontal matrices + contribution blocks
  kMfFactor,        ///< retained pivot blocks of the sparse factor
  kMfBlrPanel,      ///< retained BLR/dense off-diagonal factor panels
  kOocBuffer,       ///< panels re-materialized from the out-of-core store
  kHmatRk,          ///< H-matrix low-rank leaves (ACA/RRQR U,V factors)
  kHmatDense,       ///< H-matrix full leaves
  kSchurDense,      ///< dense Schur complement accumulators
  kSchurPanel,      ///< transient solve/update panels feeding the Schur
  kRhsWorkspace,    ///< right-hand sides, residuals, refinement workspace
  kPackScratch,     ///< gemm pack scratch (budget-exempt, per-tag only)
  kCount
};

inline constexpr std::size_t kMemTagCount =
    static_cast<std::size_t>(MemTag::kCount);

/// Dotted display name of a tag ("mf.front", "hmat.rk", ...). Returns a
/// string literal with static lifetime, safe to hand to the tracer.
const char* mem_tag_name(MemTag tag);

/// Trace-counter name of a tag ("mem.mf.front", ...). Also a static-lifetime
/// string literal, as required by the tracer's counter records.
const char* mem_tag_counter_name(MemTag tag);

/// Per-tag byte counts indexed by static_cast<size_t>(MemTag).
using MemTagArray = std::array<std::size_t, kMemTagCount>;

/// RAII attribution scope: installs `tag` as the allocation tag of the
/// current thread and restores the previous tag on destruction. Scopes are
/// thread-local, so one must be installed inside each parallel task/thread
/// body that allocates (a parent thread's scope does not propagate into OMP
/// tasks or std::thread workers).
class MemoryScope {
 public:
  explicit MemoryScope(MemTag tag) noexcept : previous_(current_tag_) {
    current_tag_ = tag;
  }
  ~MemoryScope() { current_tag_ = previous_; }

  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;

  /// Tag charged by tracked allocations on this thread right now.
  static MemTag current() noexcept { return current_tag_; }

 private:
  inline static thread_local MemTag current_tag_ = MemTag::kUntagged;
  MemTag previous_;
};

/// Thrown by tracked allocations when the virtual memory budget would be
/// exceeded. Carries the attempted size and the per-tag attribution of the
/// bytes in use at throw time, so the error names the owning subsystems.
class BudgetExceeded : public std::runtime_error {
 public:
  /// Captures the live attribution ledger from MemoryTracker::instance().
  BudgetExceeded(std::size_t requested, std::size_t in_use,
                 std::size_t budget);

  std::size_t requested() const { return requested_; }
  std::size_t in_use() const { return in_use_; }
  std::size_t budget() const { return budget_; }

  /// Bytes charged to each tag when the exception was built.
  const MemTagArray& attribution() const { return attribution_; }

 private:
  std::size_t requested_;
  std::size_t in_use_;
  std::size_t budget_;
  MemTagArray attribution_;
};

/// Process-wide tracker of solver matrix storage. Thread-safe.
class MemoryTracker {
 public:
  static MemoryTracker& instance();

  /// Record an allocation of `bytes`, charged to the calling thread's
  /// current MemoryScope tag. Throws BudgetExceeded when a budget is set
  /// and would be exceeded (the allocation is not recorded in that case).
  void allocate(std::size_t bytes) { allocate(bytes, MemoryScope::current()); }

  /// Record an allocation charged to an explicit tag (containers that
  /// captured their tag at construction use this for consistency).
  void allocate(std::size_t bytes, MemTag tag);

  /// Record a matching deallocation against the tag the bytes were
  /// allocated under.
  void release(std::size_t bytes, MemTag tag);
  void release(std::size_t bytes) { release(bytes, MemoryScope::current()); }

  std::size_t current() const { return current_.load(); }
  std::size_t peak() const { return peak_.load(); }

  /// Live bytes / high-water mark charged to one tag.
  std::size_t tag_current(MemTag tag) const {
    return tag_current_[static_cast<std::size_t>(tag)].load(
        std::memory_order_relaxed);
  }
  std::size_t tag_peak(MemTag tag) const {
    return tag_peak_[static_cast<std::size_t>(tag)].load(
        std::memory_order_relaxed);
  }

  /// Per-tag breakdown captured the last time the global high-water mark
  /// advanced. Concurrent allocators make the capture approximate (the tag
  /// counters are read one after another while other threads keep
  /// allocating), so the entries sum to peak() within slack, not exactly.
  MemTagArray peak_attribution() const;

  /// Per-tag-only accounting for budget-exempt scratch (gemm pack buffers):
  /// updates the kPackScratch gauge and its high-water mark but neither the
  /// global counters nor the budget, and never throws -- a budget-capped
  /// solve must not be able to fail inside a gemm.
  void note_scratch(std::ptrdiff_t delta_bytes) noexcept;

  /// Set a hard budget in bytes; 0 disables the budget.
  void set_budget(std::size_t bytes) { budget_.store(bytes); }
  std::size_t budget() const { return budget_.load(); }

  /// Reset the peak-bytes watermark (global and per-tag) to the current
  /// usage and re-seed the peak-attribution snapshot from the live ledger
  /// (used between experiment runs). Does not touch the current counters.
  void reset_peak();

 private:
  MemoryTracker() = default;

  void capture_peak_snapshot(std::size_t peak_now);

  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> budget_{0};
  std::array<std::atomic<std::size_t>, kMemTagCount> tag_current_{};
  std::array<std::atomic<std::size_t>, kMemTagCount> tag_peak_{};

  /// Snapshot of tag_current_ taken when peak_ last advanced; guarded by
  /// snapshot_mutex_ (cold path: the mark advances monotonically and the
  /// capture is a dozen relaxed loads).
  mutable std::mutex snapshot_mutex_;
  MemTagArray snapshot_{};
  std::size_t snapshot_peak_ = 0;
};

/// RAII guard installing a budget for the duration of a scope and restoring
/// the previous one on exit. Used by tests and by the figure benchmarks.
class ScopedBudget {
 public:
  explicit ScopedBudget(std::size_t bytes)
      : previous_(MemoryTracker::instance().budget()) {
    MemoryTracker::instance().set_budget(bytes);
  }
  ~ScopedBudget() { MemoryTracker::instance().set_budget(previous_); }

  ScopedBudget(const ScopedBudget&) = delete;
  ScopedBudget& operator=(const ScopedBudget&) = delete;

 private:
  std::size_t previous_;
};

/// Pretty "12.3 GiB" formatting for reports.
std::string format_bytes(std::size_t bytes);

}  // namespace cs
