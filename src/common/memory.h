// Byte-accounted memory tracking with an optional hard budget.
//
// The paper's central experimental question is "what is the largest coupled
// system each algorithm can process on a node with a fixed amount of RAM?".
// The reproduction runs inside a container whose physical RAM differs from
// the paper's miriel node, so instead of relying on the OS we account every
// matrix allocation (dense, sparse, low-rank, frontal) through this tracker
// and impose a configurable *virtual budget*. Exceeding the budget throws
// BudgetExceeded, which the experiment harness reports exactly like the
// paper reports an out-of-memory failure.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace cs {

/// Thrown by tracked allocations when the virtual memory budget would be
/// exceeded. Carries the attempted size for diagnostics.
class BudgetExceeded : public std::runtime_error {
 public:
  BudgetExceeded(std::size_t requested, std::size_t in_use, std::size_t budget)
      : std::runtime_error(
            "memory budget exceeded: requested " + std::to_string(requested) +
            " B with " + std::to_string(in_use) + " B in use, budget " +
            std::to_string(budget) + " B"),
        requested_(requested),
        in_use_(in_use),
        budget_(budget) {}

  std::size_t requested() const { return requested_; }
  std::size_t in_use() const { return in_use_; }
  std::size_t budget() const { return budget_; }

 private:
  std::size_t requested_;
  std::size_t in_use_;
  std::size_t budget_;
};

/// Process-wide tracker of solver matrix storage. Thread-safe.
class MemoryTracker {
 public:
  static MemoryTracker& instance();

  /// Record an allocation of `bytes`. Throws BudgetExceeded when a budget is
  /// set and would be exceeded (the allocation is not recorded in that case).
  void allocate(std::size_t bytes);

  /// Record a matching deallocation.
  void release(std::size_t bytes);

  std::size_t current() const { return current_.load(); }
  std::size_t peak() const { return peak_.load(); }

  /// Set a hard budget in bytes; 0 disables the budget.
  void set_budget(std::size_t bytes) { budget_.store(bytes); }
  std::size_t budget() const { return budget_.load(); }

  /// Reset the peak-bytes watermark to the current usage (used between
  /// experiment runs). Does not touch the current counter.
  void reset_peak();

 private:
  MemoryTracker() = default;

  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> budget_{0};
};

/// RAII guard installing a budget for the duration of a scope and restoring
/// the previous one on exit. Used by tests and by the figure benchmarks.
class ScopedBudget {
 public:
  explicit ScopedBudget(std::size_t bytes)
      : previous_(MemoryTracker::instance().budget()) {
    MemoryTracker::instance().set_budget(bytes);
  }
  ~ScopedBudget() { MemoryTracker::instance().set_budget(previous_); }

  ScopedBudget(const ScopedBudget&) = delete;
  ScopedBudget& operator=(const ScopedBudget&) = delete;

 private:
  std::size_t previous_;
};

/// Pretty "12.3 GiB" formatting for reports.
std::string format_bytes(std::size_t bytes);

}  // namespace cs
