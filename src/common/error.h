// Structured error taxonomy of the solve engine.
//
// The paper's experiments treat a run that exceeds the memory ceiling the
// same way they treat one that completes: as a data point. A production
// variant of the solver must go further and *classify* failures, because
// the right reaction differs per class — a budget hit wants smaller
// blocking parameters or out-of-core spilling, an unpivoted-LDLT breakdown
// wants the LU code path, a transient I/O error wants a retry. Every
// failure that escapes a solve is mapped onto one of the ErrorCode values
// below and carried to the caller as a SolveError{code, site, detail};
// coupled::solve_coupled's degrade-and-retry loop keys its recovery policy
// off this classification (see DESIGN.md §9).
#pragma once

#include <cerrno>
#include <stdexcept>
#include <string>

namespace cs {

enum class ErrorCode : int {
  kNone = 0,            ///< no failure
  kBudget,              ///< virtual memory budget exceeded
  kSingular,            ///< matrix is singular (LU met a zero pivot)
  kNumericalBreakdown,  ///< method-specific breakdown with a known fallback
                        ///< (unpivoted LDLT zero pivot, ACA non-convergence)
  kIo,                  ///< out-of-core I/O failure (read/write/open)
  kInternal,            ///< invalid configuration or unexpected exception
};

const char* error_code_name(ErrorCode code);

/// The structured failure record reported in SolveStats: what class of
/// error (`code`), where it was raised (`site`, a dotted failpoint-style
/// name such as "hldlt.pivot" or "ooc.read"), and the original message.
struct SolveError {
  ErrorCode code = ErrorCode::kNone;
  std::string site;
  std::string detail;

  bool ok() const { return code == ErrorCode::kNone; }
};

/// Out-of-core I/O failure. Carries the errno so ENOSPC (disk full — no
/// point retrying) is distinguishable from transient errors (EIO, EINTR,
/// ...), and the site it was raised at ("ooc.write", "ooc.read", ...).
class IoError : public std::runtime_error {
 public:
  IoError(std::string site, const std::string& what, int errno_value)
      : std::runtime_error(what + (errno_value != 0
                                       ? " (errno " +
                                             std::to_string(errno_value) + ")"
                                       : std::string())),
        site_(std::move(site)),
        errno_(errno_value) {}

  const std::string& site() const { return site_; }
  int errno_value() const { return errno_; }
  /// Worth retrying? Disk-full conditions are not; everything else
  /// (spurious short write, EINTR, EIO) may be.
  bool transient() const { return errno_ != ENOSPC && errno_ != EDQUOT; }

 private:
  std::string site_;
  int errno_;
};

/// An exception already mapped onto the taxonomy at the site that
/// understands it (e.g. the H-LDLT driver knows a zero pivot there is a
/// recoverable kNumericalBreakdown, not a kSingular). The top-level
/// catch in solve_coupled copies the classification into SolveStats.
class ClassifiedError : public std::runtime_error {
 public:
  ClassifiedError(ErrorCode code, std::string site, std::string detail)
      : std::runtime_error(std::string(error_code_name(code)) + " at " +
                           site + ": " + detail),
        error_{code, std::move(site), std::move(detail)} {}

  const SolveError& error() const { return error_; }

 private:
  SolveError error_;
};

}  // namespace cs
