#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace cs {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf(" %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    std::printf("\n");
  };
  auto print_sep = [&] {
    std::printf("+");
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
  std::fflush(stdout);
}

void TablePrinter::print_csv() const {
  auto emit = [](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%s%s", c ? "," : "", row[c].c_str());
    std::printf("\n");
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  std::fflush(stdout);
}

std::string TablePrinter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::fmt_int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

}  // namespace cs
