// Wall-clock timing helpers used by the experiment harness to report the
// per-phase times (sparse factorization, Schur assembly, dense
// factorization, solves) that the paper's figures are built from.
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace cs {

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase durations; used by coupled::SolveStats.
class PhaseTimes {
 public:
  void add(const std::string& phase, double seconds) {
    times_[phase] += seconds;
  }
  double get(const std::string& phase) const {
    auto it = times_.find(phase);
    return it == times_.end() ? 0.0 : it->second;
  }
  double total() const {
    double s = 0.0;
    for (const auto& [k, v] : times_) s += v;
    return s;
  }
  const std::map<std::string, double>& all() const { return times_; }

 private:
  std::map<std::string, double> times_;
};

/// RAII helper accumulating the lifetime of a scope into a PhaseTimes entry.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimes& sink, std::string phase)
      : sink_(sink), phase_(std::move(phase)) {}
  ~ScopedPhase() { sink_.add(phase_, timer_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimes& sink_;
  std::string phase_;
  Timer timer_;
};

}  // namespace cs
