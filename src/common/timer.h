// Wall-clock timing helpers used by the experiment harness to report the
// per-phase times (sparse factorization, Schur assembly, dense
// factorization, solves) that the paper's figures are built from.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace cs {

/// Simple wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase durations; used by coupled::SolveStats.
///
/// Thread-safe: ScopedPhase instances may be opened concurrently from
/// pipeline stages and worker threads. Overlapping scopes of the *same*
/// phase are merged -- the phase accumulates the wall-clock time during
/// which at least one scope was active, not the sum over threads -- so a
/// phase never double-counts when its work fans out over a team.
class PhaseTimes {
 public:
  PhaseTimes() = default;

  PhaseTimes(const PhaseTimes& other) {
    std::lock_guard<std::mutex> lock(other.mutex_);
    times_ = other.times_;
  }
  PhaseTimes& operator=(const PhaseTimes& other) {
    if (this == &other) return *this;
    std::map<std::string, Entry> copy;
    {
      std::lock_guard<std::mutex> lock(other.mutex_);
      copy = other.times_;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    times_ = std::move(copy);
    return *this;
  }

  /// Direct accumulation of a pre-measured duration.
  void add(const std::string& phase, double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    times_[phase].seconds += seconds;
  }

  /// Open one concurrent scope of `phase` (see ScopedPhase).
  void begin(const std::string& phase) {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& e = times_[phase];
    if (e.active++ == 0) e.started = clock::now();
  }

  /// Close one concurrent scope of `phase`; when the last scope closes the
  /// covered wall-clock interval is added.
  void end(const std::string& phase) {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& e = times_[phase];
    if (--e.active == 0)
      e.seconds +=
          std::chrono::duration<double>(clock::now() - e.started).count();
  }

  double get(const std::string& phase) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = times_.find(phase);
    return it == times_.end() ? 0.0 : it->second.seconds;
  }

  double total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    double s = 0.0;
    for (const auto& [k, v] : times_) s += v.seconds;
    return s;
  }

  /// Snapshot of all phase totals.
  std::map<std::string, double> all() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, double> out;
    for (const auto& [k, v] : times_) out[k] = v.seconds;
    return out;
  }

 private:
  using clock = std::chrono::steady_clock;
  struct Entry {
    double seconds = 0.0;
    int active = 0;  ///< currently open scopes of this phase
    clock::time_point started;  ///< when active went 0 -> 1
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> times_;
};

/// RAII helper accumulating the lifetime of a scope into a PhaseTimes entry.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimes& sink, std::string phase)
      : sink_(sink), phase_(std::move(phase)) {
    sink_.begin(phase_);
  }
  ~ScopedPhase() { sink_.end(phase_); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimes& sink_;
  std::string phase_;
};

}  // namespace cs
