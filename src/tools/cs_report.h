// Run-report analyzer: turns the JSON reports emitted by the benchmarks
// (--report=...) into human-readable summaries -- per-run peak-attribution
// tables from the memory ledger, planner predicted-vs-actual audits, the
// top-N pipeline stages by time, and an A-vs-B diff between two reports.
//
// The analysis functions are a library (exercised by the golden-output
// tests); the cs-report binary is a thin CLI wrapper around them. All
// output is built with fixed-format snprintf so the text is stable across
// platforms and suitable for golden comparison.
#pragma once

#include <string>

#include "common/json.h"

namespace cs::tools {

struct ReportOptions {
  /// How many pipeline stages (by seconds, descending) to print per run.
  std::size_t top_stages = 8;
};

/// Read and parse a run-report JSON file ({"binary":..., "runs":[...]}).
/// Throws std::runtime_error with a one-line reason on unreadable or
/// malformed input.
json::Value load_report(const std::string& path);

/// Full single-report analysis: per-run summary, peak-attribution table,
/// planner audit, top stages, plus a cross-run planner audit table.
std::string analyze_report(const json::Value& report,
                           const ReportOptions& opts = {});

/// A-vs-B comparison between two reports. Runs are matched by
/// (label, config_desc); unmatched runs on either side are listed.
std::string diff_reports(const json::Value& a, const json::Value& b,
                         const ReportOptions& opts = {});

}  // namespace cs::tools
