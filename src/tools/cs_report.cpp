#include "tools/cs_report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/memory.h"

namespace cs::tools {

namespace {

std::string fmt(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

double dnum(const json::Value* v) {
  return v != nullptr && v->is_number() ? v->number : 0.0;
}

std::size_t bnum(const json::Value* v) {
  const double d = dnum(v);
  return d > 0 ? static_cast<std::size_t>(d) : 0;
}

std::string sstr(const json::Value* v, const char* dflt = "?") {
  return v != nullptr && v->is_string() ? v->string : dflt;
}

/// "label / config_desc" -- the identity used for run headers and for
/// matching runs across two reports in diff mode.
std::string run_key(const json::Value& run) {
  return sstr(run.find("label")) + " / " + sstr(run.find("config_desc"));
}

const json::Value* run_stats(const json::Value& run) {
  const json::Value* s = run.find("stats");
  return s != nullptr && s->is_object() ? s : nullptr;
}

/// Peak-attribution rows of one run, largest owner first.
std::vector<std::pair<std::string, std::size_t>> tag_rows(
    const json::Value* stats) {
  std::vector<std::pair<std::string, std::size_t>> rows;
  if (stats == nullptr) return rows;
  const json::Value* by_tag = stats->find("peak_by_tag");
  if (by_tag == nullptr || !by_tag->is_object()) return rows;
  for (const auto& [tag, bytes] : by_tag->object)
    rows.emplace_back(tag, bnum(&bytes));
  std::stable_sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return rows;
}

std::string planner_verdict(double ratio) {
  if (ratio <= 0) return "n/a";
  if (ratio > 1.05) return "over";
  if (ratio < 0.95) return "under";
  return "good";
}

void append_run_analysis(std::string& out, const json::Value& run,
                         std::size_t index, const ReportOptions& opts) {
  const json::Value* stats = run_stats(run);
  const json::Value* config = run.find("config");
  out += fmt("-- run %zu: %s --\n", index + 1, run_key(run).c_str());
  if (stats == nullptr) {
    out += "  (no stats object)\n\n";
    return;
  }
  const json::Value* success = stats->find("success");
  const bool ok = success != nullptr && success->is_bool() && success->boolean;
  std::string status = ok ? "success" : "FAILED";
  if (!ok) {
    const std::string why = sstr(stats->find("failure"), "");
    if (!why.empty()) status += " (" + why + ")";
  }
  const std::string strategy =
      config != nullptr ? sstr(config->find("strategy")) : "?";
  out += fmt("  strategy   : %s\n", strategy.c_str());
  out += fmt("  status     : %s\n", status.c_str());
  out += fmt("  n          : %.0f  (fem %.0f, bem %.0f)\n",
             dnum(stats->find("n_total")), dnum(stats->find("n_fem")),
             dnum(stats->find("n_bem")));
  out += fmt("  total      : %.3f s\n", dnum(stats->find("total_seconds")));
  out += fmt("  rel error  : %.3e\n", dnum(stats->find("relative_error")));

  // Peak attribution: decompose the high-water mark by owning subsystem.
  // Reports written before tagged accounting existed simply lack the
  // field; print an explicit "-" rather than fail or silently omit.
  const std::size_t peak = bnum(stats->find("peak_bytes"));
  out += fmt("  peak       : %s\n", format_bytes(peak).c_str());
  const json::Value* by_tag = stats->find("peak_by_tag");
  if (by_tag == nullptr || !by_tag->is_object()) {
    out += "  peak attribution: -\n";
  }
  const auto rows = tag_rows(stats);
  if (!rows.empty()) {
    out += "  peak attribution:\n";
    std::size_t tagged_sum = 0;
    for (const auto& [tag, bytes] : rows) {
      if (tag == "pack.scratch") {
        out += fmt("    %-16s %12s   (budget-exempt)\n", tag.c_str(),
                   format_bytes(bytes).c_str());
        continue;
      }
      tagged_sum += bytes;
      const double pct =
          peak > 0 ? 100.0 * static_cast<double>(bytes) / peak : 0.0;
      out += fmt("    %-16s %12s   %5.1f%%\n", tag.c_str(),
                 format_bytes(bytes).c_str(), pct);
    }
    const double coverage =
        peak > 0 ? 100.0 * static_cast<double>(tagged_sum) / peak : 0.0;
    out += fmt("    %-16s %12s   %5.1f%% of peak\n", "tagged sum",
               format_bytes(tagged_sum).c_str(), coverage);
  }

  // Planner audit for this run.  A missing field (pre-planner report)
  // prints "-"; a present-but-zero prediction stays silent as before.
  const json::Value* predicted_v = stats->find("planner_predicted_bytes");
  const std::size_t predicted = bnum(predicted_v);
  const double ratio = dnum(stats->find("planner_misprediction"));
  if (predicted_v == nullptr)
    out += "  planner    : -\n";
  else if (predicted > 0)
    out += fmt("  planner    : predicted %s, measured %s  (x%.2f, %s)\n",
               format_bytes(predicted).c_str(), format_bytes(peak).c_str(),
               ratio, planner_verdict(ratio).c_str());

  // Checkpoint provenance: where this handle's factors came from.
  const json::Value* ckpt_src = stats->find("checkpoint_source");
  if (ckpt_src != nullptr && ckpt_src->is_string() &&
      !ckpt_src->string.empty()) {
    const std::size_t ckpt_bytes = bnum(stats->find("checkpoint_bytes"));
    out += fmt("  checkpoint : %s (%s)\n", ckpt_src->string.c_str(),
               ckpt_bytes > 0 ? format_bytes(ckpt_bytes).c_str() : "-");
  }
  const json::Value* ckpt = stats->find("checkpoint");
  if (ckpt != nullptr && ckpt->is_object()) {
    const double save_s = dnum(ckpt->find("save_seconds"));
    const double load_s = dnum(ckpt->find("load_seconds"));
    const double speedup = dnum(ckpt->find("load_vs_factorize_speedup"));
    out += fmt("  checkpoint : %s, save %.3f s, load %.3f s  (load %.1fx "
               "faster than factorize)\n",
               format_bytes(bnum(ckpt->find("bytes"))).c_str(), save_s,
               load_s, speedup);
  }

  // Hottest pipeline stages.
  const json::Value* stages = stats->find("stages");
  if (stages != nullptr && stages->is_object() && !stages->object.empty()) {
    std::vector<std::pair<std::string, double>> hot;
    for (const auto& [name, v] : stages->object)
      hot.emplace_back(name, dnum(&v));
    std::stable_sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    if (hot.size() > opts.top_stages) hot.resize(opts.top_stages);
    out += fmt("  top %zu stages (s):\n", hot.size());
    for (const auto& [name, seconds] : hot)
      out += fmt("    %-24s %9.3f\n", name.c_str(), seconds);
  }
  out += "\n";
}

/// Analysis of a flat bench_solve report (no "runs" array): the sweep
/// table plus the checkpoint save/load timing section when present.
std::string analyze_bench_report(const json::Value& report,
                                 const ReportOptions&) {
  std::string out;
  out += fmt("== bench report: %s ==\n", sstr(report.find("binary")).c_str());
  out += fmt("  strategy   : %s\n", sstr(report.find("strategy")).c_str());
  out += fmt("  n          : %.0f  (fem %.0f, bem %.0f)\n",
             dnum(report.find("n_total")), dnum(report.find("n_fem")),
             dnum(report.find("n_bem")));
  out += fmt("  factorize  : %.3f s\n",
             dnum(report.find("factorize_seconds")));
  const json::Value* ckpt = report.find("checkpoint");
  if (ckpt != nullptr && ckpt->is_object()) {
    const json::Value* ok = ckpt->find("ok");
    const bool ckpt_ok = ok != nullptr && ok->is_bool() && ok->boolean;
    out += fmt("  checkpoint : %s, save %.3f s, load %.3f s  (load %.1fx "
               "faster than factorize)%s\n",
               format_bytes(bnum(ckpt->find("bytes"))).c_str(),
               dnum(ckpt->find("save_seconds")),
               dnum(ckpt->find("load_seconds")),
               dnum(ckpt->find("load_vs_factorize_speedup")),
               ckpt_ok ? "" : "  FAILED");
  } else {
    out += "  checkpoint : -\n";
  }
  const json::Value* sweep = report.find("sweep");
  if (sweep != nullptr && sweep->is_array() && !sweep->array.empty()) {
    out += fmt("  %8s %10s %10s %16s %8s\n", "nrhs", "solve s", "solves/s",
               "amortized s/rhs", "status");
    for (const auto& p : sweep->array) {
      out += fmt("  %8.0f %10.3f %10.1f %16.3f %8s\n",
                 dnum(p.find("nrhs")), dnum(p.find("solve_seconds")),
                 dnum(p.find("solves_per_sec")),
                 dnum(p.find("amortized_seconds_per_rhs")),
                 p.find("ok") != nullptr && p.find("ok")->is_bool() &&
                         p.find("ok")->boolean
                     ? "ok"
                     : "FAILED");
    }
  }
  return out;
}

/// One mode entry ("naive" / "recycled") of a bench_sweep report, or
/// nullptr. The stats object carries the SweepStats JSON.
const json::Value* sweep_mode_stats(const json::Value& report,
                                    const char* mode) {
  const json::Value* fs = report.find("freq_sweep");
  if (fs == nullptr || !fs->is_array()) return nullptr;
  for (const auto& entry : fs->array) {
    if (sstr(entry.find("mode"), "") == mode) {
      const json::Value* stats = entry.find("stats");
      if (stats != nullptr && stats->is_object()) return stats;
    }
  }
  return nullptr;
}

double sweep_counter(const json::Value* stats, const char* name) {
  if (stats == nullptr) return 0;
  const json::Value* freqs = stats->find("freqs");
  if (freqs == nullptr || !freqs->is_array()) return 0;
  double total = 0;
  for (const auto& f : freqs->array) {
    const json::Value* counters = f.find("counters");
    if (counters != nullptr && counters->is_object())
      total += dnum(counters->find(name));
  }
  return total;
}

/// Analysis of a bench_sweep flat report ("freq_sweep" array): naive vs
/// recycled summary, then the per-frequency service table of the recycled
/// sweep — which tier served each frequency and at what cost.
std::string analyze_freq_sweep_report(const json::Value& report,
                                      const ReportOptions&) {
  std::string out;
  out += fmt("== frequency-sweep report: %s ==\n",
             sstr(report.find("binary")).c_str());
  out += fmt("  strategy   : %s\n", sstr(report.find("strategy")).c_str());
  out += fmt("  n          : %.0f  (fem %.0f, bem %.0f)\n",
             dnum(report.find("n_total")), dnum(report.find("n_fem")),
             dnum(report.find("n_bem")));
  out += fmt("  frequencies: %.0f\n", dnum(report.find("frequencies")));
  out += fmt("  speedup    : %.2fx recycled vs naive\n",
             dnum(report.find("speedup_recycled_vs_naive")));

  out += fmt("  %-10s %8s %9s %15s %8s %12s\n", "mode", "s/freq", "total s",
             "factorizations", "lagged", "aca crosses");
  for (const char* mode : {"naive", "recycled"}) {
    const json::Value* stats = sweep_mode_stats(report, mode);
    if (stats == nullptr) continue;
    const json::Value* ok = stats->find("success");
    const bool success = ok != nullptr && ok->is_bool() && ok->boolean;
    out += fmt("  %-10s %8.3f %9.2f %15.0f %8.0f %12.0f%s\n", mode,
               dnum(stats->find("seconds_per_frequency")),
               dnum(stats->find("total_seconds")),
               dnum(stats->find("factorizations")),
               dnum(stats->find("lagged_solves")),
               sweep_counter(stats, "aca.iterations"),
               success ? "" : "  FAILED");
    if (!success) {
      const std::string why = sstr(stats->find("failure"), "");
      if (!why.empty()) out += fmt("    failure: %s\n", why.c_str());
    }
  }

  const json::Value* recycled = sweep_mode_stats(report, "recycled");
  const json::Value* freqs =
      recycled != nullptr ? recycled->find("freqs") : nullptr;
  if (freqs != nullptr && freqs->is_array() && !freqs->array.empty()) {
    out += "  recycled sweep per frequency:\n";
    out += fmt("  %10s %9s %14s %7s %10s  %s\n", "omega", "s", "served by",
               "sweeps", "rel err", "fallback");
    for (const auto& f : freqs->array) {
      const json::Value* lagged = f.find("lagged");
      const bool is_lagged =
          lagged != nullptr && lagged->is_bool() && lagged->boolean;
      const std::string fallback = sstr(f.find("fallback_reason"), "");
      out += fmt("  %10.4f %9.3f %14s %7.0f %10.2e  %s\n",
                 dnum(f.find("omega")), dnum(f.find("seconds")),
                 is_lagged ? "lagged" : "refactorized",
                 dnum(f.find("refine_sweeps")),
                 dnum(f.find("relative_error")),
                 fallback.empty() ? "-" : fallback.c_str());
    }
  }
  return out;
}

/// Analysis of a bench_serve flat report ("serve" per-mode array): the
/// serving-traffic table (requests/sec, p50/p99, batch width) plus the
/// cache counters the daemon's whole point rests on — hits on repeat
/// fingerprints with exactly one factorization per scene.
std::string analyze_serve_report(const json::Value& report,
                                 const ReportOptions&) {
  std::string out;
  out += fmt("== serve report: %s ==\n", sstr(report.find("binary")).c_str());
  const std::string strategy = sstr(report.find("strategy"), "");
  if (!strategy.empty()) out += fmt("  strategy   : %s\n", strategy.c_str());
  out += fmt("  n          : %.0f  (fem %.0f, bem %.0f)\n",
             dnum(report.find("n_total")), dnum(report.find("nv")),
             dnum(report.find("ns")));
  out += fmt("  concurrency: %.0f\n", dnum(report.find("concurrency")));
  const json::Value* speedup = report.find("coalesced_speedup");
  if (speedup != nullptr)
    out += fmt("  speedup    : %.2fx coalesced vs uncoalesced\n",
               dnum(speedup));

  out += fmt("  %-12s %9s %9s %9s %9s %10s %6s %6s %7s\n", "mode", "req/s",
             "p50 ms", "p99 ms", "max batch", "batches", "hits", "misses",
             "factos");
  const json::Value* serve = report.find("serve");
  if (serve != nullptr && serve->is_array()) {
    for (const auto& m : serve->array) {
      const double failures =
          dnum(m.find("failures")) + dnum(m.find("mismatches"));
      out += fmt("  %-12s %9.1f %9.2f %9.2f %9.0f %10.0f %6.0f %6.0f %7.0f%s\n",
                 sstr(m.find("mode"), "?").c_str(),
                 dnum(m.find("requests_per_second")), dnum(m.find("p50_ms")),
                 dnum(m.find("p99_ms")), dnum(m.find("max_batch_columns")),
                 dnum(m.find("coalesced_batches")), dnum(m.find("cache_hits")),
                 dnum(m.find("cache_misses")), dnum(m.find("factorizations")),
                 failures > 0 ? "  FAILED" : "");
      if (failures > 0)
        out += fmt("    %.0f failed requests, %.0f bitwise mismatches\n",
                   dnum(m.find("failures")), dnum(m.find("mismatches")));
    }
  }
  return out;
}

/// A-vs-B over two bench_sweep reports, matched by mode. The row every
/// recycling regression shows up in: s/freq and factorization counts of
/// the recycled sweep drifting toward the naive ones.
std::string diff_freq_sweep_reports(const json::Value& a,
                                    const json::Value& b) {
  std::string out;
  out += fmt("== sweep diff: A=%s vs B=%s ==\n",
             sstr(a.find("binary")).c_str(), sstr(b.find("binary")).c_str());
  out += fmt("  %-10s %9s %9s %6s %7s %7s %8s %8s\n", "mode", "s/freq A",
             "s/freq B", "B/A", "facto A", "facto B", "lagged A", "lagged B");
  for (const char* mode : {"naive", "recycled"}) {
    const json::Value* sa = sweep_mode_stats(a, mode);
    const json::Value* sb = sweep_mode_stats(b, mode);
    if (sa == nullptr && sb == nullptr) continue;
    if (sa == nullptr || sb == nullptr) {
      out += fmt("  %-10s only in %s\n", mode, sa != nullptr ? "A" : "B");
      continue;
    }
    const double ta = dnum(sa->find("seconds_per_frequency"));
    const double tb = dnum(sb->find("seconds_per_frequency"));
    out += fmt("  %-10s %9.3f %9.3f %6.2f %7.0f %7.0f %8.0f %8.0f\n", mode,
               ta, tb, ta > 0 ? tb / ta : 0.0,
               dnum(sa->find("factorizations")),
               dnum(sb->find("factorizations")),
               dnum(sa->find("lagged_solves")),
               dnum(sb->find("lagged_solves")));
  }
  out += fmt("  speedup    : A %.2fx, B %.2fx recycled vs naive\n",
             dnum(a.find("speedup_recycled_vs_naive")),
             dnum(b.find("speedup_recycled_vs_naive")));
  return out;
}

}  // namespace

json::Value load_report(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw std::runtime_error("cs-report: cannot open " + path);
  std::string text;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  std::fclose(f);
  json::Value doc;
  std::string err;
  if (!json::parse(text, &doc, &err))
    throw std::runtime_error("cs-report: " + path + " is not JSON: " + err);
  // Four accepted shapes: a RunReport ("runs" array), the bench_solve
  // flat report ("sweep" nrhs array), the bench_sweep flat report
  // ("freq_sweep" per-mode array) and the bench_serve flat report
  // ("serve" per-mode array).
  const bool has_runs =
      doc.find("runs") != nullptr && doc.find("runs")->is_array();
  const bool has_sweep =
      doc.find("sweep") != nullptr && doc.find("sweep")->is_array();
  const bool has_freq_sweep = doc.find("freq_sweep") != nullptr &&
                              doc.find("freq_sweep")->is_array();
  const bool has_serve =
      doc.find("serve") != nullptr && doc.find("serve")->is_array();
  if (!has_runs && !has_sweep && !has_freq_sweep && !has_serve)
    throw std::runtime_error("cs-report: " + path +
                             " lacks a \"runs\" array (not a run report?)");
  return doc;
}

std::string analyze_report(const json::Value& report,
                           const ReportOptions& opts) {
  const json::Value* runs = report.find("runs");
  if (runs == nullptr || !runs->is_array()) {
    const json::Value* freq_sweep = report.find("freq_sweep");
    if (freq_sweep != nullptr && freq_sweep->is_array())
      return analyze_freq_sweep_report(report, opts);
    const json::Value* serve = report.find("serve");
    if (serve != nullptr && serve->is_array())
      return analyze_serve_report(report, opts);
    const json::Value* sweep = report.find("sweep");
    if (sweep != nullptr && sweep->is_array())
      return analyze_bench_report(report, opts);
    throw std::runtime_error("cs-report: report lacks a \"runs\" array");
  }
  std::string out;
  out += fmt("== report: %s (%zu runs) ==\n\n",
             sstr(report.find("binary")).c_str(), runs->array.size());
  for (std::size_t i = 0; i < runs->array.size(); ++i)
    append_run_analysis(out, runs->array[i], i, opts);

  // Cross-run planner audit: predicted-vs-measured per strategy at a
  // glance, the table the CI misprediction guard reads by eye.
  out += "== planner audit (predicted vs measured peak) ==\n";
  out += fmt("  %-34s %12s %12s %7s  %s\n", "run", "predicted", "measured",
             "ratio", "verdict");
  for (const auto& run : runs->array) {
    const json::Value* stats = run_stats(run);
    if (stats == nullptr) continue;
    const json::Value* predicted_v = stats->find("planner_predicted_bytes");
    const std::size_t predicted = bnum(predicted_v);
    const std::size_t peak = bnum(stats->find("peak_bytes"));
    if (predicted_v == nullptr &&
        stats->find("planner_misprediction") == nullptr) {
      // Pre-planner report: the run never carried an audit.
      out += fmt("  %-34s %12s %12s %7s  %s\n", run_key(run).c_str(), "-",
                 format_bytes(peak).c_str(), "-", "-");
      continue;
    }
    const double ratio = dnum(stats->find("planner_misprediction"));
    out += fmt("  %-34s %12s %12s %7.2f  %s\n", run_key(run).c_str(),
               predicted > 0 ? format_bytes(predicted).c_str() : "-",
               format_bytes(peak).c_str(), ratio,
               planner_verdict(ratio).c_str());
  }
  return out;
}

std::string diff_reports(const json::Value& a, const json::Value& b,
                         const ReportOptions&) {
  // Two bench_sweep reports diff mode-by-mode instead of run-by-run.
  if (a.find("freq_sweep") != nullptr && a.find("freq_sweep")->is_array() &&
      b.find("freq_sweep") != nullptr && b.find("freq_sweep")->is_array())
    return diff_freq_sweep_reports(a, b);
  const json::Value* runs_a = a.find("runs");
  const json::Value* runs_b = b.find("runs");
  if (runs_a == nullptr || !runs_a->is_array() || runs_b == nullptr ||
      !runs_b->is_array())
    throw std::runtime_error("cs-report: diff inputs lack \"runs\" arrays");
  std::string out;
  out += fmt("== diff: A=%s vs B=%s ==\n", sstr(a.find("binary")).c_str(),
             sstr(b.find("binary")).c_str());
  out += fmt("  %-34s %10s %10s %6s %12s %12s %6s\n", "run", "time A",
             "time B", "B/A", "peak A", "peak B", "B/A");
  std::vector<bool> matched_b(runs_b->array.size(), false);
  std::vector<std::string> only_a;
  for (const auto& run_a : runs_a->array) {
    const std::string key = run_key(run_a);
    const json::Value* run_b = nullptr;
    for (std::size_t j = 0; j < runs_b->array.size(); ++j) {
      if (!matched_b[j] && run_key(runs_b->array[j]) == key) {
        matched_b[j] = true;
        run_b = &runs_b->array[j];
        break;
      }
    }
    if (run_b == nullptr) {
      only_a.push_back(key);
      continue;
    }
    const json::Value* sa = run_stats(run_a);
    const json::Value* sb = run_stats(*run_b);
    const double ta = sa != nullptr ? dnum(sa->find("total_seconds")) : 0;
    const double tb = sb != nullptr ? dnum(sb->find("total_seconds")) : 0;
    const std::size_t pa = sa != nullptr ? bnum(sa->find("peak_bytes")) : 0;
    const std::size_t pb = sb != nullptr ? bnum(sb->find("peak_bytes")) : 0;
    out += fmt("  %-34s %9.3fs %9.3fs %6.2f %12s %12s %6.2f\n", key.c_str(),
               ta, tb, ta > 0 ? tb / ta : 0.0, format_bytes(pa).c_str(),
               format_bytes(pb).c_str(),
               pa > 0 ? static_cast<double>(pb) / static_cast<double>(pa)
                      : 0.0);
  }
  for (const std::string& key : only_a)
    out += fmt("  only in A: %s\n", key.c_str());
  for (std::size_t j = 0; j < runs_b->array.size(); ++j)
    if (!matched_b[j])
      out += fmt("  only in B: %s\n", run_key(runs_b->array[j]).c_str());
  return out;
}

}  // namespace cs::tools
