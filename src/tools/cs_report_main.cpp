// cs-report: analyze one or two run-report JSON files.
//
//   cs-report [--top=N] report.json              per-run analysis
//   cs-report [--top=N] report.json baseline.json  analysis of the first
//                                                + A-vs-B diff (A=baseline,
//                                                B=report)
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "tools/cs_report.h"

int main(int argc, char** argv) {
  cs::tools::ReportOptions opts;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--top=", 0) == 0) {
      const long n = std::atol(arg.c_str() + 6);
      if (n > 0) opts.top_stages = static_cast<std::size_t>(n);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: cs-report [--top=N] report.json [baseline.json]\n");
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() || paths.size() > 2) {
    std::fprintf(stderr,
                 "usage: cs-report [--top=N] report.json [baseline.json]\n");
    return 2;
  }
  try {
    const cs::json::Value report = cs::tools::load_report(paths[0]);
    std::fputs(cs::tools::analyze_report(report, opts).c_str(), stdout);
    if (paths.size() == 2) {
      const cs::json::Value baseline = cs::tools::load_report(paths[1]);
      std::fputs("\n", stdout);
      std::fputs(cs::tools::diff_reports(baseline, report, opts).c_str(),
                 stdout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
