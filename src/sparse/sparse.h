// Sparse matrix containers and kernels.
//
// The coupled system's sparse blocks (A_vv FEM stiffness, A_sv coupling) are
// stored in CSR. Symmetric matrices keep their *full* pattern (both
// triangles): this doubles nnz storage but gives O(1) row and column access
// to the analysis phase of the sparse direct solver and keeps every kernel
// simple; the multifrontal factor itself stores only one triangle.
//
// All index/value arrays live in tracked Buffers so that sparse storage
// counts against the experiment's virtual memory budget.
#pragma once

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"
#include "la/matrix.h"

namespace cs::sparse {

/// Triplet (COO) accumulation buffer used by the FEM/BEM assembly and by
/// the multi-factorization algorithm when building the W submatrices.
template <class T>
struct Triplets {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> i;
  std::vector<index_t> j;
  std::vector<T> v;

  Triplets(index_t r, index_t c) : rows(r), cols(c) {}

  void add(index_t row, index_t col, T value) {
    assert(row >= 0 && row < rows && col >= 0 && col < cols);
    i.push_back(row);
    j.push_back(col);
    v.push_back(value);
  }

  std::size_t nnz() const { return v.size(); }
};

/// Compressed sparse row matrix. Duplicate entries are summed on build.
template <class T>
class Csr {
 public:
  Csr() = default;

  /// Build from triplets, summing duplicates.
  static Csr from_triplets(const Triplets<T>& t) {
    Csr m;
    m.rows_ = t.rows;
    m.cols_ = t.cols;
    const std::size_t nt = t.nnz();
    // Sort entry ids by (row, col).
    std::vector<std::size_t> order(nt);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return t.i[a] != t.i[b] ? t.i[a] < t.i[b] : t.j[a] < t.j[b];
    });
    // Count unique entries.
    std::size_t unique = 0;
    for (std::size_t k = 0; k < nt; ++k) {
      if (k == 0 || t.i[order[k]] != t.i[order[k - 1]] ||
          t.j[order[k]] != t.j[order[k - 1]])
        ++unique;
    }
    m.row_ptr_.reset(static_cast<std::size_t>(m.rows_) + 1);
    m.col_idx_.reset(unique);
    m.values_.reset(unique);
    std::size_t out = static_cast<std::size_t>(-1);
    index_t prev_i = -1, prev_j = -1;
    for (std::size_t k = 0; k < nt; ++k) {
      const std::size_t e = order[k];
      if (t.i[e] != prev_i || t.j[e] != prev_j) {
        ++out;
        m.col_idx_[out] = t.j[e];
        m.values_[out] = t.v[e];
        prev_i = t.i[e];
        prev_j = t.j[e];
        ++m.row_ptr_[static_cast<std::size_t>(t.i[e]) + 1];
      } else {
        m.values_[out] += t.v[e];
      }
    }
    for (index_t r = 0; r < m.rows_; ++r)
      m.row_ptr_[static_cast<std::size_t>(r) + 1] +=
          m.row_ptr_[static_cast<std::size_t>(r)];
    return m;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t nnz() const {
    return rows_ == 0 ? 0 : row_ptr_[static_cast<std::size_t>(rows_)];
  }

  offset_t row_begin(index_t r) const {
    return row_ptr_[static_cast<std::size_t>(r)];
  }
  offset_t row_end(index_t r) const {
    return row_ptr_[static_cast<std::size_t>(r) + 1];
  }
  index_t col(offset_t k) const {
    return col_idx_[static_cast<std::size_t>(k)];
  }
  T value(offset_t k) const { return values_[static_cast<std::size_t>(k)]; }
  T& value_ref(offset_t k) { return values_[static_cast<std::size_t>(k)]; }

  std::size_t size_bytes() const {
    return row_ptr_.size() * sizeof(offset_t) +
           col_idx_.size() * sizeof(index_t) + values_.size() * sizeof(T);
  }

  /// y := beta*y + alpha*A*x.
  void spmv(T alpha, const T* x, T beta, T* y) const {
    for (index_t r = 0; r < rows_; ++r) {
      T acc{};
      for (offset_t k = row_begin(r); k < row_end(r); ++k)
        acc += value(k) * x[col(k)];
      y[r] = (beta == T{0} ? T{0} : beta * y[r]) + alpha * acc;
    }
  }

  /// y := beta*y + alpha*A^T*x.
  void spmv_trans(T alpha, const T* x, T beta, T* y) const {
    for (index_t c = 0; c < cols_; ++c)
      y[c] = (beta == T{0} ? T{0} : beta * y[c]);
    for (index_t r = 0; r < rows_; ++r) {
      const T xr = alpha * x[r];
      if (xr == T{0}) continue;
      for (offset_t k = row_begin(r); k < row_end(r); ++k)
        y[col(k)] += value(k) * xr;
    }
  }

  /// C := beta*C + alpha*A*B for dense B, C (SpMM). Parallel over rows.
  void spmm(T alpha, la::ConstMatrixView<T> B, T beta,
            la::MatrixView<T> C) const {
    assert(B.rows() == cols_ && C.rows() == rows_ && B.cols() == C.cols());
    const index_t nrhs = B.cols();
#pragma omp parallel for schedule(dynamic, 64) if (rows_ > 256)
    for (index_t r = 0; r < rows_; ++r) {
      for (index_t j = 0; j < nrhs; ++j) {
        T acc{};
        for (offset_t k = row_begin(r); k < row_end(r); ++k)
          acc += value(k) * B(col(k), j);
        C(r, j) = (beta == T{0} ? T{0} : beta * C(r, j)) + alpha * acc;
      }
    }
  }

  /// C := beta*C + alpha*A^T*B for dense B, C.
  void spmm_trans(T alpha, la::ConstMatrixView<T> B, T beta,
                  la::MatrixView<T> C) const {
    assert(B.rows() == rows_ && C.rows() == cols_ && B.cols() == C.cols());
    const index_t nrhs = B.cols();
    for (index_t c = 0; c < cols_; ++c)
      for (index_t j = 0; j < nrhs; ++j)
        C(c, j) = (beta == T{0}) ? T{0} : beta * C(c, j);
    for (index_t r = 0; r < rows_; ++r) {
      for (offset_t k = row_begin(r); k < row_end(r); ++k) {
        const T av = alpha * value(k);
        const index_t c = col(k);
        for (index_t j = 0; j < nrhs; ++j) C(c, j) += av * B(r, j);
      }
    }
  }

  /// Dense copy of rows [r0, r0+nr) of A, i.e. of columns [r0, r0+nr) of
  /// A^T. Multi-solve uses this to form the n_c-column right-hand-side
  /// panels A_sv^T(:, block) without materializing the full transpose.
  void rows_as_dense_transposed(index_t r0, index_t nr,
                                la::MatrixView<T> out) const {
    assert(out.rows() == cols_ && out.cols() == nr);
    out.fill(T{0});
    for (index_t r = r0; r < r0 + nr; ++r)
      for (offset_t k = row_begin(r); k < row_end(r); ++k)
        out(col(k), r - r0) = value(k);
  }

  /// Extract the sub-matrix of rows [r0, r0+nr) x cols [c0, c0+nc) as
  /// triplets (used by multi-factorization to build W blocks).
  void extract_block(index_t r0, index_t nr, index_t c0, index_t nc,
                     Triplets<T>& out, index_t row_offset,
                     index_t col_offset) const {
    for (index_t r = r0; r < r0 + nr; ++r) {
      for (offset_t k = row_begin(r); k < row_end(r); ++k) {
        const index_t c = col(k);
        if (c >= c0 && c < c0 + nc)
          out.add(r - r0 + row_offset, c - c0 + col_offset, value(k));
      }
    }
  }

  /// Transposed matrix (CSR of A^T).
  Csr transposed() const {
    Triplets<T> t(cols_, rows_);
    t.i.reserve(static_cast<std::size_t>(nnz()));
    t.j.reserve(static_cast<std::size_t>(nnz()));
    t.v.reserve(static_cast<std::size_t>(nnz()));
    for (index_t r = 0; r < rows_; ++r)
      for (offset_t k = row_begin(r); k < row_end(r); ++k)
        t.add(col(k), r, value(k));
    return from_triplets(t);
  }

  /// Symmetric permutation B = P A P^T where P maps old index i to new
  /// index perm[i]. Requires a square matrix.
  Csr permuted_symmetric(const std::vector<index_t>& perm) const {
    assert(rows_ == cols_);
    Triplets<T> t(rows_, cols_);
    t.i.reserve(static_cast<std::size_t>(nnz()));
    t.j.reserve(static_cast<std::size_t>(nnz()));
    t.v.reserve(static_cast<std::size_t>(nnz()));
    for (index_t r = 0; r < rows_; ++r)
      for (offset_t k = row_begin(r); k < row_end(r); ++k)
        t.add(perm[static_cast<std::size_t>(r)],
              perm[static_cast<std::size_t>(col(k))], value(k));
    return from_triplets(t);
  }

  /// Dense copy (tests and small reference computations only).
  la::Matrix<T> to_dense() const {
    la::Matrix<T> d(rows_, cols_);
    for (index_t r = 0; r < rows_; ++r)
      for (offset_t k = row_begin(r); k < row_end(r); ++k)
        d(r, col(k)) += value(k);
    return d;
  }

  /// Same pattern with values converted to scalar U (the mixed-precision
  /// path demotes the assembled operators to factor precision with this).
  template <class U>
  Csr<U> converted() const {
    Csr<U> m;
    m.rows_ = rows_;
    m.cols_ = cols_;
    m.row_ptr_.reset(row_ptr_.size());
    m.col_idx_.reset(col_idx_.size());
    m.values_.reset(values_.size());
    for (std::size_t k = 0; k < row_ptr_.size(); ++k)
      m.row_ptr_[k] = row_ptr_[k];
    for (std::size_t k = 0; k < col_idx_.size(); ++k)
      m.col_idx_[k] = col_idx_[k];
    for (std::size_t k = 0; k < values_.size(); ++k)
      m.values_[k] = scalar_cast<U>(values_[k]);
    return m;
  }

 private:
  template <class U>
  friend class Csr;

  index_t rows_ = 0;
  index_t cols_ = 0;
  Buffer<offset_t> row_ptr_;
  Buffer<index_t> col_idx_;
  Buffer<T> values_;
};

/// Structural-pattern view used by orderings and symbolic analysis:
/// adjacency of a square symmetric matrix (diagonal ignored).
struct Pattern {
  index_t n = 0;
  std::vector<offset_t> adj_ptr;
  std::vector<index_t> adj;

  template <class T>
  static Pattern from_symmetric(const Csr<T>& A) {
    assert(A.rows() == A.cols());
    Pattern p;
    p.n = A.rows();
    p.adj_ptr.assign(static_cast<std::size_t>(p.n) + 1, 0);
    for (index_t r = 0; r < p.n; ++r)
      for (offset_t k = A.row_begin(r); k < A.row_end(r); ++k)
        if (A.col(k) != r) ++p.adj_ptr[static_cast<std::size_t>(r) + 1];
    for (index_t r = 0; r < p.n; ++r)
      p.adj_ptr[static_cast<std::size_t>(r) + 1] +=
          p.adj_ptr[static_cast<std::size_t>(r)];
    p.adj.resize(static_cast<std::size_t>(p.adj_ptr[p.n]));
    std::vector<offset_t> cursor(p.adj_ptr.begin(), p.adj_ptr.end() - 1);
    for (index_t r = 0; r < p.n; ++r)
      for (offset_t k = A.row_begin(r); k < A.row_end(r); ++k)
        if (A.col(k) != r)
          p.adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(r)]++)] =
              A.col(k);
    return p;
  }

  /// Adjacency of the symmetrized pattern |A| + |A^T| (diagonal ignored).
  /// Required by the LU analysis of structurally unsymmetric matrices such
  /// as the W submatrices of the multi-factorization algorithm.
  template <class T>
  static Pattern from_general_symmetrized(const Csr<T>& A) {
    assert(A.rows() == A.cols());
    Triplets<T> t(A.rows(), A.cols());
    for (index_t r = 0; r < A.rows(); ++r)
      for (offset_t k = A.row_begin(r); k < A.row_end(r); ++k) {
        t.add(r, A.col(k), T{1});
        t.add(A.col(k), r, T{1});
      }
    return from_symmetric(Csr<T>::from_triplets(t));
  }

  offset_t degree(index_t v) const {
    return adj_ptr[static_cast<std::size_t>(v) + 1] -
           adj_ptr[static_cast<std::size_t>(v)];
  }
};

}  // namespace cs::sparse
