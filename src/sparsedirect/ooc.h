// Out-of-core storage for multifrontal factor panels.
//
// The paper notes that the out-of-core features of the building-block
// solvers were deliberately *not* used in its experiments, and lists the
// out-of-core case as future work. This header provides that feature for
// the multifrontal solver: the border panels (the bulk of the factor
// storage) are serialized to an unlinked temporary file as soon as each
// front is factored and streamed back transiently during solves. Peak
// tracked memory then holds one panel at a time instead of all of them —
// the classic OOC trade: factor memory for solve-time I/O.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/fs.h"
#include "common/serialize.h"
#include "sparsedirect/blr.h"

namespace cs::sparsedirect {

/// Append-only spill file for TiledPanels. The backing file is unlinked at
/// creation (it vanishes when the store is destroyed or the process dies).
template <class T>
class OocPanelStore {
 public:
  struct Handle {
    long offset = -1;
    bool valid() const { return offset >= 0; }
  };

  /// `sync_on_spill` fsyncs the backing file at the end of every spill()
  /// — slower, but a crash right after a spill cannot leave a factor
  /// panel half-written in the page cache.
  explicit OocPanelStore(const std::string& dir = default_tmp_dir(),
                         bool sync_on_spill = false)
      : sync_on_spill_(sync_on_spill) {
    const std::string path = dir + "/cs_ooc_XXXXXX";
    std::vector<char> tmpl(path.begin(), path.end());
    tmpl.push_back('\0');
    errno = 0;
    const int fd = ::mkstemp(tmpl.data());
    if (fd < 0)
      throw IoError("ooc.open", "cannot create OOC spill file in " + dir,
                    errno);
    file_ = ::fdopen(fd, "w+b");
    if (file_ == nullptr) {
      const int err = errno;
      ::close(fd);
      throw IoError("ooc.open", "fdopen failed for OOC file", err);
    }
    ::remove(tmpl.data());  // unlink: the file lives only as our descriptor
  }

  ~OocPanelStore() {
    if (file_ != nullptr) std::fclose(file_);
  }
  OocPanelStore(const OocPanelStore&) = delete;
  OocPanelStore& operator=(const OocPanelStore&) = delete;

  /// Serialize the panel and release its in-core storage. On failure an
  /// IoError is thrown *before* the panel is consumed, so the caller
  /// still owns it in core and can retry or keep it resident.
  Handle spill(TiledPanel<T>&& panel) {
    Handle h;
    if (panel.empty()) {
      h.offset = -1;
      return h;
    }
    // The seek + sequence-of-writes below must be atomic with respect to
    // concurrent load() calls: FactoredCoupled::solve is const and
    // thread-safe, so several solves may stream panels back from this
    // store at once.
    std::lock_guard<std::mutex> lock(io_mu_);
    errno = 0;
    if (std::fseek(file_, 0, SEEK_END) != 0)
      throw IoError("ooc.write", "OOC seek failed", errno);
    h.offset = std::ftell(file_);
    const auto& tiles = panel.tiles();
    const index_t header[3] = {panel.rows(), panel.cols(),
                               static_cast<index_t>(tiles.size())};
    crc_ = 0;
    put(header, 3);
    for (const auto& tile : tiles) {
      const index_t th[4] = {tile.row0, tile.rows,
                             tile.compressed ? index_t{1} : index_t{0},
                             tile.compressed ? tile.rk.rank() : index_t{0}};
      put(th, 4);
      if (tile.compressed) {
        put(tile.rk.U.data(), static_cast<std::size_t>(tile.rk.U.rows()) *
                                  tile.rk.U.cols());
        put(tile.rk.V.data(), static_cast<std::size_t>(tile.rk.V.rows()) *
                                  tile.rk.V.cols());
      } else {
        put(tile.dense.data(), static_cast<std::size_t>(tile.dense.rows()) *
                                   tile.dense.cols());
      }
    }
    // Per-panel CRC32C trailer over header + tiles: reload verifies the
    // panel before handing factors back to the solve path.
    const std::uint32_t crc = crc_;
    put(&crc, 1);
    if (sync_on_spill_) {
      errno = 0;
      if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0)
        throw IoError("ooc.write", "OOC fsync failed", errno);
    }
    TiledPanel<T> drop = std::move(panel);  // free in-core storage
    (void)drop;
    return h;
  }

  /// Stream a panel back into (tracked) memory. The transient in-core
  /// copy is charged to ooc.buffer -- in OOC runs this is the gauge that
  /// shows panels cycling through memory one at a time.
  TiledPanel<T> load(const Handle& h) const {
    MemoryScope scope(MemTag::kOocBuffer);
    TiledPanel<T> panel;
    if (!h.valid()) return panel;
    std::lock_guard<std::mutex> lock(io_mu_);
    errno = 0;
    if (std::fseek(file_, h.offset, SEEK_SET) != 0)
      throw IoError("ooc.read", "OOC seek failed", errno);
    index_t header[3];
    crc_ = 0;
    get(header, 3);
    const index_t rows = header[0], cols = header[1], ntiles = header[2];
    std::vector<PanelTile<T>> tiles;
    tiles.reserve(static_cast<std::size_t>(ntiles));
    for (index_t t = 0; t < ntiles; ++t) {
      index_t th[4];
      get(th, 4);
      PanelTile<T> tile;
      tile.row0 = th[0];
      tile.rows = th[1];
      tile.compressed = th[2] != 0;
      if (tile.compressed) {
        const index_t k = th[3];
        tile.rk.U = la::Matrix<T>(tile.rows, k);
        tile.rk.V = la::Matrix<T>(cols, k);
        get(tile.rk.U.data(), static_cast<std::size_t>(tile.rows) * k);
        get(tile.rk.V.data(), static_cast<std::size_t>(cols) * k);
      } else {
        tile.dense = la::Matrix<T>(tile.rows, cols);
        get(tile.dense.data(), static_cast<std::size_t>(tile.rows) * cols);
      }
      tiles.push_back(std::move(tile));
    }
    const std::uint32_t computed = crc_;
    std::uint32_t stored = 0;
    get(&stored, 1);
    if (computed != stored || failpoint("ooc.corrupt"))
      throw IoError("ooc.corrupt",
                    "OOC panel checksum mismatch (stored " +
                        std::to_string(stored) + ", computed " +
                        std::to_string(computed) +
                        ") -- spill file corrupted",
                    EIO);
    panel = TiledPanel<T>::from_tiles(rows, cols, std::move(tiles));
    return panel;
  }

  std::size_t bytes_on_disk() const { return bytes_; }

 private:
  template <class U>
  void put(const U* data, std::size_t count) {
    // A short fwrite would otherwise be silent data corruption: the panel
    // header says N scalars but fewer made it to disk, and the next load
    // would deserialize garbage. Check every write; ENOSPC (disk full) is
    // reported distinctly via IoError::transient().
    if (failpoint("ooc.write"))
      throw IoError("ooc.write", "injected OOC write failure", EIO);
    if (failpoint("ooc.enospc"))
      throw IoError("ooc.write", "injected OOC disk-full failure", ENOSPC);
    errno = 0;
    const std::size_t written = std::fwrite(data, sizeof(U), count, file_);
    if (written != count) {
      const int err = errno;
      throw IoError("ooc.write",
                    err == ENOSPC
                        ? "OOC spill device is full (short write of " +
                              std::to_string(written) + "/" +
                              std::to_string(count) + " items)"
                        : "OOC short write (" + std::to_string(written) +
                              "/" + std::to_string(count) + " items)",
                    err);
    }
    crc_ = serialize::crc32c(crc_, data, count * sizeof(U));
    bytes_ += count * sizeof(U);
  }
  template <class U>
  void get(U* data, std::size_t count) const {
    if (failpoint("ooc.read"))
      throw IoError("ooc.read", "injected OOC read failure", EIO);
    errno = 0;
    const std::size_t read = std::fread(data, sizeof(U), count, file_);
    if (read != count)
      throw IoError("ooc.read",
                    "OOC short read (" + std::to_string(read) + "/" +
                        std::to_string(count) + " items)",
                    errno);
    crc_ = serialize::crc32c(crc_, data, count * sizeof(U));
  }

  std::FILE* file_ = nullptr;
  std::size_t bytes_ = 0;
  bool sync_on_spill_ = false;
  /// Running CRC32C of the panel being spilled/loaded; guarded by io_mu_.
  mutable std::uint32_t crc_ = 0;
  /// Serializes the shared FILE* position across concurrent loads (and a
  /// late spill): fseek + fread pairs are not atomic on their own.
  mutable std::mutex io_mu_;
};

}  // namespace cs::sparsedirect
