// Out-of-core storage for multifrontal factor panels.
//
// The paper notes that the out-of-core features of the building-block
// solvers were deliberately *not* used in its experiments, and lists the
// out-of-core case as future work. This header provides that feature for
// the multifrontal solver: the border panels (the bulk of the factor
// storage) are serialized to an unlinked temporary file as soon as each
// front is factored and streamed back transiently during solves. Peak
// tracked memory then holds one panel at a time instead of all of them —
// the classic OOC trade: factor memory for solve-time I/O.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "sparsedirect/blr.h"

namespace cs::sparsedirect {

/// Append-only spill file for TiledPanels. The backing file is unlinked at
/// creation (it vanishes when the store is destroyed or the process dies).
template <class T>
class OocPanelStore {
 public:
  struct Handle {
    long offset = -1;
    bool valid() const { return offset >= 0; }
  };

  explicit OocPanelStore(const std::string& dir = "/tmp") {
    const std::string path = dir + "/cs_ooc_XXXXXX";
    std::vector<char> tmpl(path.begin(), path.end());
    tmpl.push_back('\0');
    const int fd = ::mkstemp(tmpl.data());
    if (fd < 0) throw std::runtime_error("cannot create OOC spill file in " + dir);
    file_ = ::fdopen(fd, "w+b");
    if (file_ == nullptr) throw std::runtime_error("fdopen failed for OOC file");
    ::remove(tmpl.data());  // unlink: the file lives only as our descriptor
  }

  ~OocPanelStore() {
    if (file_ != nullptr) std::fclose(file_);
  }
  OocPanelStore(const OocPanelStore&) = delete;
  OocPanelStore& operator=(const OocPanelStore&) = delete;

  /// Serialize the panel and release its in-core storage.
  Handle spill(TiledPanel<T>&& panel) {
    Handle h;
    if (panel.empty()) {
      h.offset = -1;
      return h;
    }
    if (std::fseek(file_, 0, SEEK_END) != 0)
      throw std::runtime_error("OOC seek failed");
    h.offset = std::ftell(file_);
    const auto& tiles = panel.tiles();
    const index_t header[3] = {panel.rows(), panel.cols(),
                               static_cast<index_t>(tiles.size())};
    put(header, 3);
    for (const auto& tile : tiles) {
      const index_t th[4] = {tile.row0, tile.rows,
                             tile.compressed ? index_t{1} : index_t{0},
                             tile.compressed ? tile.rk.rank() : index_t{0}};
      put(th, 4);
      if (tile.compressed) {
        put(tile.rk.U.data(), static_cast<std::size_t>(tile.rk.U.rows()) *
                                  tile.rk.U.cols());
        put(tile.rk.V.data(), static_cast<std::size_t>(tile.rk.V.rows()) *
                                  tile.rk.V.cols());
      } else {
        put(tile.dense.data(), static_cast<std::size_t>(tile.dense.rows()) *
                                   tile.dense.cols());
      }
    }
    TiledPanel<T> drop = std::move(panel);  // free in-core storage
    (void)drop;
    return h;
  }

  /// Stream a panel back into (tracked) memory.
  TiledPanel<T> load(const Handle& h) const {
    TiledPanel<T> panel;
    if (!h.valid()) return panel;
    if (std::fseek(file_, h.offset, SEEK_SET) != 0)
      throw std::runtime_error("OOC seek failed");
    index_t header[3];
    get(header, 3);
    const index_t rows = header[0], cols = header[1], ntiles = header[2];
    std::vector<PanelTile<T>> tiles;
    tiles.reserve(static_cast<std::size_t>(ntiles));
    for (index_t t = 0; t < ntiles; ++t) {
      index_t th[4];
      get(th, 4);
      PanelTile<T> tile;
      tile.row0 = th[0];
      tile.rows = th[1];
      tile.compressed = th[2] != 0;
      if (tile.compressed) {
        const index_t k = th[3];
        tile.rk.U = la::Matrix<T>(tile.rows, k);
        tile.rk.V = la::Matrix<T>(cols, k);
        get(tile.rk.U.data(), static_cast<std::size_t>(tile.rows) * k);
        get(tile.rk.V.data(), static_cast<std::size_t>(cols) * k);
      } else {
        tile.dense = la::Matrix<T>(tile.rows, cols);
        get(tile.dense.data(), static_cast<std::size_t>(tile.rows) * cols);
      }
      tiles.push_back(std::move(tile));
    }
    panel = TiledPanel<T>::from_tiles(rows, cols, std::move(tiles));
    return panel;
  }

  std::size_t bytes_on_disk() const { return bytes_; }

 private:
  template <class U>
  void put(const U* data, std::size_t count) {
    if (std::fwrite(data, sizeof(U), count, file_) != count)
      throw std::runtime_error("OOC write failed");
    bytes_ += count * sizeof(U);
  }
  template <class U>
  void get(U* data, std::size_t count) const {
    if (std::fread(data, sizeof(U), count, file_) != count)
      throw std::runtime_error("OOC read failed");
  }

  std::FILE* file_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace cs::sparsedirect
