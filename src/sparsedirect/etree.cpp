#include "sparsedirect/etree.h"

#include <cassert>

namespace cs::sparsedirect {

std::vector<index_t> elimination_tree(const sparse::Pattern& pattern) {
  const index_t n = pattern.n;
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), -1);
  for (index_t j = 0; j < n; ++j) {
    for (offset_t k = pattern.adj_ptr[static_cast<std::size_t>(j)];
         k < pattern.adj_ptr[static_cast<std::size_t>(j) + 1]; ++k) {
      index_t r = pattern.adj[static_cast<std::size_t>(k)];
      if (r >= j) continue;  // lower-triangle entries of column j only
      // Walk up from r to the current root, compressing to j.
      while (true) {
        const index_t next = ancestor[static_cast<std::size_t>(r)];
        ancestor[static_cast<std::size_t>(r)] = j;
        if (next == -1) {
          parent[static_cast<std::size_t>(r)] = j;
          break;
        }
        if (next == j) break;
        r = next;
      }
    }
  }
  return parent;
}

std::vector<index_t> tree_postorder(const std::vector<index_t>& parent) {
  const index_t n = static_cast<index_t>(parent.size());
  // Build child lists (reversed insertion keeps natural order on traversal).
  std::vector<index_t> first_child(static_cast<std::size_t>(n), -1);
  std::vector<index_t> next_sibling(static_cast<std::size_t>(n), -1);
  for (index_t v = n - 1; v >= 0; --v) {
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p != -1) {
      next_sibling[static_cast<std::size_t>(v)] =
          first_child[static_cast<std::size_t>(p)];
      first_child[static_cast<std::size_t>(p)] = v;
    }
  }
  std::vector<index_t> post;
  post.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> stack;
  for (index_t root = 0; root < n; ++root) {
    if (parent[static_cast<std::size_t>(root)] != -1) continue;
    // Iterative DFS emitting vertices in postorder.
    stack.push_back(root);
    std::vector<index_t> child_cursor_stack;
    while (!stack.empty()) {
      const index_t v = stack.back();
      const index_t c = first_child[static_cast<std::size_t>(v)];
      if (c != -1) {
        // Descend: detach the child so it is visited once.
        first_child[static_cast<std::size_t>(v)] =
            next_sibling[static_cast<std::size_t>(c)];
        stack.push_back(c);
      } else {
        post.push_back(v);
        stack.pop_back();
      }
    }
  }
  assert(static_cast<index_t>(post.size()) == n);
  return post;
}

}  // namespace cs::sparsedirect
