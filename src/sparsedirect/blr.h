// Block low-rank (BLR) panel storage for multifrontal factor panels.
//
// MUMPS-style BLR does not compress a front's border panel as one block
// (border-to-pivot coupling as a whole is near full rank); it tiles the
// panel and compresses each tile independently, so that tiles pairing
// geometrically distant row/column subsets become low-rank. This header
// provides that tiled representation: a panel is split into row blocks of
// `tile_rows` rows; each tile is stored dense or as rank-k U V^T factors,
// whichever is smaller at the requested accuracy.
#pragma once

#include <vector>

#include "common/memory.h"
#include "la/blas.h"
#include "la/qr_svd.h"

namespace cs::sparsedirect {

template <class T>
struct PanelTile {
  index_t row0 = 0;
  index_t rows = 0;
  bool compressed = false;
  la::Matrix<T> dense;    // rows x cols when !compressed
  la::RkFactors<T> rk;    // U (rows x k), V (cols x k) when compressed
};

/// A (rows x cols) matrix stored as a stack of row tiles.
template <class T>
class TiledPanel {
 public:
  TiledPanel() = default;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Build from a dense panel. When `compress` is set, tiles of
  /// `tile_rows` rows are compressed at accuracy eps if both tile
  /// dimensions reach min_dim and the factors are smaller than the tile.
  static TiledPanel from_dense(la::ConstMatrixView<T> panel, bool compress,
                               real_of_t<T> eps, index_t min_dim,
                               index_t tile_rows, offset_t* compressed_tiles,
                               offset_t* dense_tiles) {
    TiledPanel p;
    p.rows_ = panel.rows();
    p.cols_ = panel.cols();
    if (p.empty()) return p;
    // Retained factor panels (and the RRQR scratch building them) belong
    // to the BLR ledger entry, whatever scope the caller runs under.
    MemoryScope scope(MemTag::kMfBlrPanel);
    const index_t step = compress ? tile_rows : p.rows_;
    for (index_t r0 = 0; r0 < p.rows_; r0 += step) {
      const index_t nr = std::min(step, p.rows_ - r0);
      PanelTile<T> tile;
      tile.row0 = r0;
      tile.rows = nr;
      auto block = panel.block(r0, 0, nr, p.cols_);
      if (compress && nr >= min_dim && p.cols_ >= min_dim) {
        auto cand = la::rrqr_compress(block, eps);
        const offset_t rk_entries =
            static_cast<offset_t>(cand.rank()) * (nr + p.cols_);
        if (rk_entries < static_cast<offset_t>(nr) * p.cols_) {
          tile.compressed = true;
          tile.rk = std::move(cand);
          if (compressed_tiles != nullptr) ++(*compressed_tiles);
          p.tiles_.push_back(std::move(tile));
          continue;
        }
      }
      tile.dense = la::Matrix<T>(nr, p.cols_);
      tile.dense.view().copy_from(block);
      if (dense_tiles != nullptr) ++(*dense_tiles);
      p.tiles_.push_back(std::move(tile));
    }
    return p;
  }

  /// Rebuild a panel from externally restored tiles (used by the
  /// out-of-core store).
  static TiledPanel from_tiles(index_t rows, index_t cols,
                               std::vector<PanelTile<T>> tiles) {
    TiledPanel p;
    p.rows_ = rows;
    p.cols_ = cols;
    p.tiles_ = std::move(tiles);
    return p;
  }

  /// out := P * Y  (out: rows x nrhs, Y: cols x nrhs).
  void mult(la::ConstMatrixView<T> Y, la::MatrixView<T> out) const {
    for (const auto& tile : tiles_) {
      auto o = out.block(tile.row0, 0, tile.rows, out.cols());
      if (!tile.compressed) {
        la::gemm(T{1}, tile.dense.view(), la::Op::kNoTrans, Y,
                 la::Op::kNoTrans, T{0}, o);
      } else {
        la::Matrix<T> tmp(tile.rk.V.cols(), Y.cols());
        la::gemm(T{1}, tile.rk.V.view(), la::Op::kTrans, Y, la::Op::kNoTrans,
                 T{0}, tmp.view());
        la::gemm(T{1}, tile.rk.U.view(), la::Op::kNoTrans, tmp.view(),
                 la::Op::kNoTrans, T{0}, o);
      }
    }
  }

  /// out := P^T * Y  (out: cols x nrhs, Y: rows x nrhs). Accumulates over
  /// tiles, so `out` is zeroed first.
  void mult_trans(la::ConstMatrixView<T> Y, la::MatrixView<T> out) const {
    out.fill(T{0});
    for (const auto& tile : tiles_) {
      auto y = Y.block(tile.row0, 0, tile.rows, Y.cols());
      if (!tile.compressed) {
        la::gemm(T{1}, tile.dense.view(), la::Op::kTrans, y, la::Op::kNoTrans,
                 T{1}, out);
      } else {
        la::Matrix<T> tmp(tile.rk.U.cols(), Y.cols());
        la::gemm(T{1}, tile.rk.U.view(), la::Op::kTrans, y, la::Op::kNoTrans,
                 T{0}, tmp.view());
        la::gemm(T{1}, tile.rk.V.view(), la::Op::kNoTrans, tmp.view(),
                 la::Op::kNoTrans, T{1}, out);
      }
    }
  }

  /// Scalars actually stored.
  offset_t stored_entries() const {
    offset_t total = 0;
    for (const auto& tile : tiles_) {
      if (tile.compressed)
        total += static_cast<offset_t>(tile.rk.U.rows()) * tile.rk.U.cols() +
                 static_cast<offset_t>(tile.rk.V.rows()) * tile.rk.V.cols();
      else
        total += static_cast<offset_t>(tile.dense.rows()) * tile.dense.cols();
    }
    return total;
  }

  std::size_t size_bytes() const {
    std::size_t bytes = 0;
    for (const auto& tile : tiles_) {
      bytes += tile.dense.size_bytes() + tile.rk.U.size_bytes() +
               tile.rk.V.size_bytes();
    }
    return bytes;
  }

  const std::vector<PanelTile<T>>& tiles() const { return tiles_; }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<PanelTile<T>> tiles_;
};

}  // namespace cs::sparsedirect
