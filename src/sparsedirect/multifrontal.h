// Multifrontal sparse direct solver (the library's MUMPS analogue).
//
// Pipeline: constrained fill-reducing ordering -> elimination-tree
// postordering -> symbolic supernode analysis -> numeric multifrontal
// factorization with dense fronts (LDL^T for symmetric matrices, LU with
// front-local partial pivoting otherwise) -> multi-RHS triangular solves
// with optional sparse-RHS tree pruning.
//
// Features deliberately mirroring the paper's building blocks:
//  * "sparse factorization" / "sparse solve"  : factorize() + solve();
//  * "sparse factorization+Schur"             : Options::schur_size > 0
//    keeps the trailing variables uneliminated; their fully-assembled
//    terminal front is the Schur complement, returned — exactly like the
//    solvers the paper builds on — as a NON-compressed dense matrix
//    (take_schur()). This API limitation is reproduced on purpose: the
//    multi-solve / multi-factorization algorithms exist to work around it.
//  * BLR-style low-rank compression (Options::compress): off-diagonal
//    border panels of large fronts are stored as rank-k factors at
//    accuracy blr_eps, reducing factor memory like MUMPS's BLR feature.
//  * sparse right-hand-side exploitation (Options::exploit_sparse_rhs):
//    forward solves skip the subtrees whose right-hand-side rows are
//    entirely zero (the paper's ICNTL(20) analogue).
#pragma once

#include <omp.h>

#include <atomic>
#include <cassert>
#include <chrono>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/fs.h"
#include "common/log.h"
#include "common/memory.h"
#include "common/serialize.h"
#include "common/timer.h"
#include "common/trace.h"
#include "la/factor.h"
#include "la/io.h"
#include "la/qr_svd.h"
#include "ordering/ordering.h"
#include "sparse/sparse.h"
#include "sparsedirect/blr.h"
#include "sparsedirect/etree.h"
#include "sparsedirect/ooc.h"
#include "sparsedirect/symbolic.h"

namespace cs::sparsedirect {

struct SolverOptions {
  ordering::Method ordering = ordering::Method::kNestedDissection;
  /// Symmetric (LDL^T, lower fronts) or general (LU, partial pivoting
  /// restricted to fully-summed rows).
  bool symmetric = true;
  /// Number of trailing variables to keep uneliminated (Schur feature).
  index_t schur_size = 0;
  /// BLR-style low-rank compression of front border panels (tiled).
  bool compress = false;
  double blr_eps = 1e-3;
  /// Compress only tiles with both dimensions at least this large.
  index_t blr_min_dim = 32;
  /// Border panels are tiled into row blocks of this many rows.
  index_t blr_tile_rows = 128;
  /// Supernode amalgamation: admissible per-column structure growth.
  index_t relax_zeros = 16;
  index_t max_supernode = 256;
  /// Prune forward-solve subtrees with all-zero right-hand sides.
  bool exploit_sparse_rhs = true;
  /// Task-parallel multifrontal tree walk (OpenMP tasks over independent
  /// subtrees). Results are identical to the serial walk; incompatible
  /// with out_of_core (which then forces the serial path).
  bool parallel_fronts = false;
  /// Out-of-core factors: border panels are spilled to a temporary file
  /// as each front completes and streamed back during solves (the OOC
  /// feature the paper's solvers offer; trades solve I/O for memory).
  bool out_of_core = false;
  std::string ooc_dir = default_tmp_dir();  ///< $TMPDIR when set, else /tmp
  /// fsync the spill file after every spilled panel (see OocPanelStore).
  bool ooc_sync_on_spill = false;
};

struct SolverStats {
  index_t n = 0;
  index_t n_eliminated = 0;
  offset_t nnz_input = 0;
  index_t n_fronts = 0;
  offset_t peak_front_rows = 0;
  offset_t factor_entries_dense = 0;  ///< scalars if stored uncompressed
  offset_t factor_entries_stored = 0;  ///< scalars actually stored
  double analyze_seconds = 0;
  double factor_seconds = 0;
  offset_t compressed_panels = 0;
  offset_t dense_panels = 0;
  std::size_t ooc_bytes = 0;  ///< factor bytes spilled to disk
  /// True when this factorization adopted a previously exported
  /// SparseAnalysis instead of re-running the analysis phase.
  bool analysis_reused = false;
};

/// Reusable result of the analysis phase (fill-reducing ordering +
/// elimination tree + symbolic supernode partition). Scalar-independent
/// and copyable: a frequency sweep over shifted operators
/// A(omega) = K - omega^2 M computes it once and feeds it to
/// factorize_with() at every subsequent frequency — the analysis depends
/// only on the sparsity pattern, which the shift leaves untouched.
struct SparseAnalysis {
  // Pattern identity and the analysis-shaping options, verified by
  // factorize_with() before any reuse.
  index_t n = 0;
  offset_t nnz = 0;
  bool symmetric = true;
  index_t schur_size = 0;
  ordering::Method ordering = ordering::Method::kNestedDissection;
  index_t relax_zeros = 16;
  index_t max_supernode = 256;

  Symbolic sym;
  std::vector<index_t> perm;  ///< caller index -> permuted index
  offset_t factor_entries_dense = 0;
};

/// Multifrontal direct solver. Usage:
///   MultifrontalSolver<double> mf;
///   mf.factorize(A, opts);            // A: full-pattern CSR, square
///   mf.solve(B);                      // in-place, B rows = n_eliminated
///   la::Matrix<double> S = mf.take_schur();   // if schur_size > 0
template <class T>
class MultifrontalSolver {
 public:
  /// Analyze + numerically factorize A. With opt.schur_size = k > 0 the
  /// trailing k variables of A (caller's ordering) are not eliminated and
  /// their Schur complement is accumulated. Throws la::SingularMatrix on
  /// zero pivots and BudgetExceeded if the tracked memory budget is hit.
  void factorize(const sparse::Csr<T>& A, const SolverOptions& opt) {
    if (A.rows() != A.cols())
      throw std::invalid_argument("matrix must be square");
    opt_ = opt;
    stats_ = SolverStats{};
    stats_.n = A.rows();
    stats_.n_eliminated = A.rows() - opt.schur_size;
    stats_.nnz_input = A.nnz();

    Timer timer;
    {
      TraceSpan span("sparse", "mf.analyze");
      span.arg("n", static_cast<long long>(stats_.n));
      analyze(A);
    }
    stats_.analyze_seconds = timer.seconds();

    timer.reset();
    {
      TraceSpan span("sparse", "mf.factor");
      span.arg("n", static_cast<long long>(stats_.n))
          .arg("fronts", static_cast<long long>(stats_.n_fronts));
      numeric();
    }
    stats_.factor_seconds = timer.seconds();
    permuted_.reset();  // the permuted copies are only needed for assembly
    permuted_t_.reset();
    factored_ = true;
  }

  bool factored() const { return factored_; }
  const SolverStats& stats() const { return stats_; }
  const SolverOptions& options() const { return opt_; }

  /// Run only the analysis phase (ordering + symbolic): fills the size
  /// statistics (factor_entries_dense, n_fronts, peak_front_rows) without
  /// any numeric work. Used by the coupled::Planner to predict memory
  /// footprints cheaply. The solver is left un-factored.
  void analyze_only(const sparse::Csr<T>& A, const SolverOptions& opt) {
    if (A.rows() != A.cols())
      throw std::invalid_argument("matrix must be square");
    opt_ = opt;
    stats_ = SolverStats{};
    stats_.n = A.rows();
    stats_.n_eliminated = A.rows() - opt.schur_size;
    stats_.nnz_input = A.nnz();
    Timer timer;
    analyze(A);
    stats_.analyze_seconds = timer.seconds();
    permuted_.reset();
    permuted_t_.reset();
    factored_ = false;
  }

  /// Export the analysis of the last factorize()/analyze_only() call for
  /// reuse on another matrix with the identical sparsity pattern.
  SparseAnalysis export_analysis() const {
    if (perm_.empty())
      throw std::logic_error("export_analysis() before any analysis");
    SparseAnalysis a;
    a.n = stats_.n;
    a.nnz = stats_.nnz_input;
    a.symmetric = opt_.symmetric;
    a.schur_size = opt_.schur_size;
    a.ordering = opt_.ordering;
    a.relax_zeros = opt_.relax_zeros;
    a.max_supernode = opt_.max_supernode;
    a.sym = sym_;
    a.perm = perm_;
    a.factor_entries_dense = stats_.factor_entries_dense;
    return a;
  }

  /// factorize() with the analysis phase replaced by a previously exported
  /// one: adopts the ordering and symbolic assembly tree, rebuilds only
  /// the permuted value copies and runs the numeric factorization. The
  /// matrix must match the analysis in dimension, nnz and every
  /// analysis-shaping option; a mismatch throws std::invalid_argument so
  /// a degraded retry that flips `symmetric` or `schur_size` re-analyzes
  /// instead of silently reusing a stale tree.
  void factorize_with(const sparse::Csr<T>& A, const SolverOptions& opt,
                      const SparseAnalysis& analysis) {
    if (A.rows() != A.cols())
      throw std::invalid_argument("matrix must be square");
    if (A.rows() != analysis.n || A.nnz() != analysis.nnz ||
        opt.symmetric != analysis.symmetric ||
        opt.schur_size != analysis.schur_size ||
        opt.ordering != analysis.ordering ||
        opt.relax_zeros != analysis.relax_zeros ||
        opt.max_supernode != analysis.max_supernode)
      throw std::invalid_argument(
          "sparse analysis does not match this matrix/options");
    opt_ = opt;
    stats_ = SolverStats{};
    stats_.n = A.rows();
    stats_.n_eliminated = A.rows() - opt.schur_size;
    stats_.nnz_input = A.nnz();
    stats_.analysis_reused = true;

    Timer timer;
    {
      TraceSpan span("sparse", "mf.analyze_reuse");
      span.arg("n", static_cast<long long>(stats_.n));
      sym_ = analysis.sym;
      perm_ = analysis.perm;
      MemoryScope scope(MemTag::kSparseMatrix);
      permuted_ =
          std::make_unique<sparse::Csr<T>>(A.permuted_symmetric(perm_));
      if (!opt_.symmetric)
        permuted_t_ =
            std::make_unique<sparse::Csr<T>>(permuted_->transposed());
      stats_.n_fronts = static_cast<index_t>(sym_.fronts.size());
      stats_.peak_front_rows = sym_.peak_front_rows;
      stats_.factor_entries_dense = analysis.factor_entries_dense;
    }
    stats_.analyze_seconds = timer.seconds();
    Metrics::instance().add(Metric::kSparseAnalysisReuses, 1);

    timer.reset();
    {
      TraceSpan span("sparse", "mf.factor");
      span.arg("n", static_cast<long long>(stats_.n))
          .arg("fronts", static_cast<long long>(stats_.n_fronts));
      numeric();
    }
    stats_.factor_seconds = timer.seconds();
    permuted_.reset();
    permuted_t_.reset();
    factored_ = true;
  }

  /// In-place solve of the eliminated subsystem: B (n_eliminated x nrhs,
  /// caller ordering) is replaced by A11^{-1} B.
  void solve(la::MatrixView<T> B) const {
    if (!factored_) throw std::logic_error("solve() before factorize()");
    const index_t ne = stats_.n_eliminated;
    assert(B.rows() == ne);
    const index_t nrhs = B.cols();
    if (ne == 0 || nrhs == 0) return;
    TraceSpan span("sparse", "mf.solve");
    span.arg("nrhs", static_cast<long long>(nrhs));

    // Gather into permuted ordering.
    la::Matrix<T> X(ne, nrhs);
    for (index_t j = 0; j < nrhs; ++j)
      for (index_t i = 0; i < ne; ++i)
        X(perm_[static_cast<std::size_t>(i)], j) = B(i, j);

    // Sparse-RHS pruning: a front participates in the forward pass iff one
    // of its pivot rows is nonzero or one of its children participates.
    std::vector<char> active(sym_.fronts.size(), 1);
    if (opt_.exploit_sparse_rhs) {
      std::fill(active.begin(), active.end(), 0);
      for (std::size_t f = 0; f < sym_.fronts.size(); ++f) {
        const auto& front = sym_.fronts[f];
        if (front.is_schur) continue;
        bool any = active[f] != 0;
        for (index_t i = front.pivot_begin; !any && i < front.pivot_end; ++i)
          for (index_t j = 0; !any && j < nrhs; ++j)
            if (X(i, j) != T{0}) any = true;
        if (any) {
          active[f] = 1;
          // Mark the ancestor chain (its pivots receive our updates).
          index_t p = front.parent;
          while (p != -1 && !active[static_cast<std::size_t>(p)]) {
            active[static_cast<std::size_t>(p)] = 1;
            p = sym_.fronts[static_cast<std::size_t>(p)].parent;
          }
        }
      }
    }

    forward(X.view(), active);
    if (opt_.symmetric) {
      // Diagonal scaling by D^{-1}.
      for (const auto& ff : factors_) {
        for (index_t k = 0; k < ff.n_pivots(); ++k) {
          const T d = ff.pivot_block(k, k);
          for (index_t j = 0; j < nrhs; ++j)
            X(ff.pivot_begin + k, j) /= d;
        }
      }
    }
    backward(X.view());

    // Scatter back to caller ordering.
    for (index_t j = 0; j < nrhs; ++j)
      for (index_t i = 0; i < ne; ++i)
        B(i, j) = X(perm_[static_cast<std::size_t>(i)], j);
  }

  /// Move the dense Schur complement out of the solver (valid once, after
  /// a factorization with schur_size > 0). Row/column order matches the
  /// caller's ordering of the trailing schur_size variables.
  la::Matrix<T> take_schur() {
    if (opt_.schur_size == 0)
      throw std::logic_error("no Schur complement was requested");
    return std::move(schur_);
  }

  /// Total bytes currently held by the factor panels.
  std::size_t factor_bytes() const {
    std::size_t bytes = 0;
    for (const auto& f : factors_) {
      bytes += f.pivot_block.size_bytes() + f.L21.size_bytes() +
               f.U12t.size_bytes();
    }
    return bytes;
  }

  /// Serialize the complete factored state (options, symbolic tree,
  /// permutation, factor panels) into the writer's open section.
  /// OOC-resident panels are streamed back through memory and written
  /// inline, so the checkpoint is self-contained even when the unlinked
  /// spill file is gone. The internal Schur root (take_schur) is not part
  /// of the factored state and is not serialized.
  void save(serialize::Writer& w) const {
    w.write_i32(static_cast<std::int32_t>(opt_.ordering));
    w.write_u8(opt_.symmetric ? 1 : 0);
    w.write_i32(opt_.schur_size);
    w.write_u8(opt_.compress ? 1 : 0);
    w.write_f64(opt_.blr_eps);
    w.write_i32(opt_.blr_min_dim);
    w.write_i32(opt_.blr_tile_rows);
    w.write_i32(opt_.relax_zeros);
    w.write_i32(opt_.max_supernode);
    w.write_u8(opt_.exploit_sparse_rhs ? 1 : 0);
    w.write_u8(opt_.parallel_fronts ? 1 : 0);
    w.write_u8(opt_.out_of_core ? 1 : 0);
    w.write_string(opt_.ooc_dir);
    w.write_u8(opt_.ooc_sync_on_spill ? 1 : 0);

    w.write_i32(stats_.n);
    w.write_i32(stats_.n_eliminated);
    w.write_i64(stats_.nnz_input);
    w.write_i32(stats_.n_fronts);
    w.write_i64(stats_.peak_front_rows);
    w.write_i64(stats_.factor_entries_dense);
    w.write_i64(stats_.factor_entries_stored);
    w.write_f64(stats_.analyze_seconds);
    w.write_f64(stats_.factor_seconds);
    w.write_i64(stats_.compressed_panels);
    w.write_i64(stats_.dense_panels);
    w.write_u64(stats_.ooc_bytes);

    w.write_i32(sym_.n);
    w.write_i32(sym_.n_eliminated);
    w.write_i32(sym_.schur_front);
    w.write_i64(sym_.factor_entries);
    w.write_i64(sym_.peak_front_rows);
    w.write_u64(sym_.fronts.size());
    for (const Front& fr : sym_.fronts) {
      w.write_i32(fr.pivot_begin);
      w.write_i32(fr.pivot_end);
      serialize::write_vec(w, fr.border);
      w.write_i32(fr.parent);
      serialize::write_vec(w, fr.children);
      w.write_u8(fr.is_schur ? 1 : 0);
    }
    serialize::write_vec(w, sym_.front_of_var);
    serialize::write_vec(w, perm_);
    w.write_u8(factored_ ? 1 : 0);

    w.write_u64(factors_.size());
    for (const auto& ff : factors_) {
      w.write_i32(ff.pivot_begin);
      w.write_i32(ff.pivot_end);
      serialize::write_vec(w, ff.piv);
      la::write_matrix(w, ff.pivot_block);
      write_panel(w, ff.L21, ff.L21_ooc);
      write_panel(w, ff.U12t, ff.U12t_ooc);
    }
  }

  /// Restore the factored state from a section written by save(). When the
  /// stored options enable out-of-core, border panels are re-spilled into
  /// a fresh store (rooted at `ooc_dir_override` when non-empty -- the
  /// original spill directory may not exist after a restart). Factors land
  /// in the same memory-ledger tags as freshly computed ones.
  void load(serialize::Reader& in, const std::string& ooc_dir_override = {}) {
    opt_ = SolverOptions{};
    opt_.ordering = static_cast<ordering::Method>(in.read_i32());
    opt_.symmetric = in.read_u8() != 0;
    opt_.schur_size = in.read_i32();
    opt_.compress = in.read_u8() != 0;
    opt_.blr_eps = in.read_f64();
    opt_.blr_min_dim = in.read_i32();
    opt_.blr_tile_rows = in.read_i32();
    opt_.relax_zeros = in.read_i32();
    opt_.max_supernode = in.read_i32();
    opt_.exploit_sparse_rhs = in.read_u8() != 0;
    opt_.parallel_fronts = in.read_u8() != 0;
    opt_.out_of_core = in.read_u8() != 0;
    opt_.ooc_dir = in.read_string();
    opt_.ooc_sync_on_spill = in.read_u8() != 0;
    if (!ooc_dir_override.empty()) opt_.ooc_dir = ooc_dir_override;

    stats_ = SolverStats{};
    stats_.n = in.read_i32();
    stats_.n_eliminated = in.read_i32();
    stats_.nnz_input = in.read_i64();
    stats_.n_fronts = in.read_i32();
    stats_.peak_front_rows = in.read_i64();
    stats_.factor_entries_dense = in.read_i64();
    stats_.factor_entries_stored = in.read_i64();
    stats_.analyze_seconds = in.read_f64();
    stats_.factor_seconds = in.read_f64();
    stats_.compressed_panels = in.read_i64();
    stats_.dense_panels = in.read_i64();
    stats_.ooc_bytes = in.read_u64();

    sym_ = Symbolic{};
    sym_.n = in.read_i32();
    sym_.n_eliminated = in.read_i32();
    sym_.schur_front = in.read_i32();
    sym_.factor_entries = in.read_i64();
    sym_.peak_front_rows = in.read_i64();
    const std::uint64_t nfronts = in.read_u64();
    in.require(nfronts);  // >= 1 byte per front: bounds the reserve
    sym_.fronts.reserve(static_cast<std::size_t>(nfronts));
    for (std::uint64_t f = 0; f < nfronts; ++f) {
      Front fr;
      fr.pivot_begin = in.read_i32();
      fr.pivot_end = in.read_i32();
      fr.border = serialize::read_vec<index_t>(in);
      fr.parent = in.read_i32();
      fr.children = serialize::read_vec<index_t>(in);
      fr.is_schur = in.read_u8() != 0;
      sym_.fronts.push_back(std::move(fr));
    }
    sym_.front_of_var = serialize::read_vec<index_t>(in);
    perm_ = serialize::read_vec<index_t>(in);
    factored_ = in.read_u8() != 0;

    permuted_.reset();
    permuted_t_.reset();
    schur_ = la::Matrix<T>();
    ooc_.reset();
    const std::uint64_t nfactors = in.read_u64();
    if (nfactors != sym_.fronts.size())
      throw ClassifiedError(
          ErrorCode::kIo, "ckpt.corrupt",
          "checkpoint factor count does not match its assembly tree");
    factors_.clear();
    factors_.resize(sym_.fronts.size());
    for (std::size_t f = 0; f < factors_.size(); ++f) {
      FrontFactor& ff = factors_[f];
      ff.pivot_begin = in.read_i32();
      ff.pivot_end = in.read_i32();
      // Rewire the border alias into the restored symbolic tree: the
      // serialized form never stores this pointer.
      ff.border = &sym_.fronts[f].border;
      ff.piv = serialize::read_vec<index_t>(in);
      {
        MemoryScope scope(MemTag::kMfFactor);
        ff.pivot_block = la::read_matrix<T>(in);
      }
      read_panel(in, ff.L21, ff.L21_ooc);
      read_panel(in, ff.U12t, ff.U12t_ooc);
    }
    if (ooc_) stats_.ooc_bytes = ooc_->bytes_on_disk();
  }

 private:
  struct FrontFactor {
    index_t pivot_begin = 0;
    index_t pivot_end = 0;
    const std::vector<index_t>* border = nullptr;  // owned by sym_
    la::Matrix<T> pivot_block;  // npiv x npiv; L\D (sym, lower) or L\U (LU)
    TiledPanel<T> L21;          // nb x npiv border panel
    TiledPanel<T> U12t;         // nb x npiv: transpose of U12 (LU only)
    typename OocPanelStore<T>::Handle L21_ooc;   // set when spilled
    typename OocPanelStore<T>::Handle U12t_ooc;
    std::vector<index_t> piv;   // LU front-local pivots

    index_t n_pivots() const { return pivot_end - pivot_begin; }
    index_t n_border() const {
      return static_cast<index_t>(border->size());
    }
  };

  void analyze(const sparse::Csr<T>& A) {
    const index_t n = A.rows();
    const index_t ne = n - opt_.schur_size;

    // Fill-reducing ordering with the Schur variables constrained last.
    const auto base_pattern =
        opt_.symmetric ? sparse::Pattern::from_symmetric(A)
                       : sparse::Pattern::from_general_symmetrized(A);
    std::vector<bool> last(static_cast<std::size_t>(n), false);
    for (index_t v = ne; v < n; ++v) last[static_cast<std::size_t>(v)] = true;
    auto perm1 = ordering::compute_constrained(base_pattern, opt_.ordering,
                                               last);

    // Postorder the elimination tree of the permuted pattern (improves
    // supernode contiguity); the Schur tail keeps its natural order.
    auto A1 = A.permuted_symmetric(perm1);
    const auto pat1 = opt_.symmetric
                          ? sparse::Pattern::from_symmetric(A1)
                          : sparse::Pattern::from_general_symmetrized(A1);
    auto parent = elimination_tree(pat1);
    // Restrict the forest to the eliminated part.
    std::vector<index_t> parent_elim(parent.begin(), parent.begin() + ne);
    for (auto& p : parent_elim)
      if (p >= ne) p = -1;
    const auto post = tree_postorder(parent_elim);
    std::vector<index_t> perm2(static_cast<std::size_t>(n));
    for (index_t k = 0; k < ne; ++k)
      perm2[static_cast<std::size_t>(post[static_cast<std::size_t>(k)])] = k;
    for (index_t v = ne; v < n; ++v) perm2[static_cast<std::size_t>(v)] = v;

    perm_.resize(static_cast<std::size_t>(n));
    for (index_t v = 0; v < n; ++v)
      perm_[static_cast<std::size_t>(v)] = perm2[static_cast<std::size_t>(
          perm1[static_cast<std::size_t>(v)])];

    {
      MemoryScope scope(MemTag::kSparseMatrix);
      permuted_ =
          std::make_unique<sparse::Csr<T>>(A.permuted_symmetric(perm_));
      if (!opt_.symmetric)
        permuted_t_ =
            std::make_unique<sparse::Csr<T>>(permuted_->transposed());
    }

    const auto pat2 = opt_.symmetric
                          ? sparse::Pattern::from_symmetric(*permuted_)
                          : sparse::Pattern::from_general_symmetrized(
                                *permuted_);
    SymbolicOptions sopt;
    sopt.schur_size = opt_.schur_size;
    sopt.relax_zeros = opt_.relax_zeros;
    sopt.max_supernode = opt_.max_supernode;
    sym_ = sparsedirect::analyze(pat2, sopt);

    stats_.n_fronts = static_cast<index_t>(sym_.fronts.size());
    stats_.peak_front_rows = sym_.peak_front_rows;
    // Scalars this solver would store without compression (square pivot
    // blocks plus border panels; LU keeps both L21 and U12 panels).
    stats_.factor_entries_dense = 0;
    for (const auto& fr : sym_.fronts) {
      if (fr.is_schur) continue;
      const offset_t np = fr.n_pivots();
      const offset_t nb = static_cast<offset_t>(fr.border.size());
      stats_.factor_entries_dense +=
          np * np + (opt_.symmetric ? np * nb : 2 * np * nb);
    }
  }

  /// Numeric multifrontal factorization over the assembly tree.
  void numeric() {
    const index_t n = sym_.n;
    factors_.clear();
    factors_.resize(sym_.fronts.size());
    ooc_.reset();
    schur_ = la::Matrix<T>();

    // Contribution blocks, indexed by front id, freed once consumed.
    std::vector<la::Matrix<T>> cb(sym_.fronts.size());

    // Out-of-core spilling serializes on one file: run the tree serially.
    if (opt_.parallel_fronts && !opt_.out_of_core) {
      numeric_tasks(cb);
    } else {
      std::vector<index_t> pos(static_cast<std::size_t>(n), -1);
      for (std::size_t f = 0; f < sym_.fronts.size(); ++f)
        process_front(static_cast<index_t>(f), cb, pos);
    }
    if (ooc_) stats_.ooc_bytes = ooc_->bytes_on_disk();

    // Storage statistics.
    stats_.factor_entries_stored = 0;
    for (const auto& ff : factors_) {
      stats_.factor_entries_stored +=
          static_cast<offset_t>(ff.pivot_block.rows()) * ff.pivot_block.cols();
      stats_.factor_entries_stored += ff.L21.stored_entries();
      stats_.factor_entries_stored += ff.U12t.stored_entries();
    }
  }

  /// Task-parallel tree walk: every front becomes an OpenMP task that
  /// runs after its children (the classic multifrontal tree parallelism
  /// of the paper's parallel solvers). Exceptions (budget/singularity)
  /// are captured and rethrown after the parallel region.
  void numeric_tasks(std::vector<la::Matrix<T>>& cb) {
    const index_t n = sym_.n;
    const int max_threads = omp_get_max_threads();
    std::vector<std::vector<index_t>> pos_pool(
        static_cast<std::size_t>(max_threads),
        std::vector<index_t>(static_cast<std::size_t>(n), -1));
    std::exception_ptr error = nullptr;
    std::atomic<bool> failed{false};

    std::function<void(index_t)> run_tree = [&](index_t f) {
      for (const index_t c :
           sym_.fronts[static_cast<std::size_t>(f)].children) {
#pragma omp task firstprivate(c) shared(run_tree)
        run_tree(c);
      }
#pragma omp taskwait
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        process_front(f, cb,
                      pos_pool[static_cast<std::size_t>(
                          omp_get_thread_num())]);
      } catch (...) {
#pragma omp critical(cs_mf_task_error)
        {
          if (!failed.exchange(true)) error = std::current_exception();
        }
      }
    };

#pragma omp parallel
#pragma omp single
    {
      for (std::size_t f = 0; f < sym_.fronts.size(); ++f) {
        if (sym_.fronts[f].parent == -1) {
          const index_t root = static_cast<index_t>(f);
#pragma omp task firstprivate(root) shared(run_tree)
          run_tree(root);
        }
      }
    }
    if (error) std::rethrow_exception(error);
  }

  /// Assemble, factor and store one front (thread-safe for distinct f:
  /// writes factors_[f], cb[f], and consumes the children's cb entries,
  /// which the task dependencies guarantee are complete).
  void process_front(index_t fi, std::vector<la::Matrix<T>>& cb,
                     std::vector<index_t>& pos) {
    const auto& A2 = *permuted_;
    const std::size_t f = static_cast<std::size_t>(fi);
    const Front& front = sym_.fronts[f];
    const index_t npiv = front.n_pivots();
    const index_t nb = static_cast<index_t>(front.border.size());
    const index_t nf = npiv + nb;
    offset_t local_compressed = 0, local_dense = 0;

    TraceSpan front_span("sparse", "front.factor");
    front_span.arg("front", static_cast<long long>(fi))
        .arg("npiv", static_cast<long long>(npiv))
        .arg("nb", static_cast<long long>(nb));

    if (front.is_schur) {
      // Terminal front: assemble but never eliminate; this is the Schur
      // complement. Faithful to the sparse solvers' API (MUMPS-style),
      // the *internal* root front is a separate allocation from the
      // user-facing Schur array it is copied into — the transient
      // 2 x n_schur^2 footprint is precisely the cost the paper's
      // algorithms are designed to avoid paying at full n_BEM.
      MemoryScope schur_scope(MemTag::kSchurDense);
      la::Matrix<T> root(npiv, npiv);
      for (index_t k = 0; k < npiv; ++k)
        pos[static_cast<std::size_t>(front.pivot_begin + k)] = k;
      assemble_original(A2, front, pos, root.view());
      for (const index_t c : front.children)
        extend_add(sym_.fronts[static_cast<std::size_t>(c)], cb, c, pos,
                   root.view());
      if (opt_.symmetric) la::symmetrize_from_lower(root.view());
      schur_ = la::Matrix<T>(npiv, npiv);  // the user's Schur array
      schur_.view().copy_from(la::ConstMatrixView<T>(root.view()));
      root.clear();
      for (index_t k = 0; k < npiv; ++k)
        pos[static_cast<std::size_t>(front.pivot_begin + k)] = -1;
      auto& ff = factors_[f];  // placeholder keeps ids aligned
      ff.pivot_begin = front.pivot_begin;
      ff.pivot_end = front.pivot_begin;  // zero pivots: never solved
      ff.border = &front.border;
      return;
    }

    // Local position map: pivots first, border after.
    for (index_t k = 0; k < npiv; ++k)
      pos[static_cast<std::size_t>(front.pivot_begin + k)] = k;
    for (index_t k = 0; k < nb; ++k)
      pos[static_cast<std::size_t>(front.border[static_cast<std::size_t>(
          k)])] = npiv + k;

    // Transient frontal storage (the front itself, the children's
    // contribution blocks, extraction scratch) is charged to mf.front; the
    // retained factor pieces below override with their own tags.
    MemoryScope front_scope(MemTag::kMfFront);
    if (failpoint("alloc.front"))
      throw BudgetExceeded(
          static_cast<std::size_t>(nf) * static_cast<std::size_t>(nf) *
              sizeof(T),
          MemoryTracker::instance().current(),
          MemoryTracker::instance().budget());
    la::Matrix<T> F(nf, nf);
    assemble_original(A2, front, pos, F.view());
    for (const index_t c : front.children)
      extend_add(sym_.fronts[static_cast<std::size_t>(c)], cb, c, pos,
                 F.view());

    FrontFactor ff;
    ff.pivot_begin = front.pivot_begin;
    ff.pivot_end = front.pivot_end;
    ff.border = &front.border;
    if (failpoint("mf.front_factor"))
      throw la::SingularMatrix(front.pivot_begin);
    if (opt_.symmetric) {
      la::ldlt_factor_partial(F.view(), npiv);
    } else {
      la::lu_factor_partial(F.view(), npiv, ff.piv);
    }

    // Extract factor panels (optionally BLR-compressed, tiled by rows).
    {
      MemoryScope factor_scope(MemTag::kMfFactor);
      ff.pivot_block = la::Matrix<T>(npiv, npiv);
    }
    ff.pivot_block.view().copy_from(F.block(0, 0, npiv, npiv));
    ff.L21 = TiledPanel<T>::from_dense(
        F.block(npiv, 0, nb, npiv), opt_.compress,
        real_of_t<T>(opt_.blr_eps), opt_.blr_min_dim, opt_.blr_tile_rows,
        &local_compressed, &local_dense);
    if (!opt_.symmetric) {
      // Store U12 transposed so it tiles along the border like L21.
      la::Matrix<T> u12t(nb, npiv);
      for (index_t j = 0; j < npiv; ++j)
        for (index_t i = 0; i < nb; ++i) u12t(i, j) = F(j, npiv + i);
      ff.U12t = TiledPanel<T>::from_dense(
          u12t.view(), opt_.compress, real_of_t<T>(opt_.blr_eps),
          opt_.blr_min_dim, opt_.blr_tile_rows, &local_compressed,
          &local_dense);
    }

    // Contribution block for the parent.
    if (nb > 0 && front.parent != -1) {
      cb[f] = la::Matrix<T>(nb, nb);
      if (opt_.symmetric) {
        for (index_t j = 0; j < nb; ++j)
          for (index_t i = j; i < nb; ++i)
            cb[f](i, j) = F(npiv + i, npiv + j);
      } else {
        cb[f].view().copy_from(F.block(npiv, npiv, nb, nb));
      }
    }

    // Reset the scratch map.
    for (index_t k = 0; k < npiv; ++k)
      pos[static_cast<std::size_t>(front.pivot_begin + k)] = -1;
    for (index_t k = 0; k < nb; ++k)
      pos[static_cast<std::size_t>(front.border[static_cast<std::size_t>(
          k)])] = -1;

    // Out-of-core: spill the border panels immediately so that peak
    // memory never holds the full factor set (serial mode only).
    if (opt_.out_of_core) {
      if (!ooc_)
        ooc_ = std::make_unique<OocPanelStore<T>>(opt_.ooc_dir,
                                                  opt_.ooc_sync_on_spill);
      ff.L21_ooc = spill_panel(ff.L21);
      if (!opt_.symmetric) ff.U12t_ooc = spill_panel(ff.U12t);
    }

#pragma omp atomic
    stats_.compressed_panels += local_compressed;
#pragma omp atomic
    stats_.dense_panels += local_dense;

    factors_[f] = std::move(ff);
  }

  /// Spill one factor panel, retrying transient I/O failures with a short
  /// exponential backoff (1/2/4 ms). When the failure persists or is
  /// non-transient (ENOSPC) the panel is *kept in core* — the graceful
  /// degradation path trades the OOC memory saving for completing the
  /// factorization — and an invalid handle is returned. On success the
  /// panel is released and the spill handle returned.
  typename OocPanelStore<T>::Handle spill_panel(TiledPanel<T>& panel) {
    for (int attempt = 0;; ++attempt) {
      try {
        auto h = ooc_->spill(std::move(panel));
        panel = TiledPanel<T>();
        return h;
      } catch (const IoError& e) {
        if (e.transient() && attempt < 2) {
          Metrics::instance().add(Metric::kOocRetries, 1);
          trace_instant("ooc", "ooc.write_retry");
          std::this_thread::sleep_for(
              std::chrono::milliseconds(1L << attempt));
          continue;
        }
        log_warn("ooc: spill failed (", e.what(),
                 "); keeping panel in core");
        Metrics::instance().add(Metric::kOocInCoreFallbacks, 1);
        trace_instant("ooc", "ooc.incore_fallback");
        return {};
      }
    }
  }

  /// Serialize one border panel; an OOC-resident panel is loaded back
  /// through memory and written inline, flagged so load() re-spills it.
  void write_panel(serialize::Writer& w, const TiledPanel<T>& panel,
                   const typename OocPanelStore<T>::Handle& h) const {
    const bool was_ooc = h.valid();
    w.write_u8(was_ooc ? 1 : 0);
    if (was_ooc)
      write_panel_tiles(w, load_panel(h));
    else
      write_panel_tiles(w, panel);
  }

  static void write_panel_tiles(serialize::Writer& w,
                                const TiledPanel<T>& p) {
    w.write_i32(p.rows());
    w.write_i32(p.cols());
    const auto& tiles = p.tiles();
    w.write_u64(tiles.size());
    for (const auto& tile : tiles) {
      w.write_i32(tile.row0);
      w.write_i32(tile.rows);
      w.write_u8(tile.compressed ? 1 : 0);
      if (tile.compressed)
        la::write_rk(w, tile.rk);
      else
        la::write_matrix(w, tile.dense);
    }
  }

  static TiledPanel<T> read_panel_tiles(serialize::Reader& in) {
    const index_t rows = in.read_i32();
    const index_t cols = in.read_i32();
    const std::uint64_t ntiles = in.read_u64();
    in.require(ntiles);  // >= 1 byte per tile: bounds the reserve
    std::vector<PanelTile<T>> tiles;
    tiles.reserve(static_cast<std::size_t>(ntiles));
    for (std::uint64_t t = 0; t < ntiles; ++t) {
      PanelTile<T> tile;
      tile.row0 = in.read_i32();
      tile.rows = in.read_i32();
      tile.compressed = in.read_u8() != 0;
      if (tile.compressed)
        tile.rk = la::read_rk<T>(in);
      else
        tile.dense = la::read_matrix<T>(in);
      tiles.push_back(std::move(tile));
    }
    return TiledPanel<T>::from_tiles(rows, cols, std::move(tiles));
  }

  /// Restore one border panel; panels flagged as OOC-resident at save time
  /// are re-spilled (falling back to in-core if the spill fails, exactly
  /// like the factorization path).
  void read_panel(serialize::Reader& in, TiledPanel<T>& panel,
                  typename OocPanelStore<T>::Handle& h) {
    const bool was_ooc = in.read_u8() != 0;
    TiledPanel<T> p;
    {
      MemoryScope scope(MemTag::kMfBlrPanel);
      p = read_panel_tiles(in);
    }
    h = {};
    if (was_ooc && opt_.out_of_core && !p.empty()) {
      if (!ooc_)
        ooc_ = std::make_unique<OocPanelStore<T>>(opt_.ooc_dir,
                                                  opt_.ooc_sync_on_spill);
      h = spill_panel(p);
    }
    panel = std::move(p);
  }

  /// Load a spilled panel back, retrying transient I/O failures with the
  /// same backoff. Non-transient and persistent failures propagate (the
  /// coupled driver then retries the whole solve in-core).
  TiledPanel<T> load_panel(
      const typename OocPanelStore<T>::Handle& h) const {
    for (int attempt = 0;; ++attempt) {
      try {
        return ooc_->load(h);
      } catch (const IoError& e) {
        if (!e.transient() || attempt >= 2) throw;
        Metrics::instance().add(Metric::kOocRetries, 1);
        trace_instant("ooc", "ooc.read_retry");
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1L << attempt));
      }
    }
  }

  /// Assemble original matrix entries of `front` into its dense front
  /// (lower triangle only in symmetric mode).
  void assemble_original(const sparse::Csr<T>& A2, const Front& front,
                         const std::vector<index_t>& pos,
                         la::MatrixView<T> F) const {
    if (opt_.symmetric) {
      // Lower entries of the pivot columns; by symmetry column j of A2 is
      // row j.
      for (index_t j = front.pivot_begin; j < front.pivot_end; ++j) {
        const index_t lj = pos[static_cast<std::size_t>(j)];
        for (offset_t k = A2.row_begin(j); k < A2.row_end(j); ++k) {
          const index_t i = A2.col(k);
          if (i < j) continue;
          const index_t li = pos[static_cast<std::size_t>(i)];
          assert(li >= 0);
          F(li, lj) += A2.value(k);
        }
      }
    } else {
      // Column j of A2 (rows >= pivot_begin) from the transposed copy, and
      // the U-part rows of the pivot block from A2 itself.
      const auto& A2t = *permuted_t_;
      for (index_t j = front.pivot_begin; j < front.pivot_end; ++j) {
        const index_t lj = pos[static_cast<std::size_t>(j)];
        for (offset_t k = A2t.row_begin(j); k < A2t.row_end(j); ++k) {
          const index_t i = A2t.col(k);  // row index of A2(i, j)
          if (i < front.pivot_begin) continue;  // owned by an earlier front
          const index_t li = pos[static_cast<std::size_t>(i)];
          assert(li >= 0);
          F(li, lj) += A2t.value(k);
        }
        // Row j entries beyond the pivot block (the U12 part).
        for (offset_t k = A2.row_begin(j); k < A2.row_end(j); ++k) {
          const index_t c = A2.col(k);
          if (c < front.pivot_end) continue;  // in-pivot-block: done above
          const index_t lc = pos[static_cast<std::size_t>(c)];
          assert(lc >= 0);
          F(lj, lc) += A2.value(k);
        }
      }
    }
  }

  /// Scatter a child's contribution block into the current front.
  void extend_add(const Front& child, std::vector<la::Matrix<T>>& cb,
                  index_t child_id, const std::vector<index_t>& pos,
                  la::MatrixView<T> F) const {
    auto& C = cb[static_cast<std::size_t>(child_id)];
    if (C.empty()) return;
    const index_t nbc = static_cast<index_t>(child.border.size());
    if (opt_.symmetric) {
      for (index_t j = 0; j < nbc; ++j) {
        const index_t gj = child.border[static_cast<std::size_t>(j)];
        const index_t lj = pos[static_cast<std::size_t>(gj)];
        assert(lj >= 0);
        for (index_t i = j; i < nbc; ++i) {
          const index_t gi = child.border[static_cast<std::size_t>(i)];
          const index_t li = pos[static_cast<std::size_t>(gi)];
          assert(li >= lj);
          F(li, lj) += C(i, j);
        }
      }
    } else {
      for (index_t j = 0; j < nbc; ++j) {
        const index_t lj =
            pos[static_cast<std::size_t>(child.border[static_cast<std::size_t>(
                j)])];
        for (index_t i = 0; i < nbc; ++i) {
          const index_t li =
              pos[static_cast<std::size_t>(child.border[
                  static_cast<std::size_t>(i)])];
          F(li, lj) += C(i, j);
        }
      }
    }
    C.clear();  // free the child's contribution block immediately
  }

  void forward(la::MatrixView<T> X, const std::vector<char>& active) const {
    const index_t nrhs = X.cols();
    for (std::size_t f = 0; f < factors_.size(); ++f) {
      const auto& ff = factors_[f];
      const index_t npiv = ff.n_pivots();
      if (npiv == 0 || !active[f]) continue;
      auto y = X.block(ff.pivot_begin, 0, npiv, nrhs);
      if (!opt_.symmetric) la::lu_apply_pivots(ff.piv, y);
      la::trsm(la::Side::kLeft, la::Uplo::kLower, la::Op::kNoTrans,
               la::Diag::kUnit, ff.pivot_block.view(), y);
      const index_t nb = ff.n_border();
      if (nb == 0) continue;
      la::Matrix<T> upd(nb, nrhs);
      if (ff.L21_ooc.valid()) {
        const TiledPanel<T> panel = load_panel(ff.L21_ooc);
        panel.mult(la::ConstMatrixView<T>(y), upd.view());
      } else {
        ff.L21.mult(la::ConstMatrixView<T>(y), upd.view());
      }
      for (index_t b = 0; b < nb; ++b) {
        const index_t g = (*ff.border)[static_cast<std::size_t>(b)];
        if (g >= stats_.n_eliminated) continue;  // Schur rows: not solved
        for (index_t j = 0; j < nrhs; ++j) X(g, j) -= upd(b, j);
      }
    }
  }

  void backward(la::MatrixView<T> X) const {
    const index_t nrhs = X.cols();
    for (std::size_t fi = factors_.size(); fi-- > 0;) {
      const auto& ff = factors_[fi];
      const index_t npiv = ff.n_pivots();
      if (npiv == 0) continue;
      auto y = X.block(ff.pivot_begin, 0, npiv, nrhs);
      const index_t nb = ff.n_border();
      if (nb > 0) {
        // Gather the border solution rows.
        la::Matrix<T> xb(nb, nrhs);
        index_t used = 0;
        for (index_t b = 0; b < nb; ++b) {
          const index_t g = (*ff.border)[static_cast<std::size_t>(b)];
          if (g >= stats_.n_eliminated) continue;  // Schur rows contribute 0
          for (index_t j = 0; j < nrhs; ++j) xb(b, j) = X(g, j);
          ++used;
        }
        (void)used;
        la::Matrix<T> upd(npiv, nrhs);
        if (opt_.symmetric) {
          if (ff.L21_ooc.valid()) {
            const TiledPanel<T> panel = load_panel(ff.L21_ooc);
            panel.mult_trans(la::ConstMatrixView<T>(xb.view()), upd.view());
          } else {
            ff.L21.mult_trans(la::ConstMatrixView<T>(xb.view()), upd.view());
          }
        } else {
          // upd = U12 * xb = (U12^T)^T * xb.
          if (ff.U12t_ooc.valid()) {
            const TiledPanel<T> panel = load_panel(ff.U12t_ooc);
            panel.mult_trans(la::ConstMatrixView<T>(xb.view()), upd.view());
          } else {
            ff.U12t.mult_trans(la::ConstMatrixView<T>(xb.view()), upd.view());
          }
        }
        la::axpy(T{-1}, upd.view(), y);
      }
      if (opt_.symmetric) {
        la::trsm(la::Side::kLeft, la::Uplo::kLower, la::Op::kTrans,
                 la::Diag::kUnit, ff.pivot_block.view(), y);
      } else {
        la::trsm(la::Side::kLeft, la::Uplo::kUpper, la::Op::kNoTrans,
                 la::Diag::kNonUnit, ff.pivot_block.view(), y);
      }
    }
  }

  SolverOptions opt_;
  SolverStats stats_;
  Symbolic sym_;
  std::vector<index_t> perm_;  // caller index -> permuted index
  std::unique_ptr<sparse::Csr<T>> permuted_;
  std::unique_ptr<sparse::Csr<T>> permuted_t_;
  std::vector<FrontFactor> factors_;
  std::unique_ptr<OocPanelStore<T>> ooc_;
  la::Matrix<T> schur_;
  bool factored_ = false;
};

}  // namespace cs::sparsedirect
