// Symbolic analysis for the multifrontal solver: per-column factor
// structures, supernode (front) formation with fundamental-supernode
// detection and relaxed amalgamation, and the assembly tree.
//
// The analysis runs on an already-permuted, postordered pattern. An
// optional trailing group of `schur_size` variables is forced into a single
// terminal "Schur front" that is never eliminated: after the numeric phase
// its assembled matrix *is* the Schur complement of the leading block,
// which is how the solver exposes the paper's "sparse factorization+Schur"
// building block.
#pragma once

#include <vector>

#include "sparse/sparse.h"

namespace cs::sparsedirect {

/// One front (supernode) of the assembly tree.
struct Front {
  index_t pivot_begin = 0;  ///< first pivot variable (permuted index)
  index_t pivot_end = 0;    ///< one-past-last pivot variable
  std::vector<index_t> border;  ///< row indices below the pivot block, sorted
  index_t parent = -1;          ///< parent front id (-1 for roots)
  std::vector<index_t> children;
  bool is_schur = false;  ///< terminal non-eliminated front

  index_t n_pivots() const { return pivot_end - pivot_begin; }
  index_t n_rows() const {
    return n_pivots() + static_cast<index_t>(border.size());
  }
};

struct SymbolicOptions {
  index_t schur_size = 0;
  /// Merge a child column into its parent supernode when at most this many
  /// explicit-zero rows per column would be introduced.
  index_t relax_zeros = 16;
  /// Never grow a relaxed supernode beyond this many pivots.
  index_t max_supernode = 256;
};

/// Result of the symbolic phase.
struct Symbolic {
  index_t n = 0;           ///< matrix dimension (including Schur variables)
  index_t n_eliminated = 0;  ///< n - schur_size
  std::vector<Front> fronts;  ///< in assembly (post)order: children first
  index_t schur_front = -1;   ///< id of the terminal Schur front, or -1
  std::vector<index_t> front_of_var;  ///< pivot variable -> front id
  offset_t factor_entries = 0;  ///< scalar entries in all factor panels
  offset_t peak_front_rows = 0;  ///< largest front dimension

  /// Estimated scalar L storage (pivot block lower + border panels).
  offset_t estimate_factor_entries() const;
};

/// Run the symbolic analysis on a postordered symmetric pattern.
Symbolic analyze(const sparse::Pattern& pattern, const SymbolicOptions& opt);

}  // namespace cs::sparsedirect
