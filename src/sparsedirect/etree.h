// Elimination tree utilities (Liu's algorithm) for the multifrontal solver.
#pragma once

#include <vector>

#include "sparse/sparse.h"

namespace cs::sparsedirect {

/// Elimination tree of a symmetric pattern (both triangles present in
/// `pattern`): parent[j] = min { i > j : L(i,j) != 0 }, or -1 for roots.
/// Uses path compression; O(nnz * alpha(n)).
std::vector<index_t> elimination_tree(const sparse::Pattern& pattern);

/// Postorder of the forest given parent pointers: returns `post` with
/// post[k] = k-th vertex in postorder (children before parents).
std::vector<index_t> tree_postorder(const std::vector<index_t>& parent);

}  // namespace cs::sparsedirect
