#include "sparsedirect/symbolic.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sparsedirect/etree.h"

namespace cs::sparsedirect {

offset_t Symbolic::estimate_factor_entries() const {
  offset_t total = 0;
  for (const auto& f : fronts) {
    if (f.is_schur) continue;
    const offset_t np = f.n_pivots();
    const offset_t nb = static_cast<offset_t>(f.border.size());
    total += np * (np + 1) / 2 + np * nb;
  }
  return total;
}

Symbolic analyze(const sparse::Pattern& pattern, const SymbolicOptions& opt) {
  const index_t n = pattern.n;
  const index_t n_elim = n - opt.schur_size;
  if (n_elim < 0)
    throw std::invalid_argument("schur_size exceeds matrix dimension");

  Symbolic sym;
  sym.n = n;
  sym.n_eliminated = n_elim;

  const auto parent = elimination_tree(pattern);

  // Column structures of the factor, bottom-up over the eliminated
  // variables (struct(j) = rows > j of column j of L). Entries in the Schur
  // range are kept: they are the rows through which contributions reach the
  // terminal Schur front.
  std::vector<std::vector<index_t>> structs(static_cast<std::size_t>(n_elim));
  std::vector<std::vector<index_t>> children(static_cast<std::size_t>(n_elim));
  for (index_t j = 0; j < n_elim; ++j) {
    const index_t p = parent[static_cast<std::size_t>(j)];
    if (p >= 0 && p < n_elim)
      children[static_cast<std::size_t>(p)].push_back(j);
  }
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  for (index_t j = 0; j < n_elim; ++j) {
    auto& s = structs[static_cast<std::size_t>(j)];
    mark[static_cast<std::size_t>(j)] = j;
    for (offset_t k = pattern.adj_ptr[static_cast<std::size_t>(j)];
         k < pattern.adj_ptr[static_cast<std::size_t>(j) + 1]; ++k) {
      const index_t i = pattern.adj[static_cast<std::size_t>(k)];
      if (i > j && mark[static_cast<std::size_t>(i)] != j) {
        mark[static_cast<std::size_t>(i)] = j;
        s.push_back(i);
      }
    }
    for (const index_t c : children[static_cast<std::size_t>(j)]) {
      for (const index_t i : structs[static_cast<std::size_t>(c)]) {
        if (i != j && mark[static_cast<std::size_t>(i)] != j) {
          assert(i > j);
          mark[static_cast<std::size_t>(i)] = j;
          s.push_back(i);
        }
      }
    }
    std::sort(s.begin(), s.end());
  }

  // Supernode (front) formation: column j joins the supernode of column
  // j-1 when the etree makes them a chain and the structure growth is
  // within the amalgamation budget (growth 0 <=> fundamental supernode).
  std::vector<index_t> front_starts;
  if (n_elim > 0) front_starts.push_back(0);
  for (index_t j = 1; j < n_elim; ++j) {
    const bool chain = parent[static_cast<std::size_t>(j - 1)] == j;
    const index_t width = j - front_starts.back();
    bool merge = false;
    if (chain && width < opt.max_supernode) {
      const offset_t growth =
          static_cast<offset_t>(structs[static_cast<std::size_t>(j)].size()) +
          1 -
          static_cast<offset_t>(
              structs[static_cast<std::size_t>(j - 1)].size());
      assert(growth >= 0);
      merge = growth <= opt.relax_zeros;
    }
    if (!merge) front_starts.push_back(j);
  }

  sym.front_of_var.assign(static_cast<std::size_t>(n), -1);
  for (std::size_t f = 0; f < front_starts.size(); ++f) {
    Front front;
    front.pivot_begin = front_starts[f];
    front.pivot_end = (f + 1 < front_starts.size()) ? front_starts[f + 1]
                                                    : n_elim;
    // Border = structure of the last pivot column (see the chain-subset
    // property of elimination trees: struct(j-1) \ {j} is contained in
    // struct(j) whenever parent(j-1) = j).
    front.border =
        std::move(structs[static_cast<std::size_t>(front.pivot_end - 1)]);
    sym.fronts.push_back(std::move(front));
    for (index_t v = sym.fronts.back().pivot_begin;
         v < sym.fronts.back().pivot_end; ++v)
      sym.front_of_var[static_cast<std::size_t>(v)] =
          static_cast<index_t>(sym.fronts.size() - 1);
  }
  structs.clear();
  structs.shrink_to_fit();

  // Terminal Schur front holding the never-eliminated trailing variables.
  if (opt.schur_size > 0) {
    Front schur;
    schur.pivot_begin = n_elim;
    schur.pivot_end = n;
    schur.is_schur = true;
    sym.schur_front = static_cast<index_t>(sym.fronts.size());
    sym.fronts.push_back(std::move(schur));
    for (index_t v = n_elim; v < n; ++v)
      sym.front_of_var[static_cast<std::size_t>(v)] = sym.schur_front;
  }

  // Assembly tree: a front's parent is the front owning its first border
  // row. A front whose border is empty is a root (its contribution block
  // is empty).
  for (std::size_t f = 0; f < sym.fronts.size(); ++f) {
    auto& front = sym.fronts[f];
    if (front.is_schur || front.border.empty()) {
      front.parent = -1;
      continue;
    }
    front.parent =
        sym.front_of_var[static_cast<std::size_t>(front.border.front())];
    assert(front.parent > static_cast<index_t>(f));
    sym.fronts[static_cast<std::size_t>(front.parent)].children.push_back(
        static_cast<index_t>(f));
  }

  sym.factor_entries = sym.estimate_factor_entries();
  for (const auto& f : sym.fronts)
    sym.peak_front_rows =
        std::max(sym.peak_front_rows, static_cast<offset_t>(f.n_rows()));
  return sym;
}

}  // namespace cs::sparsedirect
