#include "coupled/sweep.h"

#include <algorithm>
#include <utility>

#include "common/json.h"
#include "common/log.h"
#include "common/timer.h"
#include "common/trace.h"
#include "la/matrix.h"

namespace cs::coupled {

namespace {

/// One-column RHS block from the system's built-in right-hand side.
template <class T>
void fill_rhs(const fembem::CoupledSystem<T>& sys, la::Matrix<T>& Bv,
              la::Matrix<T>& Bs) {
  for (index_t i = 0; i < sys.nv(); ++i) Bv(i, 0) = sys.b_v[i];
  for (index_t i = 0; i < sys.ns(); ++i) Bs(i, 0) = sys.b_s[i];
}

}  // namespace

template <class T>
SweepStats SweepDriver<T>::run(const std::vector<double>& omegas) {
  SweepStats sw;
  sw.freqs.reserve(omegas.size());

  // The effective per-frequency config: recycling needs a convergence
  // target (a lagged solve must *demonstrate* convergence) and enough
  // refinement headroom for the lagged operator distance. Raising
  // refine_iterations is harmless for fresh solves — they early-exit on
  // refine_tolerance.
  Config cfg = options_.config;
  const bool lagged_enabled = options_.recycle &&
                              options_.lagged_refinement &&
                              cfg.refine_tolerance > 0;
  if (lagged_enabled)
    cfg.refine_iterations = std::max(
        cfg.refine_iterations, std::max(1, options_.lagged_refine_iterations));

  // The factors retained from the previous frequency, together with the
  // system they were factored from (the handle borrows it). Destruction
  // order on replacement: the old handle dies before the old system.
  FactoredCoupled<T> held;
  std::unique_ptr<fembem::CoupledSystem<T>> held_sys;

  Timer sweep_timer;
  for (double omega : omegas) {
    SweepFrequencyStats fs;
    fs.omega = omega;
    const Metrics::Values before = Metrics::instance().values();
    Timer freq_timer;

    auto sys = std::make_unique<fembem::CoupledSystem<T>>(family_.at(omega));
    la::Matrix<T> Bv(sys->nv(), 1), Bs(sys->ns(), 1);
    fill_rhs(*sys, Bv, Bs);

    bool solved = false;
    SolveStats ss;

    // Tier 3: frequency-lagged refinement on the retained factors.
    if (lagged_enabled && held.ok()) {
      ss = held.solve_lagged(*sys, Bv.view(), Bs.view());
      if (ss.success) {
        solved = true;
        fs.lagged = true;
        ++sw.lagged_solves;
      } else {
        fs.fallback_reason =
            ss.error.site.empty() ? "lagged_failed" : ss.error.site;
        // The failed attempt left a partial iterate in the views.
        fill_rhs(*sys, Bv, Bs);
      }
    } else if (options_.recycle && options_.lagged_refinement && held.ok()) {
      fs.fallback_reason = "no_tolerance";
    } else if (lagged_enabled) {
      fs.fallback_reason = "no_factors";
    } else {
      fs.fallback_reason = "disabled";
    }

    if (!solved) {
      // Tiers 1-2 live inside factorize_coupled via the SweepContext.
      FactoredCoupled<T> fresh = factorize_coupled(
          *sys, cfg, options_.recycle ? &context_ : nullptr);
      ++sw.factorizations;
      fs.refactorized = true;
      if (!fresh.ok()) {
        sw.failure = "factorization at omega=" + std::to_string(omega) +
                     " failed: " + fresh.stats().failure;
        fs.seconds = freq_timer.seconds();
        fs.counters = Metrics::instance().delta_since(before);
        sw.freqs.push_back(std::move(fs));
        break;
      }
      ss = fresh.solve(Bv.view(), Bs.view());
      if (!ss.success) {
        sw.failure = "solve at omega=" + std::to_string(omega) +
                     " failed: " + ss.failure;
        fs.seconds = freq_timer.seconds();
        fs.counters = Metrics::instance().delta_since(before);
        sw.freqs.push_back(std::move(fs));
        break;
      }
      // Retain for the next frequency; drop the previous handle before
      // the system it borrows.
      held = std::move(fresh);
      held_sys = std::move(sys);
    }

    // Error against the family's frequency-independent reference, judged
    // by whichever system object is still alive for this frequency.
    const fembem::CoupledSystem<T>& judge = sys ? *sys : *held_sys;
    la::Vector<T> xv(judge.nv()), xs(judge.ns());
    for (index_t i = 0; i < judge.nv(); ++i) xv[i] = Bv(i, 0);
    for (index_t i = 0; i < judge.ns(); ++i) xs[i] = Bs(i, 0);
    fs.relative_error = judge.relative_error(xv, xs);
    fs.refine_sweeps = ss.refine_sweeps;
    fs.seconds = freq_timer.seconds();
    fs.counters = Metrics::instance().delta_since(before);
    log_info("sweep omega=", omega, fs.lagged ? " lagged" : " refactorized",
             " err=", fs.relative_error, " in ", fs.seconds, "s");
    sw.freqs.push_back(std::move(fs));
  }

  sw.total_seconds = sweep_timer.seconds();
  sw.success = sw.failure.empty() && sw.freqs.size() == omegas.size();
  if (!sw.freqs.empty())
    sw.seconds_per_frequency =
        sw.total_seconds / static_cast<double>(sw.freqs.size());
  return sw;
}

std::string sweep_stats_json(const SweepStats& stats) {
  auto str = [](const std::string& s) {
    return "\"" + json::escape(s) + "\"";
  };
  std::string out = "{";
  out += "\"success\":" + std::string(stats.success ? "true" : "false");
  if (!stats.failure.empty()) out += ",\"failure\":" + str(stats.failure);
  out += ",\"factorizations\":" + std::to_string(stats.factorizations);
  out += ",\"lagged_solves\":" + std::to_string(stats.lagged_solves);
  out += ",\"total_seconds\":" + json::number(stats.total_seconds);
  out += ",\"seconds_per_frequency\":" +
         json::number(stats.seconds_per_frequency);
  out += ",\"freqs\":[";
  bool first = true;
  for (const SweepFrequencyStats& f : stats.freqs) {
    if (!first) out += ",";
    first = false;
    out += "{\"omega\":" + json::number(f.omega);
    out += ",\"refactorized\":" + std::string(f.refactorized ? "true"
                                                             : "false");
    out += ",\"lagged\":" + std::string(f.lagged ? "true" : "false");
    if (!f.fallback_reason.empty())
      out += ",\"fallback_reason\":" + str(f.fallback_reason);
    out += ",\"seconds\":" + json::number(f.seconds);
    out += ",\"relative_error\":" + json::number(f.relative_error);
    out += ",\"refine_sweeps\":" + std::to_string(f.refine_sweeps);
    out += ",\"counters\":{";
    bool first_c = true;
    for (const auto& [name, value] : f.counters) {
      if (!first_c) out += ",";
      first_c = false;
      out += str(name) + ":" + json::number(value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

template class SweepDriver<double>;
template class SweepDriver<complexd>;

}  // namespace cs::coupled
