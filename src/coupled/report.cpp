#include "coupled/report.h"

#include <cstdio>

#include "common/json.h"
#include "common/log.h"

namespace cs::coupled {

namespace {

// json::number, not %.17g: a NaN relative_error (failed run) or an inf
// schur_compression_ratio must come out as `null`, not bare `nan`/`inf`
// that jq and this repo's own parser reject.
std::string num(double v) { return json::number(v); }

std::string str(const std::string& s) { return "\"" + json::escape(s) + "\""; }

std::string times_json(const PhaseTimes& times) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, seconds] : times.all()) {
    if (!first) out += ",";
    first = false;
    out += str(name) + ":" + num(seconds);
  }
  return out + "}";
}

}  // namespace

std::string stats_json(const SolveStats& stats) {
  std::string out = "{";
  out += "\"success\":" + std::string(stats.success ? "true" : "false");
  if (!stats.failure.empty()) out += ",\"failure\":" + str(stats.failure);
  if (stats.error.code != ErrorCode::kNone) {
    out += ",\"error\":{\"code\":" +
           str(error_code_name(stats.error.code)) +
           ",\"site\":" + str(stats.error.site) +
           ",\"detail\":" + str(stats.error.detail) + "}";
  }
  out += ",\"attempts\":" + std::to_string(stats.attempts);
  if (!stats.recoveries.empty()) {
    out += ",\"recoveries\":[";
    bool first_rec = true;
    for (const RecoveryAction& r : stats.recoveries) {
      if (!first_rec) out += ",";
      first_rec = false;
      out += "{\"action\":" + str(r.action) + ",\"error\":" + str(r.error) +
             ",\"detail\":" + str(r.detail) + "}";
    }
    out += "]";
  }
  out += ",\"n_total\":" + std::to_string(stats.n_total);
  out += ",\"n_fem\":" + std::to_string(stats.n_fem);
  out += ",\"n_bem\":" + std::to_string(stats.n_bem);
  out += ",\"total_seconds\":" + num(stats.total_seconds);
  out += ",\"phases\":" + times_json(stats.phases);
  out += ",\"stages\":" + times_json(stats.stages);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : stats.counters) {
    if (!first) out += ",";
    first = false;
    out += str(name) + ":" + num(value);
  }
  out += "}";
  out += ",\"peak_bytes\":" + std::to_string(stats.peak_bytes);
  out += ",\"peak_by_tag\":{";
  first = true;
  for (const auto& [tag, bytes] : stats.peak_by_tag) {
    if (!first) out += ",";
    first = false;
    out += str(tag) + ":" + std::to_string(bytes);
  }
  out += "}";
  out += ",\"planner_predicted_bytes\":" +
         std::to_string(stats.planner_predicted_bytes);
  out += ",\"planner_misprediction\":" + num(stats.planner_misprediction);
  out += ",\"schur_bytes\":" + std::to_string(stats.schur_bytes);
  out += ",\"sparse_factor_bytes\":" +
         std::to_string(stats.sparse_factor_bytes);
  out += ",\"factor_bytes\":" + std::to_string(stats.factor_bytes);
  out += ",\"factor_precision\":" +
         str(precision_name(stats.factor_precision));
  out += ",\"schur_compression_ratio\":" +
         num(stats.schur_compression_ratio);
  out += ",\"relative_error\":" + num(stats.relative_error);
  if (!stats.checkpoint_source.empty()) {
    out += ",\"checkpoint_source\":" + str(stats.checkpoint_source);
    out += ",\"checkpoint_bytes\":" + std::to_string(stats.checkpoint_bytes);
  }
  if (stats.randomized_rank > 0)
    out += ",\"randomized_rank\":" + std::to_string(stats.randomized_rank);
  out += ",\"nrhs\":" + std::to_string(stats.nrhs);
  out += ",\"refine_sweeps\":" + std::to_string(stats.refine_sweeps);
  if (!stats.refine_residuals.empty()) {
    out += ",\"refine_residuals\":[";
    bool first_res = true;
    for (double r : stats.refine_residuals) {
      if (!first_res) out += ",";
      first_res = false;
      out += num(r);
    }
    out += "]";
  }
  return out + "}";
}

std::string config_json(const Config& config) {
  std::string out = "{";
  out += "\"strategy\":" + str(strategy_name(config.strategy));
  out += ",\"n_c\":" + std::to_string(config.n_c);
  out += ",\"n_S\":" + std::to_string(config.n_S);
  out += ",\"n_b\":" + std::to_string(config.n_b);
  out += ",\"eps\":" + num(config.eps);
  out += ",\"eta\":" + num(config.eta);
  out += ",\"sparse_compression\":" +
         std::string(config.sparse_compression ? "true" : "false");
  out += ",\"memory_budget\":" + std::to_string(config.memory_budget);
  out += ",\"num_threads\":" + std::to_string(config.num_threads);
  out += ",\"parallel_fronts\":" +
         std::string(config.parallel_fronts ? "true" : "false");
  out += ",\"refine_iterations\":" +
         std::to_string(config.refine_iterations);
  out += ",\"refine_tolerance\":" + num(config.refine_tolerance);
  out += ",\"factor_precision\":" +
         str(precision_name(config.factor_precision));
  out += ",\"auto_recover\":" +
         std::string(config.auto_recover ? "true" : "false");
  out += ",\"max_recovery_attempts\":" +
         std::to_string(config.max_recovery_attempts);
  out += ",\"out_of_core\":" +
         std::string(config.out_of_core ? "true" : "false");
  if (!config.failpoints.empty())
    out += ",\"failpoints\":" + str(config.failpoints);
  return out + "}";
}

void RunReport::add(const std::string& label, const std::string& config_desc,
                    const Config& config, const SolveStats& stats) {
  entries_.push_back(Entry{label, config_desc, coupled::config_json(config),
                           coupled::stats_json(stats)});
}

std::string RunReport::json() const {
  std::string out = "{\"binary\":" + str(binary_) + ",\"runs\":[\n";
  bool first = true;
  for (const Entry& e : entries_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"label\":" + str(e.label) +
           ",\"config_desc\":" + str(e.config_desc) +
           ",\"config\":" + e.config_json + ",\"stats\":" + e.stats_json +
           "}";
  }
  out += "\n]}\n";
  return out;
}

bool RunReport::write(const std::string& path) const {
  const std::string text = json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    log_warn("report: cannot open ", path, " for writing");
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) log_warn("report: short write to ", path);
  return ok;
}

}  // namespace cs::coupled
