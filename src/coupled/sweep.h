// Frequency-sweep engine with factorization recycling. Solves a shifted
// family A(omega_1..omega_k) built over ONE scene (fembem::SweepFamily) and
// amortizes everything that is legal to share between neighboring
// frequencies, in escalating tiers (DESIGN.md §15):
//
//  tier 1 — structure: the interior symbolic analysis (ordering,
//    elimination tree, supernode partition) and the geometric cluster tree
//    / H-matrix block skeleton depend only on the sparsity pattern and the
//    point geometry, both frequency-independent in a shifted family. They
//    are computed at the first frequency and replayed afterwards.
//  tier 2 — ranks: every ACA/recompression call is seeded with the
//    converged rank of the same block at the previous frequency
//    (capacity + capped-run hints; bitwise-identical results, see
//    hmat::BlockSkeleton).
//  tier 3 — factors: before re-factorizing at omega_{k+1}, the retained
//    FactoredCoupled of omega_k is tried as a preconditioner inside the
//    iterative-refinement loop (frequency-lagged refinement,
//    FactoredCoupled::solve_lagged). Only when that stalls does the sweep
//    fall through to a fresh factorization.
//
// All reuse is keyed and validated: a mismatch (changed pattern, changed
// options, a degrade-and-retry that reshapes the problem) silently falls
// back to the cold path, never to a wrong answer.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "coupled/coupled.h"
#include "fembem/shifted.h"
#include "hmat/cluster.h"
#include "hmat/hmatrix.h"
#include "sparsedirect/multifrontal.h"

namespace cs::coupled {

/// Cross-frequency reuse state, threaded through factorize_coupled by the
/// SweepDriver (or any caller solving a shifted family by hand). One
/// context serves one family; handing it matrices of a different pattern
/// is safe (validation falls back to cold analysis) but pointless.
///
/// Thread-safety: the maps are mutex-guarded so the block-parallel
/// multi-factorization strategy can store/find per-block analyses from
/// concurrent factorization jobs. Returned pointers/references stay valid
/// for the life of the context (std::map nodes are stable).
class SweepContext {
 public:
  SweepContext() = default;
  SweepContext(const SweepContext&) = delete;
  SweepContext& operator=(const SweepContext&) = delete;

  /// The shared geometric cluster tree. Reused when `points`/`leaf` match
  /// what the stored tree was built from (size, leaf and bitwise first/
  /// last coordinates — the family guarantees the geometry is literally
  /// the same object every frequency); rebuilt and cached otherwise.
  std::shared_ptr<const hmat::ClusterTree> acquire_tree(
      const std::vector<hmat::Point3>& points, index_t leaf) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool match =
        tree_ && tree_leaf_ == leaf && tree_points_ == points.size() &&
        (points.empty() ||
         (same_point(tree_first_, points.front()) &&
          same_point(tree_last_, points.back())));
    if (!match) {
      tree_ = std::make_shared<const hmat::ClusterTree>(points, leaf);
      tree_leaf_ = leaf;
      tree_points_ = points.size();
      if (!points.empty()) {
        tree_first_ = points.front();
        tree_last_ = points.back();
      }
    }
    return tree_;
  }

  /// Stored interior symbolic analysis for reuse key `key` ("vv", "K",
  /// "W:<bi>:<bj>"), or nullptr the first time around. The pointer stays
  /// valid until the context dies.
  const sparsedirect::SparseAnalysis* find_analysis(
      const std::string& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = analyses_.find(key);
    return it == analyses_.end() ? nullptr : &it->second;
  }

  void store_analysis(const std::string& key,
                      sparsedirect::SparseAnalysis&& analysis) {
    std::lock_guard<std::mutex> lock(mutex_);
    analyses_[key] = std::move(analysis);
  }

  /// H-matrix block skeleton (structure + per-leaf rank hints) for reuse
  /// key `key`, created empty on first use. The reference stays valid for
  /// the life of the context; the warm-assembly path mutates it serially
  /// (one Schur assembly per factorization attempt).
  hmat::BlockSkeleton& skeleton(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    return skeletons_[key];
  }

  /// Number of cached analyses/skeletons (tests; observability).
  std::size_t analyses_cached() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return analyses_.size();
  }
  std::size_t skeletons_cached() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return skeletons_.size();
  }

 private:
  static bool same_point(const hmat::Point3& a, const hmat::Point3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }

  mutable std::mutex mutex_;
  std::shared_ptr<const hmat::ClusterTree> tree_;
  index_t tree_leaf_ = -1;
  std::size_t tree_points_ = 0;
  hmat::Point3 tree_first_{}, tree_last_{};
  std::map<std::string, sparsedirect::SparseAnalysis> analyses_;
  std::map<std::string, hmat::BlockSkeleton> skeletons_;
};

/// Sweep policy. `config` shapes every factorization of the sweep exactly
/// as it shapes a single solve_coupled call (strategy, compression,
/// refinement, resilience...).
struct SweepOptions {
  Config config;

  /// Master switch for all three recycling tiers. Off = the naive sweep:
  /// every frequency is an independent factorize + solve (the baseline
  /// the bench driver compares against).
  bool recycle = true;

  /// Tier 3 switch: try the previous frequency's factors as a
  /// preconditioner (frequency-lagged refinement) before refactorizing.
  /// Only meaningful when recycle is on, and requires
  /// config.refine_tolerance > 0 (a lagged solve must demonstrate
  /// convergence to count).
  bool lagged_refinement = true;

  /// Refinement-sweep budget floor while recycling: the lagged operator
  /// differs from the target by O(|omega^2 - omega'^2|) * M, so it
  /// contracts slowly and needs far more sweeps than refinement on fresh
  /// factors — and a sweep costs ~10x less than a refactorization, so a
  /// generous budget is cheap insurance. The driver raises
  /// config.refine_iterations to at least this value — harmless for fresh
  /// solves, which early-exit on refine_tolerance.
  int lagged_refine_iterations = 24;
};

/// Per-frequency outcome of a sweep.
struct SweepFrequencyStats {
  double omega = 0;
  bool refactorized = false;  ///< a fresh factorization ran here
  bool lagged = false;        ///< served by frequency-lagged refinement
  /// Why lagged refinement was not used / did not stick at this frequency
  /// ("" when lagged succeeded or was not attempted): "disabled",
  /// "no_factors", or the error site of the stalled attempt
  /// (e.g. "refine.stall").
  std::string fallback_reason;
  double seconds = 0;          ///< wall clock of this frequency
  double relative_error = -1;  ///< vs the family's manufactured reference
  int refine_sweeps = 0;
  /// Per-frequency Metrics delta (aca.iterations, rank-hint hits/misses,
  /// analysis/structure reuses...).
  std::map<std::string, double> counters;
};

/// Whole-sweep outcome.
struct SweepStats {
  bool success = false;
  std::string failure;       ///< first hard failure ("" on success)
  int factorizations = 0;    ///< fresh factorizations performed
  int lagged_solves = 0;     ///< frequencies served by lagged refinement
  double total_seconds = 0;
  double seconds_per_frequency = 0;
  std::vector<SweepFrequencyStats> freqs;
};

/// SweepStats as a JSON object (per-frequency rows + counters included);
/// the element shape the cs-report sweep section and the CI recycling
/// guard read.
std::string sweep_stats_json(const SweepStats& stats);

/// Drives one sweep over `family` at the given frequencies. Holds the
/// most recent factorization (and the system it refines against) between
/// frequencies; owns the SweepContext for the structural tiers.
template <class T>
class SweepDriver {
 public:
  explicit SweepDriver(const fembem::SweepFamily<T>& family,
                       const SweepOptions& options)
      : family_(family), options_(options) {}

  /// Solve the family at each frequency in order. Never throws: hard
  /// failures (a fresh factorization failing even after the resilient
  /// retry ladder) end the sweep with stats.success = false.
  SweepStats run(const std::vector<double>& omegas);

  /// The reuse context (tests; inspection after run()).
  SweepContext& context() { return context_; }

 private:
  const fembem::SweepFamily<T>& family_;
  SweepOptions options_;
  SweepContext context_;
};

}  // namespace cs::coupled
