// Machine-readable run reports: SolveStats -> JSON.
//
// Every bench driver accepts --report=out.json and funnels its runs through
// a RunReport, so the numbers behind each printed table (per-phase and
// per-stage seconds, tracked peak/Schur bytes, compression ratios, counter
// summaries) are available to plotting/trend tooling without scraping
// stdout. The schema is one top-level object:
//
//   { "binary": "...", "runs": [ { "label": ..., "config": {...},
//                                  "stats": {...} }, ... ] }
#pragma once

#include <string>
#include <vector>

#include "coupled/coupled.h"

namespace cs::coupled {

/// One SolveStats as a JSON object (phases, stages and counters included).
std::string stats_json(const SolveStats& stats);

/// The solver-relevant Config fields as a JSON object.
std::string config_json(const Config& config);

/// Accumulates labelled runs and writes the report file.
class RunReport {
 public:
  explicit RunReport(std::string binary_name)
      : binary_(std::move(binary_name)) {}

  void add(const std::string& label, const std::string& config_desc,
           const Config& config, const SolveStats& stats);

  std::size_t size() const { return entries_.size(); }

  std::string json() const;

  /// Write json() to `path`; false (with a log_warn) on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Entry {
    std::string label;
    std::string config_desc;
    std::string config_json;
    std::string stats_json;
  };

  std::string binary_;
  std::vector<Entry> entries_;
};

}  // namespace cs::coupled
