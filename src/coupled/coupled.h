// The paper's contribution: direct solution strategies for coupled
// sparse/dense FEM/BEM systems composed from unmodified sparse and dense
// direct solvers.
//
//  * kBaselineCoupling   (paper section II-E): factor A_vv, one huge sparse
//    solve A_vv^{-1} A_sv^T retrieved dense, SpMM, dense Schur S.
//  * kAdvancedCoupling   (paper section II-F): one sparse
//    factorization+Schur call on [[A_vv, A_sv^T],[A_sv, 0]]; the Schur
//    complement still comes back as one non-compressed dense matrix.
//  * kMultiSolve         (Algorithm 1): the sparse solve is blocked into
//    panels of n_c columns; S is accumulated panel by panel (dense S,
//    MUMPS/SPIDO-style coupling).
//  * kMultiSolveCompressed (Algorithm 2): same blocking, but A_ss is
//    assembled directly compressed (ACA) into an H-matrix and each dense
//    panel Z_i is folded in with a compressed AXPY; a separate panel width
//    n_S amortizes recompression (MUMPS/HMAT-style coupling).
//  * kMultiFactorization (Algorithm 3): S computed in n_b x n_b square
//    blocks, each via a sparse factorization+Schur call on the unsymmetric
//    W = [[A_vv, A_sv(j)^T],[A_sv(i), 0]] - re-factorizing A_vv every call
//    (the API limitation the paper works around).
//  * kMultiFactorizationCompressed: ditto with the compressed AXPY into an
//    H-matrix S.
//
// All strategies share the same finishing sequence (paper eq. (7)) and
// report phase times, tracked peak memory and the relative error against
// the manufactured solution, which is exactly the data behind the paper's
// figures 10-13 and Table II.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/fs.h"
#include "common/memory.h"
#include "common/timer.h"
#include "fembem/system.h"
#include "la/matrix.h"
#include "ordering/ordering.h"

namespace cs::coupled {

enum class Strategy {
  kBaselineCoupling,
  kAdvancedCoupling,
  kMultiSolve,
  kMultiSolveCompressed,
  kMultiFactorization,
  kMultiFactorizationCompressed,
  /// Extension (the paper's future-work item): the Schur correction
  /// A_sv A_vv^{-1} A_sv^T is produced *directly in compressed form* by a
  /// two-pass randomized range finder with adaptive rank, instead of
  /// streaming dense blocks out of the sparse solver. Pays off when the
  /// coupling operator has fast-decaying global spectrum.
  kMultiSolveRandomized,
};

const char* strategy_name(Strategy s);

/// Working precision of the *stored factors* (interior multifrontal
/// factors, dense/H-matrix Schur factorization). kSingle halves every
/// factor byte — roughly 2x memory headroom and effective bandwidth —
/// while operators, right-hand sides, residuals and iterative refinement
/// stay in the input precision, which recovers full accuracy for
/// reasonably conditioned systems (cond(A) * eps_single < 1).
enum class Precision {
  kDouble,
  kSingle,
};

const char* precision_name(Precision p);

struct Config {
  Strategy strategy = Strategy::kMultiSolveCompressed;

  // Blocking parameters (paper notation).
  index_t n_c = 256;   ///< sparse-solve RHS panel width (multi-solve)
  index_t n_S = 1024;  ///< Schur panel width (compressed multi-solve)
  index_t n_b = 2;     ///< Schur blocks per dimension (multi-factorization)

  // Compression.
  bool sparse_compression = true;  ///< BLR in the sparse solver
  double eps = 1e-3;               ///< low-rank accuracy (sparse and dense)
  double eta = 2.0;                ///< H-matrix admissibility
  index_t hmat_leaf = 64;          ///< H-matrix cluster leaf size

  /// Virtual memory budget in bytes (0 = unlimited). Exceeding it makes
  /// the run fail like the paper's out-of-memory runs.
  std::size_t memory_budget = 0;

  ordering::Method ordering = ordering::Method::kNestedDissection;

  /// Iterative refinement sweeps on the coupled system after the direct
  /// solve (recovers accuracy lost to aggressive compression; 0 = off).
  int refine_iterations = 0;

  /// Early-exit threshold for iterative refinement: stop sweeping once
  /// every column's relative coupled residual is <= this value (0 = run
  /// all refine_iterations sweeps, the historical behavior). The
  /// mixed-precision stall detector also treats this as the accuracy the
  /// refinement must keep making progress towards.
  double refine_tolerance = 0.0;

  /// Working precision of the stored factors. kSingle requires
  /// refine_iterations >= 1 (validate_config enforces this): without the
  /// double-precision refinement sweeps the solve would silently return
  /// ~1e-6-accurate answers. A refinement stall under single-precision
  /// factors is a recoverable numerical breakdown: the degrade-and-retry
  /// driver re-factorizes in double ("precision_escalate").
  Precision factor_precision = Precision::kDouble;

  /// Worker threads for the task-parallel execution layer (H-matrix leaf
  /// loops, H-LU tasks, the Schur pipeline, block-parallel
  /// multi-factorization and the multifrontal tree walk). 0 = hardware
  /// default (omp_get_max_threads()). Results are identical to a serial
  /// run for every value.
  int num_threads = 0;

  /// Task-parallel multifrontal tree walk in the sparse solver (results
  /// identical to the serial walk).
  bool parallel_fronts = true;

  /// Factor the compressed Schur H-matrix with the symmetric H-LDL^T
  /// (the paper's HMAT mode) instead of H-LU when the system is
  /// symmetric. Default off: H-LU covers both cases with one code path.
  bool hmat_symmetric_ldlt = false;

  /// kMultiSolveRandomized: initial sample size and hard cap (fraction of
  /// n_BEM) of the adaptive randomized range finder.
  index_t rand_initial_rank = 64;
  double rand_max_rank_ratio = 0.5;

  // -- observability (see common/trace.h) ----------------------------------

  /// Record a task-level trace of this solve (spans, counters, memory
  /// timeline). When the process-wide Tracer is already enabled (e.g. a
  /// bench driver tracing all its runs into one file) this flag is
  /// redundant: the solve is traced either way and trace_path is ignored
  /// in favor of the driver's export.
  bool trace_enabled = false;

  /// When trace_enabled turned tracing on for this solve, export the
  /// Chrome-trace JSON here at the end (empty = caller exports manually).
  std::string trace_path;

  /// Period of the background sampler recording memory.current /
  /// memory.peak and the in-flight panel/job gauges as counter tracks.
  /// <= 0 disables the sampler. Only active while tracing is enabled.
  int trace_sample_us = 1000;

  // -- resilience (see DESIGN.md §9) ---------------------------------------

  /// Degrade-and-retry: when a solve attempt fails with a recoverable
  /// error, apply a recovery action (halve n_c/n_S, double n_b, enable
  /// out-of-core factors, fall back from LDL^T to LU, disable OOC after
  /// I/O failures) and retry, up to max_recovery_attempts extra attempts.
  /// Every action taken is recorded in SolveStats::recoveries. Off: the
  /// first failure is final (the paper's feasibility-probe behavior).
  bool auto_recover = true;
  int max_recovery_attempts = 8;

  /// Start with out-of-core sparse factors (border panels spilled to
  /// ooc_dir; see sparsedirect::SolverOptions). auto_recover may also
  /// enable this mid-run as a budget-recovery action.
  bool out_of_core = false;
  /// Spill directory ($TMPDIR when set, else /tmp). validate_config
  /// rejects a missing or unwritable directory up front — a daemon must
  /// fail at startup, not minutes into a request at first spill.
  std::string ooc_dir = default_tmp_dir();

  /// Failpoint spec armed for the duration of the solve, e.g.
  /// "ooc.write=hit:2,aca.converge=once" (see common/failpoint.h; the
  /// CS_FAILPOINTS environment variable is honored in addition).
  std::string failpoints;
};

/// Returns "" when `config` is usable, else a description of the first
/// invalid field. solve_coupled runs this up front and reports a
/// structured kInternal error instead of hitting undefined behavior.
std::string validate_config(const Config& config);

/// One degrade-and-retry action taken by the resilient driver.
struct RecoveryAction {
  std::string action;  ///< "halve_panels", "enable_ooc", "hldlt_to_hlu"...
  std::string error;   ///< error code name that triggered it
  std::string detail;  ///< site + message of the failure recovered from
};

struct SolveStats {
  bool success = false;
  std::string failure;  ///< human-readable failure description ("" on
                        ///< success, even after recoveries)

  /// Structured failure classification (code == kNone on success). After
  /// a successful recovery the error of the failed attempt is cleared;
  /// the recovery trail below keeps what happened.
  SolveError error;
  /// Degrade-and-retry actions taken, in order (empty when the first
  /// attempt succeeded).
  std::vector<RecoveryAction> recoveries;
  /// Solve attempts run (1 = no retry). Phase/stage times accumulate
  /// across attempts: they report the work actually done.
  int attempts = 1;

  double total_seconds = 0;
  PhaseTimes phases;  ///< sparse_factorization / schur / dense_factorization
                      ///< / solution
  /// Finer, dotted per-stage breakdown inside the phases (e.g.
  /// schur.panel_solve, schur.spmm, schur.axpy, schur.stall_producer,
  /// multifacto.factor, solution.refine). Stages of one phase may overlap
  /// in a pipelined run, so their sum can exceed the phase time.
  PhaseTimes stages;
  /// Run counter summary (common/trace.h Metrics): admission decisions,
  /// pipeline stall seconds, recompression counts and max achieved rank...
  std::map<std::string, double> counters;

  std::size_t peak_bytes = 0;          ///< tracked peak over the whole run
  std::size_t schur_bytes = 0;         ///< storage of S (dense or H)
  std::size_t sparse_factor_bytes = 0;
  /// Total factor storage (sparse factors + Schur factorization) in the
  /// effective factor precision; single-precision factors show up as
  /// roughly half the double-precision figure.
  std::size_t factor_bytes = 0;

  /// Per-tag attribution of peak_bytes: the ledger snapshot captured when
  /// the global high-water mark last advanced, as (tag name, bytes) pairs
  /// for the non-zero tags. Entries other than the budget-exempt
  /// "pack.scratch" sum to peak_bytes within slack (the capture races
  /// concurrent allocators by design).
  std::vector<std::pair<std::string, std::size_t>> peak_by_tag;
  /// Planner audit: planner::predict_peak evaluated with the *effective*
  /// (post-recovery) config, and its ratio against the measured peak
  /// (predicted / measured; 0 when either side is unknown). Validates the
  /// planner's empirical constants on every instrumented run.
  std::size_t planner_predicted_bytes = 0;
  double planner_misprediction = 0;
  double schur_compression_ratio = 1.0;  ///< stored / dense for S

  /// Effective working precision of the stored factors after any
  /// precision_escalate recovery (may differ from the requested
  /// Config::factor_precision).
  Precision factor_precision = Precision::kDouble;

  double relative_error = -1.0;
  index_t n_total = 0, n_fem = 0, n_bem = 0;

  /// kMultiSolveRandomized: rank found by the adaptive range finder.
  index_t randomized_rank = 0;

  /// Right-hand-side columns this solve handled (0 for a factorize-only
  /// run; solve_coupled reports 1).
  index_t nrhs = 0;
  /// Per-column relative residual of the coupled system after the last
  /// iterative-refinement sweep (empty when refine_iterations == 0).
  std::vector<double> refine_residuals;
  /// Refinement sweeps that actually applied a correction in the
  /// successful solve (early exit on refine_tolerance may make this
  /// smaller than refine_iterations).
  int refine_sweeps = 0;

  /// Checkpoint provenance of this handle: "" for a fresh factorization,
  /// "checkpoint" when restored by load_factored, "refactorized" when a
  /// checkpoint load failed and the checkpoint_fallback rung refactorized
  /// from the live system.
  std::string checkpoint_source;
  /// On-disk size of the checkpoint this handle was restored from (0 when
  /// checkpoint_source != "checkpoint").
  std::size_t checkpoint_bytes = 0;
};

namespace detail {
template <class T>
struct FactoredImpl;
}  // namespace detail

/// Recyclable state shared by the solves of one frequency sweep (owned by
/// sweep::SweepDriver, threaded through factorize_coupled). Defined in
/// sweep.h; factorize_coupled treats a null pointer as "no sweep".
class SweepContext;

/// Persistent factorization of a coupled system: the interior multifrontal
/// factors, the (dense or H-) Schur factorization, the BEM cluster
/// permutation and the tree-ordered coupling block, kept alive so one
/// factorization can serve many right-hand sides (the paper's industrial
/// usage: one factorization per frequency, hundreds of excitations).
///
/// Lifetime: the handle borrows the CoupledSystem passed to
/// factorize_coupled (refinement re-applies the original operator), so the
/// system must outlive the handle. Obtain one with factorize_coupled; a
/// default-constructed handle is empty (ok() == false).
///
/// Thread safety: solve() is const and touches only immutable factorization
/// state (the out-of-core panel store serializes its file access
/// internally), so independent batches may call solve() concurrently from
/// multiple threads against one handle. Each call solves in the calling
/// thread's context: it installs no memory budget and no thread count of
/// its own, and — unlike solve_coupled — never retries; a failure is
/// classified into the returned SolveStats and the RHS block is left
/// unspecified.
template <class T>
class FactoredCoupled {
 public:
  FactoredCoupled();
  ~FactoredCoupled();
  FactoredCoupled(FactoredCoupled&&) noexcept;
  FactoredCoupled& operator=(FactoredCoupled&&) noexcept;
  FactoredCoupled(const FactoredCoupled&) = delete;
  FactoredCoupled& operator=(const FactoredCoupled&) = delete;

  /// True when the handle holds a usable factorization.
  bool ok() const;
  /// Stats of the factorization run (attempts, recoveries, phase times,
  /// memory; nrhs == 0 since no RHS was solved). Meaningful even when
  /// ok() is false: it carries the classified factorization error.
  const SolveStats& stats() const;
  /// Effective configuration after degrade-and-retry (panel sizes, OOC,
  /// LDL^T fallbacks may differ from the requested Config).
  const Config& config() const;

  index_t nv() const;  ///< interior (FEM) unknowns
  index_t ns() const;  ///< boundary (BEM) unknowns

  /// Solve the factored system for a block of right-hand sides, in place:
  /// on entry B_v (nv x nrhs) / B_s (ns x nrhs) hold the RHS columns, on
  /// success they hold the solution. Both views must have the same number
  /// of columns. Per-column results are bitwise identical to nrhs
  /// independent single-column solves at any thread count. Never throws.
  SolveStats solve(la::MatrixView<T> B_v, la::MatrixView<T> B_s) const;

  /// Frequency-lagged solve: use this handle's factors — computed for a
  /// *neighboring* operator of the same family — as the direct
  /// preconditioner, and iteratively refine against `target` (residuals
  /// are formed with the target operator, corrections solved with the
  /// retained factors). Converges when the spectral distance between the
  /// two operators is small, letting a sweep skip a fresh factorization;
  /// when refinement stalls or misses config().refine_tolerance within
  /// config().refine_iterations sweeps, the returned stats carry a
  /// kNumericalBreakdown at site "refine.stall" and the caller should
  /// factorize the target afresh. `target` must have the same dimensions
  /// as the factored system. Never throws.
  SolveStats solve_lagged(const fembem::CoupledSystem<T>& target,
                          la::MatrixView<T> B_v, la::MatrixView<T> B_s) const;

  /// Serialize the factored state to a crash-consistent checkpoint file
  /// (CRC32C-checksummed sections, manifest footer fsynced last as the
  /// commit record; see DESIGN.md §14). Returns the bytes written, or 0 on
  /// failure with the classified error in *error (when non-null). Never
  /// throws. A failed save may leave a torn file at `path`; load_factored
  /// detects and rejects it.
  std::size_t save(const std::string& path, SolveError* error = nullptr)
      const;

 private:
  template <class U>
  friend FactoredCoupled<U> factorize_coupled(
      const fembem::CoupledSystem<U>& system, const Config& config,
      SweepContext* sweep);
  template <class U>
  friend FactoredCoupled<U> load_factored(
      const std::string& path, const fembem::CoupledSystem<U>& system,
      const Config& config);

  std::unique_ptr<detail::FactoredImpl<T>> impl_;
};

/// Factorization phase of solve_coupled: runs the selected strategy's
/// analysis + factorization (including the degrade-and-retry driver,
/// tracing, metrics and memory accounting) and returns a persistent handle
/// instead of solving a built-in RHS. On failure the returned handle has
/// ok() == false and stats() carries the classified error. The system must
/// outlive the handle.
///
/// `sweep` (optional) is the recycling context of a frequency sweep: when
/// given, the symbolic sparse analysis, the BEM cluster tree and the
/// H-matrix block skeleton (with converged-rank warm starts) are reused
/// from — and recorded for — the other frequencies of the family. The
/// context must outlive every handle factored with it (it owns the shared
/// cluster tree). Reuse is keyed and validated, so a mismatching system
/// silently degrades to a cold factorization.
template <class T>
FactoredCoupled<T> factorize_coupled(const fembem::CoupledSystem<T>& system,
                                     const Config& config,
                                     SweepContext* sweep = nullptr);

/// Restore a FactoredCoupled handle from a checkpoint written by
/// FactoredCoupled::save. The format version, scalar type, system
/// fingerprint (dimensions, sparsity, matrix values, BEM geometry) and
/// every section's CRC32C are verified before any byte is trusted; the
/// restored handle's solve() is bitwise identical to the originating
/// handle's. `system` must be the same coupled system the checkpoint was
/// created from (it is borrowed, exactly as by factorize_coupled) and
/// `config` supplies the runtime-only settings (threads, budget, tracing,
/// failpoints, ooc_dir, recovery policy); the factorization-shaping fields
/// come from the checkpoint. Never throws. On a missing/torn/corrupt/
/// mismatched checkpoint: with config.auto_recover the checkpoint_fallback
/// recovery rung refactorizes from the live system (recorded in
/// SolveStats::recoveries, metrics and trace); without it the returned
/// handle has ok() == false and stats() carries the classified error.
template <class T>
FactoredCoupled<T> load_factored(const std::string& path,
                                 const fembem::CoupledSystem<T>& system,
                                 const Config& config);

/// Run one strategy on a coupled system. Never throws: every failure
/// (budget, singularity, numerical breakdown, OOC I/O, invalid config) is
/// classified into SolveStats::error, and — with Config::auto_recover —
/// recoverable failures trigger a bounded degrade-and-retry loop whose
/// actions are recorded in SolveStats::recoveries. Tracked memory returns
/// to its pre-call level on every failure path.
///
/// Equivalent to factorize_coupled + one FactoredCoupled::solve on the
/// system's built-in RHS (b_v, b_s); use those directly to amortize one
/// factorization across many right-hand sides.
template <class T>
SolveStats solve_coupled(const fembem::CoupledSystem<T>& system,
                         const Config& config);

}  // namespace cs::coupled
