// Memory-aware strategy planning.
//
// The paper's conclusion is that the best coupled algorithm "strongly
// depends on the number of unknowns and the amount of memory available":
// multi-factorization wins in time when its blocks fit, multi-solve
// (compressed) wins in reachable problem size. The Planner turns that
// observation into an API: from one *symbolic-only* sparse analysis (no
// numeric factorization) it predicts the peak tracked footprint of every
// strategy, filters by the available budget and ranks the feasible ones by
// an expected-time score.
//
// The predictions are first-order models over the dominant allocations
// (panels, Schur storage, factors with duplication/compression constants);
// they are validated against measured peaks in tests/planner_test.cpp.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "coupled/coupled.h"
#include "sparsedirect/multifrontal.h"

namespace cs::coupled {

struct PlanEntry {
  Strategy strategy;
  std::size_t predicted_peak_bytes = 0;
  double time_score = 0;  ///< relative cost estimate (lower = faster)
  bool fits = false;
};

struct PlannerInputs {
  index_t nv = 0;
  index_t ns = 0;
  offset_t factor_entries = 0;  ///< symbolic dense-factor entry count
  std::size_t system_bytes = 0;  ///< storage of the input blocks
  std::size_t scalar_bytes = sizeof(double);
};

/// Gather the planner inputs from a system (runs one symbolic analysis).
template <class T>
PlannerInputs planner_inputs(const fembem::CoupledSystem<T>& sys,
                             const Config& cfg) {
  PlannerInputs in;
  in.nv = sys.nv();
  in.ns = sys.ns();
  in.scalar_bytes = sizeof(T);
  sparsedirect::MultifrontalSolver<T> mf;
  sparsedirect::SolverOptions so;
  so.ordering = cfg.ordering;
  mf.analyze_only(sys.A_vv, so);
  in.factor_entries = mf.stats().factor_entries_dense;
  in.system_bytes = sys.A_vv.size_bytes() + sys.A_sv.size_bytes();
  return in;
}

/// Predict the peak tracked bytes of one strategy. Empirical constants:
/// BLR keeps ~70% of the factor entries at eps=1e-3 on 3D meshes; an
/// H-compressed Schur keeps ~25-40% of the dense block at this scale; the
/// multifrontal transient (fronts + contribution stack) adds ~60% of the
/// factor size; LU (multi-factorization) duplicates factor storage.
inline std::size_t predict_peak(Strategy s, const PlannerInputs& in,
                                const Config& cfg) {
  const double b = static_cast<double>(in.scalar_bytes);
  const double nv = in.nv, ns = in.ns;
  const double f = static_cast<double>(in.factor_entries) * b;
  const double f_work = 1.6 * f;  // factors + multifrontal transient
  const double f_blr = cfg.sparse_compression ? 0.8 * f_work : f_work;
  const double S_dense = ns * ns * b;
  const double S_h = 0.35 * S_dense;  // H-matrix Schur at eps ~ 1e-3
  const double base = static_cast<double>(in.system_bytes) +
                      2.5 * (nv + ns) * b;  // vectors/permutations

  double peak = 0;
  switch (s) {
    case Strategy::kBaselineCoupling:
      peak = base + f_blr + nv * ns * b + S_dense;
      break;
    case Strategy::kAdvancedCoupling:
      // Internal root front + user Schur array (the API's 2x cost).
      peak = base + f_blr + 2.0 * S_dense;
      break;
    case Strategy::kMultiSolve:
      peak = base + f_blr + S_dense + nv * cfg.n_c * b;
      break;
    case Strategy::kMultiSolveCompressed:
      peak = base + f_blr + S_h + nv * cfg.n_c * b + ns * cfg.n_S * b;
      break;
    case Strategy::kMultiSolveRandomized:
      peak = base + f_blr + S_h +
             4.0 * ns * std::max<double>(cfg.rand_initial_rank,
                                         cfg.rand_max_rank_ratio * ns) * b;
      break;
    case Strategy::kMultiFactorization:
      peak = base + 2.1 * f_blr + S_dense +
             2.0 * (ns / cfg.n_b) * (ns / cfg.n_b) * b;
      break;
    case Strategy::kMultiFactorizationCompressed:
      peak = base + 2.1 * f_blr + S_h +
             2.0 * (ns / cfg.n_b) * (ns / cfg.n_b) * b;
      break;
  }
  return static_cast<std::size_t>(peak);
}

/// Relative time score (arbitrary units; lower = expected faster).
inline double predict_time_score(Strategy s, const PlannerInputs& in,
                                 const Config& cfg) {
  const double nv = in.nv, ns = in.ns;
  const double f = static_cast<double>(in.factor_entries);
  const double factor_flops = f * std::sqrt(f / std::max(1.0, nv));
  const double solve_flops = 2.0 * f * ns;
  const double dense_factor = ns * ns * ns / 3.0;
  const double h_overhead = 3.0;  // recompression multiplier

  switch (s) {
    case Strategy::kBaselineCoupling:
    case Strategy::kMultiSolve:
      return factor_flops + solve_flops + dense_factor;
    case Strategy::kMultiSolveCompressed:
      return factor_flops + solve_flops * 1.3 +
             h_overhead * 0.35 * dense_factor;
    case Strategy::kMultiSolveRandomized:
      return factor_flops +
             2.0 * f * std::min<double>(ns, cfg.rand_max_rank_ratio * ns) +
             h_overhead * 0.35 * dense_factor;
    case Strategy::kAdvancedCoupling:
      return factor_flops + ns * ns * std::sqrt(f / std::max(1.0, nv)) +
             dense_factor;
    case Strategy::kMultiFactorization:
      return cfg.n_b * cfg.n_b * 2.0 * factor_flops + dense_factor;
    case Strategy::kMultiFactorizationCompressed:
      return cfg.n_b * cfg.n_b * 2.0 * factor_flops +
             h_overhead * 0.35 * dense_factor;
  }
  return 0;
}

/// Rank all strategies for the given inputs and budget: feasible ones
/// first, by ascending time score; infeasible ones after, by ascending
/// predicted peak.
inline std::vector<PlanEntry> plan(const PlannerInputs& in, const Config& cfg,
                                   std::size_t budget_bytes) {
  std::vector<PlanEntry> entries;
  for (Strategy s :
       {Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
        Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
        Strategy::kMultiFactorization,
        Strategy::kMultiFactorizationCompressed,
        Strategy::kMultiSolveRandomized}) {
    PlanEntry e;
    e.strategy = s;
    e.predicted_peak_bytes = predict_peak(s, in, cfg);
    e.time_score = predict_time_score(s, in, cfg);
    e.fits = budget_bytes == 0 || e.predicted_peak_bytes <= budget_bytes;
    entries.push_back(e);
  }
  std::sort(entries.begin(), entries.end(),
            [](const PlanEntry& a, const PlanEntry& b) {
              if (a.fits != b.fits) return a.fits;
              if (a.fits) return a.time_score < b.time_score;
              return a.predicted_peak_bytes < b.predicted_peak_bytes;
            });
  return entries;
}

}  // namespace cs::coupled
