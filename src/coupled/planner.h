// Memory-aware strategy planning.
//
// The paper's conclusion is that the best coupled algorithm "strongly
// depends on the number of unknowns and the amount of memory available":
// multi-factorization wins in time when its blocks fit, multi-solve
// (compressed) wins in reachable problem size. The Planner turns that
// observation into an API: from one *symbolic-only* sparse analysis (no
// numeric factorization) it predicts the peak tracked footprint of every
// strategy, filters by the available budget and ranks the feasible ones by
// an expected-time score.
//
// The predictions are first-order models over the dominant allocations
// (panels, Schur storage, factors with duplication/compression constants);
// they are validated against measured peaks in tests/planner_test.cpp.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace.h"
#include "coupled/coupled.h"
#include "sparsedirect/multifrontal.h"

namespace cs::coupled {

struct PlanEntry {
  Strategy strategy;
  std::size_t predicted_peak_bytes = 0;
  double time_score = 0;  ///< relative cost estimate (lower = faster)
  bool fits = false;
};

struct PlannerInputs {
  index_t nv = 0;
  index_t ns = 0;
  offset_t factor_entries = 0;  ///< symbolic dense-factor entry count
  std::size_t system_bytes = 0;  ///< storage of the input blocks
  std::size_t scalar_bytes = sizeof(double);
};

/// Gather the planner inputs from a system (runs one symbolic analysis).
/// scalar_bytes is the element size of the *factor storage*, so a
/// Config::factor_precision == kSingle run halves every factor, panel and
/// Schur term of the predictions (the system blocks stay in the input
/// scalar and are counted separately via system_bytes).
template <class T>
PlannerInputs planner_inputs(const fembem::CoupledSystem<T>& sys,
                             const Config& cfg) {
  PlannerInputs in;
  in.nv = sys.nv();
  in.ns = sys.ns();
  in.scalar_bytes = cfg.factor_precision == Precision::kSingle
                        ? sizeof(single_of_t<T>)
                        : sizeof(T);
  sparsedirect::MultifrontalSolver<T> mf;
  sparsedirect::SolverOptions so;
  so.ordering = cfg.ordering;
  mf.analyze_only(sys.A_vv, so);
  in.factor_entries = mf.stats().factor_entries_dense;
  in.system_bytes = sys.A_vv.size_bytes() + sys.A_sv.size_bytes();
  return in;
}

/// Transient footprint of one in-flight multi-solve panel: the nv x n_c
/// sparse-solve panel Y plus the ns x max(n_S, n_c) Schur panel Z. This is
/// the unit the pipelined multi-solve multiplies by its number of
/// concurrently live panels.
inline std::size_t multisolve_panel_bytes(index_t nv, index_t ns,
                                          const Config& cfg,
                                          std::size_t scalar_bytes) {
  const double b = static_cast<double>(scalar_bytes);
  const double panel = static_cast<double>(std::max(cfg.n_S, cfg.n_c));
  return static_cast<std::size_t>(static_cast<double>(nv) * cfg.n_c * b +
                                  static_cast<double>(ns) * panel * b);
}

/// Tracked transient footprint of one batched solution phase
/// (FactoredCoupled::solve with an nv x nrhs + ns x nrhs RHS block): the
/// interior solve block, the Schur right-hand side and the
/// back-substitution block live concurrently (3 nv + 2 ns scalars per
/// column); an iterative-refinement sweep holds a residual + correction
/// block pair on top. Batch drivers (bench_solve) use this to size nrhs
/// against the budget headroom left by the factorization.
inline std::size_t solve_batch_bytes(index_t nv, index_t ns, index_t nrhs,
                                     std::size_t scalar_bytes, bool refine) {
  const double b = static_cast<double>(scalar_bytes);
  double per_col = 3.0 * static_cast<double>(nv) + 2.0 * static_cast<double>(ns);
  if (refine) per_col += 3.0 * static_cast<double>(nv + ns);
  return static_cast<std::size_t>(per_col * static_cast<double>(nrhs) * b);
}

/// Transient footprint of one multi-factorization (bi, bj) job: the
/// duplicated (unsymmetric LU) factors of W plus the retrieved p x p Schur
/// block and its internal copy.
inline std::size_t multifacto_job_bytes(const PlannerInputs& in,
                                        const Config& cfg) {
  const double b = static_cast<double>(in.scalar_bytes);
  const double f = static_cast<double>(in.factor_entries) * b;
  const double f_work = 1.6 * f;  // factors + multifrontal transient
  const double f_blr = cfg.sparse_compression ? 0.8 * f_work : f_work;
  const double p =
      static_cast<double>(in.ns) / std::max<index_t>(1, cfg.n_b);
  return static_cast<std::size_t>(2.1 * f_blr + 2.0 * p * p * b);
}

/// How many units of `unit_bytes` transient footprint may be in flight at
/// once: always at least 1 (serial progress must stay admissible --
/// genuine exhaustion is detected by the tracked allocations inside the
/// unit and reported as BudgetExceeded, exactly as in a serial run), at
/// most `want`, and with one unit of slack kept below the budget so
/// concurrency degrades to 1 near the limit instead of tipping a run that
/// would have fit serially.
inline int admissible_inflight(std::size_t unit_bytes,
                               std::size_t budget_bytes,
                               std::size_t current_bytes, int want) {
  want = std::max(want, 1);
  if (budget_bytes == 0 || unit_bytes == 0) return want;
  if (current_bytes >= budget_bytes) return 1;
  const std::size_t units = (budget_bytes - current_bytes) / unit_bytes;
  if (units <= 2) return 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(want), units - 1));
}

/// Runtime admission for block-parallel multi-factorization: a worker
/// acquires a slot before allocating its job's transients. A job is
/// admitted when it is the only active one (serial progress is always
/// allowed) or when the tracked usage plus the predicted per-job footprint
/// stays under the budget; otherwise the worker waits for headroom, so
/// concurrency degrades gracefully instead of throwing.
class AdmissionController {
 public:
  AdmissionController(std::size_t unit_bytes, std::size_t budget_bytes)
      : unit_(unit_bytes), budget_(budget_bytes) {}

  void acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (active_ > 0 && !fits()) {
      // Contended path: record how long this worker sat waiting for
      // budget headroom (span on the timeline, totals in the counters).
      TraceSpan span("admission", "admission.wait");
      Metrics::instance().add(Metric::kAdmissionWaits, 1);
      Timer waited;
      while (active_ > 0 && !fits()) {
        // Woken by release(); the timeout re-checks the tracker, whose
        // usage also drops while concurrent jobs free transients
        // mid-flight.
        cv_.wait_for(lock, std::chrono::milliseconds(20));
      }
      Metrics::instance().add(Metric::kAdmissionWaitSec, waited.seconds());
    }
    ++active_;
  }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    cv_.notify_all();
  }

 private:
  bool fits() const {
    if (budget_ == 0) return true;
    return MemoryTracker::instance().current() + unit_ <= budget_;
  }

  std::size_t unit_;
  std::size_t budget_;
  int active_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Predict the peak tracked bytes of one strategy. Empirical constants:
/// BLR keeps ~70% of the factor entries at eps=1e-3 on 3D meshes; an
/// H-compressed Schur keeps ~25-40% of the dense block at this scale; the
/// multifrontal transient (fronts + contribution stack) adds ~60% of the
/// factor size; LU (multi-factorization) duplicates factor storage.
inline std::size_t predict_peak(Strategy s, const PlannerInputs& in,
                                const Config& cfg) {
  const double b = static_cast<double>(in.scalar_bytes);
  const double nv = in.nv, ns = in.ns;
  const double f = static_cast<double>(in.factor_entries) * b;
  const double f_work = 1.6 * f;  // factors + multifrontal transient
  const double f_blr = cfg.sparse_compression ? 0.8 * f_work : f_work;
  const double S_dense = ns * ns * b;
  const double S_h = 0.35 * S_dense;  // H-matrix Schur at eps ~ 1e-3
  const double base = static_cast<double>(in.system_bytes) +
                      2.5 * (nv + ns) * b;  // vectors/permutations

  double peak = 0;
  switch (s) {
    case Strategy::kBaselineCoupling:
      peak = base + f_blr + nv * ns * b + S_dense;
      break;
    case Strategy::kAdvancedCoupling:
      // Internal root front + user Schur array (the API's 2x cost).
      peak = base + f_blr + 2.0 * S_dense;
      break;
    case Strategy::kMultiSolve:
      peak = base + f_blr + S_dense + nv * cfg.n_c * b;
      break;
    case Strategy::kMultiSolveCompressed:
      peak = base + f_blr + S_h +
             static_cast<double>(
                 multisolve_panel_bytes(in.nv, in.ns, cfg, in.scalar_bytes));
      break;
    case Strategy::kMultiSolveRandomized:
      peak = base + f_blr + S_h +
             4.0 * ns * std::max<double>(cfg.rand_initial_rank,
                                         cfg.rand_max_rank_ratio * ns) * b;
      break;
    case Strategy::kMultiFactorization:
      peak = base + S_dense +
             static_cast<double>(multifacto_job_bytes(in, cfg));
      break;
    case Strategy::kMultiFactorizationCompressed:
      peak = base + S_h + static_cast<double>(multifacto_job_bytes(in, cfg));
      break;
  }
  return static_cast<std::size_t>(peak);
}

/// Relative time score (arbitrary units; lower = expected faster).
inline double predict_time_score(Strategy s, const PlannerInputs& in,
                                 const Config& cfg) {
  const double nv = in.nv, ns = in.ns;
  const double f = static_cast<double>(in.factor_entries);
  const double factor_flops = f * std::sqrt(f / std::max(1.0, nv));
  const double solve_flops = 2.0 * f * ns;
  const double dense_factor = ns * ns * ns / 3.0;
  const double h_overhead = 3.0;  // recompression multiplier

  switch (s) {
    case Strategy::kBaselineCoupling:
    case Strategy::kMultiSolve:
      return factor_flops + solve_flops + dense_factor;
    case Strategy::kMultiSolveCompressed:
      return factor_flops + solve_flops * 1.3 +
             h_overhead * 0.35 * dense_factor;
    case Strategy::kMultiSolveRandomized:
      return factor_flops +
             2.0 * f * std::min<double>(ns, cfg.rand_max_rank_ratio * ns) +
             h_overhead * 0.35 * dense_factor;
    case Strategy::kAdvancedCoupling:
      return factor_flops + ns * ns * std::sqrt(f / std::max(1.0, nv)) +
             dense_factor;
    case Strategy::kMultiFactorization:
      return cfg.n_b * cfg.n_b * 2.0 * factor_flops + dense_factor;
    case Strategy::kMultiFactorizationCompressed:
      return cfg.n_b * cfg.n_b * 2.0 * factor_flops +
             h_overhead * 0.35 * dense_factor;
  }
  return 0;
}

/// Rank all strategies for the given inputs and budget: feasible ones
/// first, by ascending time score; infeasible ones after, by ascending
/// predicted peak.
inline std::vector<PlanEntry> plan(const PlannerInputs& in, const Config& cfg,
                                   std::size_t budget_bytes) {
  std::vector<PlanEntry> entries;
  for (Strategy s :
       {Strategy::kBaselineCoupling, Strategy::kAdvancedCoupling,
        Strategy::kMultiSolve, Strategy::kMultiSolveCompressed,
        Strategy::kMultiFactorization,
        Strategy::kMultiFactorizationCompressed,
        Strategy::kMultiSolveRandomized}) {
    PlanEntry e;
    e.strategy = s;
    e.predicted_peak_bytes = predict_peak(s, in, cfg);
    e.time_score = predict_time_score(s, in, cfg);
    e.fits = budget_bytes == 0 || e.predicted_peak_bytes <= budget_bytes;
    entries.push_back(e);
  }
  std::sort(entries.begin(), entries.end(),
            [](const PlanEntry& a, const PlanEntry& b) {
              if (a.fits != b.fits) return a.fits;
              if (a.fits) return a.time_score < b.time_score;
              return a.predicted_peak_bytes < b.predicted_peak_bytes;
            });
  return entries;
}

}  // namespace cs::coupled
